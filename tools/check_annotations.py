#!/usr/bin/env python3
"""Negative-compilation harness for the thread-safety annotation gate.

Drives the compiler over tests/annotations_compile/:

  ok_*.cc    must compile under EVERY compiler (under clang, with
             -Werror=thread-safety active; under gcc, proving the
             RSR_* macros are no-ops).
  fail_*.cc  each contains exactly one locking-discipline violation.
             Under clang they MUST fail to compile with a thread-safety
             diagnostic — this is what proves the CI gate actually
             bites. Under gcc the attributes vanish, so they MUST
             compile (same no-op proof as ok_*.cc).

Exit status 0 iff every expectation holds. Run by ctest as
`annotations_compile_test` and by the thread-safety CI job.
"""

import argparse
import glob
import os
import subprocess
import sys

THREAD_SAFETY_FLAGS = ["-Wthread-safety", "-Werror=thread-safety"]


def compiler_is_clang(cxx):
    """True if `cxx` is a clang driver (the annotations are active)."""
    try:
        out = subprocess.run(
            [cxx, "--version"], capture_output=True, text=True, timeout=60
        )
    except OSError as err:
        sys.exit(f"error: cannot run {cxx!r}: {err}")
    return "clang" in out.stdout.lower()


def compile_one(cxx, flags, source):
    """Syntax-checks one file; returns (ok, stderr)."""
    cmd = [cxx, "-fsyntax-only", *flags, source]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    return proc.returncode == 0, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cxx", required=True, help="C++ compiler to drive")
    parser.add_argument(
        "--include", action="append", default=[], help="include directory"
    )
    parser.add_argument("--std", default="c++20", help="language standard")
    parser.add_argument("case_dir", help="directory of ok_*.cc / fail_*.cc")
    args = parser.parse_args()

    ok_cases = sorted(glob.glob(os.path.join(args.case_dir, "ok_*.cc")))
    fail_cases = sorted(glob.glob(os.path.join(args.case_dir, "fail_*.cc")))
    if not ok_cases or not fail_cases:
        sys.exit(f"error: no ok_*.cc / fail_*.cc cases in {args.case_dir}")

    clang = compiler_is_clang(args.cxx)
    flags = [f"-std={args.std}", "-Wall", "-Wextra", "-Werror"]
    flags += [f"-I{inc}" for inc in args.include]
    if clang:
        flags += THREAD_SAFETY_FLAGS
    mode = "clang (annotations ACTIVE)" if clang else "non-clang (no-op shim)"
    print(f"compiler: {args.cxx} -> {mode}")

    failures = []

    for case in ok_cases:
        ok, stderr = compile_one(args.cxx, flags, case)
        name = os.path.basename(case)
        if ok:
            print(f"  PASS  {name}: compiles clean")
        else:
            failures.append(f"{name}: expected clean compile, got:\n{stderr}")
            print(f"  FAIL  {name}: did not compile")

    for case in fail_cases:
        ok, stderr = compile_one(args.cxx, flags, case)
        name = os.path.basename(case)
        if clang:
            # The violation must be rejected, and rejected for the right
            # reason — a thread-safety diagnostic, not some stray error.
            if not ok and "-Wthread-safety" in stderr:
                print(f"  PASS  {name}: rejected with thread-safety error")
            elif not ok:
                failures.append(
                    f"{name}: failed, but NOT with a thread-safety "
                    f"diagnostic:\n{stderr}"
                )
                print(f"  FAIL  {name}: wrong diagnostic")
            else:
                failures.append(
                    f"{name}: compiled clean — the gate does not bite"
                )
                print(f"  FAIL  {name}: compiled (violation missed!)")
        else:
            # Attributes are no-ops here: the violation must compile.
            if ok:
                print(f"  PASS  {name}: compiles as no-op")
            else:
                failures.append(
                    f"{name}: must compile under a no-op shim, got:\n{stderr}"
                )
                print(f"  FAIL  {name}: did not compile under no-op shim")

    if failures:
        print(f"\n{len(failures)} expectation(s) violated:", file=sys.stderr)
        for failure in failures:
            print(f"--- {failure}", file=sys.stderr)
        return 1
    total = len(ok_cases) + len(fail_cases)
    print(f"all {total} cases behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
