#!/usr/bin/env python3
"""Cross-artifact invariant linter, run by CI (and locally: just run it
from the repo root, no arguments).

The repo has three places where a name minted in one artifact must stay
in sync with another artifact that never compiles against it. Each is a
silent-drift hazard: nothing fails when they diverge, the docs/CI just
quietly stop describing reality. This script makes the drift loud:

  1. Every `rsr_*` metric name registered in src/ must be documented in
     DESIGN.md §12 (the observability contract).
  2. Every protocol verb (`@hello`, `@pull`, ...) declared in
     server/handshake.h must be served by BOTH hosts — or, for
     connection-opening verbs a host deliberately refuses, the refusal
     must be documented in that host's header ("NOT served"). Reply
     verbs must have their encode/decode pair in handshake.cc.
  3. Every BENCH_*.json row key that a ci.yml assertion block reads
     (`r["key"]`) must be emitted by the bench that produces the file.

Exit status 0 iff every invariant holds.
"""

import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Opening verbs a host may deliberately refuse; the refusal must still be
# documented in the refusing host's header (checked below, not waived).
THREADED_ONLY_VERBS = {"@pull"}

# BENCH_*.json file -> the sources that emit its rows.
BENCH_PRODUCERS = {
    # bench_util.h is a producer too: its shared helpers emit e.g. the
    # "p50_ms"/"p99_ms" latency-quantile keys for every serving bench.
    "BENCH_E16.json": ["bench/bench_e16_server_load.cc", "bench/bench_util.h"],
    "BENCH_E17.json": ["bench/bench_e17_async_load.cc", "bench/bench_util.h"],
    "BENCH_E18.json": ["bench/bench_e18_churn.cc", "bench/bench_util.h"],
    "BENCH_E19.json": ["bench/bench_e19_replication.cc", "bench/bench_util.h"],
    "BENCH_FUZZ.json": [
        "src/fuzz/fuzz_convergence_main.cc",
        "src/fuzz/campaign.cc",
        "src/fuzz/runner.cc",
    ],
}


def read(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as fh:
        return fh.read()


def src_files(*globs):
    out = []
    for pattern in globs:
        out += sorted(glob.glob(os.path.join(REPO, pattern), recursive=True))
    return out


def check_metrics_documented(errors):
    """Invariant 1: registered metric names appear in DESIGN.md §12."""
    names = set()
    for path in src_files("src/**/*.cc", "src/**/*.h"):
        names |= set(re.findall(r'"(rsr_[a-z0-9_]+)"', read(path)))
    design = read("DESIGN.md")
    match = re.search(r"^## §12 .*?(?=^## §|\Z)", design, re.S | re.M)
    if not match:
        errors.append("DESIGN.md: cannot locate section §12")
        return
    section = match.group(0)
    for name in sorted(names):
        if name not in section:
            errors.append(
                f"metric {name} is registered in src/ but not documented "
                f"in DESIGN.md §12"
            )


def check_verbs_served(errors):
    """Invariant 2: handshake verbs are served by both hosts (or the
    refusal is documented), and reply verbs encode+decode."""
    handshake_h = read("src/server/handshake.h")
    verbs = dict(
        re.findall(
            r'inline constexpr char (k\w+Label)\[\] = "(@[a-z-]+)"',
            handshake_h,
        )
    )
    if not verbs:
        errors.append("server/handshake.h: no verb label constants found")
        return

    # Serving is detected via the label CONSTANT in the host's .cc —
    # dispatch always goes through the constants, while the quoted verb
    # literal shows up in comments all over, so literals prove nothing.
    hosts = {
        "threaded": "src/server/sync_server.cc",
        "async": "src/server/async_sync_server.cc",
    }
    host_text = {name: read(path) for name, path in hosts.items()}
    host_docs = {
        "threaded": read("src/server/sync_server.h"),
        "async": read("src/server/async_sync_server.h"),
    }
    handshake_cc = read("src/server/handshake.cc")

    for const, verb in sorted(verbs.items()):
        served = {name: const in text for name, text in host_text.items()}
        if all(served.values()):
            continue
        if not any(served.values()):
            # A pure reply verb: emitted and parsed via the shared
            # handshake.cc helpers both hosts call.
            uses = handshake_cc.count(const)
            if uses < 2:
                errors.append(
                    f"verb {verb} ({const}) is served by neither host and "
                    f"handshake.cc references it {uses} time(s) — need an "
                    f"encode/decode pair or host dispatch"
                )
            continue
        # Served by exactly one host: allowed only for documented
        # deliberately-asymmetric verbs.
        missing = [name for name, ok in served.items() if not ok][0]
        if verb not in THREADED_ONLY_VERBS:
            errors.append(
                f"verb {verb} ({const}) is served by one host but not the "
                f"{missing} host — serve it there or add it to "
                f"THREADED_ONLY_VERBS with documentation"
            )
            continue
        doc = host_docs[missing]
        if f'"{verb}"' not in doc or "NOT served" not in doc:
            errors.append(
                f"verb {verb} is {missing}-host-refused but the refusal is "
                f'not documented there (need the literal "{verb}" and the '
                f'words "NOT served" in the host header)'
            )


def check_bench_keys(errors):
    """Invariant 3: row keys asserted in ci.yml exist in the bench."""
    ci = read(".github/workflows/ci.yml")
    # Attribute each python assertion block to the BENCH files it opens.
    blocks = re.split(r"python3 - <<'EOF'", ci)[1:]
    seen_bench_files = set()
    for block in blocks:
        block = block.split("\nEOF", 1)[0]
        bench_files = re.findall(r'open\("(BENCH_[A-Z0-9_]+\.json)"\)', block)
        if not bench_files:
            continue
        keys = set(re.findall(r'r\["([a-z0-9_]+)"\]', block))
        keys |= set(re.findall(r'"([a-z0-9_]+)" (?:not )?in r\b', block))
        for bench_file in set(bench_files):
            seen_bench_files.add(bench_file)
            producers = BENCH_PRODUCERS.get(bench_file)
            if not producers:
                errors.append(
                    f"ci.yml asserts on {bench_file} but no producer is "
                    f"mapped in BENCH_PRODUCERS — add the bench source"
                )
                continue
            emitted = "".join(read(p) for p in producers)
            for key in sorted(keys):
                if f'"{key}"' not in emitted:
                    errors.append(
                        f'{bench_file}: ci.yml reads r["{key}"] but none of '
                        f"{producers} emits that key"
                    )
    for bench_file in BENCH_PRODUCERS:
        if bench_file not in seen_bench_files:
            errors.append(
                f"BENCH_PRODUCERS maps {bench_file} but no ci.yml block "
                f"asserts on it — stale mapping"
            )


def main():
    errors = []
    check_metrics_documented(errors)
    check_verbs_served(errors)
    check_bench_keys(errors)
    if errors:
        print(f"{len(errors)} invariant violation(s):", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print("lint_invariants: all cross-artifact invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
