// Single-threaded epoll reactor with a coarse timer wheel.
//
// One EventLoop owns one epoll instance and runs on exactly one thread
// (Run()'s caller). Fd handlers, timers, and all per-connection state it
// drives are therefore single-threaded by construction — the property the
// async serving layer (server/async_sync_server.h) relies on to host
// PartySessions with no locks on the hot path. The only cross-thread
// doors are RunInLoop(fn) (queue a task, wake the loop via eventfd) and
// Stop().
//
// Interest is level-triggered readable/writable; hangup (EPOLLHUP /
// EPOLLERR / EPOLLRDHUP) is always delivered, folded into kReadable so a
// handler discovers EOF or the error from its next read, plus the kHangup
// bit for handlers that care. Timers live on a hashed wheel advanced at a
// fixed tick (default 5 ms): deadlines are coarse by design — they exist
// for idle timeouts, not for precise scheduling — and never fire early.
// See DESIGN.md §8.

#ifndef RSR_NET_EVENT_LOOP_H_
#define RSR_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace net {

/// Readiness bits delivered to fd handlers (and accepted as interest;
/// kHangup is implicit interest — epoll always reports it).
struct Ready {
  static constexpr uint32_t kReadable = 1u << 0;
  static constexpr uint32_t kWritable = 1u << 1;
  static constexpr uint32_t kHangup = 1u << 2;
};

class EventLoop {
 public:
  using IoCallback = std::function<void(uint32_t ready)>;
  using TimerId = uint64_t;
  static constexpr TimerId kNoTimer = 0;

  explicit EventLoop(
      std::chrono::milliseconds tick = std::chrono::milliseconds(5));
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // --- fd interest (loop thread only, or before Run() starts) ---

  /// Registers `fd` with the given interest. The callback is invoked from
  /// Run() with the ready bits. False if `fd` is already registered or
  /// epoll refuses it. The loop never closes `fd`; ownership stays with
  /// the caller.
  bool Add(int fd, uint32_t interest, IoCallback callback);

  /// Updates the interest set of a registered fd.
  bool Modify(int fd, uint32_t interest);

  /// Deregisters `fd`. Safe to call from inside its own callback: the
  /// handler is dropped and no further events are delivered to it, even
  /// ones already harvested in the current epoll batch.
  void Remove(int fd);

  // --- timers (loop thread only) ---

  /// Arms a one-shot timer. Fires no earlier than `delay` from now, at
  /// tick granularity. Returns an id for CancelTimer.
  TimerId AddTimer(std::chrono::milliseconds delay, std::function<void()> fn);

  /// Disarms a timer; a no-op if it already fired or never existed.
  void CancelTimer(TimerId id);

  // --- cross-thread ---

  /// Queues `fn` to run on the loop thread after the current dispatch
  /// round and wakes the loop. Thread-safe. Every queued task is
  /// eventually invoked — tasks still pending when Run() exits are drained
  /// before it returns, so move-only resources handed to a task are never
  /// silently dropped.
  void RunInLoop(std::function<void()> fn);

  /// Forces an idle epoll_wait to return. Thread-safe.
  void Wakeup();

  /// Dispatches events until Stop(). Must be called from exactly one
  /// thread; fd/timer methods above belong to that thread.
  void Run();

  /// Makes Run() return after the dispatch round in flight. Thread-safe
  /// and idempotent.
  void Stop();

  bool IsInLoopThread() const {
    return loop_thread_.load() == std::this_thread::get_id();
  }

  // --- instrumentation ---

  /// Optional loop probes (DESIGN.md §12). Individual pointers may be
  /// null; the instruments are thread-safe, so one Metrics struct can be
  /// shared by every shard of a host.
  struct Metrics {
    /// Busy part of one dispatch round (events + timers + tasks),
    /// excluding the epoll_wait sleep.
    obs::Histogram* iteration_seconds = nullptr;
    /// Time blocked in epoll_wait per round (sleep, not work).
    obs::Histogram* epoll_wait_seconds = nullptr;
    /// Timer-wheel callbacks fired.
    obs::Counter* timer_fires = nullptr;
    /// Cross-thread task batch size, observed per non-empty drain.
    obs::Histogram* pending_tasks = nullptr;
  };

  /// Installs the probes. Call before Run() starts (or from the loop
  /// thread). `metrics` is not owned and must outlive the loop; nullptr
  /// (the default) keeps the loop probe-free — no extra clock reads.
  void set_metrics(const Metrics* metrics) { metrics_ = metrics; }

 private:
  struct Handler {
    uint32_t interest = 0;
    uint64_t generation = 0;
    std::shared_ptr<IoCallback> callback;
  };

  struct TimerEntry {
    TimerId id = kNoTimer;
    uint64_t deadline_tick = 0;
    std::function<void()> fn;
  };

  uint64_t NowTick() const;
  int EpollTimeoutMs();
  void AdvanceWheel();
  void RunPendingTasks();
  void DrainWakeupFd();

  static constexpr size_t kWheelSlots = 256;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  const std::chrono::milliseconds tick_;
  const std::chrono::steady_clock::time_point epoch_;

  std::unordered_map<int, Handler> handlers_;
  uint64_t next_generation_ = 1;

  std::vector<std::vector<TimerEntry>> wheel_;
  uint64_t wheel_cursor_ = 0;  ///< Next tick to be processed.
  /// Timers still armed (AddTimer minus fired/cancelled); keys double as
  /// the liveness check when a wheel entry comes up.
  std::unordered_map<TimerId, uint64_t> armed_;
  TimerId next_timer_id_ = 1;

  /// The only cross-thread door besides the atomics below: RunInLoop
  /// queues here under tasks_mu_; the loop thread drains in batches.
  /// Every other field (handlers_, wheel_, armed_, ...) is loop-thread
  /// confined by construction — single-threaded, so deliberately NOT
  /// mutex-guarded (see the file comment).
  Mutex tasks_mu_;
  std::vector<std::function<void()>> tasks_ RSR_GUARDED_BY(tasks_mu_);
  std::atomic<bool> stop_{false};
  std::atomic<std::thread::id> loop_thread_{};
  const Metrics* metrics_ = nullptr;
};

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_EVENT_LOOP_H_
