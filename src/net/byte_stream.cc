#include "net/byte_stream.h"

namespace rsr {
namespace net {

ReadStatus ReadFull(ByteStream* stream, uint8_t* buf, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ptrdiff_t r = stream->Read(buf + got, n - got);
    if (r < 0) return ReadStatus::kError;
    if (r == 0) return got == 0 ? ReadStatus::kClosed : ReadStatus::kTruncated;
    got += static_cast<size_t>(r);
  }
  return ReadStatus::kOk;
}

}  // namespace net
}  // namespace rsr
