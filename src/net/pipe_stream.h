// In-process ByteStream pair.
//
// PipeStream::CreatePair() returns two connected endpoints: bytes written
// to one are read from the other, each direction an unbounded FIFO guarded
// by a mutex + condition variable. Reads block until data arrives or the
// writer closes. This is the transport used by the server unit tests (no
// sockets, fully deterministic teardown) and by examples that want the
// server stack without networking.

#ifndef RSR_NET_PIPE_STREAM_H_
#define RSR_NET_PIPE_STREAM_H_

#include <deque>
#include <memory>
#include <utility>

#include "net/byte_stream.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace net {

class PipeStream : public ByteStream {
 public:
  /// Two connected endpoints. Destroying one endpoint closes it (the
  /// survivor sees EOF after draining buffered bytes).
  static std::pair<std::unique_ptr<PipeStream>, std::unique_ptr<PipeStream>>
  CreatePair();

  ~PipeStream() override;

  ptrdiff_t Read(uint8_t* buf, size_t n) override;
  bool Write(const uint8_t* data, size_t n) override;
  void Close() override;

 private:
  /// One direction of flow, shared by the writer and the reader endpoint.
  struct HalfPipe {
    Mutex mu;
    CondVar cv;
    std::deque<uint8_t> data RSR_GUARDED_BY(mu);
    /// No further writes; reads drain then EOF.
    bool closed RSR_GUARDED_BY(mu) = false;
  };

  PipeStream(std::shared_ptr<HalfPipe> incoming,
             std::shared_ptr<HalfPipe> outgoing)
      : incoming_(std::move(incoming)), outgoing_(std::move(outgoing)) {}

  std::shared_ptr<HalfPipe> incoming_;  // peer writes, we read
  std::shared_ptr<HalfPipe> outgoing_;  // we write, peer reads
};

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_PIPE_STREAM_H_
