// POSIX TCP transport: TcpListener / TcpStream.
//
// A thin RAII wrapper over BSD sockets implementing net::ByteStream, enough
// to put the sync server behind real sockets: bind-to-ephemeral-port
// support for tests (port 0, then port()), TCP_NODELAY on connections (the
// protocols exchange many small frames), EINTR-safe read/write loops, and a
// Close that unblocks a pending Accept.
//
// Both classes also support non-blocking mode for the async serving layer:
// SetNonBlocking(true) flips O_NONBLOCK, TcpStream additionally implements
// net::NonBlockingStream (partial reads/writes reporting kWouldBlock), and
// TcpListener::TryAccept distinguishes would-block from a closed listener
// so it can sit behind an epoll readable callback. An object is used in
// one mode for its whole life: the blocking ByteStream contract does not
// hold on a non-blocking fd.

#ifndef RSR_NET_TCP_H_
#define RSR_NET_TCP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/byte_stream.h"

namespace rsr {
namespace net {

class TcpStream : public ByteStream, public NonBlockingStream {
 public:
  /// Connects to host:port ("127.0.0.1" style dotted quad or a hostname
  /// resolvable by getaddrinfo). Returns nullptr on failure.
  static std::unique_ptr<TcpStream> Connect(const std::string& host,
                                            uint16_t port);

  /// Adopts an already-connected socket fd (used by TcpListener::Accept).
  explicit TcpStream(int fd);
  ~TcpStream() override;

  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  ptrdiff_t Read(uint8_t* buf, size_t n) override;
  bool Write(const uint8_t* data, size_t n) override;
  /// Satisfies both ByteStream and NonBlockingStream.
  void Close() override;

  /// NonBlockingStream (meaningful after SetNonBlocking(true)).
  ptrdiff_t ReadSome(uint8_t* buf, size_t n) override;
  ptrdiff_t WriteSome(const uint8_t* data, size_t n) override;

  /// Flips O_NONBLOCK. False if fcntl fails or the stream is closed.
  bool SetNonBlocking(bool enabled);

  /// SO_RCVTIMEO: a blocking Read that waits past `timeout` with no byte
  /// fails (-1). Blocking mode only (EAGAIN from a timed-out recv is
  /// indistinguishable from a non-blocking would-block).
  bool SetReadTimeout(std::chrono::milliseconds timeout) override;

  /// The underlying socket (for event-loop registration); -1 once the
  /// destructor ran.
  int fd() const { return fd_.load(); }

 private:
  std::atomic<int> fd_;
};

class TcpListener {
 public:
  /// Binds and listens on host:port. `host` must be a dotted-quad IPv4
  /// address ("127.0.0.1", "0.0.0.0", ...); anything else fails rather
  /// than silently binding all interfaces. Pass port 0 for an ephemeral
  /// port and read it back with port(). Returns nullptr on failure.
  static std::unique_ptr<TcpListener> Listen(const std::string& host,
                                             uint16_t port, int backlog = 64);

  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Blocks for the next connection. Returns nullptr once the listener is
  /// closed (or on a non-transient accept failure).
  std::unique_ptr<TcpStream> Accept();

  enum class AcceptStatus {
    kAccepted,    ///< *out holds the new connection.
    kEmptyBacklog,  ///< Non-blocking listener with nothing to accept.
    kRetryLater,  ///< Resource exhaustion (fd limit, buffers). The backlog
                  ///< is NOT empty — a level-triggered reactor must back
                  ///< off (timer) instead of re-polling immediately.
    kClosed,      ///< Listener closed (or a non-transient failure).
  };

  /// Non-blocking accept for the event-loop path; pair with
  /// SetNonBlocking(true) and an epoll readable callback.
  AcceptStatus TryAccept(std::unique_ptr<TcpStream>* out);

  /// Flips O_NONBLOCK on the listening socket.
  bool SetNonBlocking(bool enabled);

  /// The listening socket (for event-loop registration).
  int fd() const { return fd_.load(); }

  /// Unblocks pending Accept calls; idempotent.
  void Close();

  uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  std::atomic<int> fd_;
  uint16_t port_;
};

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_TCP_H_
