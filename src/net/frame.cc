#include "net/frame.h"

#include <cstring>

#include "util/check.h"

namespace rsr {
namespace net {

namespace {

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void EncodeFrame(const transport::Message& message,
                 std::vector<uint8_t>* out) {
  RSR_CHECK_MSG(transport::IsWellFormed(message),
                "refusing to encode a message with corrupt bit accounting");
  RSR_CHECK_MSG(message.label.size() <= 0xFFFF, "frame label too long");
  RSR_CHECK_MSG(message.payload.size() <= 0xFFFFFFFFu, "frame payload too big");
  out->reserve(out->size() + kFrameHeaderBytes + message.label.size() +
               message.payload.size());
  out->insert(out->end(), kFrameMagic, kFrameMagic + 4);
  out->push_back(kWireVersion);
  PutU16(static_cast<uint16_t>(message.label.size()), out);
  PutU32(static_cast<uint32_t>(message.payload.size()), out);
  PutU64(message.payload_bits, out);
  out->insert(out->end(), message.label.begin(), message.label.end());
  out->insert(out->end(), message.payload.begin(), message.payload.end());
}

std::vector<uint8_t> EncodeFrame(const transport::Message& message) {
  std::vector<uint8_t> out;
  EncodeFrame(message, &out);
  return out;
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  if (error_ != recon::SessionError::kNone) return;
  buffer_.insert(buffer_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::Next(transport::Message* out) {
  if (error_ != recon::SessionError::kNone) return Status::kError;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderBytes) return Status::kNeedMoreData;

  const uint8_t* header = buffer_.data() + consumed_;
  // Validate the header as soon as it is complete, before waiting for the
  // body: garbage and over-limit frames fail without buffering their
  // claimed length.
  if (std::memcmp(header, kFrameMagic, 4) != 0 || header[4] != kWireVersion) {
    error_ = recon::SessionError::kMalformedMessage;
    return Status::kError;
  }
  const size_t label_len = GetU16(header + 5);
  const size_t payload_len = GetU32(header + 7);
  const uint64_t payload_bits = GetU64(header + 11);
  if (label_len > limits_.max_label_bytes ||
      payload_len > limits_.max_payload_bytes ||
      payload_bits > static_cast<uint64_t>(payload_len) * 8) {
    error_ = recon::SessionError::kMalformedMessage;
    return Status::kError;
  }

  const size_t total = kFrameHeaderBytes + label_len + payload_len;
  if (avail < total) return Status::kNeedMoreData;

  const uint8_t* body = header + kFrameHeaderBytes;
  out->label.assign(reinterpret_cast<const char*>(body), label_len);
  out->payload.assign(body + label_len, body + label_len + payload_len);
  out->payload_bits = static_cast<size_t>(payload_bits);
  consumed_ += total;
  // Compact once the dead prefix dominates, so long sessions stay O(frame).
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  return Status::kFrame;
}

bool FrameDecoder::at_frame_boundary() const {
  size_t cursor = consumed_;
  while (cursor < buffer_.size()) {
    const size_t avail = buffer_.size() - cursor;
    if (avail < kFrameHeaderBytes) return false;
    const uint8_t* header = buffer_.data() + cursor;
    const size_t total = kFrameHeaderBytes + GetU16(header + 5) +
                         GetU32(header + 7);
    if (avail < total) return false;
    cursor += total;
  }
  return true;
}

bool FramedStream::Send(const transport::Message& message) {
  const std::vector<uint8_t> frame = EncodeFrame(message);
  if (!stream_->Write(frame.data(), frame.size())) return false;
  bytes_sent_ += frame.size();
  return true;
}

FramedStream::RecvStatus FramedStream::Receive(transport::Message* out) {
  for (;;) {
    switch (decoder_.Next(out)) {
      case FrameDecoder::Status::kFrame:
        return RecvStatus::kMessage;
      case FrameDecoder::Status::kError:
        error_ = decoder_.error();
        return RecvStatus::kError;
      case FrameDecoder::Status::kNeedMoreData:
        break;
    }
    uint8_t chunk[4096];
    const ptrdiff_t r = stream_->Read(chunk, sizeof(chunk));
    if (r > 0) {
      decoder_.Feed(chunk, static_cast<size_t>(r));
      bytes_received_ += static_cast<size_t>(r);
      continue;
    }
    if (r == 0 && !decoder_.mid_frame()) {
      error_ = recon::SessionError::kTransportClosed;
      return RecvStatus::kClosed;
    }
    // EOF inside a frame is a truncated frame; a read error is a dead
    // transport. Both end the session.
    error_ = r == 0 ? recon::SessionError::kMalformedMessage
                    : recon::SessionError::kTransportClosed;
    return RecvStatus::kError;
  }
}

}  // namespace net
}  // namespace rsr
