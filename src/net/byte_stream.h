// Blocking byte-stream transport abstraction.
//
// Everything above this layer (framing, the sync server and client) speaks
// ByteStream, so the same code runs over an in-process pipe pair
// (net/pipe_stream.h) in unit tests and over real TCP sockets (net/tcp.h)
// in the syncd demo and the server load bench. The contract is the plain
// POSIX one: reads block until at least one byte (or EOF/error), writes are
// all-or-nothing, Close is idempotent and unblocks a peer's pending read
// with a clean EOF.

#ifndef RSR_NET_BYTE_STREAM_H_
#define RSR_NET_BYTE_STREAM_H_

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace rsr {
namespace net {

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Blocks until at least one byte is available, then reads up to `n`
  /// bytes into `buf`. Returns the number of bytes read, 0 on clean EOF
  /// (peer closed), or -1 on a transport error.
  virtual ptrdiff_t Read(uint8_t* buf, size_t n) = 0;

  /// Writes all `n` bytes. Returns false if the stream is closed or the
  /// transport failed mid-write.
  virtual bool Write(const uint8_t* data, size_t n) = 0;

  /// Shuts the stream down in both directions. Idempotent; a peer blocked
  /// in Read observes EOF.
  virtual void Close() = 0;

  /// Best-effort per-read deadline: after this call a Read that waits
  /// longer than `timeout` without receiving a byte fails (-1) instead of
  /// blocking forever. Returns false where the transport cannot enforce
  /// one (the default; pipes and test doubles stay blocking) — callers
  /// must treat an armed deadline as an optimization, not a guarantee.
  /// TcpStream implements it via SO_RCVTIMEO, which is what gives the
  /// threaded sync host a meaningful idle_timeouts counter.
  virtual bool SetReadTimeout(std::chrono::milliseconds timeout) {
    (void)timeout;
    return false;
  }
};

/// Sentinel returned by NonBlockingStream::ReadSome / WriteSome when the
/// operation cannot make progress right now (the async reactor re-arms the
/// fd and retries on the next readiness event).
inline constexpr ptrdiff_t kWouldBlock = -2;

/// Non-blocking byte-stream seam used by the async serving layer
/// (net/event_loop.h + net/async_frame.h). Unlike ByteStream, both
/// directions are partial: a read may return fewer bytes than asked, a
/// write may accept only a prefix, and either may report kWouldBlock
/// instead of blocking. TcpStream implements this in non-blocking mode;
/// tests use scripted doubles that dribble one byte at a time.
class NonBlockingStream {
 public:
  virtual ~NonBlockingStream() = default;

  /// Reads up to `n` bytes. Returns the (positive) count read, 0 on clean
  /// EOF, kWouldBlock if no byte is available, or -1 on a transport error.
  virtual ptrdiff_t ReadSome(uint8_t* buf, size_t n) = 0;

  /// Writes up to `n` bytes. Returns the count accepted (possibly short of
  /// `n`), kWouldBlock if not even one byte could be queued, or -1 on a
  /// transport error.
  virtual ptrdiff_t WriteSome(const uint8_t* data, size_t n) = 0;

  /// Shuts the stream down in both directions. Idempotent.
  virtual void Close() = 0;
};

/// Outcome of ReadFull: distinguishes a clean EOF *before* any byte (the
/// peer hung up between frames) from one *inside* the requested span (a
/// truncated frame).
enum class ReadStatus {
  kOk,         ///< All `n` bytes were read.
  kClosed,     ///< EOF before the first byte.
  kTruncated,  ///< EOF after >= 1 byte but before `n`.
  kError,      ///< Transport error.
};

/// Reads exactly `n` bytes (blocking across short reads).
ReadStatus ReadFull(ByteStream* stream, uint8_t* buf, size_t n);

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_BYTE_STREAM_H_
