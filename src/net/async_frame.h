// Non-blocking framed connection for the async serving layer.
//
// AsyncFramedConn carries transport::Message frames (the RSF1 wire format
// of net/frame.h, bit accounting included) over a NonBlockingStream. It is
// the event-driven sibling of FramedStream: instead of blocking for a
// whole frame, the owner calls OnReadable() when the fd is readable (the
// conn drains the socket into the incremental FrameDecoder), pops complete
// messages with Next(), queues outgoing messages with Send() (encoded into
// an outbound buffer, flushed as far as the socket allows), and calls
// Flush() when the fd is writable. wants_write() tells the event loop
// whether EPOLLOUT interest is needed.
//
// Error mapping is identical to FramedStream: a clean EOF between frames
// is kClosed / SessionError::kTransportClosed, EOF inside a frame is
// kError / kMalformedMessage (a truncated frame), a corrupt frame is
// kError with the decoder's error, and a transport failure is kError /
// kTransportClosed. Once failed, a conn stays failed.
//
// Re-entrancy invariant (DESIGN.md §8): all calls happen on the owning
// event-loop thread; Send() may be called from inside the handling of a
// message popped by Next() — replies are appended to the outbound buffer
// in call order, so the peer observes exactly the sequence a blocking
// FramedStream would have produced.

#ifndef RSR_NET_ASYNC_FRAME_H_
#define RSR_NET_ASYNC_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/byte_stream.h"
#include "net/frame.h"
#include "recon/protocol.h"
#include "transport/message.h"

namespace rsr {
namespace net {

class AsyncFramedConn {
 public:
  explicit AsyncFramedConn(NonBlockingStream* stream, FrameLimits limits = {})
      : stream_(stream), decoder_(limits) {}

  AsyncFramedConn(const AsyncFramedConn&) = delete;
  AsyncFramedConn& operator=(const AsyncFramedConn&) = delete;

  enum class IoStatus {
    kOk,      ///< Progress made; retry on the next readiness event.
    kClosed,  ///< Clean EOF between frames (error() == kTransportClosed).
    kError,   ///< Corrupt frame, truncated EOF, or transport failure.
  };

  /// Drains the socket into the frame decoder until would-block or EOF.
  /// Complete frames buffered before an EOF are still available via
  /// Next() — pop them before acting on the returned status.
  IoStatus OnReadable();

  enum class NextStatus {
    kMessage,  ///< *out holds the next decoded message.
    kIdle,     ///< No complete frame buffered.
    kError,    ///< Corrupt frame; see error().
  };

  /// Pops the next fully decoded message, in arrival order.
  NextStatus Next(transport::Message* out);

  /// Encodes `message` into the outbound buffer and opportunistically
  /// flushes. False only once the WRITE side has failed (the message is
  /// dropped, as a blocking Send to a dead peer would be). A read-side
  /// end — clean EOF or a decode error — does not block sending: a peer
  /// that half-closed after its last frame still gets its replies and
  /// result, exactly as it would from the blocking FramedStream host.
  bool Send(const transport::Message& message);

  /// Writes buffered output until drained or would-block. kError on a
  /// transport failure.
  IoStatus Flush();

  /// True while flushed-out bytes remain buffered — the event loop should
  /// keep kWritable interest exactly while this holds.
  bool wants_write() const { return out_cursor_ < outbox_.size(); }

  /// True until the write side fails. Distinct from error(): a clean
  /// read-side EOF leaves the outbound direction healthy, and a buffered
  /// result is still worth flushing.
  bool write_ok() const { return !write_failed_; }

  /// The SessionError of the first failure (kNone while healthy, also
  /// kTransportClosed after a clean close).
  recon::SessionError error() const { return error_; }

  size_t bytes_sent() const { return bytes_sent_; }
  size_t bytes_received() const { return bytes_received_; }

  /// Encoded bytes accepted by Send (whether or not flushed yet);
  /// bytes_sent() lags it by the buffered remainder. Frame-granular, so
  /// per-frame accounting (trace spans) can difference it.
  size_t bytes_enqueued() const { return bytes_enqueued_; }

 private:
  void FailTransport();

  NonBlockingStream* stream_;
  FrameDecoder decoder_;
  std::vector<uint8_t> outbox_;
  size_t out_cursor_ = 0;  ///< Prefix of outbox_ already written.
  recon::SessionError error_ = recon::SessionError::kNone;
  bool peer_closed_ = false;   ///< Read side ended (EOF seen).
  /// Terminal read-side status, replayed on re-entry: level-triggered
  /// EPOLLHUP/ERR re-delivers events, and a reset connection must keep
  /// reporting kError rather than degrade to kClosed (both share
  /// error_ == kTransportClosed).
  IoStatus read_end_ = IoStatus::kOk;
  bool write_failed_ = false;  ///< Write side failed; sends are dropped.
  size_t bytes_sent_ = 0;
  size_t bytes_received_ = 0;
  size_t bytes_enqueued_ = 0;
};

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_ASYNC_FRAME_H_
