#include "net/async_frame.h"

namespace rsr {
namespace net {

using recon::SessionError;

void AsyncFramedConn::FailTransport() {
  if (error_ == SessionError::kNone) error_ = SessionError::kTransportClosed;
}

AsyncFramedConn::IoStatus AsyncFramedConn::OnReadable() {
  if (error_ == SessionError::kMalformedMessage) return IoStatus::kError;
  if (peer_closed_) return read_end_;
  uint8_t chunk[4096];
  for (;;) {
    const ptrdiff_t r = stream_->ReadSome(chunk, sizeof(chunk));
    if (r > 0) {
      decoder_.Feed(chunk, static_cast<size_t>(r));
      bytes_received_ += static_cast<size_t>(r);
      continue;
    }
    if (r == kWouldBlock) return IoStatus::kOk;
    peer_closed_ = true;
    // at_frame_boundary, not mid_frame: the socket was drained to EOF
    // before the owner popped anything, so complete frames are usually
    // still queued — a final frame plus FIN in one readable event is a
    // clean close, not a truncated frame.
    if (r == 0 && decoder_.at_frame_boundary()) {
      FailTransport();
      read_end_ = IoStatus::kClosed;
      return read_end_;
    }
    // EOF inside a frame is a truncated frame; a read error is a dead
    // transport.
    if (error_ == SessionError::kNone) {
      error_ = r == 0 ? SessionError::kMalformedMessage
                      : SessionError::kTransportClosed;
    }
    read_end_ = IoStatus::kError;
    return read_end_;
  }
}

AsyncFramedConn::NextStatus AsyncFramedConn::Next(transport::Message* out) {
  switch (decoder_.Next(out)) {
    case FrameDecoder::Status::kFrame:
      return NextStatus::kMessage;
    case FrameDecoder::Status::kNeedMoreData:
      return NextStatus::kIdle;
    case FrameDecoder::Status::kError:
      error_ = decoder_.error();
      return NextStatus::kError;
  }
  return NextStatus::kError;  // unreachable
}

bool AsyncFramedConn::Send(const transport::Message& message) {
  // Only a dead WRITE side refuses: a clean read-side EOF (half-closing
  // peer) or a decode error still lets the server ship replies and the
  // @result over the intact outbound direction.
  if (write_failed_) return false;
  const size_t before = outbox_.size();
  EncodeFrame(message, &outbox_);
  bytes_enqueued_ += outbox_.size() - before;
  return Flush() != IoStatus::kError;
}

AsyncFramedConn::IoStatus AsyncFramedConn::Flush() {
  if (write_failed_) return IoStatus::kError;
  while (out_cursor_ < outbox_.size()) {
    const ptrdiff_t r = stream_->WriteSome(outbox_.data() + out_cursor_,
                                           outbox_.size() - out_cursor_);
    if (r == kWouldBlock) return IoStatus::kOk;
    if (r < 0) {
      write_failed_ = true;
      FailTransport();
      return IoStatus::kError;
    }
    out_cursor_ += static_cast<size_t>(r);
    bytes_sent_ += static_cast<size_t>(r);
  }
  // Fully drained: reclaim the buffer rather than letting the dead prefix
  // grow across a long session.
  outbox_.clear();
  out_cursor_ = 0;
  return IoStatus::kOk;
}

}  // namespace net
}  // namespace rsr
