#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rsr {
namespace net {

namespace {

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Close() only shuts the socket down: that unblocks any thread sitting in
/// recv/send/accept, but the fd number stays reserved until the destructor
/// — the object's sole owner — actually closes it. Releasing the fd while
/// another thread is between fd_.load() and its blocking syscall would let
/// the kernel recycle the number for an unrelated connection.
void ShutdownOnly(const std::atomic<int>& fd_slot) {
  const int fd = fd_slot.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void ShutdownAndRelease(std::atomic<int>* fd_slot) {
  const int fd = fd_slot->exchange(-1);
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

bool SetFdNonBlocking(int fd, bool enabled) {
  if (fd < 0) return false;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return flags == wanted || ::fcntl(fd, F_SETFL, wanted) == 0;
}

}  // namespace

// ----------------------------------------------------------------- stream

TcpStream::TcpStream(int fd) : fd_(fd) { SetNoDelay(fd); }

TcpStream::~TcpStream() { ShutdownAndRelease(&fd_); }

std::unique_ptr<TcpStream> TcpStream::Connect(const std::string& host,
                                              uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) != 0) {
    return nullptr;
  }
  int fd = -1;
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) return nullptr;
  return std::make_unique<TcpStream>(fd);
}

ptrdiff_t TcpStream::Read(uint8_t* buf, size_t n) {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return 0;  // locally closed: report EOF
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0) return static_cast<ptrdiff_t>(r);
    if (errno == EINTR) continue;
    // ECONNRESET after we shipped our last frame is a peer that closed
    // without draining; callers treat -1 as a transport error.
    return -1;
  }
}

bool TcpStream::Write(const uint8_t* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const int fd = fd_.load();
    if (fd < 0) return false;
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a fatal signal.
    const ssize_t r = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(r);
  }
  return true;
}

void TcpStream::Close() { ShutdownOnly(fd_); }

ptrdiff_t TcpStream::ReadSome(uint8_t* buf, size_t n) {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return 0;  // locally closed: report EOF
    const ssize_t r = ::recv(fd, buf, n, 0);
    if (r >= 0) return static_cast<ptrdiff_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

ptrdiff_t TcpStream::WriteSome(const uint8_t* data, size_t n) {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return -1;
    const ssize_t r = ::send(fd, data, n, MSG_NOSIGNAL);
    if (r >= 0) return static_cast<ptrdiff_t>(r);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return kWouldBlock;
    return -1;
  }
}

bool TcpStream::SetNonBlocking(bool enabled) {
  return SetFdNonBlocking(fd_.load(), enabled);
}

bool TcpStream::SetReadTimeout(std::chrono::milliseconds timeout) {
  const int fd = fd_.load();
  if (fd < 0 || timeout.count() <= 0) return false;
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

// --------------------------------------------------------------- listener

TcpListener::~TcpListener() { ShutdownAndRelease(&fd_); }

std::unique_ptr<TcpListener> TcpListener::Listen(const std::string& host,
                                                 uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // Strict dotted-quad only ("0.0.0.0" binds all interfaces). Falling back
  // to INADDR_ANY on a typo would silently expose the server beyond the
  // interface the caller asked for.
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, backlog) != 0) {
    ::close(fd);
    return nullptr;
  }
  // Recover the ephemeral port when the caller asked for port 0.
  struct sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  uint16_t actual_port = port;
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                    &bound_len) == 0) {
    actual_port = ntohs(bound.sin_port);
  }
  return std::unique_ptr<TcpListener>(new TcpListener(fd, actual_port));
}

std::unique_ptr<TcpStream> TcpListener::Accept() {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return nullptr;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) return std::make_unique<TcpStream>(conn);
    if (errno == EINTR) continue;
    // A connection that RSTed while still in the backlog kills itself,
    // not the listener.
    if (errno == ECONNABORTED || errno == EPROTO) continue;
    // Close() shut the listening socket down: accept fails with EINVAL
    // (Linux) or EBADF; either way the accept loop is over.
    return nullptr;
  }
}

TcpListener::AcceptStatus TcpListener::TryAccept(
    std::unique_ptr<TcpStream>* out) {
  for (;;) {
    const int fd = fd_.load();
    if (fd < 0) return AcceptStatus::kClosed;
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn >= 0) {
      *out = std::make_unique<TcpStream>(conn);
      return AcceptStatus::kAccepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return AcceptStatus::kEmptyBacklog;
    }
    // Transient per-connection failure: the peer RSTed while queued.
    if (errno == ECONNABORTED || errno == EPROTO) continue;
    // Transient resource exhaustion (fd limits, socket buffers) must not
    // read as "listener closed" — the reactor would deregister the
    // listener and never accept again.
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      return AcceptStatus::kRetryLater;
    }
    return AcceptStatus::kClosed;
  }
}

bool TcpListener::SetNonBlocking(bool enabled) {
  return SetFdNonBlocking(fd_.load(), enabled);
}

void TcpListener::Close() { ShutdownOnly(fd_); }

}  // namespace net
}  // namespace rsr
