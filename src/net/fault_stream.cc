#include "net/fault_stream.h"

#include <algorithm>
#include <utility>

namespace rsr {
namespace net {

FaultyStream::FaultyStream(std::unique_ptr<ByteStream> inner,
                           FaultOptions options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

FaultyStream::~FaultyStream() { Close(); }

bool FaultyStream::Charge(size_t n) {
  if (options_.close_after_bytes == 0) return true;
  if (fault_fired_) return false;
  bytes_crossed_ += n;
  if (bytes_crossed_ >= options_.close_after_bytes) {
    fault_fired_ = true;
    inner_->Close();
    return false;
  }
  return true;
}

ptrdiff_t FaultyStream::Read(uint8_t* buf, size_t n) {
  if (fault_fired_) return 0;  // the peer observes a clean EOF after a kill
  const size_t ask = options_.dribble ? std::min<size_t>(n, 1) : n;
  const ptrdiff_t got = inner_->Read(buf, ask);
  if (got > 0 && !Charge(static_cast<size_t>(got))) {
    // The bytes were already delivered to the caller; the NEXT operation
    // observes the disconnect, which is how a real half-open close lands.
    return got;
  }
  return got;
}

bool FaultyStream::Write(const uint8_t* data, size_t n) {
  if (fault_fired_) return false;
  size_t offset = 0;
  while (offset < n) {
    size_t chunk = n - offset;
    if (options_.dribble) {
      chunk = std::min<size_t>(1 + rng_.Below(3), chunk);
    }
    if (!inner_->Write(data + offset, chunk)) return false;
    offset += chunk;
    if (!Charge(chunk)) return false;
  }
  return true;
}

void FaultyStream::Close() { inner_->Close(); }

std::unique_ptr<ByteStream> MaybeWrapFaulty(std::unique_ptr<ByteStream> inner,
                                            const FaultOptions& options) {
  if (inner == nullptr ||
      (options.close_after_bytes == 0 && !options.dribble)) {
    return inner;
  }
  return std::make_unique<FaultyStream>(std::move(inner), options);
}

}  // namespace net
}  // namespace rsr
