// Wire framing for transport::Message over a byte stream.
//
// The session API (recon/session.h) deals in Messages — a label, payload
// bytes, and an exact payload bit count. To carry a session over a socket,
// each Message becomes one length-prefixed binary frame:
//
//   offset  size  field
//   0       4     magic "RSF1" (also the wire version: bump the digit)
//   4       1     header version byte (kWireVersion)
//   5       2     label length   (uint16, little-endian)
//   7       4     payload length (uint32, little-endian, bytes)
//   11      8     payload bits   (uint64, little-endian)
//   19      ...   label bytes, then payload bytes
//
// Carrying payload_bits on the wire preserves the library's bit-exact
// communication accounting across a real network: the receiver re-creates
// the Message the sender's BitWriter produced, bit count included.
//
// Decoding is defensive: bad magic / version, an over-limit label or
// payload (max-frame guard against hostile or corrupt peers), and a bit
// count exceeding payload.size()*8 all surface as
// recon::SessionError::kMalformedMessage rather than aborting; a stream
// that ends mid-frame is likewise malformed, while a clean close between
// frames maps to kTransportClosed. See DESIGN.md §6.

#ifndef RSR_NET_FRAME_H_
#define RSR_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/byte_stream.h"
#include "recon/protocol.h"
#include "transport/message.h"

namespace rsr {
namespace net {

/// First 4 bytes of every frame.
inline constexpr uint8_t kFrameMagic[4] = {'R', 'S', 'F', '1'};
/// Header version byte; receivers reject anything else.
inline constexpr uint8_t kWireVersion = 1;
/// Fixed part of the frame header, before label and payload bytes.
inline constexpr size_t kFrameHeaderBytes = 19;

/// Receiver-side guards. A frame whose label or payload exceeds these is
/// rejected as malformed before its body is buffered.
struct FrameLimits {
  size_t max_label_bytes = 255;
  size_t max_payload_bytes = 64u << 20;  // 64 MiB
};

/// Appends the frame encoding of `message` to `out`. The message must be
/// well-formed (transport::IsWellFormed); encoding a malformed message is a
/// programming error and aborts.
void EncodeFrame(const transport::Message& message, std::vector<uint8_t>* out);

/// Convenience: the frame as a fresh buffer.
std::vector<uint8_t> EncodeFrame(const transport::Message& message);

/// Incremental frame parser: feed bytes as they arrive, pop complete
/// Messages. Once an error is reported the decoder stays failed (a byte
/// stream with one corrupt frame has lost sync for good).
class FrameDecoder {
 public:
  explicit FrameDecoder(FrameLimits limits = {}) : limits_(limits) {}

  enum class Status {
    kFrame,         ///< *out holds the next decoded message.
    kNeedMoreData,  ///< No complete frame buffered yet.
    kError,         ///< Corrupt frame; see error().
  };

  void Feed(const uint8_t* data, size_t n);
  void Feed(const std::vector<uint8_t>& bytes) {
    Feed(bytes.data(), bytes.size());
  }

  Status Next(transport::Message* out);

  /// The SessionError a corrupt frame maps to (kNone while healthy).
  recon::SessionError error() const { return error_; }

  /// True if a partial frame is buffered — at EOF this distinguishes a
  /// truncated frame from a clean close between frames. Accurate only
  /// once every complete frame has been popped (the blocking FramedStream
  /// pops before reading more, so it qualifies); an async reader that
  /// drains the socket to EOF first should use at_frame_boundary().
  bool mid_frame() const { return buffer_.size() > consumed_; }

  /// True if the undecoded bytes end exactly on a frame boundary: zero or
  /// more complete frames and no partial tail. At EOF this is the
  /// accurate clean-close test even while complete frames are still
  /// queued for Next(). Walks the claimed header lengths only — a frame
  /// with a corrupt header fails in Next() regardless of how the stream
  /// ended.
  bool at_frame_boundary() const;

 private:
  FrameLimits limits_;
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  recon::SessionError error_ = recon::SessionError::kNone;
};

/// Message-granular send/receive over a ByteStream, with byte accounting.
/// Not thread-safe; the server uses one FramedStream per connection on one
/// worker thread.
class FramedStream {
 public:
  explicit FramedStream(ByteStream* stream, FrameLimits limits = {})
      : stream_(stream), decoder_(limits) {}

  /// Encodes and writes one message. False on transport failure.
  bool Send(const transport::Message& message);

  enum class RecvStatus {
    kMessage,  ///< *out holds the next message.
    kClosed,   ///< Peer closed cleanly between frames.
    kError,    ///< Corrupt frame, truncation, or transport error.
  };

  /// Blocks for the next frame.
  RecvStatus Receive(transport::Message* out);

  /// The SessionError of the last kError / kClosed status.
  recon::SessionError error() const { return error_; }

  size_t bytes_sent() const { return bytes_sent_; }
  size_t bytes_received() const { return bytes_received_; }

 private:
  ByteStream* stream_;
  FrameDecoder decoder_;
  recon::SessionError error_ = recon::SessionError::kNone;
  size_t bytes_sent_ = 0;
  size_t bytes_received_ = 0;
};

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_FRAME_H_
