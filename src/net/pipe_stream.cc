#include "net/pipe_stream.h"

#include <algorithm>

namespace rsr {
namespace net {

std::pair<std::unique_ptr<PipeStream>, std::unique_ptr<PipeStream>>
PipeStream::CreatePair() {
  auto a_to_b = std::make_shared<HalfPipe>();
  auto b_to_a = std::make_shared<HalfPipe>();
  // Endpoint A reads b_to_a and writes a_to_b; endpoint B the reverse.
  std::unique_ptr<PipeStream> a(new PipeStream(b_to_a, a_to_b));
  std::unique_ptr<PipeStream> b(new PipeStream(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

PipeStream::~PipeStream() { Close(); }

ptrdiff_t PipeStream::Read(uint8_t* buf, size_t n) {
  if (n == 0) return 0;
  std::unique_lock<std::mutex> lock(incoming_->mu);
  incoming_->cv.wait(lock, [this] {
    return !incoming_->data.empty() || incoming_->closed;
  });
  if (incoming_->data.empty()) return 0;  // closed and drained: EOF
  const size_t take = std::min(n, incoming_->data.size());
  std::copy_n(incoming_->data.begin(), take, buf);
  incoming_->data.erase(incoming_->data.begin(),
                        incoming_->data.begin() + take);
  return static_cast<ptrdiff_t>(take);
}

bool PipeStream::Write(const uint8_t* data, size_t n) {
  std::lock_guard<std::mutex> lock(outgoing_->mu);
  if (outgoing_->closed) return false;
  outgoing_->data.insert(outgoing_->data.end(), data, data + n);
  outgoing_->cv.notify_all();
  return true;
}

void PipeStream::Close() {
  {
    std::lock_guard<std::mutex> lock(outgoing_->mu);
    outgoing_->closed = true;
    outgoing_->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(incoming_->mu);
    incoming_->closed = true;
    incoming_->cv.notify_all();
  }
}

}  // namespace net
}  // namespace rsr
