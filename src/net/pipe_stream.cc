#include "net/pipe_stream.h"

#include <algorithm>

namespace rsr {
namespace net {

std::pair<std::unique_ptr<PipeStream>, std::unique_ptr<PipeStream>>
PipeStream::CreatePair() {
  auto a_to_b = std::make_shared<HalfPipe>();
  auto b_to_a = std::make_shared<HalfPipe>();
  // Endpoint A reads b_to_a and writes a_to_b; endpoint B the reverse.
  std::unique_ptr<PipeStream> a(new PipeStream(b_to_a, a_to_b));
  std::unique_ptr<PipeStream> b(new PipeStream(a_to_b, b_to_a));
  return {std::move(a), std::move(b)};
}

PipeStream::~PipeStream() { Close(); }

ptrdiff_t PipeStream::Read(uint8_t* buf, size_t n) {
  if (n == 0) return 0;
  HalfPipe& in = *incoming_;
  MutexLock lock(in.mu);
  while (in.data.empty() && !in.closed) in.cv.Wait(in.mu);
  if (in.data.empty()) return 0;  // closed and drained: EOF
  const size_t take = std::min(n, in.data.size());
  std::copy_n(in.data.begin(), take, buf);
  in.data.erase(in.data.begin(), in.data.begin() + take);
  return static_cast<ptrdiff_t>(take);
}

bool PipeStream::Write(const uint8_t* data, size_t n) {
  HalfPipe& out = *outgoing_;
  MutexLock lock(out.mu);
  if (out.closed) return false;
  out.data.insert(out.data.end(), data, data + n);
  out.cv.NotifyAll();
  return true;
}

void PipeStream::Close() {
  {
    HalfPipe& out = *outgoing_;
    MutexLock lock(out.mu);
    out.closed = true;
    out.cv.NotifyAll();
  }
  {
    HalfPipe& in = *incoming_;
    MutexLock lock(in.mu);
    in.closed = true;
    in.cv.NotifyAll();
  }
}

}  // namespace net
}  // namespace rsr
