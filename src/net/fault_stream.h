// Wire fault injection: a ByteStream decorator that dribbles and dies.
//
// FaultyStream wraps any blocking ByteStream and misbehaves in the two ways
// a real peer legally can: it fragments traffic (reads return one byte at a
// time, writes are split into 1..3-byte chunks — the DribbleStream torture
// shape from the framing tests, applied to a live duplex stream), and it
// disconnects mid-exchange after a configured byte budget, so every framing
// and verb state machine above it sees partial I/O and mid-verb EOF. The
// convergence fuzzer (src/fuzz/) uses it to model clients that vanish
// mid-session; the replication-verb fault tests drive "@log-fetch"/"@pull"
// through it on both hosts.
//
// Determinism: chunk boundaries come from a seeded Rng, and the kill budget
// counts every byte that crosses the wrapper in either direction, so a
// {seed, script} fuzz artifact replays the same fault at the same byte.

#ifndef RSR_NET_FAULT_STREAM_H_
#define RSR_NET_FAULT_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "net/byte_stream.h"
#include "util/random.h"

namespace rsr {
namespace net {

struct FaultOptions {
  /// Close the underlying stream (both directions) once this many total
  /// bytes have crossed the wrapper, reads and writes combined. 0 = never.
  size_t close_after_bytes = 0;
  /// Fragment traffic: reads return at most one byte per call and each
  /// write is forwarded as a run of 1..3-byte writes.
  bool dribble = false;
  /// Chunk-boundary RNG seed (dribble mode).
  uint64_t seed = 0;
};

class FaultyStream : public ByteStream {
 public:
  FaultyStream(std::unique_ptr<ByteStream> inner, FaultOptions options);
  ~FaultyStream() override;

  ptrdiff_t Read(uint8_t* buf, size_t n) override;
  bool Write(const uint8_t* data, size_t n) override;
  void Close() override;

  /// True once the byte budget tripped and the wrapper killed the stream.
  bool fault_fired() const { return fault_fired_; }
  size_t bytes_crossed() const { return bytes_crossed_; }

 private:
  /// Charges `n` bytes against the budget; kills the stream and returns
  /// false if the budget is exhausted.
  bool Charge(size_t n);

  const std::unique_ptr<ByteStream> inner_;
  const FaultOptions options_;
  Rng rng_;
  size_t bytes_crossed_ = 0;
  bool fault_fired_ = false;
};

/// Convenience: wraps `inner` only when the options actually inject a
/// fault, otherwise returns it untouched (no wrapper overhead on the
/// common clean path).
std::unique_ptr<ByteStream> MaybeWrapFaulty(std::unique_ptr<ByteStream> inner,
                                            const FaultOptions& options);

}  // namespace net
}  // namespace rsr

#endif  // RSR_NET_FAULT_STREAM_H_
