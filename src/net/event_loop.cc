#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/check.h"

namespace rsr {
namespace net {

namespace {

uint32_t ToEpoll(uint32_t interest) {
  uint32_t events = 0;
  if (interest & Ready::kReadable) events |= EPOLLIN | EPOLLRDHUP;
  if (interest & Ready::kWritable) events |= EPOLLOUT;
  return events;
}

uint32_t FromEpoll(uint32_t events) {
  uint32_t ready = 0;
  // Hangup and error are folded into readable so a handler discovers the
  // condition from its next read (EOF or -1) even if it only asked for
  // kReadable; the explicit kHangup bit is advisory on top.
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
    ready |= Ready::kReadable;
  }
  if (events & EPOLLOUT) ready |= Ready::kWritable;
  if (events & (EPOLLRDHUP | EPOLLHUP | EPOLLERR)) ready |= Ready::kHangup;
  return ready;
}

}  // namespace

EventLoop::EventLoop(std::chrono::milliseconds tick)
    : tick_(tick.count() > 0 ? tick : std::chrono::milliseconds(1)),
      epoch_(std::chrono::steady_clock::now()),
      wheel_(kWheelSlots) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  RSR_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  RSR_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  struct epoll_event ev;
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // generation 0 marks the wakeup fd
  RSR_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
                "epoll_ctl(wakeup) failed");
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

bool EventLoop::Add(int fd, uint32_t interest, IoCallback callback) {
  // fds are packed into 20 bits of the epoll tag alongside the
  // generation stamp; 1M fds is far beyond any rlimit this serves.
  if (fd < 0 || fd > 0xFFFFF || handlers_.count(fd) != 0) return false;
  Handler handler;
  handler.interest = interest;
  handler.generation = next_generation_++;
  handler.callback = std::make_shared<IoCallback>(std::move(callback));
  struct epoll_event ev;
  ev.events = ToEpoll(interest);
  // Pack fd + a generation stamp so events harvested before a Remove (and
  // a possible fd-number reuse by a subsequent Add) are not misdelivered.
  ev.data.u64 = (handler.generation << 20) | static_cast<uint32_t>(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  handlers_.emplace(fd, std::move(handler));
  return true;
}

bool EventLoop::Modify(int fd, uint32_t interest) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return false;
  if (it->second.interest == interest) return true;
  struct epoll_event ev;
  ev.events = ToEpoll(interest);
  ev.data.u64 =
      (it->second.generation << 20) | static_cast<uint32_t>(fd);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) return false;
  it->second.interest = interest;
  return true;
}

void EventLoop::Remove(int fd) {
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

uint64_t EventLoop::NowTick() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count() /
      tick_.count());
}

EventLoop::TimerId EventLoop::AddTimer(std::chrono::milliseconds delay,
                                       std::function<void()> fn) {
  const uint64_t ticks =
      static_cast<uint64_t>((delay.count() + tick_.count() - 1) /
                            tick_.count());
  // +1: the current tick is already partially elapsed, so rounding up and
  // skipping it guarantees the timer never fires early.
  const uint64_t deadline = NowTick() + ticks + 1;
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.deadline_tick = deadline;
  entry.fn = std::move(fn);
  const TimerId id = entry.id;
  armed_.emplace(id, deadline);
  wheel_[deadline % kWheelSlots].push_back(std::move(entry));
  return id;
}

void EventLoop::CancelTimer(TimerId id) { armed_.erase(id); }

void EventLoop::RunInLoop(std::function<void()> fn) {
  {
    MutexLock lock(tasks_mu_);
    tasks_.push_back(std::move(fn));
  }
  Wakeup();
}

void EventLoop::Wakeup() {
  const uint64_t one = 1;
  // The counter saturating (EAGAIN) still leaves it readable: good enough.
  [[maybe_unused]] const ssize_t r =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeupFd() {
  uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

int EventLoop::EpollTimeoutMs() {
  {
    MutexLock lock(tasks_mu_);
    if (!tasks_.empty()) return 0;
  }
  if (armed_.empty()) return -1;  // a Wakeup interrupts the wait
  // With timers armed the loop advances the wheel once per tick; the
  // wakeup fd still interrupts the sleep for cross-thread work.
  return static_cast<int>(tick_.count());
}

void EventLoop::AdvanceWheel() {
  uint64_t fired = 0;
  const uint64_t now = NowTick();
  if (armed_.empty()) {
    // Nothing live: snap the cursor instead of walking every elapsed
    // tick (after a long timerless idle that walk would be millions of
    // empty iterations). Cancelled husks still parked in slots are
    // purged lazily whenever their slot next gets processed.
    wheel_cursor_ = now + 1;
    return;
  }
  if (wheel_cursor_ == 0) wheel_cursor_ = now;
  // The cursor can lag arbitrarily after an idle stretch that ended with
  // a timer armed in this very dispatch round. One full revolution visits
  // every slot, and firing is by deadline (<= now), not cursor equality —
  // so clamping the walk to the last kWheelSlots ticks skips nothing due.
  if (wheel_cursor_ + kWheelSlots < now) wheel_cursor_ = now - kWheelSlots;
  while (wheel_cursor_ <= now) {
    std::vector<TimerEntry>& slot = wheel_[wheel_cursor_ % kWheelSlots];
    size_t kept = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      TimerEntry& entry = slot[i];
      if (entry.deadline_tick > now) {
        // A future round of the wheel; keep it — unless it was cancelled,
        // in which case dropping it now stops churny cancel-and-rearm
        // users (per-event idle refresh) accreting dead entries for a
        // whole timeout.
        if (armed_.count(entry.id) != 0) slot[kept++] = std::move(entry);
        continue;
      }
      auto armed = armed_.find(entry.id);
      if (armed == armed_.end()) continue;  // cancelled
      armed_.erase(armed);
      ++fired;
      const std::function<void()> fn = std::move(entry.fn);
      fn();  // may add or cancel timers; slot mutation is index-safe
    }
    slot.resize(kept);
    ++wheel_cursor_;
  }
  if (fired > 0 && metrics_ != nullptr && metrics_->timer_fires != nullptr) {
    metrics_->timer_fires->Inc(fired);
  }
}

void EventLoop::RunPendingTasks() {
  std::vector<std::function<void()>> tasks;
  {
    MutexLock lock(tasks_mu_);
    tasks.swap(tasks_);
  }
  if (!tasks.empty() && metrics_ != nullptr &&
      metrics_->pending_tasks != nullptr) {
    metrics_->pending_tasks->Observe(static_cast<double>(tasks.size()));
  }
  for (std::function<void()>& task : tasks) task();
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id());
  std::vector<struct epoll_event> events(128);
  while (!stop_.load()) {
    // Probe clock reads happen only when metrics are installed, so an
    // uninstrumented loop runs exactly the pre-instrumentation path.
    const auto wait_start = metrics_ != nullptr
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               EpollTimeoutMs());
    const auto work_start = metrics_ != nullptr
                                ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{};
    if (metrics_ != nullptr && metrics_->epoll_wait_seconds != nullptr) {
      metrics_->epoll_wait_seconds->Observe(
          std::chrono::duration<double>(work_start - wait_start).count());
    }
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        DrainWakeupFd();
        continue;
      }
      const int fd = static_cast<int>(tag & 0xFFFFF);
      const uint64_t generation = tag >> 20;
      auto it = handlers_.find(fd);
      // Stale events: the handler was Removed (possibly by an earlier
      // callback in this very batch), or the fd number was recycled for a
      // new registration since the event was harvested.
      if (it == handlers_.end() || it->second.generation != generation) {
        continue;
      }
      // Hold the callback across the call so a handler that Removes
      // itself keeps its own frame alive.
      const std::shared_ptr<IoCallback> callback = it->second.callback;
      (*callback)(FromEpoll(events[i].events));
    }
    AdvanceWheel();
    RunPendingTasks();
    if (metrics_ != nullptr && metrics_->iteration_seconds != nullptr) {
      metrics_->iteration_seconds->Observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        work_start)
              .count());
    }
  }
  // Tasks posted between the last dispatch round and Stop() still run:
  // RunInLoop promises eventual execution (shard shutdown hands
  // connection cleanup over this path). Loop until quiescent — a drained
  // task may itself RunInLoop a follow-up carrying a move-only resource,
  // and dropping that one would leak it.
  for (;;) {
    {
      MutexLock lock(tasks_mu_);
      if (tasks_.empty()) break;
    }
    RunPendingTasks();
  }
  loop_thread_.store(std::thread::id());
}

void EventLoop::Stop() {
  stop_.store(true);
  Wakeup();
}

}  // namespace net
}  // namespace rsr
