// Lightweight invariant-checking macros used throughout rsr.
//
// RSR_CHECK fires in every build type; RSR_DCHECK only in debug builds.
// Both print the failing condition with its location and abort, following
// the project convention of aborting on programming errors rather than
// throwing exceptions (fallible operations return bool/optional instead).

#ifndef RSR_UTIL_CHECK_H_
#define RSR_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define RSR_CHECK(cond)                                                      \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "RSR_CHECK failed: %s at %s:%d\n", #cond,         \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define RSR_CHECK_MSG(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "RSR_CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   (msg), __FILE__, __LINE__);                               \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define RSR_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RSR_DCHECK(cond) RSR_CHECK(cond)
#endif

#endif  // RSR_UTIL_CHECK_H_
