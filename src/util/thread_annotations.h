// Clang Thread Safety Analysis attribute shim.
//
// These macros expand to Clang's thread-safety attributes when the
// compiler supports them (clang with -Wthread-safety; the CI gate builds
// with -Werror=thread-safety) and to nothing elsewhere (gcc, msvc), so
// annotated code compiles identically everywhere while clang checks the
// locking discipline at compile time. The annotations turn this repo's
// concurrency contracts — which mutex guards which field, which methods
// require a lock held, which locks must never nest — from comments into
// machine-checked types. See DESIGN.md §13 for the per-subsystem
// contract table and tests/annotations_compile/ for the negative
// compilation suite proving the gate bites.
//
// Naming follows the clang documentation's canonical mutex.h example,
// prefixed RSR_ to stay out of other libraries' way. Apply the macros to
// the annotated wrappers in util/mutex.h (rsr::Mutex, rsr::MutexLock),
// not to raw std::mutex — std types carry no capability attributes, so
// the analysis cannot see through them.

#ifndef RSR_UTIL_THREAD_ANNOTATIONS_H_
#define RSR_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define RSR_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef RSR_THREAD_ANNOTATION_
#define RSR_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define RSR_CAPABILITY(x) RSR_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability.
#define RSR_SCOPED_CAPABILITY RSR_THREAD_ANNOTATION_(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define RSR_GUARDED_BY(x) RSR_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer field whose *pointee* is guarded by `x` (the pointer itself
/// may be read freely).
#define RSR_PT_GUARDED_BY(x) RSR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations: this capability must be acquired before /
/// after the named ones. A contradiction or a violating acquisition
/// order is a compile-time error under the gate.
#define RSR_ACQUIRED_BEFORE(...) \
  RSR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define RSR_ACQUIRED_AFTER(...) \
  RSR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Caller must hold the named capabilities exclusively (or shared).
#define RSR_REQUIRES(...) \
  RSR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RSR_REQUIRES_SHARED(...) \
  RSR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the named capabilities (no argument =
/// `this` for a capability class's own methods).
#define RSR_ACQUIRE(...) \
  RSR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RSR_ACQUIRE_SHARED(...) \
  RSR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RSR_RELEASE(...) \
  RSR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RSR_RELEASE_SHARED(...) \
  RSR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire and returns `b` on success.
#define RSR_TRY_ACQUIRE(...) \
  RSR_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the named capabilities (deadlock guard for
/// methods that acquire them internally).
#define RSR_EXCLUDES(...) RSR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (tells the analysis to
/// trust it from here on).
#define RSR_ASSERT_CAPABILITY(x) \
  RSR_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the named capability.
#define RSR_RETURN_CAPABILITY(x) RSR_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis inside one function. Use only where
/// the discipline is real but inexpressible (e.g. lock handoff across a
/// condition-variable wait implemented with adopted std locks), and say
/// why at the use site.
#define RSR_NO_THREAD_SAFETY_ANALYSIS \
  RSR_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // RSR_UTIL_THREAD_ANNOTATIONS_H_
