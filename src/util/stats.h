// Summary statistics used by the benchmark harnesses to report series
// (mean / stddev / min / max / percentiles over repeated trials).

#ifndef RSR_UTIL_STATS_H_
#define RSR_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rsr {

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Collects raw samples and answers percentile queries.
class SampleSet {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }
  double Mean() const;
  double Stddev() const;
  double Min() const;
  double Max() const;
  /// Linear-interpolated percentile, p in [0, 100]. Requires count() > 0.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Formats `x` with `digits` significant digits — compact table cells.
std::string FormatCompact(double x, int digits = 4);

}  // namespace rsr

#endif  // RSR_UTIL_STATS_H_
