#include "util/bitio.h"

#include "util/check.h"

namespace rsr {

void BitWriter::WriteBits(uint64_t value, int bits) {
  RSR_DCHECK(bits >= 0 && bits <= 64);
  if (bits < 64) value &= (bits == 0) ? 0 : ((~uint64_t{0}) >> (64 - bits));
  int written = 0;
  while (written < bits) {
    const size_t byte_index = bit_count_ >> 3;
    const int bit_offset = static_cast<int>(bit_count_ & 7);
    if (byte_index >= bytes_.size()) bytes_.push_back(0);
    const int room = 8 - bit_offset;
    const int take = (bits - written < room) ? (bits - written) : room;
    const uint8_t chunk =
        static_cast<uint8_t>((value >> written) & ((1u << take) - 1));
    bytes_[byte_index] |= static_cast<uint8_t>(chunk << bit_offset);
    bit_count_ += static_cast<size_t>(take);
    written += take;
  }
}

void BitWriter::WriteVarint(uint64_t value) {
  while (value >= 0x80) {
    WriteBits((value & 0x7f) | 0x80, 8);
    value >>= 7;
  }
  WriteBits(value, 8);
}

void BitWriter::WriteSignedVarint(int64_t value) {
  const uint64_t zigzag =
      (static_cast<uint64_t>(value) << 1) ^
      static_cast<uint64_t>(value >> 63);
  WriteVarint(zigzag);
}

void BitWriter::AlignToByte() {
  const int rem = static_cast<int>(bit_count_ & 7);
  if (rem != 0) WriteBits(0, 8 - rem);
}

bool BitReader::ReadBits(int bits, uint64_t* out) {
  RSR_DCHECK(bits >= 0 && bits <= 64);
  if (pos_ + static_cast<size_t>(bits) > size_bits_) return false;
  uint64_t value = 0;
  int read = 0;
  while (read < bits) {
    const size_t byte_index = pos_ >> 3;
    const int bit_offset = static_cast<int>(pos_ & 7);
    const int room = 8 - bit_offset;
    const int take = (bits - read < room) ? (bits - read) : room;
    const uint64_t chunk =
        (static_cast<uint64_t>(data_[byte_index]) >> bit_offset) &
        ((uint64_t{1} << take) - 1);
    value |= chunk << read;
    pos_ += static_cast<size_t>(take);
    read += take;
  }
  *out = value;
  return true;
}

bool BitReader::ReadBit(bool* out) {
  uint64_t v = 0;
  if (!ReadBits(1, &v)) return false;
  *out = (v != 0);
  return true;
}

bool BitReader::ReadVarint(uint64_t* out) {
  uint64_t value = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    uint64_t byte = 0;
    if (!ReadBits(8, &byte)) return false;
    value |= (byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = value;
      return true;
    }
    shift += 7;
  }
  return false;  // malformed: more than 10 groups
}

bool BitReader::ReadSignedVarint(int64_t* out) {
  uint64_t zigzag = 0;
  if (!ReadVarint(&zigzag)) return false;
  *out = static_cast<int64_t>((zigzag >> 1) ^ (~(zigzag & 1) + 1));
  return true;
}

void BitReader::AlignToByte() {
  const size_t rem = pos_ & 7;
  if (rem != 0) pos_ += 8 - rem;
}

int BitWidthForUniverse(uint64_t n) {
  if (n <= 1) return 0;
  int bits = 0;
  uint64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits;
    if (bits == 64) break;
  }
  return bits;
}

}  // namespace rsr
