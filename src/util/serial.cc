#include "util/serial.h"

#include <cstring>

namespace rsr {

void ByteWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteVarint(uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::WriteBytes(const uint8_t* data, size_t size) {
  bytes_.insert(bytes_.end(), data, data + size);
}

void ByteWriter::WriteBlob(const std::vector<uint8_t>& blob) {
  WriteVarint(blob.size());
  WriteBytes(blob.data(), blob.size());
}

void ByteWriter::WriteString(const std::string& s) {
  WriteVarint(s.size());
  WriteBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool ByteReader::ReadU8(uint8_t* out) {
  if (pos_ + 1 > size_) return false;
  *out = data_[pos_++];
  return true;
}

bool ByteReader::ReadU32(uint32_t* out) {
  if (pos_ + 4 > size_) return false;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  *out = v;
  return true;
}

bool ByteReader::ReadU64(uint64_t* out) {
  if (pos_ + 8 > size_) return false;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  *out = v;
  return true;
}

bool ByteReader::ReadVarint(uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  for (int i = 0; i < 10; ++i) {
    if (pos_ >= size_) return false;
    const uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool ByteReader::ReadBytes(size_t size, std::vector<uint8_t>* out) {
  if (pos_ + size > size_) return false;
  out->assign(data_ + pos_, data_ + pos_ + size);
  pos_ += size;
  return true;
}

bool ByteReader::ReadBlob(std::vector<uint8_t>* out) {
  uint64_t size = 0;
  if (!ReadVarint(&size)) return false;
  return ReadBytes(static_cast<size_t>(size), out);
}

bool ByteReader::ReadString(std::string* out) {
  uint64_t size = 0;
  if (!ReadVarint(&size)) return false;
  if (pos_ + size > size_) return false;
  out->assign(reinterpret_cast<const char*>(data_ + pos_),
              static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return true;
}

}  // namespace rsr
