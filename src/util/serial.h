// Byte-level serialisation helpers layered on top of plain byte vectors.
//
// Used for message framing in transport/ where byte granularity suffices;
// dense payloads (IBLT cells, packed points) use util/bitio.h instead.

#ifndef RSR_UTIL_SERIAL_H_
#define RSR_UTIL_SERIAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rsr {

/// Append-only byte sink with fixed-width and varint primitives
/// (little-endian).
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { bytes_.push_back(v); }
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteVarint(uint64_t v);
  void WriteBytes(const uint8_t* data, size_t size);
  void WriteBlob(const std::vector<uint8_t>& blob);  // varint length + bytes
  void WriteString(const std::string& s);            // varint length + bytes

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() && { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential reader; all Read* return false on underrun or malformed input.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  bool ReadU8(uint8_t* out);
  bool ReadU32(uint32_t* out);
  bool ReadU64(uint64_t* out);
  bool ReadVarint(uint64_t* out);
  bool ReadBytes(size_t size, std::vector<uint8_t>* out);
  bool ReadBlob(std::vector<uint8_t>* out);
  bool ReadString(std::string* out);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rsr

#endif  // RSR_UTIL_SERIAL_H_
