// Annotated mutex primitives: the capability types the thread-safety
// analysis reasons about.
//
// rsr::Mutex wraps std::mutex and carries the RSR_CAPABILITY attribute;
// rsr::MutexLock is the RAII guard (RSR_SCOPED_CAPABILITY); rsr::CondVar
// pairs with Mutex for blocking waits. Every mutex-guarded structure in
// the repo declares its fields RSR_GUARDED_BY one of these, so an
// unguarded access is a compile error under clang's
// -Werror=thread-safety gate (see util/thread_annotations.h and
// DESIGN.md §13). Under gcc the attributes vanish and the wrappers are
// zero-overhead forwarding shims around the std types.
//
// Waiting: CondVar::Wait takes the annotated Mutex directly. Internally
// it adopts the held std::mutex into a std::unique_lock for the duration
// of the wait and releases it back — the capability never actually
// changes hands, which is exactly what REQUIRES(mu) expresses, and the
// adopted lock keeps std::condition_variable on its fast native path.

#ifndef RSR_UTIL_MUTEX_H_
#define RSR_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace rsr {

/// A std::mutex carrying the `capability` attribute. Lock/Unlock are for
/// the rare manual site; prefer MutexLock.
class RSR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RSR_ACQUIRE() { mu_.lock(); }
  void Unlock() RSR_RELEASE() { mu_.unlock(); }
  bool TryLock() RSR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII guard: acquires in the constructor, releases in the destructor.
/// The analysis tracks the guarded region as the guard's scope — the
/// drop-in replacement for std::lock_guard<std::mutex>.
class RSR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RSR_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RSR_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable for rsr::Mutex. All waits REQUIRE the mutex held;
/// it is released for the blocking portion and re-held on return, so the
/// caller's capability set is unchanged — the analysis (correctly) sees
/// a plain call that preserves the lock.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. Spurious wakeups possible, as with the std
  /// type; prefer the predicate overload.
  void Wait(Mutex& mu) RSR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until notified or `timeout` elapses (or spuriously). There is
  /// deliberately no predicate overload: the analysis would inspect the
  /// lambda body without the capability, so callers loop on the condition
  /// instead — `while (!cond) cv.Wait(mu);` — which the analysis checks.
  template <typename Rep, typename Period>
  void WaitFor(Mutex& mu,
               std::chrono::duration<Rep, Period> timeout) RSR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rsr

#endif  // RSR_UTIL_MUTEX_H_
