#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace rsr {

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double m2 = 0.0;
  for (double s : samples_) m2 += (s - mean) * (s - mean);
  return std::sqrt(m2 / static_cast<double>(samples_.size() - 1));
}

double SampleSet::Min() const {
  EnsureSorted();
  RSR_CHECK(!samples_.empty());
  return samples_.front();
}

double SampleSet::Max() const {
  EnsureSorted();
  RSR_CHECK(!samples_.empty());
  return samples_.back();
}

double SampleSet::Percentile(double p) const {
  EnsureSorted();
  RSR_CHECK(!samples_.empty());
  if (p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

std::string FormatCompact(double x, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, x);
  return std::string(buf);
}

}  // namespace rsr
