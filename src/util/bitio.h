// Bit-granular serialisation.
//
// The protocols in this library are compared on *bits* of communication, so
// messages are packed at bit granularity: a coordinate of a point in [Δ]^d
// occupies exactly ceil(log2 Δ) bits, an IBLT count field exactly as many
// bits as its configured width, etc. BitWriter appends bits to a byte
// buffer; BitReader consumes them in the same order.

#ifndef RSR_UTIL_BITIO_H_
#define RSR_UTIL_BITIO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsr {

/// Append-only bit sink. Bits are packed LSB-first within each byte.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the low `bits` bits of `value` (0 <= bits <= 64).
  void WriteBits(uint64_t value, int bits);

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Appends an unsigned LEB128 varint (7 bits per byte-group).
  void WriteVarint(uint64_t value);

  /// Appends a signed value via zigzag + varint.
  void WriteSignedVarint(int64_t value);

  /// Pads with zero bits to the next byte boundary.
  void AlignToByte();

  /// Total number of bits written so far.
  size_t bit_count() const { return bit_count_; }

  /// Returns the backing buffer; trailing partial byte is zero-padded.
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() && { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

/// Sequential reader over a buffer produced by BitWriter.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}
  explicit BitReader(const std::vector<uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  /// Reads `bits` bits (0 <= bits <= 64). Returns false on underrun.
  bool ReadBits(int bits, uint64_t* out);

  /// Reads a single bit.
  bool ReadBit(bool* out);

  /// Reads an unsigned LEB128 varint.
  bool ReadVarint(uint64_t* out);

  /// Reads a zigzag-encoded signed varint.
  bool ReadSignedVarint(int64_t* out);

  /// Skips to the next byte boundary.
  void AlignToByte();

  size_t bits_consumed() const { return pos_; }
  size_t bits_remaining() const { return size_bits_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
};

/// Number of bits needed to represent values in [0, n); BitWidth(0|1) == 0...
/// Specifically: smallest b with n <= 2^b. BitWidthFor(1) == 0,
/// BitWidthFor(2) == 1, BitWidthFor(1024) == 10.
int BitWidthForUniverse(uint64_t n);

}  // namespace rsr

#endif  // RSR_UTIL_BITIO_H_
