#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace rsr {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  RSR_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::Uniform(int64_t lo, int64_t hi) {
  RSR_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(Below(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian() {
  if (have_spare_gaussian_) {
    have_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  // Box–Muller with rejection of u == 0.
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u == 0.0);
  const double v = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  spare_gaussian_ = r * std::sin(theta);
  have_spare_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

uint64_t Rng::Geometric(double p) {
  RSR_DCHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u == 0.0);
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

Rng Rng::Fork(uint64_t label) const {
  // Mix the parent's state with the label through SplitMix64 so distinct
  // labels give independent streams without advancing the parent.
  uint64_t mix = s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 43);
  uint64_t state = mix ^ (0x9e3779b97f4a7c15ULL * (label + 1));
  return Rng(SplitMix64(&state));
}

}  // namespace rsr
