// Deterministic, seedable pseudo-random number generation.
//
// All randomness in rsr flows through rsr::Rng so that protocols, tests and
// benchmarks are exactly reproducible from a 64-bit seed. The generator is
// xoshiro256** seeded via SplitMix64 — fast, high quality, and trivially
// copyable (copies advance independently, which the protocol code uses to
// derive per-level sub-generators).

#ifndef RSR_UTIL_RANDOM_H_
#define RSR_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rsr {

/// SplitMix64 step: advances *state and returns the next 64-bit output.
/// Used both as a standalone mixer and to seed larger generators.
uint64_t SplitMix64(uint64_t* state);

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// Not cryptographic. Satisfies the UniformRandomBitGenerator concept so it
/// can also be plugged into <random> distributions if ever needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator whose entire stream is determined by `seed`.
  explicit Rng(uint64_t seed = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Returns the next 64 uniformly random bits.
  uint64_t Next64();
  result_type operator()() { return Next64(); }

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a standard normal variate (Box–Muller; one value per call).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns a geometrically distributed count of failures before the first
  /// success with success probability p in (0, 1].
  uint64_t Geometric(double p);

  /// Fisher–Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Below(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator. Children with distinct labels
  /// produce streams independent of each other and of the parent's future
  /// output (the parent is not advanced).
  Rng Fork(uint64_t label) const;

 private:
  uint64_t s_[4];
  bool have_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace rsr

#endif  // RSR_UTIL_RANDOM_H_
