#include "lshrecon/lsh.h"

#include <cmath>

#include "hash/mix.h"
#include "util/check.h"
#include "util/random.h"

namespace rsr {
namespace lshrecon {

namespace {
// Folds a vector of per-coordinate lattice ids into one bucket id.
uint64_t FoldBuckets(const int64_t* ids, int d, uint64_t salt) {
  uint64_t h = Hash64(static_cast<uint64_t>(d), salt);
  for (int i = 0; i < d; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(ids[i]));
  }
  return h;
}
}  // namespace

GridMlsh::GridMlsh(const Universe& universe, double width,
                   size_t num_functions, uint64_t seed)
    : universe_(universe), width_(width), num_functions_(num_functions) {
  RSR_CHECK(width > 0.0);
  Rng rng(seed ^ 0x6772696c736800ULL);  // "grilsh" tag
  shifts_.resize(num_functions * static_cast<size_t>(universe.d));
  for (auto& s : shifts_) s = rng.NextDouble() * width;
}

uint64_t GridMlsh::Eval(size_t index, const Point& p) const {
  RSR_DCHECK(index < num_functions_);
  const int d = universe_.d;
  const double* shift = shifts_.data() + index * static_cast<size_t>(d);
  int64_t ids[64];
  RSR_CHECK(d <= 64);
  for (int i = 0; i < d; ++i) {
    ids[i] = static_cast<int64_t>(
        std::floor((static_cast<double>(p[static_cast<size_t>(i)]) +
                    shift[i]) /
                   width_));
  }
  return FoldBuckets(ids, d, 0x67726964ULL + index);
}

PStableMlsh::PStableMlsh(const Universe& universe, double width,
                         size_t num_functions, uint64_t seed)
    : universe_(universe), width_(width), num_functions_(num_functions) {
  RSR_CHECK(width > 0.0);
  Rng rng(seed ^ 0x7073746162ULL);  // "pstab" tag
  directions_.resize(num_functions * static_cast<size_t>(universe.d));
  for (auto& r : directions_) r = rng.Gaussian();
  offsets_.resize(num_functions);
  for (auto& a : offsets_) a = rng.NextDouble() * width;
}

uint64_t PStableMlsh::Eval(size_t index, const Point& p) const {
  RSR_DCHECK(index < num_functions_);
  const int d = universe_.d;
  const double* dir = directions_.data() + index * static_cast<size_t>(d);
  double dot = 0.0;
  for (int i = 0; i < d; ++i) {
    dot += dir[i] * static_cast<double>(p[static_cast<size_t>(i)]);
  }
  const int64_t id =
      static_cast<int64_t>(std::floor((dot + offsets_[index]) / width_));
  return Hash64(static_cast<uint64_t>(id), 0x70737461ULL + index);
}

BitSamplingMlsh::BitSamplingMlsh(const Universe& universe, double padded_dim,
                                 size_t num_functions, uint64_t seed)
    : universe_(universe), num_functions_(num_functions) {
  RSR_CHECK(padded_dim >= static_cast<double>(universe.d));
  Rng rng(seed ^ 0x62697473ULL);  // "bits" tag
  sampled_coord_.resize(num_functions);
  const double keep_probability =
      static_cast<double>(universe.d) / padded_dim;
  for (auto& c : sampled_coord_) {
    if (rng.Bernoulli(keep_probability)) {
      c = static_cast<int32_t>(rng.Below(static_cast<uint64_t>(universe.d)));
    } else {
      c = -1;  // constant function
    }
  }
}

uint64_t BitSamplingMlsh::Eval(size_t index, const Point& p) const {
  RSR_DCHECK(index < num_functions_);
  const int32_t coord = sampled_coord_[index];
  const uint64_t raw =
      coord < 0 ? 0 : static_cast<uint64_t>(p[static_cast<size_t>(coord)]);
  return Hash64(raw, 0x62697473616dULL + index);
}

std::unique_ptr<MlshFamily> MakeMlshFamily(MlshKind kind,
                                           const Universe& universe,
                                           double width,
                                           size_t num_functions,
                                           uint64_t seed) {
  switch (kind) {
    case MlshKind::kGridL1:
      return std::make_unique<GridMlsh>(universe, width, num_functions, seed);
    case MlshKind::kPStableL2:
      return std::make_unique<PStableMlsh>(universe, width, num_functions,
                                           seed);
    case MlshKind::kBitSampling:
      return std::make_unique<BitSamplingMlsh>(universe, width, num_functions,
                                               seed);
  }
  RSR_CHECK_MSG(false, "unknown MLSH kind");
  return nullptr;
}

}  // namespace lshrecon
}  // namespace rsr
