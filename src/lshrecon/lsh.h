// Multi-scale locality sensitive hash (MLSH) families (extension module).
//
// An MLSH family's collision probability decays smoothly (geometrically)
// with distance: Pr[h(x) = h(y)] ≈ p^{dist(x,y)} up to constants. The LSH
// reconciliation protocol concatenates growing prefixes of functions drawn
// from such a family to obtain progressively finer partitions of the space —
// the LSH analogue of the quadtree's levels.
//
// Families provided:
//  * GridMlsh        — randomly shifted orthogonal lattice (ℓ1 MLSH),
//  * PStableMlsh     — Gaussian projection + random lattice (ℓ2 MLSH),
//  * BitSamplingMlsh — padded coordinate sampling (Hamming MLSH).
//
// All functions of a family are materialised at construction so that
// Eval(i, p) is a cheap deterministic lookup — protocols evaluate s
// functions on n points and need this to be fast and replayable.

#ifndef RSR_LSHRECON_LSH_H_
#define RSR_LSHRECON_LSH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geometry/point.h"

namespace rsr {
namespace lshrecon {

/// A finite, seeded draw of functions from an MLSH family.
class MlshFamily {
 public:
  virtual ~MlshFamily() = default;

  virtual std::string Name() const = 0;

  /// Number of materialised functions.
  virtual size_t size() const = 0;

  /// Evaluates function `index` (< size()) on `p`. The returned value is an
  /// opaque bucket id; only equality is meaningful.
  virtual uint64_t Eval(size_t index, const Point& p) const = 0;
};

/// ℓ1 MLSH: round (p + shift) to a lattice of width `width`. Collision
/// probability for points at ℓ1 distance r is ~ (1 - r/width) per
/// coordinate pair, i.e. ≈ e^{-Θ(r/width)} overall.
class GridMlsh : public MlshFamily {
 public:
  GridMlsh(const Universe& universe, double width, size_t num_functions,
           uint64_t seed);

  std::string Name() const override { return "grid-l1"; }
  size_t size() const override { return num_functions_; }
  uint64_t Eval(size_t index, const Point& p) const override;

 private:
  Universe universe_;
  double width_;
  size_t num_functions_;
  std::vector<double> shifts_;  // num_functions_ * d
};

/// ℓ2 MLSH (Datar et al. p-stable scheme): project on a Gaussian direction,
/// then round to a randomly shifted 1-D lattice of width `width`.
class PStableMlsh : public MlshFamily {
 public:
  PStableMlsh(const Universe& universe, double width, size_t num_functions,
              uint64_t seed);

  std::string Name() const override { return "pstable-l2"; }
  size_t size() const override { return num_functions_; }
  uint64_t Eval(size_t index, const Point& p) const override;

 private:
  Universe universe_;
  double width_;
  size_t num_functions_;
  std::vector<double> directions_;  // num_functions_ * d Gaussian entries
  std::vector<double> offsets_;     // num_functions_ entries in [0, width)
};

/// Hamming MLSH with padding factor w >= d: with probability d/w sample a
/// random coordinate, otherwise return the constant 0 — equivalent to bit
/// sampling after zero-padding the points to dimension w (Lemma 2.3 of the
/// follow-up paper).
class BitSamplingMlsh : public MlshFamily {
 public:
  BitSamplingMlsh(const Universe& universe, double padded_dim,
                  size_t num_functions, uint64_t seed);

  std::string Name() const override { return "bitsample-hamming"; }
  size_t size() const override { return num_functions_; }
  uint64_t Eval(size_t index, const Point& p) const override;

 private:
  Universe universe_;
  size_t num_functions_;
  std::vector<int32_t> sampled_coord_;  // -1 = constant function
};

/// Which family a protocol should draw from.
enum class MlshKind { kGridL1, kPStableL2, kBitSampling };

/// Factory: builds `num_functions` functions of the requested kind.
/// `width` is the distance scale (for kBitSampling it is the padded
/// dimension w >= d).
std::unique_ptr<MlshFamily> MakeMlshFamily(MlshKind kind,
                                           const Universe& universe,
                                           double width,
                                           size_t num_functions,
                                           uint64_t seed);

}  // namespace lshrecon
}  // namespace rsr

#endif  // RSR_LSHRECON_LSH_H_
