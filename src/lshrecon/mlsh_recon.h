// LSH-based robust reconciliation (extension module).
//
// The LSH analogue of the quadtree protocol — the future-work direction of
// the SIGMOD 2014 paper (Algorithm 1 of the 2018 follow-up). Alice draws s
// MLSH functions from public coins; level i keys every point by a hash of
// the first prefix_i function values (prefixes double: 1, 2, 4, …, s).
// For each level she ships a Robust IBLT of (key, point) pairs. Bob
// subtracts his pairs and decodes the *finest* (longest-prefix) level that
// peels within budget. Decoded +1 entries approximate Alice's unmatched
// points (values may carry bounded propagated error — the RIBLT absorbs
// same-key collisions by averaging); decoded -1 entries identify Bob's own
// unmatched points, which he resolves against his set by nearest-neighbour
// matching and replaces with Alice's decoded points.
//
// Compared to the quadtree, the value payload here is a full point (not a
// cell id), but there is no per-coordinate log Δ blow-up in the *number* of
// levels: levels scale with log s, making this variant attractive for
// high-dimensional data (experiment E11).

#ifndef RSR_LSHRECON_MLSH_RECON_H_
#define RSR_LSHRECON_MLSH_RECON_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/metric.h"
#include "lshrecon/lsh.h"
#include "recon/protocol.h"
#include "recon/sketch_provider.h"
#include "riblt/riblt.h"

namespace rsr {
namespace lshrecon {

/// Tunables of the MLSH protocol.
struct MlshParams {
  size_t k = 16;            ///< Outlier budget.
  int q = 3;                ///< RIBLT hash functions (robust analysis wants
                            ///< cells > q(q-1)·entries, hence small q).
  double cells_factor = 4.0;  ///< cells = factor · q² · k (paper: 4q²k).
  size_t num_functions = 0;   ///< s; 0 derives max(16, 4k).
  double width = 0.0;         ///< MLSH distance scale; 0 derives Δ/8.
  size_t decode_budget = 0;   ///< Max pairs accepted; 0 derives 4k + 8.
  int count_bits = 16;
  MlshKind family = MlshKind::kPStableL2;
  Metric metric = Metric::kL2;  ///< Used for Bob's local matching step.

  size_t DecodeBudget() const {
    // More generous than the quadtree's 4k+8: the RIBLT ships 4q²k cells
    // anyway, and accepting more pairs lets Bob decode at a finer prefix
    // level, which avoids averaging unrelated points in big buckets.
    return decode_budget > 0 ? decode_budget : 8 * k + 16;
  }
  size_t NumFunctions() const {
    if (num_functions > 0) return num_functions;
    const size_t derived = 4 * k;
    return derived < 16 ? 16 : derived;
  }
};

// Public derivations of the protocol's per-level sketch structure,
// exported so a canonical sketch store (server/sketch_store.h) can build
// and maintain exactly the RIBLTs a Bob session expects. All are pure
// functions of public parameters.

/// Prefix lengths of the level ladder: 1, 2, 4, …, s.
std::vector<size_t> MlshPrefixLadder(size_t s);

/// Per-point running hash chain over its LSH values; entry j is the RIBLT
/// key for prefix length j + 1.
std::vector<uint64_t> MlshKeyChain(const MlshFamily& family, const Point& p,
                                   uint64_t seed);

/// RIBLT configuration of ladder level `level_index` for a party of size n
/// (n only fixes the serialized sum-field widths via max_entries).
RibltConfig MlshLevelConfig(const Universe& universe, const MlshParams& params,
                            size_t n, size_t level_index, uint64_t seed);

/// The protocol's effective MLSH width (params.width, or Δ/8 when unset).
double MlshEffectiveWidth(const Universe& universe, const MlshParams& params);

class MlshReconciler : public recon::Reconciler {
 public:
  MlshReconciler(const recon::ProtocolContext& context,
                 const MlshParams& params)
      : context_(context), params_(params) {}

  std::string Name() const override { return "mlsh-riblt"; }
  std::unique_ptr<recon::PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<recon::PartySession> MakeBobSession(
      const PointSet& points) const override;
  std::unique_ptr<recon::PartySession> MakeBobSession(
      const PointSet& points,
      const recon::CanonicalSketchProvider* sketches) const override;
  bool RequiresEqualSizes() const override { return true; }

 private:
  recon::ProtocolContext context_;
  MlshParams params_;
};

}  // namespace lshrecon
}  // namespace rsr

#endif  // RSR_LSHRECON_MLSH_RECON_H_
