#include "lshrecon/mlsh_recon.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "hash/mix.h"
#include "recon/session.h"
#include "riblt/riblt.h"
#include "util/check.h"

namespace rsr {
namespace lshrecon {

// Prefix lengths double from 1 up to s (the level ladder).
std::vector<size_t> MlshPrefixLadder(size_t s) {
  std::vector<size_t> prefixes;
  for (size_t p = 1; p < s; p <<= 1) prefixes.push_back(p);
  prefixes.push_back(s);
  return prefixes;
}

// Per-point running hash chain over its LSH values; entry j is the key for
// prefix length j+1.
std::vector<uint64_t> MlshKeyChain(const MlshFamily& family, const Point& p,
                                   uint64_t seed) {
  std::vector<uint64_t> chain(family.size());
  uint64_t h = Hash64(0x6d6c7368ULL, seed);  // "mlsh" tag
  for (size_t j = 0; j < family.size(); ++j) {
    h = HashCombine(h, family.Eval(j, p));
    chain[j] = h;
  }
  return chain;
}

RibltConfig MlshLevelConfig(const Universe& universe, const MlshParams& params,
                            size_t n, size_t level_index, uint64_t seed) {
  RibltConfig config;
  config.cells = static_cast<size_t>(
      params.cells_factor * params.q * params.q *
      static_cast<double>(params.k > 0 ? params.k : 1));
  config.q = params.q;
  config.universe = universe;
  config.max_entries = 2 * n + 2;
  config.count_bits = params.count_bits;
  config.seed = Hash64(level_index, seed ^ 0x6d6c73686c76ULL);  // "mlshlv"
  return config;
}

double MlshEffectiveWidth(const Universe& universe,
                          const MlshParams& params) {
  return params.width > 0.0
             ? params.width
             : static_cast<double>(universe.delta) / 8.0;
}

namespace {

// Per-point key chains for a party's own points.
std::vector<std::vector<uint64_t>> ChainsFor(const MlshFamily& family,
                                             const PointSet& points,
                                             uint64_t seed) {
  std::vector<std::vector<uint64_t>> chains;
  chains.reserve(points.size());
  for (const Point& p : points) {
    chains.push_back(MlshKeyChain(family, p, seed));
  }
  return chains;
}

class MlshAlice : public recon::PartySessionBase {
 public:
  MlshAlice(const recon::ProtocolContext& context, const MlshParams& params,
            PointSet points)
      : context_(context), params_(params), points_(std::move(points)) {}

  std::vector<transport::Message> Start() override {
    const Universe& universe = context_.universe;
    const size_t n = points_.size();
    const size_t s = params_.NumFunctions();
    const std::vector<size_t> prefixes = MlshPrefixLadder(s);
    const std::unique_ptr<MlshFamily> family = MakeMlshFamily(
        params_.family, universe, MlshEffectiveWidth(universe, params_), s,
        context_.seed);
    const auto chains = ChainsFor(*family, points_, context_.seed);

    // One RIBLT per level, all in one message.
    BitWriter w;
    for (size_t li = 0; li < prefixes.size(); ++li) {
      Riblt table(MlshLevelConfig(universe, params_, n, li, context_.seed));
      const size_t prefix = prefixes[li];
      for (size_t i = 0; i < points_.size(); ++i) {
        table.Insert(chains[i][prefix - 1], points_[i]);
      }
      table.Serialize(&w);
    }
    result_.success = true;
    Finish();
    return OneMessage(transport::MakeMessage("mlsh-levels", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(transport::Message) override {
    FailWith(recon::SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  recon::ProtocolContext context_;
  MlshParams params_;
  PointSet points_;
};

class MlshBob : public recon::PartySessionBase {
 public:
  MlshBob(const recon::ProtocolContext& context, const MlshParams& params,
          PointSet points, const recon::CanonicalSketchProvider* sketches)
      : context_(context),
        params_(params),
        points_(std::move(points)),
        sketches_(sketches) {
    result_.bob_final = points_;
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(recon::SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    const Universe& universe = context_.universe;
    const PointSet& bob = points_;
    const size_t n = bob.size();
    const size_t s = params_.NumFunctions();
    const std::vector<size_t> prefixes = MlshPrefixLadder(s);

    BitReader r(message.payload);
    // Deserialize every level first (stream order), then scan finest-first.
    std::vector<Riblt> alice_tables;
    alice_tables.reserve(prefixes.size());
    for (size_t li = 0; li < prefixes.size(); ++li) {
      std::optional<Riblt> table = Riblt::Deserialize(
          MlshLevelConfig(universe, params_, n, li, context_.seed), &r);
      if (!table.has_value()) {  // truncated mlsh-levels message
        FailWith(recon::SessionError::kMalformedMessage);
        return NoMessages();
      }
      alice_tables.push_back(std::move(*table));
    }

    // The hash chains are only needed to erase Bob's pairs by hand; with a
    // sketch cache the per-level erase loop collapses into one linear
    // Subtract of the cached table (identical cell arithmetic), so the
    // chains are built lazily, on the first level the cache declines.
    std::unique_ptr<MlshFamily> family;
    std::vector<std::vector<uint64_t>> bob_chains;
    const auto ensure_chains = [&] {
      if (family != nullptr) return;
      family = MakeMlshFamily(params_.family, universe,
                              MlshEffectiveWidth(universe, params_), s,
                              context_.seed);
      bob_chains = ChainsFor(*family, bob, context_.seed);
    };

    const size_t budget = params_.DecodeBudget();
    Rng rounding_rng(context_.seed ^ 0x726f756e64ULL);  // "round" tag
    for (size_t li = prefixes.size(); li-- > 0;) {
      Riblt diff = alice_tables[li];
      const size_t prefix = prefixes[li];
      std::optional<Riblt> cached =
          sketches_ != nullptr
              ? sketches_->MlshLevelRiblt(
                    MlshLevelConfig(universe, params_, n, li, context_.seed),
                    li)
              : std::nullopt;
      if (cached.has_value()) {
        diff.Subtract(*cached);
      } else {
        ensure_chains();
        for (size_t i = 0; i < bob.size(); ++i) {
          diff.Erase(bob_chains[i][prefix - 1], bob[i]);
        }
      }
      const RibltDecodeResult decoded = diff.Decode(&rounding_rng, budget);
      if (!decoded.success) continue;

      // Split decoded pairs into Alice's side (points to adopt) and Bob's
      // side (his unmatched points, possibly with propagated value error).
      PointSet xa, xb;
      for (const RibltEntry& entry : decoded.entries) {
        for (const Point& value : entry.values) {
          (entry.sign > 0 ? xa : xb).push_back(value);
        }
      }

      // Bob resolves XB against his own set: greedily match each decoded
      // Bob-side point to its nearest not-yet-taken own point; those are
      // the points he replaces. |XA| == |XB| when |alice| == |bob|, so the
      // final size is preserved.
      std::vector<char> taken(bob.size(), 0);
      for (const Point& x : xb) {
        double best = std::numeric_limits<double>::infinity();
        size_t best_index = bob.size();
        for (size_t i = 0; i < bob.size(); ++i) {
          if (taken[i]) continue;
          const double dist = Distance(x, bob[i], params_.metric);
          if (dist < best) {
            best = dist;
            best_index = i;
          }
        }
        if (best_index < bob.size()) taken[best_index] = 1;
      }

      PointSet final_set;
      final_set.reserve(bob.size());
      for (size_t i = 0; i < bob.size(); ++i) {
        if (!taken[i]) final_set.push_back(bob[i]);
      }
      for (Point& p : xa) final_set.push_back(std::move(p));

      result_.success = true;
      result_.chosen_level = static_cast<int>(li);
      result_.decoded_entries = xa.size() + xb.size();
      result_.bob_final = std::move(final_set);
      break;
    }
    Finish();
    return NoMessages();
  }

 private:
  recon::ProtocolContext context_;
  MlshParams params_;
  PointSet points_;
  const recon::CanonicalSketchProvider* sketches_;
};

}  // namespace

std::unique_ptr<recon::PartySession> MlshReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<MlshAlice>(context_, params_, points);
}

std::unique_ptr<recon::PartySession> MlshReconciler::MakeBobSession(
    const PointSet& points) const {
  return MakeBobSession(points, nullptr);
}

std::unique_ptr<recon::PartySession> MlshReconciler::MakeBobSession(
    const PointSet& points,
    const recon::CanonicalSketchProvider* sketches) const {
  return std::make_unique<MlshBob>(context_, params_, points, sketches);
}

}  // namespace lshrecon
}  // namespace rsr
