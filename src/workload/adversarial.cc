#include "workload/adversarial.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace rsr {
namespace workload {

namespace {

int64_t Clamp(int64_t v, const Universe& universe) {
  if (v < 0) return 0;
  if (v >= universe.delta) return universe.delta - 1;
  return v;
}

}  // namespace

const char* AdversarialGeometryName(AdversarialGeometry geometry) {
  switch (geometry) {
    case AdversarialGeometry::kUniform:
      return "uniform";
    case AdversarialGeometry::kHeavyTailClusters:
      return "heavy-tail";
    case AdversarialGeometry::kNearDuplicates:
      return "near-dup";
    case AdversarialGeometry::kHotSpot:
      return "hot-spot";
    case AdversarialGeometry::kMixed:
      return "mixed";
  }
  return "uniform";
}

AdversarialSampler::AdversarialSampler(const Universe& universe,
                                       AdversarialGeometry geometry, Rng rng)
    : universe_(universe), geometry_(geometry), rng_(std::move(rng)) {
  RSR_CHECK(universe_.d >= 1 && universe_.delta >= 1);
  // Fix the scene geometry up front so every later draw is a pure function
  // of the Rng stream, whatever order the script consumes draws in.
  const size_t clusters = 2 + rng_.Below(6);
  centres_.reserve(clusters);
  for (size_t c = 0; c < clusters; ++c) centres_.push_back(UniformDraw());
  hot_side_ = std::max<int64_t>(1, universe_.delta / 64);
  hot_corner_ = UniformDraw();
  for (auto& c : hot_corner_) c = Clamp(c, universe_);
}

Point AdversarialSampler::UniformDraw() {
  Point p(static_cast<size_t>(universe_.d));
  for (auto& c : p) {
    c = static_cast<int64_t>(
        rng_.Below(static_cast<uint64_t>(universe_.delta)));
  }
  return p;
}

Point AdversarialSampler::ClusterDraw() {
  // Zipf-like cluster mass: rank r is chosen with probability ∝ 1/(r+1),
  // so the head cluster dominates — the heavy tail the presets never have.
  size_t rank = 0;
  while (rank + 1 < centres_.size() && rng_.Below(2) == 0) ++rank;
  const Point& centre = centres_[rank];
  const double sigma =
      std::max(1.0, static_cast<double>(universe_.delta) / 512.0);
  Point p(centre.size());
  for (size_t j = 0; j < p.size(); ++j) {
    const double v =
        static_cast<double>(centre[j]) + rng_.Gaussian(0.0, sigma);
    p[j] = Clamp(static_cast<int64_t>(std::llround(v)), universe_);
  }
  return p;
}

Point AdversarialSampler::HotSpotDraw() {
  Point p(hot_corner_.size());
  for (size_t j = 0; j < p.size(); ++j) {
    p[j] = Clamp(hot_corner_[j] +
                     static_cast<int64_t>(
                         rng_.Below(static_cast<uint64_t>(hot_side_))),
                 universe_);
  }
  return p;
}

Point AdversarialSampler::NearDuplicate(const Point& p) {
  Point out = p;
  const uint64_t mode = rng_.Below(4);
  if (mode == 0) return out;  // exact multiset duplicate
  const size_t axis = static_cast<size_t>(rng_.Below(out.size()));
  if (mode == 1) {
    // One-unit twin: the minimal difference the keyed-point hashing and the
    // per-level cell assignment must both resolve consistently.
    out[axis] = Clamp(out[axis] + (rng_.Below(2) == 0 ? 1 : -1), universe_);
    return out;
  }
  // Snap the coordinate to (or one past) the nearest power-of-two edge, so
  // the pair straddles a cell boundary at every quadtree level below it.
  const int64_t v = std::max<int64_t>(1, out[axis]);
  int64_t edge = 1;
  while (edge * 2 <= v) edge *= 2;
  out[axis] = Clamp(mode == 2 ? edge : edge - 1, universe_);
  return out;
}

Point AdversarialSampler::Draw(const Point* anchor) {
  AdversarialGeometry geometry = geometry_;
  if (geometry == AdversarialGeometry::kMixed) {
    geometry = static_cast<AdversarialGeometry>(rng_.Below(4));
  }
  switch (geometry) {
    case AdversarialGeometry::kUniform:
      return UniformDraw();
    case AdversarialGeometry::kHeavyTailClusters:
      return ClusterDraw();
    case AdversarialGeometry::kNearDuplicates:
      if (anchor != nullptr && !anchor->empty()) {
        return NearDuplicate(*anchor);
      }
      // No anchor yet (e.g. the very first draws): seed the universe with
      // points AT power-of-two edges, which their later twins straddle.
      return NearDuplicate(UniformDraw());
    case AdversarialGeometry::kHotSpot:
      return HotSpotDraw();
    case AdversarialGeometry::kMixed:
      break;  // unreachable; resolved above
  }
  return UniformDraw();
}

PointSet AdversarialSampler::DrawCloud(size_t n) {
  PointSet points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point* anchor =
        points.empty() ? nullptr
                       : &points[rng_.Below(points.size())];
    points.push_back(Draw(anchor));
  }
  return points;
}

}  // namespace workload
}  // namespace rsr
