// Adversarial point geometry for the convergence fuzzer.
//
// The preset clouds in workload/generator.h model the paper's evaluation
// (uniform / Gaussian clusters / grid-aligned); this header generates the
// geometry those presets structurally never produce — the shapes most
// likely to expose bugs the driver and the server would share:
//
//   * heavy-tailed clusters: cluster masses follow a Zipf-like law, so a
//     few cells hold most of the points (IBLT bucket skew, histogram count
//     saturation);
//   * near-duplicates at precision boundaries: points differing by one
//     coordinate unit, exact multiset duplicates, and coordinates sitting
//     at power-of-two cell edges where every quadtree level splits them
//     into different cells (the float-precision sync-bug class from the
//     cr-sqlite harness, translated to our integer universe);
//   * hot-spot churn: a small box that updates and deletes keep hammering,
//     so per-cell sketch maintenance sees coordinated, repeated traffic.
//
// All draws flow through rsr::Rng, so a fuzz script built from these is
// replayable from its 64-bit seed.

#ifndef RSR_WORKLOAD_ADVERSARIAL_H_
#define RSR_WORKLOAD_ADVERSARIAL_H_

#include <cstddef>
#include <cstdint>

#include "geometry/point.h"
#include "util/random.h"

namespace rsr {
namespace workload {

/// Which adversarial family a fuzz script draws its points from.
enum class AdversarialGeometry : int {
  kUniform = 0,        ///< Control: plain uniform draws.
  kHeavyTailClusters,  ///< Zipf cluster masses, tight Gaussian spread.
  kNearDuplicates,     ///< ±1-unit twins, exact dupes, power-of-2 edges.
  kHotSpot,            ///< Most traffic inside one small box.
  kMixed,              ///< Per-draw random choice among the above.
};

const char* AdversarialGeometryName(AdversarialGeometry geometry);

/// Deterministic point source for one fuzz script: fixes the cluster
/// centres / hot-spot box once (from the constructor Rng draw) and then
/// serves point draws and victim-biased choices.
class AdversarialSampler {
 public:
  AdversarialSampler(const Universe& universe, AdversarialGeometry geometry,
                     Rng rng);

  /// Draws one fresh point from the configured family. `anchor` (optional)
  /// biases near-duplicate draws toward an existing point — pass a point
  /// already in some replica to generate its precision-boundary twin.
  Point Draw(const Point* anchor = nullptr);

  /// Draws an initial cloud of `n` points.
  PointSet DrawCloud(size_t n);

  /// A near-duplicate of `p`: equal to `p`, or off by exactly one unit in
  /// one coordinate, or snapped to the nearest power-of-two cell edge —
  /// chosen at random. Always inside the universe.
  Point NearDuplicate(const Point& p);

  const Universe& universe() const { return universe_; }
  AdversarialGeometry geometry() const { return geometry_; }

 private:
  Point UniformDraw();
  Point ClusterDraw();
  Point HotSpotDraw();

  Universe universe_;
  AdversarialGeometry geometry_;
  Rng rng_;
  PointSet centres_;       ///< Heavy-tail cluster centres (rank = mass).
  Point hot_corner_;       ///< Hot-spot box corner.
  int64_t hot_side_ = 1;   ///< Hot-spot box side length.
};

}  // namespace workload
}  // namespace rsr

#endif  // RSR_WORKLOAD_ADVERSARIAL_H_
