// Synthetic workloads: point clouds and noisy-replica perturbation.
//
// The SIGMOD 2014 evaluation data is not available (see DESIGN.md §5); these
// generators are the documented substitution. They control exactly the two
// quantities the paper's claims are parameterised by:
//   * per-point measurement noise of scale ε (every common point differs
//     slightly between the replicas — what breaks exact reconciliation), and
//   * k planted outliers (points present on one side with no counterpart
//     near them — what robust reconciliation must recover).

#ifndef RSR_WORKLOAD_GENERATOR_H_
#define RSR_WORKLOAD_GENERATOR_H_

#include <cstddef>
#include <cstdint>

#include "geometry/point.h"
#include "util/random.h"

namespace rsr {
namespace workload {

/// Shape of the base point cloud.
enum class CloudShape {
  kUniform,   ///< i.i.d. uniform over [Δ]^d.
  kClusters,  ///< Gaussian mixture: centres uniform, points N(centre, σ).
  kGridAligned,  ///< Snapped to a coarse lattice (census-style data).
};

/// Parameters of the base cloud.
struct CloudSpec {
  Universe universe;
  size_t n = 0;
  CloudShape shape = CloudShape::kUniform;
  int num_clusters = 16;              ///< For kClusters.
  double cluster_stddev_fraction = 0.02;  ///< σ as a fraction of Δ.
  int64_t grid_pitch = 64;            ///< For kGridAligned.
};

/// Generates a base cloud (multiset; duplicates possible and allowed).
PointSet GenerateCloud(const CloudSpec& spec, Rng* rng);

/// Kind of per-point noise applied to the replica.
enum class NoiseKind {
  kNone,
  kGaussian,    ///< Per-coordinate N(0, ε), rounded, clamped into [Δ].
  kUniformBox,  ///< Per-coordinate uniform in [-ε, ε], clamped.
};

/// Parameters of the replica perturbation.
struct PerturbationSpec {
  NoiseKind noise = NoiseKind::kGaussian;
  double noise_scale = 0.0;   ///< ε, in coordinate units.
  size_t outliers = 0;        ///< Points replaced by fresh uniform points.
};

/// A reconciliation instance: Bob holds `bob` (the reference replica),
/// Alice holds `alice` (noisy copy with planted outliers). |alice| == |bob|.
struct ReplicaPair {
  PointSet alice;
  PointSet bob;
  /// Indices (into alice) of the planted outliers, for diagnostics.
  std::vector<size_t> outlier_indices;
};

/// Applies noise to every point and replaces `spec.outliers` random points
/// of the copy with fresh uniform points. Point order is shuffled on the
/// Alice side so protocols cannot exploit alignment.
ReplicaPair MakeReplicaPair(const CloudSpec& cloud,
                            const PerturbationSpec& spec, uint64_t seed);

/// Adds noise to a single point (clamped into the universe).
Point PerturbPoint(const Point& p, const Universe& universe, NoiseKind kind,
                   double scale, Rng* rng);

}  // namespace workload
}  // namespace rsr

#endif  // RSR_WORKLOAD_GENERATOR_H_
