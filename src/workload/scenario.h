// Named end-to-end scenarios shared by benches, examples and integration
// tests, so that every consumer measures the same instances.

#ifndef RSR_WORKLOAD_SCENARIO_H_
#define RSR_WORKLOAD_SCENARIO_H_

#include <string>

#include "geometry/metric.h"
#include "workload/generator.h"

namespace rsr {
namespace workload {

/// A fully specified reconciliation instance.
struct Scenario {
  std::string name;
  Universe universe;
  Metric metric = Metric::kL2;
  CloudSpec cloud;
  PerturbationSpec perturbation;
  uint64_t seed = 0;

  ReplicaPair Materialize() const {
    return MakeReplicaPair(cloud, perturbation, seed);
  }
};

/// The default evaluation scenario: n clustered points in [Δ]^d with
/// Gaussian measurement noise of scale `noise` and `k` planted outliers.
Scenario StandardScenario(size_t n, int d, int64_t delta, size_t k,
                          double noise, uint64_t seed = 1);

/// Sensor-network flavoured scenario (2-D geo coordinates, kClusters).
Scenario SensorScenario(size_t n, size_t k, double noise, uint64_t seed = 2);

/// High-dimensional feature-vector scenario (uniform cloud, ℓ1 metric).
Scenario HighDimScenario(size_t n, int d, size_t k, double noise,
                         uint64_t seed = 3);

}  // namespace workload
}  // namespace rsr

#endif  // RSR_WORKLOAD_SCENARIO_H_
