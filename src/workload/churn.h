// Canonical-set churn: batched insert/erase traces against a live set.
//
// The serving-layer workloads so far mutated only the clients; the
// canonical set was immutable. Churn models the other half of a production
// deployment: the canonical side absorbs writes while replicas sync
// against it. A churn batch is balanced — every erased point is replaced
// by a perturbed copy — so |S| is preserved and the equal-size contract of
// the EMD-model protocols keeps holding across generations.
//
// Consumers: bench_e18_churn drives server::SyncServer::ApplyUpdate with
// these batches while clients sync; tests/sketch_store_test replays the
// same traces against a SketchStore and a plain mirrored set to prove the
// incrementally maintained sketches stay bit-identical to from-scratch
// builds (DESIGN.md §9).

#ifndef RSR_WORKLOAD_CHURN_H_
#define RSR_WORKLOAD_CHURN_H_

#include <cstddef>

#include "geometry/point.h"
#include "util/random.h"
#include "workload/generator.h"

namespace rsr {
namespace workload {

/// Parameters of one churn batch.
struct ChurnSpec {
  /// Fraction of the current set replaced per batch (rounded down;
  /// min_updates floors it so tiny sets still churn).
  double fraction = 0.01;
  size_t min_updates = 1;
  /// How a replacement point relates to the erased one: perturbed copy
  /// (the common update-in-place case) at this noise scale...
  NoiseKind noise = NoiseKind::kGaussian;
  double noise_scale = 4.0;
  /// ...or, with probability fresh_fraction, a fresh uniform point
  /// (insert-new/delete-old churn).
  double fresh_fraction = 0.25;
};

/// One batch of mutations against a canonical set: erase these, insert
/// those. Balanced by construction (|inserts| == |erases|).
struct ChurnBatch {
  PointSet inserts;
  PointSet erases;
};

/// Draws one batch against `current`: picks round(fraction · n) distinct
/// victims (at least min_updates, at most n) to erase, and one replacement
/// per victim. Deterministic in *rng.
ChurnBatch MakeChurnBatch(const PointSet& current, const Universe& universe,
                          const ChurnSpec& spec, Rng* rng);

/// Applies a batch to a plain point set, mirroring
/// server::SketchStore::ApplyUpdate's semantics exactly: every erase
/// removes the first equal point (erases of absent points are skipped),
/// then the inserts are appended in order. Returns the number of erases
/// actually applied.
size_t ApplyChurnBatch(const ChurnBatch& batch, PointSet* points);

}  // namespace workload
}  // namespace rsr

#endif  // RSR_WORKLOAD_CHURN_H_
