#include "workload/churn.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

namespace rsr {
namespace workload {

ChurnBatch MakeChurnBatch(const PointSet& current, const Universe& universe,
                          const ChurnSpec& spec, Rng* rng) {
  ChurnBatch batch;
  const size_t n = current.size();
  if (n == 0) return batch;
  size_t updates =
      static_cast<size_t>(spec.fraction * static_cast<double>(n));
  if (updates < spec.min_updates) updates = spec.min_updates;
  if (updates > n) updates = n;

  // Distinct victim indices: a partial Fisher–Yates shuffle.
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  batch.erases.reserve(updates);
  batch.inserts.reserve(updates);
  for (size_t i = 0; i < updates; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng->Below(static_cast<uint64_t>(n - i)));
    std::swap(indices[i], indices[j]);
    const Point& victim = current[indices[i]];
    batch.erases.push_back(victim);
    if (rng->NextDouble() < spec.fresh_fraction) {
      Point fresh(static_cast<size_t>(universe.d));
      for (int c = 0; c < universe.d; ++c) {
        fresh[static_cast<size_t>(c)] =
            static_cast<int64_t>(rng->Below(static_cast<uint64_t>(
                universe.delta)));
      }
      batch.inserts.push_back(std::move(fresh));
    } else {
      batch.inserts.push_back(
          PerturbPoint(victim, universe, spec.noise, spec.noise_scale, rng));
    }
  }
  return batch;
}

size_t ApplyChurnBatch(const ChurnBatch& batch, PointSet* points) {
  size_t applied = 0;
  for (const Point& e : batch.erases) {
    const auto it = std::find(points->begin(), points->end(), e);
    if (it == points->end()) continue;
    points->erase(it);
    ++applied;
  }
  points->insert(points->end(), batch.inserts.begin(), batch.inserts.end());
  return applied;
}

}  // namespace workload
}  // namespace rsr
