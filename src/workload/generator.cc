#include "workload/generator.h"

#include <cmath>

#include "util/check.h"

namespace rsr {
namespace workload {

namespace {
int64_t ClampCoord(int64_t v, const Universe& universe) {
  if (v < 0) return 0;
  if (v >= universe.delta) return universe.delta - 1;
  return v;
}

Point UniformPoint(const Universe& universe, Rng* rng) {
  Point p(static_cast<size_t>(universe.d));
  for (auto& c : p) {
    c = static_cast<int64_t>(rng->Below(static_cast<uint64_t>(universe.delta)));
  }
  return p;
}
}  // namespace

PointSet GenerateCloud(const CloudSpec& spec, Rng* rng) {
  RSR_CHECK(spec.universe.d >= 1 && spec.universe.delta >= 1);
  PointSet points;
  points.reserve(spec.n);
  switch (spec.shape) {
    case CloudShape::kUniform: {
      for (size_t i = 0; i < spec.n; ++i) {
        points.push_back(UniformPoint(spec.universe, rng));
      }
      break;
    }
    case CloudShape::kClusters: {
      RSR_CHECK(spec.num_clusters >= 1);
      PointSet centres;
      centres.reserve(static_cast<size_t>(spec.num_clusters));
      for (int c = 0; c < spec.num_clusters; ++c) {
        centres.push_back(UniformPoint(spec.universe, rng));
      }
      const double sigma = spec.cluster_stddev_fraction *
                           static_cast<double>(spec.universe.delta);
      for (size_t i = 0; i < spec.n; ++i) {
        const Point& centre =
            centres[rng->Below(centres.size())];
        Point p(centre.size());
        for (size_t j = 0; j < p.size(); ++j) {
          const double v =
              static_cast<double>(centre[j]) + rng->Gaussian(0.0, sigma);
          p[j] = ClampCoord(static_cast<int64_t>(std::llround(v)),
                            spec.universe);
        }
        points.push_back(std::move(p));
      }
      break;
    }
    case CloudShape::kGridAligned: {
      RSR_CHECK(spec.grid_pitch >= 1);
      const int64_t slots =
          (spec.universe.delta + spec.grid_pitch - 1) / spec.grid_pitch;
      for (size_t i = 0; i < spec.n; ++i) {
        Point p(static_cast<size_t>(spec.universe.d));
        for (auto& c : p) {
          const int64_t slot =
              static_cast<int64_t>(rng->Below(static_cast<uint64_t>(slots)));
          c = ClampCoord(slot * spec.grid_pitch, spec.universe);
        }
        points.push_back(std::move(p));
      }
      break;
    }
  }
  return points;
}

Point PerturbPoint(const Point& p, const Universe& universe, NoiseKind kind,
                   double scale, Rng* rng) {
  Point out = p;
  switch (kind) {
    case NoiseKind::kNone:
      break;
    case NoiseKind::kGaussian:
      for (auto& c : out) {
        const double v = static_cast<double>(c) + rng->Gaussian(0.0, scale);
        c = ClampCoord(static_cast<int64_t>(std::llround(v)), universe);
      }
      break;
    case NoiseKind::kUniformBox: {
      const int64_t radius = static_cast<int64_t>(std::llround(scale));
      for (auto& c : out) {
        if (radius > 0) {
          c = ClampCoord(c + rng->Uniform(-radius, radius), universe);
        }
      }
      break;
    }
  }
  return out;
}

ReplicaPair MakeReplicaPair(const CloudSpec& cloud,
                            const PerturbationSpec& spec, uint64_t seed) {
  Rng rng(seed);
  Rng cloud_rng = rng.Fork(1);
  Rng noise_rng = rng.Fork(2);
  Rng outlier_rng = rng.Fork(3);
  Rng shuffle_rng = rng.Fork(4);

  ReplicaPair pair;
  pair.bob = GenerateCloud(cloud, &cloud_rng);

  pair.alice.reserve(pair.bob.size());
  for (const Point& p : pair.bob) {
    pair.alice.push_back(PerturbPoint(p, cloud.universe, spec.noise,
                                      spec.noise_scale, &noise_rng));
  }

  // Plant outliers: replace random distinct positions with fresh uniform
  // points (models delete-at-Bob + insert-at-Alice, keeping |alice| == n).
  const size_t k = spec.outliers < pair.alice.size() ? spec.outliers
                                                     : pair.alice.size();
  std::vector<size_t> positions(pair.alice.size());
  for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  outlier_rng.Shuffle(&positions);
  positions.resize(k);
  std::vector<char> is_outlier(pair.alice.size(), 0);
  for (size_t pos : positions) {
    pair.alice[pos] = UniformPoint(cloud.universe, &outlier_rng);
    is_outlier[pos] = 1;
  }

  // Shuffle Alice's ordering (protocols must not exploit alignment) while
  // keeping the outlier markers attached to their points.
  std::vector<size_t> perm(pair.alice.size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  shuffle_rng.Shuffle(&perm);
  PointSet shuffled(pair.alice.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    shuffled[i] = std::move(pair.alice[perm[i]]);
    if (is_outlier[perm[i]]) pair.outlier_indices.push_back(i);
  }
  pair.alice = std::move(shuffled);
  return pair;
}

}  // namespace workload
}  // namespace rsr
