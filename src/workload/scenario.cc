#include "workload/scenario.h"

namespace rsr {
namespace workload {

Scenario StandardScenario(size_t n, int d, int64_t delta, size_t k,
                          double noise, uint64_t seed) {
  Scenario s;
  s.name = "standard";
  s.universe = MakeUniverse(delta, d);
  s.metric = Metric::kL2;
  s.cloud.universe = s.universe;
  s.cloud.n = n;
  s.cloud.shape = CloudShape::kClusters;
  s.cloud.num_clusters = 16;
  s.cloud.cluster_stddev_fraction = 0.05;
  s.perturbation.noise = noise > 0 ? NoiseKind::kGaussian : NoiseKind::kNone;
  s.perturbation.noise_scale = noise;
  s.perturbation.outliers = k;
  s.seed = seed;
  return s;
}

Scenario SensorScenario(size_t n, size_t k, double noise, uint64_t seed) {
  Scenario s = StandardScenario(n, /*d=*/2, /*delta=*/int64_t{1} << 20, k,
                                noise, seed);
  s.name = "sensor";
  s.cloud.num_clusters = 32;
  s.cloud.cluster_stddev_fraction = 0.01;
  return s;
}

Scenario HighDimScenario(size_t n, int d, size_t k, double noise,
                         uint64_t seed) {
  Scenario s;
  s.name = "highdim";
  s.universe = MakeUniverse(int64_t{1} << 10, d);
  s.metric = Metric::kL1;
  s.cloud.universe = s.universe;
  s.cloud.n = n;
  s.cloud.shape = CloudShape::kUniform;
  s.perturbation.noise = noise > 0 ? NoiseKind::kUniformBox : NoiseKind::kNone;
  s.perturbation.noise_scale = noise;
  s.perturbation.outliers = k;
  s.seed = seed;
  return s;
}

}  // namespace workload
}  // namespace rsr
