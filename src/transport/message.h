// Messages exchanged by reconciliation protocols.
//
// Every protocol in this library communicates exclusively through Message
// objects carried over a transport::Channel, so reported communication costs
// are measured from real encoded payloads (at bit granularity), never
// estimated from formulas.

#ifndef RSR_TRANSPORT_MESSAGE_H_
#define RSR_TRANSPORT_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitio.h"

namespace rsr {
namespace transport {

/// A single protocol message.
struct Message {
  std::string label;             ///< Human-readable tag for transcripts.
  std::vector<uint8_t> payload;  ///< Encoded bytes.
  size_t payload_bits = 0;       ///< Exact bit count (<= payload.size()*8).

  size_t bits() const { return payload_bits; }
};

/// Builds a Message from a finished BitWriter (moves the buffer out).
Message MakeMessage(std::string label, BitWriter&& writer);

}  // namespace transport
}  // namespace rsr

#endif  // RSR_TRANSPORT_MESSAGE_H_
