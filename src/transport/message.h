// Messages exchanged by reconciliation protocols.
//
// Every protocol in this library communicates exclusively through Message
// objects carried over a transport::Channel, so reported communication costs
// are measured from real encoded payloads (at bit granularity), never
// estimated from formulas.

#ifndef RSR_TRANSPORT_MESSAGE_H_
#define RSR_TRANSPORT_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitio.h"

namespace rsr {
namespace transport {

/// A single protocol message.
struct Message {
  std::string label;             ///< Human-readable tag for transcripts.
  std::vector<uint8_t> payload;  ///< Encoded bytes.
  size_t payload_bits = 0;       ///< Exact bit count (<= payload.size()*8).

  size_t bits() const { return payload_bits; }
};

/// True iff the bit accounting is consistent: payload_bits fits in the
/// payload buffer. Every message built by MakeMessage satisfies this; the
/// wire-frame decoder (net/frame.h) re-checks it on untrusted input so a
/// corrupt peer cannot inflate or deflate communication accounting.
bool IsWellFormed(const Message& message);

/// Builds a Message from a finished BitWriter (moves the buffer out).
/// Aborts if the writer's bit count does not fit its buffer (a BitWriter
/// invariant violation, i.e. a programming error upstream).
Message MakeMessage(std::string label, BitWriter&& writer);

}  // namespace transport
}  // namespace rsr

#endif  // RSR_TRANSPORT_MESSAGE_H_
