#include "transport/message.h"

#include <utility>

#include "util/check.h"

namespace rsr {
namespace transport {

bool IsWellFormed(const Message& message) {
  return message.payload_bits <= message.payload.size() * 8;
}

Message MakeMessage(std::string label, BitWriter&& writer) {
  Message msg;
  msg.label = std::move(label);
  msg.payload_bits = writer.bit_count();
  msg.payload = std::move(writer).TakeBytes();
  RSR_CHECK_MSG(IsWellFormed(msg),
                "BitWriter bit count exceeds its buffer: corrupt accounting");
  return msg;
}

}  // namespace transport
}  // namespace rsr
