#include "transport/message.h"

#include <utility>

namespace rsr {
namespace transport {

Message MakeMessage(std::string label, BitWriter&& writer) {
  Message msg;
  msg.label = std::move(label);
  msg.payload_bits = writer.bit_count();
  msg.payload = std::move(writer).TakeBytes();
  return msg;
}

}  // namespace transport
}  // namespace rsr
