// In-memory duplex channel with exact communication accounting.
//
// A protocol run pushes each message with its direction; the channel keeps a
// FIFO per direction (so the receiving party deserialises the same bytes the
// sender produced), a transcript, per-direction bit totals, and the round
// count (the number of direction alternations — the standard communication-
// complexity notion of rounds).

#ifndef RSR_TRANSPORT_CHANNEL_H_
#define RSR_TRANSPORT_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "transport/message.h"

namespace rsr {
namespace transport {

/// Direction of a message.
enum class Direction {
  kAliceToBob,
  kBobToAlice,
};

/// Summary of a finished (or in-progress) protocol run.
struct ChannelStats {
  size_t total_bits = 0;
  size_t alice_to_bob_bits = 0;
  size_t bob_to_alice_bits = 0;
  size_t message_count = 0;
  size_t rounds = 0;  ///< Number of direction alternations (>= 1 if any msg).

  double total_bytes() const { return static_cast<double>(total_bits) / 8.0; }
};

/// One transcript line.
struct TranscriptEntry {
  Direction direction;
  std::string label;
  size_t bits;
};

class Channel {
 public:
  /// Enqueues a message and updates accounting.
  void Send(Direction direction, Message message);

  /// Dequeues the oldest undelivered message in `direction`.
  /// Returns nullopt if none is pending (e.g. an out-of-order receive);
  /// the session driver surfaces this as SessionError::kEmptyChannel
  /// instead of crashing the process.
  std::optional<Message> Receive(Direction direction);

  /// True if a message is pending in `direction`.
  bool HasPending(Direction direction) const;

  const ChannelStats& stats() const { return stats_; }
  const std::vector<TranscriptEntry>& transcript() const {
    return transcript_;
  }

  /// Renders the transcript as a small table (for examples / debugging).
  std::string TranscriptToString() const;

 private:
  std::deque<Message> to_bob_;
  std::deque<Message> to_alice_;
  ChannelStats stats_;
  std::vector<TranscriptEntry> transcript_;
  bool any_message_ = false;
  Direction last_direction_ = Direction::kAliceToBob;
};

}  // namespace transport
}  // namespace rsr

#endif  // RSR_TRANSPORT_CHANNEL_H_
