#include "transport/channel.h"

#include <utility>

namespace rsr {
namespace transport {

void Channel::Send(Direction direction, Message message) {
  stats_.total_bits += message.bits();
  if (direction == Direction::kAliceToBob) {
    stats_.alice_to_bob_bits += message.bits();
  } else {
    stats_.bob_to_alice_bits += message.bits();
  }
  ++stats_.message_count;
  if (!any_message_ || direction != last_direction_) {
    ++stats_.rounds;
    any_message_ = true;
    last_direction_ = direction;
  }
  transcript_.push_back({direction, message.label, message.bits()});
  auto& queue =
      direction == Direction::kAliceToBob ? to_bob_ : to_alice_;
  queue.push_back(std::move(message));
}

std::optional<Message> Channel::Receive(Direction direction) {
  auto& queue =
      direction == Direction::kAliceToBob ? to_bob_ : to_alice_;
  if (queue.empty()) return std::nullopt;
  Message msg = std::move(queue.front());
  queue.pop_front();
  return msg;
}

bool Channel::HasPending(Direction direction) const {
  const auto& queue =
      direction == Direction::kAliceToBob ? to_bob_ : to_alice_;
  return !queue.empty();
}

std::string Channel::TranscriptToString() const {
  std::string out;
  for (const TranscriptEntry& entry : transcript_) {
    out += entry.direction == Direction::kAliceToBob ? "A->B  " : "B->A  ";
    out += entry.label;
    out += "  ";
    out += std::to_string(entry.bits);
    out += " bits\n";
  }
  return out;
}

}  // namespace transport
}  // namespace rsr
