// Executes one fuzz script against real ReplicaNodes and the real serving
// stack, then checks the convergence oracle.
//
// RunScript builds config.num_peers ReplicaNodes (each a full serving host
// with its own changelog), applies the scripted steps in order, and at the
// end drives the mesh to QUIESCENCE: repeated sweeps in which every
// follower pulls from the designated writer, until no pull changes
// anything or the sweep budget runs out. The oracle then demands, for
// every pair of peers, exact multiset equality (SetDivergence == 0) AND
// earth mover's distance zero — computed by geometry/emd.h, a measure the
// replication stack never consults, so a bug shared by the sync driver and
// the serving layer cannot also hide the check.
//
// Step execution mirrors production topology:
//   * writer mutations journal through ReplicaNode::Apply; follower
//     mutations are off-log InstallRepair writes that mark the node dirty
//     (fuzz/script.h explains the single-writer model);
//   * sync steps run ReplicaNode::SyncWithPeer over in-process pipes or
//     loopback TCP against the source's threaded host — or, for
//     async_host steps, tail-fetch from a transient AsyncSyncServer while
//     the "@pull" repair leg stays on the threaded host (the split the
//     two-factory SyncWithPeer seam exists for);
//   * wire faults (net/fault_stream.h) wrap the puller's dialed streams:
//     mid-verb disconnects and byte-dribbled I/O;
//   * client-sync steps are a second oracle: one SyncClient run over the
//     wire must match recon::DrivePair on the same inputs bit for bit.
//
// Determinism: a report is a pure function of the script. All randomness
// is seeded from script fields, serving threads exchange bytes with one
// puller sequentially, and quiescence pulls use clean pipes.

#ifndef RSR_FUZZ_RUNNER_H_
#define RSR_FUZZ_RUNNER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "fuzz/script.h"

namespace rsr {
namespace fuzz {

enum class FuzzFailure : int {
  kNone = 0,
  kDiverged,        ///< Quiescence never reached set equality.
  kEmdNonzero,      ///< Sets "equal" but EMD > 0 (oracle cross-check).
  kOracleMismatch,  ///< Wire sync != in-process driver on same inputs.
};

const char* FuzzFailureName(FuzzFailure failure);

struct FuzzRunnerOptions {
  /// Quiescence sweeps before declaring divergence. Two sweeps suffice for
  /// a clean mesh (one to converge, one to confirm); the margin covers
  /// escalation chains (failed sized repair -> forced full transfer).
  size_t max_quiescence_sweeps = 8;
  /// EmdAuto exact/greedy crossover. Converged (identical) sets cost O(n^2)
  /// either way, so this only bounds the diagnostic cost of a failure.
  size_t emd_exact_limit = 64;
};

struct RunReport {
  bool ok = false;
  FuzzFailure failure = FuzzFailure::kNone;
  std::string detail;  ///< Human-readable failure description ("" if ok).
  size_t failed_step = ~size_t{0};  ///< Step index, or ~0 for quiescence.
  size_t ops_applied = 0;
  size_t syncs_run = 0;
  size_t sync_errors = 0;  ///< Rounds ending in kError (expected under
                           ///< fault injection; not themselves failures).
  size_t client_syncs = 0;
  size_t mesh_pulls = 0;
  size_t quiescence_sweeps = 0;
  /// One final metrics-registry excerpt per peer (counter and gauge
  /// samples in Prometheus sample syntax; histogram series are elided).
  /// Counterexample artifacts embed these as '#' header lines so a shrunk
  /// script shows which catch-up path (tail / repair / escalation) the
  /// failing run actually took. See DESIGN.md §12.
  std::vector<std::string> peer_metrics;
};

/// Runs `script` to quiescence and reports. Deterministic per script.
RunReport RunScript(const FuzzScript& script,
                    const FuzzRunnerOptions& options = {});

}  // namespace fuzz
}  // namespace rsr

#endif  // RSR_FUZZ_RUNNER_H_
