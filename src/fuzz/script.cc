#include "fuzz/script.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/random.h"
#include "workload/adversarial.h"

namespace rsr {
namespace fuzz {

namespace {

constexpr char kMagic[] = "rsr-fuzz-script v1";

/// Registry protocols a client-sync step may request. Equal-size-contract
/// protocols are included on purpose — the runner substitutes an exact-key
/// protocol at run time when the two sets' sizes differ (fuzz/runner.cc),
/// so shrinking a script never turns a valid step into an invalid one.
const char* const kClientProtocols[] = {
    "full-transfer", "exact-iblt",        "riblt-oneshot", "gap-lattice",
    "quadtree",      "quadtree-adaptive", "single-grid",   "mlsh-riblt",
};

void AppendPoint(const Point& p, std::ostringstream* out) {
  for (int64_t c : p) *out << ' ' << c;
}

bool ReadPoint(std::istringstream* in, int d, Point* out) {
  out->assign(static_cast<size_t>(d), 0);
  for (int i = 0; i < d; ++i) {
    if (!(*in >> (*out)[static_cast<size_t>(i)])) return false;
  }
  return true;
}

bool AtLineEnd(std::istringstream* in) {
  std::string rest;
  return !(*in >> rest);
}

}  // namespace

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kInsert:
      return "insert";
    case StepKind::kUpdate:
      return "update";
    case StepKind::kDelete:
      return "delete";
    case StepKind::kSync:
      return "sync";
    case StepKind::kClientSync:
      return "client";
    case StepKind::kMeshRound:
      return "mesh";
  }
  return "insert";
}

std::string SerializeScript(const FuzzScript& script) {
  std::ostringstream out;
  const FuzzConfig& c = script.config;
  out << kMagic << '\n';
  out << "seed " << c.seed << '\n';
  out << "peers " << c.num_peers << " writer " << c.writer << '\n';
  out << "universe " << c.universe_delta << ' ' << c.universe_d << '\n';
  out << "context-seed " << c.context_seed << '\n';
  out << "params-k " << c.params_k << '\n';
  out << "ring " << c.ring_capacity << '\n';
  out << "budgets " << c.exact_budget << ' ' << c.approx_budget << '\n';
  out << "geometry " << c.geometry << '\n';
  if (c.tamper_kind != 0) {
    out << "tamper " << c.tamper_kind << ' ' << c.tamper_peer << '\n';
  }
  out << "init " << script.initial.size() << '\n';
  for (const Point& p : script.initial) {
    out << "p";
    AppendPoint(p, &out);
    out << '\n';
  }
  out << "steps " << script.steps.size() << '\n';
  for (const FuzzStep& s : script.steps) {
    out << StepKindName(s.kind);
    switch (s.kind) {
      case StepKind::kInsert:
      case StepKind::kDelete:
        out << ' ' << s.peer;
        AppendPoint(s.point, &out);
        break;
      case StepKind::kUpdate:
        out << ' ' << s.peer;
        AppendPoint(s.old_point, &out);
        AppendPoint(s.point, &out);
        break;
      case StepKind::kSync:
        out << ' ' << s.peer << ' ' << s.source << ' ' << (s.tcp ? 1 : 0)
            << ' ' << (s.async_host ? 1 : 0) << ' ' << s.fault_after_bytes
            << ' ' << (s.dribble ? 1 : 0);
        break;
      case StepKind::kClientSync:
        out << ' ' << s.peer << ' ' << s.source << ' ' << (s.tcp ? 1 : 0)
            << ' ' << s.protocol;
        break;
      case StepKind::kMeshRound:
        out << ' ' << s.mesh_pulls << ' ' << s.aux_seed;
        break;
    }
    out << '\n';
  }
  out << "end\n";
  return out.str();
}

bool ParseScript(const std::string& text, FuzzScript* out) {
  *out = FuzzScript{};
  FuzzConfig& c = out->config;
  std::istringstream lines(text);
  std::string line;

  const auto next_line = [&](std::string* dst) {
    while (std::getline(lines, line)) {
      if (line.empty() || line[0] == '#') continue;
      *dst = line;
      return true;
    }
    return false;
  };

  if (!next_line(&line) || line != kMagic) return false;

  size_t init_count = 0, step_count = 0;
  bool saw_init = false, saw_steps = false, saw_end = false;
  while (next_line(&line)) {
    std::istringstream in(line);
    std::string key;
    if (!(in >> key)) return false;
    if (key == "seed") {
      if (!(in >> c.seed) || !AtLineEnd(&in)) return false;
    } else if (key == "peers") {
      std::string wkey;
      if (!(in >> c.num_peers >> wkey >> c.writer) || wkey != "writer" ||
          !AtLineEnd(&in)) {
        return false;
      }
      if (c.num_peers < 2 || c.writer >= c.num_peers) return false;
    } else if (key == "universe") {
      if (!(in >> c.universe_delta >> c.universe_d) || !AtLineEnd(&in)) {
        return false;
      }
      if (c.universe_delta < 1 || c.universe_d < 1) return false;
    } else if (key == "context-seed") {
      if (!(in >> c.context_seed) || !AtLineEnd(&in)) return false;
    } else if (key == "params-k") {
      if (!(in >> c.params_k) || !AtLineEnd(&in)) return false;
    } else if (key == "ring") {
      if (!(in >> c.ring_capacity) || !AtLineEnd(&in)) return false;
    } else if (key == "budgets") {
      if (!(in >> c.exact_budget >> c.approx_budget) || !AtLineEnd(&in)) {
        return false;
      }
    } else if (key == "geometry") {
      if (!(in >> c.geometry) || !AtLineEnd(&in)) return false;
    } else if (key == "tamper") {
      if (!(in >> c.tamper_kind >> c.tamper_peer) || !AtLineEnd(&in)) {
        return false;
      }
    } else if (key == "init") {
      if (!(in >> init_count) || !AtLineEnd(&in)) return false;
      saw_init = true;
      out->initial.reserve(init_count);
      for (size_t i = 0; i < init_count; ++i) {
        if (!next_line(&line)) return false;
        std::istringstream pin(line);
        std::string tag;
        Point p;
        if (!(pin >> tag) || tag != "p" ||
            !ReadPoint(&pin, c.universe_d, &p) || !AtLineEnd(&pin)) {
          return false;
        }
        out->initial.push_back(std::move(p));
      }
    } else if (key == "steps") {
      if (!(in >> step_count) || !AtLineEnd(&in)) return false;
      saw_steps = true;
      out->steps.reserve(step_count);
      for (size_t i = 0; i < step_count; ++i) {
        if (!next_line(&line)) return false;
        std::istringstream sin(line);
        std::string kind;
        if (!(sin >> kind)) return false;
        FuzzStep step;
        int tcp = 0, async_host = 0, dribble = 0;
        if (kind == "insert" || kind == "delete") {
          step.kind = kind == "insert" ? StepKind::kInsert : StepKind::kDelete;
          if (!(sin >> step.peer) ||
              !ReadPoint(&sin, c.universe_d, &step.point)) {
            return false;
          }
        } else if (kind == "update") {
          step.kind = StepKind::kUpdate;
          if (!(sin >> step.peer) ||
              !ReadPoint(&sin, c.universe_d, &step.old_point) ||
              !ReadPoint(&sin, c.universe_d, &step.point)) {
            return false;
          }
        } else if (kind == "sync") {
          step.kind = StepKind::kSync;
          if (!(sin >> step.peer >> step.source >> tcp >> async_host >>
                step.fault_after_bytes >> dribble)) {
            return false;
          }
        } else if (kind == "client") {
          step.kind = StepKind::kClientSync;
          if (!(sin >> step.peer >> step.source >> tcp >> step.protocol)) {
            return false;
          }
        } else if (kind == "mesh") {
          step.kind = StepKind::kMeshRound;
          if (!(sin >> step.mesh_pulls >> step.aux_seed)) return false;
        } else {
          return false;
        }
        if (!AtLineEnd(&sin)) return false;
        step.tcp = tcp != 0;
        step.async_host = async_host != 0;
        step.dribble = dribble != 0;
        if (step.kind != StepKind::kMeshRound &&
            (step.peer >= c.num_peers ||
             ((step.kind == StepKind::kSync ||
               step.kind == StepKind::kClientSync) &&
              (step.source >= c.num_peers || step.source == step.peer)))) {
          return false;
        }
        out->steps.push_back(std::move(step));
      }
    } else if (key == "end") {
      if (!AtLineEnd(&in)) return false;
      saw_end = true;
      break;
    } else {
      return false;
    }
  }
  return saw_init && saw_steps && saw_end;
}

FuzzScript GenerateScript(uint64_t seed, const GenOptions& options) {
  Rng rng(seed);
  FuzzScript script;
  FuzzConfig& c = script.config;
  c.seed = seed;
  c.num_peers =
      options.min_peers +
      rng.Below(options.max_peers - options.min_peers + 1);
  c.writer = rng.Below(c.num_peers);
  c.universe_delta = int64_t{1} << (10 + rng.Below(3));  // 2^10 .. 2^12
  c.universe_d = 2;
  c.context_seed = rng.Next64();
  // Favor k >= 32: riblt-oneshot repairs sized from a strata UNDER-estimate
  // would otherwise fail so often that most runs lean on the full-transfer
  // escalation instead of the sized protocols the fuzzer should exercise.
  const size_t k_choices[] = {16, 32, 32, 64};
  c.params_k = k_choices[rng.Below(4)];
  const size_t ring_choices[] = {8, 64, 1024};
  c.ring_capacity = ring_choices[rng.Below(3)];
  c.exact_budget = 0;  // derive riblt.k
  c.approx_budget = rng.Below(2) == 0 ? 0 : c.params_k;
  c.geometry = options.geometry >= 0 ? options.geometry
                                     : static_cast<int>(rng.Below(5));

  const Universe universe = MakeUniverse(c.universe_delta, c.universe_d);
  workload::AdversarialSampler sampler(
      universe, static_cast<workload::AdversarialGeometry>(c.geometry),
      rng.Fork(0x5eed));
  const size_t initial_n =
      options.min_initial +
      rng.Below(options.max_initial - options.min_initial + 1);
  script.initial = sampler.DrawCloud(initial_n);

  // Generation-side model of every peer's multiset — only used to bias op
  // choices toward points the peer actually holds; the runner never
  // consults it.
  std::vector<PointSet> model(c.num_peers, script.initial);

  const auto random_follower = [&] {
    size_t peer = rng.Below(c.num_peers - 1);
    if (peer >= c.writer) ++peer;
    return peer;
  };
  const auto random_other = [&](size_t peer) {
    size_t other = rng.Below(c.num_peers - 1);
    if (other >= peer) ++other;
    return other;
  };

  const size_t num_steps =
      options.min_steps + rng.Below(options.max_steps - options.min_steps + 1);
  script.steps.reserve(num_steps);
  for (size_t i = 0; i < num_steps; ++i) {
    const uint64_t r = rng.Below(100);
    FuzzStep step;
    if (r < 62) {
      // ------------------------------------------------ mutation (62%)
      step.peer = rng.Below(c.num_peers);
      PointSet& set = model[step.peer];
      const uint64_t op = rng.Below(100);
      if (op < 45 || set.empty()) {
        step.kind = StepKind::kInsert;
        const Point* anchor =
            set.empty() ? nullptr : &set[rng.Below(set.size())];
        step.point = sampler.Draw(anchor);
        set.push_back(step.point);
      } else if (op < 75) {
        step.kind = StepKind::kUpdate;
        const size_t victim = rng.Below(set.size());
        step.old_point = set[victim];
        // Half the updates are hot churn: the replacement is a
        // precision-boundary twin of the replaced point.
        step.point = rng.Below(2) == 0 ? sampler.NearDuplicate(step.old_point)
                                       : sampler.Draw(&step.old_point);
        set[victim] = step.point;
      } else {
        step.kind = StepKind::kDelete;
        const size_t victim = rng.Below(set.size());
        step.point = set[victim];
        set.erase(set.begin() + static_cast<ptrdiff_t>(victim));
      }
    } else if (r < 87) {
      // ---------------------------------------------------- sync (25%)
      step.kind = StepKind::kSync;
      step.peer = random_follower();  // the writer never pulls (file doc)
      step.source = random_other(step.peer);
      step.tcp = options.force_tcp ||
                 (options.allow_tcp && rng.Below(100) < 40);
      step.async_host = options.allow_async && rng.Below(100) < 40;
      if (rng.Bernoulli(options.fault_prob)) {
        step.fault_after_bytes = 32 + rng.Below(1 << 12);
      }
      step.dribble = rng.Bernoulli(options.dribble_prob);
      if (step.fault_after_bytes == 0) {
        model[step.peer] = model[step.source];  // assume the pull lands
      }
    } else if (r < 94 || !options.allow_mesh) {
      // -------------------------------------------- client oracle (7%)
      step.kind = StepKind::kClientSync;
      step.peer = rng.Below(c.num_peers);
      step.source = random_other(step.peer);
      step.tcp = options.force_tcp ||
                 (options.allow_tcp && rng.Below(100) < 40);
      step.protocol = kClientProtocols[rng.Below(
          sizeof kClientProtocols / sizeof kClientProtocols[0])];
    } else {
      // ----------------------------------------------- mesh round (6%)
      step.kind = StepKind::kMeshRound;
      step.mesh_pulls = 1 + rng.Below(2 * c.num_peers);
      step.aux_seed = rng.Next64();
    }
    script.steps.push_back(std::move(step));
  }
  return script;
}

}  // namespace fuzz
}  // namespace rsr
