// Fuzz script model: a deterministic, replayable description of one
// multi-peer convergence run.
//
// A FuzzScript is the COMPLETE input of one fuzzer run: the mesh shape
// (peer count, designated writer, universe, protocol params), the shared
// initial point cloud, and an ordered list of steps — point mutations on
// individual peers, pairwise anti-entropy syncs through the real serving
// stack (threaded or async host, pipes or loopback TCP, optional wire
// faults), client-oracle syncs, and randomized mesh rounds. Every point in
// the script is CONCRETE (not re-derived from an RNG at run time), so
// removing a step never shifts the meaning of the steps after it — the
// property greedy shrinking (fuzz/shrink.h) depends on.
//
// Scripts serialize to a line-oriented text format ("rsr-fuzz-script v1")
// such that Serialize(Parse(Serialize(s))) == Serialize(s) byte for byte;
// a dumped counterexample file replays exactly (fuzz/fuzz_replay_main.cc).
//
// The single-writer model: one peer (config.writer) journals its mutations
// through the replication changelog; every other peer's scripted mutations
// are OFF-LOG writes (applied + marked dirty, never journaled), because
// two independently journaled histories have incomparable sequence
// numbers. Convergence semantics are pull-replace: at quiescence every
// follower pulls from the writer until the whole mesh holds the writer's
// exact set. Sync steps therefore never make the writer the puller — a
// writer that installed a follower's off-log set would serve a tail that
// silently omits the installed delta.

#ifndef RSR_FUZZ_SCRIPT_H_
#define RSR_FUZZ_SCRIPT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"

namespace rsr {
namespace fuzz {

enum class StepKind : int {
  kInsert = 0,  ///< Insert `point` at `peer`.
  kUpdate,      ///< Replace `old_point` with `point` at `peer` (one batch).
  kDelete,      ///< Erase `point` at `peer` (no-op if absent).
  kSync,        ///< `peer` runs one anti-entropy pull from `source`.
  kClientSync,  ///< Oracle: wire-sync `peer`'s set against `source`'s host
                ///< and demand the result match the in-process driver.
  kMeshRound,   ///< `mesh_pulls` random follower pulls seeded by aux_seed.
};

const char* StepKindName(StepKind kind);

struct FuzzStep {
  StepKind kind = StepKind::kInsert;
  size_t peer = 0;    ///< Acting peer: mutation target / puller / client.
  size_t source = 0;  ///< Peer pulled from / serving peer.
  Point point;        ///< Mutation payload (update: the inserted point).
  Point old_point;    ///< Update only: the erased point.
  bool tcp = false;   ///< Dial loopback TCP instead of in-process pipes.
  bool async_host = false;  ///< Sync only: tail leg served by a transient
                            ///< AsyncSyncServer (repair leg stays on the
                            ///< threaded host; see fuzz/runner.cc).
  std::string protocol;     ///< Client sync: registry protocol to request.
  uint64_t aux_seed = 0;    ///< Mesh round: pair-choice RNG seed.
  size_t mesh_pulls = 0;    ///< Mesh round: number of pulls.
  /// Wire faults on the puller's dialed connections (net/fault_stream.h):
  /// kill the stream after this many bytes (0 = never)...
  size_t fault_after_bytes = 0;
  /// ...and/or fragment I/O into 1-byte reads / tiny writes.
  bool dribble = false;

  bool operator==(const FuzzStep&) const = default;
};

struct FuzzConfig {
  uint64_t seed = 0;  ///< Generator seed (provenance; replay uses the body).
  size_t num_peers = 2;
  size_t writer = 0;
  int64_t universe_delta = 1 << 12;
  int universe_d = 2;
  uint64_t context_seed = 9;
  size_t params_k = 32;       ///< Shared outlier/IBLT budget (params.k).
  size_t ring_capacity = 64;  ///< Changelog ring; small values force the
                              ///< fallen-off-the-log repair path.
  size_t exact_budget = 0;    ///< ReplicaNodeOptions::exact_budget.
  size_t approx_budget = 0;   ///< ReplicaNodeOptions::approx_budget.
  int geometry = 0;           ///< workload::AdversarialGeometry.
  /// Injected-bug seam for the harness self-test (fuzz/runner.h): 0 = off,
  /// 1 = drop the first erase of every changelog entry `tamper_peer`
  /// tail-replays. Part of the script so a dumped counterexample replays
  /// the bug from the file alone.
  int tamper_kind = 0;
  size_t tamper_peer = 0;

  bool operator==(const FuzzConfig&) const = default;
};

struct FuzzScript {
  FuzzConfig config;
  PointSet initial;  ///< Every peer's starting set.
  std::vector<FuzzStep> steps;

  bool operator==(const FuzzScript&) const = default;
};

/// Renders `script` in the "rsr-fuzz-script v1" text format.
std::string SerializeScript(const FuzzScript& script);

/// Parses the text format back. Blank lines and lines starting with '#'
/// are skipped (counterexample files carry a commented header). Returns
/// false on any malformed line; `out` is unspecified then.
bool ParseScript(const std::string& text, FuzzScript* out);

/// Knobs for GenerateScript. The allow_* flags select the serving mixes a
/// campaign wants covered; force_tcp pins every sync/client step to TCP.
struct GenOptions {
  size_t min_peers = 2, max_peers = 5;
  size_t min_initial = 8, max_initial = 32;
  size_t min_steps = 12, max_steps = 48;
  bool allow_tcp = false;
  bool force_tcp = false;
  bool allow_async = false;
  bool allow_mesh = false;
  double fault_prob = 0.15;    ///< Per-sync-step wire-fault probability.
  double dribble_prob = 0.25;  ///< Per-sync-step dribble probability.
  int geometry = -1;           ///< -1 = pick per script.
};

/// Builds one script, every choice drawn from Rng(seed): mesh shape,
/// adversarial geometry (workload/adversarial.h), weighted op mix
/// (insert/update/delete biased toward points the acting peer holds),
/// random pairwise syncs with random transport/host/faults, occasional
/// client-oracle syncs and mesh rounds.
FuzzScript GenerateScript(uint64_t seed, const GenOptions& options = {});

}  // namespace fuzz
}  // namespace rsr

#endif  // RSR_FUZZ_SCRIPT_H_
