#include "fuzz/shrink.h"

#include <algorithm>
#include <utility>

namespace rsr {
namespace fuzz {

namespace {

/// One ddmin pass over a sequence accessed through erase-range candidates:
/// `size()` reports the current length, `try_without(begin, count)` must
/// return true (and commit) iff the script still fails without that range.
template <typename SizeFn, typename TryFn>
void DdminPass(const SizeFn& size, const TryFn& try_without) {
  size_t chunk = std::max<size_t>(1, size() / 2);
  while (chunk >= 1) {
    size_t begin = 0;
    while (begin < size()) {
      const size_t count = std::min(chunk, size() - begin);
      if (try_without(begin, count)) {
        // Committed: the sequence shrank in place; retry the same offset.
        continue;
      }
      begin += count;
    }
    if (chunk == 1) break;
    chunk /= 2;
  }
}

}  // namespace

ShrinkOutcome ShrinkScript(const FuzzScript& failing, FuzzFailure kind,
                           const FuzzRunnerOptions& runner_options,
                           const ShrinkOptions& options) {
  ShrinkOutcome outcome;
  outcome.script = failing;
  FuzzScript& current = outcome.script;

  const auto still_fails = [&](const FuzzScript& candidate) {
    if (outcome.runs_used >= options.max_runs) return false;
    ++outcome.runs_used;
    return RunScript(candidate, runner_options).failure == kind;
  };

  // Steps first: most counterexamples are short once irrelevant traffic is
  // gone, which also makes the initial-cloud pass cheaper.
  DdminPass(
      [&] { return current.steps.size(); },
      [&](size_t begin, size_t count) {
        FuzzScript candidate = current;
        candidate.steps.erase(
            candidate.steps.begin() + static_cast<ptrdiff_t>(begin),
            candidate.steps.begin() + static_cast<ptrdiff_t>(begin + count));
        if (!still_fails(candidate)) return false;
        current = std::move(candidate);
        return true;
      });

  DdminPass(
      [&] { return current.initial.size(); },
      [&](size_t begin, size_t count) {
        FuzzScript candidate = current;
        candidate.initial.erase(
            candidate.initial.begin() + static_cast<ptrdiff_t>(begin),
            candidate.initial.begin() + static_cast<ptrdiff_t>(begin + count));
        if (!still_fails(candidate)) return false;
        current = std::move(candidate);
        return true;
      });

  return outcome;
}

}  // namespace fuzz
}  // namespace rsr
