// Greedy script shrinking: reduce a failing fuzz script to a (locally)
// minimal counterexample that still fails the same way.
//
// ddmin-style: repeatedly try deleting contiguous chunks of steps (chunk
// size n/2, then n/4, ... down to single steps), keeping any deletion
// after which the script still fails with the SAME FuzzFailure kind; then
// shrink the shared initial point cloud the same way. Deleting steps is
// always semantically safe — scripts carry concrete points, and erasing an
// absent point is a defined no-op (fuzz/script.h) — so every candidate is
// a valid script. The run budget caps total re-executions; shrinking is
// best-effort, not guaranteed-minimal.

#ifndef RSR_FUZZ_SHRINK_H_
#define RSR_FUZZ_SHRINK_H_

#include <cstddef>

#include "fuzz/runner.h"
#include "fuzz/script.h"

namespace rsr {
namespace fuzz {

struct ShrinkOptions {
  size_t max_runs = 300;  ///< Re-execution budget.
};

struct ShrinkOutcome {
  FuzzScript script;     ///< The reduced script (still fails with `kind`).
  size_t runs_used = 0;  ///< Scripts re-executed while shrinking.
};

/// Shrinks `failing` (which must fail with `kind` under `runner_options`)
/// and returns the smallest still-failing script found within the budget.
ShrinkOutcome ShrinkScript(const FuzzScript& failing, FuzzFailure kind,
                           const FuzzRunnerOptions& runner_options,
                           const ShrinkOptions& options = {});

}  // namespace fuzz
}  // namespace rsr

#endif  // RSR_FUZZ_SHRINK_H_
