// Campaign driver: run many generated scripts, shrink what fails, dump
// replayable counterexample artifacts.
//
// One campaign = one GenOptions mix executed over a list of seeds. Every
// failure is (optionally) shrunk to a near-minimal script and written to
// `artifact_dir` as a self-contained text file: a commented header (mix,
// failure kind, detail) followed by the serialized script. The file IS the
// reproduction — `fuzz_replay <file>` re-runs it byte for byte, with no
// dependence on the generator, the seed list, or this process's state
// (even the self-test's planted bug travels in the script's tamper field).

#ifndef RSR_FUZZ_CAMPAIGN_H_
#define RSR_FUZZ_CAMPAIGN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/runner.h"
#include "fuzz/script.h"
#include "fuzz/shrink.h"

namespace rsr {
namespace fuzz {

struct CampaignOptions {
  GenOptions gen;
  FuzzRunnerOptions runner;
  bool shrink_failures = true;
  ShrinkOptions shrink;
  /// Directory for counterexample files ("" = do not dump).
  std::string artifact_dir;
  /// Mix label carried into artifact headers and campaign rows.
  std::string mix_name = "default";
  /// Applied to every generated script before it runs — the harness
  /// self-test uses this to plant the tamper config on a chosen peer.
  std::function<void(FuzzScript*)> mutate_script;
};

struct Counterexample {
  uint64_t seed = 0;
  FuzzFailure kind = FuzzFailure::kNone;
  std::string detail;
  FuzzScript script;  ///< Shrunk (original when shrinking is off/failed).
  size_t original_steps = 0;
  size_t shrink_runs = 0;
  /// Final per-peer metrics-registry excerpts from running `script` — the
  /// shrunk script when shrinking ran, so the artifact's snapshot always
  /// describes the script it carries. Dumped as '#' header lines.
  std::vector<std::string> peer_metrics;
  std::string artifact_path;  ///< "" when not dumped.
};

struct CampaignResult {
  size_t scripts = 0;
  size_t failures = 0;
  size_t ops = 0;
  size_t syncs = 0;
  size_t sync_errors = 0;
  size_t client_syncs = 0;
  size_t mesh_pulls = 0;
  std::vector<Counterexample> examples;
};

/// Generates and runs one script per seed. Failures are shrunk and dumped
/// per `options`; the campaign keeps going after a failure so one run
/// reports every failing seed.
CampaignResult RunCampaign(const std::vector<uint64_t>& seeds,
                           const CampaignOptions& options);

/// Writes `example` under `dir` as fuzz-<mix>-<seed>.script. Returns the
/// path ("" on I/O failure).
std::string DumpCounterexample(const Counterexample& example,
                               const std::string& dir,
                               const std::string& mix_name);

/// Reads a script (or counterexample artifact; '#' header lines are
/// skipped by the parser) from `path`.
bool LoadScriptFile(const std::string& path, FuzzScript* out);

}  // namespace fuzz
}  // namespace rsr

#endif  // RSR_FUZZ_CAMPAIGN_H_
