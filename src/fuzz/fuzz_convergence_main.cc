// Convergence fuzzer entry point (DESIGN.md §11).
//
// Runs seed-driven campaigns over four serving mixes — pipe-only, forced
// TCP, async-host tails, mesh rounds — and reports one row per mix plus a
// BENCH_FUZZ.json (bench/bench_util.h) the CI asserts on: in smoke mode
// (fixed seed base) every script must converge. Counterexamples are
// shrunk and dumped to --artifacts as replayable script files; CI's
// nightly randomized job uploads them.
//
// Usage:
//   fuzz_convergence [--scripts=N] [--seed-base=S] [--artifacts=DIR]
//                    [--long] [--mix=NAME]
//
// --scripts     scripts per mix (default 50)
// --seed-base   first seed; mix m, script i runs seed base + 10000*m + i
//               (default 1000 — the deterministic smoke schedule)
// --artifacts   directory for counterexample dumps (default ".")
// --long        longer scripts / bigger clouds (nightly shape)
// --mix         run only the named mix (pipe | tcp | async | mesh)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "fuzz/campaign.h"

namespace {

struct Mix {
  const char* name;
  rsr::fuzz::GenOptions gen;
};

std::vector<Mix> BuildMixes(bool long_mode) {
  rsr::fuzz::GenOptions base;
  if (long_mode) {
    base.min_steps = 40;
    base.max_steps = 120;
    base.min_initial = 16;
    base.max_initial = 64;
  }
  Mix pipe{"pipe", base};
  Mix tcp{"tcp", base};
  tcp.gen.allow_tcp = true;
  tcp.gen.force_tcp = true;
  Mix async{"async", base};
  async.gen.allow_async = true;
  Mix mesh{"mesh", base};
  mesh.gen.allow_mesh = true;
  mesh.gen.allow_tcp = true;
  return {pipe, tcp, async, mesh};
}

}  // namespace

int main(int argc, char** argv) {
  size_t scripts_per_mix = 50;
  uint64_t seed_base = 1000;
  std::string artifacts = ".";
  std::string only_mix;
  bool long_mode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* scripts_arg = value("--scripts=")) {
      scripts_per_mix =
          static_cast<size_t>(std::strtoull(scripts_arg, nullptr, 10));
    } else if (const char* seed_arg = value("--seed-base=")) {
      seed_base = std::strtoull(seed_arg, nullptr, 10);
    } else if (const char* artifacts_arg = value("--artifacts=")) {
      artifacts = artifacts_arg;
    } else if (const char* mix_arg = value("--mix=")) {
      only_mix = mix_arg;
    } else if (arg == "--long") {
      long_mode = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 1;
    }
  }

  rsr::bench::Banner(
      "FUZZ", "Property-based multi-peer convergence fuzzing",
      "every random op/sync schedule converges to exact set equality "
      "(divergence == 0 AND EMD == 0) at quiescence");
  rsr::bench::Row({"mix", "scripts", "failures", "ops", "syncs",
                   "sync_errors", "client_syncs", "mesh_pulls"});

  const std::vector<Mix> mixes = BuildMixes(long_mode);
  size_t total_failures = 0;
  uint64_t mix_index = 0;
  for (const Mix& mix : mixes) {
    const uint64_t mix_base = seed_base + 10000 * mix_index++;
    if (!only_mix.empty() && only_mix != mix.name) continue;
    std::vector<uint64_t> seeds;
    seeds.reserve(scripts_per_mix);
    for (size_t i = 0; i < scripts_per_mix; ++i) seeds.push_back(mix_base + i);

    rsr::fuzz::CampaignOptions options;
    options.gen = mix.gen;
    options.mix_name = mix.name;
    options.artifact_dir = artifacts;
    const auto start = std::chrono::steady_clock::now();
    const rsr::fuzz::CampaignResult result =
        rsr::fuzz::RunCampaign(seeds, options);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();

    total_failures += result.failures;
    rsr::bench::RowExtras(
        {{"wall_ms", std::to_string(wall_ms)},
         {"seed_base", std::to_string(mix_base)}});
    rsr::bench::Row({mix.name, std::to_string(result.scripts),
                     std::to_string(result.failures),
                     std::to_string(result.ops), std::to_string(result.syncs),
                     std::to_string(result.sync_errors),
                     std::to_string(result.client_syncs),
                     std::to_string(result.mesh_pulls)});
    for (const rsr::fuzz::Counterexample& example : result.examples) {
      std::printf("  COUNTEREXAMPLE seed=%llu kind=%s steps=%zu->%zu %s\n",
                  static_cast<unsigned long long>(example.seed),
                  rsr::fuzz::FuzzFailureName(example.kind),
                  example.original_steps, example.script.steps.size(),
                  example.artifact_path.empty()
                      ? "(not dumped)"
                      : example.artifact_path.c_str());
      std::printf("    %s\n", example.detail.c_str());
    }
  }

  if (total_failures > 0) {
    std::printf("\n%zu failing script(s); replay with: fuzz_replay <file>\n",
                total_failures);
    return 1;
  }
  std::printf("\nall scripts converged\n");
  return 0;
}
