#include "fuzz/campaign.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace rsr {
namespace fuzz {

CampaignResult RunCampaign(const std::vector<uint64_t>& seeds,
                           const CampaignOptions& options) {
  CampaignResult result;
  for (const uint64_t seed : seeds) {
    FuzzScript script = GenerateScript(seed, options.gen);
    if (options.mutate_script) options.mutate_script(&script);
    const RunReport report = RunScript(script, options.runner);
    ++result.scripts;
    result.ops += report.ops_applied;
    result.syncs += report.syncs_run;
    result.sync_errors += report.sync_errors;
    result.client_syncs += report.client_syncs;
    result.mesh_pulls += report.mesh_pulls;
    if (report.ok) continue;

    ++result.failures;
    Counterexample example;
    example.seed = seed;
    example.kind = report.failure;
    example.detail = report.detail;
    example.original_steps = script.steps.size();
    example.script = script;
    example.peer_metrics = report.peer_metrics;
    if (options.shrink_failures) {
      ShrinkOutcome shrunk =
          ShrinkScript(script, report.failure, options.runner, options.shrink);
      example.shrink_runs = shrunk.runs_used;
      example.script = std::move(shrunk.script);
      // One extra run of the (tiny) shrunk script so the artifact's
      // per-peer snapshot describes the counterexample it ships, not the
      // original long run.
      example.peer_metrics =
          RunScript(example.script, options.runner).peer_metrics;
    }
    if (!options.artifact_dir.empty()) {
      example.artifact_path =
          DumpCounterexample(example, options.artifact_dir, options.mix_name);
    }
    result.examples.push_back(std::move(example));
  }
  return result;
}

std::string DumpCounterexample(const Counterexample& example,
                               const std::string& dir,
                               const std::string& mix_name) {
  const std::string path =
      dir + "/fuzz-" + mix_name + "-" + std::to_string(example.seed) +
      ".script";
  std::ofstream out(path);
  if (!out) return "";
  out << "# rsr convergence-fuzzer counterexample\n";
  out << "# mix: " << mix_name << "\n";
  out << "# failure: " << FuzzFailureName(example.kind) << "\n";
  out << "# detail: " << example.detail << "\n";
  out << "# reproduce: fuzz_replay " << path << "\n";
  // Final registry state per peer (counters/gauges; DESIGN.md §12): shows
  // which catch-up path — tail, protocol repair, escalation — the failing
  // run took. '#' lines are skipped by the replay parser.
  for (size_t i = 0; i < example.peer_metrics.size(); ++i) {
    out << "# peer " << i << " final registry:\n";
    std::istringstream lines(example.peer_metrics[i]);
    std::string line;
    while (std::getline(lines, line)) out << "#   " << line << "\n";
  }
  out << SerializeScript(example.script);
  return out ? path : "";
}

bool LoadScriptFile(const std::string& path, FuzzScript* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream text;
  text << in.rdbuf();
  return ParseScript(text.str(), out);
}

}  // namespace fuzz
}  // namespace rsr
