// Replays a dumped fuzz counterexample (or any serialized fuzz script)
// byte for byte and reports whether the failure reproduces.
//
// Usage: fuzz_replay <script-file>
//
// Exit codes: 0 = the script converged (failure did NOT reproduce),
//             2 = the failure reproduced, 1 = unusable input.
//
// The script file is the complete reproduction: mesh shape, initial
// cloud, every step, and — for harness self-test artifacts — the planted
// tamper config all travel in the file (fuzz/script.h).

#include <cstdio>
#include <string>

#include "fuzz/campaign.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: fuzz_replay <script-file>\n");
    return 1;
  }
  const std::string path = argv[1];
  rsr::fuzz::FuzzScript script;
  if (!rsr::fuzz::LoadScriptFile(path, &script)) {
    std::fprintf(stderr, "fuzz_replay: cannot parse %s\n", path.c_str());
    return 1;
  }
  std::printf("replaying %s: peers=%zu writer=%zu initial=%zu steps=%zu\n",
              path.c_str(), script.config.num_peers, script.config.writer,
              script.initial.size(), script.steps.size());
  const rsr::fuzz::RunReport report = rsr::fuzz::RunScript(script);
  if (report.ok) {
    std::printf("converged: sweeps=%zu ops=%zu syncs=%zu (failure did not "
                "reproduce)\n",
                report.quiescence_sweeps, report.ops_applied,
                report.syncs_run);
    return 0;
  }
  std::printf("REPRODUCED %s: %s\n",
              rsr::fuzz::FuzzFailureName(report.failure),
              report.detail.c_str());
  return 2;
}
