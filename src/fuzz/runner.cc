#include "fuzz/runner.h"

#include <memory>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "geometry/emd.h"
#include "geometry/metric.h"
#include "net/fault_stream.h"
#include "net/pipe_stream.h"
#include "obs/metrics.h"
#include "net/tcp.h"
#include "recon/driver.h"
#include "recon/registry.h"
#include "recon/session.h"
#include "replica/replica_node.h"
#include "server/async_sync_server.h"
#include "server/sync_client.h"
#include "transport/channel.h"
#include "util/random.h"

namespace rsr {
namespace fuzz {

namespace {

using replica::ReplicaNode;
using replica::StreamFactory;

/// Serves a threaded host on loopback TCP for the duration of one step:
/// an accept loop feeding ServeConnection, torn down by closing the
/// listener. (SyncServer::Start is one-shot per server, so transient
/// listeners are hosted here instead.)
class TcpServeScope {
 public:
  explicit TcpServeScope(server::SyncServer* host)
      : listener_(net::TcpListener::Listen("127.0.0.1", 0)) {
    if (listener_ == nullptr) return;
    acceptor_ = std::thread([host, listener = listener_.get()] {
      for (;;) {
        std::unique_ptr<net::TcpStream> stream = listener->Accept();
        if (stream == nullptr) return;
        host->ServeConnection(stream.get());
      }
    });
  }

  ~TcpServeScope() {
    if (listener_ != nullptr) listener_->Close();
    if (acceptor_.joinable()) acceptor_.join();
  }

  bool ok() const { return listener_ != nullptr; }
  uint16_t port() const { return listener_ != nullptr ? listener_->port() : 0; }

 private:
  std::unique_ptr<net::TcpListener> listener_;
  std::thread acceptor_;
};

StreamFactory TcpDialer(uint16_t port, net::FaultOptions faults) {
  return [port, faults]() -> std::unique_ptr<net::ByteStream> {
    return net::MaybeWrapFaulty(net::TcpStream::Connect("127.0.0.1", port),
                                faults);
  };
}

/// Counter and gauge samples from a peer registry, one Prometheus sample
/// line each. Histogram series (`_bucket`/`_sum`/`_count`) are elided —
/// dozens of bucket lines per protocol would drown the artifact header —
/// which leaves exactly the path evidence the counterexample needs:
/// rsr_replica_rounds_total{path=...}, repair escalations, staleness, and
/// the session outcome counters.
std::string CompactRegistryExcerpt(const obs::MetricsRegistry& registry) {
  std::istringstream in(registry.RenderPrometheus());
  std::ostringstream out;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const size_t name_end = line.find_first_of("{ ");
    const std::string name =
        name_end == std::string::npos ? line : line.substr(0, name_end);
    const auto ends_with = [&name](const char* suffix) {
      const std::string s(suffix);
      return name.size() >= s.size() &&
             name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    if (ends_with("_bucket") || ends_with("_sum") || ends_with("_count")) {
      continue;
    }
    if (!first) out << '\n';
    first = false;
    out << line;
  }
  return out.str();
}

class Harness {
 public:
  Harness(const FuzzScript& script, const FuzzRunnerOptions& options)
      : script_(script), options_(options) {
    const FuzzConfig& c = script.config;
    ctx_.universe = MakeUniverse(c.universe_delta, c.universe_d);
    ctx_.seed = c.context_seed;
    params_.k = c.params_k;

    replica::ReplicaNodeOptions node_options;
    node_options.server.context = ctx_;
    node_options.server.params = params_;
    node_options.changelog.capacity = c.ring_capacity;
    node_options.exact_budget = c.exact_budget;
    node_options.approx_budget = c.approx_budget;
    nodes_.reserve(c.num_peers);
    for (size_t i = 0; i < c.num_peers; ++i) {
      replica::ReplicaNodeOptions opts = node_options;
      if (c.tamper_kind == 1 && c.tamper_peer == i) {
        // The harness self-test's planted divergence bug: this peer drops
        // the first erase of every entry it tail-replays.
        opts.fuzz_tail_tamper = [](replica::ChangeEntry* entry) {
          if (!entry->erases.empty()) entry->erases.erase(entry->erases.begin());
        };
      }
      nodes_.push_back(
          std::make_unique<ReplicaNode>(script.initial, std::move(opts)));
    }
  }

  ~Harness() { JoinServeThreads(); }

  RunReport Run() {
    for (size_t i = 0; i < script_.steps.size(); ++i) {
      RunStep(script_.steps[i], i);
      JoinServeThreads();
      if (report_.failure != FuzzFailure::kNone) return report_;
    }
    Quiesce();
    return report_;
  }

  /// Final per-peer registry excerpts, read after Run() settles (failure
  /// or success alike — the campaign embeds them in artifacts).
  std::vector<std::string> PeerMetrics() const {
    std::vector<std::string> out;
    out.reserve(nodes_.size());
    for (const auto& node : nodes_) {
      out.push_back(CompactRegistryExcerpt(node->host().metrics_registry()));
    }
    return out;
  }

 private:
  void Fail(FuzzFailure failure, size_t step, std::string detail) {
    report_.ok = false;
    report_.failure = failure;
    report_.failed_step = step;
    report_.detail = std::move(detail);
  }

  /// A dialer whose far end is `peer`'s threaded host behind a fresh pipe
  /// pair; each dial spawns one short-lived serving thread.
  StreamFactory PipeDialer(size_t peer, net::FaultOptions faults) {
    return [this, peer, faults]() -> std::unique_ptr<net::ByteStream> {
      auto [server_end, client_end] = net::PipeStream::CreatePair();
      serve_threads_.emplace_back(
          [host = &nodes_[peer]->host(),
           end = std::move(server_end)]() mutable {
            host->ServeConnection(end.get());
          });
      return net::MaybeWrapFaulty(std::move(client_end), faults);
    };
  }

  void JoinServeThreads() {
    for (std::thread& t : serve_threads_) t.join();
    serve_threads_.clear();
  }

  net::FaultOptions StepFaults(const FuzzStep& step, size_t index) const {
    net::FaultOptions faults;
    faults.close_after_bytes = step.fault_after_bytes;
    faults.dribble = step.dribble;
    faults.seed = script_.config.seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
    return faults;
  }

  void ApplyMutation(const FuzzStep& step, PointSet inserts, PointSet erases) {
    ReplicaNode& node = *nodes_[step.peer];
    if (step.peer == script_.config.writer) {
      node.Apply(inserts, erases);
    } else {
      // Off-log write: applied and marked dirty, never journaled — the
      // follower's set no longer corresponds to its log position, and the
      // next quiescence pull repairs it through a real protocol.
      node.host().InstallRepair(inserts, erases, node.applied_seq(),
                                /*exact=*/false);
    }
    ++report_.ops_applied;
  }

  void RunSync(size_t puller, size_t source, const FuzzStep& step,
               size_t index) {
    net::FaultOptions faults = StepFaults(step, index);
    replica::RoundRecord record;
    if (step.async_host) {
      // Tail leg from a transient async host mirroring the source's set
      // and sharing its changelog; "@pull" repairs stay on the source's
      // threaded host (the async reactor serves only the writer verbs).
      server::AsyncSyncServerOptions async_options;
      async_options.context = ctx_;
      async_options.params = params_;
      async_options.shards = 1;
      async_options.changelog = &nodes_[source]->changelog();
      server::AsyncSyncServer async(nodes_[source]->points(), async_options);
      if (!async.Start(net::TcpListener::Listen("127.0.0.1", 0))) {
        ++report_.sync_errors;
        return;
      }
      record = nodes_[puller]->SyncWithPeer(
          TcpDialer(async.port(), faults),
          PipeDialer(source, faults));
      async.Stop();
    } else if (step.tcp) {
      TcpServeScope scope(&nodes_[source]->host());
      if (!scope.ok()) {
        ++report_.sync_errors;
        return;
      }
      record = nodes_[puller]->SyncWithPeer(TcpDialer(scope.port(), faults));
    } else {
      record = nodes_[puller]->SyncWithPeer(PipeDialer(source, faults));
    }
    ++report_.syncs_run;
    if (!record.ok) ++report_.sync_errors;
  }

  void RunClientSync(const FuzzStep& step, size_t index) {
    const recon::ProtocolRegistry& registry = recon::ProtocolRegistry::Global();
    const PointSet client_points = nodes_[step.peer]->points();
    // Pin the serving snapshot now: nothing mutates between here and the
    // wire sync, so both computations see the same generation.
    const std::shared_ptr<const server::SketchSnapshot> snap =
        nodes_[step.source]->host().snapshot();

    std::string protocol = step.protocol;
    std::unique_ptr<recon::Reconciler> reconciler =
        registry.Create(protocol, ctx_, params_);
    if (reconciler == nullptr) {
      protocol = "full-transfer";
      reconciler = registry.Create(protocol, ctx_, params_);
    }
    if (reconciler->RequiresEqualSizes() &&
        client_points.size() != snap->size()) {
      // The EMD-model protocols' contract assumes |S_A| == |S_B|; when a
      // shrunken or drifted script violates it, substitute the exact-key
      // protocol instead of running outside the contract.
      protocol = "riblt-oneshot";
      reconciler = registry.Create(protocol, ctx_, params_);
    }

    server::SyncClientOptions client_options;
    client_options.context = ctx_;
    client_options.params = params_;
    const server::SyncClient client(client_options);
    server::SyncOutcome outcome;
    if (step.tcp) {
      TcpServeScope scope(&nodes_[step.source]->host());
      if (!scope.ok()) return;
      const std::unique_ptr<net::ByteStream> stream =
          net::TcpStream::Connect("127.0.0.1", scope.port());
      if (stream == nullptr) return;
      outcome = client.Sync(stream.get(), protocol, client_points);
    } else {
      auto [server_end, client_end] = net::PipeStream::CreatePair();
      std::thread server([host = &nodes_[step.source]->host(),
                          end = std::move(server_end)]() mutable {
        host->ServeConnection(end.get());
      });
      outcome = client.Sync(client_end.get(), protocol, client_points);
      server.join();
    }
    ++report_.client_syncs;

    // Oracle: the served sync must match the in-process driver bit for bit
    // on the same (client set, pinned snapshot) inputs.
    const std::unique_ptr<recon::PartySession> alice =
        reconciler->MakeAliceSession(client_points);
    const std::unique_ptr<recon::PartySession> bob =
        reconciler->MakeBobSession(snap->points(), snap.get());
    transport::Channel channel;
    const recon::ReconResult expected =
        recon::DrivePair(alice.get(), bob.get(), &channel);
    if (!outcome.handshake_ok || !outcome.error_detail.empty() ||
        outcome.result.success != expected.success ||
        (expected.success && outcome.result.bob_final != expected.bob_final)) {
      std::ostringstream detail;
      detail << "client-sync oracle mismatch: protocol=" << protocol
             << " peer=" << step.peer << " source=" << step.source
             << " wire{ok=" << outcome.result.success
             << " handshake=" << outcome.handshake_ok
             << " detail=" << outcome.error_detail
             << " |set|=" << outcome.result.bob_final.size()
             << "} driver{ok=" << expected.success
             << " |set|=" << expected.bob_final.size() << "}";
      Fail(FuzzFailure::kOracleMismatch, index, detail.str());
    }
  }

  void RunMeshRound(const FuzzStep& step, size_t index) {
    const size_t n = script_.config.num_peers;
    Rng rng(step.aux_seed);
    for (size_t k = 0; k < step.mesh_pulls; ++k) {
      size_t puller = rng.Below(n - 1);
      if (puller >= script_.config.writer) ++puller;  // followers only
      size_t source = rng.Below(n - 1);
      if (source >= puller) ++source;
      const replica::RoundRecord record =
          nodes_[puller]->SyncWithPeer(PipeDialer(source, {}));
      ++report_.mesh_pulls;
      if (!record.ok) ++report_.sync_errors;
    }
    (void)index;
  }

  void RunStep(const FuzzStep& step, size_t index) {
    switch (step.kind) {
      case StepKind::kInsert:
        ApplyMutation(step, {step.point}, {});
        break;
      case StepKind::kDelete:
        ApplyMutation(step, {}, {step.point});
        break;
      case StepKind::kUpdate:
        ApplyMutation(step, {step.point}, {step.old_point});
        break;
      case StepKind::kSync:
        RunSync(step.peer, step.source, step, index);
        break;
      case StepKind::kClientSync:
        RunClientSync(step, index);
        break;
      case StepKind::kMeshRound:
        RunMeshRound(step, index);
        break;
    }
  }

  size_t MaxDivergence(std::ostringstream* detail) const {
    size_t max_div = 0;
    for (size_t i = 0; i < nodes_.size(); ++i) {
      for (size_t j = i + 1; j < nodes_.size(); ++j) {
        const size_t div =
            replica::SetDivergence(nodes_[i]->points(), nodes_[j]->points());
        if (div > 0 && detail != nullptr) {
          *detail << " d(" << i << "," << j << ")=" << div;
        }
        max_div = std::max(max_div, div);
      }
    }
    return max_div;
  }

  void Quiesce() {
    const size_t writer = script_.config.writer;
    std::string last_error;
    bool converged = false;
    for (size_t sweep = 0; sweep < options_.max_quiescence_sweeps; ++sweep) {
      for (size_t i = 0; i < nodes_.size(); ++i) {
        if (i == writer) continue;
        const replica::RoundRecord record =
            nodes_[i]->SyncWithPeer(PipeDialer(writer, {}));
        if (!record.ok) last_error = record.error_detail;
      }
      JoinServeThreads();
      report_.quiescence_sweeps = sweep + 1;
      if (MaxDivergence(nullptr) == 0) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      std::ostringstream detail;
      detail << "not converged after " << report_.quiescence_sweeps
             << " quiescence sweeps:";
      MaxDivergence(&detail);
      if (!last_error.empty()) detail << " last_round_error=" << last_error;
      Fail(FuzzFailure::kDiverged, ~size_t{0}, detail.str());
      return;
    }
    // Independent oracle: set equality established, EMD must agree. The
    // replication stack never computes EMD, so a shared bug cannot also
    // fake this zero.
    for (size_t i = 0; i < nodes_.size(); ++i) {
      if (i == writer) continue;
      const double emd =
          EmdAuto(nodes_[writer]->points(), nodes_[i]->points(), Metric::kL1,
                  options_.emd_exact_limit);
      if (emd != 0.0) {
        std::ostringstream detail;
        detail << "converged sets with nonzero EMD: emd(" << writer << ","
               << i << ")=" << emd;
        Fail(FuzzFailure::kEmdNonzero, ~size_t{0}, detail.str());
        return;
      }
    }
    report_.ok = true;
  }

  const FuzzScript& script_;
  const FuzzRunnerOptions& options_;
  recon::ProtocolContext ctx_;
  recon::ProtocolParams params_;
  std::vector<std::unique_ptr<ReplicaNode>> nodes_;
  std::vector<std::thread> serve_threads_;
  RunReport report_;
};

}  // namespace

const char* FuzzFailureName(FuzzFailure failure) {
  switch (failure) {
    case FuzzFailure::kNone:
      return "none";
    case FuzzFailure::kDiverged:
      return "diverged";
    case FuzzFailure::kEmdNonzero:
      return "emd-nonzero";
    case FuzzFailure::kOracleMismatch:
      return "oracle-mismatch";
  }
  return "none";
}

RunReport RunScript(const FuzzScript& script, const FuzzRunnerOptions& options) {
  Harness harness(script, options);
  RunReport report = harness.Run();
  report.peer_metrics = harness.PeerMetrics();
  return report;
}

}  // namespace fuzz
}  // namespace rsr
