// Robust Invertible Bloom Lookup Table (extension module).
//
// The RIBLT is the 2014 paper's future-work direction, formalised in the
// 2018 follow-up: an IBLT variant that tolerates *duplicate keys with
// different values* — exactly what happens when locality-sensitive keys
// collide for near-but-not-equal points. Differences from the plain IBLT:
//
//  1. Cells keep integer SUMS (not XORs) of keys, key checksums and
//     per-coordinate values, so c copies of one key are recognisable:
//     a cell is peelable when its key sum is divisible by its count C and
//     the checksum sum equals C · checksum(key_sum / C).
//  2. Peeling runs breadth-first (FIFO over cells), which is what bounds
//     error propagation to O(1) extra cells per residual error in the
//     sparse regime (cells > q(q-1) · entries).
//  3. Extracted values are the coordinate-wise average of the colliding
//     values, randomly rounded back into [0, Δ)^d (each extracted copy is
//     rounded independently).
//  4. Matched same-key pairs from the two parties cancel in the key/count/
//     checksum fields but may leave a VALUE residue in their cells; that
//     residue is silently absorbed into later extractions — the "error
//     propagation" the protocol's analysis bounds. Decode success is
//     therefore judged on counts/keys/checksums only.

#ifndef RSR_RIBLT_RIBLT_H_
#define RSR_RIBLT_RIBLT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geometry/point.h"
#include "hash/checksum.h"
#include "hash/family.h"
#include "util/bitio.h"
#include "util/random.h"

namespace rsr {

/// Static configuration; both parties must agree (derived from public
/// parameters).
struct RibltConfig {
  size_t cells = 0;       ///< Rounded up to a multiple of q. The robust
                          ///< analysis wants cells > q(q-1) · entries.
  int q = 3;              ///< Hash functions / partitions.
  Universe universe;      ///< Value domain [Δ]^d (fixes field widths).
  size_t max_entries = 0; ///< Upper bound on inserted+erased pairs (fixes
                          ///< sum-field widths; overflow is the caller's
                          ///< responsibility to avoid).
  int count_bits = 16;
  uint64_t seed = 0;

  size_t RoundedCells() const;
  int KeySumBits() const;    ///< Width of the key / checksum sum fields.
  int CoordSumBits() const;  ///< Width of one value-coordinate sum field.
  size_t SerializedBits() const;
};

/// One extracted entry: `copies` identical keys collapsed into one record;
/// `values` holds one independently rounded point per copy.
struct RibltEntry {
  uint64_t key = 0;
  std::vector<Point> values;  ///< size == copies.
  int sign = 0;               ///< +1 inserted side, -1 erased side.
};

struct RibltDecodeResult {
  bool success = false;
  std::vector<RibltEntry> entries;
};

class Riblt {
 public:
  explicit Riblt(const RibltConfig& config);

  const RibltConfig& config() const { return config_; }
  size_t cells() const { return m_; }

  /// Adds / removes one (key, point) pair. The point must lie in the
  /// configured universe.
  void Insert(uint64_t key, const Point& value);
  void Erase(uint64_t key, const Point& value);

  /// Cell-wise this -= other (configs must match).
  void Subtract(const Riblt& other);

  /// Breadth-first robust peeling. `rng` drives the randomised rounding of
  /// averaged values. If max_entries > 0, aborts once more than that many
  /// pairs (counting copies) have been extracted.
  RibltDecodeResult Decode(Rng* rng, size_t max_entries = 0) const;

  /// True when counts, key sums and checksum sums are all zero (value
  /// residue from matched noisy pairs is permitted).
  bool IsStructurallyEmpty() const;

  void Serialize(BitWriter* out) const;
  static std::optional<Riblt> Deserialize(const RibltConfig& config,
                                          BitReader* in);

 private:
  void Apply(uint64_t key, const Point& value, int direction);
  void RemoveGroup(uint64_t key, int64_t count,
                   const std::vector<int64_t>& value_sum);

  RibltConfig config_;
  size_t m_;
  int d_;
  IndexHasher indexer_;
  Checksum checksum_;
  std::vector<int64_t> counts_;
  std::vector<__int128> key_sums_;
  std::vector<__int128> check_sums_;
  std::vector<int64_t> value_sums_;  // m_ * d_, cell-major
};

}  // namespace rsr

#endif  // RSR_RIBLT_RIBLT_H_
