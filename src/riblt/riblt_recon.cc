#include "riblt/riblt_recon.h"

#include <limits>
#include <utility>
#include <vector>

#include "hash/mix.h"
#include "recon/session.h"
#include "riblt/riblt.h"
#include "util/random.h"

namespace rsr {

RibltConfig RibltOneShotConfig(const Universe& universe,
                               const RibltReconParams& params, size_t n,
                               uint64_t seed) {
  RibltConfig config;
  config.cells = static_cast<size_t>(
      params.cells_factor * params.q * params.q *
      static_cast<double>(params.k > 0 ? params.k : 1));
  config.q = params.q;
  config.universe = universe;
  config.max_entries = 2 * n + 2;
  config.count_bits = params.count_bits;
  config.seed = Hash64(0x726c7431ULL, seed);  // "rlt1" tag
  return config;
}

namespace {

class RibltOneShotAlice : public recon::PartySessionBase {
 public:
  RibltOneShotAlice(const recon::ProtocolContext& context,
                    const RibltReconParams& params, PointSet points)
      : context_(context), params_(params), points_(std::move(points)) {}

  std::vector<transport::Message> Start() override {
    Riblt table(RibltOneShotConfig(context_.universe, params_,
                                   points_.size(), context_.seed));
    for (const Point& p : points_) {
      table.Insert(PointKey(p, context_.seed), p);
    }
    BitWriter w;
    w.WriteVarint(points_.size());
    table.Serialize(&w);
    result_.success = true;
    Finish();
    return OneMessage(transport::MakeMessage("riblt-set", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(transport::Message) override {
    FailWith(recon::SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  recon::ProtocolContext context_;
  RibltReconParams params_;
  PointSet points_;
};

class RibltOneShotBob : public recon::PartySessionBase {
 public:
  RibltOneShotBob(const recon::ProtocolContext& context,
                  const RibltReconParams& params, PointSet points,
                  const recon::CanonicalSketchProvider* sketches)
      : context_(context),
        params_(params),
        points_(std::move(points)),
        sketches_(sketches) {
    result_.bob_final = points_;
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(recon::SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    const PointSet& bob = points_;
    BitReader r(message.payload);
    // Alice's n is prefixed: max_entries (and thus the sum-field widths)
    // must match hers even when the set sizes differ.
    uint64_t alice_n = 0;
    if (!r.ReadVarint(&alice_n)) {
      FailWith(recon::SessionError::kMalformedMessage);
      return NoMessages();
    }
    const RibltConfig config =
        RibltOneShotConfig(context_.universe, params_,
                           static_cast<size_t>(alice_n), context_.seed);
    std::optional<Riblt> diff = Riblt::Deserialize(config, &r);
    if (!diff.has_value()) {
      FailWith(recon::SessionError::kMalformedMessage);
      return NoMessages();
    }
    // Erasing Bob's pairs one by one and subtracting a cached table of the
    // same pairs are the same linear operation on the cells; the cache
    // makes this step difference-independent of |S_B|.
    std::optional<Riblt> cached =
        sketches_ != nullptr ? sketches_->OneShotRiblt(config) : std::nullopt;
    if (cached.has_value()) {
      diff->Subtract(*cached);
    } else {
      for (const Point& p : bob) {
        diff->Erase(PointKey(p, context_.seed), p);
      }
    }
    Rng rounding_rng(context_.seed ^ 0x726c7472ULL);  // "rltr" tag
    const RibltDecodeResult decoded =
        diff->Decode(&rounding_rng, params_.DecodeBudget());
    if (decoded.success) {
      // +1 entries are Alice-only points to adopt; -1 entries are Bob-only
      // points to retire (matched greedily against his own set, since the
      // decoded copies may carry averaged-value residue).
      PointSet xa, xb;
      for (const RibltEntry& entry : decoded.entries) {
        for (const Point& value : entry.values) {
          (entry.sign > 0 ? xa : xb).push_back(value);
        }
      }
      std::vector<char> taken(bob.size(), 0);
      for (const Point& x : xb) {
        double best = std::numeric_limits<double>::infinity();
        size_t best_index = bob.size();
        for (size_t i = 0; i < bob.size(); ++i) {
          if (taken[i]) continue;
          const double dist = Distance(x, bob[i], params_.metric);
          if (dist < best) {
            best = dist;
            best_index = i;
          }
        }
        if (best_index < bob.size()) taken[best_index] = 1;
      }
      PointSet final_set;
      final_set.reserve(bob.size());
      for (size_t i = 0; i < bob.size(); ++i) {
        if (!taken[i]) final_set.push_back(bob[i]);
      }
      for (Point& p : xa) final_set.push_back(std::move(p));
      result_.success = true;
      result_.decoded_entries = xa.size() + xb.size();
      result_.bob_final = std::move(final_set);
    }
    Finish();
    return NoMessages();
  }

 private:
  recon::ProtocolContext context_;
  RibltReconParams params_;
  PointSet points_;
  const recon::CanonicalSketchProvider* sketches_;
};

}  // namespace

std::unique_ptr<recon::PartySession> RibltReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<RibltOneShotAlice>(context_, params_, points);
}

std::unique_ptr<recon::PartySession> RibltReconciler::MakeBobSession(
    const PointSet& points) const {
  return MakeBobSession(points, nullptr);
}

std::unique_ptr<recon::PartySession> RibltReconciler::MakeBobSession(
    const PointSet& points,
    const recon::CanonicalSketchProvider* sketches) const {
  return std::make_unique<RibltOneShotBob>(context_, params_, points,
                                           sketches);
}

}  // namespace rsr
