// One-shot exact-key reconciliation over the Robust IBLT (extension
// module).
//
// The simplest protocol the RIBLT substrate supports: every point is keyed
// by its exact hash (PointKey), so only bit-identical replicas cancel —
// like the exact-IBLT baseline, but duplicate-tolerant (the RIBLT's
// sum-cells recognise c copies of one key) and single-message. Alice ships
// one RIBLT of (key, point) pairs sized for k differing points; Bob erases
// his pairs, decodes, adopts the +1 (Alice-only) points and retires the
// nearest match of each -1 (Bob-only) point.
//
// This is deliberately NOT robust to per-point noise (that is what the
// MLSH keying in lshrecon/ adds on top); it exists as the registry's
// exact-flavour one-shot baseline and as an end-to-end exercise of the
// RIBLT itself.
//
// Sessions (1 message, 1 round):
//   Alice:  Start -> "riblt-set" (her pairs sketched into one RIBLT), done.
//   Bob:    await "riblt-set" -> erase, decode, repair, done.

#ifndef RSR_RIBLT_RIBLT_RECON_H_
#define RSR_RIBLT_RIBLT_RECON_H_

#include <cstddef>
#include <cstdint>

#include "geometry/metric.h"
#include "recon/protocol.h"
#include "recon/sketch_provider.h"
#include "riblt/riblt.h"

namespace rsr {

/// Tunables of the one-shot RIBLT protocol.
struct RibltReconParams {
  size_t k = 16;              ///< Differing-point budget the table is sized
                              ///< for.
  int q = 3;                  ///< RIBLT hash functions.
  double cells_factor = 4.0;  ///< cells = factor · q² · k (robust regime).
  size_t decode_budget = 0;   ///< Max pairs accepted; 0 derives 8k + 16.
  int count_bits = 16;
  Metric metric = Metric::kL2;  ///< Bob's local matching metric.

  size_t DecodeBudget() const {
    return decode_budget > 0 ? decode_budget : 8 * k + 16;
  }
};

/// The shared one-shot RIBLT configuration for a party of size n (n only
/// fixes max_entries, i.e. the serialized sum-field widths). Exported so a
/// canonical sketch store can maintain the table a Bob session expects
/// (server/sketch_store.h).
RibltConfig RibltOneShotConfig(const Universe& universe,
                               const RibltReconParams& params, size_t n,
                               uint64_t seed);

class RibltReconciler : public recon::Reconciler {
 public:
  RibltReconciler(const recon::ProtocolContext& context,
                  const RibltReconParams& params)
      : context_(context), params_(params) {}

  std::string Name() const override { return "riblt-oneshot"; }
  std::unique_ptr<recon::PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<recon::PartySession> MakeBobSession(
      const PointSet& points) const override;
  std::unique_ptr<recon::PartySession> MakeBobSession(
      const PointSet& points,
      const recon::CanonicalSketchProvider* sketches) const override;

 private:
  recon::ProtocolContext context_;
  RibltReconParams params_;
};

}  // namespace rsr

#endif  // RSR_RIBLT_RIBLT_RECON_H_
