#include "riblt/riblt.h"

#include <deque>

#include "util/check.h"

namespace rsr {

namespace {

// Serialises a signed 128-bit value in `bits` bits (two's complement,
// low word first).
void WriteSigned128(BitWriter* out, __int128 v, int bits) {
  const unsigned __int128 u = static_cast<unsigned __int128>(v);
  if (bits <= 64) {
    out->WriteBits(static_cast<uint64_t>(u), bits);
  } else {
    out->WriteBits(static_cast<uint64_t>(u), 64);
    out->WriteBits(static_cast<uint64_t>(u >> 64), bits - 64);
  }
}

bool ReadSigned128(BitReader* in, int bits, __int128* out) {
  uint64_t lo = 0, hi = 0;
  if (bits <= 64) {
    if (!in->ReadBits(bits, &lo)) return false;
    // Sign-extend.
    if (bits < 64 && ((lo >> (bits - 1)) & 1)) lo |= ~uint64_t{0} << bits;
    hi = (lo >> 63) ? ~uint64_t{0} : 0;
  } else {
    if (!in->ReadBits(64, &lo)) return false;
    if (!in->ReadBits(bits - 64, &hi)) return false;
    const int hbits = bits - 64;
    if (hbits < 64 && ((hi >> (hbits - 1)) & 1)) hi |= ~uint64_t{0} << hbits;
  }
  *out = static_cast<__int128>(
      (static_cast<unsigned __int128>(hi) << 64) | lo);
  return true;
}

}  // namespace

size_t RibltConfig::RoundedCells() const {
  RSR_CHECK(q >= 1);
  const size_t q_sz = static_cast<size_t>(q);
  size_t m = cells == 0 ? q_sz : cells;
  if (m % q_sz != 0) m += q_sz - (m % q_sz);
  return m;
}

int RibltConfig::KeySumBits() const {
  // |sum| <= max_entries * 2^64; add one sign bit.
  const int extra = BitWidthForUniverse(
      static_cast<uint64_t>(max_entries) + 1);
  const int bits = 64 + extra + 1;
  return bits > 128 ? 128 : bits;
}

int RibltConfig::CoordSumBits() const {
  // |sum| <= max_entries * delta; add one sign bit.
  const int bits = BitWidthForUniverse(static_cast<uint64_t>(universe.delta)) +
                   BitWidthForUniverse(static_cast<uint64_t>(max_entries) + 1) +
                   1;
  return bits > 63 ? 63 : bits;
}

size_t RibltConfig::SerializedBits() const {
  const size_t per_cell =
      static_cast<size_t>(count_bits) +
      2 * static_cast<size_t>(KeySumBits()) +
      static_cast<size_t>(universe.d) * static_cast<size_t>(CoordSumBits());
  return RoundedCells() * per_cell;
}

Riblt::Riblt(const RibltConfig& config)
    : config_(config),
      m_(config.RoundedCells()),
      d_(config.universe.d),
      indexer_(config.seed, config.q, m_),
      checksum_(config.seed ^ 0x72636865636bULL),  // "rcheck" tag
      counts_(m_, 0),
      key_sums_(m_, 0),
      check_sums_(m_, 0),
      value_sums_(m_ * static_cast<size_t>(d_), 0) {
  RSR_CHECK(config.universe.d >= 1 && config.universe.delta >= 1);
  RSR_CHECK(config.max_entries >= 1);
}

void Riblt::Apply(uint64_t key, const Point& value, int direction) {
  RSR_DCHECK(config_.universe.Contains(value));
  const __int128 check = static_cast<__int128>(checksum_(key));
  for (int j = 0; j < config_.q; ++j) {
    const size_t cell = indexer_.Cell(key, j);
    counts_[cell] += direction;
    key_sums_[cell] += static_cast<__int128>(key) * direction;
    check_sums_[cell] += check * direction;
    int64_t* vs = value_sums_.data() + cell * static_cast<size_t>(d_);
    for (int i = 0; i < d_; ++i) {
      vs[i] += direction * value[static_cast<size_t>(i)];
    }
  }
}

void Riblt::Insert(uint64_t key, const Point& value) { Apply(key, value, 1); }
void Riblt::Erase(uint64_t key, const Point& value) { Apply(key, value, -1); }

void Riblt::Subtract(const Riblt& other) {
  RSR_CHECK(m_ == other.m_);
  RSR_CHECK(config_.q == other.config_.q);
  RSR_CHECK(config_.seed == other.config_.seed);
  RSR_CHECK(d_ == other.d_);
  for (size_t i = 0; i < m_; ++i) {
    counts_[i] -= other.counts_[i];
    key_sums_[i] -= other.key_sums_[i];
    check_sums_[i] -= other.check_sums_[i];
  }
  for (size_t i = 0; i < value_sums_.size(); ++i) {
    value_sums_[i] -= other.value_sums_[i];
  }
}

void Riblt::RemoveGroup(uint64_t key, int64_t count,
                        const std::vector<int64_t>& value_sum) {
  const __int128 check =
      static_cast<__int128>(checksum_(key)) * count;
  const __int128 key_total = static_cast<__int128>(key) * count;
  for (int j = 0; j < config_.q; ++j) {
    const size_t cell = indexer_.Cell(key, j);
    counts_[cell] -= count;
    key_sums_[cell] -= key_total;
    check_sums_[cell] -= check;
    int64_t* vs = value_sums_.data() + cell * static_cast<size_t>(d_);
    for (int i = 0; i < d_; ++i) vs[i] -= value_sum[static_cast<size_t>(i)];
  }
}

bool Riblt::IsStructurallyEmpty() const {
  for (size_t i = 0; i < m_; ++i) {
    if (counts_[i] != 0 || key_sums_[i] != 0 || check_sums_[i] != 0) {
      return false;
    }
  }
  return true;
}

RibltDecodeResult Riblt::Decode(Rng* rng, size_t max_entries) const {
  RibltDecodeResult result;
  Riblt work = *this;
  const int64_t delta = config_.universe.delta;

  // Breadth-first (FIFO) peeling: the specific order the robust analysis
  // requires — an error is only propagated to cells strictly later in the
  // queue, which keeps the expected number of contaminated extractions O(1).
  std::deque<size_t> queue;
  std::vector<char> queued(m_, 0);
  auto maybe_enqueue = [&](size_t cell) {
    if (!queued[cell]) {
      queued[cell] = 1;
      queue.push_back(cell);
    }
  };
  for (size_t i = 0; i < m_; ++i) maybe_enqueue(i);

  size_t extracted_pairs = 0;
  while (!queue.empty()) {
    const size_t cell = queue.front();
    queue.pop_front();
    queued[cell] = 0;

    const int64_t count = work.counts_[cell];
    if (count == 0) continue;
    const __int128 key_sum = work.key_sums_[cell];
    if (key_sum % count != 0) continue;
    const __int128 key_wide = key_sum / count;
    if (key_wide < 0 ||
        key_wide > static_cast<__int128>(~uint64_t{0})) {
      continue;
    }
    const uint64_t key = static_cast<uint64_t>(key_wide);
    if (work.check_sums_[cell] !=
        static_cast<__int128>(work.checksum_(key)) * count) {
      continue;  // not c copies of one key
    }

    const int sign = count > 0 ? 1 : -1;
    const int64_t copies = count > 0 ? count : -count;

    // Average the value sums and randomly round each copy independently.
    const int64_t* vs =
        work.value_sums_.data() + cell * static_cast<size_t>(d_);
    std::vector<int64_t> group_value_sum(vs, vs + d_);
    RibltEntry entry;
    entry.key = key;
    entry.sign = sign;
    entry.values.reserve(static_cast<size_t>(copies));
    for (int64_t c = 0; c < copies; ++c) {
      Point p(static_cast<size_t>(d_));
      for (int i = 0; i < d_; ++i) {
        // Signed average with exact floor division; `count` carries the
        // side's sign so the average is the true mean of the values.
        const int64_t num = group_value_sum[static_cast<size_t>(i)];
        int64_t q_floor = num / count;
        int64_t rem = num % count;
        if (rem != 0 && ((rem < 0) != (count < 0))) {
          --q_floor;
          rem += count;
        }
        // Fractional part is rem/count in [0, 1).
        const double frac =
            static_cast<double>(rem) / static_cast<double>(count);
        int64_t v = q_floor;
        if (rem != 0 && rng->Bernoulli(frac)) ++v;
        if (v < 0) v = 0;
        if (v >= delta) v = delta - 1;
        p[static_cast<size_t>(i)] = v;
      }
      entry.values.push_back(std::move(p));
    }

    work.RemoveGroup(key, count, group_value_sum);
    for (int j = 0; j < config_.q; ++j) {
      maybe_enqueue(indexer_.Cell(key, j));
    }

    extracted_pairs += static_cast<size_t>(copies);
    result.entries.push_back(std::move(entry));
    if (max_entries > 0 && extracted_pairs > max_entries) {
      result.success = false;
      return result;
    }
  }

  result.success = work.IsStructurallyEmpty();
  return result;
}

void Riblt::Serialize(BitWriter* out) const {
  const int key_bits = config_.KeySumBits();
  const int coord_bits = config_.CoordSumBits();
  for (size_t i = 0; i < m_; ++i) {
    out->WriteBits(static_cast<uint64_t>(counts_[i]), config_.count_bits);
    WriteSigned128(out, key_sums_[i], key_bits);
    WriteSigned128(out, check_sums_[i], key_bits);
    const int64_t* vs = value_sums_.data() + i * static_cast<size_t>(d_);
    for (int c = 0; c < d_; ++c) {
      out->WriteBits(static_cast<uint64_t>(vs[c]), coord_bits);
    }
  }
}

std::optional<Riblt> Riblt::Deserialize(const RibltConfig& config,
                                        BitReader* in) {
  Riblt table(config);
  const int key_bits = config.KeySumBits();
  const int coord_bits = config.CoordSumBits();
  for (size_t i = 0; i < table.m_; ++i) {
    uint64_t raw = 0;
    if (!in->ReadBits(config.count_bits, &raw)) return std::nullopt;
    int64_t count = static_cast<int64_t>(raw);
    if (config.count_bits < 64 && ((raw >> (config.count_bits - 1)) & 1)) {
      count -= int64_t{1} << config.count_bits;
    }
    table.counts_[i] = count;
    if (!ReadSigned128(in, key_bits, &table.key_sums_[i])) return std::nullopt;
    if (!ReadSigned128(in, key_bits, &table.check_sums_[i])) {
      return std::nullopt;
    }
    int64_t* vs = table.value_sums_.data() + i * static_cast<size_t>(table.d_);
    for (int c = 0; c < table.d_; ++c) {
      uint64_t v = 0;
      if (!in->ReadBits(coord_bits, &v)) return std::nullopt;
      int64_t sv = static_cast<int64_t>(v);
      if (coord_bits < 64 && ((v >> (coord_bits - 1)) & 1)) {
        sv -= int64_t{1} << coord_bits;
      }
      vs[c] = sv;
    }
  }
  return table;
}

}  // namespace rsr
