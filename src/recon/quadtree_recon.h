// The core contribution: robust set reconciliation over a randomly shifted
// quadtree (SIGMOD 2014 construction).
//
// At every grid level ℓ the parties view their point sets as cell
// histograms {(cell, count)}. Alice sketches each level's histogram into an
// O(k)-cell IBLT (element key = hash of (cell, count), value = packed cell
// id + count, so Bob can reconstruct cells he has no points in). Bob
// subtracts his own histogram sketch and looks for the finest level ℓ* whose
// difference decodes within the budget; decoded entries tell him exactly
// which cells' occupancies differ and by how much. He repairs by deleting
// surplus points from over-full cells and inserting cell-centre
// representatives into under-full ones — each repaired point is within one
// level-ℓ* cell diameter of Alice's true point, which yields the O(d)·EMD_k
// approximation.
//
// Two variants share all of the machinery:
//  * QuadtreeReconciler    — one-shot, 1 round: ship every level's IBLT.
//  * AdaptiveQuadtreeReconciler — 3 messages: tiny per-level strata probes
//    first, then a single IBLT at the negotiated level (with doubling
//    retries on decode failure). Saves the log Δ factor of IBLT bytes.

#ifndef RSR_RECON_QUADTREE_RECON_H_
#define RSR_RECON_QUADTREE_RECON_H_

#include <optional>
#include <vector>

#include "geometry/grid.h"
#include "iblt/iblt.h"
#include "iblt/strata.h"
#include "recon/params.h"
#include "recon/protocol.h"
#include "recon/sketch_provider.h"

namespace rsr {
namespace recon {

/// One differing histogram entry recovered at a level: `sign` +1 means the
/// pair came from Alice's histogram, -1 from Bob's.
struct LevelDiffEntry {
  Cell cell;
  int64_t count = 0;
  int sign = 0;
};

/// IBLT key of a histogram pair. Includes the count so that equal-cell /
/// different-count pairs do not XOR-collide (see DESIGN.md §3.1).
uint64_t HistogramEntryKey(const ShiftedGrid& grid, const Cell& cell,
                           int level, int64_t count);

/// Fixed-width value payload: packed cell id followed by the count.
std::vector<uint8_t> HistogramEntryValue(const ShiftedGrid& grid,
                                         const Cell& cell, int level,
                                         int64_t count, size_t n);

/// Inverse of HistogramEntryValue (+ key consistency check). Returns false
/// on malformed payloads (e.g. corrupted by an undetected IBLT error).
bool ParseHistogramEntry(const ShiftedGrid& grid, int level, size_t n,
                         const IbltEntry& entry, LevelDiffEntry* out);

/// Builds a party's level-ℓ histogram IBLT.
Iblt BuildLevelIblt(const ShiftedGrid& grid, const PointSet& points,
                    int level, size_t n, const QuadtreeParams& params,
                    uint64_t seed);

/// Strata configuration of the adaptive variant's level-`level` probe
/// (LevelStrataConfig with the level folded into the seed). Exported so a
/// canonical sketch store can maintain the same probes the sessions expect
/// (server/sketch_store.h).
StrataConfig AdaptiveLevelProbeConfig(int level, uint64_t seed);

/// Builds a party's level-`level` probe: the level's histogram entry keys
/// inserted into a fresh estimator with AdaptiveLevelProbeConfig.
StrataEstimator BuildLevelProbe(const ShiftedGrid& grid,
                                const PointSet& points, int level,
                                uint64_t seed);

/// Bob's repair step: applies the decoded occupancy differences to his set.
/// Preserves |bob| exactly (the deltas sum to zero when |alice| == |bob|).
PointSet RepairBob(const ShiftedGrid& grid, const PointSet& bob, int level,
                   const std::vector<LevelDiffEntry>& diff);

/// Attempts to decode the difference of two level IBLTs (alice - bob) into
/// parsed entries, accepting at most `budget` entries. nullopt on failure.
std::optional<std::vector<LevelDiffEntry>> TryDecodeLevelDiff(
    const ShiftedGrid& grid, int level, size_t n, const Iblt& alice_iblt,
    const Iblt& bob_iblt, size_t budget);

/// One-shot (single round) robust reconciliation.
///
/// Sessions: Alice sends every ladder level's IBLT in one "qt-levels"
/// message and is done; Bob scans for the finest decodable level, repairs,
/// and is done. 1 message, 1 round.
class QuadtreeReconciler : public Reconciler {
 public:
  QuadtreeReconciler(const ProtocolContext& context,
                     const QuadtreeParams& params)
      : context_(context), params_(params) {}

  std::string Name() const override { return "quadtree"; }
  std::unique_ptr<PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points,
      const CanonicalSketchProvider* sketches) const override;
  bool RequiresEqualSizes() const override { return true; }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
};

/// Adaptive (strata-probe) robust reconciliation; at most `max_attempts`
/// doubling retries if the negotiated IBLT fails to decode.
///
/// Sessions: Alice opens with per-level strata probes ("qt-strata") and
/// then serves "qt-level-request" messages with "qt-level-iblt" responses;
/// Bob picks the finest level whose estimated difference fits his budget,
/// requests it, and doubles the request on decode failure. 3 messages /
/// 3 rounds on the first-attempt-success path, +2 per retry.
class AdaptiveQuadtreeReconciler : public Reconciler {
 public:
  AdaptiveQuadtreeReconciler(const ProtocolContext& context,
                             const QuadtreeParams& params,
                             size_t max_attempts = 3)
      : context_(context), params_(params), max_attempts_(max_attempts) {}

  std::string Name() const override { return "quadtree-adaptive"; }
  std::unique_ptr<PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points,
      const CanonicalSketchProvider* sketches) const override;
  bool RequiresEqualSizes() const override { return true; }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  size_t max_attempts_;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_QUADTREE_RECON_H_
