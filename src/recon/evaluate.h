// Quality evaluation of a protocol run: communication, rounds, wall-clock
// time, and EMD-based quality relative to the trimmed optimum EMD_k.
// All benchmark tables are produced through this harness so every protocol
// is measured identically.

#ifndef RSR_RECON_EVALUATE_H_
#define RSR_RECON_EVALUATE_H_

#include <string>

#include "geometry/metric.h"
#include "recon/protocol.h"
#include "recon/registry.h"

namespace rsr {
namespace recon {

/// What EvaluateProtocol measures for one run.
struct Evaluation {
  std::string protocol;
  bool success = false;
  size_t comm_bits = 0;
  size_t rounds = 0;
  size_t messages = 0;
  double wall_seconds = 0.0;

  double emd_before = 0.0;  ///< EMD(alice, bob) before the protocol.
  double emd_after = 0.0;   ///< EMD(alice, bob_final).
  double emd_k = 0.0;       ///< Reference EMD_k(alice, bob) (if computed).
  /// emd_after / max(emd_k, 1): the approximation ratio the paper bounds
  /// by O(d). Meaningful only when emd_k was computed.
  double ratio_vs_emdk = 0.0;

  int chosen_level = -1;
  size_t decoded_entries = 0;
  size_t attempts = 1;
};

/// Options controlling how expensive the quality measurement is.
struct EvaluateOptions {
  Metric metric = Metric::kL2;
  /// Sets of size <= exact_emd_limit use the exact O(n^3) EMD; larger sets
  /// use the greedy upper bound.
  size_t exact_emd_limit = 512;
  /// If k > 0 and n <= exact_emd_limit, also compute EMD_k and the ratio.
  size_t k = 0;
  /// Skip EMD computation entirely (for communication-only sweeps).
  bool measure_quality = true;
};

/// Runs `protocol` on (alice, bob) over a fresh channel and measures it.
/// The run goes through the session driver (Reconciler::Run).
Evaluation EvaluateProtocol(const Reconciler& protocol, const PointSet& alice,
                            const PointSet& bob,
                            const EvaluateOptions& options);

/// Registry-based variant: instantiates `protocol_name` from the global
/// ProtocolRegistry. Unknown names yield a failed Evaluation whose
/// `protocol` echoes the requested name.
Evaluation EvaluateProtocol(const std::string& protocol_name,
                            const ProtocolContext& context,
                            const ProtocolParams& params,
                            const PointSet& alice, const PointSet& bob,
                            const EvaluateOptions& options);

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_EVALUATE_H_
