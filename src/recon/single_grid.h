// Ablation baseline: snap-to-grid at one fixed resolution.
//
// Identical to one level of the quadtree protocol — Alice sends a single
// histogram IBLT for a caller-chosen level. Demonstrates why the protocol
// must be multi-scale: a level finer than the noise scale fails to decode
// (the histograms differ almost everywhere), a level coarser than necessary
// inflates the repair error by the cell diameter. Experiment E7 sweeps the
// forced level against the auto-selected one.
//
// Sessions (1 message, 1 round):
//   Alice:  Start -> send "single-grid" (the level's histogram IBLT), done.
//   Bob:    await "single-grid" -> subtract his histogram, decode, repair.

#ifndef RSR_RECON_SINGLE_GRID_H_
#define RSR_RECON_SINGLE_GRID_H_

#include "recon/params.h"
#include "recon/protocol.h"

namespace rsr {
namespace recon {

class SingleGridReconciler : public Reconciler {
 public:
  /// `level` is the forced quadtree level.
  SingleGridReconciler(const ProtocolContext& context,
                       const QuadtreeParams& params, int level)
      : context_(context), params_(params), level_(level) {}

  std::string Name() const override {
    return "single-grid-L" + std::to_string(level_);
  }
  std::unique_ptr<PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points,
      const CanonicalSketchProvider* sketches) const override;
  bool RequiresEqualSizes() const override { return true; }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  int level_;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_SINGLE_GRID_H_
