// Common interface implemented by every reconciliation protocol.
//
// A protocol runs both parties in-process but communicates exclusively via
// transport::Channel, so the reported bits are real encoded payloads. The
// deliverable is Bob's final point set S'_B; quality (EMD against Alice's
// set) is computed separately by recon/evaluate.h so that the protocol code
// never sees the objective it is judged on.

#ifndef RSR_RECON_PROTOCOL_H_
#define RSR_RECON_PROTOCOL_H_

#include <string>

#include "geometry/metric.h"
#include "geometry/point.h"
#include "transport/channel.h"

namespace rsr {
namespace recon {

/// Outcome of one protocol run.
struct ReconResult {
  bool success = false;   ///< Protocol-level success (decode etc.).
  PointSet bob_final;     ///< S'_B (equals the input S_B on failure).
  int chosen_level = -1;  ///< Quadtree level used, if applicable.
  size_t decoded_entries = 0;  ///< Differing pairs recovered, if applicable.
  size_t attempts = 1;    ///< Retries (for protocols that resize and retry).
};

/// Context shared by both parties (public coins: the seed is common
/// knowledge and derives every hash function and shift).
struct ProtocolContext {
  Universe universe;
  uint64_t seed = 0;
};

/// Abstract reconciliation protocol.
class Reconciler {
 public:
  virtual ~Reconciler() = default;

  /// Short identifier used in benchmark tables.
  virtual std::string Name() const = 0;

  /// Runs the protocol. Alice holds `alice`, Bob holds `bob`; all traffic
  /// goes through `channel`. Returns Bob's result.
  virtual ReconResult Run(const PointSet& alice, const PointSet& bob,
                          transport::Channel* channel) const = 0;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_PROTOCOL_H_
