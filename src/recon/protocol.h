// Common interface implemented by every reconciliation protocol.
//
// A protocol is a two-party message-passing computation. Each party is an
// independently driveable endpoint state machine (recon/session.h); a
// Reconciler is a named factory for the two endpoints plus the public
// parameters they share. All traffic is carried as transport::Message
// payloads, so the reported bits are real encoded payloads. The deliverable
// is Bob's final point set S'_B; quality (EMD against Alice's set) is
// computed separately by recon/evaluate.h so that the protocol code never
// sees the objective it is judged on.
//
// The legacy convenience entry point `Run(alice, bob, channel)` still
// exists: it is a thin in-process driver (recon/driver.h) that pumps the
// two sessions through the channel until Bob finishes.

#ifndef RSR_RECON_PROTOCOL_H_
#define RSR_RECON_PROTOCOL_H_

#include <memory>
#include <string>

#include "geometry/metric.h"
#include "geometry/point.h"
#include "transport/channel.h"

namespace rsr {
namespace recon {

/// Transport / framing errors surfaced by a session instead of aborting the
/// process (the seed library crashed on any of these).
enum class SessionError {
  kNone = 0,
  kEmptyChannel,       ///< Receive attempted with nothing pending.
  kUnexpectedMessage,  ///< Message arrived in a state that expects none.
  kMalformedMessage,   ///< Payload failed to parse / deserialize.
  kStalled,            ///< Neither endpoint can make progress (half-open
                       ///< failure, e.g. the peer gave up silently).
  kTransportClosed,    ///< The byte stream closed / failed mid-protocol
                       ///< (serving layer; see net/frame.h).
  kProtocolRejected,   ///< The server rejected the requested protocol
                       ///< during the sync handshake (server/sync_client.h).
};

/// Human-readable name of a SessionError (for logs and test output).
const char* SessionErrorName(SessionError error);

/// Outcome of one protocol run (one party's view; the canonical result is
/// Bob's, since he holds the deliverable S'_B).
struct ReconResult {
  bool success = false;   ///< Protocol-level success (decode etc.).
  PointSet bob_final;     ///< S'_B (equals the input S_B on failure).
  int chosen_level = -1;  ///< Quadtree level used, if applicable.
  size_t decoded_entries = 0;  ///< Differing pairs recovered, if applicable.
  size_t attempts = 1;    ///< Retries (for protocols that resize and retry).
  size_t transmitted = 0; ///< Gap model: |T_A|, points shipped verbatim.
  SessionError error = SessionError::kNone;  ///< Transport-level failure.
};

/// Context shared by both parties (public coins: the seed is common
/// knowledge and derives every hash function and shift).
struct ProtocolContext {
  Universe universe;
  uint64_t seed = 0;
};

class PartySession;            // recon/session.h
class CanonicalSketchProvider; // recon/sketch_provider.h

/// Abstract reconciliation protocol: a named factory for the two endpoint
/// state machines.
class Reconciler {
 public:
  virtual ~Reconciler() = default;

  /// Short identifier used in benchmark tables and the protocol registry.
  virtual std::string Name() const = 0;

  /// Creates Alice's endpoint. `points` is S_A, the set Bob reconciles
  /// towards.
  virtual std::unique_ptr<PartySession> MakeAliceSession(
      const PointSet& points) const = 0;

  /// Creates Bob's endpoint. `points` is S_B; Bob's session owns the
  /// deliverable result.
  virtual std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points) const = 0;

  /// Creates Bob's endpoint with an optional canonical sketch cache
  /// (recon/sketch_provider.h). `sketches` must describe exactly `points`;
  /// a session consults it instead of rebuilding the canonical-side
  /// sketches from the set, and falls back to build-from-set whenever the
  /// provider declines. The default ignores the provider, so protocols
  /// without cacheable state (full transfer, gap lattice) need no changes
  /// and every existing caller keeps its behaviour.
  virtual std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points,
      const CanonicalSketchProvider* sketches) const;  // recon/driver.cc

  /// True for the EMD-model protocols, whose analysis (and sketch sizing)
  /// assumes |S_A| == |S_B|. The in-process driver enforces it with a
  /// clear diagnostic; across a real network no endpoint can verify it —
  /// it is part of the protocol's contract.
  virtual bool RequiresEqualSizes() const { return false; }

  /// Convenience in-process driver: pumps the two sessions through
  /// `channel` (see recon/driver.h) and returns Bob's result. Exactly
  /// equivalent to constructing both sessions and calling DrivePair.
  ReconResult Run(const PointSet& alice, const PointSet& bob,
                  transport::Channel* channel) const;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_PROTOCOL_H_
