#include "recon/quadtree_recon.h"

#include <unordered_map>
#include <utility>

#include "hash/mix.h"
#include "iblt/sizing.h"
#include "iblt/strata.h"
#include "recon/session.h"
#include "util/check.h"

namespace rsr {
namespace recon {

uint64_t HistogramEntryKey(const ShiftedGrid& grid, const Cell& cell,
                           int level, int64_t count) {
  // CellKey already folds in the level and the grid seed; combining the
  // count makes (cell, c1) and (cell, c2) distinct sketch elements so they
  // never XOR-collide inside a cell.
  return HashCombine(grid.CellKey(cell, level),
                     static_cast<uint64_t>(count));
}

std::vector<uint8_t> HistogramEntryValue(const ShiftedGrid& grid,
                                         const Cell& cell, int level,
                                         int64_t count, size_t n) {
  BitWriter w;
  grid.PackCell(cell, level, &w);
  w.WriteBits(static_cast<uint64_t>(count), HistogramCountBits(n));
  return std::move(w).TakeBytes();
}

bool ParseHistogramEntry(const ShiftedGrid& grid, int level, size_t n,
                         const IbltEntry& entry, LevelDiffEntry* out) {
  BitReader r(entry.value);
  Cell cell;
  if (!grid.UnpackCell(level, &r, &cell)) return false;
  uint64_t count = 0;
  if (!r.ReadBits(HistogramCountBits(n), &count)) return false;
  if (count == 0 || count > n) return false;
  // Cross-check the payload against the key: detects the (negligible but
  // nonzero probability) event of a corrupt entry surviving the checksum.
  if (HistogramEntryKey(grid, cell, level, static_cast<int64_t>(count)) !=
      entry.key) {
    return false;
  }
  out->cell = std::move(cell);
  out->count = static_cast<int64_t>(count);
  out->sign = entry.sign;
  return true;
}

Iblt BuildLevelIblt(const ShiftedGrid& grid, const PointSet& points,
                    int level, size_t n, const QuadtreeParams& params,
                    uint64_t seed) {
  Iblt table(LevelIbltConfig(grid, level, n, params, seed));
  const auto histogram = BuildCellHistogram(grid, points, level);
  for (const auto& [cell_key, cc] : histogram) {
    (void)cell_key;
    table.Insert(HistogramEntryKey(grid, cc.cell, level, cc.count),
                 HistogramEntryValue(grid, cc.cell, level, cc.count, n));
  }
  return table;
}

std::optional<std::vector<LevelDiffEntry>> TryDecodeLevelDiff(
    const ShiftedGrid& grid, int level, size_t n, const Iblt& alice_iblt,
    const Iblt& bob_iblt, size_t budget) {
  Iblt diff = alice_iblt;
  diff.Subtract(bob_iblt);
  const IbltDecodeResult decoded = diff.Decode(budget);
  if (!decoded.success) return std::nullopt;
  std::vector<LevelDiffEntry> entries;
  entries.reserve(decoded.entries.size());
  for (const IbltEntry& raw : decoded.entries) {
    LevelDiffEntry parsed;
    if (!ParseHistogramEntry(grid, level, n, raw, &parsed)) {
      return std::nullopt;
    }
    entries.push_back(std::move(parsed));
  }
  return entries;
}

PointSet RepairBob(const ShiftedGrid& grid, const PointSet& bob, int level,
                   const std::vector<LevelDiffEntry>& diff) {
  // Index Bob's points by their level-ℓ cell so surplus can be deleted.
  std::unordered_map<uint64_t, std::vector<size_t>> bob_cells;
  for (size_t i = 0; i < bob.size(); ++i) {
    bob_cells[grid.CellKeyOf(bob[i], level)].push_back(i);
  }

  // Collect, per differing cell, Alice's decoded count. Bob's own count
  // comes from his local index (the decoded Bob-side entries are redundant
  // with local state; they are used as a consistency check only).
  struct CellDelta {
    Cell cell;
    int64_t alice_count = 0;
  };
  std::unordered_map<uint64_t, CellDelta> deltas;
  for (const LevelDiffEntry& entry : diff) {
    const uint64_t cell_key = grid.CellKey(entry.cell, level);
    auto [it, inserted] = deltas.try_emplace(cell_key);
    if (inserted) it->second.cell = entry.cell;
    if (entry.sign > 0) {
      it->second.alice_count = entry.count;
    } else {
      // Bob-side pair: his histogram really must contain this count.
      const auto own = bob_cells.find(cell_key);
      const int64_t own_count =
          own == bob_cells.end()
              ? 0
              : static_cast<int64_t>(own->second.size());
      RSR_DCHECK(own_count == entry.count);
      (void)own_count;
    }
  }

  std::vector<char> removed(bob.size(), 0);
  PointSet additions;
  for (const auto& [cell_key, delta] : deltas) {
    const auto own = bob_cells.find(cell_key);
    const int64_t bob_count =
        own == bob_cells.end() ? 0 : static_cast<int64_t>(own->second.size());
    const int64_t change = delta.alice_count - bob_count;
    if (change > 0) {
      const Point rep = grid.CellRepresentative(delta.cell, level);
      for (int64_t c = 0; c < change; ++c) additions.push_back(rep);
    } else if (change < 0) {
      RSR_DCHECK(own != bob_cells.end());
      for (int64_t c = 0; c < -change; ++c) {
        removed[own->second[static_cast<size_t>(c)]] = 1;
      }
    }
  }

  PointSet result;
  result.reserve(bob.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    if (!removed[i]) result.push_back(bob[i]);
  }
  for (Point& p : additions) result.push_back(std::move(p));
  return result;
}

StrataConfig AdaptiveLevelProbeConfig(int level, uint64_t seed) {
  StrataConfig config = LevelStrataConfig(seed);
  config.seed = Hash64(static_cast<uint64_t>(level), config.seed);
  return config;
}

namespace {

void FillLevelEstimator(const ShiftedGrid& grid, const PointSet& points,
                        int level, StrataEstimator* est) {
  const auto histogram = BuildCellHistogram(grid, points, level);
  for (const auto& [cell_key, cc] : histogram) {
    (void)cell_key;
    est->Insert(HistogramEntryKey(grid, cc.cell, level, cc.count));
  }
}

}  // namespace

StrataEstimator BuildLevelProbe(const ShiftedGrid& grid,
                                const PointSet& points, int level,
                                uint64_t seed) {
  StrataEstimator est(AdaptiveLevelProbeConfig(level, seed));
  FillLevelEstimator(grid, points, level, &est);
  return est;
}

namespace {

// --- One-shot sessions. ---

class QuadtreeAlice : public PartySessionBase {
 public:
  QuadtreeAlice(const ProtocolContext& context, const QuadtreeParams& params,
                PointSet points)
      : context_(context), params_(params), points_(std::move(points)) {}

  std::vector<transport::Message> Start() override {
    const ShiftedGrid grid(context_.universe, context_.seed);
    const std::vector<int> levels = ProtocolLevels(grid, params_);
    BitWriter w;
    for (int level : levels) {
      BuildLevelIblt(grid, points_, level, points_.size(), params_,
                     context_.seed)
          .Serialize(&w);
    }
    result_.success = true;
    Finish();
    return OneMessage(transport::MakeMessage("qt-levels", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(transport::Message) override {
    FailWith(SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  PointSet points_;
};

class QuadtreeBob : public PartySessionBase {
 public:
  QuadtreeBob(const ProtocolContext& context, const QuadtreeParams& params,
              PointSet points, const CanonicalSketchProvider* sketches)
      : context_(context),
        params_(params),
        points_(std::move(points)),
        sketches_(sketches) {
    result_.bob_final = points_;
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    const size_t n = points_.size();
    const ShiftedGrid grid(context_.universe, context_.seed);
    const std::vector<int> levels = ProtocolLevels(grid, params_);
    BitReader r(message.payload);
    const size_t budget = params_.DecodeBudget();
    for (int level : levels) {
      const IbltConfig config =
          LevelIbltConfig(grid, level, n, params_, context_.seed);
      std::optional<Iblt> alice_iblt = Iblt::Deserialize(config, &r);
      if (!alice_iblt.has_value()) {  // truncated qt-levels message
        FailWith(SessionError::kMalformedMessage);
        return NoMessages();
      }
      if (result_.success) continue;  // already repaired; drain the stream
      std::optional<Iblt> bob_iblt =
          sketches_ != nullptr ? sketches_->QuadtreeLevelIblt(config, level)
                               : std::nullopt;
      if (!bob_iblt.has_value()) {
        bob_iblt =
            BuildLevelIblt(grid, points_, level, n, params_, context_.seed);
      }
      std::optional<std::vector<LevelDiffEntry>> diff = TryDecodeLevelDiff(
          grid, level, n, *alice_iblt, *bob_iblt, budget);
      if (diff.has_value()) {
        result_.success = true;
        result_.chosen_level = level;
        result_.decoded_entries = diff->size();
        result_.bob_final = RepairBob(grid, points_, level, *diff);
      }
    }
    Finish();
    return NoMessages();
  }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  PointSet points_;
  const CanonicalSketchProvider* sketches_;
};

// --- Adaptive sessions. ---

// Alice: opening strata probes, then an IBLT server. She has no way to
// observe the protocol's end (Bob just stops requesting), so she stays in
// the serving state; the driver terminates on Bob.
class AdaptiveQuadtreeAlice : public PartySessionBase {
 public:
  AdaptiveQuadtreeAlice(const ProtocolContext& context,
                        const QuadtreeParams& params, PointSet points)
      : context_(context), params_(params), points_(std::move(points)) {}

  std::vector<transport::Message> Start() override {
    const ShiftedGrid grid(context_.universe, context_.seed);
    const std::vector<int> levels = ProtocolLevels(grid, params_);
    BitWriter w;
    for (int level : levels) {
      StrataEstimator est(AdaptiveLevelProbeConfig(level, context_.seed));
      FillLevelEstimator(grid, points_, level, &est);
      est.Serialize(&w);
    }
    result_.success = true;
    return OneMessage(transport::MakeMessage("qt-strata", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    // Serve a "qt-level-request": ship this level's histogram IBLT at the
    // requested size, salted by the attempt number.
    const size_t n = points_.size();
    const ShiftedGrid grid(context_.universe, context_.seed);
    BitReader rr(message.payload);
    uint64_t req_level = 0, req_cells = 0, req_attempt = 0;
    if (!rr.ReadVarint(&req_level) || !rr.ReadVarint(&req_cells) ||
        !rr.ReadVarint(&req_attempt)) {
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    IbltConfig config = LevelIbltConfig(grid, static_cast<int>(req_level), n,
                                        params_, context_.seed);
    config.cells = static_cast<size_t>(req_cells);
    config.seed = Hash64(req_attempt, config.seed);
    Iblt table(config);
    const auto histogram =
        BuildCellHistogram(grid, points_, static_cast<int>(req_level));
    for (const auto& [cell_key, cc] : histogram) {
      (void)cell_key;
      table.Insert(
          HistogramEntryKey(grid, cc.cell, static_cast<int>(req_level),
                            cc.count),
          HistogramEntryValue(grid, cc.cell, static_cast<int>(req_level),
                              cc.count, n));
    }
    BitWriter w;
    table.Serialize(&w);
    return OneMessage(transport::MakeMessage("qt-level-iblt", std::move(w)));
  }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  PointSet points_;
};

class AdaptiveQuadtreeBob : public PartySessionBase {
 public:
  AdaptiveQuadtreeBob(const ProtocolContext& context,
                      const QuadtreeParams& params, size_t max_attempts,
                      PointSet points, const CanonicalSketchProvider* sketches)
      : context_(context),
        params_(params),
        max_attempts_(max_attempts),
        points_(std::move(points)),
        sketches_(sketches) {
    result_.bob_final = points_;
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    switch (state_) {
      case State::kAwaitProbes:
        return HandleProbes(std::move(message));
      case State::kAwaitIblt:
        return HandleIblt(std::move(message));
    }
    FailWith(SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  enum class State { kAwaitProbes, kAwaitIblt };

  std::vector<transport::Message> HandleProbes(transport::Message message) {
    const ShiftedGrid grid(context_.universe, context_.seed);
    const std::vector<int> levels = ProtocolLevels(grid, params_);
    BitReader pr(message.payload);
    const size_t budget = params_.DecodeBudget();
    int chosen = levels.back();
    uint64_t chosen_estimate = 0;
    bool have_choice = false;
    for (int level : levels) {
      const StrataConfig probe_config =
          AdaptiveLevelProbeConfig(level, context_.seed);
      std::optional<StrataEstimator> alice_est =
          StrataEstimator::Deserialize(probe_config, &pr);
      if (!alice_est.has_value()) {  // truncated qt-strata message
        FailWith(SessionError::kMalformedMessage);
        return NoMessages();
      }
      if (have_choice) continue;  // drain remaining probes
      std::optional<StrataEstimator> bob_est =
          sketches_ != nullptr
              ? sketches_->QuadtreeLevelProbe(probe_config, level)
              : std::nullopt;
      if (!bob_est.has_value()) {
        bob_est = BuildLevelProbe(grid, points_, level, context_.seed);
      }
      const uint64_t estimate = alice_est->EstimateDifference(*bob_est);
      if (estimate <= budget || level == levels.back()) {
        chosen = level;
        chosen_estimate = estimate;
        have_choice = true;
      }
    }
    chosen_ = chosen;
    result_.chosen_level = chosen;
    // Safety factor 2 over the estimate, floored at the configured budget.
    target_entries_ = chosen_estimate * 2;
    if (target_entries_ < budget) target_entries_ = budget;
    attempt_ = 0;
    state_ = State::kAwaitIblt;
    return OneMessage(MakeRequest());
  }

  std::vector<transport::Message> HandleIblt(transport::Message message) {
    const size_t n = points_.size();
    const ShiftedGrid grid(context_.universe, context_.seed);
    IbltConfig config =
        LevelIbltConfig(grid, chosen_, n, params_, context_.seed);
    config.cells = cells_;
    config.seed = Hash64(attempt_, config.seed);
    BitReader rr(message.payload);
    std::optional<Iblt> alice_iblt = Iblt::Deserialize(config, &rr);
    if (!alice_iblt.has_value()) {  // truncated qt-level-iblt
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    Iblt bob_iblt(config);
    const auto histogram = BuildCellHistogram(grid, points_, chosen_);
    for (const auto& [cell_key, cc] : histogram) {
      (void)cell_key;
      bob_iblt.Insert(HistogramEntryKey(grid, cc.cell, chosen_, cc.count),
                      HistogramEntryValue(grid, cc.cell, chosen_, cc.count,
                                          n));
    }
    const size_t accept = static_cast<size_t>(target_entries_) << attempt_;
    std::optional<std::vector<LevelDiffEntry>> diff = TryDecodeLevelDiff(
        grid, chosen_, n, *alice_iblt, bob_iblt, accept);
    if (diff.has_value()) {
      result_.success = true;
      result_.decoded_entries = diff->size();
      result_.bob_final = RepairBob(grid, points_, chosen_, *diff);
      Finish();
      return NoMessages();
    }
    ++attempt_;
    if (attempt_ >= max_attempts_) {
      Finish();  // all attempts failed (success stays false)
      return NoMessages();
    }
    return OneMessage(MakeRequest());
  }

  // Bob -> Alice: the negotiated level / size / attempt.
  transport::Message MakeRequest() {
    result_.attempts = attempt_ + 1;
    cells_ = RecommendedCells(
        static_cast<size_t>(target_entries_) << attempt_, params_.q,
        params_.headroom);
    BitWriter w;
    w.WriteVarint(static_cast<uint64_t>(chosen_));
    w.WriteVarint(cells_);
    w.WriteVarint(attempt_);
    return transport::MakeMessage("qt-level-request", std::move(w));
  }

  ProtocolContext context_;
  QuadtreeParams params_;
  size_t max_attempts_;
  PointSet points_;
  const CanonicalSketchProvider* sketches_;
  State state_ = State::kAwaitProbes;
  int chosen_ = -1;
  uint64_t target_entries_ = 0;
  size_t attempt_ = 0;
  size_t cells_ = 0;
};

}  // namespace

std::unique_ptr<PartySession> QuadtreeReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<QuadtreeAlice>(context_, params_, points);
}

std::unique_ptr<PartySession> QuadtreeReconciler::MakeBobSession(
    const PointSet& points) const {
  return MakeBobSession(points, nullptr);
}

std::unique_ptr<PartySession> QuadtreeReconciler::MakeBobSession(
    const PointSet& points, const CanonicalSketchProvider* sketches) const {
  return std::make_unique<QuadtreeBob>(context_, params_, points, sketches);
}

std::unique_ptr<PartySession> AdaptiveQuadtreeReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<AdaptiveQuadtreeAlice>(context_, params_, points);
}

std::unique_ptr<PartySession> AdaptiveQuadtreeReconciler::MakeBobSession(
    const PointSet& points) const {
  return MakeBobSession(points, nullptr);
}

std::unique_ptr<PartySession> AdaptiveQuadtreeReconciler::MakeBobSession(
    const PointSet& points, const CanonicalSketchProvider* sketches) const {
  return std::make_unique<AdaptiveQuadtreeBob>(context_, params_,
                                               max_attempts_, points,
                                               sketches);
}

}  // namespace recon
}  // namespace rsr
