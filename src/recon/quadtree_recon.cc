#include "recon/quadtree_recon.h"

#include <unordered_map>
#include <utility>

#include "hash/mix.h"
#include "iblt/sizing.h"
#include "iblt/strata.h"
#include "util/check.h"

namespace rsr {
namespace recon {

uint64_t HistogramEntryKey(const ShiftedGrid& grid, const Cell& cell,
                           int level, int64_t count) {
  // CellKey already folds in the level and the grid seed; combining the
  // count makes (cell, c1) and (cell, c2) distinct sketch elements so they
  // never XOR-collide inside a cell.
  return HashCombine(grid.CellKey(cell, level),
                     static_cast<uint64_t>(count));
}

std::vector<uint8_t> HistogramEntryValue(const ShiftedGrid& grid,
                                         const Cell& cell, int level,
                                         int64_t count, size_t n) {
  BitWriter w;
  grid.PackCell(cell, level, &w);
  w.WriteBits(static_cast<uint64_t>(count), HistogramCountBits(n));
  return std::move(w).TakeBytes();
}

bool ParseHistogramEntry(const ShiftedGrid& grid, int level, size_t n,
                         const IbltEntry& entry, LevelDiffEntry* out) {
  BitReader r(entry.value);
  Cell cell;
  if (!grid.UnpackCell(level, &r, &cell)) return false;
  uint64_t count = 0;
  if (!r.ReadBits(HistogramCountBits(n), &count)) return false;
  if (count == 0 || count > n) return false;
  // Cross-check the payload against the key: detects the (negligible but
  // nonzero probability) event of a corrupt entry surviving the checksum.
  if (HistogramEntryKey(grid, cell, level, static_cast<int64_t>(count)) !=
      entry.key) {
    return false;
  }
  out->cell = std::move(cell);
  out->count = static_cast<int64_t>(count);
  out->sign = entry.sign;
  return true;
}

Iblt BuildLevelIblt(const ShiftedGrid& grid, const PointSet& points,
                    int level, size_t n, const QuadtreeParams& params,
                    uint64_t seed) {
  Iblt table(LevelIbltConfig(grid, level, n, params, seed));
  const auto histogram = BuildCellHistogram(grid, points, level);
  for (const auto& [cell_key, cc] : histogram) {
    (void)cell_key;
    table.Insert(HistogramEntryKey(grid, cc.cell, level, cc.count),
                 HistogramEntryValue(grid, cc.cell, level, cc.count, n));
  }
  return table;
}

std::optional<std::vector<LevelDiffEntry>> TryDecodeLevelDiff(
    const ShiftedGrid& grid, int level, size_t n, const Iblt& alice_iblt,
    const Iblt& bob_iblt, size_t budget) {
  Iblt diff = alice_iblt;
  diff.Subtract(bob_iblt);
  const IbltDecodeResult decoded = diff.Decode(budget);
  if (!decoded.success) return std::nullopt;
  std::vector<LevelDiffEntry> entries;
  entries.reserve(decoded.entries.size());
  for (const IbltEntry& raw : decoded.entries) {
    LevelDiffEntry parsed;
    if (!ParseHistogramEntry(grid, level, n, raw, &parsed)) {
      return std::nullopt;
    }
    entries.push_back(std::move(parsed));
  }
  return entries;
}

PointSet RepairBob(const ShiftedGrid& grid, const PointSet& bob, int level,
                   const std::vector<LevelDiffEntry>& diff) {
  // Index Bob's points by their level-ℓ cell so surplus can be deleted.
  std::unordered_map<uint64_t, std::vector<size_t>> bob_cells;
  for (size_t i = 0; i < bob.size(); ++i) {
    bob_cells[grid.CellKeyOf(bob[i], level)].push_back(i);
  }

  // Collect, per differing cell, Alice's decoded count. Bob's own count
  // comes from his local index (the decoded Bob-side entries are redundant
  // with local state; they are used as a consistency check only).
  struct CellDelta {
    Cell cell;
    int64_t alice_count = 0;
  };
  std::unordered_map<uint64_t, CellDelta> deltas;
  for (const LevelDiffEntry& entry : diff) {
    const uint64_t cell_key = grid.CellKey(entry.cell, level);
    auto [it, inserted] = deltas.try_emplace(cell_key);
    if (inserted) it->second.cell = entry.cell;
    if (entry.sign > 0) {
      it->second.alice_count = entry.count;
    } else {
      // Bob-side pair: his histogram really must contain this count.
      const auto own = bob_cells.find(cell_key);
      const int64_t own_count =
          own == bob_cells.end()
              ? 0
              : static_cast<int64_t>(own->second.size());
      RSR_DCHECK(own_count == entry.count);
      (void)own_count;
    }
  }

  std::vector<char> removed(bob.size(), 0);
  PointSet additions;
  for (const auto& [cell_key, delta] : deltas) {
    const auto own = bob_cells.find(cell_key);
    const int64_t bob_count =
        own == bob_cells.end() ? 0 : static_cast<int64_t>(own->second.size());
    const int64_t change = delta.alice_count - bob_count;
    if (change > 0) {
      const Point rep = grid.CellRepresentative(delta.cell, level);
      for (int64_t c = 0; c < change; ++c) additions.push_back(rep);
    } else if (change < 0) {
      RSR_DCHECK(own != bob_cells.end());
      for (int64_t c = 0; c < -change; ++c) {
        removed[own->second[static_cast<size_t>(c)]] = 1;
      }
    }
  }

  PointSet result;
  result.reserve(bob.size());
  for (size_t i = 0; i < bob.size(); ++i) {
    if (!removed[i]) result.push_back(bob[i]);
  }
  for (Point& p : additions) result.push_back(std::move(p));
  return result;
}

ReconResult QuadtreeReconciler::Run(const PointSet& alice,
                                    const PointSet& bob,
                                    transport::Channel* channel) const {
  RSR_CHECK_MSG(alice.size() == bob.size(),
                "EMD model requires equal-size sets");
  const size_t n = alice.size();
  const ShiftedGrid grid(context_.universe, context_.seed);
  const std::vector<int> levels = ProtocolLevels(grid, params_);

  // --- Alice: encode every ladder level and ship them in one message. ---
  {
    BitWriter w;
    for (int level : levels) {
      BuildLevelIblt(grid, alice, level, n, params_, context_.seed)
          .Serialize(&w);
    }
    channel->Send(transport::Direction::kAliceToBob,
                  transport::MakeMessage("qt-levels", std::move(w)));
  }

  // --- Bob: find the finest decodable level and repair. ---
  ReconResult result;
  result.bob_final = bob;
  const transport::Message msg =
      channel->Receive(transport::Direction::kAliceToBob);
  BitReader r(msg.payload);
  const size_t budget = params_.DecodeBudget();
  for (int level : levels) {
    const IbltConfig config =
        LevelIbltConfig(grid, level, n, params_, context_.seed);
    std::optional<Iblt> alice_iblt = Iblt::Deserialize(config, &r);
    RSR_CHECK_MSG(alice_iblt.has_value(), "truncated qt-levels message");
    if (result.success) continue;  // already repaired; just drain the stream
    const Iblt bob_iblt =
        BuildLevelIblt(grid, bob, level, n, params_, context_.seed);
    std::optional<std::vector<LevelDiffEntry>> diff = TryDecodeLevelDiff(
        grid, level, n, *alice_iblt, bob_iblt, budget);
    if (diff.has_value()) {
      result.success = true;
      result.chosen_level = level;
      result.decoded_entries = diff->size();
      result.bob_final = RepairBob(grid, bob, level, *diff);
    }
  }
  return result;
}

ReconResult AdaptiveQuadtreeReconciler::Run(
    const PointSet& alice, const PointSet& bob,
    transport::Channel* channel) const {
  RSR_CHECK_MSG(alice.size() == bob.size(),
                "EMD model requires equal-size sets");
  const size_t n = alice.size();
  const ShiftedGrid grid(context_.universe, context_.seed);
  const std::vector<int> levels = ProtocolLevels(grid, params_);

  auto strata_config_for = [&](int level) {
    StrataConfig config = LevelStrataConfig(context_.seed);
    config.seed = Hash64(static_cast<uint64_t>(level), config.seed);
    return config;
  };
  auto fill_estimator = [&](const PointSet& points, int level,
                            StrataEstimator* est) {
    const auto histogram = BuildCellHistogram(grid, points, level);
    for (const auto& [cell_key, cc] : histogram) {
      (void)cell_key;
      est->Insert(HistogramEntryKey(grid, cc.cell, level, cc.count));
    }
  };

  // --- Round 1 (A->B): per-level strata probes. ---
  {
    BitWriter w;
    for (int level : levels) {
      StrataEstimator est(strata_config_for(level));
      fill_estimator(alice, level, &est);
      est.Serialize(&w);
    }
    channel->Send(transport::Direction::kAliceToBob,
                  transport::MakeMessage("qt-strata", std::move(w)));
  }

  // --- Bob: pick the finest level whose estimated difference fits. ---
  const transport::Message probes =
      channel->Receive(transport::Direction::kAliceToBob);
  BitReader pr(probes.payload);
  const size_t budget = params_.DecodeBudget();
  int chosen = levels.back();
  uint64_t chosen_estimate = 0;
  bool have_choice = false;
  for (int level : levels) {
    std::optional<StrataEstimator> alice_est =
        StrataEstimator::Deserialize(strata_config_for(level), &pr);
    RSR_CHECK_MSG(alice_est.has_value(), "truncated qt-strata message");
    if (have_choice) continue;  // drain remaining probes
    StrataEstimator bob_est(strata_config_for(level));
    fill_estimator(bob, level, &bob_est);
    const uint64_t estimate = alice_est->EstimateDifference(bob_est);
    if (estimate <= budget || level == levels.back()) {
      chosen = level;
      chosen_estimate = estimate;
      have_choice = true;
    }
  }

  // --- Attempt loop: request an IBLT sized from the estimate; double on
  // failure. Every request/response is billed to the channel. ---
  ReconResult result;
  result.bob_final = bob;
  result.chosen_level = chosen;
  // Safety factor 2 over the estimate, floored at the configured budget.
  uint64_t target_entries = chosen_estimate * 2;
  if (target_entries < budget) target_entries = budget;
  for (size_t attempt = 0; attempt < max_attempts_; ++attempt) {
    result.attempts = attempt + 1;
    const size_t cells = RecommendedCells(
        static_cast<size_t>(target_entries) << attempt, params_.q,
        params_.headroom);

    // Bob -> Alice: the negotiated level / size / attempt.
    {
      BitWriter w;
      w.WriteVarint(static_cast<uint64_t>(chosen));
      w.WriteVarint(cells);
      w.WriteVarint(attempt);
      channel->Send(transport::Direction::kBobToAlice,
                    transport::MakeMessage("qt-level-request", std::move(w)));
    }
    // Alice: honour the request.
    {
      const transport::Message req =
          channel->Receive(transport::Direction::kBobToAlice);
      BitReader rr(req.payload);
      uint64_t req_level = 0, req_cells = 0, req_attempt = 0;
      RSR_CHECK(rr.ReadVarint(&req_level) && rr.ReadVarint(&req_cells) &&
                rr.ReadVarint(&req_attempt));
      IbltConfig config = LevelIbltConfig(grid, static_cast<int>(req_level),
                                          n, params_, context_.seed);
      config.cells = static_cast<size_t>(req_cells);
      config.seed = Hash64(req_attempt, config.seed);
      Iblt table(config);
      const auto histogram =
          BuildCellHistogram(grid, alice, static_cast<int>(req_level));
      for (const auto& [cell_key, cc] : histogram) {
        (void)cell_key;
        table.Insert(
            HistogramEntryKey(grid, cc.cell, static_cast<int>(req_level),
                              cc.count),
            HistogramEntryValue(grid, cc.cell, static_cast<int>(req_level),
                                cc.count, n));
      }
      BitWriter w;
      table.Serialize(&w);
      channel->Send(transport::Direction::kAliceToBob,
                    transport::MakeMessage("qt-level-iblt", std::move(w)));
    }
    // Bob: decode.
    {
      const transport::Message resp =
          channel->Receive(transport::Direction::kAliceToBob);
      IbltConfig config =
          LevelIbltConfig(grid, chosen, n, params_, context_.seed);
      config.cells = cells;
      config.seed = Hash64(attempt, config.seed);
      BitReader rr(resp.payload);
      std::optional<Iblt> alice_iblt = Iblt::Deserialize(config, &rr);
      RSR_CHECK_MSG(alice_iblt.has_value(), "truncated qt-level-iblt");

      Iblt bob_iblt(config);
      const auto histogram = BuildCellHistogram(grid, bob, chosen);
      for (const auto& [cell_key, cc] : histogram) {
        (void)cell_key;
        bob_iblt.Insert(HistogramEntryKey(grid, cc.cell, chosen, cc.count),
                        HistogramEntryValue(grid, cc.cell, chosen, cc.count,
                                            n));
      }
      const size_t accept = static_cast<size_t>(target_entries) << attempt;
      std::optional<std::vector<LevelDiffEntry>> diff = TryDecodeLevelDiff(
          grid, chosen, n, *alice_iblt, bob_iblt, accept);
      if (diff.has_value()) {
        result.success = true;
        result.decoded_entries = diff->size();
        result.bob_final = RepairBob(grid, bob, chosen, *diff);
        return result;
      }
    }
  }
  return result;  // all attempts failed
}

}  // namespace recon
}  // namespace rsr
