// Seam between the Bob-side protocol sessions and a canonical sketch
// cache.
//
// Every serving sketch of the canonical party — the quadtree per-level
// histogram IBLTs, the adaptive variant's per-level strata probes, the
// exact baseline's strata estimator, the MLSH per-level RIBLTs and the
// one-shot exact-key RIBLT — is a *linear* function of the point multiset:
// Insert and Erase commute, so a sketch computed once can be kept current
// under churn and handed to any number of sessions. A provider is that
// hand-off: Bob-session factories (recon/protocol.h MakeBobSession) accept
// an optional CanonicalSketchProvider; a session asks for the sketch it
// would otherwise build from its point set and, when the provider declines
// (nullptr provider, config mismatch, or nothing cached), builds it from
// the set exactly as before. The in-process driver never passes a
// provider, so DrivePair and all pre-existing callers are untouched.
//
// Contract:
//  * Every method takes the configuration the session derived from public
//    parameters and must return a sketch built with a matching
//    configuration over the canonical set the session was created with —
//    or nullopt. Returning a mismatched sketch is a correctness bug, which
//    is why implementations compare configs and decline on any difference
//    (server/sketch_store.h is the reference implementation).
//  * Returned sketches are private copies: the session may subtract into
//    them or hand them to Iblt/Riblt::Subtract freely. Cloning is a plain
//    copy of O(cells) words — set-size-independent, which is the whole
//    point (DESIGN.md §9).
//  * Providers must be safe for concurrent use from multiple sessions;
//    the server side satisfies this with immutable generation-stamped
//    snapshots.

#ifndef RSR_RECON_SKETCH_PROVIDER_H_
#define RSR_RECON_SKETCH_PROVIDER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "iblt/iblt.h"
#include "iblt/strata.h"
#include "riblt/riblt.h"

namespace rsr {
namespace recon {

/// Occurrence-indexed (key, point) list of the exact baseline, sorted the
/// way recon::ExactKeyedPoints produces it.
using KeyedPointList = std::vector<std::pair<uint64_t, Point>>;

class CanonicalSketchProvider {
 public:
  virtual ~CanonicalSketchProvider() = default;

  /// Canonical level-`level` quadtree histogram IBLT (quadtree one-shot
  /// and single-grid; recon::BuildLevelIblt is the from-scratch
  /// equivalent).
  virtual std::optional<Iblt> QuadtreeLevelIblt(const IbltConfig& config,
                                                int level) const {
    (void)config;
    (void)level;
    return std::nullopt;
  }

  /// Canonical level-`level` strata probe of the adaptive quadtree
  /// (recon::AdaptiveLevelProbeConfig fixes `config`).
  virtual std::optional<StrataEstimator> QuadtreeLevelProbe(
      const StrataConfig& config, int level) const {
    (void)config;
    (void)level;
    return std::nullopt;
  }

  /// Canonical strata estimator of the exact baseline's occurrence-indexed
  /// point keys.
  virtual std::optional<StrataEstimator> ExactStrata(
      const StrataConfig& config) const {
    (void)config;
    return std::nullopt;
  }

  /// Shared canonical keyed-point list of the exact baseline. Not a sketch
  /// — the exact protocol's difference-sized IBLT depends on the client and
  /// cannot be cached (DESIGN.md §9) — but caching the sorted keyed list
  /// saves the per-connection O(n log n) canonicalisation. `seed` is the
  /// public seed the keys were derived from.
  virtual std::shared_ptr<const KeyedPointList> ExactKeyedPoints(
      uint64_t seed) const {
    (void)seed;
    return nullptr;
  }

  /// Canonical RIBLT of MLSH ladder level `level_index` (lshrecon's
  /// prefix-doubling ladder). `config` is compared ignoring max_entries,
  /// which only fixes serialized field widths, never cell arithmetic.
  virtual std::optional<Riblt> MlshLevelRiblt(const RibltConfig& config,
                                              size_t level_index) const {
    (void)config;
    (void)level_index;
    return std::nullopt;
  }

  /// Canonical exact-key one-shot RIBLT (riblt-oneshot). `config` is the
  /// one the session derived from the *initiator's* set size; it is
  /// compared ignoring max_entries for the same reason as MlshLevelRiblt.
  virtual std::optional<Riblt> OneShotRiblt(const RibltConfig& config) const {
    (void)config;
    return std::nullopt;
  }
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_SKETCH_PROVIDER_H_
