#include "recon/driver.h"

#include <utility>

#include "util/check.h"

namespace rsr {
namespace recon {

const char* SessionErrorName(SessionError error) {
  switch (error) {
    case SessionError::kNone:
      return "none";
    case SessionError::kEmptyChannel:
      return "empty-channel";
    case SessionError::kUnexpectedMessage:
      return "unexpected-message";
    case SessionError::kMalformedMessage:
      return "malformed-message";
    case SessionError::kStalled:
      return "stalled";
    case SessionError::kTransportClosed:
      return "transport-closed";
    case SessionError::kProtocolRejected:
      return "protocol-rejected";
  }
  return "unknown";
}

namespace {

void SendAll(transport::Channel* channel, transport::Direction direction,
             std::vector<transport::Message> messages) {
  for (transport::Message& message : messages) {
    channel->Send(direction, std::move(message));
  }
}

}  // namespace

ReconResult DrivePair(PartySession* alice, PartySession* bob,
                      transport::Channel* channel, size_t max_deliveries) {
  using transport::Direction;

  // Opening sends. Alice first: every initiator-led transcript starts with
  // her message, and responder-led protocols (exact-iblt) have an empty
  // Alice opening, so this matches the seed's send order in both cases.
  SendAll(channel, Direction::kAliceToBob, alice->Start());
  SendAll(channel, Direction::kBobToAlice, bob->Start());

  size_t deliveries = 0;
  while (!bob->IsDone()) {
    bool progress = false;
    while (!bob->IsDone() && channel->HasPending(Direction::kAliceToBob)) {
      auto message = channel->Receive(Direction::kAliceToBob);
      if (!message.has_value()) break;  // unreachable given HasPending
      SendAll(channel, Direction::kBobToAlice,
              bob->OnMessage(std::move(*message)));
      progress = true;
      ++deliveries;
    }
    while (!alice->IsDone() && channel->HasPending(Direction::kBobToAlice)) {
      auto message = channel->Receive(Direction::kBobToAlice);
      if (!message.has_value()) break;
      SendAll(channel, Direction::kAliceToBob,
              alice->OnMessage(std::move(*message)));
      progress = true;
      ++deliveries;
    }
    if (bob->IsDone()) break;
    if (!progress || deliveries > max_deliveries) {
      // Half-open failure: surface it instead of spinning or aborting.
      ReconResult result = bob->TakeResult();
      result.success = false;
      if (result.error == SessionError::kNone) {
        result.error = SessionError::kStalled;
      }
      return result;
    }
  }
  return bob->TakeResult();
}

std::unique_ptr<PartySession> Reconciler::MakeBobSession(
    const PointSet& points, const CanonicalSketchProvider* sketches) const {
  (void)sketches;  // protocols without cacheable canonical state
  return MakeBobSession(points);
}

ReconResult Reconciler::Run(const PointSet& alice, const PointSet& bob,
                            transport::Channel* channel) const {
  if (RequiresEqualSizes()) {
    RSR_CHECK_MSG(alice.size() == bob.size(),
                  "EMD model requires equal-size sets");
  }
  const std::unique_ptr<PartySession> alice_session = MakeAliceSession(alice);
  const std::unique_ptr<PartySession> bob_session = MakeBobSession(bob);
  return DrivePair(alice_session.get(), bob_session.get(), channel);
}

}  // namespace recon
}  // namespace rsr
