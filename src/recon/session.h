// Driveable endpoint state machines for two-party reconciliation.
//
// A PartySession is one endpoint of a protocol run. It never touches a
// channel: it is handed incoming messages one at a time and returns the
// messages it wants delivered to the peer, which makes it directly usable
// behind any transport — the in-process driver (recon/driver.h), a socket,
// an async batch queue, or a many-client sync server that keeps one session
// per peer.
//
// Lifecycle:
//   1. Start() is called exactly once before any delivery; the returned
//      messages are the endpoint's opening sends (often empty for the
//      responder).
//   2. OnMessage(msg) is called once per incoming message, in order; the
//      returned messages are the endpoint's replies.
//   3. Once IsDone() is true the endpoint will neither expect nor produce
//      further messages, and TakeResult() moves its ReconResult out.
//
// Error handling: instead of aborting on malformed or unexpected traffic
// (the seed behaviour), a session finishes with result.error set to the
// matching SessionError and success == false.
//
// Message framing: every message's label identifies its type ("qt-strata",
// "exact-retry", ...). Labels are part of the message header — sessions may
// dispatch on them — while only payload bits are billed, matching the
// accounting convention of the seed. See DESIGN.md §2.

#ifndef RSR_RECON_SESSION_H_
#define RSR_RECON_SESSION_H_

#include <utility>
#include <vector>

#include "recon/protocol.h"
#include "transport/message.h"

namespace rsr {
namespace recon {

/// One endpoint of a two-party protocol.
class PartySession {
 public:
  virtual ~PartySession() = default;

  /// Opening sends. Called exactly once, before any OnMessage.
  virtual std::vector<transport::Message> Start() = 0;

  /// Handles one incoming message; returns the replies to deliver to the
  /// peer.
  virtual std::vector<transport::Message> OnMessage(
      transport::Message message) = 0;

  /// True when the endpoint has finished (successfully or not).
  virtual bool IsDone() const = 0;

  /// Moves the endpoint's result out. Meaningful once IsDone(); Bob's
  /// session holds the canonical deliverable.
  virtual ReconResult TakeResult() = 0;
};

/// Shared boilerplate: a result slot, a done flag, and helpers to finish in
/// the common ways. Protocol sessions derive from this.
class PartySessionBase : public PartySession {
 public:
  bool IsDone() const override { return done_; }
  ReconResult TakeResult() override { return std::move(result_); }

 protected:
  /// Finishes with a transport/framing error.
  void FailWith(SessionError error) {
    result_.success = false;
    result_.error = error;
    done_ = true;
  }

  /// Finishes (success flag already recorded in result_).
  void Finish() { done_ = true; }

  /// Convenience empty reply.
  static std::vector<transport::Message> NoMessages() { return {}; }

  /// Convenience single-message reply.
  static std::vector<transport::Message> OneMessage(transport::Message m) {
    std::vector<transport::Message> out;
    out.push_back(std::move(m));
    return out;
  }

  ReconResult result_;
  bool done_ = false;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_SESSION_H_
