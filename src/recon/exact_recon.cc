#include "recon/exact_recon.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hash/mix.h"
#include "iblt/iblt.h"
#include "iblt/sizing.h"
#include "iblt/strata.h"
#include "recon/session.h"

namespace rsr {
namespace recon {

// Occurrence-indexed keys make duplicate points in one party's multiset
// distinct sketch elements (plain IBLTs cannot hold duplicate keys), while
// the i-th copy of a shared point still cancels across parties.
KeyedPointList ExactKeyedPoints(const PointSet& points, uint64_t seed) {
  PointSet sorted = points;
  std::sort(sorted.begin(), sorted.end(), PointLess);
  KeyedPointList keyed;
  keyed.reserve(sorted.size());
  size_t occurrence = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    // Compare against the copy already stored in `keyed` — sorted[i - 1]
    // must not be used after it was moved out of.
    occurrence =
        (i > 0 && sorted[i] == keyed[i - 1].second) ? occurrence + 1 : 0;
    const uint64_t key = ExactOccurrenceKey(sorted[i], occurrence, seed);
    keyed.emplace_back(key, std::move(sorted[i]));
  }
  return keyed;
}

uint64_t ExactOccurrenceKey(const Point& p, size_t occurrence,
                            uint64_t seed) {
  return HashCombine(PointKey(p, seed), occurrence);
}

StrataConfig ExactReconStrataConfig(uint64_t seed) {
  StrataConfig config;
  config.num_strata = 20;
  config.cells_per_stratum = 32;
  config.q = 4;
  config.checksum_bits = 32;
  config.count_bits = 12;
  config.seed = seed ^ 0x657874737472ULL;  // "extstr" tag
  return config;
}

namespace {

// IBLT configuration of attempt `attempt` (shared derivation; only the
// cell count travels on the wire).
IbltConfig ExactIbltConfig(const ProtocolContext& context,
                           const ExactReconParams& params, uint64_t target,
                           size_t attempt) {
  IbltConfig config;
  config.cells = RecommendedCells(static_cast<size_t>(target) << attempt,
                                  params.q, params.headroom);
  config.q = params.q;
  config.value_bits = context.universe.BitsPerPoint();
  config.checksum_bits = params.checksum_bits;
  config.count_bits = params.count_bits;
  config.seed =
      Hash64(attempt, context.seed ^ 0x6578616374ULL);  // "exact" tag
  return config;
}

// Alice: awaits Bob's strata estimator, then serves IBLTs — the first
// sized from the estimate, each retry doubled.
class ExactAlice : public PartySessionBase {
 public:
  ExactAlice(const ProtocolContext& context, const ExactReconParams& params,
             PointSet points)
      : context_(context),
        params_(params),
        keyed_(ExactKeyedPoints(points, context.seed)) {}

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    if (state_ == State::kAwaitStrata) {
      // --- Estimate the difference from Bob's estimator. ---
      const StrataConfig strata_config =
          ExactReconStrataConfig(context_.seed);
      BitReader r(message.payload);
      std::optional<StrataEstimator> bob_est =
          StrataEstimator::Deserialize(strata_config, &r);
      if (!bob_est.has_value()) {
        FailWith(SessionError::kMalformedMessage);
        return NoMessages();
      }
      StrataEstimator alice_est(strata_config);
      for (const auto& [key, point] : keyed_) {
        (void)point;
        alice_est.Insert(key);
      }
      const uint64_t estimate = alice_est.EstimateDifference(*bob_est);
      target_ = static_cast<uint64_t>(static_cast<double>(estimate) *
                                      params_.estimate_safety);
      if (target_ < 16) target_ = 16;
      state_ = State::kServing;
      result_.success = true;
      return OneMessage(MakeIbltMessage(/*attempt=*/0));
    }
    // State::kServing — an "exact-retry" carrying the next attempt index.
    BitReader r(message.payload);
    uint64_t attempt = 0;
    if (!r.ReadVarint(&attempt)) {
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    if (attempt >= params_.max_attempts) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    return OneMessage(MakeIbltMessage(static_cast<size_t>(attempt)));
  }

 private:
  enum class State { kAwaitStrata, kServing };

  // Alice -> Bob: her set sketched into the IBLT (cells prefixed so Bob
  // can reconstruct the config without further negotiation).
  transport::Message MakeIbltMessage(size_t attempt) {
    const IbltConfig config =
        ExactIbltConfig(context_, params_, target_, attempt);
    Iblt table(config);
    for (const auto& [key, point] : keyed_) {
      BitWriter vw;
      PackPoint(context_.universe, point, &vw);
      table.Insert(key, std::move(vw).TakeBytes());
    }
    BitWriter w;
    w.WriteVarint(config.cells);
    table.Serialize(&w);
    return transport::MakeMessage("exact-iblt", std::move(w));
  }

  ProtocolContext context_;
  ExactReconParams params_;
  KeyedPointList keyed_;
  State state_ = State::kAwaitStrata;
  uint64_t target_ = 0;
};

// Bob: opens with his strata estimator, then decodes each IBLT reply,
// requesting a doubled table on failure while attempts remain.
class ExactBob : public PartySessionBase {
 public:
  ExactBob(const ProtocolContext& context, const ExactReconParams& params,
           PointSet points, const CanonicalSketchProvider* sketches)
      : context_(context), params_(params), points_(std::move(points)) {
    // The keyed list itself is shareable canonical state (the sort is the
    // per-session cost worth skipping); the difference-sized IBLT below is
    // not — its size comes from the client's estimate.
    if (sketches != nullptr) {
      keyed_ = sketches->ExactKeyedPoints(context_.seed);
    }
    if (keyed_ == nullptr) {
      keyed_ = std::make_shared<const KeyedPointList>(
          ExactKeyedPoints(points_, context_.seed));
    }
    if (sketches != nullptr) {
      cached_strata_ =
          sketches->ExactStrata(ExactReconStrataConfig(context_.seed));
    }
    result_.bob_final = points_;
  }

  std::vector<transport::Message> Start() override {
    // --- Message 1 (B->A): strata estimator of Bob's keys. ---
    std::optional<StrataEstimator> est = std::move(cached_strata_);
    if (!est.has_value()) {
      est.emplace(ExactReconStrataConfig(context_.seed));
      for (const auto& [key, point] : *keyed_) {
        (void)point;
        est->Insert(key);
      }
    }
    BitWriter w;
    est->Serialize(&w);
    return OneMessage(transport::MakeMessage("exact-strata", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    result_.attempts = attempt_ + 1;
    const uint64_t seed = context_.seed;
    BitReader r(message.payload);
    uint64_t cells = 0;
    if (!r.ReadVarint(&cells)) {
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    // target is irrelevant for deserialisation: the cell count comes from
    // the wire, everything else from public parameters and the attempt.
    IbltConfig config =
        ExactIbltConfig(context_, params_, /*target=*/16, attempt_);
    config.cells = static_cast<size_t>(cells);
    std::optional<Iblt> table = Iblt::Deserialize(config, &r);
    if (!table.has_value()) {
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    for (const auto& [key, point] : *keyed_) {
      BitWriter vw;
      PackPoint(context_.universe, point, &vw);
      table->Erase(key, std::move(vw).TakeBytes());
    }
    const IbltDecodeResult decoded = table->Decode();
    if (decoded.success) {
      // Apply: +1 entries are Alice-only points, -1 entries Bob-only.
      std::unordered_map<uint64_t, int64_t> to_remove;  // key -> copies
      PointSet additions;
      bool parse_ok = true;
      for (const IbltEntry& entry : decoded.entries) {
        BitReader vr(entry.value);
        Point p;
        if (!UnpackPoint(context_.universe, &vr, &p)) {
          parse_ok = false;
          break;
        }
        if (entry.sign > 0) {
          additions.push_back(std::move(p));
        } else {
          ++to_remove[PointKey(p, seed)];
        }
      }
      if (parse_ok) {
        PointSet final_set;
        final_set.reserve(points_.size());
        for (const Point& p : points_) {
          auto it = to_remove.find(PointKey(p, seed));
          if (it != to_remove.end() && it->second > 0) {
            --it->second;
            continue;
          }
          final_set.push_back(p);
        }
        for (Point& p : additions) final_set.push_back(std::move(p));
        result_.success = true;
        result_.decoded_entries = decoded.entries.size();
        result_.bob_final = std::move(final_set);
        Finish();
        return NoMessages();
      }
    }
    // Decode failed: request a doubled table unless out of attempts.
    ++attempt_;
    if (attempt_ >= params_.max_attempts) {
      Finish();  // unsuccessful
      return NoMessages();
    }
    BitWriter w;
    w.WriteVarint(attempt_);
    return OneMessage(transport::MakeMessage("exact-retry", std::move(w)));
  }

 private:
  ProtocolContext context_;
  ExactReconParams params_;
  PointSet points_;
  std::shared_ptr<const KeyedPointList> keyed_;
  std::optional<StrataEstimator> cached_strata_;
  size_t attempt_ = 0;
};

}  // namespace

std::unique_ptr<PartySession> ExactReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<ExactAlice>(context_, params_, points);
}

std::unique_ptr<PartySession> ExactReconciler::MakeBobSession(
    const PointSet& points) const {
  return MakeBobSession(points, nullptr);
}

std::unique_ptr<PartySession> ExactReconciler::MakeBobSession(
    const PointSet& points, const CanonicalSketchProvider* sketches) const {
  return std::make_unique<ExactBob>(context_, params_, points, sketches);
}

}  // namespace recon
}  // namespace rsr
