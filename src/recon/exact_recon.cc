#include "recon/exact_recon.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hash/mix.h"
#include "iblt/iblt.h"
#include "iblt/sizing.h"
#include "iblt/strata.h"
#include "util/check.h"

namespace rsr {
namespace recon {

namespace {

// Occurrence-indexed keys make duplicate points in one party's multiset
// distinct sketch elements (plain IBLTs cannot hold duplicate keys), while
// the i-th copy of a shared point still cancels across parties.
std::vector<std::pair<uint64_t, Point>> CanonicalKeyedPoints(
    const PointSet& points, uint64_t seed) {
  PointSet sorted = points;
  std::sort(sorted.begin(), sorted.end(), PointLess);
  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(sorted.size());
  size_t occurrence = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    // Compare against the copy already stored in `keyed` — sorted[i - 1]
    // must not be used after it was moved out of.
    occurrence =
        (i > 0 && sorted[i] == keyed[i - 1].second) ? occurrence + 1 : 0;
    const uint64_t key =
        HashCombine(PointKey(sorted[i], seed), occurrence);
    keyed.emplace_back(key, std::move(sorted[i]));
  }
  return keyed;
}

StrataConfig ExactStrataConfig(uint64_t seed) {
  StrataConfig config;
  config.num_strata = 20;
  config.cells_per_stratum = 32;
  config.q = 4;
  config.checksum_bits = 32;
  config.count_bits = 12;
  config.seed = seed ^ 0x657874737472ULL;  // "extstr" tag
  return config;
}

}  // namespace

ReconResult ExactReconciler::Run(const PointSet& alice, const PointSet& bob,
                                 transport::Channel* channel) const {
  const uint64_t seed = context_.seed;
  const auto alice_keyed = CanonicalKeyedPoints(alice, seed);
  const auto bob_keyed = CanonicalKeyedPoints(bob, seed);

  // --- Message 1 (B->A): strata estimator of Bob's keys. ---
  const StrataConfig strata_config = ExactStrataConfig(seed);
  {
    StrataEstimator est(strata_config);
    for (const auto& [key, point] : bob_keyed) {
      (void)point;
      est.Insert(key);
    }
    BitWriter w;
    est.Serialize(&w);
    channel->Send(transport::Direction::kBobToAlice,
                  transport::MakeMessage("exact-strata", std::move(w)));
  }

  // --- Alice: estimate the difference. ---
  uint64_t estimate = 0;
  {
    const transport::Message msg =
        channel->Receive(transport::Direction::kBobToAlice);
    BitReader r(msg.payload);
    std::optional<StrataEstimator> bob_est =
        StrataEstimator::Deserialize(strata_config, &r);
    RSR_CHECK(bob_est.has_value());
    StrataEstimator alice_est(strata_config);
    for (const auto& [key, point] : alice_keyed) {
      (void)point;
      alice_est.Insert(key);
    }
    estimate = alice_est.EstimateDifference(*bob_est);
  }

  const int value_bits = context_.universe.BitsPerPoint();
  uint64_t target =
      static_cast<uint64_t>(static_cast<double>(estimate) *
                            params_.estimate_safety);
  if (target < 16) target = 16;

  ReconResult result;
  result.bob_final = bob;
  for (size_t attempt = 0; attempt < params_.max_attempts; ++attempt) {
    result.attempts = attempt + 1;
    IbltConfig config;
    config.cells = RecommendedCells(static_cast<size_t>(target) << attempt,
                                    params_.q, params_.headroom);
    config.q = params_.q;
    config.value_bits = value_bits;
    config.checksum_bits = params_.checksum_bits;
    config.count_bits = params_.count_bits;
    config.seed = Hash64(attempt, seed ^ 0x6578616374ULL);  // "exact" tag

    // --- Alice -> Bob: her set sketched into the IBLT (cells prefixed so
    // Bob can reconstruct the config without further negotiation). ---
    {
      Iblt table(config);
      BitWriter payload;
      for (const auto& [key, point] : alice_keyed) {
        BitWriter vw;
        PackPoint(context_.universe, point, &vw);
        table.Insert(key, std::move(vw).TakeBytes());
        (void)payload;
      }
      BitWriter w;
      w.WriteVarint(config.cells);
      table.Serialize(&w);
      channel->Send(transport::Direction::kAliceToBob,
                    transport::MakeMessage("exact-iblt", std::move(w)));
    }

    // --- Bob: erase his keys, decode, apply. ---
    {
      const transport::Message msg =
          channel->Receive(transport::Direction::kAliceToBob);
      BitReader r(msg.payload);
      uint64_t cells = 0;
      RSR_CHECK(r.ReadVarint(&cells));
      IbltConfig bob_config = config;
      bob_config.cells = static_cast<size_t>(cells);
      std::optional<Iblt> table = Iblt::Deserialize(bob_config, &r);
      RSR_CHECK(table.has_value());
      for (const auto& [key, point] : bob_keyed) {
        BitWriter vw;
        PackPoint(context_.universe, point, &vw);
        table->Erase(key, std::move(vw).TakeBytes());
      }
      const IbltDecodeResult decoded = table->Decode();
      if (decoded.success) {
        // Apply: +1 entries are Alice-only points, -1 entries Bob-only.
        std::unordered_map<uint64_t, int64_t> to_remove;  // key -> copies
        PointSet additions;
        bool parse_ok = true;
        for (const IbltEntry& entry : decoded.entries) {
          BitReader vr(entry.value);
          Point p;
          if (!UnpackPoint(context_.universe, &vr, &p)) {
            parse_ok = false;
            break;
          }
          if (entry.sign > 0) {
            additions.push_back(std::move(p));
          } else {
            ++to_remove[PointKey(p, seed)];
          }
        }
        if (parse_ok) {
          PointSet final_set;
          final_set.reserve(bob.size());
          for (const Point& p : bob) {
            auto it = to_remove.find(PointKey(p, seed));
            if (it != to_remove.end() && it->second > 0) {
              --it->second;
              continue;
            }
            final_set.push_back(p);
          }
          for (Point& p : additions) final_set.push_back(std::move(p));
          result.success = true;
          result.decoded_entries = decoded.entries.size();
          result.bob_final = std::move(final_set);
          return result;
        }
      }
      // Decode failed: request a doubled table unless out of attempts.
      if (attempt + 1 < params_.max_attempts) {
        BitWriter w;
        w.WriteVarint(attempt + 1);
        channel->Send(transport::Direction::kBobToAlice,
                      transport::MakeMessage("exact-retry", std::move(w)));
        (void)channel->Receive(transport::Direction::kBobToAlice);
      }
    }
  }
  return result;
}

}  // namespace recon
}  // namespace rsr
