// String-keyed protocol registry.
//
// Benches, examples, tests and (later) server frontends construct
// reconcilers from a name plus a ProtocolContext and a ProtocolParams bag,
// instead of hard-coding constructors. This is what lets one binary sweep
// every protocol uniformly, and what a sync server will use to negotiate a
// protocol by name with a client.
//
// The built-in names (registered on first use of Global()):
//   "full-transfer"      whole-set baseline
//   "exact-iblt"         strata + IBLT exact baseline
//   "quadtree"           one-shot robust quadtree (the paper's core)
//   "quadtree-adaptive"  3-message strata-probe quadtree
//   "single-grid"        one forced level (params.single_grid_level)
//   "mlsh-riblt"         LSH + Robust-IBLT extension
//   "riblt-oneshot"      exact-key one-shot RIBLT baseline
//   "gap-lattice"        gap-guarantee lattice protocol

#ifndef RSR_RECON_REGISTRY_H_
#define RSR_RECON_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gaprecon/gap_recon.h"
#include "lshrecon/mlsh_recon.h"
#include "recon/exact_recon.h"
#include "recon/params.h"
#include "recon/protocol.h"
#include "riblt/riblt_recon.h"

namespace rsr {
namespace recon {

/// Union of every protocol family's tunables. A consumer fills the
/// sub-struct(s) of the protocols it runs; the convenience field `k`
/// (when non-zero) overrides each family's own outlier budget so sweeps
/// can set one knob.
struct ProtocolParams {
  QuadtreeParams quadtree;
  ExactReconParams exact;
  lshrecon::MlshParams mlsh;
  gaprecon::GapParams gap;
  RibltReconParams riblt;
  int single_grid_level = 6;  ///< Forced level of "single-grid".
  size_t k = 0;  ///< If > 0, overrides quadtree.k, mlsh.k and riblt.k.

  /// Returns a copy with the shared `k` pushed into the sub-params.
  ProtocolParams Resolved() const;
};

class ProtocolRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Reconciler>(
      const ProtocolContext&, const ProtocolParams&)>;

  /// The process-wide registry, with the built-in protocols registered.
  static ProtocolRegistry& Global();

  /// Registers a protocol. Returns false (and keeps the existing entry) if
  /// the name is taken.
  bool Register(const std::string& name, const std::string& description,
                Factory factory);

  bool Contains(const std::string& name) const;

  /// Instantiates `name`, or nullptr if unknown.
  std::unique_ptr<Reconciler> Create(const std::string& name,
                                     const ProtocolContext& context,
                                     const ProtocolParams& params) const;

  /// Registered names, sorted. The sync-server handshake sends this list
  /// back to a client whose requested protocol is unknown, so rejection
  /// errors are self-describing.
  std::vector<std::string> ListProtocols() const;

  /// Registered names, sorted (alias of ListProtocols, kept for existing
  /// callers).
  std::vector<std::string> Names() const { return ListProtocols(); }

  /// One-line description of `name` ("" if unknown).
  std::string Describe(const std::string& name) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Convenience: ProtocolRegistry::Global().Create(...).
std::unique_ptr<Reconciler> MakeReconciler(const std::string& name,
                                           const ProtocolContext& context,
                                           const ProtocolParams& params);

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_REGISTRY_H_
