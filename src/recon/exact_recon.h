// Baseline: exact set reconciliation over full-precision points
// (strata-estimator + IBLT, the standard Eppstein et al. construction).
//
// Bob ends with exactly Alice's multiset, and the cost is proportional to
// the *exact* symmetric difference D. That is optimal when replicas differ
// in a few whole elements — and catastrophic in the robust setting, where
// per-point noise makes D ≈ 2n. Reproducing that collapse is experiment E3.
//
// Protocol (3 messages): B->A strata estimator of Bob's keys; A->B an IBLT
// sized from the estimate (Alice inserted her set, she also erases nothing —
// Bob erases his own elements locally); on decode failure Bob requests a
// doubled table (2 more messages per retry).
//
// Sessions:
//   Bob:    Start -> "exact-strata"; await "exact-iblt" -> decode; on
//           failure send "exact-retry" (varint next attempt) while attempts
//           remain, else finish unsuccessfully.
//   Alice:  await "exact-strata" -> estimate, reply "exact-iblt"; then
//           serve each "exact-retry" with a doubled "exact-iblt".

#ifndef RSR_RECON_EXACT_RECON_H_
#define RSR_RECON_EXACT_RECON_H_

#include <cstddef>
#include <cstdint>

#include "iblt/strata.h"
#include "recon/protocol.h"
#include "recon/sketch_provider.h"

namespace rsr {
namespace recon {

/// Canonical occurrence-indexed keying of a point multiset: points sorted
/// by PointLess, the i-th copy of a duplicate keyed by
/// HashCombine(PointKey(p, seed), i) so duplicates are distinct sketch
/// elements while the i-th copy of a shared point still cancels across
/// parties. Exported (alongside ExactReconStrataConfig) so a canonical
/// sketch store can maintain the same estimator and keyed list the Bob
/// session expects (server/sketch_store.h, DESIGN.md §9).
KeyedPointList ExactKeyedPoints(const PointSet& points, uint64_t seed);

/// The key of the `occurrence`-th copy of `p` (the single formula behind
/// ExactKeyedPoints; exported so the sketch store's incremental
/// maintenance can never drift from the session-side keying).
uint64_t ExactOccurrenceKey(const Point& p, size_t occurrence, uint64_t seed);

/// Strata-estimator configuration of the exact baseline (derived from the
/// public seed).
StrataConfig ExactReconStrataConfig(uint64_t seed);

/// Tunables of the exact baseline.
struct ExactReconParams {
  int q = 4;
  double headroom = 1.35;
  double estimate_safety = 2.0;  ///< Multiplier on the strata estimate.
  int checksum_bits = 32;
  int count_bits = 16;
  size_t max_attempts = 4;       ///< Doubling retries on decode failure.
};

class ExactReconciler : public Reconciler {
 public:
  ExactReconciler(const ProtocolContext& context,
                  const ExactReconParams& params)
      : context_(context), params_(params) {}

  std::string Name() const override { return "exact-iblt"; }
  std::unique_ptr<PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points,
      const CanonicalSketchProvider* sketches) const override;

 private:
  ProtocolContext context_;
  ExactReconParams params_;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_EXACT_RECON_H_
