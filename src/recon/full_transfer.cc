#include "recon/full_transfer.h"

#include <utility>

#include "util/check.h"

namespace rsr {
namespace recon {

ReconResult FullTransferReconciler::Run(const PointSet& alice,
                                        const PointSet& bob,
                                        transport::Channel* channel) const {
  (void)bob;
  BitWriter w;
  w.WriteVarint(alice.size());
  for (const Point& p : alice) PackPoint(context_.universe, p, &w);
  channel->Send(transport::Direction::kAliceToBob,
                transport::MakeMessage("full-transfer", std::move(w)));

  const transport::Message msg =
      channel->Receive(transport::Direction::kAliceToBob);
  BitReader r(msg.payload);
  uint64_t count = 0;
  RSR_CHECK(r.ReadVarint(&count));
  ReconResult result;
  result.bob_final.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Point p;
    RSR_CHECK(UnpackPoint(context_.universe, &r, &p));
    result.bob_final.push_back(std::move(p));
  }
  result.success = true;
  return result;
}

}  // namespace recon
}  // namespace rsr
