#include "recon/full_transfer.h"

#include <utility>

#include "recon/session.h"

namespace rsr {
namespace recon {

namespace {

class FullTransferAlice : public PartySessionBase {
 public:
  FullTransferAlice(const ProtocolContext& context, PointSet points)
      : context_(context), points_(std::move(points)) {}

  std::vector<transport::Message> Start() override {
    BitWriter w;
    w.WriteVarint(points_.size());
    for (const Point& p : points_) PackPoint(context_.universe, p, &w);
    result_.success = true;
    Finish();
    return OneMessage(
        transport::MakeMessage("full-transfer", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(transport::Message) override {
    FailWith(SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  ProtocolContext context_;
  PointSet points_;
};

class FullTransferBob : public PartySessionBase {
 public:
  FullTransferBob(const ProtocolContext& context, PointSet points)
      : context_(context) {
    result_.bob_final = std::move(points);
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    BitReader r(message.payload);
    uint64_t count = 0;
    if (!r.ReadVarint(&count)) {
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    PointSet received;
    received.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Point p;
      if (!UnpackPoint(context_.universe, &r, &p)) {
        FailWith(SessionError::kMalformedMessage);
        return NoMessages();
      }
      received.push_back(std::move(p));
    }
    result_.bob_final = std::move(received);
    result_.success = true;
    Finish();
    return NoMessages();
  }

 private:
  ProtocolContext context_;
};

}  // namespace

std::unique_ptr<PartySession> FullTransferReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<FullTransferAlice>(context_, points);
}

std::unique_ptr<PartySession> FullTransferReconciler::MakeBobSession(
    const PointSet& points) const {
  return std::make_unique<FullTransferBob>(context_, points);
}

}  // namespace recon
}  // namespace rsr
