#include "recon/single_grid.h"

#include <utility>

#include "recon/quadtree_recon.h"
#include "util/check.h"

namespace rsr {
namespace recon {

ReconResult SingleGridReconciler::Run(const PointSet& alice,
                                      const PointSet& bob,
                                      transport::Channel* channel) const {
  RSR_CHECK_MSG(alice.size() == bob.size(),
                "EMD model requires equal-size sets");
  const size_t n = alice.size();
  const ShiftedGrid grid(context_.universe, context_.seed);
  RSR_CHECK(level_ >= 0 && level_ <= grid.max_level());

  {
    BitWriter w;
    BuildLevelIblt(grid, alice, level_, n, params_, context_.seed)
        .Serialize(&w);
    channel->Send(transport::Direction::kAliceToBob,
                  transport::MakeMessage("single-grid", std::move(w)));
  }

  ReconResult result;
  result.bob_final = bob;
  result.chosen_level = level_;
  const transport::Message msg =
      channel->Receive(transport::Direction::kAliceToBob);
  BitReader r(msg.payload);
  const IbltConfig config =
      LevelIbltConfig(grid, level_, n, params_, context_.seed);
  std::optional<Iblt> alice_iblt = Iblt::Deserialize(config, &r);
  RSR_CHECK(alice_iblt.has_value());
  const Iblt bob_iblt =
      BuildLevelIblt(grid, bob, level_, n, params_, context_.seed);
  std::optional<std::vector<LevelDiffEntry>> diff = TryDecodeLevelDiff(
      grid, level_, n, *alice_iblt, bob_iblt, params_.DecodeBudget());
  if (diff.has_value()) {
    result.success = true;
    result.decoded_entries = diff->size();
    result.bob_final = RepairBob(grid, bob, level_, *diff);
  }
  return result;
}

}  // namespace recon
}  // namespace rsr
