#include "recon/single_grid.h"

#include <utility>

#include "recon/quadtree_recon.h"
#include "recon/session.h"
#include "util/check.h"

namespace rsr {
namespace recon {

namespace {

class SingleGridAlice : public PartySessionBase {
 public:
  SingleGridAlice(const ProtocolContext& context,
                  const QuadtreeParams& params, int level, PointSet points)
      : context_(context),
        params_(params),
        level_(level),
        points_(std::move(points)) {}

  std::vector<transport::Message> Start() override {
    const ShiftedGrid grid(context_.universe, context_.seed);
    RSR_CHECK(level_ >= 0 && level_ <= grid.max_level());
    BitWriter w;
    BuildLevelIblt(grid, points_, level_, points_.size(), params_,
                   context_.seed)
        .Serialize(&w);
    result_.success = true;
    result_.chosen_level = level_;
    Finish();
    return OneMessage(transport::MakeMessage("single-grid", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(transport::Message) override {
    FailWith(SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  int level_;
  PointSet points_;
};

class SingleGridBob : public PartySessionBase {
 public:
  SingleGridBob(const ProtocolContext& context, const QuadtreeParams& params,
                int level, PointSet points,
                const CanonicalSketchProvider* sketches)
      : context_(context),
        params_(params),
        level_(level),
        points_(std::move(points)),
        sketches_(sketches) {
    result_.bob_final = points_;
    result_.chosen_level = level_;
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    const size_t n = points_.size();
    const ShiftedGrid grid(context_.universe, context_.seed);
    RSR_CHECK(level_ >= 0 && level_ <= grid.max_level());
    BitReader r(message.payload);
    const IbltConfig config =
        LevelIbltConfig(grid, level_, n, params_, context_.seed);
    std::optional<Iblt> alice_iblt = Iblt::Deserialize(config, &r);
    if (!alice_iblt.has_value()) {
      FailWith(SessionError::kMalformedMessage);
      return NoMessages();
    }
    std::optional<Iblt> bob_iblt =
        sketches_ != nullptr ? sketches_->QuadtreeLevelIblt(config, level_)
                             : std::nullopt;
    if (!bob_iblt.has_value()) {
      bob_iblt =
          BuildLevelIblt(grid, points_, level_, n, params_, context_.seed);
    }
    std::optional<std::vector<LevelDiffEntry>> diff = TryDecodeLevelDiff(
        grid, level_, n, *alice_iblt, *bob_iblt, params_.DecodeBudget());
    if (diff.has_value()) {
      result_.success = true;
      result_.decoded_entries = diff->size();
      result_.bob_final = RepairBob(grid, points_, level_, *diff);
    }
    Finish();
    return NoMessages();
  }

 private:
  ProtocolContext context_;
  QuadtreeParams params_;
  int level_;
  PointSet points_;
  const CanonicalSketchProvider* sketches_;
};

}  // namespace

std::unique_ptr<PartySession> SingleGridReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<SingleGridAlice>(context_, params_, level_, points);
}

std::unique_ptr<PartySession> SingleGridReconciler::MakeBobSession(
    const PointSet& points) const {
  return MakeBobSession(points, nullptr);
}

std::unique_ptr<PartySession> SingleGridReconciler::MakeBobSession(
    const PointSet& points, const CanonicalSketchProvider* sketches) const {
  return std::make_unique<SingleGridBob>(context_, params_, level_, points,
                                         sketches);
}

}  // namespace recon
}  // namespace rsr
