#include "recon/evaluate.h"

#include <chrono>

#include "geometry/emd.h"

namespace rsr {
namespace recon {

Evaluation EvaluateProtocol(const Reconciler& protocol, const PointSet& alice,
                            const PointSet& bob,
                            const EvaluateOptions& options) {
  Evaluation eval;
  eval.protocol = protocol.Name();

  transport::Channel channel;
  const auto start = std::chrono::steady_clock::now();
  const ReconResult result = protocol.Run(alice, bob, &channel);
  const auto end = std::chrono::steady_clock::now();

  eval.success = result.success;
  eval.comm_bits = channel.stats().total_bits;
  eval.rounds = channel.stats().rounds;
  eval.messages = channel.stats().message_count;
  eval.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  eval.chosen_level = result.chosen_level;
  eval.decoded_entries = result.decoded_entries;
  eval.attempts = result.attempts;

  if (options.measure_quality && alice.size() == bob.size()) {
    eval.emd_before =
        EmdAuto(alice, bob, options.metric, options.exact_emd_limit);
    eval.emd_after = EmdAuto(alice, result.bob_final, options.metric,
                             options.exact_emd_limit);
    if (options.k > 0 && alice.size() <= options.exact_emd_limit) {
      eval.emd_k = ExactEmdK(alice, bob, options.k, options.metric);
      const double denom = eval.emd_k > 1.0 ? eval.emd_k : 1.0;
      eval.ratio_vs_emdk = eval.emd_after / denom;
    }
  }
  return eval;
}

Evaluation EvaluateProtocol(const std::string& protocol_name,
                            const ProtocolContext& context,
                            const ProtocolParams& params,
                            const PointSet& alice, const PointSet& bob,
                            const EvaluateOptions& options) {
  const std::unique_ptr<Reconciler> protocol =
      MakeReconciler(protocol_name, context, params);
  if (protocol == nullptr) {
    Evaluation eval;
    eval.protocol = protocol_name;
    return eval;
  }
  return EvaluateProtocol(*protocol, alice, bob, options);
}

}  // namespace recon
}  // namespace rsr
