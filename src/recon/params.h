// Parameter derivation shared by the robust protocols.
//
// Everything here is a deterministic function of public quantities (the
// universe, n, k, the seed), so both parties derive identical configurations
// without communication — the public-coins convention of the paper.

#ifndef RSR_RECON_PARAMS_H_
#define RSR_RECON_PARAMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/grid.h"
#include "geometry/point.h"
#include "iblt/iblt.h"
#include "iblt/strata.h"

namespace rsr {
namespace recon {

/// Tunables of the quadtree protocols (defaults follow DESIGN.md §3).
struct QuadtreeParams {
  size_t k = 16;          ///< Outlier budget the tables are sized for.
  int q = 4;              ///< IBLT hash functions.
  double headroom = 1.35; ///< IBLT sizing multiplier over the threshold.
  /// Maximum differing (cell, count) pairs accepted at the chosen level;
  /// 0 derives the default 4k + 8 (2 pairs per differing cell, with slack).
  size_t decode_budget = 0;
  int checksum_bits = 32;
  int count_bits = 16;
  /// Restricts the level range (defaults: all levels 0..L).
  int min_level = 0;
  int max_level = -1;  ///< -1 = grid.max_level().
  /// Ship only every stride-th level (the coarsest level is always
  /// included). Stride s cuts the one-shot communication by ~s at the cost
  /// of a worst-case 2^(s-1) factor on the repair cell diameter.
  int level_stride = 1;

  /// Effective decode budget.
  size_t DecodeBudget() const {
    return decode_budget > 0 ? decode_budget : 4 * k + 8;
  }
};

/// Bits used for the point-count field inside histogram values; n is the
/// (public) set size.
int HistogramCountBits(size_t n);

/// Width in bits of the value payload of a level-`level` histogram entry:
/// the packed cell id plus the count field.
int HistogramValueBits(const ShiftedGrid& grid, int level, size_t n);

/// IBLT configuration for the level-`level` histogram table.
IbltConfig LevelIbltConfig(const ShiftedGrid& grid, int level, size_t n,
                           const QuadtreeParams& params, uint64_t seed);

/// The level ladder a protocol instance uses: min_level, min_level+stride,
/// …, always ending at the effective max level.
std::vector<int> ProtocolLevels(const ShiftedGrid& grid,
                                const QuadtreeParams& params);

/// Strata-estimator configuration used by the adaptive variant's level
/// probe (deliberately small; accuracy within ~2x is enough to pick a
/// level).
StrataConfig LevelStrataConfig(uint64_t seed);

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_PARAMS_H_
