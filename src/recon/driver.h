// In-process driver: pumps two PartySessions through a transport::Channel
// until Bob's endpoint finishes.
//
// This is what the legacy `Reconciler::Run` is implemented with. It
// preserves the seed's exact bit accounting: messages are sent in the same
// order the interleaved implementation produced them, so ChannelStats
// (bits, message_count, rounds) are unchanged for every protocol.

#ifndef RSR_RECON_DRIVER_H_
#define RSR_RECON_DRIVER_H_

#include "recon/session.h"
#include "transport/channel.h"

namespace rsr {
namespace recon {

/// Pumps `alice` and `bob` through `channel`: Start() both endpoints, then
/// repeatedly deliver pending messages (Bob first, matching the seed's
/// send order) until Bob finishes. Returns Bob's result.
///
/// If neither endpoint can make progress while Bob is unfinished (a
/// half-open failure — e.g. Alice exhausted her retries and stopped
/// silently), the returned result carries SessionError::kStalled unless the
/// stalled endpoint already recorded a more specific error.
///
/// `max_deliveries` bounds the total number of OnMessage calls as a
/// runaway-protocol safeguard.
ReconResult DrivePair(PartySession* alice, PartySession* bob,
                      transport::Channel* channel,
                      size_t max_deliveries = 1 << 16);

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_DRIVER_H_
