#include "recon/params.h"

#include "hash/mix.h"
#include "iblt/sizing.h"
#include "util/check.h"

namespace rsr {
namespace recon {

int HistogramCountBits(size_t n) {
  // Counts range over [1, n]; reserve one extra value so n itself fits.
  const int bits = BitWidthForUniverse(static_cast<uint64_t>(n) + 1);
  return bits < 1 ? 1 : bits;
}

int HistogramValueBits(const ShiftedGrid& grid, int level, size_t n) {
  return grid.CellBits(level) + HistogramCountBits(n);
}

IbltConfig LevelIbltConfig(const ShiftedGrid& grid, int level, size_t n,
                           const QuadtreeParams& params, uint64_t seed) {
  RSR_CHECK(level >= 0 && level <= grid.max_level());
  IbltConfig config;
  config.cells = RecommendedCells(params.DecodeBudget(), params.q,
                                  params.headroom);
  config.q = params.q;
  config.value_bits = HistogramValueBits(grid, level, n);
  config.checksum_bits = params.checksum_bits;
  config.count_bits = params.count_bits;
  config.seed = Hash64(static_cast<uint64_t>(level),
                       seed ^ 0x6c65766c696274ULL);  // "levlibt" tag
  return config;
}

std::vector<int> ProtocolLevels(const ShiftedGrid& grid,
                                const QuadtreeParams& params) {
  const int hi = params.max_level < 0 ? grid.max_level() : params.max_level;
  RSR_CHECK(params.min_level >= 0 && params.min_level <= hi &&
            hi <= grid.max_level());
  const int stride = params.level_stride < 1 ? 1 : params.level_stride;
  std::vector<int> levels;
  for (int level = params.min_level; level <= hi; level += stride) {
    levels.push_back(level);
  }
  if (levels.back() != hi) levels.push_back(hi);
  return levels;
}

StrataConfig LevelStrataConfig(uint64_t seed) {
  // Deliberately tiny: a probe is sent for every level, so its size is
  // multiplied by log Δ. Factor-2..3 estimation error is fine — the level
  // choice only needs "fits in the budget or not", and the attempt loop
  // recovers from underestimates by doubling.
  StrataConfig config;
  config.num_strata = 10;
  config.cells_per_stratum = 16;
  config.q = 3;
  config.checksum_bits = 24;
  config.count_bits = 6;
  config.seed = seed ^ 0x6c65767374ULL;  // "levst" tag
  return config;
}

}  // namespace recon
}  // namespace rsr
