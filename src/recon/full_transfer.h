// Baseline: whole-set transfer. Alice ships every point at full precision;
// Bob adopts her set verbatim. Communication is exactly n · d · ⌈log2 Δ⌉
// bits — the yardstick every sub-linear protocol is compared against.

#ifndef RSR_RECON_FULL_TRANSFER_H_
#define RSR_RECON_FULL_TRANSFER_H_

#include "recon/protocol.h"

namespace rsr {
namespace recon {

class FullTransferReconciler : public Reconciler {
 public:
  explicit FullTransferReconciler(const ProtocolContext& context)
      : context_(context) {}

  std::string Name() const override { return "full-transfer"; }
  ReconResult Run(const PointSet& alice, const PointSet& bob,
                  transport::Channel* channel) const override;

 private:
  ProtocolContext context_;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_FULL_TRANSFER_H_
