// Baseline: whole-set transfer. Alice ships every point at full precision;
// Bob adopts her set verbatim. Communication is exactly n · d · ⌈log2 Δ⌉
// bits — the yardstick every sub-linear protocol is compared against.
//
// Sessions (1 message, 1 round):
//   Alice:  Start -> send "full-transfer" (varint n, then n packed points),
//           done.
//   Bob:    await "full-transfer" -> adopt the decoded set, done.

#ifndef RSR_RECON_FULL_TRANSFER_H_
#define RSR_RECON_FULL_TRANSFER_H_

#include "recon/protocol.h"

namespace rsr {
namespace recon {

class FullTransferReconciler : public Reconciler {
 public:
  explicit FullTransferReconciler(const ProtocolContext& context)
      : context_(context) {}

  std::string Name() const override { return "full-transfer"; }
  std::unique_ptr<PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<PartySession> MakeBobSession(
      const PointSet& points) const override;

 private:
  ProtocolContext context_;
};

}  // namespace recon
}  // namespace rsr

#endif  // RSR_RECON_FULL_TRANSFER_H_
