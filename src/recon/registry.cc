#include "recon/registry.h"

#include <utility>

#include "recon/full_transfer.h"
#include "recon/quadtree_recon.h"
#include "recon/single_grid.h"

namespace rsr {
namespace recon {

ProtocolParams ProtocolParams::Resolved() const {
  ProtocolParams resolved = *this;
  if (k > 0) {
    resolved.quadtree.k = k;
    resolved.mlsh.k = k;
    resolved.riblt.k = k;
  }
  return resolved;
}

bool ProtocolRegistry::Register(const std::string& name,
                                const std::string& description,
                                Factory factory) {
  // Dedupe: emplace leaves an existing entry untouched, so a late plugin
  // cannot silently shadow a built-in protocol.
  return entries_
      .emplace(name, Entry{description, std::move(factory)})
      .second;
}

bool ProtocolRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

std::unique_ptr<Reconciler> ProtocolRegistry::Create(
    const std::string& name, const ProtocolContext& context,
    const ProtocolParams& params) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return it->second.factory(context, params.Resolved());
}

std::vector<std::string> ProtocolRegistry::ListProtocols() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);  // std::map iterates in sorted order
  }
  return names;
}

std::string ProtocolRegistry::Describe(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? "" : it->second.description;
}

namespace {

void RegisterBuiltins(ProtocolRegistry* registry) {
  registry->Register(
      "full-transfer", "whole-set transfer baseline",
      [](const ProtocolContext& ctx, const ProtocolParams&) {
        return std::make_unique<FullTransferReconciler>(ctx);
      });
  registry->Register(
      "exact-iblt", "strata + IBLT exact reconciliation baseline",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<ExactReconciler>(ctx, p.exact);
      });
  registry->Register(
      "quadtree", "one-shot robust quadtree reconciliation (SIGMOD'14)",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<QuadtreeReconciler>(ctx, p.quadtree);
      });
  registry->Register(
      "quadtree-adaptive",
      "3-message strata-probe quadtree with doubling retries",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<AdaptiveQuadtreeReconciler>(ctx, p.quadtree);
      });
  registry->Register(
      "single-grid", "one forced quadtree level (ablation)",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<SingleGridReconciler>(ctx, p.quadtree,
                                                     p.single_grid_level);
      });
  registry->Register(
      "mlsh-riblt", "multi-level LSH + Robust IBLT extension",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<lshrecon::MlshReconciler>(ctx, p.mlsh);
      });
  registry->Register(
      "riblt-oneshot", "exact-key one-shot Robust IBLT baseline",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<RibltReconciler>(ctx, p.riblt);
      });
  registry->Register(
      "gap-lattice", "gap-guarantee lattice reconciliation",
      [](const ProtocolContext& ctx, const ProtocolParams& p) {
        return std::make_unique<gaprecon::GapReconciler>(ctx, p.gap);
      });
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::Global() {
  static ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

std::unique_ptr<Reconciler> MakeReconciler(const std::string& name,
                                           const ProtocolContext& context,
                                           const ProtocolParams& params) {
  return ProtocolRegistry::Global().Create(name, context, params);
}

}  // namespace recon
}  // namespace rsr
