#include "geometry/emd.h"

#include <algorithm>
#include <cstdint>

#include "geometry/hungarian.h"
#include "util/check.h"

namespace rsr {

double ExactEmd(const PointSet& x, const PointSet& y, Metric metric) {
  RSR_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n == 0) return 0.0;
  std::vector<double> cost(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cost[i * n + j] = Distance(x[i], y[j], metric);
    }
  }
  return SolveAssignment(cost, n).cost;
}

double ExactEmdK(const PointSet& x, const PointSet& y, size_t k,
                 Metric metric) {
  RSR_CHECK(x.size() == y.size());
  const size_t n = x.size();
  RSR_CHECK(k <= n);
  if (n == 0) return 0.0;
  if (k == 0) return ExactEmd(x, y, metric);
  if (k >= n) return 0.0;

  // Pad to (n+k) x (n+k): k dummy rows and k dummy columns with zero cost
  // against everything. An optimal perfect matching then pairs exactly k
  // real rows with dummy columns (deleting them from x), k real columns
  // with dummy rows (deleting them from y), and the k x k dummy corner
  // absorbs the remainder at zero cost. The real-real pairs realise the
  // optimal trimmed matching.
  const size_t m = n + k;
  std::vector<double> cost(m * m, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      cost[i * m + j] = Distance(x[i], y[j], metric);
    }
  }
  return SolveAssignment(cost, m).cost;
}

double GreedyEmdUpperBound(const PointSet& x, const PointSet& y,
                           Metric metric) {
  RSR_CHECK(x.size() == y.size());
  const size_t n = x.size();
  if (n == 0) return 0.0;

  struct Pair {
    double dist;
    uint32_t i;
    uint32_t j;
  };
  std::vector<Pair> pairs;
  pairs.reserve(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      pairs.push_back({Distance(x[i], y[j], metric),
                       static_cast<uint32_t>(i), static_cast<uint32_t>(j)});
    }
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.dist < b.dist; });

  std::vector<char> used_x(n, 0), used_y(n, 0);
  size_t matched = 0;
  double total = 0.0;
  for (const Pair& p : pairs) {
    if (used_x[p.i] || used_y[p.j]) continue;
    used_x[p.i] = used_y[p.j] = 1;
    total += p.dist;
    if (++matched == n) break;
  }
  RSR_CHECK(matched == n);
  return total;
}

double EmdAuto(const PointSet& x, const PointSet& y, Metric metric,
               size_t exact_limit) {
  if (x.size() <= exact_limit) return ExactEmd(x, y, metric);
  return GreedyEmdUpperBound(x, y, metric);
}

}  // namespace rsr
