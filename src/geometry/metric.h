// Metrics over [Δ]^d.
//
// The robust-reconciliation objective (earth mover's distance) is
// parameterised by a ground metric. The library supports ℓ1, ℓ2, ℓ∞ and
// Hamming; every distance function is exact on integer inputs (ℓ2 returns
// the true Euclidean distance as a double).

#ifndef RSR_GEOMETRY_METRIC_H_
#define RSR_GEOMETRY_METRIC_H_

#include <string>

#include "geometry/point.h"

namespace rsr {

/// Ground metrics supported throughout the library.
enum class Metric {
  kL1,
  kL2,
  kLinf,
  kHamming,
};

/// Distance between two points of equal dimension.
double Distance(const Point& a, const Point& b, Metric metric);

/// Exact integer ℓ1 distance (avoids floating point when the caller knows
/// the metric is ℓ1).
int64_t DistanceL1(const Point& a, const Point& b);

/// Squared ℓ2 distance as an exact integer.
int64_t DistanceL2Squared(const Point& a, const Point& b);

/// Maximum possible distance between two points of the universe.
double UniverseDiameter(const Universe& universe, Metric metric);

/// Diameter of an axis-aligned cube with side length `side` (the worst-case
/// error introduced by snapping a point to a cell representative).
double CellDiameter(int d, double side, Metric metric);

/// "l1" / "l2" / "linf" / "hamming".
std::string MetricName(Metric metric);

}  // namespace rsr

#endif  // RSR_GEOMETRY_METRIC_H_
