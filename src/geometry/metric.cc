#include "geometry/metric.h"

#include <cmath>
#include <cstdlib>

#include "util/check.h"

namespace rsr {

double Distance(const Point& a, const Point& b, Metric metric) {
  RSR_DCHECK(a.size() == b.size());
  switch (metric) {
    case Metric::kL1:
      return static_cast<double>(DistanceL1(a, b));
    case Metric::kL2:
      return std::sqrt(static_cast<double>(DistanceL2Squared(a, b)));
    case Metric::kLinf: {
      int64_t best = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        const int64_t diff = std::llabs(a[i] - b[i]);
        if (diff > best) best = diff;
      }
      return static_cast<double>(best);
    }
    case Metric::kHamming: {
      int64_t count = 0;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) ++count;
      }
      return static_cast<double>(count);
    }
  }
  RSR_CHECK_MSG(false, "unknown metric");
  return 0.0;
}

int64_t DistanceL1(const Point& a, const Point& b) {
  RSR_DCHECK(a.size() == b.size());
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) total += std::llabs(a[i] - b[i]);
  return total;
}

int64_t DistanceL2Squared(const Point& a, const Point& b) {
  RSR_DCHECK(a.size() == b.size());
  int64_t total = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const int64_t diff = a[i] - b[i];
    total += diff * diff;
  }
  return total;
}

double UniverseDiameter(const Universe& universe, Metric metric) {
  return CellDiameter(universe.d, static_cast<double>(universe.delta - 1),
                      metric);
}

double CellDiameter(int d, double side, Metric metric) {
  switch (metric) {
    case Metric::kL1:
      return side * d;
    case Metric::kL2:
      return side * std::sqrt(static_cast<double>(d));
    case Metric::kLinf:
      return side;
    case Metric::kHamming:
      return side > 0 ? static_cast<double>(d) : 0.0;
  }
  RSR_CHECK_MSG(false, "unknown metric");
  return 0.0;
}

std::string MetricName(Metric metric) {
  switch (metric) {
    case Metric::kL1:
      return "l1";
    case Metric::kL2:
      return "l2";
    case Metric::kLinf:
      return "linf";
    case Metric::kHamming:
      return "hamming";
  }
  return "unknown";
}

}  // namespace rsr
