// Earth mover's distance (minimum-cost perfect matching) and its outlier-
// trimmed variant EMD_k — the quality measures of robust set reconciliation.
//
// Exact computation runs the Hungarian algorithm and is O(n^3); it is used
// in tests and for the quality numbers on bench-scale instances. The greedy
// estimator gives an upper bound in O(n^2 log n) for sanity checks on larger
// sets.

#ifndef RSR_GEOMETRY_EMD_H_
#define RSR_GEOMETRY_EMD_H_

#include <cstddef>

#include "geometry/metric.h"
#include "geometry/point.h"

namespace rsr {

/// Exact EMD between equal-size point sets: the minimum over bijections π
/// of Σ dist(x_i, y_π(i)). O(n^3). Requires |x| == |y|.
double ExactEmd(const PointSet& x, const PointSet& y, Metric metric);

/// Exact EMD_k: minimum EMD achievable after deleting the k points from each
/// side that help most, i.e. min over (n-k)-subsets X'⊆x, Y'⊆y of
/// EMD(X', Y'). Computed exactly by padding the assignment problem with k
/// zero-cost dummy rows and columns. Requires |x| == |y| and 0 <= k <= n.
double ExactEmdK(const PointSet& x, const PointSet& y, size_t k,
                 Metric metric);

/// Greedy upper bound on EMD: repeatedly matches the globally closest
/// unmatched pair. O(n^2 log n) time, O(n^2) memory. Requires |x| == |y|.
double GreedyEmdUpperBound(const PointSet& x, const PointSet& y,
                           Metric metric);

/// Automatically chooses exact EMD for n <= exact_limit, greedy otherwise.
double EmdAuto(const PointSet& x, const PointSet& y, Metric metric,
               size_t exact_limit = 512);

}  // namespace rsr

#endif  // RSR_GEOMETRY_EMD_H_
