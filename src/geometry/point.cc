#include "geometry/point.h"

#include "hash/mix.h"
#include "util/check.h"

namespace rsr {

bool Universe::Contains(const Point& p) const {
  if (static_cast<int>(p.size()) != d) return false;
  for (int64_t c : p) {
    if (c < 0 || c >= delta) return false;
  }
  return true;
}

Universe MakeUniverse(int64_t delta, int d) {
  RSR_CHECK(delta >= 1);
  RSR_CHECK(d >= 1);
  Universe u;
  u.delta = delta;
  u.d = d;
  return u;
}

void PackPoint(const Universe& universe, const Point& p, BitWriter* out) {
  RSR_DCHECK(universe.Contains(p));
  const int bits = universe.BitsPerCoord();
  for (int64_t c : p) out->WriteBits(static_cast<uint64_t>(c), bits);
}

bool UnpackPoint(const Universe& universe, BitReader* in, Point* out) {
  const int bits = universe.BitsPerCoord();
  out->assign(static_cast<size_t>(universe.d), 0);
  for (int i = 0; i < universe.d; ++i) {
    uint64_t v = 0;
    if (!in->ReadBits(bits, &v)) return false;
    (*out)[static_cast<size_t>(i)] = static_cast<int64_t>(v);
  }
  return true;
}

uint64_t PointKey(const Point& p, uint64_t seed) {
  uint64_t h = Hash64(p.size(), seed);
  for (int64_t c : p) h = HashCombine(h, static_cast<uint64_t>(c));
  return h;
}

bool PointLess(const Point& a, const Point& b) {
  return a < b;  // std::vector lexicographic compare
}

std::string PointToString(const Point& p) {
  std::string s = "(";
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(p[i]);
  }
  s += ")";
  return s;
}

}  // namespace rsr
