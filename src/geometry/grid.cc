#include "geometry/grid.h"

#include "hash/mix.h"
#include "util/check.h"
#include "util/random.h"

namespace rsr {

ShiftedGrid::ShiftedGrid(const Universe& universe, uint64_t seed)
    : universe_(universe), levels_(universe.BitsPerCoord()) {
  // delta == 1 gives a degenerate 0-level grid; still usable (single cell).
  Rng rng(seed ^ 0x67726964ULL);  // "grid" tag
  const uint64_t span = uint64_t{1} << levels_;
  shift_.resize(static_cast<size_t>(universe_.d));
  for (auto& s : shift_) {
    s = static_cast<int64_t>(levels_ == 0 ? 0 : rng.Below(span));
  }
  key_seed_ = Hash64(seed, 0x63656c6cULL);  // "cell" tag
}

int64_t ShiftedGrid::CellSide(int level) const {
  RSR_DCHECK(level >= 0 && level <= levels_);
  return int64_t{1} << level;
}

Cell ShiftedGrid::CellOf(const Point& p, int level) const {
  RSR_DCHECK(universe_.Contains(p));
  RSR_DCHECK(level >= 0 && level <= levels_);
  Cell cell(p.size());
  for (size_t i = 0; i < p.size(); ++i) {
    cell[i] = (p[i] + shift_[i]) >> level;
  }
  return cell;
}

Cell ShiftedGrid::ParentCell(const Cell& cell) const {
  Cell parent(cell.size());
  for (size_t i = 0; i < cell.size(); ++i) parent[i] = cell[i] >> 1;
  return parent;
}

uint64_t ShiftedGrid::CellKey(const Cell& cell, int level) const {
  uint64_t h = Hash64(static_cast<uint64_t>(level), key_seed_);
  for (int64_t c : cell) h = HashCombine(h, static_cast<uint64_t>(c));
  return h;
}

uint64_t ShiftedGrid::CellKeyOf(const Point& p, int level) const {
  return CellKey(CellOf(p, level), level);
}

Point ShiftedGrid::CellRepresentative(const Cell& cell, int level) const {
  RSR_DCHECK(static_cast<int>(cell.size()) == universe_.d);
  const int64_t side = CellSide(level);
  Point rep(cell.size());
  for (size_t i = 0; i < cell.size(); ++i) {
    // Centre of the cell in shifted space, mapped back and clamped.
    int64_t v = cell[i] * side + side / 2 - shift_[i];
    if (v < 0) v = 0;
    if (v >= universe_.delta) v = universe_.delta - 1;
    rep[i] = v;
  }
  return rep;
}

int ShiftedGrid::CellCoordBits(int level) const {
  RSR_DCHECK(level >= 0 && level <= levels_);
  // Shifted coordinates range over [0, 2^L + 2^L - 2]; after >> level the
  // maximum id is < 2^(L - level + 1), so L - level + 1 bits always suffice.
  return levels_ - level + 1;
}

void ShiftedGrid::PackCell(const Cell& cell, int level, BitWriter* out) const {
  const int bits = CellCoordBits(level);
  for (int64_t c : cell) {
    RSR_DCHECK(c >= 0);
    out->WriteBits(static_cast<uint64_t>(c), bits);
  }
}

bool ShiftedGrid::UnpackCell(int level, BitReader* in, Cell* out) const {
  const int bits = CellCoordBits(level);
  out->assign(static_cast<size_t>(universe_.d), 0);
  for (int i = 0; i < universe_.d; ++i) {
    uint64_t v = 0;
    if (!in->ReadBits(bits, &v)) return false;
    (*out)[static_cast<size_t>(i)] = static_cast<int64_t>(v);
  }
  return true;
}

std::unordered_map<uint64_t, CellCount> BuildCellHistogram(
    const ShiftedGrid& grid, const PointSet& points, int level) {
  std::unordered_map<uint64_t, CellCount> histogram;
  histogram.reserve(points.size() * 2);
  for (const Point& p : points) {
    Cell cell = grid.CellOf(p, level);
    const uint64_t key = grid.CellKey(cell, level);
    auto [it, inserted] = histogram.try_emplace(key);
    if (inserted) it->second.cell = std::move(cell);
    ++it->second.count;
  }
  return histogram;
}

}  // namespace rsr
