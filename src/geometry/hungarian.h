// Exact minimum-cost assignment (Hungarian algorithm, O(n^3)).
//
// This is the engine behind exact EMD and EMD_k. The implementation is the
// potentials-based Jonker–Volgenant-style shortest augmenting path variant,
// numerically robust for non-negative double costs.

#ifndef RSR_GEOMETRY_HUNGARIAN_H_
#define RSR_GEOMETRY_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace rsr {

/// Result of an assignment solve.
struct AssignmentResult {
  /// row_to_col[i] = column matched to row i.
  std::vector<int> row_to_col;
  /// Total cost of the optimal assignment.
  double cost = 0.0;
};

/// Solves the square assignment problem on an n x n cost matrix given in
/// row-major order. Costs must be finite. Returns the optimal matching.
AssignmentResult SolveAssignment(const std::vector<double>& cost, size_t n);

}  // namespace rsr

#endif  // RSR_GEOMETRY_HUNGARIAN_H_
