// Randomly shifted hierarchical grid (the "quadtree" of the protocol).
//
// Both parties derive, from public coins, a shift vector s ∈ [0, 2^L)^d
// where L = ⌈log2 Δ⌉. The level-ℓ cell of a point x is
//   c_ℓ(x) = ⌊(x + s) / 2^ℓ⌋   (per coordinate),
// so cells nest exactly across levels (the level-(ℓ+1) cell id is the
// level-ℓ id shifted right by one). Level 0 separates every distinct point;
// level L+? puts everything into O(1) cells. The random shift is what makes
// the probability that two points at distance r are split by the level-ℓ
// grid proportional to r / 2^ℓ — the property the approximation analysis of
// the robust protocol rests on.

#ifndef RSR_GEOMETRY_GRID_H_
#define RSR_GEOMETRY_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geometry/point.h"
#include "util/bitio.h"

namespace rsr {

/// Cell id: one integer per coordinate (level implied by context).
using Cell = std::vector<int64_t>;

/// The shifted hierarchy of grids over a Universe.
class ShiftedGrid {
 public:
  /// The shift and the cell-key hash seeds are deterministic in `seed`.
  ShiftedGrid(const Universe& universe, uint64_t seed);

  const Universe& universe() const { return universe_; }

  /// Number of usable levels: cells exist for level ∈ [0, max_level()].
  /// At max_level() the whole universe occupies at most 2^d cells.
  int max_level() const { return levels_; }

  /// The random shift vector (each coordinate in [0, 2^L)).
  const Point& shift() const { return shift_; }

  /// Side length of a level-ℓ cell (2^ℓ).
  int64_t CellSide(int level) const;

  /// Cell containing point `p` at `level`.
  Cell CellOf(const Point& p, int level) const;

  /// Parent cell at level+1 of a level-ℓ cell.
  Cell ParentCell(const Cell& cell) const;

  /// 64-bit key identifying (level, cell) — used as IBLT key.
  uint64_t CellKey(const Cell& cell, int level) const;

  /// Convenience: CellKey(CellOf(p, level), level).
  uint64_t CellKeyOf(const Point& p, int level) const;

  /// A representative point of the cell: its centre mapped back to the
  /// unshifted space and clamped into [0, Δ)^d. Every point of the cell is
  /// within one cell diameter of the representative.
  Point CellRepresentative(const Cell& cell, int level) const;

  /// Exact bit width of one cell coordinate at `level`.
  int CellCoordBits(int level) const;

  /// Exact bit width of a whole packed cell at `level`.
  int CellBits(int level) const { return CellCoordBits(level) * universe_.d; }

  /// Packs a cell's coordinates at fixed width CellCoordBits(level).
  void PackCell(const Cell& cell, int level, BitWriter* out) const;

  /// Reads a cell packed by PackCell. Returns false on underrun.
  bool UnpackCell(int level, BitReader* in, Cell* out) const;

 private:
  Universe universe_;
  int levels_;       // L = bits per coordinate
  Point shift_;      // d entries in [0, 2^L)
  uint64_t key_seed_;
};

/// One cell of a histogram: the cell id and how many of the party's points
/// fall in it.
struct CellCount {
  Cell cell;
  int64_t count = 0;
};

/// Aggregates `points` into level-`level` cells. The map is keyed by the
/// grid's 64-bit cell key (collisions are negligible at 64 bits and are
/// additionally guarded by IBLT checksums downstream).
std::unordered_map<uint64_t, CellCount> BuildCellHistogram(
    const ShiftedGrid& grid, const PointSet& points, int level);

}  // namespace rsr

#endif  // RSR_GEOMETRY_GRID_H_
