#include "geometry/hungarian.h"

#include <limits>

#include "util/check.h"

namespace rsr {

AssignmentResult SolveAssignment(const std::vector<double>& cost, size_t n) {
  RSR_CHECK(cost.size() == n * n);
  AssignmentResult result;
  if (n == 0) return result;

  // Classic O(n^3) Hungarian with row/column potentials. Internally uses
  // 1-based arrays where index 0 is a virtual unmatched slot.
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0);   // row potentials
  std::vector<double> v(n + 1, 0.0);   // column potentials
  std::vector<int> match(n + 1, 0);    // match[col] = row matched to col
  std::vector<int> way(n + 1, 0);      // back-pointers along alternating path

  for (size_t i = 1; i <= n; ++i) {
    match[0] = static_cast<int>(i);
    size_t j0 = 0;  // current column (0 = virtual)
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const size_t i0 = static_cast<size_t>(match[j0]);
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur =
            cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = static_cast<int>(j0);
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[static_cast<size_t>(match[j])] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    // Augment along the alternating path.
    do {
      const size_t j1 = static_cast<size_t>(way[j0]);
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.row_to_col.assign(n, -1);
  for (size_t j = 1; j <= n; ++j) {
    if (match[j] != 0) {
      result.row_to_col[static_cast<size_t>(match[j] - 1)] =
          static_cast<int>(j - 1);
    }
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    RSR_CHECK(result.row_to_col[i] >= 0);
    total += cost[i * n + static_cast<size_t>(result.row_to_col[i])];
  }
  result.cost = total;
  return result;
}

}  // namespace rsr
