// Points in the discretised universe [Δ]^d.
//
// A point is a d-vector of integer coordinates in [0, Δ). The Universe
// struct carries (Δ, d) plus the per-coordinate bit width, which determines
// the exact wire size of a packed point — the unit in which all
// communication results are reported.

#ifndef RSR_GEOMETRY_POINT_H_
#define RSR_GEOMETRY_POINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitio.h"

namespace rsr {

/// A point: d integer coordinates, each in [0, Δ).
using Point = std::vector<int64_t>;

/// A set (or multiset) of points.
using PointSet = std::vector<Point>;

/// The discretised metric-space domain [Δ]^d.
struct Universe {
  int64_t delta = 0;  ///< Coordinates range over [0, delta).
  int d = 0;          ///< Dimension.

  /// Bits needed to encode one coordinate exactly.
  int BitsPerCoord() const { return BitWidthForUniverse(static_cast<uint64_t>(delta)); }

  /// Bits needed to encode one full point.
  int BitsPerPoint() const { return BitsPerCoord() * d; }

  /// Smallest L with 2^L >= delta (the number of quadtree levels is L+1).
  int Levels() const { return BitsPerCoord(); }

  /// True if every coordinate of `p` lies in [0, delta) and p has arity d.
  bool Contains(const Point& p) const;
};

/// Makes a Universe, checking delta >= 1 and d >= 1.
Universe MakeUniverse(int64_t delta, int d);

/// Writes `p`'s coordinates, each in exactly universe.BitsPerCoord() bits.
void PackPoint(const Universe& universe, const Point& p, BitWriter* out);

/// Reads a point packed by PackPoint. Returns false on underrun.
bool UnpackPoint(const Universe& universe, BitReader* in, Point* out);

/// Seeded 64-bit hash of a point's exact coordinates.
uint64_t PointKey(const Point& p, uint64_t seed);

/// Lexicographic ordering (for canonical multiset representations in tests).
bool PointLess(const Point& a, const Point& b);

/// Human-readable "(x, y, …)" rendering for logs and examples.
std::string PointToString(const Point& p);

}  // namespace rsr

#endif  // RSR_GEOMETRY_POINT_H_
