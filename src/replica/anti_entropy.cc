#include "replica/anti_entropy.h"

#include <utility>

namespace rsr {
namespace replica {

AntiEntropyScheduler::AntiEntropyScheduler(ReplicaNode* node,
                                           std::vector<StreamFactory> peers,
                                           AntiEntropyOptions options,
                                           std::vector<std::string> peer_names)
    : node_(node),
      peers_(std::move(peers)),
      peer_names_(std::move(peer_names)),
      options_(options),
      rng_(options_.seed) {}

AntiEntropyScheduler::~AntiEntropyScheduler() { Stop(); }

bool AntiEntropyScheduler::Start() {
  if (thread_.joinable() || peers_.empty()) return false;
  {
    MutexLock lock(mu_);
    stopping_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void AntiEntropyScheduler::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
}

RoundRecord AntiEntropyScheduler::RunOnce() {
  MutexLock round_lock(round_mu_);
  size_t peer_index = 0;
  {
    MutexLock lock(mu_);
    peer_index = static_cast<size_t>(rng_.Below(peers_.size()));
  }
  RoundRecord record = node_->SyncWithPeer(
      peers_[peer_index], peer_index < peer_names_.size()
                              ? peer_names_[peer_index]
                              : std::string("peer"));
  {
    MutexLock lock(mu_);
    rounds_.push_back(record);
  }
  return record;
}

std::vector<RoundRecord> AntiEntropyScheduler::rounds() const {
  MutexLock lock(mu_);
  return rounds_;
}

size_t AntiEntropyScheduler::rounds_run() const {
  MutexLock lock(mu_);
  return rounds_.size();
}

void AntiEntropyScheduler::Loop() {
  mu_.Lock();
  for (;;) {
    if (!stopping_) cv_.WaitFor(mu_, options_.period);
    if (stopping_) break;
    mu_.Unlock();
    RunOnce();
    mu_.Lock();
  }
  mu_.Unlock();
}

}  // namespace replica
}  // namespace rsr
