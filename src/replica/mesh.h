// ReplicaMesh: N replicas of one canonical set wired into a full mesh.
//
// A test/bench harness: it constructs N ReplicaNodes from the same seed
// set, gives every node a dialer to every other node, and (optionally) an
// AntiEntropyScheduler per node. Two transports:
//
//   - pipe (default): each dial is an in-process net::PipeStream pair,
//     with a short-lived thread running the peer host's ServeConnection on
//     the far end — the same serving code path TCP exercises, with no
//     sockets, so unit tests stay hermetic and fast.
//   - TCP: every node's SyncServer is Start()ed on a loopback listener and
//     dials go through real connects (bench_e19_replication --transport=tcp).
//
// Convergence measure: Divergence(i, j) is the multiset symmetric
// difference |S_i Δ S_j| — exactly 0 iff the two replicas hold identical
// sets, which is the quiescence criterion the CI asserts on BENCH_E19.

#ifndef RSR_REPLICA_MESH_H_
#define RSR_REPLICA_MESH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "replica/anti_entropy.h"
#include "replica/replica_node.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace replica {

struct ReplicaMeshOptions {
  size_t nodes = 3;
  /// Per-node template. Segment paths are NOT set per node; give each node
  /// its own options via the ctor overload if segments are wanted.
  ReplicaNodeOptions node;
  AntiEntropyOptions anti_entropy;
  bool use_tcp = false;
};

class ReplicaMesh {
 public:
  ReplicaMesh(PointSet initial, ReplicaMeshOptions options);
  ~ReplicaMesh();

  ReplicaMesh(const ReplicaMesh&) = delete;
  ReplicaMesh& operator=(const ReplicaMesh&) = delete;

  size_t size() const { return nodes_.size(); }
  ReplicaNode& node(size_t i) { return *nodes_[i]; }
  const ReplicaNode& node(size_t i) const { return *nodes_[i]; }
  AntiEntropyScheduler& scheduler(size_t i) { return *schedulers_[i]; }

  /// A dialer for node `i` (usable from any thread; each call opens one
  /// fresh connection served by node i's host).
  StreamFactory PeerFactory(size_t i);

  /// One deterministic anti-entropy round: node `i` pulls from node `peer`.
  RoundRecord RunRound(size_t i, size_t peer);

  /// Starts node i's scheduler (periodic randomized rounds).
  bool StartScheduler(size_t i) { return schedulers_[i]->Start(); }
  /// Stops every scheduler and joins all pipe serving threads.
  void StopSchedulers();

  /// Multiset symmetric difference |S_i Δ S_j|.
  size_t Divergence(size_t i, size_t j) const;
  /// Max over all pairs — 0 iff the whole mesh is converged.
  size_t MaxDivergence() const;

 private:
  std::unique_ptr<net::ByteStream> Dial(size_t peer);
  void JoinServeThreads();

  const ReplicaMeshOptions options_;
  std::vector<std::unique_ptr<ReplicaNode>> nodes_;
  std::vector<std::unique_ptr<AntiEntropyScheduler>> schedulers_;

  /// Pipe mode: one short-lived thread per dialed connection, running the
  /// peer host's ServeConnection; joined at StopSchedulers/destruction.
  /// Leaf lock: held only to push/swap the thread vector, never while
  /// joining or dialing.
  Mutex serve_mu_;
  std::vector<std::thread> serve_threads_ RSR_GUARDED_BY(serve_mu_);
};

}  // namespace replica
}  // namespace rsr

#endif  // RSR_REPLICA_MESH_H_
