// Replication changelog: an append-only, sequence-numbered journal of
// point mutations.
//
// Every mutation of a replicated canonical set is recorded as one
// ChangeEntry — the (inserts, erases) batch handed to
// SketchStore::ApplyUpdate, stamped with a replication sequence number.
// Replaying entries (seq, seq+1, ...] through ApplyUpdate on any replica
// that holds the set-at-seq reproduces the writer's point sequence exactly
// — same multiset, same order, and therefore (by the sketches' linearity)
// bit-identical serving sketches. That determinism is what makes the log
// the cheap catch-up path of the anti-entropy mesh (replica/replica_node.h):
// a follower that is `d` entries behind fetches `d` small batches instead
// of reconciling whole sets.
//
// The log is a bounded in-memory ring: the newest `capacity` entries are
// retained and older ones fall off the front. A fetch from a position that
// has fallen off reports `ok = false` — the caller has lost log coverage
// and must repair via full pairwise reconciliation instead (the protocols
// this repo reproduces, self-hosted as the mesh's repair path).
// MarkSnapshot(seq) records exactly that outcome on the receiving side:
// "everything up to seq is folded into the set I just installed", clearing
// the ring and restarting coverage at seq.
//
// Optionally every appended entry is also written through to a
// file-backed segment (length-prefixed binary records; ReplaySegment reads
// them back), so a restarted process can rebuild its set from the seed set
// plus the segment. The segment is write-through only — the in-memory ring
// stays the serving path.
//
// Thread safety: all methods are safe to call concurrently (one mutex);
// Append publishes entries atomically with respect to Fetch, which is what
// the append-while-tail test pins down under TSan.

#ifndef RSR_REPLICA_CHANGELOG_H_
#define RSR_REPLICA_CHANGELOG_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace replica {

/// One journaled mutation batch. Applying it means exactly what
/// SketchStore::ApplyUpdate does: erases first (first-equal match, absent
/// values skipped), then inserts appended — so a replayed entry is
/// deterministic given the pre-state multiset.
struct ChangeEntry {
  uint64_t seq = 0;  ///< 1-based; the entry produces the set-at-seq.
  PointSet inserts;
  PointSet erases;

  // Observability metadata (DESIGN.md §12), stamped by the writer at
  // append time and carried through "@log-batch" so followers can
  // measure append→apply propagation delay and link replication rounds
  // to the client trace that caused the mutation. Deliberately NOT part
  // of equality: two logs holding the same mutations are the same log
  // even when stamped by different clocks.
  uint64_t append_micros = 0;  ///< obs::Clock reading at Append.
  uint64_t trace_hi = 0;       ///< Originating trace id (0 = untraced).
  uint64_t trace_lo = 0;

  bool operator==(const ChangeEntry& other) const {
    return seq == other.seq && inserts == other.inserts &&
           erases == other.erases;
  }
};

struct ChangelogOptions {
  /// Ring capacity in entries; older entries fall off the front.
  size_t capacity = 1024;
  /// When non-empty, every appended entry is also written through to this
  /// file (appended; created if missing). See ReplaySegment.
  std::string segment_path;
};

/// Result of one Fetch: the entries with seq in (from_seq, last_seq],
/// oldest first, capped at the requested maximum.
struct FetchedEntries {
  /// False when entries directly after `from_seq` have fallen off the
  /// ring: the caller cannot catch up from the log and must reconcile.
  bool ok = false;
  /// True when the returned entries reach last_seq (no cap truncation);
  /// meaningful only when ok.
  bool complete = false;
  uint64_t last_seq = 0;  ///< The log's head position.
  std::vector<ChangeEntry> entries;
};

class Changelog {
 public:
  explicit Changelog(ChangelogOptions options = {});
  ~Changelog();

  Changelog(const Changelog&) = delete;
  Changelog& operator=(const Changelog&) = delete;

  /// Appends one entry. `entry.seq` must be exactly last_seq() + 1 — the
  /// journal is gapless by construction (a gap would silently corrupt
  /// every replayer). Checked fatally.
  void Append(ChangeEntry entry);

  /// Declares that the set-at-`seq` was installed wholesale (a protocol
  /// repair, not a replay): clears the ring and restarts coverage at
  /// `seq`, so subsequent fetches from below `seq` report ok = false.
  void MarkSnapshot(uint64_t seq);

  /// Entries with seq in (from_seq, last_seq], at most `max_entries` of
  /// them (0 means no cap).
  FetchedEntries Fetch(uint64_t from_seq, size_t max_entries = 0) const;

  /// The seq every retained entry is above: fetches from below base_seq
  /// fail. Starts at 0 (full coverage from the seed set).
  uint64_t base_seq() const;
  /// Seq of the newest entry (== base_seq when the ring is empty).
  uint64_t last_seq() const;
  size_t size() const;

 private:
  void WriteSegmentLocked(const ChangeEntry& entry) RSR_REQUIRES(mu_);

  const ChangelogOptions options_;
  /// Guards the ring, coverage base, and segment handle as one unit so
  /// Append publishes atomically w.r.t. Fetch. On a replicating host
  /// this mutex nests INSIDE the host's replica_mu_ (DESIGN.md §13).
  mutable Mutex mu_;
  /// Invariant: entries_[i].seq == base_seq_ + i + 1.
  std::deque<ChangeEntry> entries_ RSR_GUARDED_BY(mu_);
  uint64_t base_seq_ RSR_GUARDED_BY(mu_) = 0;
  std::FILE* segment_ RSR_GUARDED_BY(mu_) = nullptr;
};

/// Why a segment replay stopped. The distinction matters operationally:
/// a torn tail is the expected shape of a crash mid-append (recoverable —
/// the intact prefix IS the journal), while a corrupt entry inside an
/// intact length-prefixed record means the file was damaged at rest.
enum class SegmentReplayStatus {
  kOk,          ///< Every record decoded and was delivered.
  kOpenFailed,  ///< The file could not be opened; nothing delivered.
  kTornTail,    ///< Trailing partial record (interrupted append); the
                ///< intact prefix was delivered.
  kCorruptEntry,  ///< A length-intact record failed to decode; entries
                  ///< before it were delivered, nothing at or after it.
};

const char* SegmentReplayStatusName(SegmentReplayStatus status);

/// Reads back a segment file written by a Changelog, invoking `fn` per
/// entry in append order. Entries are delivered one complete record at a
/// time — a partially decoded entry is NEVER delivered (the decoder
/// validates the whole record before `fn` sees it).
SegmentReplayStatus ReplaySegmentDetailed(
    const std::string& path,
    const std::function<void(const ChangeEntry&)>& fn);

/// Back-compat wrapper: true iff ReplaySegmentDetailed returns kOk.
bool ReplaySegment(const std::string& path,
                   const std::function<void(const ChangeEntry&)>& fn);

}  // namespace replica
}  // namespace rsr

#endif  // RSR_REPLICA_CHANGELOG_H_
