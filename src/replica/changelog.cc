#include "replica/changelog.h"

#include <utility>

#include "util/check.h"
#include "util/serial.h"

namespace rsr {
namespace replica {

namespace {

// Segment record layout (one ByteWriter blob per entry, length-prefixed so
// a torn tail write is detectable): seq, dimension, |inserts|, |erases|,
// then each point as `dimension` varint coordinates.
void EncodeSegmentEntry(const ChangeEntry& entry, ByteWriter* out) {
  const size_t d = !entry.inserts.empty()   ? entry.inserts.front().size()
                   : !entry.erases.empty() ? entry.erases.front().size()
                                           : 0;
  out->WriteVarint(entry.seq);
  out->WriteVarint(d);
  out->WriteVarint(entry.inserts.size());
  out->WriteVarint(entry.erases.size());
  for (const PointSet* points : {&entry.inserts, &entry.erases}) {
    for (const Point& p : *points) {
      RSR_CHECK(p.size() == d);
      for (int64_t c : p) out->WriteVarint(static_cast<uint64_t>(c));
    }
  }
  // Trailing observability stamps; records written before this field set
  // existed simply end here (see the AtEnd probe in the decoder).
  out->WriteVarint(entry.append_micros);
  out->WriteVarint(entry.trace_hi);
  out->WriteVarint(entry.trace_lo);
}

bool DecodeSegmentEntry(ByteReader* in, ChangeEntry* out) {
  uint64_t d = 0, inserts = 0, erases = 0;
  if (!in->ReadVarint(&out->seq) || !in->ReadVarint(&d) ||
      !in->ReadVarint(&inserts) || !in->ReadVarint(&erases)) {
    return false;
  }
  // A claimed count that cannot fit in the remaining bytes (>= 1 byte per
  // coordinate) is malformed; check before reserving.
  const uint64_t per_point = d > 0 ? d : 1;
  if ((inserts + erases) > in->remaining() / per_point + 1) return false;
  out->inserts.clear();
  out->erases.clear();
  for (PointSet* points : {&out->inserts, &out->erases}) {
    const uint64_t count = points == &out->inserts ? inserts : erases;
    points->reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Point p(static_cast<size_t>(d));
      for (uint64_t c = 0; c < d; ++c) {
        uint64_t coord = 0;
        if (!in->ReadVarint(&coord)) return false;
        p[static_cast<size_t>(c)] = static_cast<int64_t>(coord);
      }
      points->push_back(std::move(p));
    }
  }
  // Legacy records end at the coordinates; stamped records carry exactly
  // three trailing varints. Anything else is damage.
  out->append_micros = 0;
  out->trace_hi = 0;
  out->trace_lo = 0;
  if (in->AtEnd()) return true;
  return in->ReadVarint(&out->append_micros) &&
         in->ReadVarint(&out->trace_hi) && in->ReadVarint(&out->trace_lo) &&
         in->AtEnd();
}

}  // namespace

Changelog::Changelog(ChangelogOptions options) : options_(std::move(options)) {
  if (!options_.segment_path.empty()) {
    segment_ = std::fopen(options_.segment_path.c_str(), "ab");
    RSR_CHECK(segment_ != nullptr);
  }
}

Changelog::~Changelog() {
  if (segment_ != nullptr) std::fclose(segment_);
}

void Changelog::Append(ChangeEntry entry) {
  MutexLock lock(mu_);
  RSR_CHECK(entry.seq == base_seq_ + entries_.size() + 1);
  WriteSegmentLocked(entry);
  entries_.push_back(std::move(entry));
  while (options_.capacity > 0 && entries_.size() > options_.capacity) {
    entries_.pop_front();
    ++base_seq_;
  }
}

void Changelog::MarkSnapshot(uint64_t seq) {
  MutexLock lock(mu_);
  entries_.clear();
  base_seq_ = seq;
}

FetchedEntries Changelog::Fetch(uint64_t from_seq, size_t max_entries) const {
  MutexLock lock(mu_);
  FetchedEntries out;
  out.last_seq = base_seq_ + entries_.size();
  if (from_seq >= out.last_seq) {
    // At (or somehow beyond) the head: nothing to ship, trivially ok.
    out.ok = from_seq == out.last_seq || from_seq >= base_seq_;
    out.complete = true;
    return out;
  }
  if (from_seq < base_seq_) {
    // The entries directly after from_seq fell off the ring.
    return out;
  }
  const size_t first = static_cast<size_t>(from_seq - base_seq_);
  size_t count = entries_.size() - first;
  if (max_entries > 0 && count > max_entries) count = max_entries;
  out.ok = true;
  out.complete = first + count == entries_.size();
  out.entries.assign(entries_.begin() + static_cast<ptrdiff_t>(first),
                     entries_.begin() + static_cast<ptrdiff_t>(first + count));
  return out;
}

uint64_t Changelog::base_seq() const {
  MutexLock lock(mu_);
  return base_seq_;
}

uint64_t Changelog::last_seq() const {
  MutexLock lock(mu_);
  return base_seq_ + entries_.size();
}

size_t Changelog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void Changelog::WriteSegmentLocked(const ChangeEntry& entry) {
  if (segment_ == nullptr) return;
  ByteWriter record;
  EncodeSegmentEntry(entry, &record);
  ByteWriter framed;
  framed.WriteBlob(record.bytes());
  const std::vector<uint8_t>& bytes = framed.bytes();
  RSR_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), segment_) ==
            bytes.size());
  std::fflush(segment_);
}

const char* SegmentReplayStatusName(SegmentReplayStatus status) {
  switch (status) {
    case SegmentReplayStatus::kOk:
      return "ok";
    case SegmentReplayStatus::kOpenFailed:
      return "open-failed";
    case SegmentReplayStatus::kTornTail:
      return "torn-tail";
    case SegmentReplayStatus::kCorruptEntry:
      return "corrupt-entry";
  }
  return "corrupt-entry";
}

SegmentReplayStatus ReplaySegmentDetailed(
    const std::string& path,
    const std::function<void(const ChangeEntry&)>& fn) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return SegmentReplayStatus::kOpenFailed;
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  std::fclose(file);

  ByteReader reader(bytes);
  while (!reader.AtEnd()) {
    std::vector<uint8_t> record;
    // A blob that cannot be read whole is the torn tail of an interrupted
    // append: the length prefix or the payload ends early.
    if (!reader.ReadBlob(&record)) return SegmentReplayStatus::kTornTail;
    ChangeEntry entry;
    ByteReader record_reader(record);
    // The record is length-intact, so a decode failure means the payload
    // itself is damaged. Decode fully BEFORE delivering: `fn` never sees
    // a partial batch.
    if (!DecodeSegmentEntry(&record_reader, &entry)) {
      return SegmentReplayStatus::kCorruptEntry;
    }
    fn(entry);
  }
  return SegmentReplayStatus::kOk;
}

bool ReplaySegment(const std::string& path,
                   const std::function<void(const ChangeEntry&)>& fn) {
  return ReplaySegmentDetailed(path, fn) == SegmentReplayStatus::kOk;
}

}  // namespace replica
}  // namespace rsr
