// Anti-entropy scheduler: periodic randomized pull rounds for one replica.
//
// The classic anti-entropy loop (Demers et al.'s epidemic repair, the
// shape Dynamo/Cassandra use with Merkle trees): every `period` the node
// picks a uniformly random peer and runs one ReplicaNode::SyncWithPeer
// round against it — changelog tail-replay when it can, sketch-protocol
// repair when it must. Randomized peer choice is what spreads an update
// through an N-node mesh in O(log N) expected rounds without any
// coordination. Every round's RoundRecord is retained for the benches'
// divergence-over-time accounting.
//
// Threading: Start() spawns one loop thread; RunOnce() can also be called
// directly (the benches drive rounds deterministically that way). Rounds
// are serialized through one mutex, so a manual RunOnce never overlaps the
// loop's round on the same node.
//
// Observability: every round — scheduled or manual — settles into the
// node's metrics registry (rsr_replica_rounds_total{path}, round bytes,
// the rsr_replica_staleness gauge, repair escalations; DESIGN.md §12)
// because ReplicaNode::SyncWithPeer records them itself.

#ifndef RSR_REPLICA_ANTI_ENTROPY_H_
#define RSR_REPLICA_ANTI_ENTROPY_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "replica/replica_node.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace replica {

struct AntiEntropyOptions {
  std::chrono::milliseconds period{50};
  uint64_t seed = 1;  ///< Peer-choice RNG seed.
};

class AntiEntropyScheduler {
 public:
  /// `node` must outlive the scheduler; `peers` are dialers for the other
  /// replicas (one round uses one of them). `peer_names` labels each
  /// dialer's per-peer telemetry (lag histograms, trace-span attrs);
  /// missing entries fall back to "peer".
  AntiEntropyScheduler(ReplicaNode* node, std::vector<StreamFactory> peers,
                       AntiEntropyOptions options = {},
                       std::vector<std::string> peer_names = {});
  ~AntiEntropyScheduler();

  AntiEntropyScheduler(const AntiEntropyScheduler&) = delete;
  AntiEntropyScheduler& operator=(const AntiEntropyScheduler&) = delete;

  /// Spawns the loop thread. False if already started or no peers.
  bool Start();
  /// Stops and joins the loop thread. Idempotent; also run by the dtor.
  void Stop();

  /// One round against a random peer, on the calling thread. Returns the
  /// record (also retained in rounds()).
  RoundRecord RunOnce();

  std::vector<RoundRecord> rounds() const;
  size_t rounds_run() const;

 private:
  void Loop();

  ReplicaNode* const node_;
  const std::vector<StreamFactory> peers_;
  const std::vector<std::string> peer_names_;
  const AntiEntropyOptions options_;

  /// Serializes rounds (loop vs manual RunOnce) on this node. Held across
  /// the whole SyncWithPeer round; no state lives under it.
  Mutex round_mu_;

  /// Guards the round bookkeeping. LOCK ORDER: acquired after round_mu_
  /// (RunOnce holds round_mu_ for the round and takes mu_ briefly twice);
  /// never taken around SyncWithPeer itself.
  mutable Mutex mu_ RSR_ACQUIRED_AFTER(round_mu_);
  Rng rng_ RSR_GUARDED_BY(mu_);
  std::vector<RoundRecord> rounds_ RSR_GUARDED_BY(mu_);
  CondVar cv_;
  bool stopping_ RSR_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace replica
}  // namespace rsr

#endif  // RSR_REPLICA_ANTI_ENTROPY_H_
