// One replica of the canonical set: a serving host plus the anti-entropy
// pull logic that keeps it converging toward its peers.
//
// A ReplicaNode owns a Changelog and a server::SyncServer wired to journal
// through it, so the node both serves (ordinary "@hello" syncs, plus the
// replication verbs "@log-fetch" and "@pull") and follows. One anti-entropy
// round — SyncWithPeer — is a PULL:
//
//   1. "@log-fetch" from the node's own position. If the peer still holds
//      the tail (ok) and this node is clean, replay the entries through
//      ApplyReplicated — same batches, same order, so the follower's set
//      AND serving sketches come out bit-identical to the writer's
//      (replica/changelog.h). This is the cheap path: cost ∝ delta.
//   2. Otherwise the node has fallen off the peer's ring (or is dirty from
//      an approximate repair) and must REPAIR: estimate the difference
//      from the peer's exact-keys strata (shipped in the "@log-batch"),
//      pick the cheapest adequate protocol, open an "@pull", run the BOB
//      side locally against the peer-hosted Alice — the direction that
//      moves THIS node's set toward the peer's — and install the result.
//
// Protocol choice is the repair decision rule (DESIGN.md §10): with d̂ the
// headroom-scaled strata estimate,
//
//   d̂ == 0 and tail empty        -> in-sync, nothing to do
//   d̂ <= exact_budget            -> exact-key protocol (riblt-oneshot):
//                                   exact install, adopt the peer's seq
//   clean and d̂ <= approx_budget -> approximate protocol (quadtree):
//                                   EMD-bounded install, node goes DIRTY
//   otherwise                    -> full-transfer: exact, unconditional
//
// A dirty node's set corresponds to no journal position, so it never
// tail-replays and never takes the approximate band again — its next
// rounds escalate to an exact protocol, which clears the flag. That (plus
// full-transfer as the unconditional safety net) is what guarantees the
// mesh reaches exact zero divergence at quiescence no matter how far a
// node fell behind. An install against a peer that is itself dirty is
// never marked exact either (PullAcceptFrame::dirty): the pulled set may
// be off-log, so adopting its seq would poison the log-coverage invariant.

#ifndef RSR_REPLICA_REPLICA_NODE_H_
#define RSR_REPLICA_REPLICA_NODE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/byte_stream.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "replica/changelog.h"
#include "server/sync_server.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace replica {

/// Dials one fresh connection to a peer. Returning null fails the round.
using StreamFactory = std::function<std::unique_ptr<net::ByteStream>()>;

struct ReplicaNodeOptions {
  /// Host options (context, params, limits, registry...). The `changelog`
  /// field is overwritten — the node wires in its own journal.
  server::SyncServerOptions server;
  ChangelogOptions changelog;
  /// Entries requested per "@log-fetch" (0 = the peer's cap).
  size_t log_fetch_max = 0;
  /// Safety multiplier on the strata estimate before comparing against the
  /// budgets (strata estimates are within a small constant factor w.h.p.).
  double estimate_headroom = 1.5;
  /// d̂ at or below which the exact-key repair protocol is chosen; 0
  /// derives the resolved riblt.k (what riblt-oneshot is sized for).
  size_t exact_budget = 0;
  /// Ceiling of the approximate band; 0 disables it (exact-only repairs).
  size_t approx_budget = 0;
  std::string repair_exact_protocol = "riblt-oneshot";
  std::string repair_approx_protocol = "quadtree";
  std::string repair_full_protocol = "full-transfer";
  /// FUZZ-ONLY divergence-bug injection seam: when set, every changelog
  /// entry this node tail-replays is passed through the hook first (the
  /// hook may drop inserts/erases but MUST NOT touch seq). The convergence
  /// fuzzer's self-test (src/fuzz/) plants a known bug here — e.g. drop
  /// one erase — and asserts the quiescence oracle catches it. Never set
  /// in production code.
  std::function<void(ChangeEntry*)> fuzz_tail_tamper;
  /// Name stamped on this node's "replica-round" trace spans
  /// ("attr.node") and expected by meshmon dashboards (e.g. "node0").
  std::string node_name = "node";
  /// Ship each round's trace context on "@log-fetch" / "@pull" so the
  /// peer's serving-side session span joins the round's trace. Old peers
  /// ignore the trailing field (server/handshake.h).
  bool propagate_trace = true;
};

/// What one anti-entropy round did.
struct RoundRecord {
  enum class Path {
    kInSync,        ///< Already at the peer's position; no work.
    kTail,          ///< Replayed changelog entries.
    kRepairExact,   ///< Protocol repair, exact-key protocol.
    kRepairApprox,  ///< Protocol repair, approximate protocol (went dirty).
    kRepairFull,    ///< Protocol repair, full transfer.
    kError,         ///< Transport or protocol failure; nothing installed.
  };
  Path path = Path::kError;
  bool ok = false;
  size_t entries_applied = 0;
  /// Headroom-scaled strata estimate (repair paths only).
  uint64_t est_delta = 0;
  uint64_t peer_seq = 0;
  uint64_t seq_after = 0;
  bool dirty_after = false;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  std::string protocol;  ///< Repair protocol used ("" otherwise).
  std::string error_detail;
};

const char* RoundPathName(RoundRecord::Path path);

class ReplicaNode {
 public:
  ReplicaNode(PointSet initial, ReplicaNodeOptions options);

  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  /// Writer-side mutation: journals and applies one batch (the host's
  /// write-through ApplyUpdate).
  std::shared_ptr<const server::SketchSnapshot> Apply(const PointSet& inserts,
                                                      const PointSet& erases);

  /// Apply variant stamping the journaled entry with the trace that
  /// caused the mutation (SyncServer::ApplyUpdate), so follower rounds
  /// that later carry the entry link their spans back to it.
  std::shared_ptr<const server::SketchSnapshot> Apply(
      const PointSet& inserts, const PointSet& erases,
      const obs::TraceContext& trace);

  /// One anti-entropy round against the peer behind `peer` (see the file
  /// comment). Blocking; dials up to two connections (fetch, then repair).
  /// `peer_name` labels the per-peer lag/staleness instruments and the
  /// round's trace span.
  RoundRecord SyncWithPeer(const StreamFactory& peer,
                           const std::string& peer_name = "peer");

  /// Split-dialer form: the "@log-fetch" leg dials `fetch_peer` and the
  /// "@pull" repair leg dials `repair_peer`. The legs are separable because
  /// the async host serves "@log-fetch" but not "@pull" (DESIGN.md §10):
  /// a follower can tail an async writer while keeping its repair path on
  /// the peer's threaded host. The convergence fuzzer routes its
  /// async-host sync steps through exactly this seam.
  RoundRecord SyncWithPeer(const StreamFactory& fetch_peer,
                           const StreamFactory& repair_peer,
                           const std::string& peer_name = "peer");

  server::SyncServer& host() { return server_; }
  const server::SyncServer& host() const { return server_; }
  Changelog& changelog() { return changelog_; }
  uint64_t applied_seq() const { return server_.replica_seq(); }
  bool dirty() const { return server_.repair_dirty(); }
  PointSet points() const { return server_.canonical(); }
  std::shared_ptr<const server::SketchSnapshot> snapshot() const {
    return server_.snapshot();
  }

 private:
  /// Per-peer replication-lag instruments, resolved lazily the first time
  /// a named peer is synced (view_mu_ held).
  struct PeerInstruments {
    obs::Histogram* lag = nullptr;      ///< append→apply delay, seconds
    obs::Gauge* staleness = nullptr;    ///< newest applied entry's age, µs
  };

  RoundRecord RunRound(const StreamFactory& fetch_peer,
                       const StreamFactory& repair_peer,
                       const std::string& peer_name,
                       const obs::TraceContext& trace,
                       obs::SessionSpan* span);
  RoundRecord Repair(const StreamFactory& peer, uint64_t est_delta,
                     RoundRecord record, const obs::TraceContext& trace,
                     obs::SessionSpan* span);
  /// Settles one finished round into the host's metrics registry
  /// (DESIGN.md §12): per-path round counter, round bytes, the staleness
  /// gauge (peer position minus local position), and the peer-view /
  /// watermark refresh.
  void RecordRound(const RoundRecord& record, const std::string& peer_name);
  PeerInstruments& PeerFor(const std::string& peer_name)
      RSR_REQUIRES(view_mu_);
  /// Recomputes rsr_replica_convergence_watermark = min(own position,
  /// every known peer position).
  void RefreshWatermarkLocked() RSR_REQUIRES(view_mu_);

  ReplicaNodeOptions options_;
  Changelog changelog_;
  server::SyncServer server_;
  obs::Clock* const clock_;
  /// Mints one root trace per anti-entropy round.
  obs::TraceIdGenerator trace_gen_;
  /// Incremented at the sites that arm escalate_next_repair_.
  obs::Counter* const repair_escalations_;
  obs::Gauge* const staleness_gauge_;
  obs::Gauge* const watermark_gauge_;
  /// Sampling-decision counters shared with the host's session spans
  /// (same registry instruments; server/server_obs.h).
  obs::Counter* const span_emitted_;
  obs::Counter* const span_dropped_;

  /// Guards the node's view of its peers' positions (fed by round
  /// results), the lazily-registered per-peer instruments, and the repair
  /// escalation latch. Leaf lock: never held across a peer connection or
  /// any other mutex (DESIGN.md §13).
  Mutex view_mu_;
  std::map<std::string, uint64_t> peer_seqs_ RSR_GUARDED_BY(view_mu_);
  std::map<std::string, PeerInstruments> peer_instruments_
      RSR_GUARDED_BY(view_mu_);
  /// Set when a repair session failed (e.g. an exact-key sketch sized from
  /// an under-estimate did not decode): the next repair skips the sized
  /// bands and goes straight to the unconditional full transfer, so a
  /// deterministic workload cannot loop on the same failing choice.
  /// Cleared by any successful round.
  bool escalate_next_repair_ RSR_GUARDED_BY(view_mu_) = false;
};

/// Multiset symmetric-difference size |A Δ B| (order-insensitive): the
/// set-divergence measure of the mesh benches; 0 iff the replicas hold
/// identical multisets.
size_t SetDivergence(const PointSet& a, const PointSet& b);

/// Multiset delta turning `current` into `target`: `erases` gets the
/// points of current \ target, `inserts` those of target \ current, so
/// ApplyUpdate(inserts, erases) on a holder of `current` yields `target`
/// as a multiset.
void MultisetDelta(const PointSet& current, const PointSet& target,
                   PointSet* inserts, PointSet* erases);

}  // namespace replica
}  // namespace rsr

#endif  // RSR_REPLICA_REPLICA_NODE_H_
