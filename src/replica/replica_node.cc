#include "replica/replica_node.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "net/frame.h"
#include "recon/exact_recon.h"
#include "recon/session.h"
#include "server/handshake.h"
#include "server/replica_serving.h"

namespace rsr {
namespace replica {

namespace {

server::SyncServerOptions WithChangelog(server::SyncServerOptions options,
                                        Changelog* changelog) {
  options.changelog = changelog;
  return options;
}

/// FNV-1a over the node name: per-node instance salt so two nodes built
/// with the same pinned trace seed still mint distinct round traces.
uint64_t NameSalt(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct PointOrder {
  bool operator()(const Point& a, const Point& b) const {
    return PointLess(a, b);
  }
};
using PointCounts = std::map<Point, int64_t, PointOrder>;

}  // namespace

const char* RoundPathName(RoundRecord::Path path) {
  switch (path) {
    case RoundRecord::Path::kInSync:
      return "in-sync";
    case RoundRecord::Path::kTail:
      return "tail";
    case RoundRecord::Path::kRepairExact:
      return "repair-exact";
    case RoundRecord::Path::kRepairApprox:
      return "repair-approx";
    case RoundRecord::Path::kRepairFull:
      return "repair-full";
    case RoundRecord::Path::kError:
      return "error";
  }
  return "error";
}

size_t SetDivergence(const PointSet& a, const PointSet& b) {
  PointCounts counts;
  for (const Point& p : a) ++counts[p];
  for (const Point& p : b) --counts[p];
  size_t divergence = 0;
  for (const auto& [point, count] : counts) {
    (void)point;
    divergence += static_cast<size_t>(count < 0 ? -count : count);
  }
  return divergence;
}

void MultisetDelta(const PointSet& current, const PointSet& target,
                   PointSet* inserts, PointSet* erases) {
  inserts->clear();
  erases->clear();
  PointCounts counts;
  for (const Point& p : target) ++counts[p];
  for (const Point& p : current) --counts[p];
  for (const auto& [point, count] : counts) {
    for (int64_t i = 0; i < count; ++i) inserts->push_back(point);
    for (int64_t i = 0; i < -count; ++i) erases->push_back(point);
  }
}

ReplicaNode::ReplicaNode(PointSet initial, ReplicaNodeOptions options)
    : options_(std::move(options)),
      changelog_(options_.changelog),
      server_(std::move(initial),
              WithChangelog(options_.server, &changelog_)),
      clock_(options_.server.clock != nullptr ? options_.server.clock
                                              : obs::Clock::Real()),
      trace_gen_(options_.server.trace_seed, NameSalt(options_.node_name)),
      repair_escalations_(server_.metrics_registry().GetCounter(
          "rsr_replica_repair_escalations_total",
          "Failed repair sessions that armed the full-transfer escalation")),
      staleness_gauge_(server_.metrics_registry().GetGauge(
          "rsr_replica_staleness",
          "Peer position minus local position at the last round")),
      watermark_gauge_(server_.metrics_registry().GetGauge(
          "rsr_replica_convergence_watermark",
          "Lowest replication position known across this node and its "
          "peers")),
      span_emitted_(server_.metrics_registry().GetCounter(
          "rsr_trace_spans_total", "Trace spans by sampling decision",
          {{"decision", "emitted"}})),
      span_dropped_(server_.metrics_registry().GetCounter(
          "rsr_trace_spans_total", "Trace spans by sampling decision",
          {{"decision", "dropped"}})) {}

std::shared_ptr<const server::SketchSnapshot> ReplicaNode::Apply(
    const PointSet& inserts, const PointSet& erases) {
  return Apply(inserts, erases, obs::TraceContext());
}

std::shared_ptr<const server::SketchSnapshot> ReplicaNode::Apply(
    const PointSet& inserts, const PointSet& erases,
    const obs::TraceContext& trace) {
  std::shared_ptr<const server::SketchSnapshot> snap =
      server_.ApplyUpdate(inserts, erases, trace);
  MutexLock lock(view_mu_);
  RefreshWatermarkLocked();
  return snap;
}

RoundRecord ReplicaNode::SyncWithPeer(const StreamFactory& peer,
                                      const std::string& peer_name) {
  return SyncWithPeer(peer, peer, peer_name);
}

RoundRecord ReplicaNode::SyncWithPeer(const StreamFactory& fetch_peer,
                                      const StreamFactory& repair_peer,
                                      const std::string& peer_name) {
  // One root trace per round: the span below carries it, and (with
  // propagate_trace) both legs ship it so the peer's serving spans join.
  obs::SessionSpan span(options_.server.trace_sink, "replica-round");
  obs::TraceContext trace;
  if (span.active() || options_.propagate_trace) {
    trace = trace_gen_.NewTrace();
  }
  if (span.active()) {
    span.SetTrace(trace, 0);
    span.SetSampling(&options_.server.trace_sampling, span_emitted_,
                     span_dropped_);
    span.SetAttr("node", options_.node_name);
    span.SetAttr("peer", peer_name);
  }
  RoundRecord record = RunRound(fetch_peer, repair_peer, peer_name, trace,
                                &span);
  RecordRound(record, peer_name);
  if (span.active()) {
    if (!record.protocol.empty()) span.set_protocol(record.protocol);
    span.SetAttr("path", RoundPathName(record.path));
    span.set_outcome(record.ok ? "ok" : "error");
    span.Finish();
  }
  return record;
}

void ReplicaNode::RecordRound(const RoundRecord& record,
                              const std::string& peer_name) {
  obs::MetricsRegistry& registry = server_.metrics_registry();
  registry
      .GetCounter("rsr_replica_rounds_total",
                  "Anti-entropy rounds by outcome path",
                  {{"path", RoundPathName(record.path)}})
      ->Inc();
  if (record.bytes_sent > 0) {
    registry
        .GetCounter("rsr_replica_round_bytes_total",
                    "Anti-entropy round transport bytes",
                    {{"direction", "sent"}})
        ->Inc(record.bytes_sent);
  }
  if (record.bytes_received > 0) {
    registry
        .GetCounter("rsr_replica_round_bytes_total",
                    "Anti-entropy round transport bytes",
                    {{"direction", "received"}})
        ->Inc(record.bytes_received);
  }
  // Staleness is meaningful only when the round learned the peer's
  // position (the fetch leg completed); a failed connect keeps the last
  // reading.
  if (record.peer_seq > 0 || record.ok) {
    staleness_gauge_->Set(static_cast<int64_t>(record.peer_seq) -
                          static_cast<int64_t>(record.seq_after));
    MutexLock lock(view_mu_);
    peer_seqs_[peer_name] = record.peer_seq;
    RefreshWatermarkLocked();
    // A successful repair lands this node at the peer's position: its
    // view of that peer is as fresh as it gets (the tail path settles
    // this gauge itself, from the newest entry's append stamp).
    if (record.ok && (record.path == RoundRecord::Path::kRepairExact ||
                      record.path == RoundRecord::Path::kRepairApprox ||
                      record.path == RoundRecord::Path::kRepairFull)) {
      PeerFor(peer_name).staleness->Set(0);
    }
  }
}

ReplicaNode::PeerInstruments& ReplicaNode::PeerFor(
    const std::string& peer_name) {
  auto it = peer_instruments_.find(peer_name);
  if (it != peer_instruments_.end()) return it->second;
  PeerInstruments inst;
  inst.lag = server_.metrics_registry().GetHistogram(
      "rsr_replica_propagation_lag_seconds",
      "Append-to-apply delay of tail-replayed entries, by source peer",
      obs::DefaultLatencyBounds(), {{"peer", peer_name}});
  inst.staleness = server_.metrics_registry().GetGauge(
      "rsr_replica_peer_staleness_micros",
      "Age in microseconds of the newest entry applied from the peer at "
      "the last round (0 = caught up)",
      {{"peer", peer_name}});
  return peer_instruments_.emplace(peer_name, inst).first->second;
}

void ReplicaNode::RefreshWatermarkLocked() {
  uint64_t watermark = applied_seq();
  for (const auto& [name, seq] : peer_seqs_) {
    (void)name;
    watermark = std::min(watermark, seq);
  }
  watermark_gauge_->Set(static_cast<int64_t>(watermark));
}

RoundRecord ReplicaNode::RunRound(const StreamFactory& fetch_peer,
                                  const StreamFactory& repair_peer,
                                  const std::string& peer_name,
                                  const obs::TraceContext& trace,
                                  obs::SessionSpan* span) {
  RoundRecord record;
  record.seq_after = applied_seq();
  record.dirty_after = dirty();
  span->BeginPhase("fetch");

  const auto add_bytes = [&record](const net::FramedStream& framed) {
    record.bytes_sent += framed.bytes_sent();
    record.bytes_received += framed.bytes_received();
  };

  // ------------------------------------------------------------- fetch
  std::unique_ptr<net::ByteStream> stream = fetch_peer();
  if (stream == nullptr) {
    record.error_detail = "fetch: connect failed";
    return record;
  }
  net::FramedStream framed(stream.get(), options_.server.limits);
  const bool was_dirty = dirty();
  server::LogFetchFrame fetch;
  fetch.from_seq = applied_seq();
  fetch.max_entries = options_.log_fetch_max;
  // A dirty node cannot replay a tail; it only needs the peer's position
  // and difference estimate, so ask for the strata up front.
  fetch.want_strata = was_dirty;
  if (options_.propagate_trace) fetch.trace = trace;
  transport::Message incoming;
  server::LogBatchFrame batch;
  bool fetched = false;
  if (!framed.Send(server::EncodeLogFetch(fetch))) {
    record.error_detail = "fetch: transport failed sending @log-fetch";
  } else if (framed.Receive(&incoming) !=
             net::FramedStream::RecvStatus::kMessage) {
    record.error_detail = "fetch: stream ended awaiting @log-batch";
  } else if (incoming.label == server::kRejectLabel) {
    record.error_detail = "fetch: peer rejected @log-fetch";
  } else if (!server::DecodeLogBatch(
                 incoming, options_.server.context.universe,
                 recon::ExactReconStrataConfig(options_.server.context.seed),
                 &batch)) {
    record.error_detail = "fetch: malformed @log-batch";
  } else {
    fetched = true;
  }
  stream->Close();
  add_bytes(framed);
  if (!fetched) return record;
  record.peer_seq = batch.last_seq;

  // --------------------------------------------------------- tail path
  // PR 6 soundness gap, closed: a peer that is itself dirty still serves
  // its tail (the entries exist), but that tail does not describe the
  // peer's actual set — replaying it would converge toward a state the
  // peer no longer holds. The batch's dirty bit forces the repair path
  // instead (old peers never set it, so they are treated as clean, which
  // matches their pre-dirty-bit behaviour).
  if (!was_dirty && batch.ok && !batch.dirty) {
    span->BeginPhase("apply");
    PeerInstruments* inst = nullptr;
    {
      MutexLock lock(view_mu_);
      inst = &PeerFor(peer_name);
    }
    uint64_t newest_lag_micros = 0;
    for (const ChangeEntry& entry : batch.entries) {
      if (options_.fuzz_tail_tamper) {
        // Fuzz-only divergence-bug seam (see ReplicaNodeOptions).
        ChangeEntry tampered = entry;
        options_.fuzz_tail_tamper(&tampered);
        server_.ApplyReplicated(tampered);
      } else {
        server_.ApplyReplicated(entry);
      }
      ++record.entries_applied;
      // Replication lag: the entry carries its writer-side append stamp
      // (mirrored verbatim across hops, replica/changelog.h), so the
      // delta to this node's clock is the append→apply delay. Meaningful
      // when both ends share a clock domain (in-process meshes, or the
      // injected test clock); see obs/clock.h for the cross-machine
      // caveat.
      if (entry.append_micros > 0) {
        const uint64_t now = clock_->NowMicros();
        const uint64_t lag =
            now > entry.append_micros ? now - entry.append_micros : 0;
        inst->lag->Observe(static_cast<double>(lag) * 1e-6);
        newest_lag_micros = lag;
      }
      if ((entry.trace_hi | entry.trace_lo) != 0) {
        span->AddLink(entry.trace_hi, entry.trace_lo);
      }
    }
    inst->staleness->Set(static_cast<int64_t>(newest_lag_micros));
    record.path = record.entries_applied > 0 ? RoundRecord::Path::kTail
                                             : RoundRecord::Path::kInSync;
    record.ok = true;
    record.seq_after = applied_seq();
    record.dirty_after = false;
    {
      MutexLock lock(view_mu_);
      escalate_next_repair_ = false;
    }
    return record;
  }

  // -------------------------------------------------------- repair path
  uint64_t estimate = 0;
  bool have_estimate = false;
  if (batch.strata.has_value()) {
    const StrataEstimator own = server::SnapshotStrata(
        *server_.snapshot(), options_.server.context);
    estimate = own.EstimateDifference(*batch.strata);
    estimate = static_cast<uint64_t>(
        std::ceil(static_cast<double>(estimate) * options_.estimate_headroom));
    have_estimate = true;
  }
  if (!have_estimate) {
    // No estimate to size a sketch from: only the unconditional protocol
    // is safe.
    estimate = ~uint64_t{0};
  }
  return Repair(repair_peer, estimate, std::move(record), trace, span);
}

RoundRecord ReplicaNode::Repair(const StreamFactory& peer, uint64_t est_delta,
                                RoundRecord record,
                                const obs::TraceContext& trace,
                                obs::SessionSpan* span) {
  span->BeginPhase("repair");
  record.est_delta = est_delta;
  const recon::ProtocolParams resolved = options_.server.params.Resolved();
  const size_t exact_budget = options_.exact_budget > 0
                                  ? options_.exact_budget
                                  : resolved.riblt.k;
  const bool was_dirty = dirty();
  bool escalate = false;
  {
    MutexLock lock(view_mu_);
    escalate = escalate_next_repair_;
  }
  RoundRecord::Path path;
  if (escalate) {
    // The previous repair session failed (e.g. an under-estimated sketch
    // did not decode). A deterministic workload would make the same sized
    // choice fail the same way forever, so skip the bands once.
    path = RoundRecord::Path::kRepairFull;
    record.protocol = options_.repair_full_protocol;
  } else if (est_delta <= exact_budget) {
    path = RoundRecord::Path::kRepairExact;
    record.protocol = options_.repair_exact_protocol;
  } else if (!was_dirty && options_.approx_budget > 0 &&
             est_delta <= options_.approx_budget) {
    // The approximate band is for CLEAN nodes only: a dirty node
    // re-approximating would chase its own error instead of converging.
    path = RoundRecord::Path::kRepairApprox;
    record.protocol = options_.repair_approx_protocol;
  } else {
    path = RoundRecord::Path::kRepairFull;
    record.protocol = options_.repair_full_protocol;
  }

  std::unique_ptr<net::ByteStream> stream = peer();
  if (stream == nullptr) {
    record.error_detail = "repair: connect failed";
    return record;
  }
  net::FramedStream framed(stream.get(), options_.server.limits);
  const auto fail = [&](std::string detail) {
    stream->Close();
    record.bytes_sent += framed.bytes_sent();
    record.bytes_received += framed.bytes_received();
    record.error_detail = std::move(detail);
    record.path = RoundRecord::Path::kError;
    {
      MutexLock lock(view_mu_);
      escalate_next_repair_ = true;
    }
    repair_escalations_->Inc();
    return record;
  };

  const std::shared_ptr<const server::SketchSnapshot> snapshot =
      server_.snapshot();
  server::PullFrame pull;
  pull.protocol = record.protocol;
  pull.client_set_size = snapshot->size();
  if (options_.propagate_trace) pull.trace = trace;
  if (!framed.Send(server::EncodePull(pull))) {
    return fail("repair: transport failed sending @pull");
  }
  transport::Message incoming;
  if (framed.Receive(&incoming) != net::FramedStream::RecvStatus::kMessage) {
    return fail("repair: stream ended awaiting @pull-accept");
  }
  if (incoming.label == server::kRejectLabel) {
    return fail("repair: peer rejected @pull (" + record.protocol + ")");
  }
  server::PullAcceptFrame accept;
  if (!server::DecodePullAccept(incoming, &accept) ||
      accept.protocol != record.protocol) {
    return fail("repair: malformed @pull-accept");
  }

  const recon::ProtocolRegistry* registry =
      options_.server.registry != nullptr ? options_.server.registry
                                          : &recon::ProtocolRegistry::Global();
  const std::unique_ptr<recon::Reconciler> reconciler = registry->Create(
      record.protocol, options_.server.context, options_.server.params);
  if (reconciler == nullptr) {
    return fail("repair: protocol \"" + record.protocol +
                "\" not in the local registry");
  }
  // Run BOB locally: the protocol moves Bob's set toward Alice's, and the
  // peer is hosting Alice over its canonical set (server/handshake.h).
  const std::unique_ptr<recon::PartySession> bob =
      reconciler->MakeBobSession(snapshot->points(), snapshot.get());
  for (transport::Message& opening : bob->Start()) {
    if (!framed.Send(opening)) {
      return fail("repair: transport failed sending opening frames");
    }
  }
  size_t deliveries = 0;
  while (!bob->IsDone()) {
    if (framed.Receive(&incoming) !=
        net::FramedStream::RecvStatus::kMessage) {
      return fail("repair: stream ended mid-session");
    }
    if (server::IsControlLabel(incoming.label)) {
      return fail("repair: unexpected control frame mid-session");
    }
    if (++deliveries > options_.server.max_deliveries) {
      return fail("repair: session stalled");
    }
    for (transport::Message& reply : bob->OnMessage(std::move(incoming))) {
      if (!framed.Send(reply)) {
        return fail("repair: transport failed sending replies");
      }
    }
  }
  // Closing is the end-of-pull signal to the peer's Alice pump.
  stream->Close();
  record.bytes_sent += framed.bytes_sent();
  record.bytes_received += framed.bytes_received();

  recon::ReconResult result = bob->TakeResult();
  if (!result.success) {
    record.error_detail = std::string("repair: session failed (") +
                          recon::SessionErrorName(result.error) + ")";
    record.path = RoundRecord::Path::kError;
    {
      MutexLock lock(view_mu_);
      escalate_next_repair_ = true;
    }
    repair_escalations_->Inc();
    return record;
  }

  PointSet inserts, erases;
  MultisetDelta(snapshot->points(), result.bob_final, &inserts, &erases);
  // Exactness of the install needs BOTH an exact-key protocol and a clean
  // peer: an approximate result, or any result pulled from a dirty peer,
  // corresponds to no journal position (see the file comment).
  const bool exact =
      path != RoundRecord::Path::kRepairApprox && !accept.dirty;
  server_.InstallRepair(inserts, erases, accept.seq, exact);

  record.path = path;
  record.ok = true;
  record.peer_seq = accept.seq;
  record.seq_after = applied_seq();
  record.dirty_after = dirty();
  {
    MutexLock lock(view_mu_);
    escalate_next_repair_ = false;
  }
  return record;
}

}  // namespace replica
}  // namespace rsr
