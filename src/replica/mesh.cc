#include "replica/mesh.h"

#include <algorithm>
#include <utility>

#include "net/pipe_stream.h"
#include "net/tcp.h"
#include "util/check.h"

namespace rsr {
namespace replica {

ReplicaMesh::ReplicaMesh(PointSet initial, ReplicaMeshOptions options)
    : options_(std::move(options)) {
  const size_t n = std::max<size_t>(1, options_.nodes);
  nodes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ReplicaNodeOptions node_options = options_.node;
    node_options.node_name = "node" + std::to_string(i);
    nodes_.push_back(
        std::make_unique<ReplicaNode>(initial, std::move(node_options)));
    if (options_.use_tcp) {
      RSR_CHECK(nodes_.back()->host().Start(
          net::TcpListener::Listen("127.0.0.1", 0)));
    }
  }
  schedulers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<StreamFactory> peers;
    std::vector<std::string> peer_names;
    peers.reserve(n - 1);
    peer_names.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j != i) {
        peers.push_back(PeerFactory(j));
        peer_names.push_back("node" + std::to_string(j));
      }
    }
    AntiEntropyOptions ae = options_.anti_entropy;
    ae.seed = options_.anti_entropy.seed + i;  // decorrelate peer choices
    schedulers_.push_back(std::make_unique<AntiEntropyScheduler>(
        nodes_[i].get(), std::move(peers), ae, std::move(peer_names)));
  }
}

ReplicaMesh::~ReplicaMesh() { StopSchedulers(); }

StreamFactory ReplicaMesh::PeerFactory(size_t i) {
  return [this, i] { return Dial(i); };
}

std::unique_ptr<net::ByteStream> ReplicaMesh::Dial(size_t peer) {
  if (options_.use_tcp) {
    return net::TcpStream::Connect("127.0.0.1", nodes_[peer]->host().port());
  }
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  server::SyncServer* host = &nodes_[peer]->host();
  {
    MutexLock lock(serve_mu_);
    serve_threads_.emplace_back(
        [host, end = std::move(server_end)]() mutable {
          host->ServeConnection(end.get());
        });
  }
  return client_end;
}

RoundRecord ReplicaMesh::RunRound(size_t i, size_t peer) {
  return nodes_[i]->SyncWithPeer(PeerFactory(peer),
                                 "node" + std::to_string(peer));
}

void ReplicaMesh::StopSchedulers() {
  for (const std::unique_ptr<AntiEntropyScheduler>& scheduler : schedulers_) {
    scheduler->Stop();
  }
  JoinServeThreads();
}

void ReplicaMesh::JoinServeThreads() {
  std::vector<std::thread> threads;
  {
    MutexLock lock(serve_mu_);
    threads.swap(serve_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

size_t ReplicaMesh::Divergence(size_t i, size_t j) const {
  return SetDivergence(nodes_[i]->points(), nodes_[j]->points());
}

size_t ReplicaMesh::MaxDivergence() const {
  size_t worst = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    for (size_t j = i + 1; j < nodes_.size(); ++j) {
      worst = std::max(worst, Divergence(i, j));
    }
  }
  return worst;
}

}  // namespace replica
}  // namespace rsr
