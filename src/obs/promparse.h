// Parser for the Prometheus text exposition format.
//
// The inverse of MetricsRegistry::RenderPrometheus(), used by meshmon
// (and the fleet tests) to read back what "@stats" / the /metrics HTTP
// endpoint serve. Scope matches what our renderer emits — "# HELP" /
// "# TYPE" comments, `name{k="v",...} value` samples, cumulative `le`
// buckets with `_sum`/`_count` — plus enough tolerance (blank lines,
// unknown comments, malformed lines counted and skipped) that scraping
// a newer or older node degrades to partial data instead of failure.

#ifndef RSR_OBS_PROMPARSE_H_
#define RSR_OBS_PROMPARSE_H_

#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace rsr {
namespace obs {

/// One exposition line: series name (including any `_bucket`/`_sum`/
/// `_count` suffix), its labels in source order, and the sample value.
struct PromSample {
  std::string name;
  LabelSet labels;
  double value = 0.0;
};

/// A parsed scrape of one node's exposition text.
class PromScrape {
 public:
  static PromScrape Parse(const std::string& text);

  const std::vector<PromSample>& samples() const { return samples_; }
  /// Lines that did not parse (skipped, not fatal).
  size_t parse_errors() const { return parse_errors_; }

  /// All samples of one series name, in source order.
  std::vector<const PromSample*> Series(const std::string& name) const;

  /// Exact-match lookup (labels compared order-insensitively).
  std::optional<double> Value(const std::string& name,
                              const LabelSet& labels = {}) const;

  /// Aggregates over every label set of `name`; nullopt/0 when absent.
  double Sum(const std::string& name) const;
  std::optional<double> Min(const std::string& name) const;
  std::optional<double> Max(const std::string& name) const;

  /// Reassembles histogram instruments of `family` from their
  /// `_bucket`/`_sum`/`_count` series (de-cumulating the `le` counts).
  struct LabeledHistogram {
    LabelSet labels;  ///< The instrument's labels, `le` removed.
    HistogramSnapshot snap;
  };
  std::vector<LabeledHistogram> Histograms(const std::string& family) const;

  /// All instruments of `family` merged into one snapshot (they share
  /// bounds by construction); nullopt when the family is absent.
  std::optional<HistogramSnapshot> MergedHistogram(
      const std::string& family) const;

 private:
  std::vector<PromSample> samples_;
  size_t parse_errors_ = 0;
};

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_PROMPARSE_H_
