// Trace identity and sampling policy for cross-node spans.
//
// A trace is named by a 128-bit id minted at the root of a causal chain
// (a client sync, or an anti-entropy round with no inherited context).
// Each participant contributes one span, named by a 64-bit span id; a
// span carries the trace id of its root plus the span id of its parent,
// so JSONL emissions from different processes join on the trace id.
//
// Ids are minted deterministically from a seeded SplitMix64 stream mixed
// with instance identity (same discipline as rsr::Rng everywhere else in
// the codebase): seed 0 asks for real entropy, any other seed replays
// the exact same id sequence, which the propagation tests rely on.
//
// Sampling is decided at Finish() time, per span, from the policy here:
// errors and slow sessions are always kept, the rest pass a
// deterministic hash test against sample_rate. The decision hash mixes
// the trace id with the span id so a given (trace, span) pair samples
// identically on every replay, and so one hot trace does not pin every
// server's sampler to the same verdict.

#ifndef RSR_OBS_TRACE_CONTEXT_H_
#define RSR_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace rsr {
namespace obs {

/// Wire-propagated trace identity. `valid()` is false for the
/// all-zero value, which is what decoding an old peer's frame yields —
/// "no context" and "zero context" are deliberately the same state.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// Mints fresh trace ids. Thread-safe; one per client / node instance.
class TraceIdGenerator {
 public:
  /// seed == 0 draws entropy (std::random_device); any other value gives
  /// a reproducible sequence. `instance_salt` separates the streams of
  /// same-seeded generators (e.g. mesh nodes seeded base+i already
  /// differ, but a salt lets callers share one seed knob).
  explicit TraceIdGenerator(uint64_t seed = 0, uint64_t instance_salt = 0);

  /// New 128-bit trace id + root span id. Never returns the zero trace.
  TraceContext NewTrace();

 private:
  std::atomic<uint64_t> state_;  // SplitMix64 counter; fetch_add per mint
};

/// Deterministic child span id for an adopted context: hashes the
/// inbound (trace, parent span) with a role salt so the server-side span
/// of a session differs from the client-side span it joins.
uint64_t DeriveSpanId(const TraceContext& ctx, uint64_t salt);

/// Lower-case hex, fixed width: 32 chars for the 128-bit trace id,
/// 16 for a span id. Matches the W3C traceparent textual convention.
std::string TraceIdHex(uint64_t hi, uint64_t lo);
std::string SpanIdHex(uint64_t span_id);

/// Head-based keep/drop policy applied when a span finishes.
struct TraceSamplingPolicy {
  /// Probability of keeping an unremarkable span. 1.0 keeps everything
  /// (the default — opt into shedding), 0.0 keeps only the always-on
  /// classes below.
  double sample_rate = 1.0;
  /// Spans whose wall time is >= this many seconds are always kept.
  /// 0 disables the slow-path override.
  double always_over_seconds = 0.0;
};

/// The probabilistic leg of the policy (error/slow overrides are the
/// caller's business). Deterministic in (key, rate): rate >= 1 always
/// samples, rate <= 0 never does, in between the verdict is a 53-bit
/// hash of `key` compared against the rate.
bool ShouldSampleSpan(uint64_t key, double rate);

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_TRACE_CONTEXT_H_
