// Minimal HTTP/1.0 metrics responder.
//
// One accept thread serves `GET /metrics` with the text produced by a
// caller-supplied renderer (typically MetricsRegistry::RenderPrometheus
// bound to a serving host), `GET /healthz` with a one-line liveness
// summary from the optional health renderer (404 when none is wired),
// and 404s everything else. Scrapes are rare and tiny, so connections
// are served inline on the accept thread — this is an operator endpoint,
// not a data path. Wired into `syncd --metrics-port`; see DESIGN.md §12.

#ifndef RSR_OBS_HTTP_EXPORTER_H_
#define RSR_OBS_HTTP_EXPORTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "net/tcp.h"

namespace rsr {
namespace obs {

class MetricsHttpServer {
 public:
  using Renderer = std::function<std::string()>;

  /// `renderer` answers /metrics; `health_renderer` (optional) answers
  /// /healthz — convention: a short "ok ..." line with uptime and the
  /// host's replication position (examples/syncd).
  explicit MetricsHttpServer(Renderer renderer,
                             Renderer health_renderer = nullptr);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Spawns the accept thread over `listener`. False if already started
  /// or `listener` is null.
  bool Start(std::unique_ptr<net::TcpListener> listener);

  /// Closes the listener and joins. Idempotent; also run by the dtor.
  void Stop();

  /// Bound TCP port (0 unless Start()ed).
  uint16_t port() const;

 private:
  void ServeLoop();
  void ServeOne(net::TcpStream* conn);

  Renderer renderer_;
  Renderer health_renderer_;
  std::unique_ptr<net::TcpListener> listener_;
  std::thread thread_;
};

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_HTTP_EXPORTER_H_
