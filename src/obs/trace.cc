#include "obs/trace.h"

#include <utility>

namespace rsr {
namespace obs {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

FileTraceSink::FileTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

FileTraceSink::~FileTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileTraceSink::Emit(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fputs(json_line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void VectorTraceSink::Emit(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(json_line);
}

std::vector<std::string> VectorTraceSink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

SessionSpan::SessionSpan(TraceSink* sink, std::string kind)
    : sink_(sink),
      kind_(std::move(kind)),
      start_(std::chrono::steady_clock::now()),
      phase_start_(start_) {}

void SessionSpan::set_protocol(const std::string& protocol) {
  if (sink_ == nullptr) return;
  protocol_ = protocol;
}

void SessionSpan::set_outcome(const std::string& outcome) {
  if (sink_ == nullptr) return;
  outcome_ = outcome;
}

void SessionSpan::CloseOpenPhase() {
  if (!phase_open_) return;
  Phase& phase = phases_.back();
  const auto now = std::chrono::steady_clock::now();
  phase.seconds = SecondsBetween(phase_start_, now);
  phase.frames_in = frames_in_ - settled_frames_in_;
  phase.frames_out = frames_out_ - settled_frames_out_;
  phase.bytes_in = bytes_in_ - settled_bytes_in_;
  phase.bytes_out = bytes_out_ - settled_bytes_out_;
  settled_frames_in_ = frames_in_;
  settled_frames_out_ = frames_out_;
  settled_bytes_in_ = bytes_in_;
  settled_bytes_out_ = bytes_out_;
  phase_open_ = false;
}

void SessionSpan::BeginPhase(const char* name) {
  if (sink_ == nullptr || finished_) return;
  CloseOpenPhase();
  phases_.emplace_back();
  phases_.back().name = name;
  phase_start_ = std::chrono::steady_clock::now();
  phase_open_ = true;
}

void SessionSpan::AddFrameIn(uint64_t bytes) {
  if (sink_ == nullptr) return;
  ++frames_in_;
  bytes_in_ += bytes;
}

void SessionSpan::AddFrameOut(uint64_t bytes) {
  if (sink_ == nullptr) return;
  ++frames_out_;
  bytes_out_ += bytes;
}

void SessionSpan::Finish() {
  if (sink_ == nullptr || finished_) return;
  finished_ = true;
  CloseOpenPhase();
  const double wall =
      SecondsBetween(start_, std::chrono::steady_clock::now());
  char buf[256];
  std::string line = "{\"span\":\"" + EscapeJson(kind_) + "\"";
  if (!protocol_.empty()) {
    line += ",\"protocol\":\"" + EscapeJson(protocol_) + "\"";
  }
  line += ",\"outcome\":\"" + EscapeJson(outcome_) + "\"";
  std::snprintf(buf, sizeof buf,
                ",\"wall_ms\":%.3f,\"frames_in\":%llu,\"frames_out\":%llu,"
                "\"bytes_in\":%llu,\"bytes_out\":%llu,\"phases\":[",
                1e3 * wall, static_cast<unsigned long long>(frames_in_),
                static_cast<unsigned long long>(frames_out_),
                static_cast<unsigned long long>(bytes_in_),
                static_cast<unsigned long long>(bytes_out_));
  line += buf;
  for (size_t i = 0; i < phases_.size(); ++i) {
    const Phase& phase = phases_[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"ms\":%.3f,\"frames_in\":%llu,"
                  "\"frames_out\":%llu,\"bytes_in\":%llu,\"bytes_out\":%llu}",
                  i == 0 ? "" : ",", phase.name, 1e3 * phase.seconds,
                  static_cast<unsigned long long>(phase.frames_in),
                  static_cast<unsigned long long>(phase.frames_out),
                  static_cast<unsigned long long>(phase.bytes_in),
                  static_cast<unsigned long long>(phase.bytes_out));
    line += buf;
  }
  line += "]}";
  sink_->Emit(line);
}

}  // namespace obs
}  // namespace rsr
