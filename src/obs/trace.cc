#include "obs/trace.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace rsr {
namespace obs {

namespace {

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

FileTraceSink::FileTraceSink(const std::string& path)
    : file_(std::fopen(path.c_str(), "a")) {}

FileTraceSink::~FileTraceSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileTraceSink::Emit(const std::string& json_line) {
  MutexLock lock(mu_);
  if (file_ == nullptr) return;
  std::fputs(json_line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void VectorTraceSink::Emit(const std::string& json_line) {
  MutexLock lock(mu_);
  lines_.push_back(json_line);
}

std::vector<std::string> VectorTraceSink::lines() const {
  MutexLock lock(mu_);
  return lines_;
}

SessionSpan::SessionSpan(TraceSink* sink, std::string kind)
    : sink_(sink),
      kind_(std::move(kind)),
      start_(std::chrono::steady_clock::now()),
      phase_start_(start_) {}

void SessionSpan::set_protocol(const std::string& protocol) {
  if (sink_ == nullptr) return;
  protocol_ = protocol;
}

void SessionSpan::set_outcome(const std::string& outcome) {
  if (sink_ == nullptr) return;
  outcome_ = outcome;
}

void SessionSpan::SetTrace(const TraceContext& ctx, uint64_t parent_span_id) {
  if (sink_ == nullptr) return;
  trace_ = ctx;
  parent_span_id_ = parent_span_id;
}

void SessionSpan::SetSampling(const TraceSamplingPolicy* policy,
                              Counter* emitted, Counter* dropped) {
  if (sink_ == nullptr) return;
  sampling_ = policy;
  sample_emitted_ = emitted;
  sample_dropped_ = dropped;
}

void SessionSpan::SetAttr(const char* key, const std::string& value) {
  if (sink_ == nullptr) return;
  attrs_.emplace_back(key, value);
}

void SessionSpan::AddLink(uint64_t trace_hi, uint64_t trace_lo) {
  if (sink_ == nullptr) return;
  const std::pair<uint64_t, uint64_t> link(trace_hi, trace_lo);
  if (std::find(links_.begin(), links_.end(), link) != links_.end()) return;
  links_.push_back(link);
}

void SessionSpan::CloseOpenPhase() {
  if (!phase_open_) return;
  Phase& phase = phases_.back();
  const auto now = std::chrono::steady_clock::now();
  phase.seconds = SecondsBetween(phase_start_, now);
  phase.frames_in = frames_in_ - settled_frames_in_;
  phase.frames_out = frames_out_ - settled_frames_out_;
  phase.bytes_in = bytes_in_ - settled_bytes_in_;
  phase.bytes_out = bytes_out_ - settled_bytes_out_;
  settled_frames_in_ = frames_in_;
  settled_frames_out_ = frames_out_;
  settled_bytes_in_ = bytes_in_;
  settled_bytes_out_ = bytes_out_;
  phase_open_ = false;
}

void SessionSpan::BeginPhase(const char* name) {
  if (sink_ == nullptr || finished_) return;
  CloseOpenPhase();
  phases_.emplace_back();
  phases_.back().name = name;
  phase_start_ = std::chrono::steady_clock::now();
  phase_open_ = true;
}

void SessionSpan::AddFrameIn(uint64_t bytes) {
  if (sink_ == nullptr) return;
  ++frames_in_;
  bytes_in_ += bytes;
}

void SessionSpan::AddFrameOut(uint64_t bytes) {
  if (sink_ == nullptr) return;
  ++frames_out_;
  bytes_out_ += bytes;
}

void SessionSpan::Finish() {
  if (sink_ == nullptr || finished_) return;
  finished_ = true;
  CloseOpenPhase();
  const double wall =
      SecondsBetween(start_, std::chrono::steady_clock::now());
  if (sampling_ != nullptr) {
    const bool always = outcome_ != "ok" ||
                        (sampling_->always_over_seconds > 0.0 &&
                         wall >= sampling_->always_over_seconds);
    if (!always && !ShouldSampleSpan(trace_.trace_lo ^ trace_.span_id,
                                     sampling_->sample_rate)) {
      if (sample_dropped_ != nullptr) sample_dropped_->Inc();
      return;
    }
  }
  if (sample_emitted_ != nullptr) sample_emitted_->Inc();
  char buf[256];
  std::string line = "{\"span\":\"" + EscapeJson(kind_) + "\"";
  if (trace_.valid()) {
    line += ",\"trace\":\"" + TraceIdHex(trace_.trace_hi, trace_.trace_lo) +
            "\",\"span_id\":\"" + SpanIdHex(trace_.span_id) + "\"";
    if (parent_span_id_ != 0) {
      line += ",\"parent\":\"" + SpanIdHex(parent_span_id_) + "\"";
    }
  }
  if (!protocol_.empty()) {
    line += ",\"protocol\":\"" + EscapeJson(protocol_) + "\"";
  }
  line += ",\"outcome\":\"" + EscapeJson(outcome_) + "\"";
  std::snprintf(buf, sizeof buf,
                ",\"wall_ms\":%.3f,\"frames_in\":%llu,\"frames_out\":%llu,"
                "\"bytes_in\":%llu,\"bytes_out\":%llu,\"phases\":[",
                1e3 * wall, static_cast<unsigned long long>(frames_in_),
                static_cast<unsigned long long>(frames_out_),
                static_cast<unsigned long long>(bytes_in_),
                static_cast<unsigned long long>(bytes_out_));
  line += buf;
  for (size_t i = 0; i < phases_.size(); ++i) {
    const Phase& phase = phases_[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"name\":\"%s\",\"ms\":%.3f,\"frames_in\":%llu,"
                  "\"frames_out\":%llu,\"bytes_in\":%llu,\"bytes_out\":%llu}",
                  i == 0 ? "" : ",", phase.name, 1e3 * phase.seconds,
                  static_cast<unsigned long long>(phase.frames_in),
                  static_cast<unsigned long long>(phase.frames_out),
                  static_cast<unsigned long long>(phase.bytes_in),
                  static_cast<unsigned long long>(phase.bytes_out));
    line += buf;
  }
  line += "]";
  for (const auto& attr : attrs_) {
    line += ",\"attr.";
    line += attr.first;
    line += "\":\"" + EscapeJson(attr.second) + "\"";
  }
  if (!links_.empty()) {
    line += ",\"links\":[";
    for (size_t i = 0; i < links_.size(); ++i) {
      if (i != 0) line += ",";
      line += "\"" + TraceIdHex(links_[i].first, links_[i].second) + "\"";
    }
    line += "]";
  }
  line += "}";
  sink_->Emit(line);
}

}  // namespace obs
}  // namespace rsr
