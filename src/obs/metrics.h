// Typed metrics registry for the serving stack.
//
// Three instrument kinds — Counter, Gauge, Histogram — hang off a
// MetricsRegistry keyed by (family name, label set). The hot path is
// lock-free by construction: recording is relaxed atomic arithmetic on
// instruments whose addresses are stable for the registry's lifetime
// (instruments are heap-allocated and never destroyed before the
// registry), so a reactor thread observes a latency with one relaxed
// bucket increment (plus one relaxed sum accumulate) and no mutex.
// The registry's own mutex guards only registration and read-side
// snapshots/rendering — paths that run once per session or per scrape,
// never per frame.
//
// Read side: RenderPrometheus() emits the Prometheus text exposition
// format (one "# HELP"/"# TYPE" block per family, cumulative `le`
// buckets, `_sum`/`_count` series), which is what the "@stats" admin
// verb and the syncd `--metrics-port` HTTP responder serve verbatim.
// HistogramSnapshot::Quantile() extracts p50/p90/p99 by linear
// interpolation within the owning bucket — the same estimate PromQL's
// histogram_quantile() computes. See DESIGN.md §12.

#ifndef RSR_OBS_METRICS_H_
#define RSR_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace obs {

/// Label key/value pairs identifying one instrument within a family.
/// Order-sensitive: register and look up with the same order.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Record cost: one relaxed
/// fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed level (queue depth, staleness, generation).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Returns the post-add value so callers can feed a high-water mark.
  int64_t Add(int64_t delta) {
    return value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  }
  /// Monotonic max (CAS loop): lifts the gauge to `v` if higher.
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Read-side copy of a histogram: per-bucket (non-cumulative) counts,
/// total count, and the exact sum of observations.
struct HistogramSnapshot {
  std::vector<double> bounds;    ///< Upper bounds; implicit +Inf last.
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1 entries.
  uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding rank q*count; the +Inf bucket clamps to the top
  /// finite bound. 0 when empty.
  double Quantile(double q) const;
};

/// Fixed-boundary histogram. Observe() is a branchless-ish binary search
/// over the (immutable) bounds plus one relaxed bucket increment and one
/// relaxed sum accumulate — no locks, safe from any thread. The total
/// count is derived from the buckets at snapshot time rather than kept
/// as a third atomic.
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bounds (Prometheus `le`
  /// semantics: an observation equal to a bound lands in that bucket).
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  HistogramSnapshot Snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  const std::vector<double> bounds_;
  const std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
};

/// Exponential-ish seconds ladder from 1 µs to 10 s — fits both
/// event-loop iterations (µs) and full sync sessions (ms..s).
std::vector<double> DefaultLatencyBounds();

/// Power-of-two depth ladder for queue/batch-size histograms.
std::vector<double> DefaultDepthBounds();

/// Instrument namespace + exposition surface. Get* registers on first
/// use and returns the same stable pointer thereafter; a name/kind
/// mismatch (one family, two kinds) checks fatally. All methods are
/// thread-safe; only Get*/snapshot/render take the mutex.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const LabelSet& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const LabelSet& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const LabelSet& labels = {});

  /// Prometheus text exposition format, families in name order,
  /// instruments in registration order within a family.
  std::string RenderPrometheus() const;

  /// Read-side lookups (0 / nullopt when the instrument is absent).
  uint64_t CounterValue(const std::string& name,
                        const LabelSet& labels = {}) const;
  int64_t GaugeValue(const std::string& name,
                     const LabelSet& labels = {}) const;
  std::optional<HistogramSnapshot> SnapshotHistogram(
      const std::string& name, const LabelSet& labels = {}) const;
  /// Merges every label set of a histogram family into one snapshot
  /// (all instruments of a family share bounds). nullopt if absent.
  std::optional<HistogramSnapshot> SnapshotHistogramSum(
      const std::string& name) const;
  /// Sum of a counter family across all label sets.
  uint64_t SumCounters(const std::string& name) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    std::string help;
    Kind kind = Kind::kCounter;
    std::vector<Instrument> instruments;  ///< Registration order.
  };

  Instrument* FindOrCreate(const std::string& name, const std::string& help,
                           Kind kind, const LabelSet& labels)
      RSR_REQUIRES(mu_);
  const Instrument* Find(const std::string& name, Kind kind,
                         const LabelSet& labels) const RSR_REQUIRES(mu_);

  /// Guards registration and the read-side walks only — instrument
  /// record paths (Counter::Inc etc.) are lock-free relaxed atomics on
  /// pointers whose addresses outlive the registry.
  mutable Mutex mu_;
  std::map<std::string, Family> families_ RSR_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_METRICS_H_
