// Fleet-wide aggregation of per-node metric scrapes.
//
// meshmon (and the fleet tests / CI asserts) feed one exposition-format
// scrape per node into Aggregate(), which joins the per-node registries
// into the mesh-level health picture DESIGN.md §12 defines:
//
//   writer_seq              max rsr_replica_seq across nodes — the most
//                           advanced changelog position anywhere.
//   convergence_watermark   min over nodes of the node's own watermark
//                           gauge (falling back to its replica_seq for
//                           nodes that predate the gauge). Every
//                           mutation at or below the watermark has been
//                           applied mesh-wide; watermark == writer_seq
//                           means quiescent convergence.
//   max_staleness_seconds   worst per-peer staleness anywhere.
//   lag p50/p99             append→apply propagation delay quantiles,
//                           merged across every node's per-peer
//                           histograms.
//
// Output is a text dashboard (one row per node + a fleet footer) and a
// flat JSON object CI can assert on.

#ifndef RSR_OBS_FLEET_H_
#define RSR_OBS_FLEET_H_

#include <string>
#include <vector>

namespace rsr {
namespace obs {

/// One node's raw scrape: a display name plus the exposition text
/// fetched from its "@stats" verb or /metrics endpoint.
struct NodeScrape {
  std::string name;
  std::string text;
};

/// Per-node digest extracted from one scrape. Quantiles are in
/// milliseconds, -1 when the backing histogram is absent or empty.
struct NodeSummary {
  std::string name;
  bool scraped = false;  ///< False when the text had no rsr_ samples.
  double replica_seq = 0;
  double watermark = 0;
  bool repair_dirty = false;
  double staleness_seconds = 0;
  double sessions_total = 0;
  double rounds_total = 0;
  double rounds_tail = 0;
  double rounds_repair = 0;
  double rounds_error = 0;
  double spans_emitted = 0;
  double spans_dropped = 0;
  double lag_p50_ms = -1;
  double lag_p99_ms = -1;
  size_t parse_errors = 0;
};

/// The joined fleet view.
struct FleetSummary {
  std::vector<NodeSummary> nodes;
  double writer_seq = 0;
  double convergence_watermark = 0;
  bool converged = false;  ///< watermark == writer_seq over scraped nodes.
  double max_staleness_seconds = 0;
  double lag_p50_ms = -1;
  double lag_p99_ms = -1;
  double session_p50_ms = -1;
  double session_p99_ms = -1;
  double sessions_total = 0;
  double rounds_total = 0;
  double spans_emitted = 0;
  double spans_dropped = 0;

  /// One-screen dashboard: a node table plus a fleet footer.
  std::string RenderText() const;
  /// Flat JSON object (stable key names; see DESIGN.md §12).
  std::string RenderJson() const;
};

FleetSummary Aggregate(const std::vector<NodeScrape>& scrapes);

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_FLEET_H_
