#include "obs/trace_context.h"

#include <atomic>
#include <random>

#include "hash/mix.h"

namespace rsr {
namespace obs {

namespace {

uint64_t Entropy() {
  std::random_device rd;
  uint64_t hi = rd();
  uint64_t lo = rd();
  return (hi << 32) ^ lo ^ 0x9e3779b97f4a7c15ULL;
}

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

const char kHexDigits[] = "0123456789abcdef";

void AppendHex64(uint64_t v, std::string* out) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kHexDigits[(v >> shift) & 0xf]);
  }
}

}  // namespace

TraceIdGenerator::TraceIdGenerator(uint64_t seed, uint64_t instance_salt)
    : state_(Mix64((seed == 0 ? Entropy() : seed) ^
                   Mix64(instance_salt ^ 0x7261636563747874ULL))) {}

TraceContext TraceIdGenerator::NewTrace() {
  // Three SplitMix draws per trace: hi, lo, root span id. Each mint
  // claims a unique counter range, so concurrent mints never collide.
  uint64_t s = state_.fetch_add(3, std::memory_order_relaxed);
  TraceContext ctx;
  ctx.trace_hi = SplitMix(s);
  ctx.trace_lo = SplitMix(s + 1);
  ctx.span_id = SplitMix(s + 2);
  if (!ctx.valid()) ctx.trace_lo = 0x1d;  // astronomically unlikely
  if (ctx.span_id == 0) ctx.span_id = 0x1d;
  return ctx;
}

uint64_t DeriveSpanId(const TraceContext& ctx, uint64_t salt) {
  uint64_t id = Mix64(ctx.trace_hi ^ Mix64(ctx.trace_lo ^ Mix64(
                          ctx.span_id ^ Mix64(salt))));
  return id == 0 ? 0x1d : id;
}

std::string TraceIdHex(uint64_t hi, uint64_t lo) {
  std::string out;
  out.reserve(32);
  AppendHex64(hi, &out);
  AppendHex64(lo, &out);
  return out;
}

std::string SpanIdHex(uint64_t span_id) {
  std::string out;
  out.reserve(16);
  AppendHex64(span_id, &out);
  return out;
}

bool ShouldSampleSpan(uint64_t key, double rate) {
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  // 53-bit mantissa of the mixed key → uniform double in [0, 1).
  double u = static_cast<double>(Mix64(key) >> 11) * 0x1.0p-53;
  return u < rate;
}

}  // namespace obs
}  // namespace rsr
