// Injectable monotonic clock seam.
//
// Replication-lag telemetry (DESIGN.md §12) stamps every Changelog append
// with a monotonic timestamp and measures append→apply propagation delay
// on the follower. Those stamps must be controllable in tests — wall
// sleeps in unit tests are flaky and slow — so, like the PR 6
// SyncRetryPolicy::sleep_fn seam, time flows through a tiny virtual
// interface: hosts default to the process-wide steady clock, tests inject
// a FakeClock and advance it by hand.
//
// Stamps are comparable only within one clock domain. The in-process
// meshes (pipes or loopback TCP) share one steady clock, so follower-side
// lag readings are exact there; across real machines the stamps are
// offset by the clock skew between writer and follower, and the lag
// histograms read as "skew + propagation" (the usual caveat of
// one-way-delay telemetry without clock sync).

#ifndef RSR_OBS_CLOCK_H_
#define RSR_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace rsr {
namespace obs {

/// Monotonic microsecond clock. NowMicros() never decreases and is safe
/// to call from any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t NowMicros() = 0;

  /// The process-wide real clock (std::chrono::steady_clock, rebased so
  /// the first call of the process reads near 0). Never null.
  static Clock* Real();
};

/// Test clock: starts at `start_micros`, moves only when told to.
class FakeClock : public Clock {
 public:
  explicit FakeClock(uint64_t start_micros = 0) : micros_(start_micros) {}

  uint64_t NowMicros() override {
    return micros_.load(std::memory_order_relaxed);
  }
  void Advance(uint64_t micros) {
    micros_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Set(uint64_t micros) {
    micros_.store(micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> micros_;
};

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_CLOCK_H_
