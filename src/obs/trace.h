// Per-sync-session trace spans, emitted as JSON lines.
//
// A SessionSpan follows one served connection through its phases
// (handshake → protocol rounds → result/drain), accumulating per-phase
// wall time and frame/byte counts, and emits a single JSON object per
// session through a pluggable TraceSink when it finishes. A span built
// with a null sink is inert: every method is a cheap early-out, so the
// serving hot path pays one predictable branch when tracing is off.
// Sinks must be thread-safe (sessions finish concurrently); the two
// stock sinks serialize internally. See DESIGN.md §12.

#ifndef RSR_OBS_TRACE_H_
#define RSR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_context.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace obs {

class Counter;

/// Receives one complete JSON line (no trailing newline) per finished
/// span. Emit() may be called from any thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const std::string& json_line) = 0;
};

/// Appends one line per span to a file (JSON-lines).
class FileTraceSink : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;
  bool ok() const { return file_ != nullptr; }
  void Emit(const std::string& json_line) override;

 private:
  Mutex mu_;
  std::FILE* file_ RSR_GUARDED_BY(mu_) = nullptr;
};

/// Collects spans in memory (tests).
class VectorTraceSink : public TraceSink {
 public:
  void Emit(const std::string& json_line) override;
  std::vector<std::string> lines() const;

 private:
  mutable Mutex mu_;
  std::vector<std::string> lines_ RSR_GUARDED_BY(mu_);
};

/// One served session's trace. Movable-by-default-construction only in
/// the inert state; the hosts keep it by value on their per-connection
/// state.
class SessionSpan {
 public:
  /// Inert span: all methods no-op.
  SessionSpan() = default;
  /// Live span; `kind` tags the JSON line (e.g. "sync-session").
  SessionSpan(TraceSink* sink, std::string kind);
  ~SessionSpan() { Finish(); }

  SessionSpan(const SessionSpan&) = delete;
  SessionSpan& operator=(const SessionSpan&) = delete;

  bool active() const { return sink_ != nullptr; }

  void set_protocol(const std::string& protocol);
  void set_outcome(const std::string& outcome);

  /// Attaches trace identity: the root trace id plus this span's own id
  /// come from `ctx`; `parent_span_id` (0 = none) names the span this
  /// one joins under. The JSON line gains "trace", "span_id" and
  /// (when non-zero) "parent" fields.
  void SetTrace(const TraceContext& ctx, uint64_t parent_span_id);

  /// Installs the keep/drop policy consulted at Finish(). Errors
  /// (outcome != "ok") and spans slower than the policy threshold are
  /// always emitted; the rest pass the deterministic hash test. The
  /// optional counters record the decision ("emitted" / "dropped").
  /// Without a policy every span is emitted (PR 7 behaviour).
  void SetSampling(const TraceSamplingPolicy* policy, Counter* emitted,
                   Counter* dropped);

  /// Adds a flat string attribute to the JSON line ("attr.key":"value").
  /// Last write per key wins at emission order, no dedup — callers set
  /// each key once.
  void SetAttr(const char* key, const std::string& value);

  /// Records a causal link to another trace (e.g. a replication round
  /// linking the traces of the mutations it carried). Rendered as
  /// "links":["<32-hex trace id>",...]; duplicates are collapsed.
  void AddLink(uint64_t trace_hi, uint64_t trace_lo);

  /// Ends the current phase (if any) and opens a new one. Phase wall
  /// time and frame/byte deltas are attributed to the phase that was
  /// open when they happened.
  void BeginPhase(const char* name);

  void AddFrameIn(uint64_t bytes);
  void AddFrameOut(uint64_t bytes);

  /// Closes the last phase and emits the JSON line. Idempotent; also
  /// run by the destructor so abandoned spans still surface.
  void Finish();

 private:
  struct Phase {
    const char* name = "";
    double seconds = 0.0;
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };

  void CloseOpenPhase();

  TraceSink* sink_ = nullptr;
  std::string kind_;
  std::string protocol_;
  std::string outcome_ = "unknown";
  TraceContext trace_;
  uint64_t parent_span_id_ = 0;
  const TraceSamplingPolicy* sampling_ = nullptr;
  Counter* sample_emitted_ = nullptr;
  Counter* sample_dropped_ = nullptr;
  std::vector<std::pair<const char*, std::string>> attrs_;
  std::vector<std::pair<uint64_t, uint64_t>> links_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point phase_start_;
  std::vector<Phase> phases_;
  bool phase_open_ = false;
  bool finished_ = false;
  // Totals; the open phase's deltas are (total - settled-so-far).
  uint64_t frames_in_ = 0, frames_out_ = 0;
  uint64_t bytes_in_ = 0, bytes_out_ = 0;
  uint64_t settled_frames_in_ = 0, settled_frames_out_ = 0;
  uint64_t settled_bytes_in_ = 0, settled_bytes_out_ = 0;
};

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_TRACE_H_
