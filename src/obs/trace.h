// Per-sync-session trace spans, emitted as JSON lines.
//
// A SessionSpan follows one served connection through its phases
// (handshake → protocol rounds → result/drain), accumulating per-phase
// wall time and frame/byte counts, and emits a single JSON object per
// session through a pluggable TraceSink when it finishes. A span built
// with a null sink is inert: every method is a cheap early-out, so the
// serving hot path pays one predictable branch when tracing is off.
// Sinks must be thread-safe (sessions finish concurrently); the two
// stock sinks serialize internally. See DESIGN.md §12.

#ifndef RSR_OBS_TRACE_H_
#define RSR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace rsr {
namespace obs {

/// Receives one complete JSON line (no trailing newline) per finished
/// span. Emit() may be called from any thread.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const std::string& json_line) = 0;
};

/// Appends one line per span to a file (JSON-lines).
class FileTraceSink : public TraceSink {
 public:
  explicit FileTraceSink(const std::string& path);
  ~FileTraceSink() override;
  bool ok() const { return file_ != nullptr; }
  void Emit(const std::string& json_line) override;

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
};

/// Collects spans in memory (tests).
class VectorTraceSink : public TraceSink {
 public:
  void Emit(const std::string& json_line) override;
  std::vector<std::string> lines() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

/// One served session's trace. Movable-by-default-construction only in
/// the inert state; the hosts keep it by value on their per-connection
/// state.
class SessionSpan {
 public:
  /// Inert span: all methods no-op.
  SessionSpan() = default;
  /// Live span; `kind` tags the JSON line (e.g. "sync-session").
  SessionSpan(TraceSink* sink, std::string kind);
  ~SessionSpan() { Finish(); }

  SessionSpan(const SessionSpan&) = delete;
  SessionSpan& operator=(const SessionSpan&) = delete;

  bool active() const { return sink_ != nullptr; }

  void set_protocol(const std::string& protocol);
  void set_outcome(const std::string& outcome);

  /// Ends the current phase (if any) and opens a new one. Phase wall
  /// time and frame/byte deltas are attributed to the phase that was
  /// open when they happened.
  void BeginPhase(const char* name);

  void AddFrameIn(uint64_t bytes);
  void AddFrameOut(uint64_t bytes);

  /// Closes the last phase and emits the JSON line. Idempotent; also
  /// run by the destructor so abandoned spans still surface.
  void Finish();

 private:
  struct Phase {
    const char* name = "";
    double seconds = 0.0;
    uint64_t frames_in = 0;
    uint64_t frames_out = 0;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
  };

  void CloseOpenPhase();

  TraceSink* sink_ = nullptr;
  std::string kind_;
  std::string protocol_;
  std::string outcome_ = "unknown";
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point phase_start_;
  std::vector<Phase> phases_;
  bool phase_open_ = false;
  bool finished_ = false;
  // Totals; the open phase's deltas are (total - settled-so-far).
  uint64_t frames_in_ = 0, frames_out_ = 0;
  uint64_t bytes_in_ = 0, bytes_out_ = 0;
  uint64_t settled_frames_in_ = 0, settled_frames_out_ = 0;
  uint64_t settled_bytes_in_ = 0, settled_bytes_out_ = 0;
};

}  // namespace obs
}  // namespace rsr

#endif  // RSR_OBS_TRACE_H_
