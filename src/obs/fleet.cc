#include "obs/fleet.h"

#include <algorithm>
#include <cstdio>

#include "obs/promparse.h"

namespace rsr {
namespace obs {

namespace {

double QuantileMs(const std::optional<HistogramSnapshot>& snap, double q) {
  if (!snap.has_value() || snap->count == 0) return -1;
  return 1e3 * snap->Quantile(q);
}

void MergeInto(std::optional<HistogramSnapshot>* merged,
               const std::optional<HistogramSnapshot>& snap) {
  if (!snap.has_value()) return;
  if (!merged->has_value()) {
    *merged = *snap;
    return;
  }
  if (snap->bounds != (*merged)->bounds) return;
  for (size_t i = 0; i < snap->buckets.size(); ++i) {
    (*merged)->buckets[i] += snap->buckets[i];
  }
  (*merged)->count += snap->count;
  (*merged)->sum += snap->sum;
}

std::string FormatMs(double ms) {
  char buf[32];
  if (ms < 0) return "-";
  std::snprintf(buf, sizeof buf, "%.2f", ms);
  return buf;
}

void AppendJsonNumber(std::string* out, const char* key, double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) && v > -1e15 &&
      v < 1e15) {
    std::snprintf(buf, sizeof buf, "\"%s\":%lld", key,
                  static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "\"%s\":%.6g", key, v);
  }
  *out += buf;
}

}  // namespace

FleetSummary Aggregate(const std::vector<NodeScrape>& scrapes) {
  FleetSummary fleet;
  std::optional<HistogramSnapshot> fleet_lag;
  std::optional<HistogramSnapshot> fleet_sessions;
  bool any = false;
  for (const NodeScrape& scrape : scrapes) {
    const PromScrape parsed = PromScrape::Parse(scrape.text);
    NodeSummary node;
    node.name = scrape.name;
    node.parse_errors = parsed.parse_errors();
    node.scraped = !parsed.samples().empty();
    if (node.scraped) {
      node.replica_seq = parsed.Value("rsr_replica_seq").value_or(0);
      node.watermark = parsed.Value("rsr_replica_convergence_watermark")
                           .value_or(node.replica_seq);
      node.repair_dirty =
          parsed.Value("rsr_replica_repair_dirty").value_or(0) != 0;
      node.staleness_seconds =
          parsed.Max("rsr_replica_peer_staleness_micros").value_or(0) / 1e6;
      node.sessions_total = parsed.Sum("rsr_sync_sessions_total");
      node.rounds_total = parsed.Sum("rsr_replica_rounds_total");
      for (const PromSample* sample :
           parsed.Series("rsr_replica_rounds_total")) {
        for (const auto& [key, value] : sample->labels) {
          if (key != "path") continue;
          if (value == "tail") node.rounds_tail += sample->value;
          if (value == "error") node.rounds_error += sample->value;
          if (value.rfind("repair", 0) == 0) {
            node.rounds_repair += sample->value;
          }
        }
      }
      node.spans_emitted = parsed.Value("rsr_trace_spans_total",
                                        {{"decision", "emitted"}})
                               .value_or(0);
      node.spans_dropped = parsed.Value("rsr_trace_spans_total",
                                        {{"decision", "dropped"}})
                               .value_or(0);
      const std::optional<HistogramSnapshot> lag =
          parsed.MergedHistogram("rsr_replica_propagation_lag_seconds");
      node.lag_p50_ms = QuantileMs(lag, 0.5);
      node.lag_p99_ms = QuantileMs(lag, 0.99);
      MergeInto(&fleet_lag, lag);
      MergeInto(&fleet_sessions,
                parsed.MergedHistogram("rsr_sync_session_seconds"));

      fleet.writer_seq = std::max(fleet.writer_seq, node.replica_seq);
      fleet.convergence_watermark =
          any ? std::min(fleet.convergence_watermark, node.watermark)
              : node.watermark;
      any = true;
      fleet.max_staleness_seconds =
          std::max(fleet.max_staleness_seconds, node.staleness_seconds);
      fleet.sessions_total += node.sessions_total;
      fleet.rounds_total += node.rounds_total;
      fleet.spans_emitted += node.spans_emitted;
      fleet.spans_dropped += node.spans_dropped;
    }
    fleet.nodes.push_back(std::move(node));
  }
  fleet.converged = any && fleet.convergence_watermark == fleet.writer_seq;
  fleet.lag_p50_ms = QuantileMs(fleet_lag, 0.5);
  fleet.lag_p99_ms = QuantileMs(fleet_lag, 0.99);
  fleet.session_p50_ms = QuantileMs(fleet_sessions, 0.5);
  fleet.session_p99_ms = QuantileMs(fleet_sessions, 0.99);
  return fleet;
}

std::string FleetSummary::RenderText() const {
  char buf[256];
  std::string out;
  out += "node              seq   watermark dirty  stale_s  rounds "
         "tail/repair/err  sessions  lag_p50/p99_ms\n";
  for (const NodeSummary& node : nodes) {
    if (!node.scraped) {
      std::snprintf(buf, sizeof buf, "%-16s  <unreachable>\n",
                    node.name.c_str());
      out += buf;
      continue;
    }
    std::snprintf(
        buf, sizeof buf,
        "%-16s %5.0f %11.0f %-5s %8.3f %7.0f %5.0f/%5.0f/%4.0f  %8.0f  "
        "%s/%s\n",
        node.name.c_str(), node.replica_seq, node.watermark,
        node.repair_dirty ? "yes" : "no", node.staleness_seconds,
        node.rounds_total, node.rounds_tail, node.rounds_repair,
        node.rounds_error, node.sessions_total,
        FormatMs(node.lag_p50_ms).c_str(), FormatMs(node.lag_p99_ms).c_str());
    out += buf;
  }
  std::snprintf(
      buf, sizeof buf,
      "fleet: writer_seq=%.0f watermark=%.0f (%s) max_staleness=%.3fs\n",
      writer_seq, convergence_watermark,
      converged ? "converged" : "lagging", max_staleness_seconds);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "fleet: lag p50/p99 = %s/%s ms, session p50/p99 = %s/%s ms, "
                "sessions=%.0f rounds=%.0f spans=%.0f(+%.0f dropped)\n",
                FormatMs(lag_p50_ms).c_str(), FormatMs(lag_p99_ms).c_str(),
                FormatMs(session_p50_ms).c_str(),
                FormatMs(session_p99_ms).c_str(), sessions_total,
                rounds_total, spans_emitted, spans_dropped);
  out += buf;
  return out;
}

std::string FleetSummary::RenderJson() const {
  std::string out = "{";
  AppendJsonNumber(&out, "writer_seq", writer_seq);
  out += ",";
  AppendJsonNumber(&out, "convergence_watermark", convergence_watermark);
  out += ",\"converged\":";
  out += converged ? "true" : "false";
  out += ",";
  AppendJsonNumber(&out, "max_staleness_seconds", max_staleness_seconds);
  out += ",";
  AppendJsonNumber(&out, "lag_p50_ms", lag_p50_ms);
  out += ",";
  AppendJsonNumber(&out, "lag_p99_ms", lag_p99_ms);
  out += ",";
  AppendJsonNumber(&out, "session_p50_ms", session_p50_ms);
  out += ",";
  AppendJsonNumber(&out, "session_p99_ms", session_p99_ms);
  out += ",";
  AppendJsonNumber(&out, "sessions_total", sessions_total);
  out += ",";
  AppendJsonNumber(&out, "rounds_total", rounds_total);
  out += ",";
  AppendJsonNumber(&out, "spans_emitted", spans_emitted);
  out += ",";
  AppendJsonNumber(&out, "spans_dropped", spans_dropped);
  out += ",\"nodes\":[";
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeSummary& node = nodes[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"" + node.name + "\",\"scraped\":";
    out += node.scraped ? "true" : "false";
    out += ",";
    AppendJsonNumber(&out, "replica_seq", node.replica_seq);
    out += ",";
    AppendJsonNumber(&out, "watermark", node.watermark);
    out += ",\"repair_dirty\":";
    out += node.repair_dirty ? "true" : "false";
    out += ",";
    AppendJsonNumber(&out, "staleness_seconds", node.staleness_seconds);
    out += ",";
    AppendJsonNumber(&out, "rounds_total", node.rounds_total);
    out += ",";
    AppendJsonNumber(&out, "lag_p50_ms", node.lag_p50_ms);
    out += ",";
    AppendJsonNumber(&out, "lag_p99_ms", node.lag_p99_ms);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace rsr
