#include "obs/http_exporter.h"

#include <cstdio>
#include <utility>

namespace rsr {
namespace obs {

MetricsHttpServer::MetricsHttpServer(Renderer renderer,
                                     Renderer health_renderer)
    : renderer_(std::move(renderer)),
      health_renderer_(std::move(health_renderer)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

bool MetricsHttpServer::Start(std::unique_ptr<net::TcpListener> listener) {
  if (listener == nullptr || thread_.joinable()) return false;
  listener_ = std::move(listener);
  thread_ = std::thread([this] { ServeLoop(); });
  return true;
}

void MetricsHttpServer::Stop() {
  if (listener_ != nullptr) listener_->Close();
  if (thread_.joinable()) thread_.join();
  listener_.reset();
}

uint16_t MetricsHttpServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

void MetricsHttpServer::ServeLoop() {
  for (;;) {
    std::unique_ptr<net::TcpStream> conn = listener_->Accept();
    if (conn == nullptr) return;  // listener closed
    ServeOne(conn.get());
    conn->Close();
  }
}

void MetricsHttpServer::ServeOne(net::TcpStream* conn) {
  // Read until the end of the request head (curl sends it in one
  // segment, but don't rely on that). The request line is all we parse;
  // headers are ignored.
  std::string head;
  uint8_t buf[1024];
  while (head.size() < 8192 &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    const ptrdiff_t n = conn->Read(buf, sizeof buf);
    if (n <= 0) break;
    head.append(reinterpret_cast<const char*>(buf),
                static_cast<size_t>(n));
  }
  const size_t line_end = head.find_first_of("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  // Route match tolerates a trailing space (the HTTP version) or query
  // string after the path, but not a longer path ("/metricsfoo").
  const auto matches = [&request_line](const char* route, size_t len) {
    return request_line.rfind(route, 0) == 0 &&
           (request_line.size() == len || request_line[len] == ' ' ||
            request_line[len] == '?');
  };
  std::string status = "404 Not Found";
  std::string body = "not found\n";
  if (matches("GET /metrics", 12)) {
    status = "200 OK";
    body = renderer_ != nullptr ? renderer_() : "";
  } else if (matches("GET /healthz", 12) && health_renderer_ != nullptr) {
    status = "200 OK";
    body = health_renderer_();
  }
  char header[256];
  std::snprintf(header, sizeof header,
                "HTTP/1.0 %s\r\n"
                "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                status.c_str(), body.size());
  std::string response = header;
  response += body;
  conn->Write(reinterpret_cast<const uint8_t*>(response.data()),
              response.size());
}

}  // namespace obs
}  // namespace rsr
