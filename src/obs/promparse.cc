#include "obs/promparse.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace rsr {
namespace obs {

namespace {

void SkipSpaces(const std::string& s, size_t* pos) {
  while (*pos < s.size() && (s[*pos] == ' ' || s[*pos] == '\t')) ++*pos;
}

bool IsNameChar(char c, bool first) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
      c == ':') {
    return true;
  }
  return !first && c >= '0' && c <= '9';
}

/// Parses `key="value"` with renderer escapes (\\ \" \n) undone.
bool ParseLabel(const std::string& s, size_t* pos, std::string* key,
                std::string* value) {
  size_t p = *pos;
  size_t key_start = p;
  while (p < s.size() && IsNameChar(s[p], p == key_start)) ++p;
  if (p == key_start || p >= s.size() || s[p] != '=') return false;
  key->assign(s, key_start, p - key_start);
  ++p;
  if (p >= s.size() || s[p] != '"') return false;
  ++p;
  value->clear();
  while (p < s.size() && s[p] != '"') {
    if (s[p] == '\\' && p + 1 < s.size()) {
      ++p;
      switch (s[p]) {
        case 'n': value->push_back('\n'); break;
        case '\\': value->push_back('\\'); break;
        case '"': value->push_back('"'); break;
        default: value->push_back(s[p]);
      }
    } else {
      value->push_back(s[p]);
    }
    ++p;
  }
  if (p >= s.size()) return false;  // unterminated string
  *pos = p + 1;
  return true;
}

bool ParseLine(const std::string& line, PromSample* out) {
  size_t pos = 0;
  SkipSpaces(line, &pos);
  size_t name_start = pos;
  while (pos < line.size() && IsNameChar(line[pos], pos == name_start)) ++pos;
  if (pos == name_start) return false;
  out->name.assign(line, name_start, pos - name_start);
  out->labels.clear();
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::string key, value;
      if (!ParseLabel(line, &pos, &key, &value)) return false;
      out->labels.emplace_back(std::move(key), std::move(value));
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') return false;
    ++pos;
  }
  SkipSpaces(line, &pos);
  if (pos >= line.size()) return false;
  const char* value_start = line.c_str() + pos;
  char* value_end = nullptr;
  out->value = std::strtod(value_start, &value_end);
  if (value_end == value_start) return false;
  // Anything after the value (an optional timestamp) is ignored.
  return true;
}

bool SameLabels(const LabelSet& a, const LabelSet& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [key, value] : a) {
    bool found = false;
    for (const auto& [other_key, other_value] : b) {
      if (key == other_key) {
        if (value != other_value) return false;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

LabelSet WithoutLe(const LabelSet& labels) {
  LabelSet out;
  for (const auto& label : labels) {
    if (label.first != "le") out.push_back(label);
  }
  return out;
}

std::optional<double> LeBound(const LabelSet& labels) {
  for (const auto& [key, value] : labels) {
    if (key != "le") continue;
    if (value == "+Inf") return std::numeric_limits<double>::infinity();
    char* end = nullptr;
    double bound = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) return std::nullopt;
    return bound;
  }
  return std::nullopt;
}

}  // namespace

PromScrape PromScrape::Parse(const std::string& text) {
  PromScrape scrape;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    size_t content = 0;
    SkipSpaces(line, &content);
    if (content >= line.size()) continue;       // blank
    if (line[content] == '#') continue;         // HELP/TYPE/comment
    PromSample sample;
    if (ParseLine(line, &sample)) {
      scrape.samples_.push_back(std::move(sample));
    } else {
      ++scrape.parse_errors_;
    }
  }
  return scrape;
}

std::vector<const PromSample*> PromScrape::Series(
    const std::string& name) const {
  std::vector<const PromSample*> out;
  for (const PromSample& sample : samples_) {
    if (sample.name == name) out.push_back(&sample);
  }
  return out;
}

std::optional<double> PromScrape::Value(const std::string& name,
                                        const LabelSet& labels) const {
  for (const PromSample& sample : samples_) {
    if (sample.name == name && SameLabels(sample.labels, labels)) {
      return sample.value;
    }
  }
  return std::nullopt;
}

double PromScrape::Sum(const std::string& name) const {
  double total = 0.0;
  for (const PromSample* sample : Series(name)) total += sample->value;
  return total;
}

std::optional<double> PromScrape::Min(const std::string& name) const {
  std::optional<double> best;
  for (const PromSample* sample : Series(name)) {
    if (!best.has_value() || sample->value < *best) best = sample->value;
  }
  return best;
}

std::optional<double> PromScrape::Max(const std::string& name) const {
  std::optional<double> best;
  for (const PromSample* sample : Series(name)) {
    if (!best.has_value() || sample->value > *best) best = sample->value;
  }
  return best;
}

std::vector<PromScrape::LabeledHistogram> PromScrape::Histograms(
    const std::string& family) const {
  // Group `_bucket` samples by their labels sans `le`; the renderer
  // emits buckets in ascending `le` order per instrument, so within a
  // group the cumulative counts arrive sorted already — but sort by
  // bound anyway to be safe against reordered input.
  struct Group {
    LabelSet labels;
    std::vector<std::pair<double, uint64_t>> cumulative;  // (bound, count)
  };
  std::vector<Group> groups;
  for (const PromSample* sample : Series(family + "_bucket")) {
    std::optional<double> bound = LeBound(sample->labels);
    if (!bound.has_value()) continue;
    LabelSet key = WithoutLe(sample->labels);
    Group* group = nullptr;
    for (Group& candidate : groups) {
      if (SameLabels(candidate.labels, key)) {
        group = &candidate;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
      group->labels = std::move(key);
    }
    group->cumulative.emplace_back(*bound,
                                   static_cast<uint64_t>(sample->value));
  }
  std::vector<LabeledHistogram> out;
  for (Group& group : groups) {
    std::sort(group.cumulative.begin(), group.cumulative.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    LabeledHistogram hist;
    hist.labels = group.labels;
    uint64_t previous = 0;
    for (const auto& [bound, count] : group.cumulative) {
      if (bound != std::numeric_limits<double>::infinity()) {
        hist.snap.bounds.push_back(bound);
      }
      const uint64_t in_bucket = count >= previous ? count - previous : 0;
      hist.snap.buckets.push_back(in_bucket);
      hist.snap.count += in_bucket;
      previous = count;
    }
    // If the scrape lacked the +Inf bucket, synthesize an empty one so
    // the snapshot shape (bounds.size() + 1 buckets) holds.
    if (hist.snap.buckets.size() == hist.snap.bounds.size()) {
      hist.snap.buckets.push_back(0);
    }
    if (std::optional<double> sum = Value(family + "_sum", hist.labels)) {
      hist.snap.sum = *sum;
    }
    out.push_back(std::move(hist));
  }
  return out;
}

std::optional<HistogramSnapshot> PromScrape::MergedHistogram(
    const std::string& family) const {
  std::vector<LabeledHistogram> histograms = Histograms(family);
  if (histograms.empty()) return std::nullopt;
  std::optional<HistogramSnapshot> merged;
  for (LabeledHistogram& hist : histograms) {
    if (!merged.has_value()) {
      merged = std::move(hist.snap);
      continue;
    }
    if (hist.snap.bounds != merged->bounds) continue;  // foreign shape
    for (size_t i = 0; i < hist.snap.buckets.size(); ++i) {
      merged->buckets[i] += hist.snap.buckets[i];
    }
    merged->count += hist.snap.count;
    merged->sum += hist.snap.sum;
  }
  return merged;
}

}  // namespace obs
}  // namespace rsr
