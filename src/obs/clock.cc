#include "obs/clock.h"

#include <chrono>

namespace rsr {
namespace obs {

namespace {

class RealClock : public Clock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}

  uint64_t NowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace

Clock* Clock::Real() {
  static RealClock clock;
  return &clock;
}

}  // namespace obs
}  // namespace rsr
