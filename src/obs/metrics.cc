#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace rsr {
namespace obs {

namespace {

/// Prometheus-compatible number rendering: integers stay integral
/// ("123"), everything else gets shortest-ish decimal ("0.001",
/// "2.5e-06").
std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.10g", v);
  }
  return buf;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// Renders `{k="v",...}` (empty string for an empty set); `extra` (the
/// histogram `le` pair) is appended last when non-null.
std::string RenderLabels(const LabelSet& labels,
                         const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first + "=\"" + extra->second + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    RSR_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                  "histogram bounds must be strictly increasing");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double value) {
  // `le` semantics: first bound >= value owns the observation; past the
  // last bound it lands in the implicit +Inf bucket.
  const size_t index = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < target) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // +Inf bucket: no finite upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
    const double upper = bounds[i];
    return lower + (upper - lower) *
                       (target - static_cast<double>(cumulative)) /
                       static_cast<double>(in_bucket);
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> DefaultLatencyBounds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
          5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,
          0.25, 0.5,    1.0,   2.5,  5.0,  10.0};
}

std::vector<double> DefaultDepthBounds() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

MetricsRegistry::Instrument* MetricsRegistry::FindOrCreate(
    const std::string& name, const std::string& help, Kind kind,
    const LabelSet& labels) {
  Family& family = families_[name];
  if (family.instruments.empty()) {
    family.help = help;
    family.kind = kind;
  } else {
    RSR_CHECK_MSG(family.kind == kind,
                  "metric family registered with two kinds");
  }
  for (Instrument& instrument : family.instruments) {
    if (instrument.labels == labels) return &instrument;
  }
  family.instruments.emplace_back();
  Instrument& instrument = family.instruments.back();
  instrument.labels = labels;
  return &instrument;
}

const MetricsRegistry::Instrument* MetricsRegistry::Find(
    const std::string& name, Kind kind, const LabelSet& labels) const {
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != kind) return nullptr;
  for (const Instrument& instrument : it->second.instruments) {
    if (instrument.labels == labels) return &instrument;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const LabelSet& labels) {
  MutexLock lock(mu_);
  Instrument* instrument = FindOrCreate(name, help, Kind::kCounter, labels);
  if (instrument->counter == nullptr) {
    instrument->counter = std::make_unique<Counter>();
  }
  return instrument->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const LabelSet& labels) {
  MutexLock lock(mu_);
  Instrument* instrument = FindOrCreate(name, help, Kind::kGauge, labels);
  if (instrument->gauge == nullptr) {
    instrument->gauge = std::make_unique<Gauge>();
  }
  return instrument->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const LabelSet& labels) {
  MutexLock lock(mu_);
  Instrument* instrument = FindOrCreate(name, help, Kind::kHistogram, labels);
  if (instrument->histogram == nullptr) {
    instrument->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return instrument->histogram.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const LabelSet& labels) const {
  MutexLock lock(mu_);
  const Instrument* instrument = Find(name, Kind::kCounter, labels);
  return instrument != nullptr ? instrument->counter->value() : 0;
}

int64_t MetricsRegistry::GaugeValue(const std::string& name,
                                    const LabelSet& labels) const {
  MutexLock lock(mu_);
  const Instrument* instrument = Find(name, Kind::kGauge, labels);
  return instrument != nullptr ? instrument->gauge->value() : 0;
}

std::optional<HistogramSnapshot> MetricsRegistry::SnapshotHistogram(
    const std::string& name, const LabelSet& labels) const {
  MutexLock lock(mu_);
  const Instrument* instrument = Find(name, Kind::kHistogram, labels);
  if (instrument == nullptr) return std::nullopt;
  return instrument->histogram->Snapshot();
}

std::optional<HistogramSnapshot> MetricsRegistry::SnapshotHistogramSum(
    const std::string& name) const {
  MutexLock lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kHistogram ||
      it->second.instruments.empty()) {
    return std::nullopt;
  }
  std::optional<HistogramSnapshot> merged;
  for (const Instrument& instrument : it->second.instruments) {
    HistogramSnapshot snap = instrument.histogram->Snapshot();
    if (!merged.has_value()) {
      merged = std::move(snap);
      continue;
    }
    RSR_CHECK_MSG(snap.bounds == merged->bounds,
                  "histogram family with mismatched bounds");
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      merged->buckets[i] += snap.buckets[i];
    }
    merged->count += snap.count;
    merged->sum += snap.sum;
  }
  return merged;
}

uint64_t MetricsRegistry::SumCounters(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = families_.find(name);
  if (it == families_.end() || it->second.kind != Kind::kCounter) return 0;
  uint64_t total = 0;
  for (const Instrument& instrument : it->second.instruments) {
    total += instrument.counter->value();
  }
  return total;
}

std::string MetricsRegistry::RenderPrometheus() const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name + " ";
    switch (family.kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    for (const Instrument& instrument : family.instruments) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + RenderLabels(instrument.labels, nullptr) + " " +
                 FormatNumber(
                     static_cast<double>(instrument.counter->value())) +
                 "\n";
          break;
        case Kind::kGauge:
          out += name + RenderLabels(instrument.labels, nullptr) + " " +
                 FormatNumber(
                     static_cast<double>(instrument.gauge->value())) +
                 "\n";
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot snap = instrument.histogram->Snapshot();
          uint64_t cumulative = 0;
          for (size_t i = 0; i < snap.buckets.size(); ++i) {
            cumulative += snap.buckets[i];
            const std::pair<std::string, std::string> le = {
                "le", i < snap.bounds.size() ? FormatNumber(snap.bounds[i])
                                             : "+Inf"};
            out += name + "_bucket" + RenderLabels(instrument.labels, &le) +
                   " " + FormatNumber(static_cast<double>(cumulative)) + "\n";
          }
          out += name + "_sum" + RenderLabels(instrument.labels, nullptr) +
                 " " + FormatNumber(snap.sum) + "\n";
          out += name + "_count" + RenderLabels(instrument.labels, nullptr) +
                 " " + FormatNumber(static_cast<double>(snap.count)) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace rsr
