// Strata estimator (Eppstein–Goodrich–Uyeda–Varghese, "What's the
// Difference?"): a tiny sketch from which two parties estimate the size of
// their symmetric set difference, used to size the reconciliation IBLT and,
// in the adaptive robust protocol, to pick the quadtree level remotely.
//
// Keys are assigned to stratum i with probability 2^-(i+1) (by counting
// trailing zeros of a hash); each stratum holds a small keys-only IBLT.
// Subtracting two estimators stratum-wise and peeling from the deepest
// stratum downward yields an unbiased estimate of |A Δ B|: when stratum i
// is the first that fails to decode, the elements recovered from strata
// deeper than i represent a 2^-(i+1) sample of the difference.

#ifndef RSR_IBLT_STRATA_H_
#define RSR_IBLT_STRATA_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "iblt/iblt.h"
#include "util/bitio.h"

namespace rsr {

/// Configuration shared by both parties.
struct StrataConfig {
  int num_strata = 16;       ///< Strata 0..num_strata-1 (last one absorbs).
  size_t cells_per_stratum = 40;
  int q = 4;
  int checksum_bits = 32;
  int count_bits = 16;
  uint64_t seed = 0;

  size_t SerializedBits() const;
};

/// The estimator sketch held by one party.
class StrataEstimator {
 public:
  explicit StrataEstimator(const StrataConfig& config);

  const StrataConfig& config() const { return config_; }

  /// Adds a key to its stratum.
  void Insert(uint64_t key);

  /// Removes a key from its stratum (inverse of Insert; valid even if the
  /// key was never inserted, like Iblt::Erase). This is what makes the
  /// estimator maintainable under churn: a canonical-side sketch store can
  /// keep one estimator current with Insert/Erase instead of rebuilding it
  /// from the whole set (DESIGN.md §9).
  void Erase(uint64_t key);

  /// Estimates |difference| between the key sets underlying `*this` and
  /// `other`. Returns 0 when the sketches are identical. The estimate is
  /// within a small constant factor of the truth w.h.p.; callers should
  /// apply their own safety multiplier when sizing IBLTs from it.
  uint64_t EstimateDifference(const StrataEstimator& other) const;

  void Serialize(BitWriter* out) const;
  static std::optional<StrataEstimator> Deserialize(
      const StrataConfig& config, BitReader* in);

 private:
  int StratumOf(uint64_t key) const;
  /// Rough decode capacity of one stratum (used for the saturation bound).
  uint64_t cells_per_stratum_capacity() const {
    return static_cast<uint64_t>(config_.cells_per_stratum);
  }

  StrataConfig config_;
  uint64_t assign_seed_;
  std::vector<Iblt> strata_;
};

}  // namespace rsr

#endif  // RSR_IBLT_STRATA_H_
