#include "iblt/strata.h"

#include <bit>

#include "hash/mix.h"
#include "util/check.h"

namespace rsr {

namespace {
IbltConfig StratumIbltConfig(const StrataConfig& config, int stratum) {
  IbltConfig c;
  c.cells = config.cells_per_stratum;
  c.q = config.q;
  c.value_bits = 0;
  c.checksum_bits = config.checksum_bits;
  c.count_bits = config.count_bits;
  c.seed = Hash64(static_cast<uint64_t>(stratum),
                  config.seed ^ 0x7374726174ULL);  // "strat" tag
  return c;
}
}  // namespace

size_t StrataConfig::SerializedBits() const {
  size_t total = 0;
  for (int i = 0; i < num_strata; ++i) {
    StrataConfig copy = *this;
    total += StratumIbltConfig(copy, i).SerializedBits();
  }
  return total;
}

StrataEstimator::StrataEstimator(const StrataConfig& config)
    : config_(config),
      assign_seed_(config.seed ^ 0x6173736967ULL) {  // "assig" tag
  RSR_CHECK(config.num_strata >= 1);
  strata_.reserve(static_cast<size_t>(config.num_strata));
  for (int i = 0; i < config.num_strata; ++i) {
    strata_.emplace_back(StratumIbltConfig(config_, i));
  }
}

int StrataEstimator::StratumOf(uint64_t key) const {
  const uint64_t h = Hash64(key, assign_seed_);
  const int tz = h == 0 ? 64 : std::countr_zero(h);
  return tz >= config_.num_strata ? config_.num_strata - 1 : tz;
}

void StrataEstimator::Insert(uint64_t key) {
  strata_[static_cast<size_t>(StratumOf(key))].Insert(key, {});
}

void StrataEstimator::Erase(uint64_t key) {
  strata_[static_cast<size_t>(StratumOf(key))].Erase(key, {});
}

uint64_t StrataEstimator::EstimateDifference(
    const StrataEstimator& other) const {
  RSR_CHECK(config_.num_strata == other.config_.num_strata);
  // Decode strata from the deepest (sparsest) downward, accumulating
  // recovered difference elements. The first stratum that fails to decode
  // determines the scaling factor.
  uint64_t recovered = 0;
  for (int i = config_.num_strata - 1; i >= 0; --i) {
    Iblt diff = strata_[static_cast<size_t>(i)];
    diff.Subtract(other.strata_[static_cast<size_t>(i)]);
    const IbltDecodeResult decoded = diff.Decode();
    if (!decoded.success) {
      if (i == config_.num_strata - 1) {
        // Even the sparsest stratum overflowed: the difference exceeds what
        // this estimator can measure. Return a saturating lower bound (the
        // stratum's capacity scaled up) so callers treat it as "huge"
        // rather than zero.
        return cells_per_stratum_capacity() << config_.num_strata;
      }
      // Elements in strata > i form a 2^-(i+1) sample of the difference.
      return recovered << (i + 1);
    }
    recovered += decoded.entries.size();
  }
  return recovered;  // every stratum decoded: exact count
}

void StrataEstimator::Serialize(BitWriter* out) const {
  for (const Iblt& s : strata_) s.Serialize(out);
}

std::optional<StrataEstimator> StrataEstimator::Deserialize(
    const StrataConfig& config, BitReader* in) {
  StrataEstimator est(config);
  est.strata_.clear();
  for (int i = 0; i < config.num_strata; ++i) {
    std::optional<Iblt> table =
        Iblt::Deserialize(StratumIbltConfig(config, i), in);
    if (!table.has_value()) return std::nullopt;
    est.strata_.push_back(std::move(*table));
  }
  return est;
}

}  // namespace rsr
