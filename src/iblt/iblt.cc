#include "iblt/iblt.h"

#include <deque>

#include "util/check.h"

namespace rsr {

size_t IbltConfig::RoundedCells() const {
  RSR_CHECK(q >= 1);
  const size_t q_sz = static_cast<size_t>(q);
  size_t m = cells == 0 ? q_sz : cells;
  if (m % q_sz != 0) m += q_sz - (m % q_sz);
  return m;
}

size_t IbltConfig::SerializedBits() const {
  const size_t per_cell = static_cast<size_t>(count_bits) + 64 +
                          static_cast<size_t>(checksum_bits) +
                          static_cast<size_t>(value_bits);
  return RoundedCells() * per_cell;
}

Iblt::Iblt(const IbltConfig& config)
    : config_(config),
      m_(config.RoundedCells()),
      value_bytes_((static_cast<size_t>(config.value_bits) + 7) / 8),
      indexer_(config.seed, config.q, m_),
      checksum_(config.seed ^ 0x636865636bULL),  // "check" tag
      counts_(m_, 0),
      key_xor_(m_, 0),
      check_xor_(m_, 0),
      values_(m_ * value_bytes_, 0) {
  RSR_CHECK(config.value_bits >= 0);
  RSR_CHECK(config.checksum_bits >= 1 && config.checksum_bits <= 64);
  RSR_CHECK(config.count_bits >= 2 && config.count_bits <= 64);
}

void Iblt::Apply(uint64_t key, const std::vector<uint8_t>& value,
                 int direction) {
  RSR_CHECK_MSG(value.size() == value_bytes_, "value width mismatch");
  const uint64_t check = checksum_.Truncated(key, config_.checksum_bits);
  for (int j = 0; j < config_.q; ++j) {
    const size_t cell = indexer_.Cell(key, j);
    counts_[cell] += direction;
    key_xor_[cell] ^= key;
    check_xor_[cell] ^= check;
    uint8_t* dst = values_.data() + cell * value_bytes_;
    for (size_t b = 0; b < value_bytes_; ++b) dst[b] ^= value[b];
  }
}

void Iblt::Insert(uint64_t key, const std::vector<uint8_t>& value) {
  Apply(key, value, +1);
}

void Iblt::Erase(uint64_t key, const std::vector<uint8_t>& value) {
  Apply(key, value, -1);
}

void Iblt::Subtract(const Iblt& other) {
  RSR_CHECK(m_ == other.m_);
  RSR_CHECK(config_.q == other.config_.q);
  RSR_CHECK(config_.value_bits == other.config_.value_bits);
  RSR_CHECK(config_.checksum_bits == other.config_.checksum_bits);
  RSR_CHECK(config_.seed == other.config_.seed);
  for (size_t i = 0; i < m_; ++i) {
    counts_[i] -= other.counts_[i];
    key_xor_[i] ^= other.key_xor_[i];
    check_xor_[i] ^= other.check_xor_[i];
  }
  for (size_t i = 0; i < values_.size(); ++i) values_[i] ^= other.values_[i];
}

bool Iblt::IsEmpty() const {
  for (size_t i = 0; i < m_; ++i) {
    if (counts_[i] != 0 || key_xor_[i] != 0 || check_xor_[i] != 0)
      return false;
  }
  for (uint8_t b : values_) {
    if (b != 0) return false;
  }
  return true;
}

IbltDecodeResult Iblt::Decode(size_t max_entries) const {
  IbltDecodeResult result;
  // Peeling mutates the table, so work on a copy (tables are O(k) cells).
  Iblt work = *this;

  std::deque<size_t> queue;
  std::vector<char> queued(m_, 0);
  auto maybe_enqueue = [&](size_t cell) {
    if (!queued[cell]) {
      queued[cell] = 1;
      queue.push_back(cell);
    }
  };
  for (size_t i = 0; i < m_; ++i) maybe_enqueue(i);

  while (!queue.empty()) {
    const size_t cell = queue.front();
    queue.pop_front();
    queued[cell] = 0;

    const int64_t count = work.counts_[cell];
    if (count != 1 && count != -1) continue;
    const uint64_t key = work.key_xor_[cell];
    const uint64_t expect =
        work.checksum_.Truncated(key, config_.checksum_bits);
    if (work.check_xor_[cell] != expect) continue;  // not pure

    IbltEntry entry;
    entry.key = key;
    entry.sign = static_cast<int>(count);
    entry.value.assign(work.values_.begin() +
                           static_cast<std::ptrdiff_t>(cell * value_bytes_),
                       work.values_.begin() +
                           static_cast<std::ptrdiff_t>((cell + 1) *
                                                       value_bytes_));
    // Remove the entry from the table; re-examine every touched cell.
    work.Apply(key, entry.value, -entry.sign);
    for (int j = 0; j < config_.q; ++j) maybe_enqueue(indexer_.Cell(key, j));

    result.entries.push_back(std::move(entry));
    if (max_entries > 0 && result.entries.size() > max_entries) {
      result.success = false;
      return result;
    }
  }

  result.success = work.IsEmpty();
  return result;
}

void Iblt::Serialize(BitWriter* out) const {
  for (size_t i = 0; i < m_; ++i) {
    out->WriteBits(static_cast<uint64_t>(counts_[i]), config_.count_bits);
    out->WriteBits(key_xor_[i], 64);
    out->WriteBits(check_xor_[i], config_.checksum_bits);
    const uint8_t* src = values_.data() + i * value_bytes_;
    int remaining = config_.value_bits;
    size_t byte = 0;
    while (remaining > 0) {
      const int take = remaining < 8 ? remaining : 8;
      out->WriteBits(src[byte], take);
      remaining -= take;
      ++byte;
    }
  }
}

std::optional<Iblt> Iblt::Deserialize(const IbltConfig& config,
                                      BitReader* in) {
  Iblt table(config);
  const int count_bits = config.count_bits;
  for (size_t i = 0; i < table.m_; ++i) {
    uint64_t raw = 0;
    if (!in->ReadBits(count_bits, &raw)) return std::nullopt;
    // Sign-extend the two's-complement count field.
    int64_t count = static_cast<int64_t>(raw);
    if (count_bits < 64 && (raw >> (count_bits - 1)) & 1) {
      count -= int64_t{1} << count_bits;
    }
    table.counts_[i] = count;
    if (!in->ReadBits(64, &table.key_xor_[i])) return std::nullopt;
    if (!in->ReadBits(config.checksum_bits, &table.check_xor_[i]))
      return std::nullopt;
    uint8_t* dst = table.values_.data() + i * table.value_bytes_;
    int remaining = config.value_bits;
    size_t byte = 0;
    while (remaining > 0) {
      const int take = remaining < 8 ? remaining : 8;
      uint64_t v = 0;
      if (!in->ReadBits(take, &v)) return std::nullopt;
      dst[byte] = static_cast<uint8_t>(v);
      remaining -= take;
      ++byte;
    }
  }
  return table;
}

}  // namespace rsr
