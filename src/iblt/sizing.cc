#include "iblt/sizing.h"

#include <cmath>

namespace rsr {

double CellsPerEntryThreshold(int q) {
  // 1/c_q for the q-uniform peeling threshold c_q (Molloy; also tabulated in
  // the IBLT literature).
  switch (q) {
    case 3:
      return 1.0 / 0.8184;
    case 4:
      return 1.0 / 0.7723;
    case 5:
      return 1.0 / 0.7018;
    case 6:
      return 1.0 / 0.6372;
    case 7:
      return 1.0 / 0.5818;
    default:
      return 1.0 / 0.7723;
  }
}

size_t RecommendedCells(size_t expected_entries, int q, double headroom) {
  const double base =
      static_cast<double>(expected_entries) * CellsPerEntryThreshold(q) *
      headroom;
  // Small-table padding: the asymptotic threshold is optimistic for small D;
  // add a q-dependent constant and enforce a floor of a few partitions.
  const double padded = base + 2.0 * q + 8.0;
  const size_t floor_cells = static_cast<size_t>(4 * q);
  const size_t cells = static_cast<size_t>(std::ceil(padded));
  return cells < floor_cells ? floor_cells : cells;
}

}  // namespace rsr
