// IBLT sizing: how many cells are needed to decode D surviving entries.
//
// Peeling a q-partitioned IBLT succeeds w.h.p. iff the random q-uniform
// hypergraph with D edges on m vertices has an empty 2-core, which happens
// for m > c_q^{-1} · D where c_q is the classic peeling threshold
// (c_3 ≈ 0.818, c_4 ≈ 0.772, c_5 ≈ 0.702). Small tables need extra slack
// because the thresholds are asymptotic; RecommendedCells applies the
// standard small-D padding used in practice.

#ifndef RSR_IBLT_SIZING_H_
#define RSR_IBLT_SIZING_H_

#include <cstddef>

namespace rsr {

/// Asymptotic cells-per-entry overhead factor 1/c_q for q in [3, 7].
/// Values outside the supported range fall back to q = 4's factor.
double CellsPerEntryThreshold(int q);

/// Recommended number of cells for decoding up to `expected_entries`
/// surviving entries with hash-count q. `headroom` multiplies the
/// asymptotic threshold (1.0 = right at threshold; default 1.35 gives
/// comfortable success probability); small-table padding is added on top.
size_t RecommendedCells(size_t expected_entries, int q,
                        double headroom = 1.35);

}  // namespace rsr

#endif  // RSR_IBLT_SIZING_H_
