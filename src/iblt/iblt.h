// Invertible Bloom Lookup Table (Goodrich & Mitzenmacher).
//
// An IBLT is a randomized sketch of a key→value multimap supporting Insert,
// Erase, Subtract (cell-wise difference of two sketches) and Decode (full
// recovery of the surviving entries by peeling "pure" cells). Its defining
// property for set reconciliation: if Alice inserts her set, Bob erases his,
// the surviving entries are exactly the symmetric difference — and the
// sketch size only needs to be proportional to the *difference*, not to the
// sets.
//
// Layout: m cells partitioned into q regions; each key maps to one cell per
// region (so its q cells are distinct). A cell holds
//   count      — signed number of entries hashed into it,
//   key_xor    — XOR of their keys,
//   check_xor  — XOR of their key checksums (truncated to checksum_bits),
//   value_xor  — XOR of their fixed-width value payloads.
// A cell is "pure" when count == ±1 and check_xor equals the checksum of
// key_xor; peeling pure cells until the table empties recovers everything
// with high probability once m exceeds ~1.3x the number of surviving
// entries (see sizing.h for the thresholds).
//
// Serialisation is bit-exact: a cell costs count_bits + 64 + checksum_bits +
// value_bits bits, which is what the transport layer reports as
// communication.

#ifndef RSR_IBLT_IBLT_H_
#define RSR_IBLT_IBLT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "hash/checksum.h"
#include "hash/family.h"
#include "util/bitio.h"

namespace rsr {

/// Static configuration of an IBLT; both parties must agree on it exactly
/// (it is derived from public protocol parameters, never transmitted).
struct IbltConfig {
  size_t cells = 0;       ///< Requested m; rounded up to a multiple of q.
  int q = 4;              ///< Hash functions / partitions.
  int value_bits = 0;     ///< Fixed payload width in bits (0 = keys only).
  int checksum_bits = 32; ///< Truncated checksum width.
  int count_bits = 16;    ///< Serialized two's-complement count width.
  uint64_t seed = 0;      ///< Seeds index hashes and checksums.

  /// Cells after rounding up to a multiple of q.
  size_t RoundedCells() const;

  /// Exact serialized size in bits of a table with this configuration.
  size_t SerializedBits() const;
};

/// One recovered entry: `sign` is +1 if it survived from the inserted side,
/// -1 from the erased side.
struct IbltEntry {
  uint64_t key = 0;
  std::vector<uint8_t> value;  ///< ceil(value_bits / 8) bytes, zero-padded.
  int sign = 0;
};

/// Result of decoding: `success` is true iff the table peeled completely,
/// in which case `entries` is the full surviving multiset.
struct IbltDecodeResult {
  bool success = false;
  std::vector<IbltEntry> entries;
};

/// The table. Copyable; Subtract and Decode make this the reconciliation
/// primitive: decode(A.Subtract(B)) == (A \ B) ∪ (B \ A) w.h.p.
class Iblt {
 public:
  explicit Iblt(const IbltConfig& config);

  const IbltConfig& config() const { return config_; }
  size_t cells() const { return m_; }
  size_t value_bytes() const { return value_bytes_; }

  /// Adds an entry. `value` must have exactly value_bytes() bytes (pass an
  /// empty vector when value_bits == 0); bits beyond value_bits must be 0.
  void Insert(uint64_t key, const std::vector<uint8_t>& value);

  /// Removes an entry (inverse of Insert; valid even if the entry was never
  /// inserted — the cell fields simply go negative, which is the mechanism
  /// reconciliation relies on).
  void Erase(uint64_t key, const std::vector<uint8_t>& value);

  /// Cell-wise this -= other. Configurations must match exactly.
  void Subtract(const Iblt& other);

  /// Attempts full recovery by peeling. Non-destructive.
  /// If `max_entries` > 0 decoding aborts (reporting failure) as soon as
  /// more than max_entries entries have been extracted — used by protocols
  /// that only accept small differences.
  IbltDecodeResult Decode(size_t max_entries = 0) const;

  /// True if every cell is zero (e.g. after subtracting an equal table).
  bool IsEmpty() const;

  /// Bit-exact serialisation (config is not written; see IbltConfig).
  void Serialize(BitWriter* out) const;

  /// Reads a table serialized with the same config. nullopt on underrun.
  static std::optional<Iblt> Deserialize(const IbltConfig& config,
                                         BitReader* in);

 private:
  struct PeelState;

  void Apply(uint64_t key, const std::vector<uint8_t>& value, int direction);

  IbltConfig config_;
  size_t m_;
  size_t value_bytes_;
  IndexHasher indexer_;
  Checksum checksum_;
  std::vector<int64_t> counts_;
  std::vector<uint64_t> key_xor_;
  std::vector<uint64_t> check_xor_;
  std::vector<uint8_t> values_;  // m_ * value_bytes_, cell-major
};

}  // namespace rsr

#endif  // RSR_IBLT_IBLT_H_
