#include "server/sketch_store.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "hash/mix.h"
#include "recon/exact_recon.h"
#include "recon/params.h"
#include "recon/quadtree_recon.h"
#include "riblt/riblt_recon.h"
#include "util/check.h"

namespace rsr {
namespace server {

namespace {

bool SameIbltConfig(const IbltConfig& a, const IbltConfig& b) {
  return a.cells == b.cells && a.q == b.q && a.value_bits == b.value_bits &&
         a.checksum_bits == b.checksum_bits && a.count_bits == b.count_bits &&
         a.seed == b.seed;
}

bool SameStrataConfig(const StrataConfig& a, const StrataConfig& b) {
  return a.num_strata == b.num_strata &&
         a.cells_per_stratum == b.cells_per_stratum && a.q == b.q &&
         a.checksum_bits == b.checksum_bits && a.count_bits == b.count_bits &&
         a.seed == b.seed;
}

// max_entries deliberately ignored: it fixes serialized sum-field widths
// only, never cell arithmetic, and the session-side value legitimately
// tracks the *initiator's* set size (riblt-oneshot) while the store's
// tracks the canonical one. Subtract requires exactly the fields compared
// here.
bool CompatibleRibltConfig(const RibltConfig& a, const RibltConfig& b) {
  return a.RoundedCells() == b.RoundedCells() && a.q == b.q &&
         a.count_bits == b.count_bits && a.seed == b.seed &&
         a.universe.d == b.universe.d && a.universe.delta == b.universe.delta;
}

// The serialized sum-field widths the two configs would put on the wire.
// RIBLT configs derive max_entries from |S| (2n + 2 in riblt-oneshot and
// the MLSH ladder), so a batch can change KeySumBits/CoordSumBits without
// touching the histogram width — those boundaries sit one point below each
// HistogramCountBits power of two. A cached table serialized under the old
// widths would no longer be bit-identical to a fresh build.
bool SameRibltWidths(const RibltConfig& a, const RibltConfig& b) {
  return a.KeySumBits() == b.KeySumBits() &&
         a.CoordSumBits() == b.CoordSumBits();
}

/// Observes elapsed wall time into a histogram at scope exit; inert when
/// the histogram is null (probe disabled).
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram* histogram)
      : histogram_(histogram),
        start_(histogram != nullptr
                   ? std::chrono::steady_clock::now()
                   : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count());
  }

 private:
  obs::Histogram* const histogram_;
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace

SketchStoreMetrics MakeStoreMetrics(obs::MetricsRegistry* registry,
                                    bool latency_probes) {
  SketchStoreMetrics metrics;
  if (latency_probes) {
    metrics.apply_seconds = registry->GetHistogram(
        "rsr_store_apply_seconds", "SketchStore::ApplyUpdate wall time",
        obs::DefaultLatencyBounds());
  }
  metrics.rebuilds = registry->GetCounter(
      "rsr_store_rebuilds_total",
      "From-scratch sketch rebuilds (initial build included)");
  metrics.generation = registry->GetGauge(
      "rsr_store_generation", "Published canonical snapshot generation");
  metrics.points =
      registry->GetGauge("rsr_store_points", "Canonical set size");
  return metrics;
}

// ----------------------------------------------------------- SketchSnapshot

std::optional<Iblt> SketchSnapshot::QuadtreeLevelIblt(const IbltConfig& config,
                                                      int level) const {
  for (const LevelSketch& sketch : levels_) {
    if (sketch.level != level) continue;
    if (!SameIbltConfig(sketch.iblt_config, config)) return std::nullopt;
    return sketch.iblt;  // private copy for the session
  }
  return std::nullopt;
}

std::optional<StrataEstimator> SketchSnapshot::QuadtreeLevelProbe(
    const StrataConfig& config, int level) const {
  for (const LevelSketch& sketch : levels_) {
    if (sketch.level != level) continue;
    if (!SameStrataConfig(sketch.probe_config, config)) return std::nullopt;
    return sketch.probe;
  }
  return std::nullopt;
}

std::optional<StrataEstimator> SketchSnapshot::ExactStrata(
    const StrataConfig& config) const {
  if (!exact_strata_.has_value() ||
      !SameStrataConfig(exact_config_, config)) {
    return std::nullopt;
  }
  return exact_strata_;
}

std::shared_ptr<const recon::KeyedPointList> SketchSnapshot::ExactKeyedPoints(
    uint64_t seed) const {
  if (exact_keyed_ == nullptr || seed != seed_) return nullptr;
  return exact_keyed_;
}

std::optional<Riblt> SketchSnapshot::MlshLevelRiblt(const RibltConfig& config,
                                                    size_t level_index) const {
  if (level_index >= mlsh_tables_.size() ||
      !CompatibleRibltConfig(mlsh_configs_[level_index], config)) {
    return std::nullopt;
  }
  return mlsh_tables_[level_index];
}

std::optional<Riblt> SketchSnapshot::OneShotRiblt(
    const RibltConfig& config) const {
  if (!oneshot_.has_value() ||
      !CompatibleRibltConfig(*oneshot_config_, config)) {
    return std::nullopt;
  }
  return oneshot_;
}

// --------------------------------------------------------------- SketchStore

SketchStore::SketchStore(PointSet canonical, SketchStoreOptions options)
    : context_(options.context),
      params_(options.params.Resolved()),
      materialize_(options.materialize),
      metrics_(options.metrics),
      grid_(context_.universe, context_.seed) {
  // The cached quadtree levels: the one-shot ladder plus the single-grid
  // protocol's forced level (identical config derivation, so one cache
  // serves both).
  cached_levels_ = recon::ProtocolLevels(grid_, params_.quadtree);
  if (params_.single_grid_level >= 0 &&
      params_.single_grid_level <= grid_.max_level() &&
      std::find(cached_levels_.begin(), cached_levels_.end(),
                params_.single_grid_level) == cached_levels_.end()) {
    cached_levels_.push_back(params_.single_grid_level);
    std::sort(cached_levels_.begin(), cached_levels_.end());
  }
  mlsh_prefixes_ = lshrecon::MlshPrefixLadder(params_.mlsh.NumFunctions());
  mlsh_family_ = lshrecon::MakeMlshFamily(
      params_.mlsh.family, context_.universe,
      lshrecon::MlshEffectiveWidth(context_.universe, params_.mlsh),
      params_.mlsh.NumFunctions(), context_.seed);
  MutexLock lock(mu_);
  snapshot_ = Rebuild(std::move(canonical), /*generation=*/0);
  PublishMetrics();
}

void SketchStore::PublishMetrics() const {
  if (metrics_.generation != nullptr) {
    metrics_.generation->Set(static_cast<int64_t>(snapshot_->generation()));
  }
  if (metrics_.points != nullptr) {
    metrics_.points->Set(static_cast<int64_t>(snapshot_->size()));
  }
}

std::shared_ptr<const SketchSnapshot> SketchStore::Snapshot() const {
  MutexLock lock(mu_);
  return snapshot_;
}

std::shared_ptr<SketchSnapshot> SketchStore::Rebuild(PointSet points,
                                                     uint64_t generation) {
  auto snap = std::shared_ptr<SketchSnapshot>(new SketchSnapshot());
  if (metrics_.rebuilds != nullptr) metrics_.rebuilds->Inc();
  snap->generation_ = generation;
  snap->seed_ = context_.seed;
  snap->materialized_ = materialize_;
  const size_t n = points.size();
  snap->points_ = std::move(points);
  level_histograms_.clear();
  point_counts_.clear();
  if (!materialize_) return snap;

  // Quadtree level IBLTs + adaptive probes (and their histograms, kept for
  // incremental maintenance).
  snap->levels_.reserve(cached_levels_.size());
  level_histograms_.reserve(cached_levels_.size());
  for (int level : cached_levels_) {
    snap->levels_.push_back(SketchSnapshot::LevelSketch{
        level,
        recon::LevelIbltConfig(grid_, level, n, params_.quadtree,
                               context_.seed),
        recon::BuildLevelIblt(grid_, snap->points_, level, n,
                              params_.quadtree, context_.seed),
        recon::AdaptiveLevelProbeConfig(level, context_.seed),
        recon::BuildLevelProbe(grid_, snap->points_, level, context_.seed)});
    level_histograms_.push_back(
        BuildCellHistogram(grid_, snap->points_, level));
  }

  // Exact baseline: occurrence-indexed keyed list + strata estimator, and
  // the multiset view that keeps the occurrence indices maintainable.
  auto keyed = std::make_shared<recon::KeyedPointList>(
      recon::ExactKeyedPoints(snap->points_, context_.seed));
  snap->exact_config_ = recon::ExactReconStrataConfig(context_.seed);
  snap->exact_strata_.emplace(snap->exact_config_);
  for (const auto& [key, point] : *keyed) {
    snap->exact_strata_->Insert(key);
    ++point_counts_[point];
  }
  snap->exact_keyed_ = std::move(keyed);

  // MLSH ladder RIBLTs.
  snap->mlsh_configs_.clear();
  snap->mlsh_tables_.clear();
  snap->mlsh_tables_.reserve(mlsh_prefixes_.size());
  for (size_t li = 0; li < mlsh_prefixes_.size(); ++li) {
    snap->mlsh_configs_.push_back(lshrecon::MlshLevelConfig(
        context_.universe, params_.mlsh, n, li, context_.seed));
    snap->mlsh_tables_.emplace_back(snap->mlsh_configs_.back());
  }
  for (const Point& p : snap->points_) {
    const std::vector<uint64_t> chain =
        lshrecon::MlshKeyChain(*mlsh_family_, p, context_.seed);
    for (size_t li = 0; li < mlsh_prefixes_.size(); ++li) {
      snap->mlsh_tables_[li].Insert(chain[mlsh_prefixes_[li] - 1], p);
    }
  }

  // One-shot exact-key RIBLT.
  snap->oneshot_config_ = RibltOneShotConfig(context_.universe, params_.riblt,
                                             n, context_.seed);
  snap->oneshot_.emplace(*snap->oneshot_config_);
  for (const Point& p : snap->points_) {
    snap->oneshot_->Insert(PointKey(p, context_.seed), p);
  }
  return snap;
}

void SketchStore::UpdatePoint(SketchSnapshot* snap, const Point& p,
                              int direction) {
  RSR_DCHECK(direction == 1 || direction == -1);
  const size_t n = snap->points_.size();  // final size; widths already equal

  // Quadtree histograms: count c -> c + direction means erase the
  // (cell, c) element and insert (cell, c + direction) — two O(q) linear
  // updates per level.
  for (size_t li = 0; li < cached_levels_.size(); ++li) {
    const int level = cached_levels_[li];
    auto& histogram = level_histograms_[li];
    SketchSnapshot::LevelSketch& sketch = snap->levels_[li];
    const uint64_t cell_key = grid_.CellKeyOf(p, level);
    auto it = histogram.find(cell_key);
    const int64_t old_count = it == histogram.end() ? 0 : it->second.count;
    const Cell cell =
        it == histogram.end() ? grid_.CellOf(p, level) : it->second.cell;
    if (old_count > 0) {
      const uint64_t entry =
          recon::HistogramEntryKey(grid_, cell, level, old_count);
      sketch.iblt.Erase(entry, recon::HistogramEntryValue(grid_, cell, level,
                                                          old_count, n));
      sketch.probe.Erase(entry);
    }
    const int64_t new_count = old_count + direction;
    RSR_CHECK(new_count >= 0);
    if (new_count > 0) {
      const uint64_t entry =
          recon::HistogramEntryKey(grid_, cell, level, new_count);
      sketch.iblt.Insert(entry, recon::HistogramEntryValue(grid_, cell, level,
                                                           new_count, n));
      sketch.probe.Insert(entry);
      if (it == histogram.end()) {
        histogram.emplace(cell_key, CellCount{cell, new_count});
      } else {
        it->second.count = new_count;
      }
    } else if (it != histogram.end()) {
      histogram.erase(it);
    }
  }

  // Exact strata: the occurrence index of the mutated copy is its
  // multiplicity before (insert) / after (erase) the update.
  const int64_t copies = point_counts_.count(p) ? point_counts_[p] : 0;
  if (direction > 0) {
    snap->exact_strata_->Insert(recon::ExactOccurrenceKey(p, static_cast<size_t>(copies), context_.seed));
    point_counts_[p] = copies + 1;
  } else {
    RSR_CHECK(copies > 0);
    snap->exact_strata_->Erase(
        recon::ExactOccurrenceKey(p, static_cast<size_t>(copies - 1), context_.seed));
    if (copies == 1) {
      point_counts_.erase(p);
    } else {
      point_counts_[p] = copies - 1;
    }
  }

  // MLSH ladder and one-shot RIBLTs: plain linear Insert/Erase.
  const std::vector<uint64_t> chain =
      lshrecon::MlshKeyChain(*mlsh_family_, p, context_.seed);
  for (size_t li = 0; li < mlsh_prefixes_.size(); ++li) {
    const uint64_t key = chain[mlsh_prefixes_[li] - 1];
    if (direction > 0) {
      snap->mlsh_tables_[li].Insert(key, p);
    } else {
      snap->mlsh_tables_[li].Erase(key, p);
    }
  }
  const uint64_t oneshot_key = PointKey(p, context_.seed);
  if (direction > 0) {
    snap->oneshot_->Insert(oneshot_key, p);
  } else {
    snap->oneshot_->Erase(oneshot_key, p);
  }
}

std::shared_ptr<const SketchSnapshot> SketchStore::ApplyUpdate(
    const PointSet& inserts, const PointSet& erases) {
  MutexLock lock(mu_);
  ScopedTimer timer(metrics_.apply_seconds);

  // The new point set: per erased value, the first (remaining) equal
  // points are removed — absent copies are skipped, and must also be
  // skipped in the sketch updates — then the inserts are appended. One
  // sweep instead of a find-per-erase keeps a batch O(|S| + batch), not
  // O(|S| · batch) (the per-element find was the only set-size-
  // proportional term the header comment did not account for).
  std::map<Point, int64_t, PointOrder> pending;
  for (const Point& e : erases) ++pending[e];
  PointSet points;
  points.reserve(snapshot_->points().size() + inserts.size());
  PointSet applied_erases;
  applied_erases.reserve(erases.size());
  for (const Point& p : snapshot_->points()) {
    const auto it = pending.find(p);
    if (it != pending.end() && it->second > 0) {
      --it->second;
      applied_erases.push_back(p);
      continue;
    }
    points.push_back(p);
  }
  points.insert(points.end(), inserts.begin(), inserts.end());

  const uint64_t generation = snapshot_->generation() + 1;
  const bool incremental_ok =
      materialize_ &&
      recon::HistogramCountBits(points.size()) ==
          recon::HistogramCountBits(snapshot_->points().size()) &&
      snapshot_->oneshot_config_.has_value() &&
      SameRibltWidths(RibltOneShotConfig(context_.universe, params_.riblt,
                                         points.size(), context_.seed),
                      *snapshot_->oneshot_config_) &&
      (snapshot_->mlsh_configs_.empty() ||
       SameRibltWidths(
           lshrecon::MlshLevelConfig(context_.universe, params_.mlsh,
                                     points.size(), 0, context_.seed),
           snapshot_->mlsh_configs_[0]));
  if (!incremental_ok) {
    // Crossing a histogram-width boundary invalidates every level IBLT's
    // value layout, and crossing a RIBLT sum-width boundary (see
    // SameRibltWidths) invalidates the cached one-shot and MLSH tables;
    // take the set-proportional path (rare: widths change near powers of
    // two of |S|).
    snapshot_ = Rebuild(std::move(points), generation);
    PublishMetrics();
    return snapshot_;
  }

  // Incremental path: clone the sketch state (O(cells), set-size
  // independent), then apply the per-point increments.
  auto snap = std::shared_ptr<SketchSnapshot>(new SketchSnapshot(*snapshot_));
  snap->generation_ = generation;
  snap->points_ = std::move(points);
  for (const Point& e : applied_erases) UpdatePoint(snap.get(), e, -1);
  for (const Point& i : inserts) UpdatePoint(snap.get(), i, +1);
  // The keyed list is positional (sorted, occurrence-indexed), so it is
  // re-derived from the multiset view rather than patched in place. O(n)
  // copying, zero hashing or sorting.
  auto keyed = std::make_shared<recon::KeyedPointList>();
  keyed->reserve(snap->points_.size());
  for (const auto& [point, copies] : point_counts_) {
    for (int64_t occ = 0; occ < copies; ++occ) {
      keyed->emplace_back(recon::ExactOccurrenceKey(point, static_cast<size_t>(occ), context_.seed),
                          point);
    }
  }
  snap->exact_keyed_ = std::move(keyed);
  snapshot_ = std::move(snap);
  PublishMetrics();
  return snapshot_;
}

}  // namespace server
}  // namespace rsr
