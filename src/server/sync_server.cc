#include "server/sync_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "recon/session.h"
#include "server/handshake.h"
#include "server/replica_serving.h"
#include "util/check.h"

namespace rsr {
namespace server {

namespace {

using recon::SessionError;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Role salts separating the server-side span ids derived from one
// inbound context (a "@hello" session and the "@pull" it may trigger on
// another host must not collide).
constexpr uint64_t kHelloSpanSalt = 0x73657276'68656c6fULL;    // "servhelo"
constexpr uint64_t kLogFetchSpanSalt = 0x73657276'6c6f6766ULL;  // "servlogf"
constexpr uint64_t kPullSpanSalt = 0x73657276'70756c6cULL;      // "servpull"

}  // namespace

// FramedStream plus the per-connection observability state: the session's
// trace span (frame/byte counts ride on every Send/Receive) and the idle
// deadline. A Receive that fails after sitting close to the armed timeout
// is classified as an idle expiry — SO_RCVTIMEO surfaces as a plain
// transport error, so elapsed time is the only signal that distinguishes
// "peer went silent" from "peer sent garbage".
struct SyncServer::SessionIo {
  net::FramedStream framed;
  obs::SessionSpan span;
  bool timed_out = false;

  SessionIo(net::ByteStream* stream, const net::FrameLimits& limits,
            std::chrono::milliseconds timeout, obs::TraceSink* sink)
      : framed(stream, limits), span(sink, "sync-session") {
    if (timeout.count() > 0 && stream->SetReadTimeout(timeout)) {
      timeout_seconds_ = std::chrono::duration<double>(timeout).count();
    }
  }

  net::FramedStream::RecvStatus Receive(transport::Message* out) {
    const auto wait_start = std::chrono::steady_clock::now();
    const auto status = framed.Receive(out);
    if (status == net::FramedStream::RecvStatus::kMessage) {
      span.AddFrameIn(framed.bytes_received() - last_received_);
      last_received_ = framed.bytes_received();
    } else if (timeout_seconds_ > 0.0 &&
               status == net::FramedStream::RecvStatus::kError &&
               SecondsSince(wait_start) >= 0.9 * timeout_seconds_) {
      timed_out = true;
    }
    return status;
  }

  bool Send(const transport::Message& message) {
    const bool ok = framed.Send(message);
    if (ok) {
      span.AddFrameOut(framed.bytes_sent() - last_sent_);
      last_sent_ = framed.bytes_sent();
    }
    return ok;
  }

 private:
  double timeout_seconds_ = 0.0;  // 0: no deadline armed
  size_t last_received_ = 0;
  size_t last_sent_ = 0;
};

SyncServer::SyncServer(PointSet canonical, SyncServerOptions options)
    : options_(std::move(options)),
      obs_(ServerObsOptions{options_.latency_probes, options_.trace_sink}),
      clock_(options_.clock != nullptr ? options_.clock : obs::Clock::Real()),
      trace_gen_(options_.trace_seed, kHelloSpanSalt),
      store_(std::move(canonical),
             SketchStoreOptions{
                 options_.context, options_.params, options_.serve_from_cache,
                 MakeStoreMetrics(&obs_.registry(), options_.latency_probes)}),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &recon::ProtocolRegistry::Global()),
      replica_seq_gauge_(obs_.registry().GetGauge(
          "rsr_replica_seq",
          "Replication position (last journaled seq folded into the set)")),
      repair_dirty_gauge_(obs_.registry().GetGauge(
          "rsr_replica_repair_dirty",
          "1 after an approximate repair, until an exact one supersedes")) {}

SyncServer::~SyncServer() { Stop(); }

void SyncServer::AdoptTrace(SessionIo& io, const obs::TraceContext& inbound,
                            uint64_t salt) {
  if (!io.span.active()) return;
  obs::TraceContext ctx = inbound;
  uint64_t parent = 0;
  if (ctx.valid()) {
    parent = ctx.span_id;
    ctx.span_id = obs::DeriveSpanId(ctx, salt);
  } else {
    // No inbound context (an old peer, or tracing off at the caller):
    // the span still gets identity, as the root of its own trace.
    ctx = trace_gen_.NewTrace();
  }
  io.span.SetTrace(ctx, parent);
}

void SyncServer::ServeConnection(net::ByteStream* stream) {
  obs_.OnAccepted();
  SessionIo io(stream, options_.limits, options_.idle_timeout,
               obs_.trace_sink());
  io.span.SetSampling(&options_.trace_sampling, obs_.span_emitted(),
                      obs_.span_dropped());
  io.span.BeginPhase("handshake");

  // --------------------------------------------------------- handshake
  HelloFrame hello;
  std::string reject_reason;
  transport::Message incoming;
  if (io.Receive(&incoming) != net::FramedStream::RecvStatus::kMessage) {
    // Nothing usable arrived (silent peer, garbage, or shutdown closed the
    // stream); there is no one to send a reject to, and no handshake was
    // rejected — the connection just never got off the ground.
    ServerObs::Settle settle;
    settle.timed_out = io.timed_out;
    settle.bytes_in = io.framed.bytes_received();
    obs_.OnClosed(settle);
    io.span.set_outcome(io.timed_out ? "idle-timeout" : "never-started");
    return;
  }
  // Admin and replication verbs claim the whole connection before any
  // "@hello".
  if (incoming.label == kStatsLabel) {
    ServeStats(io, stream);
    return;
  }
  if (incoming.label == kLogFetchLabel) {
    ServeLogFetch(io, incoming, stream);
    return;
  }
  if (incoming.label == kPullLabel) {
    ServePull(io, incoming, stream);
    return;
  }
  std::unique_ptr<recon::Reconciler> protocol;
  if (!DecodeHello(incoming, &hello)) {
    reject_reason = "expected a well-formed " + std::string(kHelloLabel) +
                    " frame, got \"" + incoming.label + "\"";
  } else if (!registry_->Contains(hello.protocol) ||
             (protocol = registry_->Create(hello.protocol, options_.context,
                                           options_.params)) == nullptr) {
    reject_reason = "unknown protocol \"" + hello.protocol + "\"";
  }
  if (!reject_reason.empty()) {
    RejectFrame reject;
    reject.reason = reject_reason;
    reject.protocols = registry_->ListProtocols();
    io.Send(EncodeReject(reject));
    stream->Close();
    ServerObs::Settle settle;
    settle.rejected = true;
    settle.bytes_in = io.framed.bytes_received();
    settle.bytes_out = io.framed.bytes_sent();
    obs_.OnClosed(settle);
    io.span.set_outcome("rejected");
    return;
  }

  const auto start_time = std::chrono::steady_clock::now();
  io.span.set_protocol(hello.protocol);
  AdoptTrace(io, hello.trace, kHelloSpanSalt);
  // Pin the session to one immutable canonical generation: the snapshot
  // (kept alive by this shared_ptr for the whole connection) supplies both
  // the point set and, when caching is on, the precomputed sketches. The
  // replication position is read under the same lock the write path holds,
  // so the (snapshot, replica_seq) pair is one consistent view.
  std::shared_ptr<const SketchSnapshot> snapshot;
  uint64_t served_seq = 0;
  {
    MutexLock lock(replica_mu_);
    snapshot = store_.Snapshot();
    served_seq = replica_seq_;
  }
  const std::unique_ptr<recon::PartySession> bob =
      protocol->MakeBobSession(snapshot->points(), snapshot.get());

  {
    AcceptFrame ack;
    ack.protocol = hello.protocol;
    ack.server_set_size = snapshot->size();
    ack.will_send_result_set = hello.want_result_set;
    ack.generation = snapshot->generation();
    ack.replica_seq = served_seq;
    io.Send(EncodeAccept(ack));
  }

  // -------------------------------------------------------- session pump
  io.span.BeginPhase("rounds");
  recon::ReconResult result;
  bool pumped_ok = true;
  SessionError pump_error = SessionError::kNone;
  for (transport::Message& opening : bob->Start()) {
    if (!io.Send(opening)) {
      pumped_ok = false;
      pump_error = SessionError::kTransportClosed;
      break;
    }
  }
  size_t deliveries = 0;
  while (pumped_ok && !bob->IsDone()) {
    const auto status = io.Receive(&incoming);
    if (status != net::FramedStream::RecvStatus::kMessage) {
      pumped_ok = false;
      pump_error = io.framed.error();
      break;
    }
    if (IsControlLabel(incoming.label)) {
      // The control plane is quiet during the protocol phase.
      pumped_ok = false;
      pump_error = SessionError::kUnexpectedMessage;
      break;
    }
    if (++deliveries > options_.max_deliveries) {
      pumped_ok = false;
      pump_error = SessionError::kStalled;
      break;
    }
    for (transport::Message& reply : bob->OnMessage(std::move(incoming))) {
      if (!io.Send(reply)) {
        pumped_ok = false;
        pump_error = SessionError::kTransportClosed;
        break;
      }
    }
  }

  result = bob->TakeResult();
  if (!pumped_ok) {
    result.success = false;
    if (result.error == SessionError::kNone) result.error = pump_error;
  }

  // ------------------------------------------------------------- result
  io.span.BeginPhase("result");
  ResultFrame result_frame;
  result_frame.result = result;
  result_frame.has_set = hello.want_result_set && result.success;
  if (!result_frame.has_set) result_frame.result.bob_final.clear();
  io.Send(EncodeResult(result_frame, options_.context.universe));
  // Drain until the client closes: closing with unread bytes queued would
  // reset the connection and could discard the result frame in flight.
  size_t drained = 0;
  while (drained++ < options_.max_deliveries &&
         io.Receive(&incoming) == net::FramedStream::RecvStatus::kMessage) {
  }
  stream->Close();

  SettleSession(io, hello.protocol, result.success, SecondsSince(start_time));
}

void SyncServer::SettleSession(SessionIo& io, const std::string& name,
                               bool success, double wall_seconds) {
  ServerObs::Settle settle;
  settle.session_counted = true;
  settle.protocol = name;
  settle.success = success;
  settle.wall_seconds = wall_seconds;
  settle.timed_out = io.timed_out;
  settle.bytes_in = io.framed.bytes_received();
  settle.bytes_out = io.framed.bytes_sent();
  obs_.OnClosed(settle);
  io.span.set_outcome(success         ? "ok"
                      : io.timed_out  ? "idle-timeout"
                                      : "fail");
  io.span.Finish();
}

void SyncServer::ServeStats(SessionIo& io, net::ByteStream* stream) {
  const auto start_time = std::chrono::steady_clock::now();
  io.span.set_protocol(kStatsLabel);
  io.span.BeginPhase("result");
  const bool ok = io.Send(EncodeStatsReply(RenderMetrics()));
  transport::Message incoming;
  size_t drained = 0;
  while (drained++ < options_.max_deliveries &&
         io.Receive(&incoming) == net::FramedStream::RecvStatus::kMessage) {
  }
  stream->Close();
  SettleSession(io, kStatsLabel, ok, SecondsSince(start_time));
}

void SyncServer::ServeLogFetch(SessionIo& io, const transport::Message& first,
                               net::ByteStream* stream) {
  const auto start_time = std::chrono::steady_clock::now();
  io.span.set_protocol(kLogFetchLabel);
  LogFetchFrame fetch;
  bool ok = DecodeLogFetch(first, &fetch);
  if (!ok) {
    RejectFrame reject;
    reject.reason = "malformed " + std::string(kLogFetchLabel) + " frame";
    reject.protocols = registry_->ListProtocols();
    io.Send(EncodeReject(reject));
    stream->Close();
    ServerObs::Settle settle;
    settle.rejected = true;
    settle.bytes_in = io.framed.bytes_received();
    settle.bytes_out = io.framed.bytes_sent();
    obs_.OnClosed(settle);
    io.span.set_outcome("rejected");
    return;
  }
  AdoptTrace(io, fetch.trace, kLogFetchSpanSalt);
  io.span.BeginPhase("result");
  LogBatchFrame batch;
  {
    MutexLock lock(replica_mu_);
    batch = BuildLogBatch(fetch, options_.changelog, *store_.Snapshot(),
                          replica_seq_, repair_dirty_, options_.context,
                          options_.log_fetch_max_entries);
  }
  ok = io.Send(EncodeLogBatch(batch, options_.context.universe));
  // Drain until the fetcher closes, as after "@result" (see above).
  transport::Message incoming;
  size_t drained = 0;
  while (drained++ < options_.max_deliveries &&
         io.Receive(&incoming) == net::FramedStream::RecvStatus::kMessage) {
  }
  stream->Close();
  SettleSession(io, kLogFetchLabel, ok, SecondsSince(start_time));
}

void SyncServer::ServePull(SessionIo& io, const transport::Message& first,
                           net::ByteStream* stream) {
  const auto start_time = std::chrono::steady_clock::now();
  PullFrame pull;
  std::string reject_reason;
  std::unique_ptr<recon::Reconciler> protocol;
  if (!DecodePull(first, &pull)) {
    reject_reason = "malformed " + std::string(kPullLabel) + " frame";
  } else if (!registry_->Contains(pull.protocol) ||
             (protocol = registry_->Create(pull.protocol, options_.context,
                                           options_.params)) == nullptr) {
    reject_reason = "unknown protocol \"" + pull.protocol + "\"";
  }
  if (!reject_reason.empty()) {
    RejectFrame reject;
    reject.reason = reject_reason;
    reject.protocols = registry_->ListProtocols();
    io.Send(EncodeReject(reject));
    stream->Close();
    ServerObs::Settle settle;
    settle.rejected = true;
    settle.bytes_in = io.framed.bytes_received();
    settle.bytes_out = io.framed.bytes_sent();
    obs_.OnClosed(settle);
    io.span.set_outcome("rejected");
    return;
  }
  io.span.set_protocol(std::string(kPullLabel) + ":" + pull.protocol);
  AdoptTrace(io, pull.trace, kPullSpanSalt);

  std::shared_ptr<const SketchSnapshot> snapshot;
  uint64_t served_seq = 0;
  bool dirty = false;
  {
    MutexLock lock(replica_mu_);
    snapshot = store_.Snapshot();
    served_seq = replica_seq_;
    dirty = repair_dirty_;
  }
  // The puller runs Bob; this host is Alice — the direction that moves the
  // PULLER's set toward this host's (see server/handshake.h).
  const std::unique_ptr<recon::PartySession> alice =
      protocol->MakeAliceSession(snapshot->points());
  {
    PullAcceptFrame ack;
    ack.protocol = pull.protocol;
    ack.server_set_size = snapshot->size();
    ack.seq = served_seq;
    ack.generation = snapshot->generation();
    ack.dirty = dirty;
    io.Send(EncodePullAccept(ack));
  }

  io.span.BeginPhase("rounds");
  bool pumped_ok = true;
  for (transport::Message& opening : alice->Start()) {
    if (!io.Send(opening)) {
      pumped_ok = false;
      break;
    }
  }
  // Pump until the puller closes the stream: Alice's side of a session has
  // no terminal frame of its own (one-shot protocols end with Alice silent
  // and Bob done), so the close IS the end-of-pull signal.
  transport::Message incoming;
  size_t deliveries = 0;
  while (pumped_ok) {
    const auto status = io.Receive(&incoming);
    if (status == net::FramedStream::RecvStatus::kClosed) break;
    if (status != net::FramedStream::RecvStatus::kMessage ||
        IsControlLabel(incoming.label) ||
        ++deliveries > options_.max_deliveries) {
      pumped_ok = false;
      break;
    }
    for (transport::Message& reply : alice->OnMessage(std::move(incoming))) {
      if (!io.Send(reply)) {
        pumped_ok = false;
        break;
      }
    }
  }
  stream->Close();
  SettleSession(io, std::string(kPullLabel) + ":" + pull.protocol, pumped_ok,
                SecondsSince(start_time));
}

std::shared_ptr<const SketchSnapshot> SyncServer::ApplyUpdate(
    const PointSet& inserts, const PointSet& erases) {
  return ApplyUpdate(inserts, erases, obs::TraceContext());
}

std::shared_ptr<const SketchSnapshot> SyncServer::ApplyUpdate(
    const PointSet& inserts, const PointSet& erases,
    const obs::TraceContext& trace) {
  MutexLock lock(replica_mu_);
  std::shared_ptr<const SketchSnapshot> snap =
      store_.ApplyUpdate(inserts, erases);
  if (options_.changelog != nullptr) {
    replica::ChangeEntry entry;
    entry.seq = ++replica_seq_;
    entry.inserts = inserts;
    entry.erases = erases;
    entry.append_micros = clock_->NowMicros();
    entry.trace_hi = trace.trace_hi;
    entry.trace_lo = trace.trace_lo;
    options_.changelog->Append(std::move(entry));
    replica_seq_gauge_->Set(static_cast<int64_t>(replica_seq_));
  }
  return snap;
}

std::shared_ptr<const SketchSnapshot> SyncServer::ApplyReplicated(
    const replica::ChangeEntry& entry) {
  MutexLock lock(replica_mu_);
  if (entry.seq <= replica_seq_) return store_.Snapshot();
  RSR_CHECK_MSG(entry.seq == replica_seq_ + 1,
                "replicated entry would leave a seq gap");
  std::shared_ptr<const SketchSnapshot> snap =
      store_.ApplyUpdate(entry.inserts, entry.erases);
  replica_seq_ = entry.seq;
  replica_seq_gauge_->Set(static_cast<int64_t>(replica_seq_));
  if (options_.changelog != nullptr) options_.changelog->Append(entry);
  return snap;
}

std::shared_ptr<const SketchSnapshot> SyncServer::InstallRepair(
    const PointSet& inserts, const PointSet& erases, uint64_t seq,
    bool exact) {
  MutexLock lock(replica_mu_);
  std::shared_ptr<const SketchSnapshot> snap =
      store_.ApplyUpdate(inserts, erases);
  if (exact) {
    replica_seq_ = seq;
    repair_dirty_ = false;
    if (options_.changelog != nullptr) options_.changelog->MarkSnapshot(seq);
  } else {
    // The set now corresponds to no journal position: stay at the old seq
    // (so a later exact repair re-bases correctly) and flag the state.
    repair_dirty_ = true;
  }
  replica_seq_gauge_->Set(static_cast<int64_t>(replica_seq_));
  repair_dirty_gauge_->Set(repair_dirty_ ? 1 : 0);
  return snap;
}

uint64_t SyncServer::replica_seq() const {
  MutexLock lock(replica_mu_);
  return replica_seq_;
}

bool SyncServer::repair_dirty() const {
  MutexLock lock(replica_mu_);
  return repair_dirty_;
}

std::string SyncServer::DumpStats() const {
  uint64_t generation = 0;
  uint64_t seq = 0;
  {
    MutexLock lock(replica_mu_);
    generation = store_.Snapshot()->generation();
    seq = replica_seq_;
  }
  return rsr::server::DumpStats(metrics(), generation, seq);
}

bool SyncServer::Start(std::unique_ptr<net::TcpListener> listener) {
  if (listener == nullptr || accept_thread_.joinable()) return false;
  {
    MutexLock lock(queue_mu_);
    stopping_ = false;
  }
  listener_ = std::move(listener);
  const size_t worker_count =
      options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(worker_count);
  for (size_t i = 0; i < worker_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void SyncServer::Stop() {
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Close queued connections so draining them fails fast instead of
    // blocking a worker on a client that never speaks.
    MutexLock lock(queue_mu_);
    stopping_ = true;
    for (const PendingConn& pending : pending_) pending.stream->Close();
    queue_cv_.NotifyAll();
  }
  {
    MutexLock lock(active_mu_);
    for (net::ByteStream* stream : active_) stream->Close();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  listener_.reset();
}

uint16_t SyncServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

SyncServerMetrics SyncServer::metrics() const { return obs_.LegacyMetrics(); }

void SyncServer::AcceptLoop() {
  for (;;) {
    std::unique_ptr<net::TcpStream> conn = listener_->Accept();
    if (conn == nullptr) return;  // listener closed
    MutexLock lock(queue_mu_);
    pending_.push_back(
        PendingConn{std::move(conn), std::chrono::steady_clock::now()});
    queue_cv_.NotifyOne();
  }
}

void SyncServer::WorkerLoop() {
  for (;;) {
    PendingConn conn;
    {
      MutexLock lock(queue_mu_);
      while (!stopping_ && pending_.empty()) queue_cv_.Wait(queue_mu_);
      // Drain queued connections even when stopping, so accepted clients
      // are served (their streams are already closed, so it fails fast).
      if (pending_.empty()) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
      // Register in active_ while still holding queue_mu_: Stop() flips
      // stopping_ under queue_mu_ before sweeping active_, so a stream is
      // either closed by the sweep or closed here — no unclosable window.
      MutexLock active_lock(active_mu_);
      if (stopping_) conn.stream->Close();
      active_.insert(conn.stream.get());
    }
    obs_.ObserveQueueDelay(SecondsSince(conn.enqueued));
    ServeConnection(conn.stream.get());
    {
      MutexLock active_lock(active_mu_);
      active_.erase(conn.stream.get());
    }
  }
}

}  // namespace server
}  // namespace rsr
