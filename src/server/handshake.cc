#include "server/handshake.h"

#include <algorithm>
#include <utility>

#include "util/bitio.h"

namespace rsr {
namespace server {

namespace {

void WriteString(const std::string& s, BitWriter* out) {
  out->WriteVarint(s.size());
  for (char c : s) out->WriteBits(static_cast<uint8_t>(c), 8);
}

bool ReadString(BitReader* in, size_t max_len, std::string* out) {
  uint64_t len = 0;
  if (!in->ReadVarint(&len) || len > max_len) return false;
  out->clear();
  out->reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    uint64_t c = 0;
    if (!in->ReadBits(8, &c)) return false;
    out->push_back(static_cast<char>(c));
  }
  return true;
}

// Optional trailing trace context (DESIGN.md §12). A presence bit leads
// the fields: BitWriter pads frames with zero bits, so a decoder probing
// past the end of an OLD frame reads the bit as 0 and correctly reports
// "no context" (a bare trailing varint would instead mis-decode the
// padding as a present-but-zero field). Old decoders never look this far
// and ignore the section entirely.
void WriteTrailingTrace(const obs::TraceContext& trace, BitWriter* out) {
  out->WriteBit(trace.valid());
  if (!trace.valid()) return;
  out->WriteBits(trace.trace_hi, 64);
  out->WriteBits(trace.trace_lo, 64);
  out->WriteVarint(trace.span_id);
}

// Never fails: an absent or truncated section yields the invalid
// (all-zero) context, which is exactly "this peer sent no context".
void ReadTrailingTrace(BitReader* in, obs::TraceContext* out) {
  *out = obs::TraceContext();
  bool present = false;
  if (!in->ReadBit(&present) || !present) return;
  obs::TraceContext trace;
  if (in->ReadBits(64, &trace.trace_hi) &&
      in->ReadBits(64, &trace.trace_lo) && in->ReadVarint(&trace.span_id) &&
      trace.valid()) {
    *out = trace;
  }
}

constexpr size_t kMaxStringLen = 4096;
// A rendered metrics registry is far bigger than any handshake string but
// still bounded (families x label sets x buckets); 4 MiB is generous.
constexpr size_t kMaxStatsTextLen = 4u << 20;
constexpr size_t kMaxListedProtocols = 4096;
constexpr uint64_t kMaxResultPoints = uint64_t{1} << 32;
constexpr uint64_t kMaxLogEntries = uint64_t{1} << 20;

}  // namespace

bool IsControlLabel(const std::string& label) {
  return !label.empty() && label[0] == '@';
}

transport::Message EncodeHello(const HelloFrame& hello) {
  BitWriter writer;
  WriteString(hello.protocol, &writer);
  writer.WriteVarint(hello.client_set_size);
  writer.WriteBit(hello.want_result_set);
  WriteTrailingTrace(hello.trace, &writer);
  return transport::MakeMessage(kHelloLabel, std::move(writer));
}

bool DecodeHello(const transport::Message& message, HelloFrame* out) {
  if (message.label != kHelloLabel) return false;
  BitReader reader(message.payload);
  if (!ReadString(&reader, kMaxStringLen, &out->protocol) ||
      !reader.ReadVarint(&out->client_set_size) ||
      !reader.ReadBit(&out->want_result_set)) {
    return false;
  }
  ReadTrailingTrace(&reader, &out->trace);
  return true;
}

transport::Message EncodeAccept(const AcceptFrame& accept) {
  BitWriter writer;
  WriteString(accept.protocol, &writer);
  writer.WriteVarint(accept.server_set_size);
  writer.WriteBit(accept.will_send_result_set);
  writer.WriteVarint(accept.generation);
  writer.WriteVarint(accept.replica_seq);
  return transport::MakeMessage(kAcceptLabel, std::move(writer));
}

bool DecodeAccept(const transport::Message& message, AcceptFrame* out) {
  if (message.label != kAcceptLabel) return false;
  BitReader reader(message.payload);
  if (!ReadString(&reader, kMaxStringLen, &out->protocol) ||
      !reader.ReadVarint(&out->server_set_size) ||
      !reader.ReadBit(&out->will_send_result_set)) {
    return false;
  }
  // Optional trailing fields: a server predating the sketch store ends the
  // frame before `generation`, one predating replication before
  // `replica_seq` — each decodes as 0 rather than a handshake failure, so
  // the schema changes stay wire-compatible in both directions (older
  // decoders simply ignore trailing payload bits).
  if (!reader.ReadVarint(&out->generation)) out->generation = 0;
  if (!reader.ReadVarint(&out->replica_seq)) out->replica_seq = 0;
  return true;
}

transport::Message EncodeReject(const RejectFrame& reject) {
  BitWriter writer;
  WriteString(reject.reason, &writer);
  writer.WriteVarint(reject.protocols.size());
  for (const std::string& name : reject.protocols) WriteString(name, &writer);
  return transport::MakeMessage(kRejectLabel, std::move(writer));
}

bool DecodeReject(const transport::Message& message, RejectFrame* out) {
  if (message.label != kRejectLabel) return false;
  BitReader reader(message.payload);
  if (!ReadString(&reader, kMaxStringLen, &out->reason)) return false;
  uint64_t count = 0;
  if (!reader.ReadVarint(&count) || count > kMaxListedProtocols) return false;
  out->protocols.clear();
  out->protocols.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!ReadString(&reader, kMaxStringLen, &name)) return false;
    out->protocols.push_back(std::move(name));
  }
  return true;
}

transport::Message EncodeResult(const ResultFrame& frame,
                                const Universe& universe) {
  const recon::ReconResult& r = frame.result;
  BitWriter writer;
  writer.WriteBit(r.success);
  writer.WriteBits(static_cast<uint64_t>(r.error), 8);
  writer.WriteSignedVarint(r.chosen_level);
  writer.WriteVarint(r.decoded_entries);
  writer.WriteVarint(r.attempts);
  writer.WriteVarint(r.transmitted);
  writer.WriteBit(frame.has_set);
  if (frame.has_set) {
    writer.WriteVarint(r.bob_final.size());
    for (const Point& p : r.bob_final) PackPoint(universe, p, &writer);
  }
  return transport::MakeMessage(kResultLabel, std::move(writer));
}

bool DecodeResult(const transport::Message& message, const Universe& universe,
                  ResultFrame* out) {
  if (message.label != kResultLabel) return false;
  BitReader reader(message.payload);
  recon::ReconResult& r = out->result;
  uint64_t error_code = 0;
  int64_t chosen_level = 0;
  uint64_t decoded_entries = 0, attempts = 0, transmitted = 0;
  if (!reader.ReadBit(&r.success) || !reader.ReadBits(8, &error_code) ||
      !reader.ReadSignedVarint(&chosen_level) ||
      !reader.ReadVarint(&decoded_entries) || !reader.ReadVarint(&attempts) ||
      !reader.ReadVarint(&transmitted) || !reader.ReadBit(&out->has_set)) {
    return false;
  }
  if (error_code >
      static_cast<uint64_t>(recon::SessionError::kProtocolRejected)) {
    return false;
  }
  r.error = static_cast<recon::SessionError>(error_code);
  r.chosen_level = static_cast<int>(chosen_level);
  r.decoded_entries = static_cast<size_t>(decoded_entries);
  r.attempts = static_cast<size_t>(attempts);
  r.transmitted = static_cast<size_t>(transmitted);
  r.bob_final.clear();
  if (out->has_set) {
    uint64_t count = 0;
    if (!reader.ReadVarint(&count) || count > kMaxResultPoints) return false;
    // A count the remaining payload cannot possibly hold is malformed;
    // checking before the reserve keeps a hostile peer from forcing a
    // huge allocation with a small frame. The reserve is further capped
    // so memory grows with data actually decoded, not with the claim.
    const uint64_t per_point_bits =
        static_cast<uint64_t>(std::max(1, universe.BitsPerPoint()));
    if (count > reader.bits_remaining() / per_point_bits) return false;
    r.bob_final.reserve(std::min<uint64_t>(count, uint64_t{1} << 20));
    for (uint64_t i = 0; i < count; ++i) {
      Point p;
      if (!UnpackPoint(universe, &reader, &p)) return false;
      r.bob_final.push_back(std::move(p));
    }
  }
  return true;
}

transport::Message EncodeLogFetch(const LogFetchFrame& fetch) {
  BitWriter writer;
  writer.WriteVarint(fetch.from_seq);
  writer.WriteVarint(fetch.max_entries);
  writer.WriteBit(fetch.want_strata);
  WriteTrailingTrace(fetch.trace, &writer);
  return transport::MakeMessage(kLogFetchLabel, std::move(writer));
}

bool DecodeLogFetch(const transport::Message& message, LogFetchFrame* out) {
  if (message.label != kLogFetchLabel) return false;
  BitReader reader(message.payload);
  if (!reader.ReadVarint(&out->from_seq) ||
      !reader.ReadVarint(&out->max_entries) ||
      !reader.ReadBit(&out->want_strata)) {
    return false;
  }
  ReadTrailingTrace(&reader, &out->trace);
  return true;
}

transport::Message EncodeLogBatch(const LogBatchFrame& batch,
                                  const Universe& universe) {
  BitWriter writer;
  writer.WriteBit(batch.ok);
  writer.WriteBit(batch.complete);
  writer.WriteVarint(batch.last_seq);
  writer.WriteVarint(batch.entries.size());
  for (const replica::ChangeEntry& entry : batch.entries) {
    writer.WriteVarint(entry.seq);
    writer.WriteVarint(entry.inserts.size());
    writer.WriteVarint(entry.erases.size());
    for (const Point& p : entry.inserts) PackPoint(universe, p, &writer);
    for (const Point& p : entry.erases) PackPoint(universe, p, &writer);
  }
  writer.WriteBit(batch.strata.has_value());
  if (batch.strata.has_value()) batch.strata->Serialize(&writer);
  // Trailing section (old decoders stop at the strata; both bits decode
  // as benign zeros from an old frame's padding): the server's dirty
  // flag, then the per-entry observability stamps behind a presence bit
  // so an unstamped batch costs one bit, not 3 varints per entry.
  writer.WriteBit(batch.dirty);
  bool any_meta = false;
  for (const replica::ChangeEntry& entry : batch.entries) {
    if (entry.append_micros != 0 || entry.trace_hi != 0 ||
        entry.trace_lo != 0) {
      any_meta = true;
      break;
    }
  }
  writer.WriteBit(any_meta);
  if (any_meta) {
    for (const replica::ChangeEntry& entry : batch.entries) {
      writer.WriteVarint(entry.append_micros);
      writer.WriteVarint(entry.trace_hi);
      writer.WriteVarint(entry.trace_lo);
    }
  }
  return transport::MakeMessage(kLogBatchLabel, std::move(writer));
}

bool DecodeLogBatch(const transport::Message& message,
                    const Universe& universe,
                    const StrataConfig& strata_config, LogBatchFrame* out) {
  if (message.label != kLogBatchLabel) return false;
  BitReader reader(message.payload);
  uint64_t count = 0;
  if (!reader.ReadBit(&out->ok) || !reader.ReadBit(&out->complete) ||
      !reader.ReadVarint(&out->last_seq) || !reader.ReadVarint(&count) ||
      count > kMaxLogEntries) {
    return false;
  }
  const uint64_t per_point_bits =
      static_cast<uint64_t>(std::max(1, universe.BitsPerPoint()));
  out->entries.clear();
  out->entries.reserve(std::min<uint64_t>(count, 4096));
  for (uint64_t i = 0; i < count; ++i) {
    replica::ChangeEntry entry;
    uint64_t inserts = 0, erases = 0;
    if (!reader.ReadVarint(&entry.seq) || !reader.ReadVarint(&inserts) ||
        !reader.ReadVarint(&erases) ||
        inserts + erases > reader.bits_remaining() / per_point_bits) {
      return false;
    }
    entry.inserts.reserve(inserts);
    entry.erases.reserve(erases);
    for (uint64_t j = 0; j < inserts + erases; ++j) {
      Point p;
      if (!UnpackPoint(universe, &reader, &p)) return false;
      (j < inserts ? entry.inserts : entry.erases).push_back(std::move(p));
    }
    out->entries.push_back(std::move(entry));
  }
  bool has_strata = false;
  if (!reader.ReadBit(&has_strata)) return false;
  out->strata.reset();
  if (has_strata) {
    out->strata = StrataEstimator::Deserialize(strata_config, &reader);
    if (!out->strata.has_value()) return false;
  }
  // Trailing section: absent on old frames (padding bits read as 0 —
  // not dirty, no stamps — matching old semantics). A set meta bit was
  // genuinely written (padding is never 1), so truncation after it is a
  // malformed frame.
  out->dirty = false;
  bool has_meta = false;
  if (!reader.ReadBit(&out->dirty)) return true;
  if (!reader.ReadBit(&has_meta) || !has_meta) return true;
  for (replica::ChangeEntry& entry : out->entries) {
    if (!reader.ReadVarint(&entry.append_micros) ||
        !reader.ReadVarint(&entry.trace_hi) ||
        !reader.ReadVarint(&entry.trace_lo)) {
      return false;
    }
  }
  return true;
}

transport::Message EncodePull(const PullFrame& pull) {
  BitWriter writer;
  WriteString(pull.protocol, &writer);
  writer.WriteVarint(pull.client_set_size);
  WriteTrailingTrace(pull.trace, &writer);
  return transport::MakeMessage(kPullLabel, std::move(writer));
}

bool DecodePull(const transport::Message& message, PullFrame* out) {
  if (message.label != kPullLabel) return false;
  BitReader reader(message.payload);
  if (!ReadString(&reader, kMaxStringLen, &out->protocol) ||
      !reader.ReadVarint(&out->client_set_size)) {
    return false;
  }
  ReadTrailingTrace(&reader, &out->trace);
  return true;
}

transport::Message EncodePullAccept(const PullAcceptFrame& accept) {
  BitWriter writer;
  WriteString(accept.protocol, &writer);
  writer.WriteVarint(accept.server_set_size);
  writer.WriteVarint(accept.seq);
  writer.WriteVarint(accept.generation);
  writer.WriteBit(accept.dirty);
  return transport::MakeMessage(kPullAcceptLabel, std::move(writer));
}

bool DecodePullAccept(const transport::Message& message,
                      PullAcceptFrame* out) {
  if (message.label != kPullAcceptLabel) return false;
  BitReader reader(message.payload);
  return ReadString(&reader, kMaxStringLen, &out->protocol) &&
         reader.ReadVarint(&out->server_set_size) &&
         reader.ReadVarint(&out->seq) && reader.ReadVarint(&out->generation) &&
         reader.ReadBit(&out->dirty);
}

transport::Message EncodeStatsRequest() {
  BitWriter writer;
  return transport::MakeMessage(kStatsLabel, std::move(writer));
}

bool DecodeStatsRequest(const transport::Message& message) {
  return message.label == kStatsLabel;
}

transport::Message EncodeStatsReply(const std::string& text) {
  BitWriter writer;
  WriteString(text, &writer);
  return transport::MakeMessage(kStatsLabel, std::move(writer));
}

bool DecodeStatsReply(const transport::Message& message, std::string* out) {
  if (message.label != kStatsLabel) return false;
  BitReader reader(message.payload);
  return ReadString(&reader, kMaxStatsTextLen, out);
}

}  // namespace server
}  // namespace rsr
