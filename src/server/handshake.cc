#include "server/handshake.h"

#include <algorithm>
#include <utility>

#include "util/bitio.h"

namespace rsr {
namespace server {

namespace {

void WriteString(const std::string& s, BitWriter* out) {
  out->WriteVarint(s.size());
  for (char c : s) out->WriteBits(static_cast<uint8_t>(c), 8);
}

bool ReadString(BitReader* in, size_t max_len, std::string* out) {
  uint64_t len = 0;
  if (!in->ReadVarint(&len) || len > max_len) return false;
  out->clear();
  out->reserve(len);
  for (uint64_t i = 0; i < len; ++i) {
    uint64_t c = 0;
    if (!in->ReadBits(8, &c)) return false;
    out->push_back(static_cast<char>(c));
  }
  return true;
}

constexpr size_t kMaxStringLen = 4096;
constexpr size_t kMaxListedProtocols = 4096;
constexpr uint64_t kMaxResultPoints = uint64_t{1} << 32;

}  // namespace

bool IsControlLabel(const std::string& label) {
  return !label.empty() && label[0] == '@';
}

transport::Message EncodeHello(const HelloFrame& hello) {
  BitWriter writer;
  WriteString(hello.protocol, &writer);
  writer.WriteVarint(hello.client_set_size);
  writer.WriteBit(hello.want_result_set);
  return transport::MakeMessage(kHelloLabel, std::move(writer));
}

bool DecodeHello(const transport::Message& message, HelloFrame* out) {
  if (message.label != kHelloLabel) return false;
  BitReader reader(message.payload);
  return ReadString(&reader, kMaxStringLen, &out->protocol) &&
         reader.ReadVarint(&out->client_set_size) &&
         reader.ReadBit(&out->want_result_set);
}

transport::Message EncodeAccept(const AcceptFrame& accept) {
  BitWriter writer;
  WriteString(accept.protocol, &writer);
  writer.WriteVarint(accept.server_set_size);
  writer.WriteBit(accept.will_send_result_set);
  writer.WriteVarint(accept.generation);
  return transport::MakeMessage(kAcceptLabel, std::move(writer));
}

bool DecodeAccept(const transport::Message& message, AcceptFrame* out) {
  if (message.label != kAcceptLabel) return false;
  BitReader reader(message.payload);
  if (!ReadString(&reader, kMaxStringLen, &out->protocol) ||
      !reader.ReadVarint(&out->server_set_size) ||
      !reader.ReadBit(&out->will_send_result_set)) {
    return false;
  }
  // Optional trailing field: a server predating the sketch store ends the
  // frame here, which decodes as generation 0 rather than a handshake
  // failure — the schema change stays wire-compatible in both directions
  // (older decoders simply ignore trailing payload bits).
  if (!reader.ReadVarint(&out->generation)) out->generation = 0;
  return true;
}

transport::Message EncodeReject(const RejectFrame& reject) {
  BitWriter writer;
  WriteString(reject.reason, &writer);
  writer.WriteVarint(reject.protocols.size());
  for (const std::string& name : reject.protocols) WriteString(name, &writer);
  return transport::MakeMessage(kRejectLabel, std::move(writer));
}

bool DecodeReject(const transport::Message& message, RejectFrame* out) {
  if (message.label != kRejectLabel) return false;
  BitReader reader(message.payload);
  if (!ReadString(&reader, kMaxStringLen, &out->reason)) return false;
  uint64_t count = 0;
  if (!reader.ReadVarint(&count) || count > kMaxListedProtocols) return false;
  out->protocols.clear();
  out->protocols.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    if (!ReadString(&reader, kMaxStringLen, &name)) return false;
    out->protocols.push_back(std::move(name));
  }
  return true;
}

transport::Message EncodeResult(const ResultFrame& frame,
                                const Universe& universe) {
  const recon::ReconResult& r = frame.result;
  BitWriter writer;
  writer.WriteBit(r.success);
  writer.WriteBits(static_cast<uint64_t>(r.error), 8);
  writer.WriteSignedVarint(r.chosen_level);
  writer.WriteVarint(r.decoded_entries);
  writer.WriteVarint(r.attempts);
  writer.WriteVarint(r.transmitted);
  writer.WriteBit(frame.has_set);
  if (frame.has_set) {
    writer.WriteVarint(r.bob_final.size());
    for (const Point& p : r.bob_final) PackPoint(universe, p, &writer);
  }
  return transport::MakeMessage(kResultLabel, std::move(writer));
}

bool DecodeResult(const transport::Message& message, const Universe& universe,
                  ResultFrame* out) {
  if (message.label != kResultLabel) return false;
  BitReader reader(message.payload);
  recon::ReconResult& r = out->result;
  uint64_t error_code = 0;
  int64_t chosen_level = 0;
  uint64_t decoded_entries = 0, attempts = 0, transmitted = 0;
  if (!reader.ReadBit(&r.success) || !reader.ReadBits(8, &error_code) ||
      !reader.ReadSignedVarint(&chosen_level) ||
      !reader.ReadVarint(&decoded_entries) || !reader.ReadVarint(&attempts) ||
      !reader.ReadVarint(&transmitted) || !reader.ReadBit(&out->has_set)) {
    return false;
  }
  if (error_code >
      static_cast<uint64_t>(recon::SessionError::kProtocolRejected)) {
    return false;
  }
  r.error = static_cast<recon::SessionError>(error_code);
  r.chosen_level = static_cast<int>(chosen_level);
  r.decoded_entries = static_cast<size_t>(decoded_entries);
  r.attempts = static_cast<size_t>(attempts);
  r.transmitted = static_cast<size_t>(transmitted);
  r.bob_final.clear();
  if (out->has_set) {
    uint64_t count = 0;
    if (!reader.ReadVarint(&count) || count > kMaxResultPoints) return false;
    // A count the remaining payload cannot possibly hold is malformed;
    // checking before the reserve keeps a hostile peer from forcing a
    // huge allocation with a small frame. The reserve is further capped
    // so memory grows with data actually decoded, not with the claim.
    const uint64_t per_point_bits =
        static_cast<uint64_t>(std::max(1, universe.BitsPerPoint()));
    if (count > reader.bits_remaining() / per_point_bits) return false;
    r.bob_final.reserve(std::min<uint64_t>(count, uint64_t{1} << 20));
    for (uint64_t i = 0; i < count; ++i) {
      Point p;
      if (!UnpackPoint(universe, &reader, &p)) return false;
      r.bob_final.push_back(std::move(p));
    }
  }
  return true;
}

}  // namespace server
}  // namespace rsr
