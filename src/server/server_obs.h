// Registry-backed instrumentation shared by both serving hosts.
//
// ServerObs owns the host's obs::MetricsRegistry and the serving-layer
// instruments both SyncServer and AsyncSyncServer record into: accept /
// active / peak gauges, per-protocol session outcome counters and
// latency histograms, transport byte counters, handshake rejects, idle
// timeouts, and the host-specific scheduling probes (worker-queue delay
// on the threaded host, accept-to-first-frame delay on the async one).
// The pre-existing SyncServerMetrics snapshot — and through it the
// byte-compatible DumpStats() rendering — is reconstructed from these
// instruments by LegacyMetrics(), so the flat counter struct became a
// read-side view instead of a mutex-guarded store.
//
// Hot-path cost: connection open/close touch relaxed atomics only; the
// per-protocol instrument bundle is resolved under a small mutex once
// per session settle (the same cadence the old metrics_mu_ lock had).
// `latency_probes` gates the optional probes (queue delay, accept-to-
// first-frame) so the E16 overhead bench can compare instrumented vs
// no-op serving; session outcome counters and latency histograms stay
// on either way — they are the accounting DumpStats() is rebuilt from.
// See DESIGN.md §12.

#ifndef RSR_SERVER_SERVER_OBS_H_
#define RSR_SERVER_SERVER_OBS_H_

#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/server_stats.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace server {

struct ServerObsOptions {
  /// Enables the optional latency probes (queue delay, accept-to-first-
  /// frame; the hosts also gate event-loop and store probes on this).
  bool latency_probes = true;
  /// Per-session trace spans are emitted here; null disables tracing.
  obs::TraceSink* trace_sink = nullptr;
};

class ServerObs {
 public:
  explicit ServerObs(const ServerObsOptions& options);

  ServerObs(const ServerObs&) = delete;
  ServerObs& operator=(const ServerObs&) = delete;

  obs::MetricsRegistry& registry() { return registry_; }
  const obs::MetricsRegistry& registry() const { return registry_; }
  obs::TraceSink* trace_sink() const { return options_.trace_sink; }
  bool latency_probes() const { return options_.latency_probes; }

  /// Sampling decision counters (rsr_trace_spans_total{decision=...}),
  /// wired into every SessionSpan via SetSampling so the registry
  /// accounts for spans the policy shed.
  obs::Counter* span_emitted() const { return span_emitted_; }
  obs::Counter* span_dropped() const { return span_dropped_; }

  /// Connection accepted: bumps accepted/active/peak.
  void OnAccepted();

  /// Everything one closing connection settles, exactly once.
  struct Settle {
    /// Session accounting happens only when a session ran to a counted
    /// end (the old started && finished condition); `protocol` then
    /// names its per-protocol bundle.
    bool session_counted = false;
    std::string protocol;
    bool success = false;
    double wall_seconds = 0.0;
    bool rejected = false;
    bool timed_out = false;
    size_t bytes_in = 0;
    size_t bytes_out = 0;
  };
  void OnClosed(const Settle& settle);

  /// Threaded host: accept-to-dequeue wait in the worker queue.
  void ObserveQueueDelay(double seconds);
  /// Async host: accept-to-first-decoded-frame delay.
  void ObserveAcceptToFirstFrame(double seconds);

  /// The legacy flat snapshot (server/server_stats.h), rebuilt from the
  /// registry instruments; feeds the byte-compatible DumpStats().
  SyncServerMetrics LegacyMetrics() const;

 private:
  struct ProtocolInstruments {
    obs::Counter* ok = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Histogram* seconds = nullptr;
  };
  /// Finds or registers the per-protocol bundle.
  ProtocolInstruments& ProtocolFor(const std::string& name)
      RSR_REQUIRES(mu_);

  const ServerObsOptions options_;
  obs::MetricsRegistry registry_;

  obs::Counter* accepted_;
  obs::Gauge* active_;
  obs::Gauge* peak_active_;
  obs::Counter* rejected_;
  obs::Counter* idle_timeouts_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Histogram* queue_delay_;
  obs::Histogram* accept_to_first_frame_;
  obs::Counter* span_emitted_;
  obs::Counter* span_dropped_;

  /// Guards the per-protocol bundle map only (session-settle cadence);
  /// the instruments themselves record lock-free.
  mutable Mutex mu_;
  std::map<std::string, ProtocolInstruments> per_protocol_
      RSR_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SERVER_OBS_H_
