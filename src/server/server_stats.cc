#include "server/server_stats.h"

#include <cstdio>

namespace rsr {
namespace server {

std::string DumpStats(const SyncServerMetrics& metrics, uint64_t generation,
                      uint64_t replica_seq) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof line,
                "generation=%llu replica_seq=%llu accepted=%zu active=%zu "
                "peak_active=%zu ok=%zu failed=%zu rejected=%zu "
                "idle_timeouts=%zu bytes_in=%zu bytes_out=%zu\n",
                static_cast<unsigned long long>(generation),
                static_cast<unsigned long long>(replica_seq),
                metrics.connections_accepted, metrics.active_sessions,
                metrics.peak_active_sessions, metrics.syncs_completed,
                metrics.syncs_failed, metrics.handshakes_rejected,
                metrics.idle_timeouts, metrics.bytes_in, metrics.bytes_out);
  out += line;
  for (const auto& [name, stats] : metrics.per_protocol) {
    const double mean_wall_ms =
        stats.syncs > 0 ? 1e3 * stats.wall_seconds /
                              static_cast<double>(stats.syncs)
                        : 0.0;
    std::snprintf(line, sizeof line,
                  "%s: ok=%zu failed=%zu bytes_in=%zu bytes_out=%zu "
                  "mean_wall_ms=%.3f\n",
                  name.c_str(), stats.syncs, stats.failures, stats.bytes_in,
                  stats.bytes_out, mean_wall_ms);
    out += line;
  }
  return out;
}

}  // namespace server
}  // namespace rsr
