// Replication serving logic shared by both sync hosts.
//
// Answering an "@log-fetch" is the same computation whether the host is
// the threaded SyncServer or the epoll AsyncSyncServer: slice the
// changelog tail after the requested position, report the host's
// replication position, and — when the tail is gone (or explicitly asked
// for) — attach the exact-keys strata estimator so the fetching replica
// can size its protocol repair before choosing one. Both hosts call
// BuildLogBatch under their replication lock so the (entries, last_seq,
// strata) triple is one consistent view. See DESIGN.md §10.

#ifndef RSR_SERVER_REPLICA_SERVING_H_
#define RSR_SERVER_REPLICA_SERVING_H_

#include <cstddef>
#include <cstdint>

#include "iblt/strata.h"
#include "replica/changelog.h"
#include "server/handshake.h"
#include "server/sketch_store.h"

namespace rsr {
namespace server {

/// The exact-keys strata estimator of `snapshot`'s point set under the
/// baseline config recon::ExactReconStrataConfig(context.seed): the cached
/// one when the snapshot materializes sketches, built from the points
/// otherwise. This is the estimator every ExactBob session ships, so a
/// repair sized from it matches what the repair protocol will see.
StrataEstimator SnapshotStrata(const SketchSnapshot& snapshot,
                               const recon::ProtocolContext& context);

/// Answers one "@log-fetch". `changelog` may be null (a host that does not
/// journal serves ok = false, forcing the fetcher onto the repair path);
/// `replica_seq` is the host's replication position, reported as
/// last_seq. `repair_dirty` is the host's approximate-repair flag: a
/// dirty host's tail does not replay onto the canonical set-at-from_seq,
/// so the batch both carries the flag (the fetcher must repair, not
/// replay) and attaches the strata estimator unconditionally so the
/// repair can be sized from this one round trip. `max_entries_cap`
/// bounds the slice regardless of what the fetch asked for. Call under
/// the host's replication lock so (entries, last_seq, dirty, strata) are
/// one consistent view.
LogBatchFrame BuildLogBatch(const LogFetchFrame& fetch,
                            const replica::Changelog* changelog,
                            const SketchSnapshot& snapshot,
                            uint64_t replica_seq, bool repair_dirty,
                            const recon::ProtocolContext& context,
                            size_t max_entries_cap);

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_REPLICA_SERVING_H_
