// Control-plane frames of the sync serving layer.
//
// A sync session is framed protocol traffic (net/frame.h) bracketed by a
// tiny negotiation: the client opens with "@hello" naming a registry
// protocol, the server answers "@accept" (and both sides start their
// PartySessions) or "@reject" (carrying the reason plus the server's
// ListProtocols() so the error is self-describing), and after Bob's
// endpoint finishes the server closes with "@result" carrying the
// ReconResult — optionally including the reconciled point set so the
// client can verify it bit-for-bit against a local run. Control labels
// start with '@', which no protocol message label uses, so the two planes
// cannot collide. Layout details in DESIGN.md §6.

#ifndef RSR_SERVER_HANDSHAKE_H_
#define RSR_SERVER_HANDSHAKE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "iblt/strata.h"
#include "obs/trace_context.h"
#include "recon/protocol.h"
#include "replica/changelog.h"
#include "transport/message.h"

namespace rsr {
namespace server {

/// Reserved control-plane labels. Protocol messages never start with '@'.
inline constexpr char kHelloLabel[] = "@hello";
inline constexpr char kAcceptLabel[] = "@accept";
inline constexpr char kRejectLabel[] = "@reject";
inline constexpr char kResultLabel[] = "@result";
// Replication verbs (DESIGN.md §10): a replica tails a peer's changelog
// with "@log-fetch"/"@log-batch", and repairs by running Bob locally
// against a peer-hosted Alice session opened with "@pull"/"@pull-accept".
inline constexpr char kLogFetchLabel[] = "@log-fetch";
inline constexpr char kLogBatchLabel[] = "@log-batch";
inline constexpr char kPullLabel[] = "@pull";
inline constexpr char kPullAcceptLabel[] = "@pull-accept";
// Admin verb (DESIGN.md §12): "@stats" claims the whole connection before
// any "@hello" — the host answers with one "@stats" frame whose payload is
// its metrics registry rendered in the Prometheus text exposition format.
inline constexpr char kStatsLabel[] = "@stats";

/// True for control-plane labels (reserved '@' prefix).
bool IsControlLabel(const std::string& label);

/// Client → server: request a protocol by registry name.
struct HelloFrame {
  std::string protocol;
  uint64_t client_set_size = 0;  ///< Diagnostic; server metrics only.
  bool want_result_set = true;   ///< Ship S'_B back in the result frame.
  /// Optional trace context (DESIGN.md §12): when valid, the server
  /// adopts the trace id so its session span joins the client's. Wire
  /// format is a trailing presence bit + ids — old peers ignore it, and
  /// frames from old peers decode as the invalid (all-zero) context
  /// because BitWriter padding is zeros (the same idiom as the trailing
  /// varints on "@accept", which needs the explicit presence bit here
  /// because a padding bit would otherwise read as a present-but-zero
  /// field).
  obs::TraceContext trace;
};

/// Server → client: the handshake failed.
struct RejectFrame {
  std::string reason;
  std::vector<std::string> protocols;  ///< Server's ListProtocols().
};

/// Server → client: Bob's endpoint finished; its ReconResult. The point
/// set travels only when the client asked for it (want_result_set).
struct ResultFrame {
  recon::ReconResult result;
  bool has_set = false;
};

/// Server → client: handshake accepted. Echoes the agreed protocol and
/// confirms whether the result set will be shipped; `server_set_size` is
/// the canonical set's size (diagnostic). `generation` stamps which
/// canonical-set generation (server/sketch_store.h) the session is pinned
/// to — under churn it is what lets a client (or a load harness asserting
/// match_driver) name the exact set it was reconciled against.
struct AcceptFrame {
  std::string protocol;
  uint64_t server_set_size = 0;
  bool will_send_result_set = true;
  uint64_t generation = 0;
  /// Replication position of the serving host (0 when the host does not
  /// replicate). Unlike `generation` — a host-local snapshot counter —
  /// replica_seq is comparable ACROSS replicas: a client served at
  /// replica_seq s saw the canonical set-at-s, so `writer_seq - s` is its
  /// staleness in mutation batches (bench/bench_e19_replication.cc).
  uint64_t replica_seq = 0;
};

/// Replica → peer: ship me changelog entries after `from_seq`.
struct LogFetchFrame {
  uint64_t from_seq = 0;
  uint64_t max_entries = 0;  ///< 0 = the server's cap.
  /// Ask for the peer's exact-keys strata estimator even when the tail is
  /// available (a dirty replica needs the difference estimate, not the
  /// entries; see replica/replica_node.h).
  bool want_strata = false;
  /// Optional trace context; same trailing idiom as HelloFrame::trace.
  obs::TraceContext trace;
};

/// Peer → replica: the changelog tail (or the news that it is gone).
struct LogBatchFrame {
  /// False: `from_seq` has fallen off the peer's ring — catch up by
  /// protocol repair instead. The strata estimator is attached so the
  /// repair can be sized before a protocol is chosen.
  bool ok = false;
  bool complete = false;  ///< Entries reach last_seq (no cap truncation).
  uint64_t last_seq = 0;  ///< Peer's replication position.
  std::vector<replica::ChangeEntry> entries;
  /// Peer's exact-keys strata estimator (recon::ExactReconStrataConfig),
  /// attached when !ok or when the fetch asked for it.
  std::optional<StrataEstimator> strata;
  /// True when the serving peer's set is the product of an approximate
  /// repair not yet squared with its log: its tail entries do NOT replay
  /// onto the canonical set-at-from_seq, so a puller must fall back to
  /// protocol repair instead of applying them (the PR 6 soundness gap).
  /// Trailing on the wire; old peers neither send nor see it, and frames
  /// from old peers decode as false (zero padding) — exactly the old
  /// behaviour.
  bool dirty = false;
};

/// Replica → peer: host the Alice side of `protocol` over your canonical
/// set; I run Bob locally and adopt the reconciled result. This is the
/// direction that converges the caller: a protocol moves BOB's set toward
/// Alice's (S'_B ≈ S_A, exactly equal for the exact-key protocols), so the
/// puller must be Bob — an ordinary "@hello" sync would only tell the peer
/// about the caller's set.
struct PullFrame {
  std::string protocol;
  uint64_t client_set_size = 0;  ///< Diagnostic; server metrics only.
  /// Optional trace context; same trailing idiom as HelloFrame::trace.
  obs::TraceContext trace;
};

/// Peer → replica: pull accepted; Alice frames follow.
struct PullAcceptFrame {
  std::string protocol;
  uint64_t server_set_size = 0;
  uint64_t seq = 0;         ///< Replication position the set corresponds to.
  uint64_t generation = 0;  ///< Peer-local snapshot generation (diagnostic).
  /// True when the peer's own set is the product of an *approximate*
  /// repair not yet squared with the log (replica/replica_node.h): the
  /// pulled set is then not the canonical set-at-`seq`, and the caller
  /// must not mark its own log against it.
  bool dirty = false;
};

transport::Message EncodeHello(const HelloFrame& hello);
bool DecodeHello(const transport::Message& message, HelloFrame* out);

transport::Message EncodeAccept(const AcceptFrame& accept);
bool DecodeAccept(const transport::Message& message, AcceptFrame* out);

transport::Message EncodeReject(const RejectFrame& reject);
bool DecodeReject(const transport::Message& message, RejectFrame* out);

/// `universe` fixes the exact per-coordinate bit width of the shipped set;
/// both sides construct it from the shared ProtocolContext.
transport::Message EncodeResult(const ResultFrame& frame,
                                const Universe& universe);
bool DecodeResult(const transport::Message& message, const Universe& universe,
                  ResultFrame* out);

transport::Message EncodeLogFetch(const LogFetchFrame& fetch);
bool DecodeLogFetch(const transport::Message& message, LogFetchFrame* out);

/// The strata estimator travels under `strata_config` (both sides derive
/// it as recon::ExactReconStrataConfig(context.seed)).
transport::Message EncodeLogBatch(const LogBatchFrame& batch,
                                  const Universe& universe);
bool DecodeLogBatch(const transport::Message& message,
                    const Universe& universe,
                    const StrataConfig& strata_config, LogBatchFrame* out);

transport::Message EncodePull(const PullFrame& pull);
bool DecodePull(const transport::Message& message, PullFrame* out);

transport::Message EncodePullAccept(const PullAcceptFrame& accept);
bool DecodePullAccept(const transport::Message& message,
                      PullAcceptFrame* out);

/// "@stats" request: an empty-payload frame (room for future options is
/// trailing, like AcceptFrame's optional fields).
transport::Message EncodeStatsRequest();
bool DecodeStatsRequest(const transport::Message& message);

/// "@stats" reply: the host's Prometheus text exposition, verbatim.
transport::Message EncodeStatsReply(const std::string& text);
bool DecodeStatsReply(const transport::Message& message, std::string* out);

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_HANDSHAKE_H_
