// Control-plane frames of the sync serving layer.
//
// A sync session is framed protocol traffic (net/frame.h) bracketed by a
// tiny negotiation: the client opens with "@hello" naming a registry
// protocol, the server answers "@accept" (and both sides start their
// PartySessions) or "@reject" (carrying the reason plus the server's
// ListProtocols() so the error is self-describing), and after Bob's
// endpoint finishes the server closes with "@result" carrying the
// ReconResult — optionally including the reconciled point set so the
// client can verify it bit-for-bit against a local run. Control labels
// start with '@', which no protocol message label uses, so the two planes
// cannot collide. Layout details in DESIGN.md §6.

#ifndef RSR_SERVER_HANDSHAKE_H_
#define RSR_SERVER_HANDSHAKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "recon/protocol.h"
#include "transport/message.h"

namespace rsr {
namespace server {

/// Reserved control-plane labels. Protocol messages never start with '@'.
inline constexpr char kHelloLabel[] = "@hello";
inline constexpr char kAcceptLabel[] = "@accept";
inline constexpr char kRejectLabel[] = "@reject";
inline constexpr char kResultLabel[] = "@result";

/// True for control-plane labels (reserved '@' prefix).
bool IsControlLabel(const std::string& label);

/// Client → server: request a protocol by registry name.
struct HelloFrame {
  std::string protocol;
  uint64_t client_set_size = 0;  ///< Diagnostic; server metrics only.
  bool want_result_set = true;   ///< Ship S'_B back in the result frame.
};

/// Server → client: the handshake failed.
struct RejectFrame {
  std::string reason;
  std::vector<std::string> protocols;  ///< Server's ListProtocols().
};

/// Server → client: Bob's endpoint finished; its ReconResult. The point
/// set travels only when the client asked for it (want_result_set).
struct ResultFrame {
  recon::ReconResult result;
  bool has_set = false;
};

/// Server → client: handshake accepted. Echoes the agreed protocol and
/// confirms whether the result set will be shipped; `server_set_size` is
/// the canonical set's size (diagnostic). `generation` stamps which
/// canonical-set generation (server/sketch_store.h) the session is pinned
/// to — under churn it is what lets a client (or a load harness asserting
/// match_driver) name the exact set it was reconciled against.
struct AcceptFrame {
  std::string protocol;
  uint64_t server_set_size = 0;
  bool will_send_result_set = true;
  uint64_t generation = 0;
};

transport::Message EncodeHello(const HelloFrame& hello);
bool DecodeHello(const transport::Message& message, HelloFrame* out);

transport::Message EncodeAccept(const AcceptFrame& accept);
bool DecodeAccept(const transport::Message& message, AcceptFrame* out);

transport::Message EncodeReject(const RejectFrame& reject);
bool DecodeReject(const transport::Message& message, RejectFrame* out);

/// `universe` fixes the exact per-coordinate bit width of the shipped set;
/// both sides construct it from the shared ProtocolContext.
transport::Message EncodeResult(const ResultFrame& frame,
                                const Universe& universe);
bool DecodeResult(const transport::Message& message, const Universe& universe,
                  ResultFrame* out);

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_HANDSHAKE_H_
