#include "server/server_obs.h"

namespace rsr {
namespace server {

namespace {

constexpr char kSessionsName[] = "rsr_sync_sessions_total";
constexpr char kSessionSecondsName[] = "rsr_sync_session_seconds";
constexpr char kProtocolBytesName[] = "rsr_sync_protocol_bytes_total";

}  // namespace

ServerObs::ServerObs(const ServerObsOptions& options) : options_(options) {
  accepted_ = registry_.GetCounter("rsr_sync_connections_accepted_total",
                                   "Connections accepted by the host");
  active_ = registry_.GetGauge("rsr_sync_active_sessions",
                               "Connections currently open");
  peak_active_ = registry_.GetGauge("rsr_sync_active_sessions_peak",
                                    "High-water mark of open connections");
  rejected_ = registry_.GetCounter("rsr_sync_handshakes_rejected_total",
                                   "Handshakes answered with @reject");
  idle_timeouts_ = registry_.GetCounter(
      "rsr_sync_idle_timeouts_total",
      "Connections failed by the per-session idle deadline");
  bytes_in_ = registry_.GetCounter("rsr_sync_bytes_total",
                                   "Framed bytes through the host",
                                   {{"direction", "in"}});
  bytes_out_ = registry_.GetCounter("rsr_sync_bytes_total",
                                    "Framed bytes through the host",
                                    {{"direction", "out"}});
  queue_delay_ = registry_.GetHistogram(
      "rsr_sync_queue_delay_seconds",
      "Accept-to-dequeue wait in the threaded host's worker queue",
      obs::DefaultLatencyBounds());
  accept_to_first_frame_ = registry_.GetHistogram(
      "rsr_sync_accept_to_first_frame_seconds",
      "Accept-to-first-decoded-frame delay on the async host",
      obs::DefaultLatencyBounds());
  span_emitted_ = registry_.GetCounter(
      "rsr_trace_spans_total", "Trace spans by sampling decision",
      {{"decision", "emitted"}});
  span_dropped_ = registry_.GetCounter(
      "rsr_trace_spans_total", "Trace spans by sampling decision",
      {{"decision", "dropped"}});
}

ServerObs::ProtocolInstruments& ServerObs::ProtocolFor(
    const std::string& name) {
  auto it = per_protocol_.find(name);
  if (it != per_protocol_.end()) return it->second;
  ProtocolInstruments bundle;
  bundle.ok = registry_.GetCounter(kSessionsName,
                                   "Sessions finished, by protocol/outcome",
                                   {{"protocol", name}, {"outcome", "ok"}});
  bundle.failed = registry_.GetCounter(
      kSessionsName, "Sessions finished, by protocol/outcome",
      {{"protocol", name}, {"outcome", "fail"}});
  bundle.bytes_in = registry_.GetCounter(
      kProtocolBytesName, "Framed bytes, by protocol/direction",
      {{"protocol", name}, {"direction", "in"}});
  bundle.bytes_out = registry_.GetCounter(
      kProtocolBytesName, "Framed bytes, by protocol/direction",
      {{"protocol", name}, {"direction", "out"}});
  bundle.seconds = registry_.GetHistogram(
      kSessionSecondsName, "Session wall time, by protocol",
      obs::DefaultLatencyBounds(), {{"protocol", name}});
  return per_protocol_.emplace(name, bundle).first->second;
}

void ServerObs::OnAccepted() {
  accepted_->Inc();
  peak_active_->UpdateMax(active_->Add(1));
}

void ServerObs::OnClosed(const Settle& settle) {
  active_->Add(-1);
  bytes_in_->Inc(settle.bytes_in);
  bytes_out_->Inc(settle.bytes_out);
  if (settle.rejected) rejected_->Inc();
  if (settle.timed_out) idle_timeouts_->Inc();
  if (!settle.session_counted) return;
  MutexLock lock(mu_);
  ProtocolInstruments& bundle = ProtocolFor(settle.protocol);
  (settle.success ? bundle.ok : bundle.failed)->Inc();
  bundle.bytes_in->Inc(settle.bytes_in);
  bundle.bytes_out->Inc(settle.bytes_out);
  bundle.seconds->Observe(settle.wall_seconds);
}

void ServerObs::ObserveQueueDelay(double seconds) {
  if (!options_.latency_probes) return;
  queue_delay_->Observe(seconds);
}

void ServerObs::ObserveAcceptToFirstFrame(double seconds) {
  if (!options_.latency_probes) return;
  accept_to_first_frame_->Observe(seconds);
}

SyncServerMetrics ServerObs::LegacyMetrics() const {
  SyncServerMetrics metrics;
  metrics.connections_accepted = accepted_->value();
  metrics.active_sessions = static_cast<size_t>(active_->value());
  metrics.peak_active_sessions = static_cast<size_t>(peak_active_->value());
  metrics.handshakes_rejected = rejected_->value();
  metrics.idle_timeouts = idle_timeouts_->value();
  metrics.bytes_in = bytes_in_->value();
  metrics.bytes_out = bytes_out_->value();
  MutexLock lock(mu_);
  for (const auto& [name, bundle] : per_protocol_) {
    ProtocolStats& stats = metrics.per_protocol[name];
    stats.syncs = bundle.ok->value();
    stats.failures = bundle.failed->value();
    stats.bytes_in = bundle.bytes_in->value();
    stats.bytes_out = bundle.bytes_out->value();
    stats.wall_seconds = bundle.seconds->Snapshot().sum;
    metrics.syncs_completed += stats.syncs;
    metrics.syncs_failed += stats.failures;
  }
  return metrics;
}

}  // namespace server
}  // namespace rsr
