#include "server/async_sync_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "recon/session.h"
#include "server/handshake.h"
#include "server/replica_serving.h"

namespace rsr {
namespace server {

namespace {

using recon::SessionError;

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Span-derivation salts: distinct from the threaded host's so the same
/// inbound context produces host-distinguishable span ids ("asynhelo" /
/// "asynlogf" in ASCII).
constexpr uint64_t kAsyncHelloSpanSalt = 0x6173796e68656c6fULL;
constexpr uint64_t kAsyncLogFetchSpanSalt = 0x6173796e6c6f6766ULL;

}  // namespace

// One reactor shard: an event loop on its own thread plus the connections
// pinned to it. `conns` and `graveyard` are touched only on the loop
// thread; `stopping` likewise (the stop task sets it before any later
// adopt task can run).
struct AsyncSyncServer::Shard {
  net::EventLoop loop;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  /// Closed connections awaiting destruction: a conn cannot be destroyed
  /// from inside its own callback, so CloseConn parks it here and a loop
  /// task reclaims it after the dispatch round.
  std::vector<std::unique_ptr<Conn>> graveyard;
  bool stopping = false;
};

// Per-connection state machine, single-threaded on its shard's loop.
struct AsyncSyncServer::Conn {
  Conn(Shard* shard_in, std::unique_ptr<net::TcpStream> stream_in,
       net::FrameLimits limits, obs::TraceSink* trace_sink)
      : shard(shard_in),
        stream(std::move(stream_in)),
        framed(stream.get(), limits),
        span(trace_sink, "sync-session") {}

  /// Send with trace accounting: frame bytes are attributed to the
  /// span's open phase by differencing the conn's enqueued-byte total
  /// (bytes_sent would lag by whatever the socket left buffered).
  bool SendTracked(const transport::Message& message) {
    const bool ok = framed.Send(message);
    if (span.active()) {
      span.AddFrameOut(framed.bytes_enqueued() - span_bytes_out);
      span_bytes_out = framed.bytes_enqueued();
    }
    return ok;
  }

  enum class Phase {
    kHandshake,  ///< Awaiting "@hello".
    kSession,    ///< Bob's PartySession pumping protocol frames.
    kDraining,   ///< "@result" shipped; discarding until the client closes.
    kClosing,    ///< Flushing the last frames, then close (reject path).
  };

  Shard* shard;
  std::unique_ptr<net::TcpStream> stream;
  net::AsyncFramedConn framed;
  Phase phase = Phase::kHandshake;
  bool closed = false;
  /// Read side ended (EOF handled). Readable interest must be dropped
  /// then: with level-triggered epoll an EOF'd socket stays readable
  /// forever, which would spin the loop while a final flush completes.
  bool read_done = false;

  std::string protocol;
  bool want_result_set = true;
  /// The canonical generation this session is pinned to (kept alive here
  /// so the Bob session's sketch provider stays valid under ApplyUpdate).
  std::shared_ptr<const SketchSnapshot> snapshot;
  std::unique_ptr<recon::PartySession> bob;
  size_t deliveries = 0;
  size_t drained = 0;
  std::chrono::steady_clock::time_point session_start;

  obs::SessionSpan span;
  std::chrono::steady_clock::time_point accept_time;
  bool first_frame_seen = false;
  size_t span_bytes_in = 0;
  size_t span_bytes_out = 0;

  // Outcome flags, settled into the shared metrics once, at CloseConn.
  bool rejected = false;
  bool session_started = false;
  bool session_finished = false;
  bool session_success = false;
  bool timed_out = false;
  double wall_seconds = 0.0;

  uint32_t interest = 0;
  /// One long-lived wheel timer per connection; I/O events just stamp
  /// last_activity and the timer re-arms itself for the remainder when it
  /// fires early — no per-frame cancel/re-add churn on the hot path.
  net::EventLoop::TimerId idle_timer = net::EventLoop::kNoTimer;
  std::chrono::steady_clock::time_point last_activity;
};

AsyncSyncServer::AsyncSyncServer(PointSet canonical,
                                 AsyncSyncServerOptions options)
    : options_(std::move(options)),
      obs_(ServerObsOptions{options_.latency_probes, options_.trace_sink}),
      clock_(options_.clock != nullptr ? options_.clock : obs::Clock::Real()),
      trace_gen_(options_.trace_seed, kAsyncHelloSpanSalt),
      store_(std::move(canonical),
             SketchStoreOptions{
                 options_.context, options_.params, options_.serve_from_cache,
                 MakeStoreMetrics(&obs_.registry(), options_.latency_probes)}),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &recon::ProtocolRegistry::Global()),
      replica_seq_gauge_(obs_.registry().GetGauge(
          "rsr_replica_seq", "Replication position (journaled seq)")) {
  if (options_.latency_probes) {
    obs::MetricsRegistry& reg = obs_.registry();
    loop_metrics_.iteration_seconds =
        reg.GetHistogram("rsr_loop_iteration_seconds",
                         "Busy part of one shard dispatch round",
                         obs::DefaultLatencyBounds());
    loop_metrics_.epoll_wait_seconds =
        reg.GetHistogram("rsr_loop_epoll_wait_seconds",
                         "Time blocked in epoll_wait per round",
                         obs::DefaultLatencyBounds());
    loop_metrics_.timer_fires = reg.GetCounter(
        "rsr_loop_timer_fires_total", "Timer-wheel callbacks fired");
    loop_metrics_.pending_tasks =
        reg.GetHistogram("rsr_loop_pending_tasks",
                         "Cross-thread task batch size per drain",
                         obs::DefaultDepthBounds());
  }
}

AsyncSyncServer::~AsyncSyncServer() { Stop(); }

bool AsyncSyncServer::Start(std::unique_ptr<net::TcpListener> listener) {
  if (listener == nullptr || !shards_.empty()) return false;
  listener_ = std::move(listener);
  listener_->SetNonBlocking(true);
  const size_t shard_count = std::max<size_t>(1, options_.shards);
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    // One shared Metrics struct serves every shard (the instruments are
    // thread-safe); install before the loop thread exists.
    if (options_.latency_probes) shard->loop.set_metrics(&loop_metrics_);
    shard->thread = std::thread([s = shard.get()] { s->loop.Run(); });
  }
  // The listener lives on shard 0; registration must happen on its loop
  // thread, like every other fd operation.
  shards_[0]->loop.RunInLoop([this] {
    shards_[0]->loop.Add(listener_->fd(), net::Ready::kReadable,
                         [this](uint32_t) { AcceptReady(); });
  });
  return true;
}

void AsyncSyncServer::Stop() {
  if (shards_.empty()) {
    listener_.reset();
    return;
  }
  if (listener_ != nullptr) listener_->Close();
  // Drain shards in index order: each stop task fails the shard's open
  // connections (settling their metrics) and stops its loop; the join
  // makes the whole shard quiescent before the next one is touched.
  for (std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    shard->loop.RunInLoop([this, shard] {
      shard->stopping = true;
      std::vector<Conn*> open;
      open.reserve(shard->conns.size());
      for (auto& [fd, conn] : shard->conns) open.push_back(conn.get());
      for (Conn* conn : open) FailConn(conn, SessionError::kTransportClosed);
      shard->loop.Stop();
    });
    if (shard->thread.joinable()) shard->thread.join();
    shard->graveyard.clear();
  }
  shards_.clear();
  listener_.reset();
}

uint16_t AsyncSyncServer::port() const {
  return listener_ != nullptr ? listener_->port() : 0;
}

SyncServerMetrics AsyncSyncServer::metrics() const {
  return obs_.LegacyMetrics();
}

std::string AsyncSyncServer::DumpStats() const {
  uint64_t generation = 0;
  uint64_t seq = 0;
  {
    MutexLock lock(replica_mu_);
    generation = store_.Snapshot()->generation();
    seq = replica_seq_;
  }
  return rsr::server::DumpStats(metrics(), generation, seq);
}

std::shared_ptr<const SketchSnapshot> AsyncSyncServer::ApplyUpdate(
    const PointSet& inserts, const PointSet& erases) {
  return ApplyUpdate(inserts, erases, obs::TraceContext());
}

std::shared_ptr<const SketchSnapshot> AsyncSyncServer::ApplyUpdate(
    const PointSet& inserts, const PointSet& erases,
    const obs::TraceContext& trace) {
  MutexLock lock(replica_mu_);
  std::shared_ptr<const SketchSnapshot> snap =
      store_.ApplyUpdate(inserts, erases);
  if (options_.changelog != nullptr) {
    replica::ChangeEntry entry;
    entry.seq = ++replica_seq_;
    entry.inserts = inserts;
    entry.erases = erases;
    entry.append_micros = clock_->NowMicros();
    entry.trace_hi = trace.trace_hi;
    entry.trace_lo = trace.trace_lo;
    options_.changelog->Append(std::move(entry));
    replica_seq_gauge_->Set(static_cast<int64_t>(replica_seq_));
  }
  return snap;
}

uint64_t AsyncSyncServer::replica_seq() const {
  MutexLock lock(replica_mu_);
  return replica_seq_;
}

void AsyncSyncServer::AcceptReady() {
  for (;;) {
    std::unique_ptr<net::TcpStream> stream;
    switch (listener_->TryAccept(&stream)) {
      case net::TcpListener::AcceptStatus::kAccepted: {
        stream->SetNonBlocking(true);
        Shard* shard = shards_[next_shard_++ % shards_.size()].get();
        if (shard == shards_[0].get()) {
          AdoptConn(shard, std::move(stream));
        } else {
          // std::function wants copyable captures; hand the fd over raw.
          // RunInLoop guarantees the task eventually runs (even at loop
          // exit), so the stream is never leaked.
          net::TcpStream* raw = stream.release();
          shard->loop.RunInLoop([this, shard, raw] {
            AdoptConn(shard, std::unique_ptr<net::TcpStream>(raw));
          });
        }
        continue;
      }
      case net::TcpListener::AcceptStatus::kEmptyBacklog:
        return;
      case net::TcpListener::AcceptStatus::kRetryLater: {
        // fd exhaustion with the backlog still populated: the listener
        // stays readable, so returning here would re-enter at full spin.
        // Shed accept interest and re-arm it from a timer instead.
        net::EventLoop& loop = shards_[0]->loop;
        loop.Modify(listener_->fd(), 0);
        loop.AddTimer(std::chrono::milliseconds(50), [this] {
          shards_[0]->loop.Modify(listener_->fd(), net::Ready::kReadable);
        });
        return;
      }
      case net::TcpListener::AcceptStatus::kClosed:
        shards_[0]->loop.Remove(listener_->fd());
        return;
    }
  }
}

void AsyncSyncServer::AdoptConn(Shard* shard,
                                std::unique_ptr<net::TcpStream> stream) {
  // A conn handed over after the shard began stopping is simply dropped
  // (its destructor closes the socket); it was never served, so it is not
  // counted — exactly like a client the threaded host never dequeued.
  if (shard->stopping || stream == nullptr) return;
  const int fd = stream->fd();
  if (fd < 0) return;
  if (options_.so_sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                 sizeof(options_.so_sndbuf));
  }
  auto owned = std::make_unique<Conn>(shard, std::move(stream),
                                      options_.limits, options_.trace_sink);
  Conn* conn = owned.get();
  conn->interest = net::Ready::kReadable;
  if (!shard->loop.Add(fd, conn->interest,
                       [this, conn](uint32_t ready) {
                         OnConnEvent(conn, ready);
                       })) {
    return;
  }
  shard->conns.emplace(fd, std::move(owned));
  obs_.OnAccepted();
  conn->accept_time = std::chrono::steady_clock::now();
  conn->span.SetSampling(&options_.trace_sampling, obs_.span_emitted(),
                         obs_.span_dropped());
  conn->span.BeginPhase("handshake");
  TouchIdleTimer(conn);
}

void AsyncSyncServer::OnConnEvent(Conn* conn, uint32_t ready) {
  if (conn->closed) return;
  TouchIdleTimer(conn);
  if (ready & net::Ready::kWritable) {
    if (conn->framed.Flush() == net::AsyncFramedConn::IoStatus::kError) {
      FailConn(conn, conn->framed.error());
      return;
    }
    if (conn->phase == Conn::Phase::kClosing && !conn->framed.wants_write()) {
      CloseConn(conn);
      return;
    }
  }
  if (ready & net::Ready::kReadable) {
    const net::AsyncFramedConn::IoStatus status = conn->framed.OnReadable();
    // Frames fully received before an EOF still count: process the inbox
    // first, then honour the stream end.
    ProcessInbox(conn);
    if (conn->closed) return;
    if (status != net::AsyncFramedConn::IoStatus::kOk) {
      HandleStreamEnd(conn, status);
      if (conn->closed) return;
    }
  }
  UpdateInterest(conn);
}

void AsyncSyncServer::ProcessInbox(Conn* conn) {
  transport::Message message;
  while (!conn->closed) {
    switch (conn->framed.Next(&message)) {
      case net::AsyncFramedConn::NextStatus::kMessage:
        if (!conn->first_frame_seen) {
          conn->first_frame_seen = true;
          obs_.ObserveAcceptToFirstFrame(SecondsSince(conn->accept_time));
        }
        if (conn->span.active()) {
          conn->span.AddFrameIn(conn->framed.bytes_received() -
                                conn->span_bytes_in);
          conn->span_bytes_in = conn->framed.bytes_received();
        }
        switch (conn->phase) {
          case Conn::Phase::kHandshake:
            HandleHello(conn, std::move(message));
            break;
          case Conn::Phase::kSession:
            HandleSessionMessage(conn, std::move(message));
            break;
          case Conn::Phase::kDraining:
          case Conn::Phase::kClosing:
            // Post-result (or post-reject) traffic is discarded, bounded
            // like the threaded host's drain loop.
            if (++conn->drained > options_.max_deliveries) CloseConn(conn);
            break;
        }
        continue;
      case net::AsyncFramedConn::NextStatus::kIdle:
        return;
      case net::AsyncFramedConn::NextStatus::kError:
        // Corrupt frame: the stream has lost sync for good.
        switch (conn->phase) {
          case Conn::Phase::kHandshake:
            // Nothing usable arrived; no one to send a reject to.
            CloseConn(conn);
            break;
          case Conn::Phase::kSession:
            FinishSession(conn, conn->framed.error());
            if (!conn->closed) CloseConn(conn);
            break;
          case Conn::Phase::kDraining:
          case Conn::Phase::kClosing:
            CloseConn(conn);
            break;
        }
        return;
    }
  }
}

void AsyncSyncServer::HandleHello(Conn* conn, transport::Message message) {
  // Replication verbs claim the whole connection before any "@hello".
  // "@pull" is deliberately NOT served here (see the options comment);
  // falling through makes DecodeHello fail and reject it by name.
  if (message.label == kLogFetchLabel) {
    HandleLogFetch(conn, std::move(message));
    return;
  }
  if (message.label == kStatsLabel) {
    HandleStats(conn);
    return;
  }
  HelloFrame hello;
  std::string reject_reason;
  std::unique_ptr<recon::Reconciler> protocol;
  if (!DecodeHello(message, &hello)) {
    reject_reason = "expected a well-formed " + std::string(kHelloLabel) +
                    " frame, got \"" + message.label + "\"";
  } else if (!registry_->Contains(hello.protocol) ||
             (protocol = registry_->Create(hello.protocol, options_.context,
                                           options_.params)) == nullptr) {
    reject_reason = "unknown protocol \"" + hello.protocol + "\"";
  }
  if (!reject_reason.empty()) {
    RejectFrame reject;
    reject.reason = reject_reason;
    reject.protocols = registry_->ListProtocols();
    conn->rejected = true;
    conn->SendTracked(EncodeReject(reject));
    conn->phase = Conn::Phase::kClosing;
    if (!conn->framed.wants_write()) CloseConn(conn);
    return;
  }

  conn->protocol = hello.protocol;
  conn->want_result_set = hello.want_result_set;
  conn->session_start = std::chrono::steady_clock::now();
  conn->session_started = true;
  conn->span.set_protocol(hello.protocol);
  AdoptTrace(conn, hello.trace, kAsyncHelloSpanSalt);
  conn->span.BeginPhase("rounds");
  // Pin the session to one immutable canonical generation; the snapshot
  // stays alive on the conn for the session's lifetime. The replication
  // position is read under the write path's lock so the pair is one
  // consistent view.
  uint64_t served_seq = 0;
  {
    MutexLock lock(replica_mu_);
    conn->snapshot = store_.Snapshot();
    served_seq = replica_seq_;
  }
  conn->bob = protocol->MakeBobSession(conn->snapshot->points(),
                                       conn->snapshot.get());
  conn->phase = Conn::Phase::kSession;

  AcceptFrame ack;
  ack.protocol = hello.protocol;
  ack.server_set_size = conn->snapshot->size();
  ack.will_send_result_set = hello.want_result_set;
  ack.generation = conn->snapshot->generation();
  ack.replica_seq = served_seq;
  if (!conn->SendTracked(EncodeAccept(ack))) {
    FailConn(conn, SessionError::kTransportClosed);
    return;
  }
  for (transport::Message& opening : conn->bob->Start()) {
    if (!conn->SendTracked(opening)) {
      FailConn(conn, SessionError::kTransportClosed);
      return;
    }
  }
  if (conn->bob->IsDone()) FinishSession(conn, SessionError::kNone);
}

void AsyncSyncServer::HandleLogFetch(Conn* conn, transport::Message message) {
  LogFetchFrame fetch;
  if (!DecodeLogFetch(message, &fetch)) {
    RejectFrame reject;
    reject.reason = "malformed " + std::string(kLogFetchLabel) + " frame";
    reject.protocols = registry_->ListProtocols();
    conn->rejected = true;
    conn->SendTracked(EncodeReject(reject));
    conn->phase = Conn::Phase::kClosing;
    if (!conn->framed.wants_write()) CloseConn(conn);
    return;
  }
  conn->protocol = kLogFetchLabel;
  conn->session_start = std::chrono::steady_clock::now();
  conn->session_started = true;
  conn->span.set_protocol(conn->protocol);
  AdoptTrace(conn, fetch.trace, kAsyncLogFetchSpanSalt);
  conn->span.BeginPhase("result");
  LogBatchFrame batch;
  {
    MutexLock lock(replica_mu_);
    // The async host never installs repairs, so its tail is always sound:
    // repair_dirty is constitutively false here.
    batch = BuildLogBatch(fetch, options_.changelog, *store_.Snapshot(),
                          replica_seq_, /*repair_dirty=*/false,
                          options_.context, options_.log_fetch_max_entries);
  }
  conn->session_success =
      conn->SendTracked(EncodeLogBatch(batch, options_.context.universe));
  conn->session_finished = true;
  conn->wall_seconds = SecondsSince(conn->session_start);
  // As after "@result": wait for the fetcher to close rather than racing
  // it with unread bytes queued.
  conn->phase = Conn::Phase::kDraining;
}

void AsyncSyncServer::HandleStats(Conn* conn) {
  conn->protocol = kStatsLabel;
  conn->session_start = std::chrono::steady_clock::now();
  conn->session_started = true;
  conn->span.set_protocol(conn->protocol);
  conn->span.BeginPhase("result");
  conn->session_success =
      conn->SendTracked(EncodeStatsReply(RenderMetrics()));
  conn->session_finished = true;
  conn->wall_seconds = SecondsSince(conn->session_start);
  conn->phase = Conn::Phase::kDraining;
}

void AsyncSyncServer::HandleSessionMessage(Conn* conn,
                                           transport::Message message) {
  if (IsControlLabel(message.label)) {
    // The control plane is quiet during the protocol phase.
    FinishSession(conn, SessionError::kUnexpectedMessage);
    return;
  }
  if (++conn->deliveries > options_.max_deliveries) {
    FinishSession(conn, SessionError::kStalled);
    return;
  }
  for (transport::Message& reply : conn->bob->OnMessage(std::move(message))) {
    if (!conn->SendTracked(reply)) {
      FailConn(conn, SessionError::kTransportClosed);
      return;
    }
  }
  if (conn->bob->IsDone()) FinishSession(conn, SessionError::kNone);
}

void AsyncSyncServer::FinishSession(Conn* conn, SessionError pump_error) {
  recon::ReconResult result = conn->bob->TakeResult();
  if (pump_error != SessionError::kNone) {
    result.success = false;
    if (result.error == SessionError::kNone) result.error = pump_error;
  }
  conn->session_finished = true;
  conn->session_success = result.success;
  conn->wall_seconds = SecondsSince(conn->session_start);
  conn->span.BeginPhase("result");

  ResultFrame frame;
  frame.has_set = conn->want_result_set && result.success;
  frame.result = std::move(result);
  if (!frame.has_set) frame.result.bob_final.clear();
  conn->SendTracked(EncodeResult(frame, options_.context.universe));
  // Like the threaded host: wait for the client to close rather than
  // racing it with unread bytes queued (which could RST the connection
  // and discard the result frame in flight).
  conn->phase = Conn::Phase::kDraining;
}

void AsyncSyncServer::FailConn(Conn* conn, SessionError error) {
  (void)error;  // recorded as a failed sync; no peer left to detail it to
  if (conn->phase == Conn::Phase::kSession && !conn->session_finished) {
    conn->session_finished = true;
    conn->session_success = false;
    conn->wall_seconds = SecondsSince(conn->session_start);
  }
  CloseConn(conn);
}

void AsyncSyncServer::HandleStreamEnd(Conn* conn,
                                      net::AsyncFramedConn::IoStatus status) {
  conn->read_done = true;
  switch (conn->phase) {
    case Conn::Phase::kHandshake:
      // Silent or garbled peer; the connection never got off the ground.
      CloseConn(conn);
      return;
    case Conn::Phase::kSession:
      // Peer's read side ended mid-protocol: clean EOF between frames
      // maps to kTransportClosed, EOF inside one to kMalformedMessage —
      // both already distinguished by the conn's error(). (A half-closing
      // peer whose final frame completed Bob never reaches this branch:
      // ProcessInbox finished the session and moved to kDraining first.)
      FinishSession(conn, conn->framed.error() != SessionError::kNone
                              ? conn->framed.error()
                              : SessionError::kTransportClosed);
      if (conn->closed) return;
      break;
    case Conn::Phase::kDraining:
    case Conn::Phase::kClosing:
      break;
  }
  // The read side is over, but a large "@result" the socket accepted only
  // partially may still sit in the outbox — closing now would truncate it
  // for a legal half-closing client.
  if (conn->framed.wants_write() && conn->framed.write_ok()) {
    // Push what the socket takes right now: a reset peer fails the write
    // here and closes, instead of spinning on the persistent EPOLLERR.
    if (conn->framed.Flush() == net::AsyncFramedConn::IoStatus::kError) {
      FailConn(conn, conn->framed.error());
      return;
    }
    if (conn->framed.wants_write()) {
      // Hold the connection in kClosing on kWritable-only interest
      // (read_done drops kReadable — a level-triggered EOF'd socket
      // stays readable forever); OnConnEvent closes it once drained.
      conn->phase = Conn::Phase::kClosing;
      UpdateInterest(conn);
      return;
    }
  }
  CloseConn(conn);
  (void)status;
}

void AsyncSyncServer::OnIdleTimeout(Conn* conn) {
  conn->idle_timer = net::EventLoop::kNoTimer;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - conn->last_activity);
  if (elapsed < options_.idle_timeout) {
    // Traffic arrived since the timer was armed: not idle — re-arm for
    // the remainder of the window.
    conn->idle_timer = conn->shard->loop.AddTimer(
        options_.idle_timeout - elapsed, [this, conn] {
          OnIdleTimeout(conn);
        });
    return;
  }
  conn->timed_out = true;
  if (conn->phase == Conn::Phase::kSession && !conn->session_finished) {
    // Best effort: the peer is idle, not necessarily gone — ship the
    // failure result before hanging up on it.
    FinishSession(conn, SessionError::kTransportClosed);
  }
  if (!conn->closed) CloseConn(conn);
}

void AsyncSyncServer::UpdateInterest(Conn* conn) {
  if (conn->closed) return;
  uint32_t want = conn->read_done ? 0 : net::Ready::kReadable;
  if (conn->framed.wants_write()) want |= net::Ready::kWritable;
  if (want == conn->interest) return;
  conn->shard->loop.Modify(conn->stream->fd(), want);
  conn->interest = want;
}

void AsyncSyncServer::TouchIdleTimer(Conn* conn) {
  if (options_.idle_timeout.count() <= 0) return;
  conn->last_activity = std::chrono::steady_clock::now();
  // The per-connection timer is armed once and re-arms itself against
  // last_activity when it fires (OnIdleTimeout); the hot path only
  // stamps the clock.
  if (conn->idle_timer == net::EventLoop::kNoTimer) {
    conn->idle_timer = conn->shard->loop.AddTimer(
        options_.idle_timeout, [this, conn] { OnIdleTimeout(conn); });
  }
}

void AsyncSyncServer::CloseConn(Conn* conn) {
  if (conn->closed) return;
  conn->closed = true;
  Shard* shard = conn->shard;
  if (conn->idle_timer != net::EventLoop::kNoTimer) {
    shard->loop.CancelTimer(conn->idle_timer);
    conn->idle_timer = net::EventLoop::kNoTimer;
  }
  const int fd = conn->stream->fd();
  shard->loop.Remove(fd);

  ServerObs::Settle settle;
  settle.session_counted = conn->session_started && conn->session_finished;
  settle.protocol = conn->protocol;
  settle.success = conn->session_success;
  settle.wall_seconds = conn->wall_seconds;
  settle.rejected = conn->rejected;
  settle.timed_out = conn->timed_out;
  settle.bytes_in = conn->framed.bytes_received();
  settle.bytes_out = conn->framed.bytes_sent();
  obs_.OnClosed(settle);
  if (conn->span.active()) {
    if (conn->rejected) {
      conn->span.set_outcome("rejected");
    } else if (conn->timed_out) {
      conn->span.set_outcome("idle-timeout");
    } else if (settle.session_counted) {
      conn->span.set_outcome(conn->session_success ? "ok" : "fail");
    } else {
      conn->span.set_outcome("never-started");
    }
    conn->span.Finish();
  }

  // The conn cannot die inside its own callback; park it and reclaim it
  // after the dispatch round.
  auto it = shard->conns.find(fd);
  if (it != shard->conns.end()) {
    shard->graveyard.push_back(std::move(it->second));
    shard->conns.erase(it);
    shard->loop.RunInLoop([shard] { shard->graveyard.clear(); });
  }
}

void AsyncSyncServer::AdoptTrace(Conn* conn, const obs::TraceContext& inbound,
                                 uint64_t salt) {
  if (!conn->span.active()) return;
  obs::TraceContext ctx = inbound;
  uint64_t parent = 0;
  if (ctx.valid()) {
    parent = ctx.span_id;
    ctx.span_id = obs::DeriveSpanId(ctx, salt);
  } else {
    // Untraced callers still get a root trace, so every emitted span is
    // joinable and the sampling hash never keys on a constant zero.
    ctx = trace_gen_.NewTrace();
  }
  conn->span.SetTrace(ctx, parent);
}

}  // namespace server
}  // namespace rsr
