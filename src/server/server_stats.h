// Metrics shared by both sync-serving hosts.
//
// The thread-per-connection SyncServer (server/sync_server.h) and the
// epoll-sharded AsyncSyncServer (server/async_sync_server.h) report the
// same counters, so benches and tests compare the two hosts row for row.
// `peak_active_sessions` is the high-water mark of concurrently open
// sessions — the number that separates the hosts: a threaded host can
// never exceed its worker count, the async host sustains every connected
// client at once.

#ifndef RSR_SERVER_SERVER_STATS_H_
#define RSR_SERVER_SERVER_STATS_H_

#include <cstddef>
#include <map>
#include <string>

namespace rsr {
namespace server {

/// Accounting for one negotiated protocol.
struct ProtocolStats {
  size_t syncs = 0;      ///< Completed successfully.
  size_t failures = 0;   ///< Finished with an error.
  size_t bytes_in = 0;   ///< Framed bytes received from clients.
  size_t bytes_out = 0;  ///< Framed bytes sent to clients.
  double wall_seconds = 0.0;  ///< Summed session wall time (mean = /syncs).
};

/// Snapshot of a server's counters.
struct SyncServerMetrics {
  size_t connections_accepted = 0;
  size_t active_sessions = 0;
  size_t peak_active_sessions = 0;
  size_t syncs_completed = 0;
  size_t syncs_failed = 0;
  size_t handshakes_rejected = 0;
  size_t idle_timeouts = 0;  ///< Both hosts arm `idle_timeout` deadlines
                             ///< (threaded via SetReadDeadline; DESIGN §6.3).
  size_t bytes_in = 0;
  size_t bytes_out = 0;
  std::map<std::string, ProtocolStats> per_protocol;
};

/// Plain-text rendering of one host's counters: a totals line (including
/// the canonical generation and replication position being served) plus
/// one `key=value` line per protocol. Both hosts expose it as
/// DumpStats(), so an operator or a bench scrapes one string instead of
/// poking fields.
///
///   generation=12 replica_seq=12 accepted=40 active=0 peak_active=8
///       ok=38 failed=1 rejected=1 idle_timeouts=0 bytes_in=.. bytes_out=..
///   (one line in the output; wrapped here)
///   quadtree: ok=20 failed=0 bytes_in=.. bytes_out=.. mean_wall_ms=0.52
std::string DumpStats(const SyncServerMetrics& metrics, uint64_t generation,
                      uint64_t replica_seq);

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SERVER_STATS_H_
