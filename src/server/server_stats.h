// Metrics shared by both sync-serving hosts.
//
// The thread-per-connection SyncServer (server/sync_server.h) and the
// epoll-sharded AsyncSyncServer (server/async_sync_server.h) report the
// same counters, so benches and tests compare the two hosts row for row.
// `peak_active_sessions` is the high-water mark of concurrently open
// sessions — the number that separates the hosts: a threaded host can
// never exceed its worker count, the async host sustains every connected
// client at once.

#ifndef RSR_SERVER_SERVER_STATS_H_
#define RSR_SERVER_SERVER_STATS_H_

#include <cstddef>
#include <map>
#include <string>

namespace rsr {
namespace server {

/// Accounting for one negotiated protocol.
struct ProtocolStats {
  size_t syncs = 0;      ///< Completed successfully.
  size_t failures = 0;   ///< Finished with an error.
  size_t bytes_in = 0;   ///< Framed bytes received from clients.
  size_t bytes_out = 0;  ///< Framed bytes sent to clients.
  double wall_seconds = 0.0;  ///< Summed session wall time (mean = /syncs).
};

/// Snapshot of a server's counters.
struct SyncServerMetrics {
  size_t connections_accepted = 0;
  size_t active_sessions = 0;
  size_t peak_active_sessions = 0;
  size_t syncs_completed = 0;
  size_t syncs_failed = 0;
  size_t handshakes_rejected = 0;
  size_t idle_timeouts = 0;  ///< Async host only (no deadline elsewhere).
  size_t bytes_in = 0;
  size_t bytes_out = 0;
  std::map<std::string, ProtocolStats> per_protocol;
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SERVER_STATS_H_
