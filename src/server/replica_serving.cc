#include "server/replica_serving.h"

#include <algorithm>
#include <utility>

#include "recon/exact_recon.h"

namespace rsr {
namespace server {

StrataEstimator SnapshotStrata(const SketchSnapshot& snapshot,
                               const recon::ProtocolContext& context) {
  const StrataConfig config = recon::ExactReconStrataConfig(context.seed);
  std::optional<StrataEstimator> cached = snapshot.ExactStrata(config);
  if (cached.has_value()) return *std::move(cached);
  StrataEstimator estimator(config);
  for (const auto& [key, point] :
       recon::ExactKeyedPoints(snapshot.points(), context.seed)) {
    (void)point;
    estimator.Insert(key);
  }
  return estimator;
}

LogBatchFrame BuildLogBatch(const LogFetchFrame& fetch,
                            const replica::Changelog* changelog,
                            const SketchSnapshot& snapshot,
                            uint64_t replica_seq, bool repair_dirty,
                            const recon::ProtocolContext& context,
                            size_t max_entries_cap) {
  LogBatchFrame batch;
  batch.last_seq = replica_seq;
  batch.dirty = repair_dirty;
  if (changelog != nullptr) {
    size_t cap = max_entries_cap;
    if (fetch.max_entries > 0) {
      cap = std::min<size_t>(cap, static_cast<size_t>(fetch.max_entries));
    }
    replica::FetchedEntries fetched = changelog->Fetch(fetch.from_seq, cap);
    batch.ok = fetched.ok;
    batch.complete = fetched.complete;
    batch.entries = std::move(fetched.entries);
  }
  if (!batch.ok || batch.dirty || fetch.want_strata) {
    batch.strata = SnapshotStrata(snapshot, context);
  }
  return batch;
}

}  // namespace server
}  // namespace rsr
