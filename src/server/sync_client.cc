#include "server/sync_client.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "recon/session.h"
#include "server/handshake.h"
#include "util/random.h"

namespace rsr {
namespace server {

namespace {

using recon::SessionError;

void FailOutcome(SyncOutcome* outcome, SessionError error) {
  outcome->result.success = false;
  if (outcome->result.error == SessionError::kNone) {
    outcome->result.error = error;
  }
}

/// Instance salt for the client's trace id generator ("clisyncc").
constexpr uint64_t kClientSpanSalt = 0x636c6973796e6363ULL;

}  // namespace

SyncClient::SyncClient(SyncClientOptions options)
    : options_(std::move(options)),
      registry_(options_.registry != nullptr
                    ? options_.registry
                    : &recon::ProtocolRegistry::Global()),
      trace_gen_(std::make_unique<obs::TraceIdGenerator>(options_.trace_seed,
                                                         kClientSpanSalt)) {}

SyncOutcome SyncClient::Sync(net::ByteStream* stream,
                             const std::string& protocol,
                             const PointSet& local_points) const {
  const auto start_time = std::chrono::steady_clock::now();
  SyncOutcome outcome;
  net::FramedStream framed(stream, options_.limits);

  // One root trace per sync: the server joins it (propagate_trace ships
  // the context on "@hello") and the caller can stamp the resulting
  // mutation with it, so client span, server span, and downstream
  // replication rounds all share outcome.trace_hi/lo.
  obs::TraceContext trace;
  if (options_.propagate_trace || options_.trace_sink != nullptr) {
    trace = trace_gen_->NewTrace();
    outcome.trace_hi = trace.trace_hi;
    outcome.trace_lo = trace.trace_lo;
  }
  obs::SessionSpan span(options_.trace_sink, "sync-client");
  if (span.active()) {
    span.SetTrace(trace, 0);
    span.set_protocol(protocol);
    span.BeginPhase("handshake");
  }

  const auto finish = [&](SyncOutcome&& done) {
    stream->Close();
    done.bytes_sent = framed.bytes_sent();
    done.bytes_received = framed.bytes_received();
    done.wall_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_time)
                            .count();
    if (span.active()) {
      span.AddFrameOut(done.bytes_sent);
      span.AddFrameIn(done.bytes_received);
      if (done.result.success) {
        span.set_outcome("ok");
      } else if (done.result.error == SessionError::kProtocolRejected) {
        span.set_outcome("rejected");
      } else {
        span.set_outcome("fail");
      }
      span.Finish();
    }
    return std::move(done);
  };

  // The client needs the protocol locally to build Alice's endpoint, so an
  // unknown name fails before any traffic.
  const std::unique_ptr<recon::Reconciler> reconciler =
      registry_->Create(protocol, options_.context, options_.params);
  if (reconciler == nullptr) {
    outcome.reject_reason = "protocol \"" + protocol + "\" not in the local registry";
    FailOutcome(&outcome, SessionError::kProtocolRejected);
    return finish(std::move(outcome));
  }

  // --------------------------------------------------------- handshake
  HelloFrame hello;
  hello.protocol = protocol;
  hello.client_set_size = local_points.size();
  hello.want_result_set = options_.want_result_set;
  if (options_.propagate_trace) hello.trace = trace;
  if (!framed.Send(EncodeHello(hello))) {
    outcome.error_detail = "handshake: transport failed sending " +
                           std::string(kHelloLabel);
    FailOutcome(&outcome, SessionError::kTransportClosed);
    return finish(std::move(outcome));
  }

  transport::Message incoming;
  const auto accept_status = framed.Receive(&incoming);
  if (accept_status != net::FramedStream::RecvStatus::kMessage) {
    // EOF while the handshake is outstanding is its own diagnosis: the
    // server went away before ever answering, as opposed to a protocol
    // failing mid-session. kClosed is the clean between-frames EOF;
    // a truncated @accept (EOF mid-frame) surfaces as kError with
    // kMalformedMessage and keeps that more specific error.
    if (accept_status == net::FramedStream::RecvStatus::kClosed) {
      outcome.error_detail = "handshake: stream ended awaiting " +
                             std::string(kAcceptLabel);
      FailOutcome(&outcome, SessionError::kTransportClosed);
    } else {
      outcome.error_detail = "handshake: receive failed awaiting " +
                             std::string(kAcceptLabel) + " (" +
                             recon::SessionErrorName(framed.error()) + ")";
      FailOutcome(&outcome, framed.error());
    }
    return finish(std::move(outcome));
  }
  if (incoming.label == kRejectLabel) {
    RejectFrame reject;
    if (DecodeReject(incoming, &reject)) {
      outcome.reject_reason = std::move(reject.reason);
      outcome.server_protocols = std::move(reject.protocols);
    }
    FailOutcome(&outcome, SessionError::kProtocolRejected);
    return finish(std::move(outcome));
  }
  AcceptFrame accept;
  if (!DecodeAccept(incoming, &accept) || accept.protocol != protocol) {
    outcome.error_detail = "handshake: expected " +
                           std::string(kAcceptLabel) + " for \"" + protocol +
                           "\", got \"" + incoming.label + "\"";
    FailOutcome(&outcome, SessionError::kUnexpectedMessage);
    return finish(std::move(outcome));
  }
  outcome.handshake_ok = true;
  outcome.server_generation = accept.generation;
  outcome.server_replica_seq = accept.replica_seq;
  span.BeginPhase("rounds");

  // -------------------------------------------------------- session pump
  const std::unique_ptr<recon::PartySession> alice =
      reconciler->MakeAliceSession(local_points);
  for (transport::Message& opening : alice->Start()) {
    if (!framed.Send(opening)) {
      outcome.error_detail =
          "session: transport failed sending opening frames";
      FailOutcome(&outcome, SessionError::kTransportClosed);
      return finish(std::move(outcome));
    }
  }
  size_t deliveries = 0;
  for (;;) {
    if (framed.Receive(&incoming) != net::FramedStream::RecvStatus::kMessage) {
      outcome.error_detail = "session: receive failed awaiting protocol or " +
                             std::string(kResultLabel) + " frames (" +
                             recon::SessionErrorName(framed.error()) + ")";
      FailOutcome(&outcome, framed.error());
      return finish(std::move(outcome));
    }
    if (incoming.label == kResultLabel) {
      ResultFrame result_frame;
      if (!DecodeResult(incoming, options_.context.universe, &result_frame)) {
        FailOutcome(&outcome, SessionError::kMalformedMessage);
        return finish(std::move(outcome));
      }
      outcome.result = std::move(result_frame.result);
      return finish(std::move(outcome));
    }
    if (IsControlLabel(incoming.label) || alice->IsDone()) {
      // Only "@result" may follow once Alice has finished, and no other
      // control frame belongs in the protocol phase.
      FailOutcome(&outcome, SessionError::kUnexpectedMessage);
      return finish(std::move(outcome));
    }
    if (++deliveries > options_.max_deliveries) {
      FailOutcome(&outcome, SessionError::kStalled);
      return finish(std::move(outcome));
    }
    for (transport::Message& reply : alice->OnMessage(std::move(incoming))) {
      if (!framed.Send(reply)) {
        outcome.error_detail = "session: transport failed sending replies";
        FailOutcome(&outcome, SessionError::kTransportClosed);
        return finish(std::move(outcome));
      }
    }
  }
}

bool FetchStats(net::ByteStream* stream, std::string* text,
                net::FrameLimits limits) {
  if (stream == nullptr || text == nullptr) return false;
  net::FramedStream framed(stream, limits);
  bool ok = framed.Send(EncodeStatsRequest());
  transport::Message reply;
  ok = ok &&
       framed.Receive(&reply) == net::FramedStream::RecvStatus::kMessage &&
       DecodeStatsReply(reply, text);
  stream->Close();
  return ok;
}

SyncOutcome SyncClient::SyncWithRetry(const StreamFactory& connect,
                                      const std::string& protocol,
                                      const PointSet& local_points,
                                      const SyncRetryPolicy& policy) const {
  const size_t max_attempts = std::max<size_t>(1, policy.max_attempts);
  Rng rng(policy.seed);
  double backoff_ms =
      static_cast<double>(policy.initial_backoff.count());
  SyncOutcome outcome;
  for (size_t attempt = 1;; ++attempt) {
    const std::unique_ptr<net::ByteStream> stream = connect();
    if (stream != nullptr) {
      outcome = Sync(stream.get(), protocol, local_points);
    } else {
      outcome = SyncOutcome{};
      outcome.error_detail = "handshake: connect failed";
      FailOutcome(&outcome, SessionError::kTransportClosed);
    }
    outcome.attempts_used = attempt;
    // Only pre-session failures are safely retryable (SyncRetryPolicy).
    if (outcome.result.success || outcome.handshake_ok ||
        attempt >= max_attempts) {
      return outcome;
    }
    const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
    const double factor = 1.0 - jitter + 2.0 * jitter * rng.NextDouble();
    const auto wait = std::chrono::duration<double, std::milli>(
        std::max(0.0, backoff_ms * factor));
    if (policy.sleep_fn) {
      policy.sleep_fn(
          std::chrono::duration_cast<std::chrono::milliseconds>(wait));
    } else {
      std::this_thread::sleep_for(wait);
    }
    backoff_ms *= std::max(1.0, policy.multiplier);
  }
}

}  // namespace server
}  // namespace rsr
