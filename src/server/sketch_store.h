// Canonical sketch store: compute the serving sketches once, then keep
// them current under churn.
//
// The serving hosts reconcile one canonical point set against every
// connecting replica. All of the canonical side's sketches — quadtree
// per-level histogram IBLTs, adaptive strata probes, the exact baseline's
// strata estimator, MLSH per-level RIBLTs, the one-shot exact-key RIBLT —
// are linear in the point multiset, so there is no reason to pay the
// set-proportional build per connection (which is what made sketch
// protocols serve slower than full transfer in BENCH_E16): the store
// builds each sketch once from public parameters and afterwards maintains
// it with O(levels) Insert/Erase calls per mutated point.
//
// Snapshots: readers (sessions) get an immutable, generation-stamped
// SketchSnapshot — the point set plus its sketches — behind a shared_ptr.
// ApplyUpdate never mutates a published snapshot; it clones the O(k·levels)
// sketch state, applies the increments, and publishes a new snapshot, so
// in-flight sessions pinned to an older generation keep a consistent view
// for as long as they hold the pointer. The generation travels in the
// "@accept" handshake frame, which is what lets a load harness check a
// served result against the exact canonical set it was served from
// (bench/bench_e18_churn.cc).
//
// Width changes: the quadtree histogram value layout depends on |S| via
// HistogramCountBits, and the RIBLT sum-field widths depend on |S| via
// max_entries = 2n + 2 (riblt-oneshot and the MLSH ladder). A batch that
// crosses either boundary (or the first build) takes the from-scratch
// path; every other batch is incremental. See DESIGN.md §9 for the
// linearity argument and the per-protocol cacheability table.

#ifndef RSR_SERVER_SKETCH_STORE_H_
#define RSR_SERVER_SKETCH_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geometry/grid.h"
#include "iblt/iblt.h"
#include "iblt/strata.h"
#include "lshrecon/lsh.h"
#include "obs/metrics.h"
#include "recon/registry.h"
#include "recon/sketch_provider.h"
#include "riblt/riblt.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace server {

/// Optional store instrumentation (DESIGN.md §12). Pointers are not owned
/// and must outlive the store; any may be null (that probe is disabled).
struct SketchStoreMetrics {
  obs::Histogram* apply_seconds = nullptr;  ///< ApplyUpdate wall time.
  obs::Counter* rebuilds = nullptr;  ///< From-scratch Rebuild() builds.
  obs::Gauge* generation = nullptr;  ///< Published snapshot generation.
  obs::Gauge* points = nullptr;      ///< Canonical set size.
};

/// Registers the rsr_store_* instruments on `registry` and returns the
/// bundle. The ApplyUpdate latency probe is gated on `latency_probes`
/// (the counters and gauges are per-batch, never hot, and stay on).
SketchStoreMetrics MakeStoreMetrics(obs::MetricsRegistry* registry,
                                    bool latency_probes);

struct SketchStoreOptions {
  /// Shared public coins and protocol tunables; must equal what the host
  /// passes to the registry when creating sessions, or the provider's
  /// config checks will (safely) decline every request.
  recon::ProtocolContext context;
  recon::ProtocolParams params;
  /// When false the store maintains only the point set — snapshots decline
  /// every sketch request and sessions rebuild from the set. This is the
  /// rebuild baseline the churn bench compares against.
  bool materialize = true;
  /// Instrumentation hooks (see MakeStoreMetrics); default: all disabled.
  SketchStoreMetrics metrics;
};

/// One immutable generation of the canonical set and its sketches.
class SketchSnapshot final : public recon::CanonicalSketchProvider {
 public:
  uint64_t generation() const { return generation_; }
  const PointSet& points() const { return points_; }
  size_t size() const { return points_.size(); }

  std::optional<Iblt> QuadtreeLevelIblt(const IbltConfig& config,
                                        int level) const override;
  std::optional<StrataEstimator> QuadtreeLevelProbe(
      const StrataConfig& config, int level) const override;
  std::optional<StrataEstimator> ExactStrata(
      const StrataConfig& config) const override;
  std::shared_ptr<const recon::KeyedPointList> ExactKeyedPoints(
      uint64_t seed) const override;
  std::optional<Riblt> MlshLevelRiblt(const RibltConfig& config,
                                      size_t level_index) const override;
  std::optional<Riblt> OneShotRiblt(const RibltConfig& config) const override;

 private:
  friend class SketchStore;
  SketchSnapshot() = default;

  /// Everything cached for one quadtree level: the histogram IBLT the
  /// one-shot/single-grid sessions subtract, and the strata probe the
  /// adaptive sessions compare.
  struct LevelSketch {
    int level;
    IbltConfig iblt_config;
    Iblt iblt;
    StrataConfig probe_config;
    StrataEstimator probe;
  };

  PointSet points_;
  uint64_t generation_ = 0;
  bool materialized_ = false;
  uint64_t seed_ = 0;

  std::vector<LevelSketch> levels_;
  StrataConfig exact_config_;
  std::optional<StrataEstimator> exact_strata_;
  std::shared_ptr<const recon::KeyedPointList> exact_keyed_;
  std::vector<RibltConfig> mlsh_configs_;
  std::vector<Riblt> mlsh_tables_;
  std::optional<RibltConfig> oneshot_config_;
  std::optional<Riblt> oneshot_;
};

/// The mutable store. Thread-safe: any number of threads may call
/// Snapshot() while one (or several, serialized internally) call
/// ApplyUpdate.
class SketchStore {
 public:
  SketchStore(PointSet canonical, SketchStoreOptions options);

  /// The current generation's immutable snapshot.
  std::shared_ptr<const SketchSnapshot> Snapshot() const;

  /// Applies one batch of mutations — erases first (each removes the first
  /// equal point; erases of absent points are ignored), then inserts —
  /// and publishes a new snapshot, which is also returned. Sketch work is
  /// O((|inserts| + |erases|) · levels), independent of |S|, except when
  /// the batch crosses a histogram-width boundary (see header comment).
  std::shared_ptr<const SketchSnapshot> ApplyUpdate(const PointSet& inserts,
                                                    const PointSet& erases);

  uint64_t generation() const { return Snapshot()->generation(); }
  size_t size() const { return Snapshot()->size(); }

 private:
  struct PointOrder {
    bool operator()(const Point& a, const Point& b) const {
      return PointLess(a, b);
    }
  };
  /// Multiset view of the canonical set (sorted, per-point multiplicity):
  /// drives the occurrence-indexed exact keys and the keyed-list rebuild.
  using PointCounts = std::map<Point, int64_t, PointOrder>;

  /// From-scratch build of snapshot + maintenance state for `points`.
  std::shared_ptr<SketchSnapshot> Rebuild(PointSet points,
                                          uint64_t generation)
      RSR_REQUIRES(mu_);
  /// Pushes generation/size onto the gauges.
  void PublishMetrics() const RSR_REQUIRES(mu_);
  /// Applies one point's insertion (direction +1) or removal (-1) to every
  /// sketch of `snap` and to the maintenance histograms.
  void UpdatePoint(SketchSnapshot* snap, const Point& p, int direction)
      RSR_REQUIRES(mu_);

  const recon::ProtocolContext context_;
  const recon::ProtocolParams params_;  // Resolved()
  const bool materialize_;
  const SketchStoreMetrics metrics_;
  const ShiftedGrid grid_;
  std::vector<int> cached_levels_;
  std::vector<size_t> mlsh_prefixes_;
  std::unique_ptr<lshrecon::MlshFamily> mlsh_family_;

  /// Guards the published snapshot pointer and the incremental
  /// maintenance state. On a replicating host this mutex nests INSIDE
  /// the host's replica_mu_ (replica_mu_ → store mu_; see DESIGN.md
  /// §13) — never take replica_mu_ while holding it.
  mutable Mutex mu_;
  std::shared_ptr<const SketchSnapshot> snapshot_ RSR_GUARDED_BY(mu_);
  /// Per cached level: cell key -> (cell, count); the store's own record
  /// of the current histograms, needed to translate a point mutation into
  /// the erase-old-entry / insert-new-entry pair on the level sketches.
  std::vector<std::unordered_map<uint64_t, CellCount>> level_histograms_
      RSR_GUARDED_BY(mu_);
  PointCounts point_counts_ RSR_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SKETCH_STORE_H_
