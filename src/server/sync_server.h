// Many-client sync server over the protocol registry.
//
// One SyncServer owns a canonical point set and reconciles it concurrently
// against any number of connecting replicas. Per connection it performs the
// "@hello"/"@accept" handshake (server/handshake.h), instantiates the
// negotiated protocol's Bob-side PartySession against the canonical set,
// pumps it over framed messages (net/frame.h) until it finishes, and ships
// the ReconResult back in an "@result" frame — exactly the computation
// recon::DrivePair performs in-process, so a served sync is bit-identical
// to the two-party driver on the same inputs.
//
// The canonical set lives in a SketchStore (server/sketch_store.h): each
// session is pinned to one immutable generation-stamped snapshot, and by
// default serves from the snapshot's cached sketches instead of rebuilding
// them from the set — the linearity of the sketches makes the two
// bit-identical while removing the set-proportional per-connection cost.
// ApplyUpdate mutates the canonical set between (or during) syncs;
// in-flight sessions keep their pinned snapshot. See DESIGN.md §9.
//
// Threading model: Start() spawns one accept thread plus a fixed pool of
// worker threads; accepted connections go through a queue and each worker
// serves one connection at a time, blocking on its socket. Sessions are
// single-threaded end to end — only the queue (behind a mutex) and the
// metrics registry (lock-free record path; server/server_obs.h) are
// shared — which is what keeps the protocol code
// (written for the in-process driver) safe to host unchanged. See
// DESIGN.md §6.

#ifndef RSR_SERVER_SYNC_SERVER_H_
#define RSR_SERVER_SYNC_SERVER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/byte_stream.h"
#include "net/frame.h"
#include "net/tcp.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "recon/registry.h"
#include "replica/changelog.h"
#include "server/server_obs.h"
#include "server/server_stats.h"
#include "server/sketch_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace server {

struct SyncServerOptions {
  /// Shared public coins; clients must be constructed with the same
  /// context or the hash-based sketches will not line up.
  recon::ProtocolContext context;
  recon::ProtocolParams params;
  size_t worker_threads = 4;
  net::FrameLimits limits;
  /// Runaway-protocol safeguard, as in recon::DrivePair.
  size_t max_deliveries = 1 << 16;
  /// Serve Bob sessions from the SketchStore's cached canonical sketches
  /// (computed once, maintained incrementally under ApplyUpdate) instead
  /// of rebuilding them from the set per connection. Results are
  /// bit-identical either way; false is the rebuild baseline measured by
  /// bench_e18_churn.
  bool serve_from_cache = true;
  /// Protocol registry to negotiate against; nullptr = the global one.
  const recon::ProtocolRegistry* registry = nullptr;
  /// When set, the host replicates: every ApplyUpdate is journaled here
  /// (write-through, under one lock with the store mutation), "@log-fetch"
  /// is served from it, and the host's replication position travels in
  /// every "@accept". Not owned; must outlive the server.
  replica::Changelog* changelog = nullptr;
  /// Upper bound on entries per served "@log-batch" (a fetch's own
  /// max_entries only tightens it).
  size_t log_fetch_max_entries = 512;
  /// Per-session idle deadline: a connection whose socket yields no byte
  /// for this long is failed and counted in idle_timeouts. 0 disables.
  /// Enforced only where the transport can arm a read deadline
  /// (ByteStream::SetReadTimeout — TCP yes, pipes no).
  std::chrono::milliseconds idle_timeout{0};
  /// Gates the optional latency probes (worker-queue delay, store apply
  /// latency). Session outcome counters and per-protocol latency
  /// histograms stay on regardless — DumpStats() is rebuilt from them.
  bool latency_probes = true;
  /// Per-session trace spans (obs/trace.h) are emitted here; null
  /// disables tracing. Not owned; must outlive the server.
  obs::TraceSink* trace_sink = nullptr;
  /// Keep/drop policy applied when a span finishes (errors and slow
  /// sessions are always kept). The default keeps everything.
  obs::TraceSamplingPolicy trace_sampling;
  /// Seed for trace ids minted for sessions that arrive without inbound
  /// context (0 = real entropy); tests pin it for replayable ids.
  uint64_t trace_seed = 0;
  /// Monotonic clock stamping changelog appends (replication-lag
  /// telemetry; DESIGN.md §12). Null = obs::Clock::Real(). Not owned.
  obs::Clock* clock = nullptr;
};

// ProtocolStats and SyncServerMetrics moved to server/server_stats.h so
// the async host (server/async_sync_server.h) reports identical counters.

class SyncServer {
 public:
  SyncServer(PointSet canonical, SyncServerOptions options);
  ~SyncServer();

  SyncServer(const SyncServer&) = delete;
  SyncServer& operator=(const SyncServer&) = delete;

  /// Serves exactly one connection to completion on the calling thread.
  /// This is the whole per-session logic; Start()'s workers call it, and
  /// tests drive it directly over a PipeStream.
  void ServeConnection(net::ByteStream* stream);

  /// Spawns the accept thread and worker pool over `listener`. Returns
  /// false if already started or `listener` is null.
  bool Start(std::unique_ptr<net::TcpListener> listener);

  /// Closes the listener plus every queued and in-flight connection
  /// stream (so shutdown never waits on a silent client), then joins all
  /// threads. Idempotent; also called by the destructor.
  void Stop();

  /// Bound TCP port (0 unless Start()ed).
  uint16_t port() const;

  /// Legacy flat counters snapshot, rebuilt from the metrics registry.
  SyncServerMetrics metrics() const;

  /// Plain-text counters dump (server/server_stats.h): one totals line
  /// (generation + replication position included) plus one line per
  /// negotiated protocol.
  std::string DumpStats() const;

  /// The host's metrics registry — the "@stats" admin verb and the syncd
  /// `--metrics-port` HTTP responder serve its Prometheus rendering, and
  /// subsystems riding on this host (replica/replica_node.h) register
  /// their instruments here. See DESIGN.md §12.
  obs::MetricsRegistry& metrics_registry() { return obs_.registry(); }
  const obs::MetricsRegistry& metrics_registry() const {
    return obs_.registry();
  }

  /// The registry in Prometheus text exposition format (what "@stats"
  /// answers with).
  std::string RenderMetrics() const {
    return obs_.registry().RenderPrometheus();
  }

  /// Mutates the canonical set (erases first, then inserts; see
  /// SketchStore::ApplyUpdate) and returns the new generation's snapshot.
  /// Safe to call while connections are being served: in-flight sessions
  /// finish against the snapshot they were accepted under. On a
  /// replicating host the batch is also journaled at replica_seq() + 1,
  /// atomically with the store mutation.
  std::shared_ptr<const SketchSnapshot> ApplyUpdate(const PointSet& inserts,
                                                    const PointSet& erases);

  /// ApplyUpdate variant stamping the journaled entry with the trace
  /// that caused the mutation, so downstream replication rounds can link
  /// their spans to it (the append-time clock stamp is taken either
  /// way). An invalid `trace` journals an untraced entry.
  std::shared_ptr<const SketchSnapshot> ApplyUpdate(
      const PointSet& inserts, const PointSet& erases,
      const obs::TraceContext& trace);

  /// Applies one journaled entry fetched from a peer (the log catch-up
  /// path): exactly ApplyUpdate, except the position comes from the entry
  /// and the entry is mirrored into this host's own changelog verbatim, so
  /// the replayed history stays bit-identical to the writer's. Entries at
  /// or below replica_seq() are skipped (idempotent); an entry above
  /// replica_seq() + 1 is a replication bug and checks fatally.
  std::shared_ptr<const SketchSnapshot> ApplyReplicated(
      const replica::ChangeEntry& entry);

  /// Installs the outcome of a protocol repair against a peer at position
  /// `seq`: applies the delta, then — when the repair was `exact` (an
  /// exact-key protocol against a clean peer) — adopts `seq` as this
  /// host's position and re-bases the changelog there
  /// (Changelog::MarkSnapshot). An approximate repair leaves the position
  /// and log alone and marks the host dirty: its set now corresponds to no
  /// journal position, so it must repair (never tail-replay) until an
  /// exact repair lands. See replica/replica_node.h.
  std::shared_ptr<const SketchSnapshot> InstallRepair(const PointSet& inserts,
                                                      const PointSet& erases,
                                                      uint64_t seq,
                                                      bool exact);

  /// Replication position: seq of the last journaled mutation folded into
  /// the canonical set (0 on a non-replicating host).
  uint64_t replica_seq() const;

  /// True after an approximate repair, until an exact one supersedes it.
  bool repair_dirty() const;

  /// The current canonical snapshot (points + generation + sketches).
  std::shared_ptr<const SketchSnapshot> snapshot() const {
    return store_.Snapshot();
  }

  /// The current canonical point set (by value: the set mutates under
  /// ApplyUpdate while the snapshot it came from stays frozen).
  PointSet canonical() const { return store_.Snapshot()->points(); }

 private:
  /// Per-connection I/O wrapper (defined in the .cc): FramedStream plus
  /// the idle-deadline classification and the session's trace span.
  struct SessionIo;

  void AcceptLoop();
  void WorkerLoop();
  /// Serves an "@log-fetch" opening frame to completion (the whole
  /// connection is that one exchange). Called by ServeConnection.
  void ServeLogFetch(SessionIo& io, const transport::Message& first,
                     net::ByteStream* stream);
  /// Serves an "@pull" opening frame: hosts the Alice side of the named
  /// protocol over the canonical snapshot until the puller closes.
  void ServePull(SessionIo& io, const transport::Message& first,
                 net::ByteStream* stream);
  /// Serves an "@stats" opening frame: one reply carrying RenderMetrics().
  void ServeStats(SessionIo& io, net::ByteStream* stream);
  void SettleSession(SessionIo& io, const std::string& name, bool success,
                     double wall_seconds);
  /// Attaches trace identity + sampling to the session span: adopts the
  /// inbound context (deriving this host's span id with `salt`) or mints
  /// a fresh root trace when tracing is on and none arrived.
  void AdoptTrace(SessionIo& io, const obs::TraceContext& inbound,
                  uint64_t salt);

  const SyncServerOptions options_;
  /// Declared before store_: the store's instruments live in obs_'s
  /// registry.
  ServerObs obs_;
  obs::Clock* const clock_;
  /// Mints trace ids for sessions arriving without inbound context.
  obs::TraceIdGenerator trace_gen_;
  SketchStore store_;
  const recon::ProtocolRegistry* const registry_;
  /// Replication-position instruments, set on the write path under
  /// replica_mu_ so a scrape never takes that lock.
  obs::Gauge* const replica_seq_gauge_;
  obs::Gauge* const repair_dirty_gauge_;

  /// Guards the (store mutation, changelog append, replica_seq_,
  /// repair_dirty_) compound so a served snapshot + position pair is
  /// always consistent. LOCK ORDER: this is the OUTERMOST lock of the
  /// write path — the store's and changelog's internal mutexes nest
  /// inside it (replica_mu_ → store mu_ / changelog mu_; DESIGN.md §13).
  /// Never call back into SyncServer's locking methods while holding it.
  mutable Mutex replica_mu_;
  uint64_t replica_seq_ RSR_GUARDED_BY(replica_mu_) = 0;
  bool repair_dirty_ RSR_GUARDED_BY(replica_mu_) = false;

  std::unique_ptr<net::TcpListener> listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  /// A queued connection remembers when it was accepted so the dequeuing
  /// worker can observe the queue-delay histogram.
  struct PendingConn {
    std::unique_ptr<net::ByteStream> stream;
    std::chrono::steady_clock::time_point enqueued;
  };

  Mutex queue_mu_;
  CondVar queue_cv_;
  std::deque<PendingConn> pending_ RSR_GUARDED_BY(queue_mu_);
  bool stopping_ RSR_GUARDED_BY(queue_mu_) = false;

  /// Streams currently inside a worker's ServeConnection; Stop() closes
  /// them to unblock sessions stuck on a silent or slow client.
  /// LOCK ORDER: acquired with queue_mu_ already held in the dequeue
  /// path, so active_mu_ nests inside queue_mu_ — never the reverse.
  Mutex active_mu_ RSR_ACQUIRED_AFTER(queue_mu_);
  std::set<net::ByteStream*> active_ RSR_GUARDED_BY(active_mu_);
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SYNC_SERVER_H_
