// Many-client sync server over the protocol registry.
//
// One SyncServer owns a canonical point set and reconciles it concurrently
// against any number of connecting replicas. Per connection it performs the
// "@hello"/"@accept" handshake (server/handshake.h), instantiates the
// negotiated protocol's Bob-side PartySession against the canonical set,
// pumps it over framed messages (net/frame.h) until it finishes, and ships
// the ReconResult back in an "@result" frame — exactly the computation
// recon::DrivePair performs in-process, so a served sync is bit-identical
// to the two-party driver on the same inputs.
//
// The canonical set lives in a SketchStore (server/sketch_store.h): each
// session is pinned to one immutable generation-stamped snapshot, and by
// default serves from the snapshot's cached sketches instead of rebuilding
// them from the set — the linearity of the sketches makes the two
// bit-identical while removing the set-proportional per-connection cost.
// ApplyUpdate mutates the canonical set between (or during) syncs;
// in-flight sessions keep their pinned snapshot. See DESIGN.md §9.
//
// Threading model: Start() spawns one accept thread plus a fixed pool of
// worker threads; accepted connections go through a queue and each worker
// serves one connection at a time, blocking on its socket. Sessions are
// single-threaded end to end — only the queue and the metrics are shared,
// each behind its own mutex — which is what keeps the protocol code
// (written for the in-process driver) safe to host unchanged. See
// DESIGN.md §6.

#ifndef RSR_SERVER_SYNC_SERVER_H_
#define RSR_SERVER_SYNC_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/byte_stream.h"
#include "net/frame.h"
#include "net/tcp.h"
#include "recon/registry.h"
#include "server/server_stats.h"
#include "server/sketch_store.h"

namespace rsr {
namespace server {

struct SyncServerOptions {
  /// Shared public coins; clients must be constructed with the same
  /// context or the hash-based sketches will not line up.
  recon::ProtocolContext context;
  recon::ProtocolParams params;
  size_t worker_threads = 4;
  net::FrameLimits limits;
  /// Runaway-protocol safeguard, as in recon::DrivePair.
  size_t max_deliveries = 1 << 16;
  /// Serve Bob sessions from the SketchStore's cached canonical sketches
  /// (computed once, maintained incrementally under ApplyUpdate) instead
  /// of rebuilding them from the set per connection. Results are
  /// bit-identical either way; false is the rebuild baseline measured by
  /// bench_e18_churn.
  bool serve_from_cache = true;
  /// Protocol registry to negotiate against; nullptr = the global one.
  const recon::ProtocolRegistry* registry = nullptr;
};

// ProtocolStats and SyncServerMetrics moved to server/server_stats.h so
// the async host (server/async_sync_server.h) reports identical counters.

class SyncServer {
 public:
  SyncServer(PointSet canonical, SyncServerOptions options);
  ~SyncServer();

  SyncServer(const SyncServer&) = delete;
  SyncServer& operator=(const SyncServer&) = delete;

  /// Serves exactly one connection to completion on the calling thread.
  /// This is the whole per-session logic; Start()'s workers call it, and
  /// tests drive it directly over a PipeStream.
  void ServeConnection(net::ByteStream* stream);

  /// Spawns the accept thread and worker pool over `listener`. Returns
  /// false if already started or `listener` is null.
  bool Start(std::unique_ptr<net::TcpListener> listener);

  /// Closes the listener plus every queued and in-flight connection
  /// stream (so shutdown never waits on a silent client), then joins all
  /// threads. Idempotent; also called by the destructor.
  void Stop();

  /// Bound TCP port (0 unless Start()ed).
  uint16_t port() const;

  SyncServerMetrics metrics() const;

  /// Mutates the canonical set (erases first, then inserts; see
  /// SketchStore::ApplyUpdate) and returns the new generation's snapshot.
  /// Safe to call while connections are being served: in-flight sessions
  /// finish against the snapshot they were accepted under.
  std::shared_ptr<const SketchSnapshot> ApplyUpdate(const PointSet& inserts,
                                                    const PointSet& erases) {
    return store_.ApplyUpdate(inserts, erases);
  }

  /// The current canonical snapshot (points + generation + sketches).
  std::shared_ptr<const SketchSnapshot> snapshot() const {
    return store_.Snapshot();
  }

  /// The current canonical point set (by value: the set mutates under
  /// ApplyUpdate while the snapshot it came from stays frozen).
  PointSet canonical() const { return store_.Snapshot()->points(); }

 private:
  void AcceptLoop();
  void WorkerLoop();

  const SyncServerOptions options_;
  SketchStore store_;
  const recon::ProtocolRegistry* const registry_;

  std::unique_ptr<net::TcpListener> listener_;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<net::ByteStream>> pending_;
  bool stopping_ = false;

  /// Streams currently inside a worker's ServeConnection; Stop() closes
  /// them to unblock sessions stuck on a silent or slow client.
  std::mutex active_mu_;
  std::set<net::ByteStream*> active_;

  mutable std::mutex metrics_mu_;
  SyncServerMetrics metrics_;
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SYNC_SERVER_H_
