// Alice-side client of the sync serving layer.
//
// SyncClient::Sync drives one full sync over any net::ByteStream: it sends
// "@hello" naming a registry protocol, waits for "@accept" (or surfaces the
// server's "@reject" — reason and available protocols — as
// SessionError::kProtocolRejected), runs the protocol's Alice-side
// PartySession over framed messages against its local point set, and
// returns the ReconResult the server shipped back in "@result". With
// want_result_set the result carries S'_B, the server's reconciled set for
// this client, which equals the in-process driver's output bit for bit.

#ifndef RSR_SERVER_SYNC_CLIENT_H_
#define RSR_SERVER_SYNC_CLIENT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "net/byte_stream.h"
#include "net/frame.h"
#include "recon/registry.h"

namespace rsr {
namespace server {

struct SyncClientOptions {
  /// Must match the server's context (shared public coins).
  recon::ProtocolContext context;
  recon::ProtocolParams params;
  net::FrameLimits limits;
  size_t max_deliveries = 1 << 16;
  /// Ask the server to ship the reconciled set back in "@result".
  bool want_result_set = true;
  /// Registry used to build the Alice session; nullptr = the global one.
  const recon::ProtocolRegistry* registry = nullptr;
};

/// Everything one Sync call produced.
struct SyncOutcome {
  bool handshake_ok = false;
  /// Canonical-set generation the server pinned this session to (from
  /// "@accept"; see server/sketch_store.h). 0 until the handshake
  /// succeeds.
  uint64_t server_generation = 0;
  /// Server-computed result (from "@result"); on a local/transport failure
  /// before "@result" arrived, a synthesized failure with the right error.
  recon::ReconResult result;
  /// Populated when the server rejected the handshake.
  std::string reject_reason;
  std::vector<std::string> server_protocols;
  /// Human-readable failure location ("" on success). A server that hangs
  /// up during the handshake is a different operational problem from one
  /// that dies mid-protocol; the stage names which ("handshake: stream
  /// ended awaiting @accept" vs "session: ...").
  std::string error_detail;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  double wall_seconds = 0.0;
};

class SyncClient {
 public:
  explicit SyncClient(SyncClientOptions options);

  /// Runs one sync of `local_points` against the server behind `stream`,
  /// negotiating `protocol`. Blocking; `stream` is closed on return.
  SyncOutcome Sync(net::ByteStream* stream, const std::string& protocol,
                   const PointSet& local_points) const;

 private:
  SyncClientOptions options_;
  const recon::ProtocolRegistry* registry_;
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SYNC_CLIENT_H_
