// Alice-side client of the sync serving layer.
//
// SyncClient::Sync drives one full sync over any net::ByteStream: it sends
// "@hello" naming a registry protocol, waits for "@accept" (or surfaces the
// server's "@reject" — reason and available protocols — as
// SessionError::kProtocolRejected), runs the protocol's Alice-side
// PartySession over framed messages against its local point set, and
// returns the ReconResult the server shipped back in "@result". With
// want_result_set the result carries S'_B, the server's reconciled set for
// this client, which equals the in-process driver's output bit for bit.

#ifndef RSR_SERVER_SYNC_CLIENT_H_
#define RSR_SERVER_SYNC_CLIENT_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/byte_stream.h"
#include "net/frame.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "recon/registry.h"

namespace rsr {
namespace server {

struct SyncClientOptions {
  /// Must match the server's context (shared public coins).
  recon::ProtocolContext context;
  recon::ProtocolParams params;
  net::FrameLimits limits;
  size_t max_deliveries = 1 << 16;
  /// Ask the server to ship the reconciled set back in "@result".
  bool want_result_set = true;
  /// Registry used to build the Alice session; nullptr = the global one.
  const recon::ProtocolRegistry* registry = nullptr;
  /// When set, every Sync emits one "sync-client" span here carrying the
  /// trace id minted for that sync. Null disables client-side tracing.
  /// Not owned; must outlive the client.
  obs::TraceSink* trace_sink = nullptr;
  /// Ship the minted trace context on "@hello" so the serving host's
  /// session span (and any replication it triggers) joins this sync's
  /// trace. Old servers ignore the trailing field. Off by default so the
  /// wire bytes only change when the caller opts into tracing.
  bool propagate_trace = false;
  /// Seed for minted trace ids (0 = real entropy); tests pin it.
  uint64_t trace_seed = 0;
};

/// Backoff schedule for SyncWithRetry. A rejected handshake (an
/// overloaded or restarting server answers "@reject") and a transport
/// failure BEFORE "@accept" are both worth retrying — the server never
/// started a session, so a retry cannot double-apply anything. A failure
/// after "@accept" is not retried: the session's outcome is unknown and
/// the caller must decide.
struct SyncRetryPolicy {
  size_t max_attempts = 3;  ///< Total attempts (1 = no retry).
  std::chrono::milliseconds initial_backoff{10};
  double multiplier = 2.0;  ///< Backoff growth per attempt.
  /// Each sleep is scaled by a uniform factor in [1-jitter, 1+jitter] so a
  /// fleet of clients rejected together does not retry together.
  double jitter = 0.5;
  uint64_t seed = 0;  ///< Jitter RNG seed.
  /// Clock seam: when set, backoff waits call this instead of sleeping the
  /// thread. Tests install a recorder here to pin down the schedule (its
  /// bounds and count) without wall-clock time in the loop.
  std::function<void(std::chrono::milliseconds)> sleep_fn;
};

/// Everything one Sync call produced.
struct SyncOutcome {
  bool handshake_ok = false;
  /// Canonical-set generation the server pinned this session to (from
  /// "@accept"; see server/sketch_store.h). 0 until the handshake
  /// succeeds.
  uint64_t server_generation = 0;
  /// Replication position of the serving host (from "@accept"; 0 for a
  /// non-replicating server). See AcceptFrame::replica_seq.
  uint64_t server_replica_seq = 0;
  /// Attempts consumed (1 for a plain Sync; up to the policy's
  /// max_attempts under SyncWithRetry).
  size_t attempts_used = 1;
  /// Server-computed result (from "@result"); on a local/transport failure
  /// before "@result" arrived, a synthesized failure with the right error.
  recon::ReconResult result;
  /// Populated when the server rejected the handshake.
  std::string reject_reason;
  std::vector<std::string> server_protocols;
  /// Human-readable failure location ("" on success). A server that hangs
  /// up during the handshake is a different operational problem from one
  /// that dies mid-protocol; the stage names which ("handshake: stream
  /// ended awaiting @accept" vs "session: ...").
  std::string error_detail;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  double wall_seconds = 0.0;
  /// Root trace id minted for this sync (0/0 when tracing is off): the id
  /// the server's session span — and, with propagate_trace, any
  /// replication rounds the mutation later rides — shares. Callers
  /// applying the reconciled delta pass it to the host's traced
  /// ApplyUpdate overload so the changelog entry carries it too.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
};

class SyncClient {
 public:
  explicit SyncClient(SyncClientOptions options);

  /// Runs one sync of `local_points` against the server behind `stream`,
  /// negotiating `protocol`. Blocking; `stream` is closed on return.
  SyncOutcome Sync(net::ByteStream* stream, const std::string& protocol,
                   const PointSet& local_points) const;

  /// Dials a fresh stream per attempt. Returning null counts as a failed
  /// (retryable) connect.
  using StreamFactory = std::function<std::unique_ptr<net::ByteStream>()>;

  /// Sync with retry-on-reject: runs Sync over a fresh stream from
  /// `connect`, and while the failure is pre-session (see SyncRetryPolicy)
  /// sleeps the jittered backoff and tries again, up to max_attempts. The
  /// returned outcome is the last attempt's, with attempts_used filled in.
  SyncOutcome SyncWithRetry(const StreamFactory& connect,
                            const std::string& protocol,
                            const PointSet& local_points,
                            const SyncRetryPolicy& policy = {}) const;

 private:
  SyncClientOptions options_;
  const recon::ProtocolRegistry* registry_;
  /// Mints one root trace per Sync. Behind a pointer because Sync() is
  /// const while the generator's state advances (it is internally
  /// thread-safe, matching Sync's const-usable contract).
  std::unique_ptr<obs::TraceIdGenerator> trace_gen_;
};

/// Admin client for the "@stats" verb (DESIGN.md §12): sends the request
/// over a fresh connection's `stream`, reads the one reply frame, and
/// stores the host's Prometheus text exposition in *text. Blocking; the
/// stream is closed on return. False on any transport or decode failure.
/// Works against both serving hosts.
bool FetchStats(net::ByteStream* stream, std::string* text,
                net::FrameLimits limits = {});

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_SYNC_CLIENT_H_
