// Event-driven many-client sync server: N epoll shards, zero blocked
// threads per connection.
//
// AsyncSyncServer serves the exact protocol SyncServer serves — the
// "@hello"/"@accept"/"@reject"/"@result" handshake over the
// ProtocolRegistry, one Bob-side PartySession per client, results
// bit-identical to recon::DrivePair — but hosts it on a reactor instead of
// a worker pool. Start() spawns `shards` threads, each running one
// net::EventLoop; the listener is accepted on shard 0 and every new
// connection is pinned to a shard round-robin at accept time. A pinned
// connection's whole life — frame decode, handshake, PartySession pump,
// result, drain — happens on that one shard thread, so sessions stay
// single-threaded with no locks on the hot path; only the metrics
// registry is shared (lock-free record path; server/server_obs.h).
//
// Because no thread ever blocks on a socket, concurrency is bounded by fd
// limits rather than thread count: two shards sustain hundreds of
// mostly-idle replicas where a two-worker SyncServer serializes them
// (bench/bench_e17_async_load.cc measures exactly this).
//
// Idle connections are bounded: a connection with no traffic for
// `idle_timeout` is failed with SessionError::kTransportClosed (a
// best-effort failure "@result" is flushed first if a session was live).
// Stop() drains deterministically — it closes the listener, then posts one
// shutdown task per shard that fails all of the shard's open connections
// and stops its loop, then joins the shard threads in index order.
// See DESIGN.md §8.

#ifndef RSR_SERVER_ASYNC_SYNC_SERVER_H_
#define RSR_SERVER_ASYNC_SYNC_SERVER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/async_frame.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/tcp.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "recon/registry.h"
#include "replica/changelog.h"
#include "server/server_obs.h"
#include "server/server_stats.h"
#include "server/sketch_store.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace rsr {
namespace server {

struct AsyncSyncServerOptions {
  /// Shared public coins; clients must be constructed with the same
  /// context or the hash-based sketches will not line up.
  recon::ProtocolContext context;
  recon::ProtocolParams params;
  /// Event-loop shards (threads). Each connection is pinned to one.
  size_t shards = 2;
  net::FrameLimits limits;
  /// Runaway-protocol safeguard, as in recon::DrivePair.
  size_t max_deliveries = 1 << 16;
  /// Per-connection idle deadline (coarse, event-loop tick granularity);
  /// zero disables. Expiry surfaces as SessionError::kTransportClosed.
  std::chrono::milliseconds idle_timeout{0};
  /// SO_SNDBUF for accepted connections; 0 keeps the kernel default.
  /// Small values bound per-connection kernel memory under huge fan-out —
  /// and force the partial-write flush paths the tests pin down.
  int so_sndbuf = 0;
  /// Serve Bob sessions from the SketchStore's cached canonical sketches
  /// (see server/sync_server.h; same semantics, same bit-identical
  /// results).
  bool serve_from_cache = true;
  /// Protocol registry to negotiate against; nullptr = the global one.
  const recon::ProtocolRegistry* registry = nullptr;
  /// When set, the host replicates like the threaded SyncServer: every
  /// ApplyUpdate is journaled (write-through), "@log-fetch" is served, and
  /// the replication position travels in every "@accept". The async host
  /// serves only the WRITER side of the mesh — it answers "@log-fetch"
  /// but rejects "@pull" (hosting an Alice session inverts the reactor's
  /// send/receive phases; followers run the threaded host instead, see
  /// DESIGN.md §10). Not owned; must outlive the server.
  replica::Changelog* changelog = nullptr;
  /// Upper bound on entries per served "@log-batch".
  size_t log_fetch_max_entries = 512;
  /// Gates the optional latency probes (accept-to-first-frame delay, the
  /// per-shard event-loop probes, store apply latency). Session outcome
  /// counters and per-protocol latency histograms stay on regardless —
  /// DumpStats() is rebuilt from them.
  bool latency_probes = true;
  /// Per-session trace spans (obs/trace.h) are emitted here; null
  /// disables tracing. Not owned; must outlive the server.
  obs::TraceSink* trace_sink = nullptr;
  /// Keep/drop policy applied when a span finishes (errors and slow
  /// sessions are always kept). The default keeps everything.
  obs::TraceSamplingPolicy trace_sampling;
  /// Seed for trace ids minted for sessions that arrive without inbound
  /// context (0 = real entropy); tests pin it for replayable ids.
  uint64_t trace_seed = 0;
  /// Monotonic clock stamping changelog appends (replication-lag
  /// telemetry; DESIGN.md §12). Null = obs::Clock::Real(). Not owned.
  obs::Clock* clock = nullptr;
};

class AsyncSyncServer {
 public:
  AsyncSyncServer(PointSet canonical, AsyncSyncServerOptions options);
  ~AsyncSyncServer();

  AsyncSyncServer(const AsyncSyncServer&) = delete;
  AsyncSyncServer& operator=(const AsyncSyncServer&) = delete;

  /// Spawns the shard threads and starts accepting on `listener` (flipped
  /// to non-blocking). Returns false if already started or null.
  bool Start(std::unique_ptr<net::TcpListener> listener);

  /// Closes the listener, fails every open connection, stops each shard
  /// loop and joins its thread, in shard order. Idempotent; also called
  /// by the destructor.
  void Stop();

  /// Bound TCP port (0 unless Start()ed).
  uint16_t port() const;

  /// Legacy flat counters snapshot, rebuilt from the metrics registry.
  SyncServerMetrics metrics() const;

  /// Plain-text counters dump (server/server_stats.h), identical in shape
  /// to SyncServer::DumpStats().
  std::string DumpStats() const;

  /// The host's metrics registry (see SyncServer::metrics_registry).
  obs::MetricsRegistry& metrics_registry() { return obs_.registry(); }
  const obs::MetricsRegistry& metrics_registry() const {
    return obs_.registry();
  }

  /// The registry in Prometheus text exposition format (what "@stats"
  /// answers with).
  std::string RenderMetrics() const {
    return obs_.registry().RenderPrometheus();
  }

  /// Mutates the canonical set and returns the new generation's snapshot;
  /// in-flight sessions finish against the snapshot they were pinned to at
  /// handshake time (server/sketch_store.h). On a replicating host the
  /// batch is also journaled at replica_seq() + 1, atomically with the
  /// store mutation.
  std::shared_ptr<const SketchSnapshot> ApplyUpdate(const PointSet& inserts,
                                                    const PointSet& erases);

  /// ApplyUpdate variant stamping the journaled entry with the trace that
  /// caused the mutation (see SyncServer::ApplyUpdate). An invalid `trace`
  /// journals an untraced entry.
  std::shared_ptr<const SketchSnapshot> ApplyUpdate(
      const PointSet& inserts, const PointSet& erases,
      const obs::TraceContext& trace);

  /// Replication position (0 on a non-replicating host).
  uint64_t replica_seq() const;

  /// The current canonical snapshot (points + generation + sketches).
  std::shared_ptr<const SketchSnapshot> snapshot() const {
    return store_.Snapshot();
  }

  /// The current canonical point set (by value; see server/sync_server.h).
  PointSet canonical() const { return store_.Snapshot()->points(); }

 private:
  struct Shard;
  struct Conn;

  void AcceptReady();
  /// Registers `stream` with `shard` (runs on the shard's loop thread).
  void AdoptConn(Shard* shard, std::unique_ptr<net::TcpStream> stream);
  void OnConnEvent(Conn* conn, uint32_t ready);
  void ProcessInbox(Conn* conn);
  void HandleHello(Conn* conn, transport::Message message);
  /// Serves an "@log-fetch" opening frame: one "@log-batch" reply, then
  /// the drain phase. (The "@pull" verb is NOT served here; see
  /// AsyncSyncServerOptions::changelog.)
  void HandleLogFetch(Conn* conn, transport::Message message);
  /// Serves an "@stats" opening frame: one reply with RenderMetrics().
  void HandleStats(Conn* conn);
  void HandleSessionMessage(Conn* conn, transport::Message message);
  /// Ends the protocol phase: takes Bob's result, applies `pump_error`,
  /// ships "@result", and moves the conn to the drain phase.
  void FinishSession(Conn* conn, recon::SessionError pump_error);
  /// Transport died: settles a live session as failed (no result frame —
  /// there is no one to ship it to) and closes.
  void FailConn(Conn* conn, recon::SessionError error);
  /// Reacts to the read side ending (clean EOF or error) once all frames
  /// decoded before the end have been processed.
  void HandleStreamEnd(Conn* conn, net::AsyncFramedConn::IoStatus status);
  void OnIdleTimeout(Conn* conn);
  void UpdateInterest(Conn* conn);
  void TouchIdleTimer(Conn* conn);
  /// Deregisters, settles metrics, and schedules destruction.
  void CloseConn(Conn* conn);
  /// Attaches trace identity + sampling to the conn's span: adopts the
  /// inbound context (deriving this host's span id with `salt`) or mints
  /// a fresh root trace when tracing is on and none arrived.
  void AdoptTrace(Conn* conn, const obs::TraceContext& inbound,
                  uint64_t salt);

  const AsyncSyncServerOptions options_;
  /// Declared before store_: the store's instruments live in obs_'s
  /// registry.
  ServerObs obs_;
  obs::Clock* const clock_;
  /// Mints trace ids for sessions arriving without inbound context.
  obs::TraceIdGenerator trace_gen_;
  SketchStore store_;
  const recon::ProtocolRegistry* const registry_;
  /// Replication position, mirrored onto a gauge on the write path.
  obs::Gauge* const replica_seq_gauge_;
  /// Shared per-shard loop instruments, installed on every shard's loop
  /// before its thread starts. All-null when latency_probes is off.
  net::EventLoop::Metrics loop_metrics_;

  /// Guards the (store mutation, changelog append, replica_seq_) compound
  /// so a served snapshot + position pair is always consistent.
  /// LOCK ORDER: outermost on the write path — the store's and
  /// changelog's internal mutexes nest inside it (DESIGN.md §13).
  /// Everything else on this host is shard-thread confined (one
  /// connection lives on exactly one EventLoop thread) and deliberately
  /// unannotated.
  mutable Mutex replica_mu_;
  uint64_t replica_seq_ RSR_GUARDED_BY(replica_mu_) = 0;

  std::unique_ptr<net::TcpListener> listener_;
  std::vector<std::unique_ptr<Shard>> shards_;
  size_t next_shard_ = 0;  ///< Round-robin cursor (accept path only).
};

}  // namespace server
}  // namespace rsr

#endif  // RSR_SERVER_ASYNC_SYNC_SERVER_H_
