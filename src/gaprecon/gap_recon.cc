#include "gaprecon/gap_recon.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hash/mix.h"
#include "iblt/iblt.h"
#include "iblt/sizing.h"
#include "iblt/strata.h"
#include "util/check.h"
#include "util/random.h"

namespace rsr {
namespace gaprecon {

double GapParams::CellSide(int d) const {
  const double effective_r2 = EffectiveR2(d);
  switch (metric) {
    case Metric::kL1:
      return effective_r2 / static_cast<double>(d);
    case Metric::kL2:
      return effective_r2 / std::sqrt(static_cast<double>(d));
    case Metric::kLinf:
      return effective_r2;
    case Metric::kHamming:
      // No meaningful lattice for Hamming; fall back to the ℓ1 bound.
      return effective_r2 / static_cast<double>(d);
  }
  return effective_r2 / static_cast<double>(d);
}

double GapParams::RhoHat(int d) const {
  // Union bound over axes: a pair at distance r1 straddles a lattice
  // boundary with probability at most (sum of per-axis offsets) / side,
  // which for every supported metric is bounded by r1 * d / r2.
  const double rho = r1 * static_cast<double>(d) / EffectiveR2(d);
  return rho < 0.95 ? rho : 0.95;
}

namespace {

// One randomly shifted lattice per function; shifts are doubles in
// [0, side) derived from the public seed.
class LatticeKeys {
 public:
  LatticeKeys(const Universe& universe, double side, int h, uint64_t seed)
      : universe_(universe), side_(side), h_(h) {
    RSR_CHECK(side > 0.0);
    Rng rng(seed ^ 0x676170ULL);  // "gap" tag
    shifts_.resize(static_cast<size_t>(h) *
                   static_cast<size_t>(universe.d));
    for (auto& s : shifts_) s = rng.NextDouble() * side;
  }

  /// Raw entry key of point `p` under lattice `j`.
  uint64_t Key(const Point& p, int j) const {
    const double* shift =
        shifts_.data() +
        static_cast<size_t>(j) * static_cast<size_t>(universe_.d);
    uint64_t hash = Hash64(static_cast<uint64_t>(j), 0x6c617474ULL);
    for (int i = 0; i < universe_.d; ++i) {
      const int64_t cell = static_cast<int64_t>(std::floor(
          (static_cast<double>(p[static_cast<size_t>(i)]) + shift[i]) /
          side_));
      hash = HashCombine(hash, static_cast<uint64_t>(cell));
    }
    return hash;
  }

  int h() const { return h_; }

 private:
  Universe universe_;
  double side_;
  int h_;
  std::vector<double> shifts_;
};

// Raw-key histogram plus the canonical occurrence-indexed key multiset.
struct EntrySet {
  std::unordered_map<uint64_t, int64_t> raw_counts;
  std::vector<uint64_t> occ_keys;
};

EntrySet BuildEntrySet(const PointSet& points, const LatticeKeys& lattice) {
  EntrySet set;
  set.raw_counts.reserve(points.size() * static_cast<size_t>(lattice.h()));
  for (const Point& p : points) {
    for (int j = 0; j < lattice.h(); ++j) {
      ++set.raw_counts[lattice.Key(p, j)];
    }
  }
  set.occ_keys.reserve(points.size() * static_cast<size_t>(lattice.h()));
  for (const auto& [raw, count] : set.raw_counts) {
    for (int64_t occ = 0; occ < count; ++occ) {
      set.occ_keys.push_back(HashCombine(raw, static_cast<uint64_t>(occ)));
    }
  }
  return set;
}

StrataConfig GapStrataConfig(uint64_t seed) {
  StrataConfig config;
  config.num_strata = 16;
  config.cells_per_stratum = 24;
  config.q = 4;
  config.checksum_bits = 32;
  config.count_bits = 10;
  config.seed = seed ^ 0x676170737472ULL;  // "gapstr" tag
  return config;
}

}  // namespace

GapResult GapReconciler::Run(const PointSet& alice, const PointSet& bob,
                             transport::Channel* channel) const {
  const Universe& universe = context_.universe;
  const int d = universe.d;
  const double rho = params_.RhoHat(d);
  RSR_CHECK_MSG(rho < 1.0, "gap model requires r2 > r1 * d");
  const size_t n = alice.size() > bob.size() ? alice.size() : bob.size();

  int h = params_.num_functions;
  if (h <= 0) {
    const double target =
        std::log(20.0 * static_cast<double>(n > 1 ? n : 2));
    h = static_cast<int>(std::ceil(target / std::log(1.0 / rho)));
    if (h < 2) h = 2;
  }

  const LatticeKeys lattice(universe, params_.CellSide(d), h, context_.seed);
  const EntrySet alice_entries = BuildEntrySet(alice, lattice);
  const EntrySet bob_entries = BuildEntrySet(bob, lattice);

  // --- Round 1 (A->B): strata estimator over Alice's entry keys. ---
  const StrataConfig strata_config = GapStrataConfig(context_.seed);
  {
    StrataEstimator est(strata_config);
    for (uint64_t key : alice_entries.occ_keys) est.Insert(key);
    BitWriter w;
    est.Serialize(&w);
    channel->Send(transport::Direction::kAliceToBob,
                  transport::MakeMessage("gap-strata", std::move(w)));
  }

  // --- Bob: estimate and ship an IBLT of his entry keys. ---
  uint64_t estimate = 0;
  {
    const transport::Message msg =
        channel->Receive(transport::Direction::kAliceToBob);
    BitReader r(msg.payload);
    std::optional<StrataEstimator> alice_est =
        StrataEstimator::Deserialize(strata_config, &r);
    RSR_CHECK(alice_est.has_value());
    StrataEstimator bob_est(strata_config);
    for (uint64_t key : bob_entries.occ_keys) bob_est.Insert(key);
    estimate = bob_est.EstimateDifference(*alice_est);
  }
  uint64_t target = static_cast<uint64_t>(
      static_cast<double>(estimate) * params_.estimate_safety);
  if (target < 16) target = 16;

  GapResult result;
  result.bob_final = bob;
  for (size_t attempt = 0; attempt < params_.max_attempts; ++attempt) {
    result.attempts = attempt + 1;
    IbltConfig config;
    config.cells = RecommendedCells(static_cast<size_t>(target) << attempt,
                                    params_.q, params_.headroom);
    config.q = params_.q;
    config.value_bits = 0;
    config.seed =
        Hash64(attempt, context_.seed ^ 0x676170696274ULL);  // "gapibt"

    // B -> A: his entry keys (cells prefixed for config agreement).
    {
      Iblt table(config);
      for (uint64_t key : bob_entries.occ_keys) table.Insert(key, {});
      BitWriter w;
      w.WriteVarint(config.cells);
      table.Serialize(&w);
      channel->Send(transport::Direction::kBobToAlice,
                    transport::MakeMessage("gap-iblt", std::move(w)));
    }

    // Alice: subtract her entries, decode, identify uncovered points.
    {
      const transport::Message msg =
          channel->Receive(transport::Direction::kBobToAlice);
      BitReader r(msg.payload);
      uint64_t cells = 0;
      RSR_CHECK(r.ReadVarint(&cells));
      IbltConfig alice_config = config;
      alice_config.cells = static_cast<size_t>(cells);
      std::optional<Iblt> table = Iblt::Deserialize(alice_config, &r);
      RSR_CHECK(table.has_value());
      for (uint64_t key : alice_entries.occ_keys) table->Erase(key, {});
      const IbltDecodeResult decoded = table->Decode();
      if (!decoded.success) {
        if (attempt + 1 < params_.max_attempts) {
          BitWriter w;
          w.WriteVarint(attempt + 1);
          channel->Send(transport::Direction::kAliceToBob,
                        transport::MakeMessage("gap-retry", std::move(w)));
          (void)channel->Receive(transport::Direction::kAliceToBob);
        }
        continue;
      }

      // Keys with sign -1 are Alice-only entries: cells Bob lacks.
      std::unordered_set<uint64_t> alice_only;
      alice_only.reserve(decoded.entries.size());
      for (const IbltEntry& entry : decoded.entries) {
        if (entry.sign < 0) alice_only.insert(entry.key);
      }

      // A raw cell key of Alice's is covered by Bob iff not every one of
      // her occurrence keys for it is in the Alice-only diff.
      auto covered_raw = [&](uint64_t raw) {
        const auto it = alice_entries.raw_counts.find(raw);
        RSR_DCHECK(it != alice_entries.raw_counts.end());
        const int64_t count = it->second;
        int64_t missing = 0;
        for (int64_t occ = 0; occ < count; ++occ) {
          if (alice_only.count(
                  HashCombine(raw, static_cast<uint64_t>(occ)))) {
            ++missing;
          }
        }
        return missing < count;
      };

      // T_A: every point none of whose h cells is shared with Bob.
      std::unordered_set<uint64_t> sent_exact;  // dedupe identical points
      PointSet to_send;
      for (const Point& p : alice) {
        bool covered = false;
        for (int j = 0; j < h && !covered; ++j) {
          covered = covered_raw(lattice.Key(p, j));
        }
        if (!covered) {
          const uint64_t exact = PointKey(p, context_.seed);
          if (sent_exact.insert(exact).second) to_send.push_back(p);
        }
      }

      // A -> B: the uncovered points at full precision.
      BitWriter w;
      w.WriteVarint(to_send.size());
      for (const Point& p : to_send) PackPoint(universe, p, &w);
      channel->Send(transport::Direction::kAliceToBob,
                    transport::MakeMessage("gap-points", std::move(w)));

      // Bob: append them.
      const transport::Message points_msg =
          channel->Receive(transport::Direction::kAliceToBob);
      BitReader pr(points_msg.payload);
      uint64_t count = 0;
      RSR_CHECK(pr.ReadVarint(&count));
      for (uint64_t i = 0; i < count; ++i) {
        Point p;
        RSR_CHECK(UnpackPoint(universe, &pr, &p));
        result.bob_final.push_back(std::move(p));
      }
      result.transmitted = static_cast<size_t>(count);
      result.success = true;
      return result;
    }
  }
  return result;  // every attempt failed to decode
}

bool SatisfiesGapGuarantee(const PointSet& alice, const PointSet& bob_final,
                           const GapParams& params, int d) {
  const double r2 = params.EffectiveR2(d);
  for (const Point& a : alice) {
    bool covered = false;
    for (const Point& b : bob_final) {
      if (Distance(a, b, params.metric) <= r2) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace gaprecon
}  // namespace rsr
