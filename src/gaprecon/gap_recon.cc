#include "gaprecon/gap_recon.h"

#include <cmath>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hash/mix.h"
#include "recon/session.h"
#include "iblt/iblt.h"
#include "iblt/sizing.h"
#include "iblt/strata.h"
#include "util/check.h"
#include "util/random.h"

namespace rsr {
namespace gaprecon {

double GapParams::CellSide(int d) const {
  const double effective_r2 = EffectiveR2(d);
  switch (metric) {
    case Metric::kL1:
      return effective_r2 / static_cast<double>(d);
    case Metric::kL2:
      return effective_r2 / std::sqrt(static_cast<double>(d));
    case Metric::kLinf:
      return effective_r2;
    case Metric::kHamming:
      // No meaningful lattice for Hamming; fall back to the ℓ1 bound.
      return effective_r2 / static_cast<double>(d);
  }
  return effective_r2 / static_cast<double>(d);
}

double GapParams::RhoHat(int d) const {
  // Union bound over axes: a pair at distance r1 straddles a lattice
  // boundary with probability at most (sum of per-axis offsets) / side,
  // which for every supported metric is bounded by r1 * d / r2.
  const double rho = r1 * static_cast<double>(d) / EffectiveR2(d);
  return rho < 0.95 ? rho : 0.95;
}

namespace {

// One randomly shifted lattice per function; shifts are doubles in
// [0, side) derived from the public seed.
class LatticeKeys {
 public:
  LatticeKeys(const Universe& universe, double side, int h, uint64_t seed)
      : universe_(universe), side_(side), h_(h) {
    RSR_CHECK(side > 0.0);
    Rng rng(seed ^ 0x676170ULL);  // "gap" tag
    shifts_.resize(static_cast<size_t>(h) *
                   static_cast<size_t>(universe.d));
    for (auto& s : shifts_) s = rng.NextDouble() * side;
  }

  /// Raw entry key of point `p` under lattice `j`.
  uint64_t Key(const Point& p, int j) const {
    const double* shift =
        shifts_.data() +
        static_cast<size_t>(j) * static_cast<size_t>(universe_.d);
    uint64_t hash = Hash64(static_cast<uint64_t>(j), 0x6c617474ULL);
    for (int i = 0; i < universe_.d; ++i) {
      const int64_t cell = static_cast<int64_t>(std::floor(
          (static_cast<double>(p[static_cast<size_t>(i)]) + shift[i]) /
          side_));
      hash = HashCombine(hash, static_cast<uint64_t>(cell));
    }
    return hash;
  }

  int h() const { return h_; }

 private:
  Universe universe_;
  double side_;
  int h_;
  std::vector<double> shifts_;
};

// Raw-key histogram plus the canonical occurrence-indexed key multiset.
struct EntrySet {
  std::unordered_map<uint64_t, int64_t> raw_counts;
  std::vector<uint64_t> occ_keys;
};

EntrySet BuildEntrySet(const PointSet& points, const LatticeKeys& lattice) {
  EntrySet set;
  set.raw_counts.reserve(points.size() * static_cast<size_t>(lattice.h()));
  for (const Point& p : points) {
    for (int j = 0; j < lattice.h(); ++j) {
      ++set.raw_counts[lattice.Key(p, j)];
    }
  }
  set.occ_keys.reserve(points.size() * static_cast<size_t>(lattice.h()));
  for (const auto& [raw, count] : set.raw_counts) {
    for (int64_t occ = 0; occ < count; ++occ) {
      set.occ_keys.push_back(HashCombine(raw, static_cast<uint64_t>(occ)));
    }
  }
  return set;
}

StrataConfig GapStrataConfig(uint64_t seed) {
  StrataConfig config;
  config.num_strata = 16;
  config.cells_per_stratum = 24;
  config.q = 4;
  config.checksum_bits = 32;
  config.count_bits = 10;
  config.seed = seed ^ 0x676170737472ULL;  // "gapstr" tag
  return config;
}

// h derivation from a set size (the initiator's, now that no single
// endpoint knows both sizes).
int DeriveNumFunctions(const GapParams& params, double rho, size_t n) {
  int h = params.num_functions;
  if (h <= 0) {
    const double target =
        std::log(20.0 * static_cast<double>(n > 1 ? n : 2));
    h = static_cast<int>(std::ceil(target / std::log(1.0 / rho)));
    if (h < 2) h = 2;
  }
  return h;
}

// Entry-key IBLT configuration of attempt `attempt` (cells travel on the
// wire; everything else is public).
IbltConfig GapIbltConfig(const GapParams& params, uint64_t seed,
                         uint64_t target, size_t attempt) {
  IbltConfig config;
  config.cells = RecommendedCells(static_cast<size_t>(target) << attempt,
                                  params.q, params.headroom);
  config.q = params.q;
  config.value_bits = 0;
  config.seed = Hash64(attempt, seed ^ 0x676170696274ULL);  // "gapibt"
  return config;
}

// Alice: opens with (h, strata estimator of her entry keys), decodes Bob's
// entry-key IBLT, and ships her uncovered points at full precision.
class GapAlice : public recon::PartySessionBase {
 public:
  GapAlice(const recon::ProtocolContext& context, const GapParams& params,
           PointSet points)
      : context_(context), params_(params), points_(std::move(points)) {
    const int d = context_.universe.d;
    const double rho = params_.RhoHat(d);
    RSR_CHECK_MSG(rho < 1.0, "gap model requires r2 > r1 * d");
    h_ = DeriveNumFunctions(params_, rho, points_.size());
    lattice_ = std::make_unique<LatticeKeys>(
        context_.universe, params_.CellSide(d), h_, context_.seed);
    entries_ = BuildEntrySet(points_, *lattice_);
  }

  std::vector<transport::Message> Start() override {
    // --- Round 1 (A->B): h, then a strata estimator over Alice's entry
    // keys. ---
    StrataEstimator est(GapStrataConfig(context_.seed));
    for (uint64_t key : entries_.occ_keys) est.Insert(key);
    BitWriter w;
    w.WriteVarint(static_cast<uint64_t>(h_));
    est.Serialize(&w);
    return OneMessage(transport::MakeMessage("gap-strata", std::move(w)));
  }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_ || message.label != "gap-iblt") {
      FailWith(recon::SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    result_.attempts = attempt_ + 1;
    BitReader r(message.payload);
    uint64_t cells = 0;
    if (!r.ReadVarint(&cells)) {
      FailWith(recon::SessionError::kMalformedMessage);
      return NoMessages();
    }
    IbltConfig config =
        GapIbltConfig(params_, context_.seed, /*target=*/16, attempt_);
    config.cells = static_cast<size_t>(cells);
    std::optional<Iblt> table = Iblt::Deserialize(config, &r);
    if (!table.has_value()) {
      FailWith(recon::SessionError::kMalformedMessage);
      return NoMessages();
    }
    for (uint64_t key : entries_.occ_keys) table->Erase(key, {});
    const IbltDecodeResult decoded = table->Decode();
    if (!decoded.success) {
      ++attempt_;
      if (attempt_ >= params_.max_attempts) {
        Finish();  // every attempt failed to decode
        return NoMessages();
      }
      BitWriter w;
      w.WriteVarint(attempt_);
      return OneMessage(transport::MakeMessage("gap-retry", std::move(w)));
    }

    // Keys with sign -1 are Alice-only entries: cells Bob lacks.
    std::unordered_set<uint64_t> alice_only;
    alice_only.reserve(decoded.entries.size());
    for (const IbltEntry& entry : decoded.entries) {
      if (entry.sign < 0) alice_only.insert(entry.key);
    }

    // A raw cell key of Alice's is covered by Bob iff not every one of
    // her occurrence keys for it is in the Alice-only diff.
    auto covered_raw = [&](uint64_t raw) {
      const auto it = entries_.raw_counts.find(raw);
      RSR_DCHECK(it != entries_.raw_counts.end());
      const int64_t count = it->second;
      int64_t missing = 0;
      for (int64_t occ = 0; occ < count; ++occ) {
        if (alice_only.count(
                HashCombine(raw, static_cast<uint64_t>(occ)))) {
          ++missing;
        }
      }
      return missing < count;
    };

    // T_A: every point none of whose h cells is shared with Bob.
    std::unordered_set<uint64_t> sent_exact;  // dedupe identical points
    PointSet to_send;
    for (const Point& p : points_) {
      bool covered = false;
      for (int j = 0; j < h_ && !covered; ++j) {
        covered = covered_raw(lattice_->Key(p, j));
      }
      if (!covered) {
        const uint64_t exact = PointKey(p, context_.seed);
        if (sent_exact.insert(exact).second) to_send.push_back(p);
      }
    }

    // A -> B: the uncovered points at full precision.
    BitWriter w;
    w.WriteVarint(to_send.size());
    for (const Point& p : to_send) PackPoint(context_.universe, p, &w);
    result_.success = true;
    result_.transmitted = to_send.size();
    Finish();
    return OneMessage(transport::MakeMessage("gap-points", std::move(w)));
  }

 private:
  recon::ProtocolContext context_;
  GapParams params_;
  PointSet points_;
  int h_ = 0;
  std::unique_ptr<LatticeKeys> lattice_;
  EntrySet entries_;
  size_t attempt_ = 0;
};

// Bob: estimates the entry-key difference from Alice's opening, ships an
// IBLT of his entry keys (doubled on each retry), and appends the points
// Alice finally transmits.
class GapBob : public recon::PartySessionBase {
 public:
  GapBob(const recon::ProtocolContext& context, const GapParams& params,
         PointSet points)
      : context_(context), params_(params), points_(std::move(points)) {
    const double rho = params_.RhoHat(context_.universe.d);
    RSR_CHECK_MSG(rho < 1.0, "gap model requires r2 > r1 * d");
    result_.bob_final = points_;
  }

  std::vector<transport::Message> Start() override { return NoMessages(); }

  std::vector<transport::Message> OnMessage(
      transport::Message message) override {
    if (done_) {
      FailWith(recon::SessionError::kUnexpectedMessage);
      return NoMessages();
    }
    if (state_ == State::kAwaitStrata) {
      if (message.label != "gap-strata") {
        FailWith(recon::SessionError::kUnexpectedMessage);
        return NoMessages();
      }
      BitReader r(message.payload);
      uint64_t h = 0;
      if (!r.ReadVarint(&h) || h < 1 || h > 4096) {
        FailWith(recon::SessionError::kMalformedMessage);
        return NoMessages();
      }
      const StrataConfig strata_config = GapStrataConfig(context_.seed);
      std::optional<StrataEstimator> alice_est =
          StrataEstimator::Deserialize(strata_config, &r);
      if (!alice_est.has_value()) {
        FailWith(recon::SessionError::kMalformedMessage);
        return NoMessages();
      }
      const LatticeKeys lattice(context_.universe,
                                params_.CellSide(context_.universe.d),
                                static_cast<int>(h), context_.seed);
      entries_ = BuildEntrySet(points_, lattice);
      StrataEstimator bob_est(strata_config);
      for (uint64_t key : entries_.occ_keys) bob_est.Insert(key);
      const uint64_t estimate = bob_est.EstimateDifference(*alice_est);
      target_ = static_cast<uint64_t>(static_cast<double>(estimate) *
                                      params_.estimate_safety);
      if (target_ < 16) target_ = 16;
      state_ = State::kAwaitReply;
      return OneMessage(MakeIbltMessage(/*attempt=*/0));
    }
    // State::kAwaitReply.
    if (message.label == "gap-retry") {
      BitReader r(message.payload);
      uint64_t attempt = 0;
      if (!r.ReadVarint(&attempt)) {
        FailWith(recon::SessionError::kMalformedMessage);
        return NoMessages();
      }
      if (attempt >= params_.max_attempts) {
        FailWith(recon::SessionError::kUnexpectedMessage);
        return NoMessages();
      }
      return OneMessage(MakeIbltMessage(static_cast<size_t>(attempt)));
    }
    if (message.label == "gap-points") {
      BitReader pr(message.payload);
      uint64_t count = 0;
      if (!pr.ReadVarint(&count)) {
        FailWith(recon::SessionError::kMalformedMessage);
        return NoMessages();
      }
      for (uint64_t i = 0; i < count; ++i) {
        Point p;
        if (!UnpackPoint(context_.universe, &pr, &p)) {
          FailWith(recon::SessionError::kMalformedMessage);
          return NoMessages();
        }
        result_.bob_final.push_back(std::move(p));
      }
      result_.transmitted = static_cast<size_t>(count);
      result_.success = true;
      Finish();
      return NoMessages();
    }
    FailWith(recon::SessionError::kUnexpectedMessage);
    return NoMessages();
  }

 private:
  enum class State { kAwaitStrata, kAwaitReply };

  // B -> A: his entry keys (cells prefixed for config agreement).
  transport::Message MakeIbltMessage(size_t attempt) {
    result_.attempts = attempt + 1;
    const IbltConfig config =
        GapIbltConfig(params_, context_.seed, target_, attempt);
    Iblt table(config);
    for (uint64_t key : entries_.occ_keys) table.Insert(key, {});
    BitWriter w;
    w.WriteVarint(config.cells);
    table.Serialize(&w);
    return transport::MakeMessage("gap-iblt", std::move(w));
  }

  recon::ProtocolContext context_;
  GapParams params_;
  PointSet points_;
  State state_ = State::kAwaitStrata;
  EntrySet entries_;
  uint64_t target_ = 0;
};

}  // namespace

std::unique_ptr<recon::PartySession> GapReconciler::MakeAliceSession(
    const PointSet& points) const {
  return std::make_unique<GapAlice>(context_, params_, points);
}

std::unique_ptr<recon::PartySession> GapReconciler::MakeBobSession(
    const PointSet& points) const {
  return std::make_unique<GapBob>(context_, params_, points);
}

GapResult GapReconciler::Run(const PointSet& alice, const PointSet& bob,
                             transport::Channel* channel) const {
  const recon::ReconResult base =
      recon::Reconciler::Run(alice, bob, channel);
  GapResult result;
  result.success = base.success;
  result.bob_final = base.bob_final;
  result.transmitted = base.transmitted;
  result.attempts = base.attempts;
  return result;
}

bool SatisfiesGapGuarantee(const PointSet& alice, const PointSet& bob_final,
                           const GapParams& params, int d) {
  const double r2 = params.EffectiveR2(d);
  for (const Point& a : alice) {
    bool covered = false;
    for (const Point& b : bob_final) {
      if (Distance(a, b, params.metric) <= r2) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

}  // namespace gaprecon
}  // namespace rsr
