// Gap Guarantee reconciliation (extension module).
//
// A second robustness model (introduced by the 2018 follow-up paper):
// instead of minimising an aggregate (EMD), Bob must end with a point
// within distance r2 of EVERY point of Alice's — while points within r1 of
// one of Bob's are presumed already covered. The communication should be
// proportional to the number of genuinely uncovered points k (plus a
// ρ̂·n term from near-boundary noise), not to n.
//
// This implements the low-dimensional variant (Theorem 4.5 flavour): a
// randomly shifted lattice whose cells have diameter exactly r2 gives a
// one-sided LSH — two points in the same cell are *certainly* within r2
// (p2 = 0), and a pair within r1 lands in the same cell except with
// probability ρ̂ ≈ r1·d/r2 per function. Each party publishes, for
// h = Θ(log n / log(1/ρ̂)) independent lattices, the multiset of
// (lattice index, cell) entry keys. The multisets are reconciled with a
// strata-sized IBLT (entry-level cancellation replaces the follow-up's
// sets-of-sets machinery — see DESIGN.md §5), after which Alice knows
// exactly which of her entries Bob also has. A point of hers sharing at
// least one cell with Bob's entries is within r2 of some Bob point, by the
// one-sidedness; any point sharing none is transmitted at full precision.
//
// Guarantee (w.h.p.): every a ∈ S_A has a point of S'_B within r2;
// every a within r1 of S_B is (except with probability ρ̂^h ≤ 1/poly n)
// not transmitted.

#ifndef RSR_GAPRECON_GAP_RECON_H_
#define RSR_GAPRECON_GAP_RECON_H_

#include <cstddef>

#include "geometry/metric.h"
#include "recon/protocol.h"

namespace rsr {
namespace gaprecon {

/// Tunables of the gap protocol.
struct GapParams {
  double r1 = 1.0;  ///< Points closer than this are "the same object".
  double r2 = 0.0;  ///< Required coverage radius; must satisfy
                    ///< r2 > r1 · d (so that ρ̂ < 1). 0 derives 4·r1·d.
  Metric metric = Metric::kL1;  ///< ℓ1 or ℓ∞ (lattice diameter is exact);
                                ///< ℓ2 uses the conservative ℓ1 bound.
  int num_functions = 0;  ///< h; 0 derives ⌈log(20·n) / log(1/ρ̂)⌉.
  double estimate_safety = 2.0;
  int q = 4;
  double headroom = 1.35;
  size_t max_attempts = 4;

  /// Derived lattice cell side for dimension d: the largest side whose
  /// cell diameter (in `metric`) is at most r2.
  double CellSide(int d) const;

  /// Derived ρ̂ = Pr[a pair at distance r1 is split by one lattice].
  double RhoHat(int d) const;

  /// Effective r2.
  double EffectiveR2(int d) const { return r2 > 0 ? r2 : 4.0 * r1 * d; }
};

/// Outcome of a gap-model run (extends the base result with the model's
/// own accounting: how many points Alice transmitted).
struct GapResult {
  bool success = false;
  PointSet bob_final;        ///< S_B ∪ T_A.
  size_t transmitted = 0;    ///< |T_A|.
  size_t attempts = 1;
};

/// The protocol. Unlike the EMD reconcilers this is additive-only: Bob's
/// original points are all kept and Alice's uncovered points are appended,
/// so |bob_final| = |bob| + transmitted.
///
/// Sessions (3 messages, 3 rounds on the no-retry path):
///   Alice:  Start -> "gap-strata" (varint h, then her entry-key strata
///           estimator); await "gap-iblt" -> erase her entries, decode; on
///           success send "gap-points" (her uncovered points) and finish;
///           on failure send "gap-retry" while attempts remain.
///   Bob:    await "gap-strata" -> estimate, reply "gap-iblt" (his entry
///           keys); serve each "gap-retry" with a doubled "gap-iblt";
///           append the "gap-points" payload and finish.
///
/// When num_functions is 0, h is derived from the initiator's set size and
/// carried in the "gap-strata" header so both parties agree without a prior
/// size exchange (the pre-session code derived it from max(|A|, |B|),
/// which no single endpoint knows).
class GapReconciler : public recon::Reconciler {
 public:
  GapReconciler(const recon::ProtocolContext& context, const GapParams& params)
      : context_(context), params_(params) {}

  std::string Name() const override { return "gap-lattice"; }
  std::unique_ptr<recon::PartySession> MakeAliceSession(
      const PointSet& points) const override;
  std::unique_ptr<recon::PartySession> MakeBobSession(
      const PointSet& points) const override;

  /// Gap-flavoured result (richer accounting than the base ReconResult).
  /// Intentionally hides the base-class Run: it drives the same sessions
  /// and repackages Bob's result.
  GapResult Run(const PointSet& alice, const PointSet& bob,
                transport::Channel* channel) const;

 private:
  recon::ProtocolContext context_;
  GapParams params_;
};

/// Checks the model's guarantee on a finished run: true iff every point of
/// `alice` has a point of `bob_final` within r2 (in params.metric).
bool SatisfiesGapGuarantee(const PointSet& alice, const PointSet& bob_final,
                           const GapParams& params, int d);

}  // namespace gaprecon
}  // namespace rsr

#endif  // RSR_GAPRECON_GAP_RECON_H_
