// Seedable hash families with provable independence guarantees.
//
// * PairwiseHash — multiply-shift family, 2-independent over 64-bit keys,
//   used wherever the analysis only needs pairwise independence (LSH key
//   compression, strata assignment).
// * PolynomialHash — degree-(k-1) polynomial over GF(2^61 - 1), k-independent,
//   used when higher independence is wanted (IBLT cell indexing).
// * IndexHasher — maps a key to q distinct cell indices of a partitioned
//   hash table (the IBLT convention: hash function j picks a cell inside
//   partition j, so the q cells are always distinct).

#ifndef RSR_HASH_FAMILY_H_
#define RSR_HASH_FAMILY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rsr {

/// 2-independent multiply-shift hash: h(x) = hi64((a*x + b) mod 2^128).
class PairwiseHash {
 public:
  /// Draws (a, b) deterministically from `seed`.
  explicit PairwiseHash(uint64_t seed);

  /// Full 64-bit output.
  uint64_t operator()(uint64_t x) const;

  /// Output reduced to [0, range). Requires range > 0.
  uint64_t Bounded(uint64_t x, uint64_t range) const;

 private:
  __uint128_t a_;
  __uint128_t b_;
};

/// k-independent polynomial hash over the Mersenne prime p = 2^61 - 1.
class PolynomialHash {
 public:
  /// `independence` is k (>= 1): the number of random coefficients.
  PolynomialHash(uint64_t seed, int independence);

  /// Output in [0, 2^61 - 1).
  uint64_t operator()(uint64_t x) const;

  int independence() const { return static_cast<int>(coeffs_.size()); }

 private:
  std::vector<uint64_t> coeffs_;  // degree k-1 .. 0
};

/// Maps keys to q distinct cells of an m-cell table partitioned into q
/// equal-size regions (the standard IBLT layout; m must be divisible by q).
class IndexHasher {
 public:
  IndexHasher(uint64_t seed, int q, size_t m);

  int q() const { return q_; }
  size_t m() const { return m_; }
  size_t cells_per_partition() const { return per_; }

  /// Returns the cell index for hash function j in [0, q).
  size_t Cell(uint64_t key, int j) const;

  /// Fills out[0..q) with all q cell indices for `key`.
  void Cells(uint64_t key, std::vector<size_t>* out) const;

 private:
  int q_;
  size_t m_;
  size_t per_;
  std::vector<PairwiseHash> hashes_;
};

}  // namespace rsr

#endif  // RSR_HASH_FAMILY_H_
