#include "hash/mix.h"

#include <cstring>

namespace rsr {

uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t Hash64(uint64_t x, uint64_t seed) {
  return Mix64(x + 0x9e3779b97f4a7c15ULL * (seed | 1));
}

uint64_t HashCombine(uint64_t h, uint64_t next) {
  // Boost-style combine upgraded to 64 bits with a full mix.
  h ^= Mix64(next) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

namespace {
constexpr uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr uint64_t kPrime3 = 0x165667b19e3779f9ULL;

inline uint64_t Rotl(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t LoadU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
}  // namespace

uint64_t HashBytes(const void* data, size_t size, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed + kPrime3 + size;
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    h ^= Rotl(LoadU64(p + i) * kPrime1, 31) * kPrime2;
    h = Rotl(h, 27) * kPrime1 + kPrime3;
  }
  uint64_t tail = 0;
  int shift = 0;
  for (; i < size; ++i) {
    tail |= static_cast<uint64_t>(p[i]) << shift;
    shift += 8;
  }
  if (shift != 0) {
    h ^= Rotl(tail * kPrime1, 31) * kPrime2;
    h = Rotl(h, 27) * kPrime1 + kPrime3;
  }
  return Mix64(h);
}

}  // namespace rsr
