// Key checksums for invertible sketches.
//
// An IBLT cell is declared "pure" (decodable) when its count is ±1 *and*
// its checksum field matches the checksum of its key field. The checksum
// must therefore (a) be a deterministic function of the key that both
// parties compute identically, and (b) make accidental matches — a cell
// whose XOR of several keys happens to look pure — vanishingly unlikely.

#ifndef RSR_HASH_CHECKSUM_H_
#define RSR_HASH_CHECKSUM_H_

#include <cstdint>

namespace rsr {

/// Seeded key-checksum function used by IBLT / RIBLT cells.
class Checksum {
 public:
  explicit Checksum(uint64_t seed) : seed_(seed) {}

  /// Full 64-bit checksum of a key.
  uint64_t operator()(uint64_t key) const;

  /// Checksum truncated to `bits` low bits (1 <= bits <= 64) — lets the
  /// transport trade failure probability for message size.
  uint64_t Truncated(uint64_t key, int bits) const;

 private:
  uint64_t seed_;
};

}  // namespace rsr

#endif  // RSR_HASH_CHECKSUM_H_
