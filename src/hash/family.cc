#include "hash/family.h"

#include "hash/mix.h"
#include "util/check.h"
#include "util/random.h"

namespace rsr {

PairwiseHash::PairwiseHash(uint64_t seed) {
  uint64_t state = seed ^ 0x70616972ULL;  // "pair" tag
  const uint64_t a_lo = SplitMix64(&state);
  const uint64_t a_hi = SplitMix64(&state);
  const uint64_t b_lo = SplitMix64(&state);
  const uint64_t b_hi = SplitMix64(&state);
  a_ = (static_cast<__uint128_t>(a_hi) << 64) | (a_lo | 1);  // a odd
  b_ = (static_cast<__uint128_t>(b_hi) << 64) | b_lo;
}

uint64_t PairwiseHash::operator()(uint64_t x) const {
  const __uint128_t v = a_ * static_cast<__uint128_t>(x) + b_;
  return static_cast<uint64_t>(v >> 64);
}

uint64_t PairwiseHash::Bounded(uint64_t x, uint64_t range) const {
  RSR_DCHECK(range > 0);
  const __uint128_t scaled =
      static_cast<__uint128_t>((*this)(x)) * static_cast<__uint128_t>(range);
  return static_cast<uint64_t>(scaled >> 64);
}

namespace {
constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

// (a * b) mod (2^61 - 1) without overflow.
inline uint64_t MulMod61(uint64_t a, uint64_t b) {
  const __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t sum = lo + hi;
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}

inline uint64_t AddMod61(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;
  if (sum >= kMersenne61) sum -= kMersenne61;
  return sum;
}
}  // namespace

PolynomialHash::PolynomialHash(uint64_t seed, int independence) {
  RSR_CHECK(independence >= 1);
  uint64_t state = seed ^ 0x706f6c79ULL;  // "poly" tag
  coeffs_.resize(static_cast<size_t>(independence));
  for (auto& c : coeffs_) c = SplitMix64(&state) % kMersenne61;
  // Ensure the hash is non-degenerate: leading coefficient nonzero when the
  // family has degree >= 1.
  if (coeffs_.size() > 1 && coeffs_.front() == 0) coeffs_.front() = 1;
}

uint64_t PolynomialHash::operator()(uint64_t x) const {
  // Map the key into the field first (Mix64 avoids structured inputs landing
  // on polynomial roots systematically; independence is preserved because
  // the mapping is a fixed bijection composed before the random polynomial).
  const uint64_t xf = Mix64(x) % kMersenne61;
  uint64_t acc = 0;
  for (uint64_t c : coeffs_) {
    acc = AddMod61(MulMod61(acc, xf), c);
  }
  return acc;
}

IndexHasher::IndexHasher(uint64_t seed, int q, size_t m) : q_(q), m_(m) {
  RSR_CHECK(q >= 1);
  RSR_CHECK(m > 0);
  RSR_CHECK_MSG(m % static_cast<size_t>(q) == 0,
                "table size must be divisible by q");
  per_ = m / static_cast<size_t>(q);
  hashes_.reserve(static_cast<size_t>(q));
  uint64_t state = seed ^ 0x6962746cULL;  // "ibtl" tag
  for (int j = 0; j < q; ++j) {
    hashes_.emplace_back(SplitMix64(&state));
  }
}

size_t IndexHasher::Cell(uint64_t key, int j) const {
  RSR_DCHECK(j >= 0 && j < q_);
  return static_cast<size_t>(j) * per_ +
         static_cast<size_t>(hashes_[static_cast<size_t>(j)].Bounded(key, per_));
}

void IndexHasher::Cells(uint64_t key, std::vector<size_t>* out) const {
  out->resize(static_cast<size_t>(q_));
  for (int j = 0; j < q_; ++j) (*out)[static_cast<size_t>(j)] = Cell(key, j);
}

}  // namespace rsr
