#include "hash/checksum.h"

#include "hash/mix.h"
#include "util/check.h"

namespace rsr {

uint64_t Checksum::operator()(uint64_t key) const {
  // Double-mix with seed folding on both sides so that no single XOR of
  // mixed keys can reproduce the checksum structure.
  return Mix64(Mix64(key ^ seed_) + (seed_ | 1));
}

uint64_t Checksum::Truncated(uint64_t key, int bits) const {
  RSR_DCHECK(bits >= 1 && bits <= 64);
  const uint64_t full = (*this)(key);
  if (bits == 64) return full;
  return full & ((uint64_t{1} << bits) - 1);
}

}  // namespace rsr
