#include "hash/tabulation.h"

#include "util/random.h"

namespace rsr {

TabulationHash::TabulationHash(uint64_t seed) {
  uint64_t state = seed ^ 0x7462756c61746f72ULL;  // "tabulator"-ish tag
  for (auto& row : table_) {
    for (auto& entry : row) entry = SplitMix64(&state);
  }
}

uint64_t TabulationHash::operator()(uint64_t key) const {
  uint64_t h = 0;
  for (int i = 0; i < 8; ++i) {
    h ^= table_[i][(key >> (8 * i)) & 0xff];
  }
  return h;
}

}  // namespace rsr
