// Simple tabulation hashing.
//
// Tabulation hashing is 3-independent and has the strong concentration
// properties (Pătraşcu–Thorup) that make it a drop-in replacement for truly
// random hash functions in peeling analyses such as the IBLT's. It hashes a
// 64-bit key by splitting it into 8 bytes and XOR-ing 8 random table rows.

#ifndef RSR_HASH_TABULATION_H_
#define RSR_HASH_TABULATION_H_

#include <cstdint>

namespace rsr {

/// Seeded tabulation hash over 64-bit keys with 64-bit output.
class TabulationHash {
 public:
  /// The table contents are a deterministic function of `seed`.
  explicit TabulationHash(uint64_t seed);

  /// Hashes a 64-bit key.
  uint64_t operator()(uint64_t key) const;

 private:
  uint64_t table_[8][256];
};

}  // namespace rsr

#endif  // RSR_HASH_TABULATION_H_
