// Core 64-bit mixing primitives.
//
// These are the building blocks for every hash family in the library:
// finalizer-style bijective mixers (derived from SplitMix64 / MurmurHash3)
// plus seeded hashing of words and byte strings. They are *not*
// cryptographic; they are fast, well-distributed and deterministic across
// platforms, which is what the protocols need (public-coin hashing shared
// between Alice and Bob via a seed).

#ifndef RSR_HASH_MIX_H_
#define RSR_HASH_MIX_H_

#include <cstddef>
#include <cstdint>

namespace rsr {

/// Bijective 64-bit finalizer (SplitMix64's output function).
uint64_t Mix64(uint64_t x);

/// Seeded hash of a single 64-bit word.
uint64_t Hash64(uint64_t x, uint64_t seed);

/// Combines an accumulated hash with the next value (order sensitive).
uint64_t HashCombine(uint64_t h, uint64_t next);

/// Seeded hash of a byte string (64-bit, xxhash-like construction).
uint64_t HashBytes(const void* data, size_t size, uint64_t seed);

}  // namespace rsr

#endif  // RSR_HASH_MIX_H_
