// Tests for the public-coin parameter derivations shared by the robust
// protocols: both parties must derive byte-identical configurations from
// public quantities alone.

#include <gtest/gtest.h>

#include "recon/params.h"

namespace rsr {
namespace recon {
namespace {

TEST(HistogramCountBitsTest, Widths) {
  EXPECT_EQ(HistogramCountBits(1), 1);
  EXPECT_EQ(HistogramCountBits(2), 2);
  EXPECT_EQ(HistogramCountBits(3), 2);
  EXPECT_EQ(HistogramCountBits(255), 8);
  EXPECT_EQ(HistogramCountBits(256), 9);
  EXPECT_EQ(HistogramCountBits(1u << 15), 16);
}

TEST(QuadtreeParamsTest, DecodeBudgetDefaults) {
  QuadtreeParams p;
  p.k = 10;
  EXPECT_EQ(p.DecodeBudget(), 48u);  // 4k + 8
  p.decode_budget = 17;
  EXPECT_EQ(p.DecodeBudget(), 17u);
}

TEST(HistogramValueBitsTest, CellPlusCount) {
  const Universe u = MakeUniverse(1 << 10, 3);
  const ShiftedGrid grid(u, 1);
  // level 0: 3 coords x (10 - 0 + 1) bits + count bits for n=100 (7).
  EXPECT_EQ(HistogramValueBits(grid, 0, 100), 3 * 11 + 7);
  // level 10: 3 coords x 1 bit + 7.
  EXPECT_EQ(HistogramValueBits(grid, 10, 100), 3 * 1 + 7);
}

TEST(LevelIbltConfigTest, DeterministicAndLevelDependent) {
  const Universe u = MakeUniverse(1 << 12, 2);
  const ShiftedGrid grid(u, 3);
  QuadtreeParams params;
  params.k = 8;
  const IbltConfig c5a = LevelIbltConfig(grid, 5, 200, params, 77);
  const IbltConfig c5b = LevelIbltConfig(grid, 5, 200, params, 77);
  const IbltConfig c6 = LevelIbltConfig(grid, 6, 200, params, 77);
  const IbltConfig other_seed = LevelIbltConfig(grid, 5, 200, params, 78);

  EXPECT_EQ(c5a.seed, c5b.seed);
  EXPECT_EQ(c5a.cells, c5b.cells);
  EXPECT_EQ(c5a.value_bits, c5b.value_bits);
  EXPECT_NE(c5a.seed, c6.seed);           // level feeds the seed
  EXPECT_NE(c5a.value_bits, c6.value_bits);  // finer cells are wider
  EXPECT_NE(c5a.seed, other_seed.seed);
}

TEST(LevelIbltConfigTest, CellsScaleWithBudget) {
  const Universe u = MakeUniverse(1 << 12, 2);
  const ShiftedGrid grid(u, 3);
  QuadtreeParams small_params, big_params;
  small_params.k = 4;
  big_params.k = 64;
  const size_t small_cells =
      LevelIbltConfig(grid, 3, 100, small_params, 1).RoundedCells();
  const size_t big_cells =
      LevelIbltConfig(grid, 3, 100, big_params, 1).RoundedCells();
  EXPECT_GT(big_cells, 4 * small_cells);
}

TEST(LevelStrataConfigTest, SmallAndDeterministic) {
  const StrataConfig a = LevelStrataConfig(5);
  const StrataConfig b = LevelStrataConfig(5);
  const StrataConfig c = LevelStrataConfig(6);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_NE(a.seed, c.seed);
  // The probe must stay well under a typical per-level IBLT (E10's premise).
  EXPECT_LT(a.SerializedBits(), 20000u);
}

TEST(LevelIbltConfigTest, SerializedSizeMatchesConfig) {
  const Universe u = MakeUniverse(1 << 16, 2);
  const ShiftedGrid grid(u, 9);
  QuadtreeParams params;
  params.k = 16;
  for (int level : {0, 4, 8, 12, 16}) {
    const IbltConfig config = LevelIbltConfig(grid, level, 1000, params, 2);
    Iblt table(config);
    BitWriter w;
    table.Serialize(&w);
    EXPECT_EQ(w.bit_count(), config.SerializedBits()) << "level " << level;
  }
}

TEST(ProtocolLevelsTest, DefaultIsEveryLevel) {
  const Universe u = MakeUniverse(1 << 8, 2);
  const ShiftedGrid grid(u, 1);
  QuadtreeParams params;
  const std::vector<int> levels = ProtocolLevels(grid, params);
  ASSERT_EQ(levels.size(), 9u);
  EXPECT_EQ(levels.front(), 0);
  EXPECT_EQ(levels.back(), 8);
}

TEST(ProtocolLevelsTest, StrideSkipsButKeepsCoarsest) {
  const Universe u = MakeUniverse(1 << 8, 2);
  const ShiftedGrid grid(u, 1);
  QuadtreeParams params;
  params.level_stride = 3;
  const std::vector<int> levels = ProtocolLevels(grid, params);
  EXPECT_EQ(levels, (std::vector<int>{0, 3, 6, 8}));
  params.level_stride = 4;
  EXPECT_EQ(ProtocolLevels(grid, params), (std::vector<int>{0, 4, 8}));
}

TEST(ProtocolLevelsTest, RangeRestriction) {
  const Universe u = MakeUniverse(1 << 10, 2);
  const ShiftedGrid grid(u, 1);
  QuadtreeParams params;
  params.min_level = 2;
  params.max_level = 7;
  params.level_stride = 2;
  EXPECT_EQ(ProtocolLevels(grid, params), (std::vector<int>{2, 4, 6, 7}));
}

}  // namespace
}  // namespace recon
}  // namespace rsr
