#include "transport/channel.h"

#include <gtest/gtest.h>

#include "transport/message.h"

namespace rsr {
namespace transport {
namespace {

Message Msg(const std::string& label, size_t bits) {
  BitWriter w;
  for (size_t i = 0; i < bits; ++i) w.WriteBit(i % 2 == 0);
  return MakeMessage(label, std::move(w));
}

TEST(MessageTest, MakeMessageCapturesBits) {
  BitWriter w;
  w.WriteBits(0x3f, 6);
  const Message m = MakeMessage("m", std::move(w));
  EXPECT_EQ(m.label, "m");
  EXPECT_EQ(m.bits(), 6u);
  EXPECT_EQ(m.payload.size(), 1u);
}

TEST(ChannelTest, AccountingBasics) {
  Channel channel;
  channel.Send(Direction::kAliceToBob, Msg("a", 100));
  channel.Send(Direction::kAliceToBob, Msg("b", 28));
  channel.Send(Direction::kBobToAlice, Msg("c", 9));

  const ChannelStats& stats = channel.stats();
  EXPECT_EQ(stats.total_bits, 137u);
  EXPECT_EQ(stats.alice_to_bob_bits, 128u);
  EXPECT_EQ(stats.bob_to_alice_bits, 9u);
  EXPECT_EQ(stats.message_count, 3u);
  EXPECT_DOUBLE_EQ(stats.total_bytes(), 137.0 / 8.0);
}

TEST(ChannelTest, RoundsCountDirectionAlternations) {
  Channel channel;
  EXPECT_EQ(channel.stats().rounds, 0u);
  channel.Send(Direction::kAliceToBob, Msg("1", 8));
  EXPECT_EQ(channel.stats().rounds, 1u);
  channel.Send(Direction::kAliceToBob, Msg("2", 8));
  EXPECT_EQ(channel.stats().rounds, 1u);  // same direction, same round
  channel.Send(Direction::kBobToAlice, Msg("3", 8));
  EXPECT_EQ(channel.stats().rounds, 2u);
  channel.Send(Direction::kAliceToBob, Msg("4", 8));
  EXPECT_EQ(channel.stats().rounds, 3u);
}

TEST(ChannelTest, FirstMessageFromBobCountsARound) {
  Channel channel;
  channel.Send(Direction::kBobToAlice, Msg("x", 8));
  EXPECT_EQ(channel.stats().rounds, 1u);
}

TEST(ChannelTest, ReceiveIsFifoPerDirection) {
  Channel channel;
  channel.Send(Direction::kAliceToBob, Msg("first", 8));
  channel.Send(Direction::kBobToAlice, Msg("reply", 8));
  channel.Send(Direction::kAliceToBob, Msg("second", 8));

  EXPECT_TRUE(channel.HasPending(Direction::kAliceToBob));
  EXPECT_EQ(channel.Receive(Direction::kAliceToBob)->label, "first");
  EXPECT_EQ(channel.Receive(Direction::kAliceToBob)->label, "second");
  EXPECT_FALSE(channel.HasPending(Direction::kAliceToBob));
  EXPECT_TRUE(channel.HasPending(Direction::kBobToAlice));
  EXPECT_EQ(channel.Receive(Direction::kBobToAlice)->label, "reply");
  EXPECT_FALSE(channel.HasPending(Direction::kBobToAlice));
}

TEST(ChannelTest, ReceiveOnEmptyQueueReturnsNulloptNotAbort) {
  Channel channel;
  // A fresh channel has nothing pending in either direction.
  EXPECT_FALSE(channel.Receive(Direction::kAliceToBob).has_value());
  EXPECT_FALSE(channel.Receive(Direction::kBobToAlice).has_value());
  // Out-of-order receive: a message queued A->B must not satisfy a B->A
  // receive, and asking again after draining is an error value, not a crash.
  channel.Send(Direction::kAliceToBob, Msg("only", 8));
  EXPECT_FALSE(channel.Receive(Direction::kBobToAlice).has_value());
  ASSERT_TRUE(channel.Receive(Direction::kAliceToBob).has_value());
  EXPECT_FALSE(channel.Receive(Direction::kAliceToBob).has_value());
  // Accounting is unaffected by failed receives.
  EXPECT_EQ(channel.stats().message_count, 1u);
}

TEST(ChannelTest, PayloadSurvivesTransit) {
  Channel channel;
  BitWriter w;
  w.WriteBits(0xfeedULL, 16);
  w.WriteVarint(12345);
  channel.Send(Direction::kAliceToBob, MakeMessage("payload", std::move(w)));

  const std::optional<Message> m = channel.Receive(Direction::kAliceToBob);
  ASSERT_TRUE(m.has_value());
  BitReader r(m->payload);
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadBits(16, &v));
  EXPECT_EQ(v, 0xfeedu);
  ASSERT_TRUE(r.ReadVarint(&v));
  EXPECT_EQ(v, 12345u);
}

TEST(ChannelTest, TranscriptRecordsEverything) {
  Channel channel;
  channel.Send(Direction::kAliceToBob, Msg("alpha", 10));
  channel.Send(Direction::kBobToAlice, Msg("beta", 20));
  const auto& transcript = channel.transcript();
  ASSERT_EQ(transcript.size(), 2u);
  EXPECT_EQ(transcript[0].label, "alpha");
  EXPECT_EQ(transcript[0].bits, 10u);
  EXPECT_EQ(transcript[1].label, "beta");

  const std::string rendered = channel.TranscriptToString();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("B->A"), std::string::npos);
}

}  // namespace
}  // namespace transport
}  // namespace rsr
