// Positive control for the negative-compilation harness
// (tools/check_annotations.py): exercises every annotation the repo uses
// the way correct code uses it. Must compile warning-free under BOTH
// clang -Werror=thread-safety (attributes active) and gcc (attributes
// expand to nothing — proving the shim is a no-op there).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Set(int v) RSR_EXCLUDES(mu_) {
    rsr::MutexLock lock(mu_);
    value_ = v;
    BumpLocked();
    cv_.NotifyAll();
  }

  int Get() const RSR_EXCLUDES(mu_) {
    rsr::MutexLock lock(mu_);
    return value_;
  }

  // Condition waits loop on the predicate with the lock held — the shape
  // every wait site in src/ uses (util/mutex.h).
  int AwaitNonZero() RSR_EXCLUDES(mu_) {
    rsr::MutexLock lock(mu_);
    while (value_ == 0) cv_.Wait(mu_);
    return value_;
  }

  bool TrySet(int v) RSR_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    value_ = v;
    mu_.Unlock();
    return true;
  }

 private:
  void BumpLocked() RSR_REQUIRES(mu_) { ++bumps_; }

  mutable rsr::Mutex mu_;
  rsr::CondVar cv_;
  int value_ RSR_GUARDED_BY(mu_) = 0;
  int bumps_ RSR_GUARDED_BY(mu_) = 0;
};

// Manual Lock/Unlock across a loop, as in AntiEntropyScheduler::Loop.
int ManualLoop(Guarded& g) {
  int total = 0;
  for (int i = 0; i < 3; ++i) {
    g.Set(i);
    total += g.Get();
  }
  return total;
}

// Lock-ordering annotation parses and is inert when unused.
struct Ordered {
  rsr::Mutex outer;
  rsr::Mutex inner RSR_ACQUIRED_AFTER(outer);
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  (void)g.TrySet(2);
  Ordered ordered;
  rsr::MutexLock a(ordered.outer);
  rsr::MutexLock b(ordered.inner);
  return g.Get() == 0 ? ManualLoop(g) : 0;
}
