// MUST NOT COMPILE under clang -Werror=thread-safety: releases a mutex
// that is not held (the double-unlock / unlock-on-wrong-path bug class).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

void ReleaseUnheld(rsr::Mutex& mu) {
  // VIOLATION: mu was never acquired on this path.
  mu.Unlock();
}

}  // namespace

int main() {
  rsr::Mutex mu;
  ReleaseUnheld(mu);
  return 0;
}
