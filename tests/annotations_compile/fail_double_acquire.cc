// MUST NOT COMPILE under clang -Werror=thread-safety: acquires a mutex
// that is already held — the self-deadlock std::mutex turns into
// undefined behaviour at runtime, caught here at compile time.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

int DoubleAcquire(rsr::Mutex& mu) {
  rsr::MutexLock first(mu);
  // VIOLATION: mu is already held.
  rsr::MutexLock second(mu);
  return 0;
}

}  // namespace

int main() {
  rsr::Mutex mu;
  return DoubleAcquire(mu);
}
