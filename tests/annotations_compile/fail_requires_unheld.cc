// MUST NOT COMPILE under clang -Werror=thread-safety: calls a
// REQUIRES(mu_) member without holding mu_ — the "forgot the lock around
// the *Locked helper" bug class (e.g. SketchStore::Rebuild,
// Changelog::WriteSegmentLocked).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Store {
 public:
  // VIOLATION: RebuildLocked requires mu_, caller holds nothing.
  void Poke() { RebuildLocked(); }

 private:
  void RebuildLocked() RSR_REQUIRES(mu_) { ++generation_; }

  rsr::Mutex mu_;
  int generation_ RSR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Store s;
  s.Poke();
  return 0;
}
