// MUST NOT COMPILE under clang -Werror=thread-safety: writes a
// GUARDED_BY field without holding its mutex (the lock is taken for a
// different field, so simply *owning* a lock is not enough).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    rsr::MutexLock lock(other_mu_);
    // VIOLATION: value_ is guarded by mu_, not other_mu_.
    value_ = v;
  }

 private:
  rsr::Mutex mu_;
  rsr::Mutex other_mu_;
  int value_ RSR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(7);
  return 0;
}
