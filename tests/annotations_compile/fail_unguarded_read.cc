// MUST NOT COMPILE under clang -Werror=thread-safety: reads a
// GUARDED_BY field without holding its mutex. Under gcc the attributes
// are no-ops and this compiles — tools/check_annotations.py asserts both.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  // VIOLATION: reading value_ requires holding mu_.
  int Get() const { return value_; }

 private:
  mutable rsr::Mutex mu_;
  int value_ RSR_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.Get();
}
