#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rsr {
namespace {

TEST(OnlineStatsTest, EmptyDefaults) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, KnownMoments) {
  OnlineStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, NegativeValues) {
  OnlineStats s;
  s.Add(-10.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -10.0);
  EXPECT_EQ(s.max(), 10.0);
}

TEST(SampleSetTest, MeanAndStddevMatchOnline) {
  OnlineStats online;
  SampleSet samples;
  for (int i = 1; i <= 100; ++i) {
    const double v = static_cast<double>(i * i % 37);
    online.Add(v);
    samples.Add(v);
  }
  EXPECT_NEAR(samples.Mean(), online.mean(), 1e-9);
  EXPECT_NEAR(samples.Stddev(), online.stddev(), 1e-9);
}

TEST(SampleSetTest, PercentilesOnKnownData) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.Add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.Median(), 50.0);
  EXPECT_NEAR(s.Percentile(25), 25.0, 1e-9);
  EXPECT_NEAR(s.Percentile(99), 99.0, 1e-9);
}

TEST(SampleSetTest, PercentileInterpolates) {
  SampleSet s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 2.5);
}

TEST(SampleSetTest, AddAfterQueryStillCorrect) {
  SampleSet s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.Median(), 3.0);
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.Median(), 2.0);
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 3.0);
}

TEST(FormatCompactTest, Basics) {
  EXPECT_EQ(FormatCompact(1.0), "1");
  EXPECT_EQ(FormatCompact(0.5), "0.5");
  EXPECT_EQ(FormatCompact(1234.5678, 6), "1234.57");
  EXPECT_EQ(FormatCompact(1e9, 3), "1e+09");
}

}  // namespace
}  // namespace rsr
