// Wire-framing tests: round-trip property over random labels / payload
// sizes, incremental (byte-dribbled) decoding, decode failures —
// truncated, oversized, garbage, wrong version, and corrupt bit accounting
// — each asserting the mapped SessionError, plus DribbleStream torture of
// the partial-I/O paths of both FramedStream (blocking) and
// AsyncFramedConn (non-blocking).

#include <algorithm>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/async_frame.h"
#include "net/byte_stream.h"
#include "net/frame.h"
#include "net/pipe_stream.h"
#include "transport/message.h"
#include "util/random.h"

namespace rsr {
namespace net {
namespace {

using recon::SessionError;
using transport::Message;

Message RandomMessage(Rng* rng) {
  Message msg;
  const size_t label_len = rng->Below(32);
  for (size_t i = 0; i < label_len; ++i) {
    msg.label.push_back(static_cast<char>('a' + rng->Below(26)));
  }
  const size_t payload_len = rng->Below(4096);
  msg.payload.resize(payload_len);
  for (uint8_t& b : msg.payload) b = static_cast<uint8_t>(rng->Below(256));
  // Any bit count consistent with the buffer is legal, including 0.
  msg.payload_bits = payload_len == 0 ? 0 : rng->Below(payload_len * 8 + 1);
  return msg;
}

void ExpectSameMessage(const Message& want, const Message& got) {
  EXPECT_EQ(want.label, got.label);
  EXPECT_EQ(want.payload, got.payload);
  EXPECT_EQ(want.payload_bits, got.payload_bits);
}

TEST(FrameCodec, RoundTripsRandomMessages) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Message msg = RandomMessage(&rng);
    FrameDecoder decoder;
    decoder.Feed(EncodeFrame(msg));
    Message out;
    ASSERT_EQ(decoder.Next(&out), FrameDecoder::Status::kFrame);
    ExpectSameMessage(msg, out);
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kNeedMoreData);
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(FrameCodec, DecodesByteDribbledStream) {
  Rng rng(11);
  std::vector<Message> sent;
  std::vector<uint8_t> wire;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(RandomMessage(&rng));
    EncodeFrame(sent.back(), &wire);
  }
  FrameDecoder decoder;
  std::vector<Message> received;
  size_t offset = 0;
  while (offset < wire.size()) {
    const size_t chunk = std::min<size_t>(1 + rng.Below(7), wire.size() - offset);
    decoder.Feed(wire.data() + offset, chunk);
    offset += chunk;
    Message out;
    while (decoder.Next(&out) == FrameDecoder::Status::kFrame) {
      received.push_back(out);
    }
    ASSERT_EQ(decoder.error(), SessionError::kNone);
  }
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectSameMessage(sent[i], received[i]);
  }
}

TEST(FrameCodec, TruncatedFrameIsMidFrameNotError) {
  Message msg;
  msg.label = "qt-strata";
  msg.payload = {1, 2, 3, 4, 5};
  msg.payload_bits = 37;
  const std::vector<uint8_t> wire = EncodeFrame(msg);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Message out;
    ASSERT_EQ(decoder.Next(&out), FrameDecoder::Status::kNeedMoreData)
        << "cut=" << cut;
    EXPECT_TRUE(decoder.mid_frame());
  }
}

TEST(FrameCodec, GarbageBytesAreMalformed) {
  std::vector<uint8_t> garbage(64, 0xAB);
  FrameDecoder decoder;
  decoder.Feed(garbage);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
  // The decoder stays failed: a desynced byte stream cannot recover.
  decoder.Feed(EncodeFrame(Message{}));
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
}

TEST(FrameCodec, WrongVersionIsMalformed) {
  std::vector<uint8_t> wire = EncodeFrame(Message{"x", {0xFF}, 8});
  wire[4] = kWireVersion + 1;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(FrameCodec, OversizedPayloadIsRejectedFromHeaderAlone) {
  Message big;
  big.label = "big";
  big.payload.assign(2048, 7);
  big.payload_bits = 2048 * 8;
  FrameLimits limits;
  limits.max_payload_bytes = 1024;
  FrameDecoder decoder(limits);
  // Feed only the header: the guard must fire before the body arrives.
  const std::vector<uint8_t> wire = EncodeFrame(big);
  decoder.Feed(wire.data(), kFrameHeaderBytes);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(FrameCodec, OverlongLabelIsRejected) {
  Message msg;
  msg.label.assign(64, 'l');
  FrameLimits limits;
  limits.max_label_bytes = 16;
  FrameDecoder decoder(limits);
  decoder.Feed(EncodeFrame(msg));
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(FrameCodec, CorruptBitAccountingIsRejected) {
  // Hand-craft a frame claiming more payload bits than payload bytes can
  // hold; EncodeFrame refuses to build one, so patch the bits field (bytes
  // 11..18, little-endian).
  std::vector<uint8_t> wire = EncodeFrame(Message{"m", {1, 2}, 16});
  wire[11] = 17;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(MessageHardening, IsWellFormedChecksBitBudget) {
  EXPECT_TRUE(transport::IsWellFormed(Message{"a", {1, 2}, 16}));
  EXPECT_TRUE(transport::IsWellFormed(Message{"a", {1, 2}, 0}));
  EXPECT_FALSE(transport::IsWellFormed(Message{"a", {1, 2}, 17}));
  EXPECT_FALSE(transport::IsWellFormed(Message{"a", {}, 1}));
}

TEST(MessageHardening, MakeMessageProducesWellFormedMessages) {
  BitWriter writer;
  writer.WriteBits(0x2A, 13);
  const Message msg = transport::MakeMessage("answer", std::move(writer));
  EXPECT_TRUE(transport::IsWellFormed(msg));
  EXPECT_EQ(msg.payload_bits, 13u);
  EXPECT_EQ(msg.payload.size(), 2u);
}

// ------------------------------------------------------- framed streams

TEST(FramedStream, RoundTripsOverPipePair) {
  auto [left, right] = PipeStream::CreatePair();
  FramedStream a(left.get());
  FramedStream b(right.get());
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const Message msg = RandomMessage(&rng);
    ASSERT_TRUE(a.Send(msg));
    Message out;
    ASSERT_EQ(b.Receive(&out), FramedStream::RecvStatus::kMessage);
    ExpectSameMessage(msg, out);
  }
  EXPECT_GT(a.bytes_sent(), 0u);
  EXPECT_EQ(a.bytes_sent(), b.bytes_received());
}

TEST(FramedStream, CleanCloseBetweenFramesMapsToTransportClosed) {
  auto [left, right] = PipeStream::CreatePair();
  FramedStream b(right.get());
  left->Close();
  Message out;
  EXPECT_EQ(b.Receive(&out), FramedStream::RecvStatus::kClosed);
  EXPECT_EQ(b.error(), SessionError::kTransportClosed);
}

TEST(FramedStream, EofMidFrameMapsToMalformed) {
  auto [left, right] = PipeStream::CreatePair();
  FramedStream b(right.get());
  const std::vector<uint8_t> wire =
      EncodeFrame(Message{"half", {9, 9, 9, 9}, 32});
  ASSERT_TRUE(left->Write(wire.data(), wire.size() / 2));
  left->Close();
  Message out;
  EXPECT_EQ(b.Receive(&out), FramedStream::RecvStatus::kError);
  EXPECT_EQ(b.error(), SessionError::kMalformedMessage);
}

// ------------------------------------------------- dribble-stream torture

/// Worst-legal-peer test double over in-memory queues. As a blocking
/// ByteStream, Read returns exactly one byte per call and Write is split
/// into 1..3-byte chunks whose boundaries are recorded; as a
/// NonBlockingStream, ReadSome additionally interleaves kWouldBlock and
/// WriteSome accepts at most a few bytes per call. Both sides of the
/// framing stack must reassemble identical messages from this.
class DribbleStream : public ByteStream, public NonBlockingStream {
 public:
  explicit DribbleStream(uint64_t seed) : rng_(seed) {}

  void FeedInput(const std::vector<uint8_t>& bytes) {
    input_.insert(input_.end(), bytes.begin(), bytes.end());
  }
  void CloseInput() { input_closed_ = true; }

  // Blocking side. The test pre-feeds all input, so an empty un-closed
  // queue is a harness bug — fail loudly instead of blocking.
  ptrdiff_t Read(uint8_t* buf, size_t n) override {
    if (n == 0 || input_.empty()) return input_closed_ ? 0 : -1;
    buf[0] = input_.front();
    input_.pop_front();
    return 1;
  }
  bool Write(const uint8_t* data, size_t n) override {
    size_t offset = 0;
    while (offset < n) {
      const size_t chunk = std::min<size_t>(1 + rng_.Below(3), n - offset);
      chunks_.emplace_back(data + offset, data + offset + chunk);
      offset += chunk;
    }
    return true;
  }
  void Close() override { input_closed_ = true; }

  // Non-blocking side.
  ptrdiff_t ReadSome(uint8_t* buf, size_t n) override {
    if (rng_.Below(2) == 0) return kWouldBlock;
    if (n == 0 || input_.empty()) return input_closed_ ? 0 : kWouldBlock;
    buf[0] = input_.front();
    input_.pop_front();
    return 1;
  }
  ptrdiff_t WriteSome(const uint8_t* data, size_t n) override {
    if (n == 0 || rng_.Below(3) == 0) return kWouldBlock;
    const size_t chunk = std::min<size_t>(1 + rng_.Below(3), n);
    chunks_.emplace_back(data, data + chunk);
    return static_cast<ptrdiff_t>(chunk);
  }

  const std::vector<std::vector<uint8_t>>& chunks() const { return chunks_; }
  std::vector<uint8_t> FlattenedOutput() const {
    std::vector<uint8_t> out;
    for (const auto& chunk : chunks_) {
      out.insert(out.end(), chunk.begin(), chunk.end());
    }
    return out;
  }

 private:
  Rng rng_;
  std::deque<uint8_t> input_;
  bool input_closed_ = false;
  std::vector<std::vector<uint8_t>> chunks_;
};

TEST(DribbleStreamTest, FramedStreamReceivesAcrossSingleByteReads) {
  Rng rng(31);
  DribbleStream dribble(32);
  std::vector<Message> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(RandomMessage(&rng));
    dribble.FeedInput(EncodeFrame(sent.back()));
  }
  dribble.CloseInput();
  FramedStream framed(&dribble);
  for (const Message& want : sent) {
    Message got;
    ASSERT_EQ(framed.Receive(&got), FramedStream::RecvStatus::kMessage);
    ExpectSameMessage(want, got);
  }
  Message got;
  EXPECT_EQ(framed.Receive(&got), FramedStream::RecvStatus::kClosed);
  EXPECT_EQ(framed.error(), SessionError::kTransportClosed);
}

TEST(DribbleStreamTest, FramedStreamSendSurvivesChunkedWrites) {
  Rng rng(41);
  DribbleStream dribble(42);
  FramedStream framed(&dribble);
  std::vector<Message> sent;
  for (int i = 0; i < 10; ++i) {
    sent.push_back(RandomMessage(&rng));
    ASSERT_TRUE(framed.Send(sent.back()));
  }
  // The writes really were split: far more chunks than messages.
  EXPECT_GT(dribble.chunks().size(), sent.size());
  // Feeding the recorded chunks one by one into a fresh decoder
  // reproduces the exact message sequence.
  FrameDecoder decoder;
  std::vector<Message> received;
  for (const auto& chunk : dribble.chunks()) {
    decoder.Feed(chunk.data(), chunk.size());
    Message out;
    while (decoder.Next(&out) == FrameDecoder::Status::kFrame) {
      received.push_back(out);
    }
    ASSERT_EQ(decoder.error(), SessionError::kNone);
  }
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectSameMessage(sent[i], received[i]);
  }
}

TEST(DribbleStreamTest, AsyncFramedConnDecodesOneByteAtATime) {
  Rng rng(51);
  DribbleStream dribble(52);
  std::vector<Message> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(RandomMessage(&rng));
    dribble.FeedInput(EncodeFrame(sent.back()));
  }
  dribble.CloseInput();
  AsyncFramedConn conn(&dribble);
  std::vector<Message> received;
  AsyncFramedConn::IoStatus status = AsyncFramedConn::IoStatus::kOk;
  for (int spin = 0;
       spin < 1000000 && status == AsyncFramedConn::IoStatus::kOk; ++spin) {
    status = conn.OnReadable();
    Message out;
    while (conn.Next(&out) == AsyncFramedConn::NextStatus::kMessage) {
      received.push_back(out);
    }
  }
  // The stream ends cleanly between frames after the last message.
  EXPECT_EQ(status, AsyncFramedConn::IoStatus::kClosed);
  EXPECT_EQ(conn.error(), SessionError::kTransportClosed);
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectSameMessage(sent[i], received[i]);
  }
}

TEST(DribbleStreamTest, AsyncFramedConnBuffersPartialWrites) {
  Rng rng(61);
  DribbleStream dribble(62);
  AsyncFramedConn conn(&dribble);
  std::vector<uint8_t> want_wire;
  for (int i = 0; i < 10; ++i) {
    const Message msg = RandomMessage(&rng);
    EncodeFrame(msg, &want_wire);
    ASSERT_TRUE(conn.Send(msg));
  }
  // Sends flushed only as far as the stream allowed; drain the rest.
  int spins = 0;
  while (conn.wants_write()) {
    ASSERT_EQ(conn.Flush(), AsyncFramedConn::IoStatus::kOk);
    ASSERT_LT(++spins, 1000000);
  }
  EXPECT_EQ(conn.bytes_sent(), want_wire.size());
  EXPECT_EQ(dribble.FlattenedOutput(), want_wire);
}

/// Regression: the whole stream — final frame included — plus EOF arrives
/// in ONE readable event, with no would-block in between (a peer that
/// writes its last frame and closes immediately). The EOF lands while
/// complete frames are still queued for Next(); it must still classify as
/// a clean close, not a truncated frame.
struct EagerStream : public NonBlockingStream {
  std::deque<uint8_t> input;

  ptrdiff_t ReadSome(uint8_t* buf, size_t n) override {
    if (input.empty()) return 0;  // immediate EOF after the data
    size_t count = 0;
    while (count < n && !input.empty()) {
      buf[count++] = input.front();
      input.pop_front();
    }
    return static_cast<ptrdiff_t>(count);
  }
  ptrdiff_t WriteSome(const uint8_t* data, size_t n) override {
    (void)data;
    return static_cast<ptrdiff_t>(n);
  }
  void Close() override {}
};

TEST(DribbleStreamTest, AsyncFramedConnFinalFrameAndEofTogetherIsCleanClose) {
  Rng rng(91);
  EagerStream stream;
  std::vector<Message> sent;
  for (int i = 0; i < 3; ++i) {
    sent.push_back(RandomMessage(&rng));
    const std::vector<uint8_t> wire = EncodeFrame(sent.back());
    stream.input.insert(stream.input.end(), wire.begin(), wire.end());
  }
  AsyncFramedConn conn(&stream);
  // One OnReadable drains the frames AND sees the EOF.
  EXPECT_EQ(conn.OnReadable(), AsyncFramedConn::IoStatus::kClosed);
  EXPECT_EQ(conn.error(), SessionError::kTransportClosed);
  // The queued complete frames are all still deliverable.
  for (const Message& want : sent) {
    Message got;
    ASSERT_EQ(conn.Next(&got), AsyncFramedConn::NextStatus::kMessage);
    ExpectSameMessage(want, got);
  }
  Message got;
  EXPECT_EQ(conn.Next(&got), AsyncFramedConn::NextStatus::kIdle);
}

TEST(DribbleStreamTest, AsyncFramedConnEofMidFrameIsMalformed) {
  DribbleStream dribble(72);
  const std::vector<uint8_t> wire =
      EncodeFrame(Message{"half", {9, 9, 9, 9}, 32});
  dribble.FeedInput(
      std::vector<uint8_t>(wire.begin(), wire.begin() + wire.size() / 2));
  dribble.CloseInput();
  AsyncFramedConn conn(&dribble);
  AsyncFramedConn::IoStatus status;
  while ((status = conn.OnReadable()) == AsyncFramedConn::IoStatus::kOk) {
  }
  EXPECT_EQ(status, AsyncFramedConn::IoStatus::kError);
  EXPECT_EQ(conn.error(), SessionError::kMalformedMessage);
}

TEST(DribbleStreamTest, AsyncFramedConnCorruptFrameFailsPermanently) {
  DribbleStream dribble(82);
  dribble.FeedInput(std::vector<uint8_t>(64, 0xAB));
  dribble.CloseInput();
  AsyncFramedConn conn(&dribble);
  while (conn.OnReadable() == AsyncFramedConn::IoStatus::kOk) {
  }
  Message out;
  EXPECT_EQ(conn.Next(&out), AsyncFramedConn::NextStatus::kError);
  EXPECT_EQ(conn.error(), SessionError::kMalformedMessage);
  EXPECT_EQ(conn.Next(&out), AsyncFramedConn::NextStatus::kError);
}

TEST(PipeStreamTest, BlocksUntilDataArrives) {
  auto [left, right] = PipeStream::CreatePair();
  std::thread writer([&l = *left] {
    const uint8_t data[3] = {10, 20, 30};
    ASSERT_TRUE(l.Write(data, 3));
  });
  uint8_t buf[3] = {0, 0, 0};
  ASSERT_EQ(ReadFull(right.get(), buf, 3), ReadStatus::kOk);
  EXPECT_EQ(buf[0], 10);
  EXPECT_EQ(buf[2], 30);
  writer.join();
  left->Close();
  EXPECT_EQ(right->Read(buf, 1), 0);  // EOF after close
  EXPECT_FALSE(left->Write(buf, 1));  // writes after close fail
}

}  // namespace
}  // namespace net
}  // namespace rsr
