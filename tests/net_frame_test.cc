// Wire-framing tests: round-trip property over random labels / payload
// sizes, incremental (byte-dribbled) decoding, and decode failures —
// truncated, oversized, garbage, wrong version, and corrupt bit accounting
// — each asserting the mapped SessionError.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/byte_stream.h"
#include "net/frame.h"
#include "net/pipe_stream.h"
#include "transport/message.h"
#include "util/random.h"

namespace rsr {
namespace net {
namespace {

using recon::SessionError;
using transport::Message;

Message RandomMessage(Rng* rng) {
  Message msg;
  const size_t label_len = rng->Below(32);
  for (size_t i = 0; i < label_len; ++i) {
    msg.label.push_back(static_cast<char>('a' + rng->Below(26)));
  }
  const size_t payload_len = rng->Below(4096);
  msg.payload.resize(payload_len);
  for (uint8_t& b : msg.payload) b = static_cast<uint8_t>(rng->Below(256));
  // Any bit count consistent with the buffer is legal, including 0.
  msg.payload_bits = payload_len == 0 ? 0 : rng->Below(payload_len * 8 + 1);
  return msg;
}

void ExpectSameMessage(const Message& want, const Message& got) {
  EXPECT_EQ(want.label, got.label);
  EXPECT_EQ(want.payload, got.payload);
  EXPECT_EQ(want.payload_bits, got.payload_bits);
}

TEST(FrameCodec, RoundTripsRandomMessages) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Message msg = RandomMessage(&rng);
    FrameDecoder decoder;
    decoder.Feed(EncodeFrame(msg));
    Message out;
    ASSERT_EQ(decoder.Next(&out), FrameDecoder::Status::kFrame);
    ExpectSameMessage(msg, out);
    EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kNeedMoreData);
    EXPECT_FALSE(decoder.mid_frame());
  }
}

TEST(FrameCodec, DecodesByteDribbledStream) {
  Rng rng(11);
  std::vector<Message> sent;
  std::vector<uint8_t> wire;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(RandomMessage(&rng));
    EncodeFrame(sent.back(), &wire);
  }
  FrameDecoder decoder;
  std::vector<Message> received;
  size_t offset = 0;
  while (offset < wire.size()) {
    const size_t chunk = std::min<size_t>(1 + rng.Below(7), wire.size() - offset);
    decoder.Feed(wire.data() + offset, chunk);
    offset += chunk;
    Message out;
    while (decoder.Next(&out) == FrameDecoder::Status::kFrame) {
      received.push_back(out);
    }
    ASSERT_EQ(decoder.error(), SessionError::kNone);
  }
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    ExpectSameMessage(sent[i], received[i]);
  }
}

TEST(FrameCodec, TruncatedFrameIsMidFrameNotError) {
  Message msg;
  msg.label = "qt-strata";
  msg.payload = {1, 2, 3, 4, 5};
  msg.payload_bits = 37;
  const std::vector<uint8_t> wire = EncodeFrame(msg);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    Message out;
    ASSERT_EQ(decoder.Next(&out), FrameDecoder::Status::kNeedMoreData)
        << "cut=" << cut;
    EXPECT_TRUE(decoder.mid_frame());
  }
}

TEST(FrameCodec, GarbageBytesAreMalformed) {
  std::vector<uint8_t> garbage(64, 0xAB);
  FrameDecoder decoder;
  decoder.Feed(garbage);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
  // The decoder stays failed: a desynced byte stream cannot recover.
  decoder.Feed(EncodeFrame(Message{}));
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
}

TEST(FrameCodec, WrongVersionIsMalformed) {
  std::vector<uint8_t> wire = EncodeFrame(Message{"x", {0xFF}, 8});
  wire[4] = kWireVersion + 1;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(FrameCodec, OversizedPayloadIsRejectedFromHeaderAlone) {
  Message big;
  big.label = "big";
  big.payload.assign(2048, 7);
  big.payload_bits = 2048 * 8;
  FrameLimits limits;
  limits.max_payload_bytes = 1024;
  FrameDecoder decoder(limits);
  // Feed only the header: the guard must fire before the body arrives.
  const std::vector<uint8_t> wire = EncodeFrame(big);
  decoder.Feed(wire.data(), kFrameHeaderBytes);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(FrameCodec, OverlongLabelIsRejected) {
  Message msg;
  msg.label.assign(64, 'l');
  FrameLimits limits;
  limits.max_label_bytes = 16;
  FrameDecoder decoder(limits);
  decoder.Feed(EncodeFrame(msg));
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(FrameCodec, CorruptBitAccountingIsRejected) {
  // Hand-craft a frame claiming more payload bits than payload bytes can
  // hold; EncodeFrame refuses to build one, so patch the bits field (bytes
  // 11..18, little-endian).
  std::vector<uint8_t> wire = EncodeFrame(Message{"m", {1, 2}, 16});
  wire[11] = 17;
  FrameDecoder decoder;
  decoder.Feed(wire);
  Message out;
  EXPECT_EQ(decoder.Next(&out), FrameDecoder::Status::kError);
  EXPECT_EQ(decoder.error(), SessionError::kMalformedMessage);
}

TEST(MessageHardening, IsWellFormedChecksBitBudget) {
  EXPECT_TRUE(transport::IsWellFormed(Message{"a", {1, 2}, 16}));
  EXPECT_TRUE(transport::IsWellFormed(Message{"a", {1, 2}, 0}));
  EXPECT_FALSE(transport::IsWellFormed(Message{"a", {1, 2}, 17}));
  EXPECT_FALSE(transport::IsWellFormed(Message{"a", {}, 1}));
}

TEST(MessageHardening, MakeMessageProducesWellFormedMessages) {
  BitWriter writer;
  writer.WriteBits(0x2A, 13);
  const Message msg = transport::MakeMessage("answer", std::move(writer));
  EXPECT_TRUE(transport::IsWellFormed(msg));
  EXPECT_EQ(msg.payload_bits, 13u);
  EXPECT_EQ(msg.payload.size(), 2u);
}

// ------------------------------------------------------- framed streams

TEST(FramedStream, RoundTripsOverPipePair) {
  auto [left, right] = PipeStream::CreatePair();
  FramedStream a(left.get());
  FramedStream b(right.get());
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    const Message msg = RandomMessage(&rng);
    ASSERT_TRUE(a.Send(msg));
    Message out;
    ASSERT_EQ(b.Receive(&out), FramedStream::RecvStatus::kMessage);
    ExpectSameMessage(msg, out);
  }
  EXPECT_GT(a.bytes_sent(), 0u);
  EXPECT_EQ(a.bytes_sent(), b.bytes_received());
}

TEST(FramedStream, CleanCloseBetweenFramesMapsToTransportClosed) {
  auto [left, right] = PipeStream::CreatePair();
  FramedStream b(right.get());
  left->Close();
  Message out;
  EXPECT_EQ(b.Receive(&out), FramedStream::RecvStatus::kClosed);
  EXPECT_EQ(b.error(), SessionError::kTransportClosed);
}

TEST(FramedStream, EofMidFrameMapsToMalformed) {
  auto [left, right] = PipeStream::CreatePair();
  FramedStream b(right.get());
  const std::vector<uint8_t> wire =
      EncodeFrame(Message{"half", {9, 9, 9, 9}, 32});
  ASSERT_TRUE(left->Write(wire.data(), wire.size() / 2));
  left->Close();
  Message out;
  EXPECT_EQ(b.Receive(&out), FramedStream::RecvStatus::kError);
  EXPECT_EQ(b.error(), SessionError::kMalformedMessage);
}

TEST(PipeStreamTest, BlocksUntilDataArrives) {
  auto [left, right] = PipeStream::CreatePair();
  std::thread writer([&l = *left] {
    const uint8_t data[3] = {10, 20, 30};
    ASSERT_TRUE(l.Write(data, 3));
  });
  uint8_t buf[3] = {0, 0, 0};
  ASSERT_EQ(ReadFull(right.get(), buf, 3), ReadStatus::kOk);
  EXPECT_EQ(buf[0], 10);
  EXPECT_EQ(buf[2], 30);
  writer.join();
  left->Close();
  EXPECT_EQ(right->Read(buf, 1), 0);  // EOF after close
  EXPECT_FALSE(left->Write(buf, 1));  // writes after close fail
}

}  // namespace
}  // namespace net
}  // namespace rsr
