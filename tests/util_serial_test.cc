#include "util/serial.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rsr {
namespace {

TEST(SerialTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  EXPECT_EQ(w.size(), 1u + 4u + 8u);

  ByteReader r(w.bytes());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(r.ReadU8(&u8));
  ASSERT_TRUE(r.ReadU32(&u32));
  ASSERT_TRUE(r.ReadU64(&u64));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, LittleEndianLayout) {
  ByteWriter w;
  w.WriteU32(0x01020304);
  ASSERT_EQ(w.bytes().size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(SerialTest, VarintBoundaries) {
  ByteWriter w;
  w.WriteVarint(0);
  w.WriteVarint(0x7f);
  w.WriteVarint(0x80);
  w.WriteVarint(~uint64_t{0});
  ByteReader r(w.bytes());
  uint64_t v = 0;
  ASSERT_TRUE(r.ReadVarint(&v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(r.ReadVarint(&v));
  EXPECT_EQ(v, 0x7fu);
  ASSERT_TRUE(r.ReadVarint(&v));
  EXPECT_EQ(v, 0x80u);
  ASSERT_TRUE(r.ReadVarint(&v));
  EXPECT_EQ(v, ~uint64_t{0});
}

TEST(SerialTest, BlobAndStringRoundTrip) {
  ByteWriter w;
  const std::vector<uint8_t> blob = {1, 2, 3, 250, 251};
  w.WriteBlob(blob);
  w.WriteString("hello world");
  w.WriteBlob({});
  w.WriteString("");

  ByteReader r(w.bytes());
  std::vector<uint8_t> out_blob;
  std::string out_str;
  ASSERT_TRUE(r.ReadBlob(&out_blob));
  EXPECT_EQ(out_blob, blob);
  ASSERT_TRUE(r.ReadString(&out_str));
  EXPECT_EQ(out_str, "hello world");
  ASSERT_TRUE(r.ReadBlob(&out_blob));
  EXPECT_TRUE(out_blob.empty());
  ASSERT_TRUE(r.ReadString(&out_str));
  EXPECT_TRUE(out_str.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerialTest, UnderrunFails) {
  ByteWriter w;
  w.WriteU8(1);
  ByteReader r(w.bytes());
  uint32_t v = 0;
  EXPECT_FALSE(r.ReadU32(&v));
}

TEST(SerialTest, TruncatedBlobFails) {
  ByteWriter w;
  w.WriteVarint(100);  // claims 100 bytes follow
  w.WriteU8(1);
  ByteReader r(w.bytes());
  std::vector<uint8_t> blob;
  EXPECT_FALSE(r.ReadBlob(&blob));
}

TEST(SerialTest, MalformedVarintFails) {
  // Eleven continuation bytes is not a valid 64-bit varint.
  std::vector<uint8_t> bytes(11, 0x80);
  ByteReader r(bytes);
  uint64_t v = 0;
  EXPECT_FALSE(r.ReadVarint(&v));
}

TEST(SerialTest, FuzzedRoundTrip) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    ByteWriter w;
    std::vector<uint64_t> values;
    for (int i = 0; i < 100; ++i) {
      const uint64_t v = rng.Next64() >> rng.Below(64);
      values.push_back(v);
      w.WriteVarint(v);
    }
    ByteReader r(w.bytes());
    for (uint64_t expected : values) {
      uint64_t v = 0;
      ASSERT_TRUE(r.ReadVarint(&v));
      ASSERT_EQ(v, expected);
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

}  // namespace
}  // namespace rsr
