// Replication subsystem: tail replay bit-identity, fall-off-the-log
// protocol repair, approximate-repair dirtiness, mesh convergence to
// exact zero divergence, replica-aware client serving, retry-on-reject,
// and the stats dump. The concurrency-heavy pieces (pipe serving threads,
// scheduler rounds) run under TSan in CI.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/pipe_stream.h"
#include "net/tcp.h"
#include "recon/exact_recon.h"
#include "recon/registry.h"
#include "replica/anti_entropy.h"
#include "replica/mesh.h"
#include "replica/replica_node.h"
#include "server/async_sync_server.h"
#include "server/handshake.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "transport/channel.h"
#include "util/bitio.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rsr {
namespace replica {
namespace {

using RoundPath = RoundRecord::Path;

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 9;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet Cloud(size_t n, uint64_t seed) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(seed);
  return workload::GenerateCloud(spec, &rng);
}

ReplicaNodeOptions NodeOptions(size_t log_capacity) {
  ReplicaNodeOptions options;
  options.server.context = Ctx();
  options.server.params = Params();
  options.changelog.capacity = log_capacity;
  return options;
}

workload::ChurnSpec SmallChurn() {
  workload::ChurnSpec spec;
  spec.fraction = 0.0;  // min_updates floors it: one replacement per batch
  spec.min_updates = 1;
  return spec;
}

/// Applies `batches` churn batches to the writer node.
void Churn(ReplicaNode* writer, const workload::ChurnSpec& spec,
           size_t batches, Rng* rng) {
  for (size_t i = 0; i < batches; ++i) {
    const workload::ChurnBatch batch = workload::MakeChurnBatch(
        writer->points(), Ctx().universe, spec, rng);
    writer->Apply(batch.inserts, batch.erases);
  }
}

std::vector<uint8_t> StrataBits(const server::SketchSnapshot& snapshot) {
  const auto strata =
      snapshot.ExactStrata(recon::ExactReconStrataConfig(Ctx().seed));
  BitWriter w;
  if (strata.has_value()) strata->Serialize(&w);
  return std::move(w).TakeBytes();
}

TEST(ReplicaNodeTest, TailReplayIsBitIdenticalToWriter) {
  ReplicaMeshOptions options;
  options.nodes = 2;
  options.node = NodeOptions(64);
  ReplicaMesh mesh(Cloud(96, 4242), options);

  Rng rng(7);
  Churn(&mesh.node(0), SmallChurn(), 3, &rng);
  ASSERT_EQ(mesh.node(0).applied_seq(), 3u);

  const RoundRecord round = mesh.RunRound(1, 0);
  EXPECT_EQ(round.path, RoundPath::kTail) << round.error_detail;
  EXPECT_TRUE(round.ok);
  EXPECT_EQ(round.entries_applied, 3u);
  EXPECT_EQ(round.peer_seq, 3u);
  EXPECT_EQ(mesh.node(1).applied_seq(), 3u);

  // Same batches replayed in the same order: the follower's point SEQUENCE
  // (not just multiset) and its cached serving sketches must come out
  // bit-identical to the writer's.
  EXPECT_EQ(mesh.node(1).points(), mesh.node(0).points());
  EXPECT_EQ(StrataBits(*mesh.node(1).snapshot()),
            StrataBits(*mesh.node(0).snapshot()));

  // Mirrored changelog: a third replica could now tail from the follower.
  const FetchedEntries mirrored = mesh.node(1).changelog().Fetch(0);
  ASSERT_TRUE(mirrored.ok);
  EXPECT_EQ(mirrored.entries.size(), 3u);

  const RoundRecord idle = mesh.RunRound(1, 0);
  EXPECT_EQ(idle.path, RoundPath::kInSync);
  EXPECT_TRUE(idle.ok);
  mesh.StopSchedulers();
}

TEST(ReplicaNodeTest, FallOffLogForcesRepairThenTailResumes) {
  ReplicaMeshOptions options;
  options.nodes = 2;
  options.node = NodeOptions(1);       // ring keeps only the newest entry
  options.node.exact_budget = 1000;    // keep the repair on the exact path
  ReplicaMesh mesh(Cloud(96, 4242), options);

  Rng rng(8);
  Churn(&mesh.node(0), SmallChurn(), 3, &rng);

  // The follower (at seq 0) has fallen off the writer's one-entry ring.
  const RoundRecord repair = mesh.RunRound(1, 0);
  EXPECT_EQ(repair.path, RoundPath::kRepairExact) << repair.error_detail;
  EXPECT_TRUE(repair.ok);
  EXPECT_EQ(repair.protocol, "riblt-oneshot");
  EXPECT_EQ(repair.seq_after, 3u);
  EXPECT_FALSE(repair.dirty_after);
  EXPECT_EQ(mesh.Divergence(0, 1), 0u);

  // Exact install re-based the follower's coverage at the peer's seq, so
  // the next writer batch tails normally again.
  Churn(&mesh.node(0), SmallChurn(), 1, &rng);
  const RoundRecord tail = mesh.RunRound(1, 0);
  EXPECT_EQ(tail.path, RoundPath::kTail) << tail.error_detail;
  EXPECT_EQ(tail.entries_applied, 1u);
  EXPECT_EQ(mesh.Divergence(0, 1), 0u);
  mesh.StopSchedulers();
}

TEST(ReplicaNodeTest, ApproximateRepairGoesDirtyUntilExactRepair) {
  ReplicaMeshOptions options;
  options.nodes = 2;
  options.node = NodeOptions(1);
  options.node.exact_budget = 1;        // force the delta past the exact band
  options.node.approx_budget = 100000;  // ...into the approximate one
  ReplicaMesh mesh(Cloud(96, 4242), options);

  Rng rng(11);
  Churn(&mesh.node(0), SmallChurn(), 3, &rng);

  const RoundRecord approx = mesh.RunRound(1, 0);
  EXPECT_EQ(approx.path, RoundPath::kRepairApprox) << approx.error_detail;
  EXPECT_TRUE(approx.ok);
  EXPECT_EQ(approx.protocol, "quadtree");
  EXPECT_TRUE(approx.dirty_after);
  // The set corresponds to no journal position now; seq did not move.
  EXPECT_EQ(approx.seq_after, 0u);

  // A dirty node never tail-replays and never re-approximates: the next
  // round escalates to an exact install, which clears the flag and adopts
  // the peer's position.
  const RoundRecord exact = mesh.RunRound(1, 0);
  EXPECT_TRUE(exact.ok) << exact.error_detail;
  EXPECT_TRUE(exact.path == RoundPath::kRepairExact ||
              exact.path == RoundPath::kRepairFull)
      << RoundPathName(exact.path);
  EXPECT_FALSE(exact.dirty_after);
  EXPECT_EQ(exact.seq_after, mesh.node(0).applied_seq());
  EXPECT_EQ(mesh.Divergence(0, 1), 0u);
  mesh.StopSchedulers();
}

TEST(ReplicaMeshTest, ThreeNodesConvergeToExactZeroDivergence) {
  ReplicaMeshOptions options;
  options.nodes = 3;
  options.node = NodeOptions(4);
  ReplicaMesh mesh(Cloud(128, 1234), options);

  Rng rng(21);
  workload::ChurnSpec spec = SmallChurn();
  spec.min_updates = 2;

  std::vector<RoundRecord> records;
  // Churn while the followers pull — node 2 pulls from node 1, so the
  // follower-to-follower serving path (mirrored changelog) is exercised.
  for (size_t phase = 0; phase < 6; ++phase) {
    Churn(&mesh.node(0), spec, 2, &rng);
    records.push_back(mesh.RunRound(1, 0));
    records.push_back(mesh.RunRound(2, 1));
  }
  // Quiescence: no more writes; a few more rounds must reach exact zero.
  for (size_t round = 0; round < 12 && mesh.MaxDivergence() > 0; ++round) {
    records.push_back(mesh.RunRound(1, 0));
    records.push_back(mesh.RunRound(2, 1));
    records.push_back(mesh.RunRound(2, 0));
  }
  EXPECT_EQ(mesh.MaxDivergence(), 0u);
  EXPECT_EQ(mesh.node(1).applied_seq(), mesh.node(0).applied_seq());
  EXPECT_EQ(mesh.node(2).applied_seq(), mesh.node(0).applied_seq());
  for (const RoundRecord& record : records) {
    EXPECT_NE(record.path, RoundPath::kError) << record.error_detail;
  }
  const bool tailed = std::any_of(
      records.begin(), records.end(),
      [](const RoundRecord& r) { return r.path == RoundPath::kTail; });
  EXPECT_TRUE(tailed);
  mesh.StopSchedulers();
}

TEST(ReplicaMeshTest, SchedulerConvergesInBackground) {
  ReplicaMeshOptions options;
  options.nodes = 3;
  options.node = NodeOptions(64);
  options.anti_entropy.period = std::chrono::milliseconds(5);
  ReplicaMesh mesh(Cloud(96, 77), options);

  Rng rng(31);
  ASSERT_TRUE(mesh.StartScheduler(1));
  ASSERT_TRUE(mesh.StartScheduler(2));
  Churn(&mesh.node(0), SmallChurn(), 5, &rng);
  // Wait (bounded) for the periodic pulls to spread the writes.
  for (int i = 0; i < 400 && mesh.MaxDivergence() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  mesh.StopSchedulers();
  // One final deterministic sweep settles any round that raced the stop.
  mesh.RunRound(1, 0);
  mesh.RunRound(2, 0);
  EXPECT_EQ(mesh.MaxDivergence(), 0u);
  EXPECT_GE(mesh.scheduler(1).rounds_run(), 1u);
  EXPECT_GE(mesh.scheduler(2).rounds_run(), 1u);
  mesh.StopSchedulers();
}

TEST(ReplicaServingTest, ClientSyncMatchesDriverAndSeesReplicaSeq) {
  ReplicaNodeOptions node_options = NodeOptions(64);
  ReplicaNode node(Cloud(96, 4242), node_options);
  Rng rng(41);
  Churn(&node, SmallChurn(), 2, &rng);
  ASSERT_EQ(node.applied_seq(), 2u);

  // A drifted client replica (same size; perturbed copies).
  PointSet client_points = node.points();
  for (size_t i = 0; i < 6; ++i) {
    client_points[i] = workload::PerturbPoint(
        client_points[i], Ctx().universe, workload::NoiseKind::kGaussian,
        4.0, &rng);
  }

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);

  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread server_thread([&node, end = std::move(server_end)]() mutable {
    node.host().ServeConnection(end.get());
  });
  const server::SyncOutcome outcome =
      client.Sync(client_end.get(), "riblt-oneshot", client_points);
  server_thread.join();

  ASSERT_TRUE(outcome.handshake_ok) << outcome.error_detail;
  EXPECT_EQ(outcome.server_replica_seq, 2u);
  EXPECT_EQ(outcome.server_generation,
            node.host().snapshot()->generation());

  // Bit-identical to the in-process two-party driver on the same inputs.
  const auto reconciler =
      recon::MakeReconciler("riblt-oneshot", Ctx(), Params());
  transport::Channel channel;
  const recon::ReconResult expected =
      reconciler->Run(client_points, node.points(), &channel);
  ASSERT_TRUE(outcome.result.success);
  EXPECT_EQ(outcome.result.bob_final, expected.bob_final);
  EXPECT_EQ(outcome.result.transmitted, expected.transmitted);
}

TEST(SyncRetryTest, RejectedHandshakeRetriesAllAttempts) {
  // A server with an empty registry rejects every protocol.
  const recon::ProtocolRegistry empty_registry;
  server::SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.registry = &empty_registry;
  server::SyncServer server(Cloud(64, 5), server_options);

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);

  std::vector<std::thread> serve_threads;
  const auto connect = [&]() -> std::unique_ptr<net::ByteStream> {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    serve_threads.emplace_back(
        [&server, end = std::move(server_end)]() mutable {
          server.ServeConnection(end.get());
        });
    return std::move(client_end);
  };

  server::SyncRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  const server::SyncOutcome outcome =
      client.SyncWithRetry(connect, "riblt-oneshot", Cloud(64, 6), policy);
  for (std::thread& t : serve_threads) t.join();

  EXPECT_FALSE(outcome.result.success);
  EXPECT_EQ(outcome.result.error, recon::SessionError::kProtocolRejected);
  EXPECT_EQ(outcome.attempts_used, 3u);
  EXPECT_FALSE(outcome.reject_reason.empty());
  EXPECT_EQ(server.metrics().handshakes_rejected, 3u);
}

TEST(SyncRetryTest, RecoversOnSecondAttemptAfterDeadStream) {
  server::SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server::SyncServer server(Cloud(64, 5), server_options);

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);

  std::vector<std::thread> serve_threads;
  size_t dials = 0;
  const auto connect = [&]() -> std::unique_ptr<net::ByteStream> {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    if (++dials == 1) {
      // First dial reaches a dead peer: handshake fails pre-@accept,
      // which is the retryable class.
      server_end->Close();
      return std::move(client_end);
    }
    serve_threads.emplace_back(
        [&server, end = std::move(server_end)]() mutable {
          server.ServeConnection(end.get());
        });
    return std::move(client_end);
  };

  server::SyncRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  // full-transfer: decode cannot fail, so success isolates the transport
  // recovery under test from protocol capacity.
  const server::SyncOutcome outcome =
      client.SyncWithRetry(connect, "full-transfer", Cloud(64, 6), policy);
  for (std::thread& t : serve_threads) t.join();

  EXPECT_TRUE(outcome.result.success) << outcome.error_detail;
  EXPECT_EQ(outcome.attempts_used, 2u);
  EXPECT_EQ(dials, 2u);
}

TEST(SyncRetryTest, BackoffScheduleIsBoundedAndJittered) {
  // Every handshake is rejected, so the client consumes all attempts and
  // the recorder sees every backoff wait — with NO wall-clock sleeping,
  // thanks to the policy's clock seam.
  const recon::ProtocolRegistry empty_registry;
  server::SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.registry = &empty_registry;
  server::SyncServer server(Cloud(64, 5), server_options);

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);

  std::vector<std::thread> serve_threads;
  const auto connect = [&]() -> std::unique_ptr<net::ByteStream> {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    serve_threads.emplace_back(
        [&server, end = std::move(server_end)]() mutable {
          server.ServeConnection(end.get());
        });
    return std::move(client_end);
  };

  server::SyncRetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = std::chrono::milliseconds(100);
  policy.multiplier = 2.0;
  policy.jitter = 0.25;
  policy.seed = 7;
  std::vector<std::chrono::milliseconds> sleeps;
  policy.sleep_fn = [&sleeps](std::chrono::milliseconds wait) {
    sleeps.push_back(wait);
  };
  const server::SyncOutcome outcome =
      client.SyncWithRetry(connect, "riblt-oneshot", Cloud(64, 6), policy);
  for (std::thread& t : serve_threads) t.join();

  EXPECT_EQ(outcome.attempts_used, 4u);
  // One wait between consecutive attempts: attempts - 1 of them, each
  // inside the jitter band around initial_backoff * multiplier^i.
  ASSERT_EQ(sleeps.size(), 3u);
  bool jitter_moved_something = false;
  for (size_t i = 0; i < sleeps.size(); ++i) {
    const int64_t nominal = 100 * (int64_t{1} << i);
    const int64_t lo = nominal * 3 / 4;   // (1 - jitter) * nominal
    const int64_t hi = nominal * 5 / 4;   // (1 + jitter) * nominal
    EXPECT_GE(sleeps[i].count(), lo) << "backoff " << i;
    EXPECT_LE(sleeps[i].count(), hi) << "backoff " << i;
    jitter_moved_something =
        jitter_moved_something || sleeps[i].count() != nominal;
  }
  // The jitter RNG (seeded, deterministic) must actually spread retries.
  EXPECT_TRUE(jitter_moved_something);
}

TEST(SyncRetryTest, NoRetryAfterAcceptObserved) {
  // A hand-rolled server that completes the handshake and then hangs up:
  // the failure is post-"@accept", where the session's outcome is unknown
  // and a blind retry could double-apply — so the client must NOT retry.
  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);

  std::vector<std::thread> serve_threads;
  size_t dials = 0;
  const auto connect = [&]() -> std::unique_ptr<net::ByteStream> {
    ++dials;
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    serve_threads.emplace_back([end = std::move(server_end)]() mutable {
      net::FramedStream framed(end.get());
      transport::Message hello_message;
      if (framed.Receive(&hello_message) !=
          net::FramedStream::RecvStatus::kMessage) {
        return;
      }
      server::HelloFrame hello;
      if (!server::DecodeHello(hello_message, &hello)) return;
      server::AcceptFrame accept;
      accept.protocol = hello.protocol;
      accept.will_send_result_set = hello.want_result_set;
      accept.generation = 1;
      framed.Send(server::EncodeAccept(accept));
      end->Close();  // dies right after accepting
    });
    return std::move(client_end);
  };

  server::SyncRetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff = std::chrono::milliseconds(1);
  size_t sleeps = 0;
  policy.sleep_fn = [&sleeps](std::chrono::milliseconds) { ++sleeps; };
  const server::SyncOutcome outcome =
      client.SyncWithRetry(connect, "full-transfer", Cloud(64, 6), policy);
  for (std::thread& t : serve_threads) t.join();

  EXPECT_TRUE(outcome.handshake_ok);
  EXPECT_FALSE(outcome.result.success);
  EXPECT_EQ(outcome.attempts_used, 1u);
  EXPECT_EQ(dials, 1u);
  EXPECT_EQ(sleeps, 0u);
}

TEST(ReplicaNodeTest, RepairFailureEscalatesNextRepairToFullTransfer) {
  // The follower's configured exact-repair protocol is one the peer will
  // always reject, so the sized repair band fails deterministically. The
  // escalation latch must route the NEXT repair straight to the
  // unconditional full transfer instead of looping on the same choice —
  // and clear itself once a round succeeds.
  ReplicaNodeOptions options = NodeOptions(1);  // one-entry ring
  options.exact_budget = 1000;
  options.repair_exact_protocol = "no-such-protocol";
  ReplicaNode writer(Cloud(96, 4242), options);
  ReplicaNode follower(Cloud(96, 4242), options);

  std::vector<std::thread> serve_threads;
  const StreamFactory peer = [&]() -> std::unique_ptr<net::ByteStream> {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    serve_threads.emplace_back(
        [&writer, end = std::move(server_end)]() mutable {
          writer.host().ServeConnection(end.get());
        });
    return std::move(client_end);
  };
  const auto run_round = [&]() {
    const RoundRecord record = follower.SyncWithPeer(peer);
    for (std::thread& t : serve_threads) t.join();
    serve_threads.clear();
    return record;
  };

  Rng rng(13);
  Churn(&writer, SmallChurn(), 3, &rng);  // follower falls off the ring

  const RoundRecord rejected = run_round();
  EXPECT_EQ(rejected.path, RoundPath::kError);
  EXPECT_EQ(rejected.protocol, "no-such-protocol");

  const RoundRecord escalated = run_round();
  EXPECT_EQ(escalated.path, RoundPath::kRepairFull)
      << escalated.error_detail;
  EXPECT_TRUE(escalated.ok);
  EXPECT_EQ(follower.applied_seq(), writer.applied_seq());
  EXPECT_EQ(SetDivergence(follower.points(), writer.points()), 0u);

  // Success cleared the latch: the next fall-off attempts the sized exact
  // band again (and fails again) rather than jumping straight to full.
  Churn(&writer, SmallChurn(), 2, &rng);
  const RoundRecord relatched = run_round();
  EXPECT_EQ(relatched.path, RoundPath::kError);
  EXPECT_EQ(relatched.protocol, "no-such-protocol");
}

TEST(ReplicaServingTest, DumpStatsReportsPositionAndReplicationVerbs) {
  ReplicaMeshOptions options;
  options.nodes = 2;
  options.node = NodeOptions(64);
  ReplicaMesh mesh(Cloud(64, 4242), options);
  Rng rng(51);
  Churn(&mesh.node(0), SmallChurn(), 2, &rng);
  ASSERT_EQ(mesh.RunRound(1, 0).path, RoundPath::kTail);
  mesh.StopSchedulers();

  const std::string stats = mesh.node(0).host().DumpStats();
  EXPECT_NE(stats.find("replica_seq=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("@log-fetch: ok=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("peak_active="), std::string::npos) << stats;
}

TEST(AsyncReplicaTest, AsyncHostJournalsServesLogFetchAndReportsSeq) {
  Changelog changelog;
  server::AsyncSyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.changelog = &changelog;
  server::AsyncSyncServer server(Cloud(96, 4242), options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  Rng rng(61);
  workload::ChurnBatch batch = workload::MakeChurnBatch(
      server.canonical(), Ctx().universe, SmallChurn(), &rng);
  server.ApplyUpdate(batch.inserts, batch.erases);
  batch = workload::MakeChurnBatch(server.canonical(), Ctx().universe,
                                   SmallChurn(), &rng);
  server.ApplyUpdate(batch.inserts, batch.erases);
  EXPECT_EQ(server.replica_seq(), 2u);

  // Raw @log-fetch over TCP.
  {
    auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
    ASSERT_NE(stream, nullptr);
    net::FramedStream framed(stream.get());
    server::LogFetchFrame fetch;
    fetch.from_seq = 0;
    ASSERT_TRUE(framed.Send(server::EncodeLogFetch(fetch)));
    transport::Message reply;
    ASSERT_EQ(framed.Receive(&reply),
              net::FramedStream::RecvStatus::kMessage);
    server::LogBatchFrame log_batch;
    ASSERT_TRUE(server::DecodeLogBatch(
        reply, Ctx().universe,
        recon::ExactReconStrataConfig(Ctx().seed), &log_batch));
    EXPECT_TRUE(log_batch.ok);
    EXPECT_TRUE(log_batch.complete);
    EXPECT_EQ(log_batch.last_seq, 2u);
    EXPECT_EQ(log_batch.entries.size(), 2u);
    stream->Close();
  }

  // The replication position rides in the ordinary "@accept" too.
  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);
  auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  const server::SyncOutcome outcome =
      client.Sync(stream.get(), "riblt-oneshot", Cloud(96, 62));
  EXPECT_TRUE(outcome.handshake_ok) << outcome.error_detail;
  EXPECT_EQ(outcome.server_replica_seq, 2u);

  const std::string stats = server.DumpStats();
  EXPECT_NE(stats.find("replica_seq=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("@log-fetch:"), std::string::npos) << stats;
  server.Stop();
}

}  // namespace
}  // namespace replica
}  // namespace rsr
