// Async serving-layer integration tests: the epoll-sharded AsyncSyncServer
// over loopback TCP. Asserts (1) a served sync's result — reconciled set
// included — is bit-for-bit identical to the in-process two-party driver
// for EVERY protocol in the registry, (2) two shards sustain 256 genuinely
// concurrent mixed-protocol clients (peak_active_sessions == 256, a state
// a 2-worker threaded host can never reach), (3) per-connection idle
// deadlines surface as SessionError::kTransportClosed, and (4) Stop()
// drains deterministically with silent clients connected.

#include <sys/socket.h>

#include <barrier>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/tcp.h"
#include "recon/registry.h"
#include "recon/session.h"
#include "server/async_sync_server.h"
#include "server/handshake.h"
#include "server/sync_client.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace rsr {
namespace server {
namespace {

using recon::ProtocolContext;
using recon::ProtocolParams;
using recon::ReconResult;
using recon::SessionError;

ProtocolContext Ctx() {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 77;
  return ctx;
}

ProtocolParams Params() {
  ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet Canonical(size_t n) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(4242);
  return workload::GenerateCloud(spec, &rng);
}

PointSet DriftedReplica(const PointSet& base, uint64_t seed,
                        size_t outliers = 4, double noise = 1.0) {
  const Universe universe = Ctx().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, noise, &rng));
  }
  for (size_t i = 0; i < outliers && !replica.empty(); ++i) {
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

ReconResult InProcessResult(const std::string& protocol,
                            const PointSet& client_points,
                            const PointSet& canonical) {
  const auto reconciler = recon::MakeReconciler(protocol, Ctx(), Params());
  transport::Channel channel;
  return reconciler->Run(client_points, canonical, &channel);
}

void ExpectMatchesInProcess(const std::string& protocol,
                            const ReconResult& served,
                            const ReconResult& expected) {
  EXPECT_EQ(served.success, expected.success) << protocol;
  EXPECT_EQ(served.error, expected.error) << protocol;
  EXPECT_EQ(served.chosen_level, expected.chosen_level) << protocol;
  EXPECT_EQ(served.decoded_entries, expected.decoded_entries) << protocol;
  EXPECT_EQ(served.attempts, expected.attempts) << protocol;
  EXPECT_EQ(served.transmitted, expected.transmitted) << protocol;
  if (expected.success) {
    EXPECT_EQ(served.bob_final, expected.bob_final) << protocol;
  }
}

TEST(AsyncServerConformance, EveryRegisteredProtocolMatchesInProcessDriver) {
  const PointSet canonical = Canonical(128);
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.shards = 2;
  AsyncSyncServer server(canonical, server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));
  ASSERT_GT(server.port(), 0);

  const std::vector<std::string> protocols =
      recon::ProtocolRegistry::Global().ListProtocols();
  ASSERT_FALSE(protocols.empty());

  SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const SyncClient client(client_options);

  uint64_t seed = 5000;
  for (const std::string& protocol : protocols) {
    const PointSet client_points = DriftedReplica(canonical, ++seed);
    auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
    ASSERT_NE(stream, nullptr) << protocol;
    const SyncOutcome outcome =
        client.Sync(stream.get(), protocol, client_points);
    EXPECT_TRUE(outcome.handshake_ok) << protocol;
    ExpectMatchesInProcess(protocol, outcome.result,
                           InProcessResult(protocol, client_points,
                                           canonical));
  }
  server.Stop();

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.connections_accepted, protocols.size());
  EXPECT_EQ(metrics.active_sessions, 0u);
  EXPECT_EQ(metrics.syncs_completed + metrics.syncs_failed,
            protocols.size());
  EXPECT_EQ(metrics.per_protocol.size(), protocols.size());
  EXPECT_GT(metrics.bytes_in, 0u);
  EXPECT_GT(metrics.bytes_out, 0u);
}

/// A client that handshakes, then waits on `ready` until every other
/// client's session is open before pumping Alice — pinning the number of
/// simultaneously live server-side sessions to the full burst size.
struct GatedClientResult {
  bool ok = false;
  ReconResult result;
};

GatedClientResult GatedSync(uint16_t port, const std::string& protocol,
                            const PointSet& points, std::barrier<>* ready) {
  GatedClientResult out;
  const auto stream = net::TcpStream::Connect("127.0.0.1", port);
  if (stream == nullptr) {
    ready->arrive_and_wait();
    return out;
  }
  net::FramedStream framed(stream.get());
  const auto reconciler =
      recon::MakeReconciler(protocol, Ctx(), Params());
  const std::unique_ptr<recon::PartySession> alice =
      reconciler->MakeAliceSession(points);

  HelloFrame hello;
  hello.protocol = protocol;
  hello.client_set_size = points.size();
  transport::Message incoming;
  AcceptFrame accept;
  const bool handshake_ok =
      framed.Send(EncodeHello(hello)) &&
      framed.Receive(&incoming) == net::FramedStream::RecvStatus::kMessage &&
      DecodeAccept(incoming, &accept);
  // Everyone holds here with a live accepted session: the server provably
  // has the whole burst open at once.
  ready->arrive_and_wait();
  if (!handshake_ok) return out;

  for (transport::Message& opening : alice->Start()) {
    if (!framed.Send(opening)) return out;
  }
  for (size_t deliveries = 0; deliveries < (1u << 16); ++deliveries) {
    if (framed.Receive(&incoming) !=
        net::FramedStream::RecvStatus::kMessage) {
      return out;
    }
    if (incoming.label == kResultLabel) {
      ResultFrame frame;
      if (!DecodeResult(incoming, Ctx().universe, &frame)) return out;
      out.ok = true;
      out.result = std::move(frame.result);
      stream->Close();
      return out;
    }
    for (transport::Message& reply :
         alice->OnMessage(std::move(incoming))) {
      if (!framed.Send(reply)) return out;
    }
  }
  return out;
}

TEST(AsyncServerLoad, TwoShardsSustain256ConcurrentMixedClients) {
  const PointSet canonical = Canonical(128);
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.shards = 2;  // equal total thread count vs 2 workers
  AsyncSyncServer server(canonical, server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  const std::vector<std::string> protocols =
      recon::ProtocolRegistry::Global().ListProtocols();
  constexpr size_t kClients = 256;
  std::vector<PointSet> replicas(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    replicas[i] = DriftedReplica(canonical, 7000 + i);
  }

  std::barrier ready(kClients);
  std::vector<GatedClientResult> outcomes(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      outcomes[i] = GatedSync(server.port(),
                              protocols[i % protocols.size()], replicas[i],
                              &ready);
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  for (size_t i = 0; i < kClients; ++i) {
    const std::string& protocol = protocols[i % protocols.size()];
    ASSERT_TRUE(outcomes[i].ok) << "client " << i << " " << protocol;
    ExpectMatchesInProcess(
        protocol, outcomes[i].result,
        InProcessResult(protocol, replicas[i], canonical));
  }

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.connections_accepted, kClients);
  EXPECT_EQ(metrics.active_sessions, 0u);
  // The load claim: every client held a live session at the barrier, so
  // the two shards had all 256 open simultaneously.
  EXPECT_EQ(metrics.peak_active_sessions, kClients);
  EXPECT_EQ(metrics.syncs_completed + metrics.syncs_failed, kClients);
  EXPECT_EQ(metrics.handshakes_rejected, 0u);
}

TEST(AsyncServerConformance, HalfClosingClientStillGetsItsResult) {
  // A legal TCP client may send its last protocol frame, shutdown its
  // write side, and block reading for "@result". The blocking host serves
  // this (writes to a half-closed socket succeed); the async host must
  // too — the read-side EOF arrives in the same event as the final frame
  // and must not poison the write side.
  const PointSet canonical = Canonical(64);
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.shards = 1;
  AsyncSyncServer server(canonical, server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  const PointSet replica = DriftedReplica(canonical, 31337);
  const auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  net::FramedStream framed(stream.get());
  const auto reconciler =
      recon::MakeReconciler("full-transfer", Ctx(), Params());
  const std::unique_ptr<recon::PartySession> alice =
      reconciler->MakeAliceSession(replica);

  HelloFrame hello;
  hello.protocol = "full-transfer";
  ASSERT_TRUE(framed.Send(EncodeHello(hello)));
  transport::Message incoming;
  ASSERT_EQ(framed.Receive(&incoming),
            net::FramedStream::RecvStatus::kMessage);
  AcceptFrame accept;
  ASSERT_TRUE(DecodeAccept(incoming, &accept));
  for (transport::Message& opening : alice->Start()) {
    ASSERT_TRUE(framed.Send(opening));
  }
  // Half-close: FIN after the last frame, read side stays open.
  ASSERT_EQ(::shutdown(stream->fd(), SHUT_WR), 0);

  ResultFrame frame;
  bool got_result = false;
  while (framed.Receive(&incoming) ==
         net::FramedStream::RecvStatus::kMessage) {
    if (incoming.label == kResultLabel) {
      ASSERT_TRUE(DecodeResult(incoming, Ctx().universe, &frame));
      got_result = true;
      break;
    }
  }
  server.Stop();
  ASSERT_TRUE(got_result);
  ExpectMatchesInProcess("full-transfer", frame.result,
                         InProcessResult("full-transfer", replica,
                                         canonical));
  EXPECT_EQ(server.metrics().syncs_completed, 1u);
}

TEST(AsyncServerConformance, LargeResultSurvivesHalfCloseAndTinySendBuffer) {
  // Same half-closing client, but the server's per-connection SO_SNDBUF
  // is squeezed so the "@result" frame cannot fit in one kernel write:
  // the EOF and the final protocol frame arrive together, the result
  // flushes across many partial writes, and the connection must stay
  // open (kWritable-only) until the flush drains rather than truncating.
  const PointSet canonical = Canonical(4096);
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.shards = 1;
  server_options.so_sndbuf = 2048;  // kernel doubles this; still tiny
  AsyncSyncServer server(canonical, server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  const PointSet replica = DriftedReplica(canonical, 424242);
  const auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  net::FramedStream framed(stream.get());
  const auto reconciler =
      recon::MakeReconciler("full-transfer", Ctx(), Params());
  const std::unique_ptr<recon::PartySession> alice =
      reconciler->MakeAliceSession(replica);

  HelloFrame hello;
  hello.protocol = "full-transfer";
  ASSERT_TRUE(framed.Send(EncodeHello(hello)));
  transport::Message incoming;
  ASSERT_EQ(framed.Receive(&incoming),
            net::FramedStream::RecvStatus::kMessage);
  AcceptFrame accept;
  ASSERT_TRUE(DecodeAccept(incoming, &accept));
  for (transport::Message& opening : alice->Start()) {
    ASSERT_TRUE(framed.Send(opening));
  }
  ASSERT_EQ(::shutdown(stream->fd(), SHUT_WR), 0);

  ResultFrame frame;
  bool got_result = false;
  while (framed.Receive(&incoming) ==
         net::FramedStream::RecvStatus::kMessage) {
    if (incoming.label == kResultLabel) {
      ASSERT_TRUE(DecodeResult(incoming, Ctx().universe, &frame));
      got_result = true;
      break;
    }
  }
  server.Stop();
  ASSERT_TRUE(got_result);
  ExpectMatchesInProcess("full-transfer", frame.result,
                         InProcessResult("full-transfer", replica,
                                         canonical));
  EXPECT_EQ(server.metrics().syncs_completed, 1u);
}

TEST(AsyncServerIdle, MidSessionSilenceSurfacesAsTransportClosed) {
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.shards = 1;
  server_options.idle_timeout = std::chrono::milliseconds(100);
  AsyncSyncServer server(Canonical(32), server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  const auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  net::FramedStream framed(stream.get());
  HelloFrame hello;
  hello.protocol = "quadtree";
  ASSERT_TRUE(framed.Send(EncodeHello(hello)));
  transport::Message incoming;
  ASSERT_EQ(framed.Receive(&incoming),
            net::FramedStream::RecvStatus::kMessage);
  AcceptFrame accept;
  ASSERT_TRUE(DecodeAccept(incoming, &accept));

  // ... and then never send a protocol frame. The idle deadline must fail
  // the session as kTransportClosed: either the best-effort "@result"
  // carrying that error arrives, or the server just hangs up.
  SessionError observed = SessionError::kNone;
  for (;;) {
    const auto status = framed.Receive(&incoming);
    if (status != net::FramedStream::RecvStatus::kMessage) {
      observed = framed.error();
      break;
    }
    if (incoming.label == kResultLabel) {
      ResultFrame frame;
      ASSERT_TRUE(DecodeResult(incoming, Ctx().universe, &frame));
      EXPECT_FALSE(frame.result.success);
      observed = frame.result.error;
      break;
    }
    // Skip Bob's opening frames (none for quadtree, but stay robust).
  }
  EXPECT_EQ(observed, SessionError::kTransportClosed);
  server.Stop();

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.idle_timeouts, 1u);
  EXPECT_EQ(metrics.syncs_failed, 1u);
  EXPECT_EQ(metrics.active_sessions, 0u);
}

TEST(AsyncServerIdle, SilentHandshakeIsClosedWithoutAReject) {
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.shards = 1;
  server_options.idle_timeout = std::chrono::milliseconds(80);
  AsyncSyncServer server(Canonical(16), server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  const auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  uint8_t byte = 0;
  // The server hangs up on the mute connection; a blocking read observes
  // EOF (or ECONNRESET, also fine — the point is the close).
  EXPECT_LE(stream->Read(&byte, 1), 0);
  server.Stop();

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.connections_accepted, 1u);
  EXPECT_EQ(metrics.active_sessions, 0u);
  EXPECT_EQ(metrics.handshakes_rejected, 0u);
  EXPECT_EQ(metrics.idle_timeouts, 1u);
  EXPECT_EQ(metrics.syncs_completed + metrics.syncs_failed, 0u);
}

TEST(AsyncServerHandshake, UnknownProtocolRejectedWithProtocolList) {
  recon::ProtocolRegistry restricted;
  restricted.Register("full-transfer", "only offering",
                      [](const ProtocolContext& ctx, const ProtocolParams&) {
                        return recon::ProtocolRegistry::Global().Create(
                            "full-transfer", ctx, ProtocolParams{});
                      });

  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.registry = &restricted;
  server_options.shards = 1;
  AsyncSyncServer server(Canonical(32), server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  SyncClientOptions options;
  options.context = Ctx();
  const SyncClient client(options);
  const auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  const SyncOutcome outcome =
      client.Sync(stream.get(), "quadtree", Canonical(32));
  server.Stop();

  EXPECT_FALSE(outcome.handshake_ok);
  EXPECT_EQ(outcome.result.error, SessionError::kProtocolRejected);
  EXPECT_NE(outcome.reject_reason.find("unknown protocol"),
            std::string::npos);
  EXPECT_EQ(outcome.server_protocols,
            std::vector<std::string>{"full-transfer"});
  EXPECT_EQ(server.metrics().handshakes_rejected, 1u);
  EXPECT_EQ(server.metrics().active_sessions, 0u);
}

TEST(AsyncServerStop, StopWithSilentClientsDrainsDeterministically) {
  AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.shards = 2;
  AsyncSyncServer server(Canonical(16), server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  std::vector<std::unique_ptr<net::TcpStream>> silent;
  for (int i = 0; i < 5; ++i) {
    auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
    ASSERT_NE(stream, nullptr);
    silent.push_back(std::move(stream));
  }
  for (int spin = 0; spin < 400; ++spin) {
    if (server.metrics().connections_accepted == 5) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(server.metrics().connections_accepted, 5u);
  server.Stop();  // must not hang on the mute connections

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.active_sessions, 0u);
  EXPECT_EQ(metrics.syncs_completed, 0u);
}

}  // namespace
}  // namespace server
}  // namespace rsr
