#include "geometry/emd.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/hungarian.h"
#include "util/random.h"

namespace rsr {
namespace {

// Brute-force EMD by trying all permutations (n <= 7).
double BruteForceEmd(const PointSet& x, const PointSet& y, Metric metric) {
  const size_t n = x.size();
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = 1e300;
  do {
    double total = 0;
    for (size_t i = 0; i < n; ++i) total += Distance(x[i], y[perm[i]], metric);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

// Brute-force EMD_k by trying all subsets of size n-k on both sides.
double BruteForceEmdK(const PointSet& x, const PointSet& y, size_t k,
                      Metric metric) {
  const size_t n = x.size();
  const size_t keep = n - k;
  std::vector<char> select_x(n, 0), select_y(n, 0);
  std::fill(select_x.begin(), select_x.begin() + static_cast<long>(keep), 1);
  double best = 1e300;
  std::sort(select_x.begin(), select_x.end(), std::greater<char>());
  do {
    PointSet xs;
    for (size_t i = 0; i < n; ++i) {
      if (select_x[i]) xs.push_back(x[i]);
    }
    std::fill(select_y.begin(), select_y.end(), 0);
    std::fill(select_y.begin(), select_y.begin() + static_cast<long>(keep), 1);
    std::sort(select_y.begin(), select_y.end(), std::greater<char>());
    do {
      PointSet ys;
      for (size_t i = 0; i < n; ++i) {
        if (select_y[i]) ys.push_back(y[i]);
      }
      best = std::min(best, BruteForceEmd(xs, ys, metric));
    } while (std::prev_permutation(select_y.begin(), select_y.end()));
  } while (std::prev_permutation(select_x.begin(), select_x.end()));
  return best;
}

TEST(HungarianTest, TrivialSizes) {
  EXPECT_DOUBLE_EQ(SolveAssignment({}, 0).cost, 0.0);
  const AssignmentResult r = SolveAssignment({7.0}, 1);
  EXPECT_DOUBLE_EQ(r.cost, 7.0);
  EXPECT_EQ(r.row_to_col[0], 0);
}

TEST(HungarianTest, KnownSmallMatrix) {
  // Classic 3x3 instance; optimum is 5 (1+2+2 via anti-diagonal-ish).
  const std::vector<double> cost = {4, 1, 3,
                                    2, 0, 5,
                                    3, 2, 2};
  const AssignmentResult r = SolveAssignment(cost, 3);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);
  // Verify the assignment is a permutation achieving the cost.
  std::vector<char> used(3, 0);
  double total = 0;
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_GE(r.row_to_col[i], 0);
    ASSERT_LT(r.row_to_col[i], 3);
    EXPECT_FALSE(used[static_cast<size_t>(r.row_to_col[i])]);
    used[static_cast<size_t>(r.row_to_col[i])] = 1;
    total += cost[i * 3 + static_cast<size_t>(r.row_to_col[i])];
  }
  EXPECT_DOUBLE_EQ(total, r.cost);
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 2 + rng.Below(5);
    std::vector<double> cost(n * n);
    for (auto& c : cost) c = static_cast<double>(rng.Below(100));
    const AssignmentResult r = SolveAssignment(cost, n);

    // Brute force over permutations.
    std::vector<size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    double best = 1e300;
    do {
      double total = 0;
      for (size_t i = 0; i < n; ++i) total += cost[i * n + perm[i]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_DOUBLE_EQ(r.cost, best);
  }
}

TEST(EmdTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(ExactEmd({}, {}, Metric::kL2), 0.0);
  EXPECT_DOUBLE_EQ(ExactEmd({{1, 1}}, {{4, 5}}, Metric::kL2), 5.0);
}

TEST(EmdTest, IdenticalSetsHaveZeroEmd) {
  const PointSet x = {{1, 2}, {3, 4}, {5, 6}};
  EXPECT_DOUBLE_EQ(ExactEmd(x, x, Metric::kL1), 0.0);
  PointSet shuffled = {{5, 6}, {1, 2}, {3, 4}};
  EXPECT_DOUBLE_EQ(ExactEmd(x, shuffled, Metric::kL1), 0.0);
}

TEST(EmdTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t n = 2 + rng.Below(5);
    PointSet x, y;
    for (size_t i = 0; i < n; ++i) {
      x.push_back({rng.Uniform(0, 30), rng.Uniform(0, 30)});
      y.push_back({rng.Uniform(0, 30), rng.Uniform(0, 30)});
    }
    for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kLinf}) {
      EXPECT_NEAR(ExactEmd(x, y, metric), BruteForceEmd(x, y, metric), 1e-9);
    }
  }
}

TEST(EmdKTest, DegenerateCases) {
  const PointSet x = {{0, 0}, {10, 10}};
  const PointSet y = {{0, 1}, {90, 90}};
  // k = n removes everything.
  EXPECT_DOUBLE_EQ(ExactEmdK(x, y, 2, Metric::kL1), 0.0);
  // k = 0 is plain EMD.
  EXPECT_DOUBLE_EQ(ExactEmdK(x, y, 0, Metric::kL1),
                   ExactEmd(x, y, Metric::kL1));
}

TEST(EmdKTest, RemovesTheOutlierPair) {
  // One far outlier on each side; EMD_1 should only pay the near pair.
  const PointSet x = {{0, 0}, {1000, 1000}};
  const PointSet y = {{0, 1}, {-500, 300}};
  EXPECT_DOUBLE_EQ(ExactEmdK(x, y, 1, Metric::kL1), 1.0);
}

TEST(EmdKTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 3 + rng.Below(3);  // 3..5
    const size_t k = 1 + rng.Below(2);  // 1..2
    PointSet x, y;
    for (size_t i = 0; i < n; ++i) {
      x.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
      y.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
    }
    EXPECT_NEAR(ExactEmdK(x, y, k, Metric::kL1),
                BruteForceEmdK(x, y, k, Metric::kL1), 1e-9);
  }
}

TEST(EmdKTest, MonotoneNonIncreasingInK) {
  Rng rng(8);
  PointSet x, y;
  for (size_t i = 0; i < 8; ++i) {
    x.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
    y.push_back({rng.Uniform(0, 100), rng.Uniform(0, 100)});
  }
  double prev = ExactEmdK(x, y, 0, Metric::kL2);
  for (size_t k = 1; k <= 8; ++k) {
    const double cur = ExactEmdK(x, y, k, Metric::kL2);
    EXPECT_LE(cur, prev + 1e-9);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, 0.0);
}

TEST(GreedyEmdTest, UpperBoundsExact) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 2 + rng.Below(8);
    PointSet x, y;
    for (size_t i = 0; i < n; ++i) {
      x.push_back({rng.Uniform(0, 50), rng.Uniform(0, 50)});
      y.push_back({rng.Uniform(0, 50), rng.Uniform(0, 50)});
    }
    const double exact = ExactEmd(x, y, Metric::kL2);
    const double greedy = GreedyEmdUpperBound(x, y, Metric::kL2);
    EXPECT_GE(greedy, exact - 1e-9);
    // Greedy nearest-pair matching is a known 3-ish approximation in
    // practice; just sanity check it is not wildly off on small inputs.
    EXPECT_LE(greedy, 3.5 * exact + 1e-9);
  }
}

TEST(GreedyEmdTest, ExactOnDisjointClusters) {
  // Points pair up uniquely when clusters are far apart.
  const PointSet x = {{0, 0}, {100, 100}, {200, 0}};
  const PointSet y = {{1, 0}, {100, 101}, {199, 0}};
  EXPECT_DOUBLE_EQ(GreedyEmdUpperBound(x, y, Metric::kL1), 3.0);
  EXPECT_DOUBLE_EQ(ExactEmd(x, y, Metric::kL1), 3.0);
}

TEST(EmdAutoTest, SwitchesToGreedyAboveLimit) {
  Rng rng(10);
  PointSet x, y;
  for (size_t i = 0; i < 20; ++i) {
    x.push_back({rng.Uniform(0, 50), rng.Uniform(0, 50)});
    y.push_back({rng.Uniform(0, 50), rng.Uniform(0, 50)});
  }
  const double exact = EmdAuto(x, y, Metric::kL2, /*exact_limit=*/32);
  const double greedy = EmdAuto(x, y, Metric::kL2, /*exact_limit=*/4);
  EXPECT_DOUBLE_EQ(exact, ExactEmd(x, y, Metric::kL2));
  EXPECT_DOUBLE_EQ(greedy, GreedyEmdUpperBound(x, y, Metric::kL2));
  EXPECT_GE(greedy, exact - 1e-9);
}

}  // namespace
}  // namespace rsr
