#include "lshrecon/lsh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "geometry/metric.h"
#include "util/random.h"

namespace rsr {
namespace lshrecon {
namespace {

// Empirical collision probability of a family over its functions.
double CollisionRate(const MlshFamily& family, const Point& a,
                     const Point& b) {
  size_t collisions = 0;
  for (size_t i = 0; i < family.size(); ++i) {
    if (family.Eval(i, a) == family.Eval(i, b)) ++collisions;
  }
  return static_cast<double>(collisions) /
         static_cast<double>(family.size());
}

TEST(GridMlshTest, DeterministicAndSeedSensitive) {
  const Universe u = MakeUniverse(1 << 12, 2);
  GridMlsh f1(u, 64.0, 32, 1), f2(u, 64.0, 32, 1), f3(u, 64.0, 32, 2);
  const Point p = {100, 200};
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(f1.Eval(i, p), f2.Eval(i, p));
  }
  size_t diff = 0;
  for (size_t i = 0; i < 32; ++i) {
    if (f1.Eval(i, p) != f3.Eval(i, p)) ++diff;
  }
  EXPECT_GT(diff, 10u);
}

TEST(GridMlshTest, IdenticalPointsAlwaysCollide) {
  const Universe u = MakeUniverse(1 << 12, 3);
  GridMlsh f(u, 32.0, 64, 3);
  const Point p = {5, 6, 7};
  EXPECT_DOUBLE_EQ(CollisionRate(f, p, p), 1.0);
}

TEST(GridMlshTest, CollisionDecaysWithDistance) {
  const Universe u = MakeUniverse(1 << 14, 2);
  GridMlsh f(u, 256.0, 2000, 4);
  const Point base = {8000, 8000};
  const double near_rate = CollisionRate(f, base, {8004, 8000});
  const double mid_rate = CollisionRate(f, base, {8064, 8000});
  const double far_rate = CollisionRate(f, base, {8000 + 1024, 8000});
  EXPECT_GT(near_rate, mid_rate);
  EXPECT_GT(mid_rate, far_rate);
  // Theory for the shifted lattice: collision prob per axis is
  // max(0, 1 - dist/width). For dist=64, width=256: 0.75.
  EXPECT_NEAR(mid_rate, 0.75, 0.05);
  EXPECT_LT(far_rate, 0.01);
}

TEST(PStableMlshTest, CollisionDecaysWithL2Distance) {
  const Universe u = MakeUniverse(1 << 14, 4);
  PStableMlsh f(u, 64.0, 3000, 5);
  const Point base = {5000, 5000, 5000, 5000};
  const double near_rate = CollisionRate(f, base, {5002, 5000, 5000, 5000});
  const double mid_rate = CollisionRate(f, base, {5030, 5030, 5000, 5000});
  const double far_rate = CollisionRate(f, base, {5400, 5400, 5400, 5400});
  EXPECT_GT(near_rate, 0.9);
  EXPECT_GT(near_rate, mid_rate);
  EXPECT_GT(mid_rate, far_rate);
  EXPECT_LT(far_rate, 0.1);
}

TEST(PStableMlshTest, RotationInvarianceApprox) {
  // ℓ2 LSH depends (in expectation) only on the distance, not direction.
  const Universe u = MakeUniverse(1 << 14, 2);
  PStableMlsh f(u, 100.0, 4000, 6);
  const Point base = {8000, 8000};
  const double axis_rate = CollisionRate(f, base, {8100, 8000});
  const double diag_rate =
      CollisionRate(f, base, {8000 + 71, 8000 + 71});  // ~same L2 distance
  EXPECT_NEAR(axis_rate, diag_rate, 0.05);
}

TEST(BitSamplingMlshTest, HammingBehaviour) {
  const Universe u = MakeUniverse(2, 32);  // binary cube {0,1}^32
  BitSamplingMlsh f(u, 64.0, 4000, 7);
  Point a(32, 0), b(32, 0), c(32, 0);
  // b differs from a in 4 coords, c in 16.
  for (int i = 0; i < 4; ++i) b[static_cast<size_t>(i)] = 1;
  for (int i = 0; i < 16; ++i) c[static_cast<size_t>(i)] = 1;
  const double rate_b = CollisionRate(f, a, b);
  const double rate_c = CollisionRate(f, a, c);
  EXPECT_GT(rate_b, rate_c);
  // With padding w=64: collision prob = 1 - dist/64 (sampled coordinate
  // differs with prob dist/64).
  EXPECT_NEAR(rate_b, 1.0 - 4.0 / 64.0, 0.03);
  EXPECT_NEAR(rate_c, 1.0 - 16.0 / 64.0, 0.03);
}

TEST(BitSamplingMlshTest, PaddingReducesSensitivity) {
  const Universe u = MakeUniverse(2, 16);
  BitSamplingMlsh tight(u, 16.0, 3000, 8);
  BitSamplingMlsh padded(u, 128.0, 3000, 8);
  Point a(16, 0), b(16, 1);  // maximally distant
  EXPECT_LT(CollisionRate(tight, a, b), 0.05);
  // Padded family mostly samples the constant function -> high collision.
  EXPECT_GT(CollisionRate(padded, a, b), 0.8);
}

TEST(MakeMlshFamilyTest, FactoryDispatch) {
  const Universe u = MakeUniverse(1 << 10, 2);
  EXPECT_EQ(MakeMlshFamily(MlshKind::kGridL1, u, 32, 8, 1)->Name(),
            "grid-l1");
  EXPECT_EQ(MakeMlshFamily(MlshKind::kPStableL2, u, 32, 8, 1)->Name(),
            "pstable-l2");
  EXPECT_EQ(MakeMlshFamily(MlshKind::kBitSampling, u, 32, 8, 1)->Name(),
            "bitsample-hamming");
  EXPECT_EQ(MakeMlshFamily(MlshKind::kGridL1, u, 32, 8, 1)->size(), 8u);
}

// MLSH property (Definition 2.2 flavour): collision probability bounded
// between p^{c·dist} curves for nearby distances — verified empirically on
// the grid family at several distances.
class GridMlshDecaySweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(GridMlshDecaySweep, GeometricDecayBand) {
  const int64_t dist = GetParam();
  const double width = 512.0;
  const Universe u = MakeUniverse(1 << 14, 1);
  GridMlsh f(u, width, 4000, 11);
  const Point a = {4000};
  const Point b = {4000 + dist};
  const double rate = CollisionRate(f, a, b);
  const double exact = 1.0 - static_cast<double>(dist) / width;
  EXPECT_NEAR(rate, exact, 0.04);
  // MLSH band: e^{-2 dist/width} <= rate <= e^{-dist/width} for
  // dist <= 0.79 * width (Lemma 2.4 constants).
  if (static_cast<double>(dist) <= 0.79 * width) {
    EXPECT_GE(rate + 0.04,
              std::exp(-2.0 * static_cast<double>(dist) / width));
    EXPECT_LE(rate - 0.04, std::exp(-static_cast<double>(dist) / width));
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, GridMlshDecaySweep,
                         ::testing::Values(16, 64, 128, 256, 400));

}  // namespace
}  // namespace lshrecon
}  // namespace rsr
