// Property tests for EMD: it is a metric on equal-size multisets, invariant
// under permutation and translation, monotone under trimming, and the
// assignment engine is consistent across formulations.

#include <algorithm>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "geometry/hungarian.h"
#include "util/random.h"

namespace rsr {
namespace {

PointSet RandomSet(size_t n, int d, int64_t lo, int64_t hi, Rng* rng) {
  PointSet points;
  for (size_t i = 0; i < n; ++i) {
    Point p(static_cast<size_t>(d));
    for (auto& c : p) c = rng->Uniform(lo, hi);
    points.push_back(std::move(p));
  }
  return points;
}

class EmdMetricPropertySweep : public ::testing::TestWithParam<Metric> {};

TEST_P(EmdMetricPropertySweep, IsAMetricOnMultisets) {
  const Metric metric = GetParam();
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 2 + rng.Below(6);
    const int d = 1 + static_cast<int>(rng.Below(3));
    const PointSet x = RandomSet(n, d, 0, 40, &rng);
    const PointSet y = RandomSet(n, d, 0, 40, &rng);
    const PointSet z = RandomSet(n, d, 0, 40, &rng);
    const double xy = ExactEmd(x, y, metric);
    const double yx = ExactEmd(y, x, metric);
    const double xz = ExactEmd(x, z, metric);
    const double yz = ExactEmd(y, z, metric);
    EXPECT_NEAR(xy, yx, 1e-9);                 // symmetry
    EXPECT_GE(xy, 0.0);                        // non-negativity
    EXPECT_DOUBLE_EQ(ExactEmd(x, x, metric), 0.0);
    EXPECT_LE(xz, xy + yz + 1e-9);             // triangle inequality
  }
}

TEST_P(EmdMetricPropertySweep, PermutationInvariance) {
  const Metric metric = GetParam();
  Rng rng(8);
  const PointSet x = RandomSet(7, 2, 0, 100, &rng);
  PointSet y = RandomSet(7, 2, 0, 100, &rng);
  const double base = ExactEmd(x, y, metric);
  for (int shuffle = 0; shuffle < 5; ++shuffle) {
    rng.Shuffle(&y);
    EXPECT_NEAR(ExactEmd(x, y, metric), base, 1e-9);
  }
}

TEST_P(EmdMetricPropertySweep, TranslationInvariance) {
  const Metric metric = GetParam();
  Rng rng(9);
  const PointSet x = RandomSet(6, 3, 0, 50, &rng);
  const PointSet y = RandomSet(6, 3, 0, 50, &rng);
  const double base = ExactEmd(x, y, metric);
  PointSet xt = x, yt = y;
  for (auto& p : xt) {
    for (auto& c : p) c += 1000;
  }
  for (auto& p : yt) {
    for (auto& c : p) c += 1000;
  }
  EXPECT_NEAR(ExactEmd(xt, yt, metric), base, 1e-9);
}

TEST_P(EmdMetricPropertySweep, SingleOutlierCostIsItsDistance) {
  // If the sets agree except one point, EMD equals the distance between
  // the disagreeing points (matching everything else to itself is free).
  const Metric metric = GetParam();
  Rng rng(10);
  PointSet x = RandomSet(9, 2, 0, 30, &rng);
  PointSet y = x;
  y[4] = {200, 300};
  EXPECT_NEAR(ExactEmd(x, y, metric), Distance(x[4], y[4], metric), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Metrics, EmdMetricPropertySweep,
                         ::testing::Values(Metric::kL1, Metric::kL2,
                                           Metric::kLinf, Metric::kHamming),
                         [](const auto& suite_info) {
                           return MetricName(suite_info.param);
                         });

TEST(EmdKPropertyTest, SandwichBounds) {
  // EMD_k <= EMD_{k-1} <= ... <= EMD_0 = EMD, and all non-negative.
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    const PointSet x = RandomSet(7, 2, 0, 200, &rng);
    const PointSet y = RandomSet(7, 2, 0, 200, &rng);
    double prev = ExactEmd(x, y, Metric::kL1);
    for (size_t k = 1; k <= 7; ++k) {
      const double cur = ExactEmdK(x, y, k, Metric::kL1);
      EXPECT_LE(cur, prev + 1e-9);
      EXPECT_GE(cur, 0.0);
      prev = cur;
    }
  }
}

TEST(EmdKPropertyTest, RemovingTheWorstPairNeverHelpsMoreThanItsCost) {
  // EMD - EMD_1 is at most the largest single matched-pair distance.
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    const PointSet x = RandomSet(6, 2, 0, 100, &rng);
    const PointSet y = RandomSet(6, 2, 0, 100, &rng);
    const double full = ExactEmd(x, y, Metric::kL2);
    const double trimmed = ExactEmdK(x, y, 1, Metric::kL2);
    double max_pair = 0.0;
    for (const Point& a : x) {
      for (const Point& b : y) {
        max_pair = std::max(max_pair, Distance(a, b, Metric::kL2));
      }
    }
    EXPECT_LE(full - trimmed, max_pair + 1e-9);
  }
}

TEST(HungarianPropertyTest, PermutedCostMatrixPermutesAssignment) {
  // Swapping two columns of the cost matrix swaps them in the solution.
  Rng rng(13);
  const size_t n = 6;
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = static_cast<double>(rng.Below(1000));
  const AssignmentResult base = SolveAssignment(cost, n);

  std::vector<double> swapped = cost;
  for (size_t i = 0; i < n; ++i) std::swap(swapped[i * n + 0], swapped[i * n + 1]);
  const AssignmentResult after = SolveAssignment(swapped, n);
  EXPECT_NEAR(base.cost, after.cost, 1e-9);
}

TEST(HungarianPropertyTest, AddingConstantToARowShiftsCostByConstant) {
  Rng rng(14);
  const size_t n = 5;
  std::vector<double> cost(n * n);
  for (auto& c : cost) c = static_cast<double>(rng.Below(100));
  const double base = SolveAssignment(cost, n).cost;
  for (size_t j = 0; j < n; ++j) cost[2 * n + j] += 17.0;
  EXPECT_NEAR(SolveAssignment(cost, n).cost, base + 17.0, 1e-9);
}

TEST(GreedyEmdPropertyTest, AgreesWithExactOnSeparatedInstances) {
  // When the optimal matching is unique and locally greedy (clusters far
  // apart relative to intra-cluster noise), greedy == exact.
  Rng rng(15);
  for (int trial = 0; trial < 10; ++trial) {
    PointSet x, y;
    for (int c = 0; c < 5; ++c) {
      const int64_t cx = 10000 * (c + 1);
      x.push_back({cx + rng.Uniform(-3, 3), cx + rng.Uniform(-3, 3)});
      y.push_back({cx + rng.Uniform(-3, 3), cx + rng.Uniform(-3, 3)});
    }
    EXPECT_NEAR(GreedyEmdUpperBound(x, y, Metric::kL2),
                ExactEmd(x, y, Metric::kL2), 1e-9);
  }
}

}  // namespace
}  // namespace rsr
