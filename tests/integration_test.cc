// End-to-end integration tests: every protocol on the shared scenarios,
// cross-protocol invariants, and the headline robustness comparison.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "lshrecon/mlsh_recon.h"
#include "recon/evaluate.h"
#include "recon/exact_recon.h"
#include "recon/full_transfer.h"
#include "recon/quadtree_recon.h"
#include "recon/single_grid.h"
#include "workload/scenario.h"

namespace rsr {
namespace {

using recon::AdaptiveQuadtreeReconciler;
using recon::EvaluateOptions;
using recon::EvaluateProtocol;
using recon::Evaluation;
using recon::ExactReconciler;
using recon::FullTransferReconciler;
using recon::ProtocolContext;
using recon::QuadtreeParams;
using recon::QuadtreeReconciler;
using recon::Reconciler;
using workload::ReplicaPair;
using workload::Scenario;

std::vector<std::unique_ptr<Reconciler>> AllProtocols(
    const ProtocolContext& ctx, size_t k) {
  QuadtreeParams qp;
  qp.k = k;
  lshrecon::MlshParams mp;
  mp.k = k;
  std::vector<std::unique_ptr<Reconciler>> protocols;
  protocols.push_back(std::make_unique<FullTransferReconciler>(ctx));
  protocols.push_back(
      std::make_unique<ExactReconciler>(ctx, recon::ExactReconParams{}));
  protocols.push_back(std::make_unique<QuadtreeReconciler>(ctx, qp));
  protocols.push_back(std::make_unique<AdaptiveQuadtreeReconciler>(ctx, qp));
  protocols.push_back(std::make_unique<lshrecon::MlshReconciler>(ctx, mp));
  return protocols;
}

TEST(IntegrationTest, AllProtocolsImproveOrPreserveEmdOnStandardScenario) {
  const size_t n = 160, k = 6;
  const Scenario scenario = workload::StandardScenario(n, 2, 1 << 16, k, 2.0);
  const ReplicaPair pair = scenario.Materialize();
  ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 99;

  EvaluateOptions options;
  options.metric = scenario.metric;
  options.k = k;

  for (const auto& protocol : AllProtocols(ctx, k)) {
    const Evaluation eval =
        EvaluateProtocol(*protocol, pair.alice, pair.bob, options);
    EXPECT_TRUE(eval.success) << protocol->Name();
    // No protocol should leave Bob further from Alice than he started
    // (modulo small repair noise: allow 10%).
    EXPECT_LE(eval.emd_after, eval.emd_before * 1.1 + 1.0)
        << protocol->Name();
  }
}

TEST(IntegrationTest, RobustBeatsExactOnCommunicationUnderNoise) {
  // The headline result: with noise, exact reconciliation transfers ~2n
  // full-precision points while the quadtree transfers O(k log Δ) cells.
  const size_t n = 512, k = 8;
  const Scenario scenario = workload::StandardScenario(n, 2, 1 << 20, k, 3.0);
  const ReplicaPair pair = scenario.Materialize();
  ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 5;

  EvaluateOptions options;
  options.measure_quality = false;

  QuadtreeParams qp;
  qp.k = k;
  const Evaluation quadtree = EvaluateProtocol(
      QuadtreeReconciler(ctx, qp), pair.alice, pair.bob, options);
  const Evaluation adaptive = EvaluateProtocol(
      AdaptiveQuadtreeReconciler(ctx, qp), pair.alice, pair.bob, options);
  const Evaluation exact = EvaluateProtocol(
      ExactReconciler(ctx, recon::ExactReconParams{}), pair.alice, pair.bob,
      options);

  ASSERT_TRUE(quadtree.success);
  ASSERT_TRUE(adaptive.success);
  ASSERT_TRUE(exact.success);
  EXPECT_LT(quadtree.comm_bits, exact.comm_bits);
  EXPECT_LT(adaptive.comm_bits, exact.comm_bits);
}

TEST(IntegrationTest, AdaptiveSavesBitsOverOneShotForLargeDelta) {
  const size_t n = 256, k = 16;
  const Scenario scenario =
      workload::StandardScenario(n, 2, int64_t{1} << 24, k, 2.0);
  const ReplicaPair pair = scenario.Materialize();
  ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 6;
  EvaluateOptions options;
  options.measure_quality = false;

  QuadtreeParams qp;
  qp.k = k;
  const Evaluation oneshot = EvaluateProtocol(
      QuadtreeReconciler(ctx, qp), pair.alice, pair.bob, options);
  const Evaluation adaptive = EvaluateProtocol(
      AdaptiveQuadtreeReconciler(ctx, qp), pair.alice, pair.bob, options);
  ASSERT_TRUE(oneshot.success);
  ASSERT_TRUE(adaptive.success);
  EXPECT_LT(adaptive.comm_bits, oneshot.comm_bits);
  EXPECT_GT(adaptive.rounds, oneshot.rounds);
}

TEST(IntegrationTest, SensorScenarioEndToEnd) {
  const size_t n = 200, k = 8;
  const Scenario scenario = workload::SensorScenario(n, k, 4.0);
  const ReplicaPair pair = scenario.Materialize();
  ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 7;
  QuadtreeParams qp;
  qp.k = k;
  EvaluateOptions options;
  options.metric = scenario.metric;
  options.k = k;
  const Evaluation eval = EvaluateProtocol(QuadtreeReconciler(ctx, qp),
                                           pair.alice, pair.bob, options);
  ASSERT_TRUE(eval.success);
  EXPECT_LT(eval.emd_after, eval.emd_before);
  // Communication should be a small fraction of full transfer
  // (n * d * 20 bits = 8000 per... n=200 d=2 log=20 -> 8000 bits).
  const Evaluation full = EvaluateProtocol(FullTransferReconciler(ctx),
                                           pair.alice, pair.bob, options);
  EXPECT_DOUBLE_EQ(full.emd_after, 0.0);
}

TEST(IntegrationTest, DeterministicAcrossRuns) {
  const Scenario scenario = workload::StandardScenario(96, 2, 1 << 12, 4, 1.0);
  const ReplicaPair pair = scenario.Materialize();
  ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 11;
  QuadtreeParams qp;
  qp.k = 4;
  QuadtreeReconciler protocol(ctx, qp);
  transport::Channel c1, c2;
  const auto r1 = protocol.Run(pair.alice, pair.bob, &c1);
  const auto r2 = protocol.Run(pair.alice, pair.bob, &c2);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.chosen_level, r2.chosen_level);
  EXPECT_EQ(r1.bob_final, r2.bob_final);
  EXPECT_EQ(c1.stats().total_bits, c2.stats().total_bits);
}

TEST(IntegrationTest, NoiseSweepShapesMatchPaperClaim) {
  // As noise grows (k fixed), exact-recon bits grow toward full-transfer
  // scale while quadtree bits stay flat.
  const size_t n = 512, k = 4;
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 16, 2);
  ctx.seed = 13;
  EvaluateOptions options;
  options.measure_quality = false;
  QuadtreeParams qp;
  qp.k = k;

  size_t exact_low = 0, exact_high = 0, qt_low = 0, qt_high = 0;
  for (double noise : {0.0, 8.0}) {
    const Scenario scenario =
        workload::StandardScenario(n, 2, 1 << 16, k, noise, /*seed=*/17);
    const ReplicaPair pair = scenario.Materialize();
    const Evaluation exact = EvaluateProtocol(
        ExactReconciler(ctx, recon::ExactReconParams{}), pair.alice,
        pair.bob, options);
    const Evaluation quadtree = EvaluateProtocol(
        QuadtreeReconciler(ctx, qp), pair.alice, pair.bob, options);
    ASSERT_TRUE(exact.success);
    ASSERT_TRUE(quadtree.success);
    if (noise == 0.0) {
      exact_low = exact.comm_bits;
      qt_low = quadtree.comm_bits;
    } else {
      exact_high = exact.comm_bits;
      qt_high = quadtree.comm_bits;
    }
  }
  EXPECT_GT(exact_high, exact_low * 3);  // exact blows up
  EXPECT_EQ(qt_high, qt_low);            // quadtree is noise-oblivious
}

}  // namespace
}  // namespace rsr
