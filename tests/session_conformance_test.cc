// Protocol-conformance suite for the session API.
//
// For every protocol in the registry and every named workload scenario:
// drive the two endpoint sessions by hand (an independent pump, not
// recon::DrivePair) and assert the transcript is bit-for-bit identical to
// the driver-loop run (`Reconciler::Run`), and that the results match
// field by field. Also pins each protocol's documented round count.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "recon/driver.h"
#include "recon/registry.h"
#include "recon/session.h"
#include "workload/scenario.h"

namespace rsr {
namespace recon {
namespace {

using workload::ReplicaPair;
using workload::Scenario;

struct NamedInstance {
  std::string scenario;
  Universe universe;
  ReplicaPair pair;
};

std::vector<NamedInstance> Instances() {
  std::vector<NamedInstance> instances;
  {
    const Scenario s =
        workload::StandardScenario(160, 2, 1 << 16, 6, /*noise=*/2.0);
    instances.push_back({"standard", s.universe, s.Materialize()});
  }
  {
    const Scenario s = workload::SensorScenario(144, 8, /*noise=*/4.0);
    instances.push_back({"sensor", s.universe, s.Materialize()});
  }
  {
    const Scenario s = workload::HighDimScenario(128, 8, 6, /*noise=*/1.0);
    instances.push_back({"highdim", s.universe, s.Materialize()});
  }
  return instances;
}

// Hand-written session pump, deliberately independent of recon::DrivePair:
// opening sends, then alternate deliveries (Bob's inbox first).
ReconResult PumpByHand(const Reconciler& protocol, const PointSet& alice,
                       const PointSet& bob, transport::Channel* channel) {
  using transport::Direction;
  std::unique_ptr<PartySession> a = protocol.MakeAliceSession(alice);
  std::unique_ptr<PartySession> b = protocol.MakeBobSession(bob);
  for (auto& m : a->Start()) channel->Send(Direction::kAliceToBob, std::move(m));
  for (auto& m : b->Start()) channel->Send(Direction::kBobToAlice, std::move(m));
  int guard = 0;
  while (!b->IsDone() && guard++ < 1000) {
    bool moved = false;
    while (!b->IsDone() && channel->HasPending(Direction::kAliceToBob)) {
      auto msg = channel->Receive(Direction::kAliceToBob);
      for (auto& m : b->OnMessage(std::move(*msg))) {
        channel->Send(Direction::kBobToAlice, std::move(m));
      }
      moved = true;
    }
    while (!a->IsDone() && channel->HasPending(Direction::kBobToAlice)) {
      auto msg = channel->Receive(Direction::kBobToAlice);
      for (auto& m : a->OnMessage(std::move(*msg))) {
        channel->Send(Direction::kAliceToBob, std::move(m));
      }
      moved = true;
    }
    if (!moved) break;
  }
  return b->TakeResult();
}

void ExpectSameTranscript(const transport::Channel& x,
                          const transport::Channel& y,
                          const std::string& what) {
  EXPECT_EQ(x.stats().total_bits, y.stats().total_bits) << what;
  EXPECT_EQ(x.stats().alice_to_bob_bits, y.stats().alice_to_bob_bits) << what;
  EXPECT_EQ(x.stats().bob_to_alice_bits, y.stats().bob_to_alice_bits) << what;
  EXPECT_EQ(x.stats().message_count, y.stats().message_count) << what;
  EXPECT_EQ(x.stats().rounds, y.stats().rounds) << what;
  ASSERT_EQ(x.transcript().size(), y.transcript().size()) << what;
  for (size_t i = 0; i < x.transcript().size(); ++i) {
    EXPECT_EQ(x.transcript()[i].direction, y.transcript()[i].direction)
        << what << " entry " << i;
    EXPECT_EQ(x.transcript()[i].label, y.transcript()[i].label)
        << what << " entry " << i;
    EXPECT_EQ(x.transcript()[i].bits, y.transcript()[i].bits)
        << what << " entry " << i;
  }
}

TEST(SessionConformanceTest, DriverMatchesHandPumpedSessionsEverywhere) {
  ProtocolParams params;
  params.k = 8;
  for (const NamedInstance& instance : Instances()) {
    ProtocolContext ctx;
    ctx.universe = instance.universe;
    ctx.seed = 71;
    for (const std::string& name : ProtocolRegistry::Global().Names()) {
      const std::string what = name + " on " + instance.scenario;
      const std::unique_ptr<Reconciler> protocol =
          MakeReconciler(name, ctx, params);
      ASSERT_NE(protocol, nullptr) << what;

      transport::Channel run_channel, pump_channel;
      const ReconResult via_run = protocol->Run(
          instance.pair.alice, instance.pair.bob, &run_channel);
      const ReconResult via_pump = PumpByHand(
          *protocol, instance.pair.alice, instance.pair.bob, &pump_channel);

      ExpectSameTranscript(run_channel, pump_channel, what);
      EXPECT_EQ(via_run.success, via_pump.success) << what;
      EXPECT_EQ(via_run.bob_final, via_pump.bob_final) << what;
      EXPECT_EQ(via_run.chosen_level, via_pump.chosen_level) << what;
      EXPECT_EQ(via_run.decoded_entries, via_pump.decoded_entries) << what;
      EXPECT_EQ(via_run.attempts, via_pump.attempts) << what;
      EXPECT_EQ(via_run.transmitted, via_pump.transmitted) << what;
      EXPECT_EQ(via_run.error, via_pump.error) << what;
    }
  }
}

TEST(SessionConformanceTest, RoundCountsMatchDocumentation) {
  // One-shot protocols: 1 round. Adaptive quadtree: 1 + 2 per attempt
  // (3 messages / 3 rounds when the first IBLT decodes). Exact: 2 per
  // attempt. Gap: 1 + 2 per attempt (3 on the no-retry path).
  const Scenario s =
      workload::StandardScenario(160, 2, 1 << 16, 6, /*noise=*/2.0);
  const ReplicaPair pair = s.Materialize();
  ProtocolContext ctx;
  ctx.universe = s.universe;
  ctx.seed = 71;
  ProtocolParams params;
  params.k = 8;

  auto rounds_of = [&](const std::string& name, ReconResult* result) {
    const std::unique_ptr<Reconciler> protocol =
        MakeReconciler(name, ctx, params);
    transport::Channel channel;
    *result = protocol->Run(pair.alice, pair.bob, &channel);
    return channel.stats().rounds;
  };

  ReconResult r;
  for (const char* one_shot :
       {"full-transfer", "quadtree", "single-grid", "mlsh-riblt",
        "riblt-oneshot"}) {
    EXPECT_EQ(rounds_of(one_shot, &r), 1u) << one_shot;
  }

  size_t rounds = rounds_of("quadtree-adaptive", &r);
  EXPECT_EQ(rounds, 1 + 2 * r.attempts);
  EXPECT_TRUE(r.success);

  rounds = rounds_of("exact-iblt", &r);
  EXPECT_EQ(rounds, 2 * r.attempts);

  rounds = rounds_of("gap-lattice", &r);
  EXPECT_EQ(rounds, 1 + 2 * r.attempts);
  EXPECT_TRUE(r.success);
}

TEST(SessionConformanceTest, AdaptiveQuadtreeIsThreeRoundsWhenFirstDecodes) {
  // The documented happy path: strata probes (A->B), level request (B->A),
  // level IBLT (A->B) — 3 messages, 3 rounds. Low noise and a generous
  // budget make the first attempt decode.
  const Scenario s =
      workload::StandardScenario(160, 2, 1 << 16, 4, /*noise=*/0.0);
  const ReplicaPair pair = s.Materialize();
  ProtocolContext ctx;
  ctx.universe = s.universe;
  ctx.seed = 71;
  ProtocolParams params;
  params.k = 16;
  const std::unique_ptr<Reconciler> protocol =
      MakeReconciler("quadtree-adaptive", ctx, params);
  transport::Channel channel;
  const ReconResult result =
      protocol->Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_EQ(channel.stats().message_count, 3u);
  EXPECT_EQ(channel.stats().rounds, 3u);
}

TEST(SessionConformanceTest, MalformedMessageSurfacesErrorInsteadOfAbort) {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 3;
  ProtocolParams params;
  const std::unique_ptr<Reconciler> protocol =
      MakeReconciler("full-transfer", ctx, params);
  std::unique_ptr<PartySession> bob =
      protocol->MakeBobSession({{1, 2}, {3, 4}});
  (void)bob->Start();
  // A truncated payload: varint count says 100 points, none follow.
  BitWriter w;
  w.WriteVarint(100);
  auto replies =
      bob->OnMessage(transport::MakeMessage("full-transfer", std::move(w)));
  EXPECT_TRUE(replies.empty());
  EXPECT_TRUE(bob->IsDone());
  const ReconResult result = bob->TakeResult();
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.error, SessionError::kMalformedMessage);
  // Bob keeps his own set on failure.
  EXPECT_EQ(result.bob_final.size(), 2u);
}

TEST(SessionConformanceTest, UnexpectedMessageSurfacesError) {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 4;
  ProtocolParams params;
  const std::unique_ptr<Reconciler> protocol =
      MakeReconciler("quadtree", ctx, params);
  std::unique_ptr<PartySession> alice =
      protocol->MakeAliceSession({{1, 2}, {3, 4}});
  (void)alice->Start();  // one-shot Alice is done after Start
  EXPECT_TRUE(alice->IsDone());
  BitWriter w;
  w.WriteVarint(1);
  (void)alice->OnMessage(transport::MakeMessage("stray", std::move(w)));
  const ReconResult result = alice->TakeResult();
  EXPECT_EQ(result.error, SessionError::kUnexpectedMessage);
}

TEST(SessionConformanceTest, StalledDriveReportsError) {
  // Pair a quadtree-adaptive Bob with a one-shot quadtree Alice: Bob's
  // level request is never answered, so the drive stalls instead of
  // deadlocking or crashing.
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 5;
  ProtocolParams params;
  const std::unique_ptr<Reconciler> adaptive =
      MakeReconciler("quadtree-adaptive", ctx, params);
  const std::unique_ptr<Reconciler> oneshot =
      MakeReconciler("quadtree", ctx, params);
  const PointSet points = {{1, 2}, {3, 4}, {9, 9}};
  std::unique_ptr<PartySession> alice = oneshot->MakeAliceSession(points);
  std::unique_ptr<PartySession> bob = adaptive->MakeBobSession(points);
  transport::Channel channel;
  const ReconResult result = DrivePair(alice.get(), bob.get(), &channel);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.error, SessionError::kNone);
}

}  // namespace
}  // namespace recon
}  // namespace rsr
