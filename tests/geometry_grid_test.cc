#include "geometry/grid.h"

#include <gtest/gtest.h>

#include "geometry/metric.h"
#include "util/random.h"

namespace rsr {
namespace {

TEST(ShiftedGridTest, BasicsAndDeterminism) {
  const Universe u = MakeUniverse(1 << 10, 2);
  ShiftedGrid g1(u, 5), g2(u, 5), g3(u, 6);
  EXPECT_EQ(g1.max_level(), 10);
  EXPECT_EQ(g1.shift(), g2.shift());
  EXPECT_NE(g1.shift(), g3.shift());  // overwhelmingly likely
  for (auto s : g1.shift()) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, int64_t{1} << 10);
  }
}

TEST(ShiftedGridTest, CellSide) {
  const Universe u = MakeUniverse(256, 1);
  ShiftedGrid g(u, 1);
  EXPECT_EQ(g.CellSide(0), 1);
  EXPECT_EQ(g.CellSide(3), 8);
  EXPECT_EQ(g.CellSide(8), 256);
}

TEST(ShiftedGridTest, LevelZeroSeparatesPoints) {
  const Universe u = MakeUniverse(1 << 8, 2);
  ShiftedGrid g(u, 7);
  // At level 0 every distinct point has a distinct cell.
  EXPECT_NE(g.CellKeyOf({1, 2}, 0), g.CellKeyOf({1, 3}, 0));
  EXPECT_EQ(g.CellKeyOf({1, 2}, 0), g.CellKeyOf({1, 2}, 0));
}

TEST(ShiftedGridTest, CellsNestAcrossLevels) {
  const Universe u = MakeUniverse(1 << 12, 3);
  ShiftedGrid g(u, 11);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Point p(3);
    for (auto& c : p) c = rng.Uniform(0, (1 << 12) - 1);
    for (int level = 0; level < g.max_level(); ++level) {
      const Cell fine = g.CellOf(p, level);
      const Cell coarse = g.CellOf(p, level + 1);
      EXPECT_EQ(g.ParentCell(fine), coarse);
    }
  }
}

TEST(ShiftedGridTest, CellSharingIsMonotoneAcrossLevels) {
  // Nesting implies: once two points share a cell at some level, they share
  // cells at every coarser level.
  const Universe u = MakeUniverse(1 << 16, 2);
  const Point a = {1000, 2000};
  const Point b = {1001, 2001};  // L1 distance 2
  for (uint64_t seed = 0; seed < 100; ++seed) {
    ShiftedGrid g(u, seed);
    bool shared = false;
    for (int level = 0; level <= g.max_level(); ++level) {
      const bool same = g.CellOf(a, level) == g.CellOf(b, level);
      if (shared) {
        EXPECT_TRUE(same);
      }
      shared |= same;
    }
  }
}

TEST(ShiftedGridTest, NearbyPointsAlmostAlwaysShareCoarseCells) {
  // Distance-2 points are split by a side-2^14 grid with probability
  // ~ 2 * 2/2^14 per axis pair; over 500 seeds expect nearly all shared.
  const Universe u = MakeUniverse(1 << 16, 2);
  const Point a = {1000, 2000};
  const Point b = {1001, 2001};
  int shared = 0;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    ShiftedGrid g(u, seed);
    if (g.CellOf(a, 14) == g.CellOf(b, 14)) ++shared;
  }
  EXPECT_GE(shared, 495);
}

TEST(ShiftedGridTest, CollisionProbabilityScalesWithDistance) {
  // The random-shift property: points at distance r are separated at level
  // ℓ with probability ≈ min(1, r / 2^ℓ) per axis. Measure over seeds.
  const Universe u = MakeUniverse(1 << 12, 1);
  const Point a = {1000};
  const Point b = {1000 + 64};  // r = 64
  const int level = 9;          // side 512; expected split prob = 64/512
  int split = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    ShiftedGrid g(u, static_cast<uint64_t>(t));
    if (g.CellOf(a, level) != g.CellOf(b, level)) ++split;
  }
  EXPECT_NEAR(static_cast<double>(split) / trials, 64.0 / 512.0, 0.02);
}

TEST(ShiftedGridTest, RepresentativeIsInUniverseAndClose) {
  const Universe u = MakeUniverse(1 << 10, 3);
  ShiftedGrid g(u, 17);
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    Point p(3);
    for (auto& c : p) c = rng.Uniform(0, (1 << 10) - 1);
    for (int level = 0; level <= g.max_level(); ++level) {
      const Cell cell = g.CellOf(p, level);
      const Point rep = g.CellRepresentative(cell, level);
      EXPECT_TRUE(u.Contains(rep));
      // The representative lies within one cell diameter of the point.
      const double bound =
          CellDiameter(u.d, static_cast<double>(g.CellSide(level)),
                       Metric::kLinf);
      EXPECT_LE(Distance(p, rep, Metric::kLinf), bound);
    }
  }
}

TEST(ShiftedGridTest, RepresentativeOfLevelZeroIsThePoint) {
  const Universe u = MakeUniverse(1 << 10, 2);
  ShiftedGrid g(u, 23);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const Point p = {rng.Uniform(0, 1023), rng.Uniform(0, 1023)};
    EXPECT_EQ(g.CellRepresentative(g.CellOf(p, 0), 0), p);
  }
}

TEST(ShiftedGridTest, CellPackRoundTrip) {
  const Universe u = MakeUniverse(1 << 10, 2);
  ShiftedGrid g(u, 29);
  Rng rng(6);
  for (int level = 0; level <= g.max_level(); ++level) {
    BitWriter w;
    std::vector<Cell> cells;
    for (int i = 0; i < 30; ++i) {
      const Point p = {rng.Uniform(0, 1023), rng.Uniform(0, 1023)};
      Cell c = g.CellOf(p, level);
      g.PackCell(c, level, &w);
      cells.push_back(std::move(c));
    }
    EXPECT_EQ(w.bit_count(),
              cells.size() * static_cast<size_t>(g.CellBits(level)));
    BitReader r(w.bytes());
    for (const Cell& expected : cells) {
      Cell c;
      ASSERT_TRUE(g.UnpackCell(level, &r, &c));
      ASSERT_EQ(c, expected);
    }
  }
}

TEST(ShiftedGridTest, CellKeyDependsOnLevelAndCell) {
  const Universe u = MakeUniverse(1 << 8, 2);
  ShiftedGrid g(u, 31);
  const Cell c1 = {3, 4};
  const Cell c2 = {3, 5};
  EXPECT_NE(g.CellKey(c1, 2), g.CellKey(c2, 2));
  EXPECT_NE(g.CellKey(c1, 2), g.CellKey(c1, 3));
}

TEST(BuildCellHistogramTest, CountsAndKeys) {
  const Universe u = MakeUniverse(1 << 8, 2);
  ShiftedGrid g(u, 37);
  const PointSet points = {{10, 10}, {10, 10}, {10, 11}, {200, 200}};
  // Level 0: {10,10} twice, the others once each.
  auto hist0 = BuildCellHistogram(g, points, 0);
  EXPECT_EQ(hist0.size(), 3u);
  int64_t total = 0;
  for (const auto& [key, cc] : hist0) {
    (void)key;
    total += cc.count;
    EXPECT_EQ(g.CellKey(cc.cell, 0), key);
  }
  EXPECT_EQ(total, 4);

  // At the coarsest level everything collapses into a handful of cells.
  auto hist_top = BuildCellHistogram(g, points, g.max_level());
  int64_t total_top = 0;
  for (const auto& [key, cc] : hist_top) {
    (void)key;
    total_top += cc.count;
  }
  EXPECT_EQ(total_top, 4);
  EXPECT_LE(hist_top.size(), 4u);
}

TEST(BuildCellHistogramTest, EmptyInput) {
  const Universe u = MakeUniverse(16, 1);
  ShiftedGrid g(u, 41);
  EXPECT_TRUE(BuildCellHistogram(g, {}, 2).empty());
}

TEST(ShiftedGridTest, DegenerateUniverseDeltaOne) {
  const Universe u = MakeUniverse(1, 2);
  ShiftedGrid g(u, 43);
  EXPECT_EQ(g.max_level(), 0);
  const Point p = {0, 0};
  EXPECT_EQ(g.CellRepresentative(g.CellOf(p, 0), 0), p);
}

}  // namespace
}  // namespace rsr
