#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace rsr {
namespace {

TEST(SplitMix64Test, DeterministicAndAdvances) {
  uint64_t s1 = 42, s2 = 42;
  const uint64_t a = SplitMix64(&s1);
  const uint64_t b = SplitMix64(&s2);
  EXPECT_EQ(a, b);
  EXPECT_NE(s1, 42u);
  EXPECT_NE(SplitMix64(&s1), a);  // stream advances
}

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Below(1), 0u);
}

TEST(RngTest, UniformInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(8);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(9);
  const int trials = 50000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < trials; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / trials, 1.0, 0.05);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(10);
  const int trials = 50000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) sum += rng.Gaussian(5.0, 2.0);
  EXPECT_NEAR(sum / trials, 5.0, 0.1);
}

TEST(RngTest, GeometricMean) {
  Rng rng(11);
  const double p = 0.25;
  const int trials = 30000;
  double sum = 0;
  for (int i = 0; i < trials; ++i) {
    sum += static_cast<double>(rng.Geometric(p));
  }
  // Mean of failures-before-success geometric is (1-p)/p = 3.
  EXPECT_NEAR(sum / trials, 3.0, 0.15);
}

TEST(RngTest, GeometricPOneIsZero) {
  Rng rng(12);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.Geometric(1.0), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleUniformityOfFirstElement) {
  // Over many shuffles of {0,1,2,3}, element 0 should land in each slot
  // about a quarter of the time.
  Rng rng(14);
  int slot_counts[4] = {0, 0, 0, 0};
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v = {0, 1, 2, 3};
    rng.Shuffle(&v);
    for (int i = 0; i < 4; ++i) {
      if (v[static_cast<size_t>(i)] == 0) ++slot_counts[i];
    }
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(slot_counts[i]) / trials, 0.25, 0.02);
  }
}

TEST(RngTest, ForkIndependence) {
  Rng parent(15);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  Rng a2 = parent.Fork(1);
  EXPECT_EQ(a.Next64(), a2.Next64());  // same label -> same stream
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkDoesNotAdvanceParent) {
  Rng p1(16), p2(16);
  (void)p1.Fork(9);
  EXPECT_EQ(p1.Next64(), p2.Next64());
}

// Parameterized distribution sweep: Below(bound) should be roughly uniform
// across a few representative bounds.
class RngUniformitySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RngUniformitySweep, BelowIsRoughlyUniform) {
  const uint64_t bound = GetParam();
  Rng rng(100 + bound);
  const int trials = 30000;
  std::vector<int> buckets(8, 0);
  for (int i = 0; i < trials; ++i) {
    const uint64_t v = rng.Below(bound);
    ++buckets[static_cast<size_t>(8 * v / bound)];
  }
  for (int b : buckets) {
    EXPECT_NEAR(static_cast<double>(b) / trials, 0.125, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformitySweep,
                         ::testing::Values(8, 100, 4096, 1000003,
                                           uint64_t{1} << 33));

}  // namespace
}  // namespace rsr
