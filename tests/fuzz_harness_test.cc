// Convergence-fuzzer harness self-tests: script serialization round-trips
// byte for byte, clean scripts across every serving mix converge, runs are
// deterministic per script, and — the critical one — a PLANTED divergence
// bug (a peer that drops one erase per tail-replayed entry) is caught by
// the quiescence oracle within a few seeds, shrinks to a handful of steps,
// and reproduces from the dumped artifact alone. A fuzzer whose failure
// path is untested is itself untested code; this file is that test.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fuzz/campaign.h"
#include "fuzz/runner.h"
#include "fuzz/script.h"
#include "fuzz/shrink.h"

namespace rsr {
namespace fuzz {
namespace {

GenOptions SmallScripts() {
  GenOptions options;
  options.min_initial = 4;
  options.max_initial = 10;
  options.min_steps = 8;
  options.max_steps = 16;
  options.fault_prob = 0.0;
  return options;
}

GenOptions EverythingOn() {
  GenOptions options = SmallScripts();
  options.allow_tcp = true;
  options.allow_async = true;
  options.allow_mesh = true;
  options.fault_prob = 0.3;
  return options;
}

TEST(FuzzScriptTest, SerializeParseRoundTripsByteForByte) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const FuzzScript script = GenerateScript(seed, EverythingOn());
    const std::string text = SerializeScript(script);
    FuzzScript parsed;
    ASSERT_TRUE(ParseScript(text, &parsed)) << "seed " << seed;
    EXPECT_EQ(parsed, script) << "seed " << seed;
    EXPECT_EQ(SerializeScript(parsed), text) << "seed " << seed;
  }
}

TEST(FuzzScriptTest, ParserRejectsDamagedInput) {
  const FuzzScript script = GenerateScript(3, SmallScripts());
  const std::string text = SerializeScript(script);
  FuzzScript out;
  EXPECT_FALSE(ParseScript("", &out));
  EXPECT_FALSE(ParseScript("not a script\n", &out));
  // Truncation (the "end" marker never arrives) must not parse.
  EXPECT_FALSE(ParseScript(text.substr(0, text.size() / 2), &out));
  // A step referencing a peer outside the mesh must not parse.
  std::string bad = text;
  const size_t steps_at = bad.find("steps ");
  ASSERT_NE(steps_at, std::string::npos);
  bad.insert(bad.find('\n', steps_at) + 1, "sync 99 0 0 0 0 0\n");
  EXPECT_FALSE(ParseScript(bad, &out));
}

TEST(FuzzScriptTest, TamperConfigSurvivesSerialization) {
  FuzzScript script = GenerateScript(4, SmallScripts());
  script.config.tamper_kind = 1;
  script.config.tamper_peer =
      (script.config.writer + 1) % script.config.num_peers;
  FuzzScript parsed;
  ASSERT_TRUE(ParseScript(SerializeScript(script), &parsed));
  EXPECT_EQ(parsed.config.tamper_kind, 1);
  EXPECT_EQ(parsed.config.tamper_peer, script.config.tamper_peer);
}

TEST(FuzzRunnerTest, CleanScriptsConvergeAcrossAllServingMixes) {
  struct Mix {
    const char* name;
    GenOptions gen;
  };
  std::vector<Mix> mixes;
  mixes.push_back({"pipe", SmallScripts()});
  Mix tcp{"tcp", SmallScripts()};
  tcp.gen.allow_tcp = true;
  tcp.gen.force_tcp = true;
  mixes.push_back(tcp);
  Mix async{"async", SmallScripts()};
  async.gen.allow_async = true;
  mixes.push_back(async);
  Mix mesh{"mesh", SmallScripts()};
  mesh.gen.allow_mesh = true;
  mixes.push_back(mesh);

  size_t total_syncs = 0;
  for (const Mix& mix : mixes) {
    for (uint64_t seed = 100; seed < 102; ++seed) {
      const FuzzScript script = GenerateScript(seed, mix.gen);
      const RunReport report = RunScript(script);
      EXPECT_TRUE(report.ok)
          << mix.name << " seed " << seed << ": "
          << FuzzFailureName(report.failure) << " — " << report.detail;
      total_syncs += report.syncs_run + report.mesh_pulls;
    }
  }
  // The mixes must actually exercise the serving stack, not just mutate.
  EXPECT_GT(total_syncs, 0u);
}

TEST(FuzzRunnerTest, FaultedScriptsStillConvergeAndAreDeterministic) {
  GenOptions gen = EverythingOn();
  gen.fault_prob = 0.5;
  bool saw_sync_error = false;
  for (uint64_t seed = 200; seed < 204; ++seed) {
    const FuzzScript script = GenerateScript(seed, gen);
    const RunReport first = RunScript(script);
    EXPECT_TRUE(first.ok) << "seed " << seed << ": " << first.detail;
    saw_sync_error = saw_sync_error || first.sync_errors > 0;

    const RunReport second = RunScript(script);
    EXPECT_EQ(first.ok, second.ok);
    EXPECT_EQ(first.failure, second.failure);
    EXPECT_EQ(first.ops_applied, second.ops_applied);
    EXPECT_EQ(first.syncs_run, second.syncs_run);
    EXPECT_EQ(first.sync_errors, second.sync_errors);
    EXPECT_EQ(first.client_syncs, second.client_syncs);
    EXPECT_EQ(first.mesh_pulls, second.mesh_pulls);
    EXPECT_EQ(first.quiescence_sweeps, second.quiescence_sweeps);
  }
  // Probabilistic but extremely safe at fault_prob = 0.5 over 4 scripts;
  // if it ever flakes, the fault injection has stopped firing — which is
  // exactly what this assertion is here to catch.
  EXPECT_TRUE(saw_sync_error);
}

// The harness self-test the ISSUE demands: plant a known divergence bug —
// the tamper peer drops the FIRST ERASE of every changelog entry it
// tail-replays — and require that (a) the fuzzer catches it within a small
// seed budget, (b) greedy shrinking reduces the counterexample to at most
// a few steps, and (c) the dumped artifact alone reproduces the failure.
TEST(FuzzSelfTest, InjectedDivergenceBugIsCaughtShrunkAndReplayable) {
  constexpr uint64_t kSeedBudget = 40;
  bool caught = false;
  for (uint64_t seed = 1; seed <= kSeedBudget && !caught; ++seed) {
    FuzzScript script = GenerateScript(seed, SmallScripts());
    script.config.tamper_kind = 1;
    script.config.tamper_peer =
        (script.config.writer + 1) % script.config.num_peers;
    const RunReport report = RunScript(script);
    if (report.ok) continue;
    ASSERT_EQ(report.failure, FuzzFailure::kDiverged) << report.detail;
    caught = true;

    const ShrinkOutcome shrunk =
        ShrinkScript(script, report.failure, FuzzRunnerOptions{});
    EXPECT_LE(shrunk.script.steps.size(), 4u)
        << SerializeScript(shrunk.script);
    EXPECT_LE(shrunk.script.initial.size(), 8u);
    // The reduced script must still fail the same way.
    EXPECT_EQ(RunScript(shrunk.script).failure, FuzzFailure::kDiverged);

    // Dump, reload, replay: the artifact is the whole reproduction.
    Counterexample example;
    example.seed = seed;
    example.kind = report.failure;
    example.detail = report.detail;
    example.script = shrunk.script;
    const std::string path =
        DumpCounterexample(example, testing::TempDir(), "selftest");
    ASSERT_FALSE(path.empty());
    FuzzScript loaded;
    ASSERT_TRUE(LoadScriptFile(path, &loaded));
    EXPECT_EQ(loaded, shrunk.script);
    EXPECT_EQ(SerializeScript(loaded), SerializeScript(shrunk.script));
    const RunReport replayed = RunScript(loaded);
    EXPECT_FALSE(replayed.ok);
    EXPECT_EQ(replayed.failure, FuzzFailure::kDiverged);
    std::remove(path.c_str());
  }
  EXPECT_TRUE(caught) << "planted divergence bug not detected within "
                      << kSeedBudget << " seeds";
}

// Campaign plumbing: mutate_script plants the bug, the campaign shrinks
// and dumps, and the counterexample list carries usable metadata.
TEST(FuzzCampaignTest, CampaignShrinksAndDumpsCounterexamples) {
  CampaignOptions options;
  options.gen = SmallScripts();
  options.mix_name = "campaign-selftest";
  options.artifact_dir = testing::TempDir();
  options.mutate_script = [](FuzzScript* script) {
    script->config.tamper_kind = 1;
    script->config.tamper_peer =
        (script->config.writer + 1) % script->config.num_peers;
  };
  std::vector<uint64_t> seeds;
  for (uint64_t seed = 1; seed <= 12; ++seed) seeds.push_back(seed);
  const CampaignResult result = RunCampaign(seeds, options);
  EXPECT_EQ(result.scripts, seeds.size());
  ASSERT_GT(result.failures, 0u);
  ASSERT_EQ(result.examples.size(), result.failures);
  for (const Counterexample& example : result.examples) {
    EXPECT_EQ(example.kind, FuzzFailure::kDiverged);
    EXPECT_LE(example.script.steps.size(), example.original_steps);
    ASSERT_FALSE(example.artifact_path.empty());
    // The artifact header carries a final metrics-registry excerpt per
    // peer (DESIGN.md §12) — the path evidence (tail vs repair vs
    // escalation) for the failing run — and stays replayable: the '#'
    // snapshot lines must not confuse the parser.
    EXPECT_EQ(example.peer_metrics.size(), example.script.config.num_peers);
    {
      std::ifstream artifact(example.artifact_path);
      std::ostringstream text;
      text << artifact.rdbuf();
      EXPECT_NE(text.str().find("# peer 0 final registry:"),
                std::string::npos);
      EXPECT_NE(text.str().find("rsr_replica_rounds_total"),
                std::string::npos);
      EXPECT_EQ(text.str().find("_bucket{"), std::string::npos);
    }
    FuzzScript loaded;
    EXPECT_TRUE(LoadScriptFile(example.artifact_path, &loaded));
    std::remove(example.artifact_path.c_str());
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace rsr
