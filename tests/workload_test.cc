#include "workload/generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "geometry/metric.h"
#include "workload/scenario.h"

namespace rsr {
namespace workload {
namespace {

TEST(GenerateCloudTest, UniformBasics) {
  CloudSpec spec;
  spec.universe = MakeUniverse(1 << 16, 3);
  spec.n = 500;
  spec.shape = CloudShape::kUniform;
  Rng rng(1);
  const PointSet points = GenerateCloud(spec, &rng);
  EXPECT_EQ(points.size(), 500u);
  for (const Point& p : points) EXPECT_TRUE(spec.universe.Contains(p));
}

TEST(GenerateCloudTest, DeterministicGivenRng) {
  CloudSpec spec;
  spec.universe = MakeUniverse(1024, 2);
  spec.n = 100;
  Rng r1(7), r2(7);
  EXPECT_EQ(GenerateCloud(spec, &r1), GenerateCloud(spec, &r2));
}

TEST(GenerateCloudTest, ClustersAreClustered) {
  CloudSpec spec;
  spec.universe = MakeUniverse(1 << 20, 2);
  spec.n = 600;
  spec.shape = CloudShape::kClusters;
  spec.num_clusters = 3;
  spec.cluster_stddev_fraction = 0.001;
  Rng rng(2);
  const PointSet points = GenerateCloud(spec, &rng);
  ASSERT_EQ(points.size(), 600u);
  for (const Point& p : points) ASSERT_TRUE(spec.universe.Contains(p));
  // Average nearest-neighbour distance must be far below the uniform
  // expectation (~ Δ / sqrt(n) ≈ 42k for this configuration).
  double total_nn = 0;
  for (size_t i = 0; i < 100; ++i) {
    double best = 1e300;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, Distance(points[i], points[j], Metric::kL2));
    }
    total_nn += best;
  }
  EXPECT_LT(total_nn / 100.0, 5000.0);
}

TEST(GenerateCloudTest, GridAlignedSnapsToPitch) {
  CloudSpec spec;
  spec.universe = MakeUniverse(1 << 12, 2);
  spec.n = 200;
  spec.shape = CloudShape::kGridAligned;
  spec.grid_pitch = 64;
  Rng rng(3);
  const PointSet points = GenerateCloud(spec, &rng);
  for (const Point& p : points) {
    for (int64_t c : p) EXPECT_EQ(c % 64, 0);
  }
}

TEST(PerturbPointTest, NoneIsIdentity) {
  const Universe u = MakeUniverse(1000, 3);
  Rng rng(4);
  const Point p = {10, 20, 30};
  EXPECT_EQ(PerturbPoint(p, u, NoiseKind::kNone, 100.0, &rng), p);
}

TEST(PerturbPointTest, GaussianStaysInUniverseAndIsClose) {
  const Universe u = MakeUniverse(1000, 2);
  Rng rng(5);
  const Point p = {500, 500};
  for (int i = 0; i < 500; ++i) {
    const Point q = PerturbPoint(p, u, NoiseKind::kGaussian, 3.0, &rng);
    ASSERT_TRUE(u.Contains(q));
    EXPECT_LT(Distance(p, q, Metric::kLinf), 30.0);  // 10 sigma
  }
}

TEST(PerturbPointTest, UniformBoxRespectsRadius) {
  const Universe u = MakeUniverse(1000, 2);
  Rng rng(6);
  const Point p = {500, 500};
  for (int i = 0; i < 500; ++i) {
    const Point q = PerturbPoint(p, u, NoiseKind::kUniformBox, 7.0, &rng);
    ASSERT_TRUE(u.Contains(q));
    EXPECT_LE(Distance(p, q, Metric::kLinf), 7.0);
  }
}

TEST(PerturbPointTest, ClampingAtBoundary) {
  const Universe u = MakeUniverse(100, 1);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Point q = PerturbPoint({0}, u, NoiseKind::kGaussian, 50.0, &rng);
    ASSERT_TRUE(u.Contains(q));
  }
}

TEST(MakeReplicaPairTest, SizesAndOutlierCount) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(1 << 16, 2);
  cloud.n = 300;
  PerturbationSpec spec;
  spec.noise = NoiseKind::kGaussian;
  spec.noise_scale = 2.0;
  spec.outliers = 12;
  const ReplicaPair pair = MakeReplicaPair(cloud, spec, 99);
  EXPECT_EQ(pair.alice.size(), 300u);
  EXPECT_EQ(pair.bob.size(), 300u);
  EXPECT_EQ(pair.outlier_indices.size(), 12u);
  for (size_t idx : pair.outlier_indices) EXPECT_LT(idx, pair.alice.size());
  std::set<size_t> unique(pair.outlier_indices.begin(),
                          pair.outlier_indices.end());
  EXPECT_EQ(unique.size(), 12u);
}

TEST(MakeReplicaPairTest, DeterministicInSeed) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(1 << 10, 2);
  cloud.n = 50;
  PerturbationSpec spec;
  spec.outliers = 3;
  const ReplicaPair a = MakeReplicaPair(cloud, spec, 5);
  const ReplicaPair b = MakeReplicaPair(cloud, spec, 5);
  const ReplicaPair c = MakeReplicaPair(cloud, spec, 6);
  EXPECT_EQ(a.alice, b.alice);
  EXPECT_EQ(a.bob, b.bob);
  EXPECT_NE(a.alice, c.alice);
}

TEST(MakeReplicaPairTest, NoNoiseNoOutliersGivesPermutation) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(1 << 20, 2);
  cloud.n = 100;
  PerturbationSpec spec;  // defaults: gaussian but scale 0 -> set none
  spec.noise = NoiseKind::kNone;
  spec.outliers = 0;
  const ReplicaPair pair = MakeReplicaPair(cloud, spec, 11);
  PointSet a = pair.alice, b = pair.bob;
  std::sort(a.begin(), a.end(), PointLess);
  std::sort(b.begin(), b.end(), PointLess);
  EXPECT_EQ(a, b);
}

TEST(MakeReplicaPairTest, NoiseBoundsEmdPerPoint) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(1 << 20, 2);
  cloud.n = 60;
  PerturbationSpec spec;
  spec.noise = NoiseKind::kUniformBox;
  spec.noise_scale = 4.0;
  spec.outliers = 0;
  const ReplicaPair pair = MakeReplicaPair(cloud, spec, 12);
  const double emd = ExactEmd(pair.alice, pair.bob, Metric::kLinf);
  EXPECT_LE(emd, 4.0 * 60);
}

TEST(ScenarioTest, StandardScenarioMaterializes) {
  const Scenario s = workload::StandardScenario(128, 2, 1 << 16, 8, 2.0);
  const ReplicaPair pair = s.Materialize();
  EXPECT_EQ(pair.alice.size(), 128u);
  EXPECT_EQ(pair.bob.size(), 128u);
  EXPECT_EQ(pair.outlier_indices.size(), 8u);
  for (const Point& p : pair.alice) EXPECT_TRUE(s.universe.Contains(p));
}

TEST(ScenarioTest, NamedScenariosDiffer) {
  const Scenario sensor = SensorScenario(64, 4, 1.0);
  const Scenario highdim = HighDimScenario(64, 16, 4, 1.0);
  EXPECT_EQ(sensor.universe.d, 2);
  EXPECT_EQ(highdim.universe.d, 16);
  EXPECT_EQ(highdim.metric, Metric::kL1);
  const ReplicaPair hp = highdim.Materialize();
  EXPECT_EQ(hp.alice.size(), 64u);
  for (const Point& p : hp.alice) EXPECT_TRUE(highdim.universe.Contains(p));
}

}  // namespace
}  // namespace workload
}  // namespace rsr
