// Property / fuzz tests for the IBLT against a reference multiset model,
// plus failure-injection (wire corruption) checks.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "iblt/iblt.h"
#include "iblt/sizing.h"
#include "util/random.h"

namespace rsr {
namespace {

IbltConfig FuzzConfig(uint64_t seed, int value_bits = 16) {
  IbltConfig config;
  config.cells = 256;
  config.q = 4;
  config.value_bits = value_bits;
  config.seed = seed;
  return config;
}

std::vector<uint8_t> Value16(uint64_t payload) {
  BitWriter w;
  w.WriteBits(payload, 16);
  return std::move(w).TakeBytes();
}

// Reference model: signed multiset of (key -> (value, count)).
struct Model {
  std::map<uint64_t, std::pair<uint64_t, int64_t>> entries;

  void Apply(uint64_t key, uint64_t value, int direction) {
    auto& slot = entries[key];
    slot.first = value;
    slot.second += direction;
    if (slot.second == 0) entries.erase(key);
  }
  size_t surviving() const { return entries.size(); }
};

// Random interleaved insert/erase with full verification of the decode.
class IbltFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IbltFuzzSweep, DecodeMatchesReferenceModel) {
  Rng rng(GetParam());
  const IbltConfig config = FuzzConfig(GetParam() * 31 + 1);
  Iblt table(config);
  Model model;

  // Keep a pool of live keys so erases sometimes hit existing entries.
  std::vector<std::pair<uint64_t, uint64_t>> pool;  // (key, value)
  for (int op = 0; op < 400; ++op) {
    const bool erase_existing =
        !pool.empty() && rng.Bernoulli(0.45) && model.surviving() > 0;
    if (erase_existing) {
      const size_t i = rng.Below(pool.size());
      table.Erase(pool[i].first, Value16(pool[i].second));
      model.Apply(pool[i].first, pool[i].second, -1);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const uint64_t key = rng.Next64();
      const uint64_t value = rng.Below(1 << 16);
      table.Insert(key, Value16(value));
      model.Apply(key, value, +1);
      pool.emplace_back(key, value);
      // Cap survivors below decode capacity.
      if (model.surviving() > 150) {
        const auto& back = pool.back();
        table.Erase(back.first, Value16(back.second));
        model.Apply(back.first, back.second, -1);
        pool.pop_back();
      }
    }
  }

  const IbltDecodeResult decoded = table.Decode();
  ASSERT_TRUE(decoded.success);
  ASSERT_EQ(decoded.entries.size(), model.surviving());
  for (const IbltEntry& entry : decoded.entries) {
    auto it = model.entries.find(entry.key);
    ASSERT_NE(it, model.entries.end());
    EXPECT_EQ(entry.sign, it->second.second > 0 ? 1 : -1);
    EXPECT_EQ(entry.value, Value16(it->second.first));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IbltFuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(IbltPropertyTest, SubtractIsAssociativeWithApply) {
  // (A - B) decode == applying A's inserts and B's erases to one table.
  const IbltConfig config = FuzzConfig(99);
  Iblt a(config), b(config), combined(config);
  Rng rng(42);
  for (int i = 0; i < 120; ++i) {
    const uint64_t key = rng.Next64();
    const auto value = Value16(rng.Below(1 << 16));
    if (i % 2 == 0) {
      a.Insert(key, value);
      combined.Insert(key, value);
    } else {
      b.Insert(key, value);
      combined.Erase(key, value);
    }
  }
  a.Subtract(b);
  const IbltDecodeResult da = a.Decode();
  const IbltDecodeResult dc = combined.Decode();
  ASSERT_TRUE(da.success);
  ASSERT_TRUE(dc.success);
  ASSERT_EQ(da.entries.size(), dc.entries.size());
  std::map<uint64_t, int> signs_a, signs_c;
  for (const auto& e : da.entries) signs_a[e.key] = e.sign;
  for (const auto& e : dc.entries) signs_c[e.key] = e.sign;
  EXPECT_EQ(signs_a, signs_c);
}

TEST(IbltPropertyTest, DuplicateIdenticalPairsAreAKnownLimitation) {
  // Two copies of the exact same (key, value) XOR to zero with count 2 —
  // plain IBLTs cannot represent duplicates (that is the RIBLT's job).
  // The failure mode must be a clean decode failure, never wrong output.
  const IbltConfig config = FuzzConfig(7);
  Iblt table(config);
  const auto value = Value16(0xbeef);
  table.Insert(123, value);
  table.Insert(123, value);
  const IbltDecodeResult decoded = table.Decode();
  EXPECT_FALSE(decoded.success);
}

TEST(IbltPropertyTest, WireCorruptionIsDetectedOrHarmless) {
  // Flip bits across the serialized image; decoding the corrupted table
  // must never produce an entry that was not inserted (checksums).
  const IbltConfig config = FuzzConfig(11);
  Iblt table(config);
  Rng rng(13);
  std::map<uint64_t, bool> inserted;
  for (int i = 0; i < 40; ++i) {
    const uint64_t key = rng.Next64();
    inserted[key] = true;
    table.Insert(key, Value16(rng.Below(1 << 16)));
  }
  BitWriter w;
  table.Serialize(&w);
  std::vector<uint8_t> image = std::move(w).TakeBytes();

  int spurious = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> corrupt = image;
    // Flip three random bits.
    for (int f = 0; f < 3; ++f) {
      const size_t bit = rng.Below(corrupt.size() * 8);
      corrupt[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    BitReader r(corrupt);
    std::optional<Iblt> restored = Iblt::Deserialize(config, &r);
    ASSERT_TRUE(restored.has_value());  // size is unchanged
    const IbltDecodeResult decoded = restored->Decode();
    for (const IbltEntry& entry : decoded.entries) {
      if (!inserted.count(entry.key)) ++spurious;
    }
  }
  // A spurious entry requires a forged 32-bit checksum; expect none.
  EXPECT_EQ(spurious, 0);
}

TEST(IbltPropertyTest, CapacityMonotoneInCells) {
  // Larger tables decode strictly more often near the threshold.
  const size_t entries = 300;
  auto success_rate = [&](size_t cells) {
    int ok = 0;
    for (int t = 0; t < 30; ++t) {
      IbltConfig config;
      config.cells = cells;
      config.q = 4;
      config.seed = static_cast<uint64_t>(t) * 131 + cells;
      Iblt table(config);
      Rng rng(config.seed ^ 0xf00d);
      for (size_t i = 0; i < entries; ++i) table.Insert(rng.Next64(), {});
      if (table.Decode().success) ++ok;
    }
    return ok;
  };
  const int low = success_rate(entries);            // alpha = 1.0
  const int mid = success_rate(entries * 13 / 10);  // alpha = 1.3
  const int high = success_rate(entries * 2);       // alpha = 2.0
  EXPECT_LE(low, mid);
  EXPECT_LE(mid, high);
  EXPECT_EQ(low, 0);
  EXPECT_EQ(high, 30);
}

}  // namespace
}  // namespace rsr
