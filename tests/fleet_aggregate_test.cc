// Tests for the Prometheus scrape parser and the fleet aggregator:
// round-trips real MetricsRegistry output through PromScrape, then
// checks the mesh-level joins (writer seq, convergence watermark,
// staleness, merged lag quantiles) that meshmon and CI assert on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/fleet.h"
#include "obs/metrics.h"
#include "obs/promparse.h"

namespace rsr {
namespace obs {
namespace {

TEST(PromParse, RoundTripsRegistryOutput) {
  MetricsRegistry registry;
  registry.GetCounter("rsr_demo_total", "demo", {{"path", "tail"}})->Inc(3);
  registry.GetCounter("rsr_demo_total", "demo", {{"path", "repair-full"}})
      ->Inc(2);
  registry.GetGauge("rsr_replica_seq", "seq")->Set(41);
  Histogram* hist = registry.GetHistogram(
      "rsr_lat_seconds", "lat", {0.001, 0.01, 0.1}, {{"peer", "node1"}});
  hist->Observe(0.0005);
  hist->Observe(0.05);
  hist->Observe(5.0);  // +Inf bucket

  const PromScrape scrape = PromScrape::Parse(registry.RenderPrometheus());
  EXPECT_EQ(scrape.parse_errors(), 0u);
  EXPECT_EQ(scrape.Value("rsr_demo_total", {{"path", "tail"}}).value_or(-1),
            3.0);
  EXPECT_EQ(scrape.Sum("rsr_demo_total"), 5.0);
  EXPECT_EQ(scrape.Value("rsr_replica_seq").value_or(-1), 41.0);

  const auto hists = scrape.Histograms("rsr_lat_seconds");
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].labels, (LabelSet{{"peer", "node1"}}));
  EXPECT_EQ(hists[0].snap.count, 3u);
  ASSERT_EQ(hists[0].snap.bounds.size(), 3u);
  ASSERT_EQ(hists[0].snap.buckets.size(), 4u);
  EXPECT_EQ(hists[0].snap.buckets[0], 1u);
  EXPECT_EQ(hists[0].snap.buckets[2], 1u);
  EXPECT_EQ(hists[0].snap.buckets[3], 1u);
  EXPECT_NEAR(hists[0].snap.sum, 5.0505, 1e-9);
}

TEST(PromParse, EscapedLabelsAndJunkLines) {
  const std::string text =
      "# HELP x help\n"
      "x{name=\"a\\\"b\\\\c\\nd\"} 7\n"
      "this line is junk\n"
      "\n"
      "y 2.5\n";
  const PromScrape scrape = PromScrape::Parse(text);
  EXPECT_EQ(scrape.parse_errors(), 1u);
  ASSERT_EQ(scrape.samples().size(), 2u);
  EXPECT_EQ(scrape.samples()[0].labels[0].second, "a\"b\\c\nd");
  EXPECT_EQ(scrape.Value("y").value_or(-1), 2.5);
}

std::string NodeText(int64_t seq, int64_t watermark, int64_t stale_micros,
                     double lag_seconds) {
  MetricsRegistry registry;
  registry.GetGauge("rsr_replica_seq", "seq")->Set(seq);
  registry.GetGauge("rsr_replica_convergence_watermark", "wm")
      ->Set(watermark);
  registry
      .GetGauge("rsr_replica_peer_staleness_micros", "stale",
                {{"peer", "node0"}})
      ->Set(stale_micros);
  registry
      .GetHistogram("rsr_replica_propagation_lag_seconds", "lag",
                    DefaultLatencyBounds(), {{"peer", "node0"}})
      ->Observe(lag_seconds);
  registry
      .GetCounter("rsr_replica_rounds_total", "rounds", {{"path", "tail"}})
      ->Inc(4);
  return registry.RenderPrometheus();
}

TEST(FleetAggregate, JoinsNodesAndFlagsConvergence) {
  std::vector<NodeScrape> scrapes;
  scrapes.push_back({"node0", NodeText(10, 10, 0, 0.002)});
  scrapes.push_back({"node1", NodeText(10, 8, 1500000, 0.050)});
  scrapes.push_back({"down", ""});

  FleetSummary fleet = Aggregate(scrapes);
  EXPECT_EQ(fleet.writer_seq, 10.0);
  EXPECT_EQ(fleet.convergence_watermark, 8.0);
  EXPECT_FALSE(fleet.converged);
  EXPECT_NEAR(fleet.max_staleness_seconds, 1.5, 1e-9);
  EXPECT_EQ(fleet.rounds_total, 8.0);
  ASSERT_EQ(fleet.nodes.size(), 3u);
  EXPECT_TRUE(fleet.nodes[0].scraped);
  EXPECT_FALSE(fleet.nodes[2].scraped);
  // Merged lag histogram covers both nodes' observations.
  EXPECT_GT(fleet.lag_p99_ms, fleet.nodes[0].lag_p50_ms);

  // Catch the watermark up: the fleet reads as converged.
  scrapes[1].text = NodeText(10, 10, 0, 0.050);
  fleet = Aggregate(scrapes);
  EXPECT_TRUE(fleet.converged);
  EXPECT_EQ(fleet.convergence_watermark, fleet.writer_seq);

  const std::string json = fleet.RenderJson();
  EXPECT_NE(json.find("\"converged\":true"), std::string::npos);
  EXPECT_NE(json.find("\"writer_seq\":10"), std::string::npos);
  const std::string text = fleet.RenderText();
  EXPECT_NE(text.find("converged"), std::string::npos);
  EXPECT_NE(text.find("node1"), std::string::npos);
}

TEST(FleetAggregate, FallsBackToSeqWhenWatermarkAbsent) {
  MetricsRegistry registry;
  registry.GetGauge("rsr_replica_seq", "seq")->Set(5);
  FleetSummary fleet = Aggregate({{"old-node", registry.RenderPrometheus()}});
  EXPECT_EQ(fleet.convergence_watermark, 5.0);
  EXPECT_TRUE(fleet.converged);
}

}  // namespace
}  // namespace obs
}  // namespace rsr
