#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "hash/checksum.h"
#include "hash/family.h"
#include "hash/mix.h"
#include "hash/tabulation.h"
#include "util/random.h"

namespace rsr {
namespace {

TEST(Mix64Test, DeterministicAndBijectiveSpotCheck) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  // Bijective finalizer: no collisions among a decent sample.
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64Test, AvalancheRoughly) {
  // Flipping one input bit should flip ~32 output bits on average.
  Rng rng(1);
  double total_flips = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const uint64_t x = rng.Next64();
    const int bit = static_cast<int>(rng.Below(64));
    const uint64_t diff = Mix64(x) ^ Mix64(x ^ (uint64_t{1} << bit));
    total_flips += __builtin_popcountll(diff);
  }
  EXPECT_NEAR(total_flips / trials, 32.0, 1.5);
}

TEST(Hash64Test, SeedSensitivity) {
  EXPECT_NE(Hash64(123, 1), Hash64(123, 2));
  EXPECT_EQ(Hash64(123, 7), Hash64(123, 7));
}

TEST(HashCombineTest, OrderSensitive) {
  uint64_t a = HashCombine(HashCombine(0, 1), 2);
  uint64_t b = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(a, b);
}

TEST(HashBytesTest, BasicProperties) {
  const char data1[] = "hello world";
  const char data2[] = "hello worle";
  EXPECT_EQ(HashBytes(data1, sizeof(data1), 5),
            HashBytes(data1, sizeof(data1), 5));
  EXPECT_NE(HashBytes(data1, sizeof(data1), 5),
            HashBytes(data2, sizeof(data2), 5));
  EXPECT_NE(HashBytes(data1, sizeof(data1), 5),
            HashBytes(data1, sizeof(data1), 6));
  // Length is part of the hash: a prefix hashes differently.
  EXPECT_NE(HashBytes(data1, 5, 5), HashBytes(data1, 6, 5));
}

TEST(HashBytesTest, EmptyInput) {
  EXPECT_EQ(HashBytes(nullptr, 0, 1), HashBytes(nullptr, 0, 1));
  EXPECT_NE(HashBytes(nullptr, 0, 1), HashBytes(nullptr, 0, 2));
}

TEST(TabulationHashTest, DeterministicPerSeed) {
  TabulationHash h1(9), h2(9), h3(10);
  EXPECT_EQ(h1(12345), h2(12345));
  EXPECT_NE(h1(12345), h3(12345));
}

TEST(TabulationHashTest, NoTrivialCollisions) {
  TabulationHash h(11);
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 20000; ++i) outputs.insert(h(i));
  EXPECT_GT(outputs.size(), 19990u);
}

TEST(TabulationHashTest, ZeroKeyHashesToXorOfZeroRows) {
  // h(0) equals the XOR of the 8 zero-index table rows; mainly checks that
  // the function is total and stable.
  TabulationHash h(12);
  EXPECT_EQ(h(0), h(0));
}

TEST(PairwiseHashTest, SeededAndSpread) {
  PairwiseHash h1(1), h2(1), h3(2);
  EXPECT_EQ(h1(999), h2(999));
  EXPECT_NE(h1(999), h3(999));
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(h1(i));
  EXPECT_GT(outputs.size(), 9990u);
}

TEST(PairwiseHashTest, BoundedRangeAndUniformity) {
  PairwiseHash h(3);
  const uint64_t range = 10;
  std::vector<int> counts(range, 0);
  for (uint64_t i = 0; i < 50000; ++i) {
    const uint64_t v = h.Bounded(i, range);
    ASSERT_LT(v, range);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 50000.0, 0.1, 0.02);
  }
}

TEST(PairwiseHashTest, PairwiseCollisionRate) {
  // Over random hash draws, Pr[h(x) == h(y) mod r] should be ~1/r for
  // distinct x, y — the defining property of 2-independence.
  const uint64_t range = 64;
  int collisions = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    PairwiseHash h(static_cast<uint64_t>(t) + 1000);
    if (h.Bounded(17, range) == h.Bounded(91, range)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / trials, 1.0 / range, 0.01);
}

TEST(PolynomialHashTest, IndependenceParameterRespected) {
  PolynomialHash h(5, 4);
  EXPECT_EQ(h.independence(), 4);
  EXPECT_EQ(h(77), h(77));
  PolynomialHash h2(6, 4);
  EXPECT_NE(h(77), h2(77));
}

TEST(PolynomialHashTest, OutputBelowMersennePrime) {
  PolynomialHash h(7, 3);
  const uint64_t p = (uint64_t{1} << 61) - 1;
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_LT(h(i), p);
}

TEST(IndexHasherTest, CellsAreDistinctAndPartitioned) {
  const int q = 4;
  const size_t m = 64;
  IndexHasher indexer(3, q, m);
  EXPECT_EQ(indexer.cells_per_partition(), m / q);
  std::vector<size_t> cells;
  for (uint64_t key = 0; key < 500; ++key) {
    indexer.Cells(key, &cells);
    ASSERT_EQ(cells.size(), static_cast<size_t>(q));
    std::set<size_t> unique(cells.begin(), cells.end());
    EXPECT_EQ(unique.size(), static_cast<size_t>(q));  // always distinct
    for (int j = 0; j < q; ++j) {
      // Function j stays within partition j.
      EXPECT_GE(cells[static_cast<size_t>(j)], static_cast<size_t>(j) * m / q);
      EXPECT_LT(cells[static_cast<size_t>(j)],
                static_cast<size_t>(j + 1) * m / q);
    }
  }
}

TEST(IndexHasherTest, CellMatchesCells) {
  IndexHasher indexer(8, 3, 30);
  std::vector<size_t> cells;
  indexer.Cells(42, &cells);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(indexer.Cell(42, j), cells[static_cast<size_t>(j)]);
  }
}

TEST(ChecksumTest, SeededDeterministic) {
  Checksum c1(1), c2(1), c3(2);
  EXPECT_EQ(c1(500), c2(500));
  EXPECT_NE(c1(500), c3(500));
}

TEST(ChecksumTest, TruncationConsistent) {
  Checksum c(9);
  const uint64_t full = c(123456);
  EXPECT_EQ(c.Truncated(123456, 64), full);
  EXPECT_EQ(c.Truncated(123456, 16), full & 0xffff);
  EXPECT_EQ(c.Truncated(123456, 1), full & 1);
}

TEST(ChecksumTest, XorOfChecksumsIsNotAChecksum) {
  // The pure-cell test relies on XORs of distinct keys' checksums not
  // matching the checksum of the XOR of the keys. Spot-check on a sample.
  Checksum c(10);
  Rng rng(20);
  int bad = 0;
  for (int t = 0; t < 5000; ++t) {
    const uint64_t k1 = rng.Next64(), k2 = rng.Next64();
    if ((c(k1) ^ c(k2)) == c(k1 ^ k2)) ++bad;
  }
  EXPECT_EQ(bad, 0);
}

}  // namespace
}  // namespace rsr
