#include "iblt/strata.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rsr {
namespace {

StrataConfig TestConfig(uint64_t seed = 1) {
  StrataConfig config;
  config.num_strata = 20;
  config.cells_per_stratum = 40;
  config.seed = seed;
  return config;
}

TEST(StrataTest, IdenticalSetsEstimateZero) {
  const StrataConfig config = TestConfig();
  StrataEstimator a(config), b(config);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t k = rng.Next64();
    a.Insert(k);
    b.Insert(k);
  }
  EXPECT_EQ(a.EstimateDifference(b), 0u);
  EXPECT_EQ(b.EstimateDifference(a), 0u);
}

TEST(StrataTest, SmallDifferencesAreExact) {
  // When every stratum decodes, the estimate is the exact difference.
  const StrataConfig config = TestConfig(2);
  StrataEstimator a(config), b(config);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const uint64_t k = rng.Next64();
    a.Insert(k);
    b.Insert(k);
  }
  for (int i = 0; i < 10; ++i) a.Insert(rng.Next64());
  for (int i = 0; i < 5; ++i) b.Insert(rng.Next64());
  const uint64_t est = a.EstimateDifference(b);
  EXPECT_EQ(est, 15u);
}

TEST(StrataTest, LargeDifferenceWithinFactorTwo) {
  Rng seed_rng(3);
  int good = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const StrataConfig config = TestConfig(seed_rng.Next64());
    StrataEstimator a(config), b(config);
    Rng rng(seed_rng.Next64());
    for (int i = 0; i < 2000; ++i) {
      const uint64_t k = rng.Next64();
      a.Insert(k);
      b.Insert(k);
    }
    const uint64_t true_diff = 3000;
    for (uint64_t i = 0; i < true_diff / 2; ++i) {
      a.Insert(rng.Next64());
      b.Insert(rng.Next64());
    }
    const uint64_t est = a.EstimateDifference(b);
    if (est >= true_diff / 2 && est <= true_diff * 2) ++good;
  }
  EXPECT_GE(good, trials - 2);
}

TEST(StrataTest, EstimateSymmetryApproximate) {
  const StrataConfig config = TestConfig(4);
  StrataEstimator a(config), b(config);
  Rng rng(4);
  for (int i = 0; i < 300; ++i) {
    const uint64_t k = rng.Next64();
    a.Insert(k);
    b.Insert(k);
  }
  for (int i = 0; i < 64; ++i) a.Insert(rng.Next64());
  // a-vs-b and b-vs-a decode the same subtracted tables (up to sign), so
  // the estimates agree exactly.
  EXPECT_EQ(a.EstimateDifference(b), b.EstimateDifference(a));
}

TEST(StrataTest, SerializeRoundTrip) {
  const StrataConfig config = TestConfig(5);
  StrataEstimator a(config), b(config);
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const uint64_t k = rng.Next64();
    a.Insert(k);
    if (i % 10 != 0) b.Insert(k);  // 40 differences
  }
  BitWriter w;
  a.Serialize(&w);
  EXPECT_EQ(w.bit_count(), config.SerializedBits());
  BitReader r(w.bytes());
  std::optional<StrataEstimator> restored =
      StrataEstimator::Deserialize(config, &r);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->EstimateDifference(b), a.EstimateDifference(b));
}

TEST(StrataTest, DeserializeUnderrunFails) {
  const StrataConfig config = TestConfig(6);
  BitWriter w;
  w.WriteBits(0, 64);
  BitReader r(w.bytes());
  EXPECT_FALSE(StrataEstimator::Deserialize(config, &r).has_value());
}

// Sweep over difference sizes: estimates should track the truth within the
// standard factor-2 band (with a generous allowance at tiny differences).
class StrataAccuracySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrataAccuracySweep, TracksTrueDifference) {
  const uint64_t true_diff = GetParam();
  int good = 0;
  const int trials = 15;
  for (int t = 0; t < trials; ++t) {
    const StrataConfig config = TestConfig(1000 + static_cast<uint64_t>(t));
    StrataEstimator a(config), b(config);
    Rng rng(2000 + static_cast<uint64_t>(t));
    for (int i = 0; i < 1000; ++i) {
      const uint64_t k = rng.Next64();
      a.Insert(k);
      b.Insert(k);
    }
    for (uint64_t i = 0; i < true_diff; ++i) a.Insert(rng.Next64());
    const uint64_t est = a.EstimateDifference(b);
    if (est >= true_diff / 3 && est <= true_diff * 3) ++good;
  }
  EXPECT_GE(good, trials - 2);
}

INSTANTIATE_TEST_SUITE_P(DifferenceSizes, StrataAccuracySweep,
                         ::testing::Values(16, 64, 256, 1024, 4096));

}  // namespace
}  // namespace rsr
