#include "iblt/iblt.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "iblt/sizing.h"
#include "util/random.h"

namespace rsr {
namespace {

IbltConfig SmallConfig(int value_bits = 0, uint64_t seed = 1) {
  IbltConfig config;
  config.cells = 64;
  config.q = 4;
  config.value_bits = value_bits;
  config.seed = seed;
  return config;
}

std::vector<uint8_t> MakeValue(uint64_t payload, int value_bits) {
  BitWriter w;
  w.WriteBits(payload, value_bits);
  return std::move(w).TakeBytes();
}

TEST(IbltConfigTest, RoundingAndSize) {
  IbltConfig config;
  config.cells = 10;
  config.q = 4;
  EXPECT_EQ(config.RoundedCells(), 12u);
  config.cells = 12;
  EXPECT_EQ(config.RoundedCells(), 12u);
  config.value_bits = 20;
  config.checksum_bits = 32;
  config.count_bits = 16;
  EXPECT_EQ(config.SerializedBits(), 12u * (16 + 64 + 32 + 20));
}

TEST(IbltTest, EmptyTableDecodesToNothing) {
  Iblt table(SmallConfig());
  const IbltDecodeResult result = table.Decode();
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.entries.empty());
  EXPECT_TRUE(table.IsEmpty());
}

TEST(IbltTest, SingleEntryRoundTrip) {
  Iblt table(SmallConfig(16));
  table.Insert(42, MakeValue(0xabcd, 16));
  EXPECT_FALSE(table.IsEmpty());
  const IbltDecodeResult result = table.Decode();
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, 42u);
  EXPECT_EQ(result.entries[0].sign, 1);
  EXPECT_EQ(result.entries[0].value, MakeValue(0xabcd, 16));
}

TEST(IbltTest, InsertThenEraseIsEmpty) {
  Iblt table(SmallConfig(8));
  table.Insert(7, MakeValue(0x5a, 8));
  table.Erase(7, MakeValue(0x5a, 8));
  EXPECT_TRUE(table.IsEmpty());
}

TEST(IbltTest, EraseWithoutInsertYieldsNegativeEntry) {
  Iblt table(SmallConfig());
  table.Erase(99, {});
  const IbltDecodeResult result = table.Decode();
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, 99u);
  EXPECT_EQ(result.entries[0].sign, -1);
}

TEST(IbltTest, ManyEntriesDecodeWithinCapacity) {
  Iblt table(SmallConfig(0, 3));
  std::set<uint64_t> keys;
  Rng rng(2);
  while (keys.size() < 30) keys.insert(rng.Next64());
  for (uint64_t k : keys) table.Insert(k, {});
  const IbltDecodeResult result = table.Decode();
  ASSERT_TRUE(result.success);
  std::set<uint64_t> decoded;
  for (const IbltEntry& e : result.entries) {
    EXPECT_EQ(e.sign, 1);
    decoded.insert(e.key);
  }
  EXPECT_EQ(decoded, keys);
}

TEST(IbltTest, OverloadedTableFailsToDecode) {
  Iblt table(SmallConfig(0, 4));  // 64 cells
  Rng rng(3);
  for (int i = 0; i < 500; ++i) table.Insert(rng.Next64(), {});
  const IbltDecodeResult result = table.Decode();
  EXPECT_FALSE(result.success);
}

TEST(IbltTest, MaxEntriesLimitAbortsDecode) {
  Iblt table(SmallConfig(0, 5));
  Rng rng(4);
  for (int i = 0; i < 20; ++i) table.Insert(rng.Next64(), {});
  EXPECT_TRUE(table.Decode().success);
  EXPECT_FALSE(table.Decode(/*max_entries=*/10).success);
  EXPECT_TRUE(table.Decode(/*max_entries=*/20).success);
}

TEST(IbltTest, SubtractRecoversSymmetricDifference) {
  const IbltConfig config = SmallConfig(24, 6);
  Iblt alice(config), bob(config);
  Rng rng(5);
  std::map<uint64_t, std::vector<uint8_t>> common, alice_only, bob_only;
  for (int i = 0; i < 200; ++i) {
    common[rng.Next64()] = MakeValue(rng.Below(1 << 24), 24);
  }
  for (int i = 0; i < 8; ++i) {
    alice_only[rng.Next64()] = MakeValue(rng.Below(1 << 24), 24);
    bob_only[rng.Next64()] = MakeValue(rng.Below(1 << 24), 24);
  }
  for (const auto& [k, v] : common) {
    alice.Insert(k, v);
    bob.Insert(k, v);
  }
  for (const auto& [k, v] : alice_only) alice.Insert(k, v);
  for (const auto& [k, v] : bob_only) bob.Insert(k, v);

  alice.Subtract(bob);
  const IbltDecodeResult result = alice.Decode();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.entries.size(), alice_only.size() + bob_only.size());
  for (const IbltEntry& e : result.entries) {
    if (e.sign == 1) {
      ASSERT_TRUE(alice_only.count(e.key));
      EXPECT_EQ(e.value, alice_only[e.key]);
    } else {
      ASSERT_TRUE(bob_only.count(e.key));
      EXPECT_EQ(e.value, bob_only[e.key]);
    }
  }
}

TEST(IbltTest, SubtractOfEqualTablesIsEmpty) {
  const IbltConfig config = SmallConfig(12, 7);
  Iblt a(config), b(config);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const uint64_t k = rng.Next64();
    const auto v = MakeValue(rng.Below(1 << 12), 12);
    a.Insert(k, v);
    b.Insert(k, v);
  }
  a.Subtract(b);
  EXPECT_TRUE(a.IsEmpty());
  EXPECT_TRUE(a.Decode().success);
  EXPECT_TRUE(a.Decode().entries.empty());
}

TEST(IbltTest, SerializeDeserializeRoundTrip) {
  const IbltConfig config = SmallConfig(20, 8);
  Iblt table(config);
  Rng rng(7);
  std::set<uint64_t> keys;
  for (int i = 0; i < 25; ++i) {
    const uint64_t k = rng.Next64();
    keys.insert(k);
    table.Insert(k, MakeValue(rng.Below(1 << 20), 20));
  }
  BitWriter w;
  table.Serialize(&w);
  EXPECT_EQ(w.bit_count(), config.SerializedBits());

  BitReader r(w.bytes());
  std::optional<Iblt> restored = Iblt::Deserialize(config, &r);
  ASSERT_TRUE(restored.has_value());
  const IbltDecodeResult result = restored->Decode();
  ASSERT_TRUE(result.success);
  std::set<uint64_t> decoded;
  for (const IbltEntry& e : result.entries) decoded.insert(e.key);
  EXPECT_EQ(decoded, keys);
}

TEST(IbltTest, SerializeNegativeCountsRoundTrip) {
  const IbltConfig config = SmallConfig(0, 9);
  Iblt table(config);
  table.Erase(123, {});
  table.Erase(456, {});
  BitWriter w;
  table.Serialize(&w);
  BitReader r(w.bytes());
  std::optional<Iblt> restored = Iblt::Deserialize(config, &r);
  ASSERT_TRUE(restored.has_value());
  const IbltDecodeResult result = restored->Decode();
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.entries[0].sign, -1);
  EXPECT_EQ(result.entries[1].sign, -1);
}

TEST(IbltTest, DeserializeUnderrunFails) {
  const IbltConfig config = SmallConfig(0, 10);
  BitWriter w;
  w.WriteBits(0, 32);  // far too short
  BitReader r(w.bytes());
  EXPECT_FALSE(Iblt::Deserialize(config, &r).has_value());
}

TEST(IbltTest, SubtractAfterSerializationMatchesDirect) {
  // The reconciliation path: Alice serializes, Bob deserializes and
  // subtracts his own table; result must equal the in-memory difference.
  const IbltConfig config = SmallConfig(16, 11);
  Iblt alice(config), bob(config);
  Rng rng(8);
  for (int i = 0; i < 40; ++i) {
    const uint64_t k = rng.Next64();
    const auto v = MakeValue(rng.Below(1 << 16), 16);
    alice.Insert(k, v);
    if (i % 5 != 0) bob.Insert(k, v);  // bob misses every 5th
  }
  BitWriter w;
  alice.Serialize(&w);
  BitReader r(w.bytes());
  std::optional<Iblt> wire = Iblt::Deserialize(config, &r);
  ASSERT_TRUE(wire.has_value());
  wire->Subtract(bob);
  const IbltDecodeResult result = wire->Decode();
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.entries.size(), 8u);
  for (const IbltEntry& e : result.entries) EXPECT_EQ(e.sign, 1);
}

TEST(SizingTest, ThresholdsSane) {
  // More hash functions (up to the optimum) reduce the per-entry overhead.
  EXPECT_GT(CellsPerEntryThreshold(3), 1.2);
  EXPECT_LT(CellsPerEntryThreshold(3), 1.25);
  EXPECT_GT(CellsPerEntryThreshold(4), CellsPerEntryThreshold(5) - 0.2);
  EXPECT_GT(RecommendedCells(100, 4), 100u);
  EXPECT_GE(RecommendedCells(0, 4), 16u);  // floor
  EXPECT_GT(RecommendedCells(1000, 4, 2.0), RecommendedCells(1000, 4, 1.0));
}

// Decode success probability across sizing ratios: below threshold decode
// mostly fails, above the recommended sizing it virtually always succeeds.
class IbltThresholdSweep : public ::testing::TestWithParam<int> {};

TEST_P(IbltThresholdSweep, RecommendedSizingDecodes) {
  const int q = GetParam();
  const size_t entries = 120;
  int successes = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    IbltConfig config;
    config.cells = RecommendedCells(entries, q);
    config.q = q;
    config.seed = static_cast<uint64_t>(t) * 977 + 13;
    Iblt table(config);
    Rng rng(config.seed);
    for (size_t i = 0; i < entries; ++i) table.Insert(rng.Next64(), {});
    if (table.Decode().success) ++successes;
  }
  EXPECT_GE(successes, trials - 1);
}

TEST_P(IbltThresholdSweep, WayUndersizedFails) {
  const int q = GetParam();
  const size_t entries = 400;
  IbltConfig config;
  config.cells = entries / 4;  // far below any threshold
  config.q = q;
  config.seed = 99;
  Iblt table(config);
  Rng rng(31);
  for (size_t i = 0; i < entries; ++i) table.Insert(rng.Next64(), {});
  EXPECT_FALSE(table.Decode().success);
}

INSTANTIATE_TEST_SUITE_P(HashCounts, IbltThresholdSweep,
                         ::testing::Values(3, 4, 5));

}  // namespace
}  // namespace rsr
