// Changelog semantics: gapless append/fetch, ring truncation (the
// fall-off-the-log signal that forces protocol repair), MarkSnapshot
// re-basing, file-segment replay, and append-while-fetch thread safety
// (run under TSan in CI).

#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replica/changelog.h"

namespace rsr {
namespace replica {
namespace {

Point MakePoint(int64_t x, int64_t y) {
  Point p(2);
  p[0] = x;
  p[1] = y;
  return p;
}

/// Entry whose contents encode its seq, so replays are checkable.
ChangeEntry MakeEntry(uint64_t seq) {
  ChangeEntry entry;
  entry.seq = seq;
  entry.inserts.push_back(MakePoint(static_cast<int64_t>(seq), 1));
  entry.inserts.push_back(MakePoint(static_cast<int64_t>(seq), 2));
  entry.erases.push_back(MakePoint(static_cast<int64_t>(seq), 3));
  return entry;
}

TEST(ChangelogTest, AppendAndFetchInOrder) {
  Changelog log;
  for (uint64_t seq = 1; seq <= 5; ++seq) log.Append(MakeEntry(seq));
  EXPECT_EQ(log.base_seq(), 0u);
  EXPECT_EQ(log.last_seq(), 5u);
  EXPECT_EQ(log.size(), 5u);

  const FetchedEntries all = log.Fetch(0);
  ASSERT_TRUE(all.ok);
  EXPECT_TRUE(all.complete);
  EXPECT_EQ(all.last_seq, 5u);
  ASSERT_EQ(all.entries.size(), 5u);
  for (uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_EQ(all.entries[seq - 1], MakeEntry(seq));
  }

  const FetchedEntries tail = log.Fetch(3);
  ASSERT_TRUE(tail.ok);
  EXPECT_TRUE(tail.complete);
  ASSERT_EQ(tail.entries.size(), 2u);
  EXPECT_EQ(tail.entries[0].seq, 4u);
  EXPECT_EQ(tail.entries[1].seq, 5u);

  const FetchedEntries at_head = log.Fetch(5);
  EXPECT_TRUE(at_head.ok);
  EXPECT_TRUE(at_head.complete);
  EXPECT_TRUE(at_head.entries.empty());
}

TEST(ChangelogTest, FetchCapTruncatesButStaysOk) {
  Changelog log;
  for (uint64_t seq = 1; seq <= 6; ++seq) log.Append(MakeEntry(seq));
  const FetchedEntries capped = log.Fetch(0, 2);
  ASSERT_TRUE(capped.ok);
  EXPECT_FALSE(capped.complete);
  EXPECT_EQ(capped.last_seq, 6u);
  ASSERT_EQ(capped.entries.size(), 2u);
  EXPECT_EQ(capped.entries[0].seq, 1u);
  EXPECT_EQ(capped.entries[1].seq, 2u);
}

TEST(ChangelogTest, RingTruncationForcesReconciliationFallback) {
  ChangelogOptions options;
  options.capacity = 4;
  Changelog log(options);
  for (uint64_t seq = 1; seq <= 10; ++seq) log.Append(MakeEntry(seq));
  EXPECT_EQ(log.base_seq(), 6u);
  EXPECT_EQ(log.last_seq(), 10u);
  EXPECT_EQ(log.size(), 4u);

  // A replica still at seq 2 has fallen off: no log catch-up possible.
  const FetchedEntries stale = log.Fetch(2);
  EXPECT_FALSE(stale.ok);
  EXPECT_EQ(stale.last_seq, 10u);
  EXPECT_TRUE(stale.entries.empty());

  // One inside the retained window still tails fine.
  const FetchedEntries fresh = log.Fetch(7);
  ASSERT_TRUE(fresh.ok);
  ASSERT_EQ(fresh.entries.size(), 3u);
  EXPECT_EQ(fresh.entries.front().seq, 8u);
}

TEST(ChangelogTest, MarkSnapshotRebasesCoverage) {
  Changelog log;
  for (uint64_t seq = 1; seq <= 5; ++seq) log.Append(MakeEntry(seq));
  log.MarkSnapshot(12);
  EXPECT_EQ(log.base_seq(), 12u);
  EXPECT_EQ(log.last_seq(), 12u);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_FALSE(log.Fetch(5).ok);
  EXPECT_TRUE(log.Fetch(12).ok);

  // Journaling resumes directly after the installed position.
  log.Append(MakeEntry(13));
  const FetchedEntries tail = log.Fetch(12);
  ASSERT_TRUE(tail.ok);
  ASSERT_EQ(tail.entries.size(), 1u);
  EXPECT_EQ(tail.entries[0], MakeEntry(13));
}

TEST(ChangelogTest, SegmentWriteThroughReplaysBitIdentical) {
  const std::string path =
      testing::TempDir() + "/changelog_segment_test.bin";
  std::remove(path.c_str());
  ChangelogOptions options;
  options.segment_path = path;
  options.capacity = 2;  // the segment keeps what the ring evicts
  {
    Changelog log(options);
    for (uint64_t seq = 1; seq <= 7; ++seq) log.Append(MakeEntry(seq));
  }
  std::vector<ChangeEntry> replayed;
  ASSERT_TRUE(ReplaySegment(
      path, [&replayed](const ChangeEntry& entry) {
        replayed.push_back(entry);
      }));
  ASSERT_EQ(replayed.size(), 7u);
  for (uint64_t seq = 1; seq <= 7; ++seq) {
    EXPECT_EQ(replayed[seq - 1], MakeEntry(seq));
  }
  std::remove(path.c_str());
}

TEST(ChangelogTest, SegmentRoundTripsObservabilityStamps) {
  const std::string path =
      testing::TempDir() + "/changelog_stamps_test.bin";
  std::remove(path.c_str());
  ChangelogOptions options;
  options.segment_path = path;
  {
    Changelog log(options);
    ChangeEntry stamped = MakeEntry(1);
    stamped.append_micros = 1'234'567;
    stamped.trace_hi = 0xdeadbeefcafef00dULL;
    stamped.trace_lo = 0x0123456789abcdefULL;
    log.Append(stamped);
    log.Append(MakeEntry(2));  // untraced: stamps stay zero
  }
  std::vector<ChangeEntry> replayed;
  ASSERT_TRUE(ReplaySegment(path, [&replayed](const ChangeEntry& entry) {
    replayed.push_back(entry);
  }));
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].append_micros, 1'234'567u);
  EXPECT_EQ(replayed[0].trace_hi, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(replayed[0].trace_lo, 0x0123456789abcdefULL);
  EXPECT_EQ(replayed[0], MakeEntry(1));
  EXPECT_EQ(replayed[1].append_micros, 0u);
  EXPECT_EQ(replayed[1].trace_hi | replayed[1].trace_lo, 0u);
  std::remove(path.c_str());
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::vector<uint8_t> bytes;
  std::FILE* file = std::fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << path;
  if (file == nullptr) return bytes;
  uint8_t buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + got);
  }
  std::fclose(file);
  return bytes;
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
  std::fclose(file);
}

TEST(ChangelogTest, ReplaySegmentDecodesLegacyUnstampedRecords) {
  // A record written before the observability stamps existed ends at the
  // coordinates. Simulate one by stripping the three trailing zero
  // varints (an all-zero-stamp record ends in exactly three 0x00 bytes)
  // from a freshly written single-record segment and shrinking its
  // length prefix — byte-identical to the legacy writer's output.
  const std::string path =
      testing::TempDir() + "/changelog_legacy_test.bin";
  std::remove(path.c_str());
  ChangelogOptions options;
  options.segment_path = path;
  {
    Changelog log(options);
    log.Append(MakeEntry(1));  // stamps all zero
  }
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 4u);
  ASSERT_LT(bytes.size(), 128u);  // single-byte blob length prefix
  ASSERT_EQ(bytes[0], bytes.size() - 1);  // [len][payload]
  ASSERT_EQ(bytes[bytes.size() - 1], 0u);
  ASSERT_EQ(bytes[bytes.size() - 2], 0u);
  ASSERT_EQ(bytes[bytes.size() - 3], 0u);
  bytes.resize(bytes.size() - 3);
  bytes[0] = static_cast<uint8_t>(bytes.size() - 1);
  WriteFileBytes(path, bytes);

  std::vector<ChangeEntry> replayed;
  ASSERT_TRUE(ReplaySegment(path, [&replayed](const ChangeEntry& entry) {
    replayed.push_back(entry);
  }));
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], MakeEntry(1));
  EXPECT_EQ(replayed[0].append_micros, 0u);
  EXPECT_EQ(replayed[0].trace_hi | replayed[0].trace_lo, 0u);
  std::remove(path.c_str());
}

/// Writes a 3-entry segment, recording the file size after each append
/// (the changelog flushes per append) so tests know record boundaries.
std::vector<size_t> WriteThreeEntrySegment(const std::string& path) {
  std::remove(path.c_str());
  ChangelogOptions options;
  options.segment_path = path;
  std::vector<size_t> boundaries;
  Changelog log(options);
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    log.Append(MakeEntry(seq));
    boundaries.push_back(ReadFileBytes(path).size());
  }
  return boundaries;
}

TEST(ChangelogTest, ReplaySegmentDetailedMissingFileIsOpenFailed) {
  const std::string path = testing::TempDir() + "/changelog_no_such_file.bin";
  std::remove(path.c_str());
  size_t delivered = 0;
  EXPECT_EQ(ReplaySegmentDetailed(path,
                                  [&delivered](const ChangeEntry&) {
                                    ++delivered;
                                  }),
            SegmentReplayStatus::kOpenFailed);
  EXPECT_EQ(delivered, 0u);
  EXPECT_FALSE(ReplaySegment(path, [](const ChangeEntry&) {}));
}

TEST(ChangelogTest, ReplaySegmentDetailedTornTailDeliversIntactPrefix) {
  const std::string path = testing::TempDir() + "/changelog_torn_tail.bin";
  const std::vector<size_t> boundaries = WriteThreeEntrySegment(path);
  const std::vector<uint8_t> intact = ReadFileBytes(path);
  ASSERT_EQ(intact.size(), boundaries[2]);

  // A crash can tear the tail record anywhere: one byte into it (inside
  // the length prefix) or one byte short of complete (inside the payload).
  for (const size_t cut : {boundaries[1] + 1, boundaries[2] - 1}) {
    WriteFileBytes(path, std::vector<uint8_t>(intact.begin(),
                                              intact.begin() +
                                                  static_cast<ptrdiff_t>(cut)));
    std::vector<ChangeEntry> replayed;
    EXPECT_EQ(ReplaySegmentDetailed(path,
                                    [&replayed](const ChangeEntry& entry) {
                                      replayed.push_back(entry);
                                    }),
              SegmentReplayStatus::kTornTail)
        << "cut at " << cut;
    // The intact prefix IS the journal: both whole records, nothing of the
    // torn one — a partially decoded entry is never delivered.
    ASSERT_EQ(replayed.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(replayed[0], MakeEntry(1));
    EXPECT_EQ(replayed[1], MakeEntry(2));
    EXPECT_FALSE(ReplaySegment(path, [](const ChangeEntry&) {}));
  }
  std::remove(path.c_str());
}

TEST(ChangelogTest, ReplaySegmentDetailedCorruptEntryStopsBeforeDamage) {
  const std::string path = testing::TempDir() + "/changelog_corrupt.bin";
  const std::vector<size_t> boundaries = WriteThreeEntrySegment(path);
  std::vector<uint8_t> damaged = ReadFileBytes(path);

  // Smash record 2's PAYLOAD while leaving its length prefix (and every
  // other record) intact: a length-intact record that fails to decode is
  // at-rest damage, not a torn append. 0xFF bytes keep every varint's
  // continuation bit set, so the decode cannot terminate cleanly.
  for (size_t i = boundaries[0] + 1; i < boundaries[1]; ++i) {
    damaged[i] = 0xFF;
  }
  WriteFileBytes(path, damaged);

  std::vector<ChangeEntry> replayed;
  EXPECT_EQ(ReplaySegmentDetailed(path,
                                  [&replayed](const ChangeEntry& entry) {
                                    replayed.push_back(entry);
                                  }),
            SegmentReplayStatus::kCorruptEntry);
  // Entries before the damage arrive whole; nothing at or after it does —
  // record 3 is intact but unreachable past a corrupt record.
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0], MakeEntry(1));
  EXPECT_FALSE(ReplaySegment(path, [](const ChangeEntry&) {}));
  std::remove(path.c_str());
}

TEST(ChangelogTest, SegmentReplayStatusNamesAreStable) {
  EXPECT_STREQ(SegmentReplayStatusName(SegmentReplayStatus::kOk), "ok");
  EXPECT_STREQ(SegmentReplayStatusName(SegmentReplayStatus::kOpenFailed),
               "open-failed");
  EXPECT_STREQ(SegmentReplayStatusName(SegmentReplayStatus::kTornTail),
               "torn-tail");
  EXPECT_STREQ(SegmentReplayStatusName(SegmentReplayStatus::kCorruptEntry),
               "corrupt-entry");
}

TEST(ChangelogTest, ConcurrentAppendWhileFetchStaysGapless) {
  constexpr uint64_t kEntries = 400;
  Changelog log;
  std::thread appender([&log] {
    for (uint64_t seq = 1; seq <= kEntries; ++seq) log.Append(MakeEntry(seq));
  });
  // Tail the log while it grows, the way a follower replica does; every
  // observed batch must be gapless and internally consistent.
  uint64_t applied = 0;
  while (applied < kEntries) {
    const FetchedEntries batch = log.Fetch(applied, 16);
    ASSERT_TRUE(batch.ok);
    for (const ChangeEntry& entry : batch.entries) {
      ASSERT_EQ(entry.seq, applied + 1);
      ASSERT_EQ(entry, MakeEntry(entry.seq));
      ++applied;
    }
  }
  appender.join();
  EXPECT_EQ(log.last_seq(), kEntries);
}

}  // namespace
}  // namespace replica
}  // namespace rsr
