#include "lshrecon/mlsh_recon.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "workload/generator.h"

namespace rsr {
namespace lshrecon {
namespace {

using recon::ProtocolContext;
using recon::ReconResult;
using workload::CloudSpec;
using workload::MakeReplicaPair;
using workload::NoiseKind;
using workload::PerturbationSpec;
using workload::ReplicaPair;

ProtocolContext Context(int64_t delta, int d, uint64_t seed = 7) {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(delta, d);
  ctx.seed = seed;
  return ctx;
}

ReplicaPair MakeInstance(int64_t delta, int d, size_t n, size_t k,
                         double noise, uint64_t seed = 3) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(delta, d);
  cloud.n = n;
  PerturbationSpec spec;
  spec.noise = noise > 0 ? NoiseKind::kGaussian : NoiseKind::kNone;
  spec.noise_scale = noise;
  spec.outliers = k;
  return MakeReplicaPair(cloud, spec, seed);
}

MlshParams Params(size_t k) {
  MlshParams p;
  p.k = k;
  return p;
}

TEST(MlshReconcilerTest, IdenticalSetsSucceedUnchanged) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 128, 0, 0.0);
  const ProtocolContext ctx = Context(1 << 12, 2);
  MlshReconciler protocol(ctx, Params(4));
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.decoded_entries, 0u);
  EXPECT_EQ(result.bob_final.size(), 128u);
  EXPECT_DOUBLE_EQ(ExactEmd(pair.alice, result.bob_final, Metric::kL2), 0.0);
}

TEST(MlshReconcilerTest, OutliersRecovered) {
  const size_t n = 128, k = 4;
  const ReplicaPair pair = MakeInstance(1 << 12, 2, n, k, 0.0, 5);
  const ProtocolContext ctx = Context(1 << 12, 2, 6);
  MlshReconciler protocol(ctx, Params(k));
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bob_final.size(), n);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  EXPECT_LT(after, before * 0.5);
}

TEST(MlshReconcilerTest, NoisePlusOutliers) {
  const size_t n = 128, k = 4;
  const ReplicaPair pair = MakeInstance(1 << 14, 2, n, k, 2.0, 7);
  const ProtocolContext ctx = Context(1 << 14, 2, 8);
  MlshParams params = Params(k);
  params.width = 256.0;
  MlshReconciler protocol(ctx, params);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bob_final.size(), n);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  EXPECT_LT(after, before);
}

TEST(MlshReconcilerTest, SingleRoundProtocol) {
  const ReplicaPair pair = MakeInstance(1 << 10, 2, 64, 2, 1.0, 9);
  const ProtocolContext ctx = Context(1 << 10, 2, 10);
  MlshReconciler protocol(ctx, Params(2));
  transport::Channel channel;
  (void)protocol.Run(pair.alice, pair.bob, &channel);
  EXPECT_EQ(channel.stats().rounds, 1u);
  EXPECT_EQ(channel.stats().message_count, 1u);
}

TEST(MlshReconcilerTest, GridFamilyWorksToo) {
  const size_t n = 96, k = 3;
  const ReplicaPair pair = MakeInstance(1 << 12, 2, n, k, 1.0, 11);
  const ProtocolContext ctx = Context(1 << 12, 2, 12);
  MlshParams params = Params(k);
  params.family = MlshKind::kGridL1;
  params.metric = Metric::kL1;
  MlshReconciler protocol(ctx, params);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL1);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL1);
  EXPECT_LT(after, before);
}

TEST(MlshReconcilerTest, SizePreservedAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const ReplicaPair pair = MakeInstance(1 << 12, 2, 80, 3, 1.0, seed);
    const ProtocolContext ctx = Context(1 << 12, 2, seed * 31);
    MlshReconciler protocol(ctx, Params(3));
    transport::Channel channel;
    const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
    if (result.success) {
      EXPECT_EQ(result.bob_final.size(), 80u);
      for (const Point& p : result.bob_final) {
        EXPECT_TRUE(ctx.universe.Contains(p));
      }
    }
  }
}

TEST(MlshReconcilerTest, HighDimensionalInstance) {
  // d = 16 — where the LSH variant is meant to shine (value payload is a
  // point, level count independent of d·log Δ).
  const size_t n = 96, k = 3;
  const ReplicaPair pair = MakeInstance(1 << 8, 16, n, k, 1.0, 13);
  const ProtocolContext ctx = Context(1 << 8, 16, 14);
  MlshParams params = Params(k);
  params.width = 64.0;
  MlshReconciler protocol(ctx, params);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace lshrecon
}  // namespace rsr
