#include "gaprecon/gap_recon.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace rsr {
namespace gaprecon {
namespace {

using recon::ProtocolContext;
using workload::CloudSpec;
using workload::MakeReplicaPair;
using workload::NoiseKind;
using workload::PerturbationSpec;
using workload::ReplicaPair;

ProtocolContext Context(int64_t delta, int d, uint64_t seed = 7) {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(delta, d);
  ctx.seed = seed;
  return ctx;
}

// Alice = noisy copy of Bob's cloud plus `far_points` fresh uniform points.
ReplicaPair MakeInstance(int64_t delta, int d, size_t n, size_t far_points,
                         double noise, uint64_t seed = 3) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(delta, d);
  cloud.n = n;
  PerturbationSpec spec;
  spec.noise = noise > 0 ? NoiseKind::kUniformBox : NoiseKind::kNone;
  spec.noise_scale = noise;
  spec.outliers = far_points;
  return MakeReplicaPair(cloud, spec, seed);
}

TEST(GapParamsTest, DerivedQuantities) {
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 64.0;
  params.metric = Metric::kL1;
  EXPECT_DOUBLE_EQ(params.EffectiveR2(4), 64.0);
  EXPECT_DOUBLE_EQ(params.CellSide(4), 16.0);  // r2 / d
  EXPECT_DOUBLE_EQ(params.RhoHat(4), 2.0 * 4 / 64.0);
  // Default r2 derivation.
  GapParams defaulted;
  defaulted.r1 = 3.0;
  EXPECT_DOUBLE_EQ(defaulted.EffectiveR2(2), 4.0 * 3.0 * 2);
}

TEST(GapParamsTest, RhoHatSaturates) {
  GapParams params;
  params.r1 = 100.0;
  params.r2 = 101.0;
  EXPECT_LT(params.RhoHat(8), 1.0);
}

TEST(GapReconcilerTest, IdenticalSetsTransmitNothing) {
  const ReplicaPair pair = MakeInstance(1 << 16, 2, 200, 0, 0.0);
  const ProtocolContext ctx = Context(1 << 16, 2);
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 64.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.transmitted, 0u);
  EXPECT_EQ(result.bob_final.size(), pair.bob.size());
}

TEST(GapReconcilerTest, GuaranteeHoldsWithFarPoints) {
  const size_t n = 300, far = 10;
  const ReplicaPair pair = MakeInstance(1 << 16, 2, n, far, 1.0, 5);
  const ProtocolContext ctx = Context(1 << 16, 2, 6);
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 128.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(SatisfiesGapGuarantee(pair.alice, result.bob_final, params,
                                    ctx.universe.d));
  // All far points must have been transmitted; noise straddlers may add a
  // few more, but nothing near n.
  EXPECT_GE(result.transmitted, 1u);
  EXPECT_LT(result.transmitted, n / 4);
}

TEST(GapReconcilerTest, NearPointsAreMostlyNotTransmitted) {
  // Pure noise (within r1), no far points: transmission should be a small
  // fraction (straddler probability rho-hat^h is tiny by construction).
  const size_t n = 400;
  const ReplicaPair pair = MakeInstance(1 << 16, 2, n, 0, 1.0, 7);
  const ProtocolContext ctx = Context(1 << 16, 2, 8);
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 128.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_LE(result.transmitted, n / 20);
}

TEST(GapReconcilerTest, GuaranteeAcrossSeedsAndDims) {
  for (int d : {1, 2, 3}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const ReplicaPair pair = MakeInstance(1 << 14, d, 150, 5, 1.0, seed);
      const ProtocolContext ctx = Context(1 << 14, d, seed * 13);
      GapParams params;
      params.r1 = 2.0;
      params.r2 = 64.0 * d;
      GapReconciler protocol(ctx, params);
      transport::Channel channel;
      const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
      ASSERT_TRUE(result.success) << "d=" << d << " seed=" << seed;
      EXPECT_TRUE(SatisfiesGapGuarantee(pair.alice, result.bob_final, params,
                                        d))
          << "d=" << d << " seed=" << seed;
    }
  }
}

TEST(GapReconcilerTest, CommunicationBeatsFullTransferForSmallK) {
  const size_t n = 3000, far = 8;
  const ReplicaPair pair = MakeInstance(1 << 20, 2, n, far, 1.0, 9);
  const ProtocolContext ctx = Context(1 << 20, 2, 10);
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 512.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  const size_t full_bits = n * 2 * 20;
  EXPECT_LT(channel.stats().total_bits, full_bits);
}

TEST(GapReconcilerTest, UsesThreeRounds) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 100, 3, 0.0, 11);
  const ProtocolContext ctx = Context(1 << 12, 2, 12);
  GapParams params;
  params.r1 = 1.0;
  params.r2 = 32.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(channel.stats().rounds, 3u);  // A->B, B->A, A->B
}

TEST(GapReconcilerTest, BobNeverLosesPoints) {
  const ReplicaPair pair = MakeInstance(1 << 14, 2, 200, 6, 1.0, 13);
  const ProtocolContext ctx = Context(1 << 14, 2, 14);
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 96.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  ASSERT_GE(result.bob_final.size(), pair.bob.size());
  for (size_t i = 0; i < pair.bob.size(); ++i) {
    EXPECT_EQ(result.bob_final[i], pair.bob[i]);
  }
}

TEST(GapReconcilerTest, ExplicitFunctionCountRespected) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 80, 2, 0.0, 15);
  const ProtocolContext ctx = Context(1 << 12, 2, 16);
  GapParams params;
  params.r1 = 1.0;
  params.r2 = 64.0;
  params.num_functions = 4;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(SatisfiesGapGuarantee(pair.alice, result.bob_final, params,
                                    2));
}

// Coverage-vs-gap sweep: with a generous gap (r2 >> r1 d) the protocol
// transmits almost exactly the planted far points.
class GapPrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(GapPrecisionSweep, TransmitsRoughlyThePlantedFarPoints) {
  const size_t far = static_cast<size_t>(GetParam());
  const size_t n = 500;
  const ReplicaPair pair = MakeInstance(1 << 18, 2, n, far, 1.0,
                                        17 + far);
  const ProtocolContext ctx = Context(1 << 18, 2, 18 + far);
  GapParams params;
  params.r1 = 2.0;
  params.r2 = 1024.0;
  GapReconciler protocol(ctx, params);
  transport::Channel channel;
  const GapResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_TRUE(SatisfiesGapGuarantee(pair.alice, result.bob_final, params,
                                    2));
  // Some planted "far" points may by chance land near the cloud, so allow
  // slack downward; upward slack covers rho-hat straddlers.
  EXPECT_LE(result.transmitted, far + n / 25 + 2);
}

INSTANTIATE_TEST_SUITE_P(FarCounts, GapPrecisionSweep,
                         ::testing::Values(0, 4, 16, 48));

}  // namespace
}  // namespace gaprecon
}  // namespace rsr
