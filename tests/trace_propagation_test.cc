// Cross-node trace propagation (DESIGN.md §12): trace context rides
// "@hello"/"@log-fetch"/"@pull" as an optional trailing field, both hosts
// adopt it into their session spans (JSONL lines join on the trace id),
// replica rounds link the traces of the mutations they carry and measure
// append→apply lag against the injectable clock, and the sampling policy
// keeps error spans while shedding clean fast sessions.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_stream.h"
#include "net/pipe_stream.h"
#include "net/tcp.h"
#include "obs/clock.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "replica/replica_node.h"
#include "server/async_sync_server.h"
#include "server/handshake.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rsr {
namespace {

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 77;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet Cloud(size_t n, uint64_t seed) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(seed);
  return workload::GenerateCloud(spec, &rng);
}

/// Value of a `"key":"value"` string field in a span's JSON line (""
/// when absent) — string matching is all these joins need.
std::string JsonField(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

/// First emitted line of the given span kind ("" when none).
std::string FindSpan(const std::vector<std::string>& lines,
                     const std::string& kind) {
  for (const std::string& line : lines) {
    if (JsonField(line, "span") == kind) return line;
  }
  return "";
}

bool Eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(TraceWireTest, HandshakeFramesRoundTripTraceContext) {
  obs::TraceContext ctx;
  ctx.trace_hi = 0x1122334455667788ULL;
  ctx.trace_lo = 0x99aabbccddeeff00ULL;
  ctx.span_id = 0x0123456789abcdefULL;

  server::HelloFrame hello;
  hello.protocol = "quadtree";
  hello.client_set_size = 5;
  hello.trace = ctx;
  server::HelloFrame hello_out;
  ASSERT_TRUE(server::DecodeHello(server::EncodeHello(hello), &hello_out));
  EXPECT_EQ(hello_out.trace.trace_hi, ctx.trace_hi);
  EXPECT_EQ(hello_out.trace.trace_lo, ctx.trace_lo);
  EXPECT_EQ(hello_out.trace.span_id, ctx.span_id);

  // Absent context decodes as the invalid all-zero value (the old-peer
  // wire shape), not stale or padding-misread ids.
  server::HelloFrame plain;
  plain.protocol = "quadtree";
  server::HelloFrame plain_out;
  plain_out.trace = ctx;  // must be overwritten, not left stale
  ASSERT_TRUE(server::DecodeHello(server::EncodeHello(plain), &plain_out));
  EXPECT_FALSE(plain_out.trace.valid());

  server::LogFetchFrame fetch;
  fetch.from_seq = 3;
  fetch.trace = ctx;
  server::LogFetchFrame fetch_out;
  ASSERT_TRUE(
      server::DecodeLogFetch(server::EncodeLogFetch(fetch), &fetch_out));
  EXPECT_EQ(fetch_out.trace.trace_lo, ctx.trace_lo);

  server::PullFrame pull;
  pull.protocol = "riblt-oneshot";
  pull.trace = ctx;
  server::PullFrame pull_out;
  ASSERT_TRUE(server::DecodePull(server::EncodePull(pull), &pull_out));
  EXPECT_EQ(pull_out.trace.span_id, ctx.span_id);
}

TEST(TracePropagationTest, ClientAndThreadedHostShareOneTraceOverPipe) {
  obs::VectorTraceSink server_sink;
  obs::VectorTraceSink client_sink;
  server::SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.trace_sink = &server_sink;
  server_options.trace_seed = 11;
  server::SyncServer host(Cloud(48, 1), server_options);

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  client_options.trace_sink = &client_sink;
  client_options.propagate_trace = true;
  client_options.trace_seed = 7;
  const server::SyncClient client(client_options);

  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread serve([&host, end = std::move(server_end)]() mutable {
    host.ServeConnection(end.get());
  });
  const server::SyncOutcome outcome =
      client.Sync(client_end.get(), "full-transfer", Cloud(24, 2));
  serve.join();
  ASSERT_TRUE(outcome.result.success) << outcome.error_detail;

  // The outcome surfaces the minted root trace id...
  ASSERT_NE(outcome.trace_hi | outcome.trace_lo, 0u);
  const std::string want_trace =
      obs::TraceIdHex(outcome.trace_hi, outcome.trace_lo);

  // ...and both spans carry it: same trace id, the server naming the
  // client's span as its parent, each with a distinct span id.
  const std::string client_span = FindSpan(client_sink.lines(), "sync-client");
  const std::string server_span =
      FindSpan(server_sink.lines(), "sync-session");
  ASSERT_FALSE(client_span.empty());
  ASSERT_FALSE(server_span.empty());
  EXPECT_EQ(JsonField(client_span, "trace"), want_trace);
  EXPECT_EQ(JsonField(server_span, "trace"), want_trace);
  EXPECT_EQ(JsonField(server_span, "parent"),
            JsonField(client_span, "span_id"));
  EXPECT_EQ(JsonField(client_span, "parent"), "");  // the client is the root
  EXPECT_NE(JsonField(server_span, "span_id"),
            JsonField(client_span, "span_id"));
}

TEST(TracePropagationTest, ClientAndAsyncHostShareOneTraceOverTcp) {
  obs::VectorTraceSink server_sink;
  obs::VectorTraceSink client_sink;
  server::AsyncSyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.shards = 1;
  server_options.trace_sink = &server_sink;
  server::AsyncSyncServer host(Cloud(48, 1), server_options);
  ASSERT_TRUE(host.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  client_options.trace_sink = &client_sink;
  client_options.propagate_trace = true;
  client_options.trace_seed = 7;
  const server::SyncClient client(client_options);
  auto stream = net::TcpStream::Connect("127.0.0.1", host.port());
  ASSERT_NE(stream, nullptr);
  const server::SyncOutcome outcome =
      client.Sync(stream.get(), "full-transfer", Cloud(24, 2));
  ASSERT_TRUE(outcome.result.success) << outcome.error_detail;
  ASSERT_TRUE(Eventually([&server_sink] {
    return !FindSpan(server_sink.lines(), "sync-session").empty();
  }));
  host.Stop();

  const std::string want_trace =
      obs::TraceIdHex(outcome.trace_hi, outcome.trace_lo);
  const std::string client_span = FindSpan(client_sink.lines(), "sync-client");
  const std::string server_span =
      FindSpan(server_sink.lines(), "sync-session");
  EXPECT_EQ(JsonField(client_span, "trace"), want_trace);
  EXPECT_EQ(JsonField(server_span, "trace"), want_trace);
  EXPECT_EQ(JsonField(server_span, "parent"),
            JsonField(client_span, "span_id"));
}

TEST(TracePropagationTest, UntracedHelloStillGetsMintedRootSpan) {
  // Old-peer compatibility: a client shipping no context (the pre-trace
  // wire shape) still yields a server span — with a freshly minted root
  // trace and no parent. Emitted, just unlinked.
  obs::VectorTraceSink sink;
  server::SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.trace_sink = &sink;
  options.trace_seed = 13;
  server::SyncServer host(Cloud(48, 1), options);

  server::SyncClientOptions client_options;  // propagate_trace stays false
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread serve([&host, end = std::move(server_end)]() mutable {
    host.ServeConnection(end.get());
  });
  const server::SyncOutcome outcome =
      client.Sync(client_end.get(), "full-transfer", Cloud(24, 2));
  serve.join();
  ASSERT_TRUE(outcome.result.success) << outcome.error_detail;
  EXPECT_EQ(outcome.trace_hi | outcome.trace_lo, 0u);

  const std::string span = FindSpan(sink.lines(), "sync-session");
  ASSERT_FALSE(span.empty());
  EXPECT_EQ(JsonField(span, "trace").size(), 32u);
  EXPECT_EQ(JsonField(span, "parent"), "");
}

TEST(TraceSamplingTest, RateZeroDropsCleanSessionsButKeepsErrors) {
  obs::VectorTraceSink sink;
  server::SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.trace_sink = &sink;
  options.trace_sampling.sample_rate = 0.0;  // shed everything sheddable
  server::SyncServer host(Cloud(48, 1), options);

  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const server::SyncClient client(client_options);

  // Clean session: the policy sheds the span and the drop is accounted.
  {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    std::thread serve([&host, end = std::move(server_end)]() mutable {
      host.ServeConnection(end.get());
    });
    const server::SyncOutcome ok =
        client.Sync(client_end.get(), "full-transfer", Cloud(24, 2));
    serve.join();
    ASSERT_TRUE(ok.result.success) << ok.error_detail;
  }
  EXPECT_TRUE(sink.lines().empty());
  EXPECT_EQ(host.metrics_registry().CounterValue("rsr_trace_spans_total",
                                                 {{"decision", "dropped"}}),
            1u);

  // Faulted session: the server-side stream dies mid-exchange, the span's
  // outcome is not "ok", and error spans bypass the sampling rate.
  {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    net::FaultOptions faults;
    faults.close_after_bytes = 64;
    auto faulty =
        std::make_unique<net::FaultyStream>(std::move(server_end), faults);
    std::thread serve([&host, end = std::move(faulty)]() mutable {
      host.ServeConnection(end.get());
    });
    const server::SyncOutcome failed =
        client.Sync(client_end.get(), "full-transfer", Cloud(24, 2));
    serve.join();
    EXPECT_FALSE(failed.result.success);
  }
  ASSERT_EQ(sink.lines().size(), 1u);
  EXPECT_NE(JsonField(sink.lines()[0], "outcome"), "ok");
  EXPECT_EQ(host.metrics_registry().CounterValue("rsr_trace_spans_total",
                                                 {{"decision", "emitted"}}),
            1u);
}

replica::ReplicaNodeOptions NodeOptions(const std::string& name,
                                        obs::Clock* clock,
                                        obs::TraceSink* sink) {
  replica::ReplicaNodeOptions options;
  options.server.context = Ctx();
  options.server.params = Params();
  options.server.clock = clock;
  options.server.trace_sink = sink;
  options.changelog.capacity = 64;
  options.node_name = name;
  return options;
}

/// Dials a fresh pipe to `peer`'s host, serving it on a remembered thread.
replica::StreamFactory PipeTo(replica::ReplicaNode* peer,
                              std::vector<std::thread>* serve_threads) {
  return [peer, serve_threads]() -> std::unique_ptr<net::ByteStream> {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    serve_threads->emplace_back(
        [peer, end = std::move(server_end)]() mutable {
          peer->host().ServeConnection(end.get());
        });
    return std::move(client_end);
  };
}

void JoinAll(std::vector<std::thread>* serve_threads) {
  for (std::thread& t : *serve_threads) t.join();
  serve_threads->clear();
}

TEST(ReplicationLagTest, TailApplyMeasuresAppendToApplyDelay) {
  // One fake clock shared by writer and follower — the deterministic
  // clock domain the lag telemetry is defined against.
  obs::FakeClock clock(1'000'000);
  obs::VectorTraceSink writer_sink;
  obs::VectorTraceSink follower_sink;
  const PointSet seed_set = Cloud(64, 5);
  replica::ReplicaNode writer(seed_set,
                              NodeOptions("node0", &clock, &writer_sink));
  replica::ReplicaNode follower(
      seed_set, NodeOptions("node1", &clock, &follower_sink));

  // A traced client mutation: the journaled entry carries the trace id
  // and the append-time clock stamp.
  obs::TraceContext mutation;
  mutation.trace_hi = 0xaaaaaaaaaaaaaaaaULL;
  mutation.trace_lo = 0xbbbbbbbbbbbbbbbbULL;
  mutation.span_id = 0xccccccccccccccccULL;
  writer.Apply(Cloud(2, 6), PointSet{}, mutation);

  // The entry reaches the follower 250ms (fake) later.
  clock.Advance(250'000);
  std::vector<std::thread> serve_threads;
  const replica::RoundRecord round =
      follower.SyncWithPeer(PipeTo(&writer, &serve_threads), "node0");
  JoinAll(&serve_threads);
  ASSERT_EQ(round.path, replica::RoundRecord::Path::kTail)
      << round.error_detail;
  ASSERT_EQ(round.entries_applied, 1u);

  // The per-peer lag histogram observed exactly the fake 250ms...
  const obs::MetricsRegistry& registry = follower.host().metrics_registry();
  const auto lag = registry.SnapshotHistogram(
      "rsr_replica_propagation_lag_seconds", {{"peer", "node0"}});
  ASSERT_TRUE(lag.has_value());
  EXPECT_EQ(lag->count, 1u);
  EXPECT_NEAR(lag->sum, 0.25, 1e-9);
  // ...the staleness gauge holds the newest applied entry's age in
  // microseconds...
  EXPECT_EQ(registry.GaugeValue("rsr_replica_peer_staleness_micros",
                                {{"peer", "node0"}}),
            250'000);
  // ...and the convergence watermark reached the writer's position.
  EXPECT_EQ(registry.GaugeValue("rsr_replica_convergence_watermark"),
            static_cast<int64_t>(writer.applied_seq()));

  // The follower's round span links the mutation's trace...
  const std::string round_span =
      FindSpan(follower_sink.lines(), "replica-round");
  ASSERT_FALSE(round_span.empty());
  EXPECT_EQ(JsonField(round_span, "attr.node"), "node1");
  EXPECT_EQ(JsonField(round_span, "attr.peer"), "node0");
  EXPECT_EQ(JsonField(round_span, "attr.path"), "tail");
  EXPECT_NE(round_span.find(
                obs::TraceIdHex(mutation.trace_hi, mutation.trace_lo)),
            std::string::npos)
      << round_span;

  // ...and the writer-side "@log-fetch" session span joins the round's
  // trace: same trace id, parented on the round's span.
  const std::string fetch_span = FindSpan(writer_sink.lines(), "sync-session");
  ASSERT_FALSE(fetch_span.empty());
  EXPECT_NE(JsonField(round_span, "trace"), "");
  EXPECT_EQ(JsonField(fetch_span, "trace"), JsonField(round_span, "trace"));
  EXPECT_EQ(JsonField(fetch_span, "parent"),
            JsonField(round_span, "span_id"));
}

TEST(DirtyPeerTest, TailFromDirtyPeerFallsBackToRepair) {
  // PR 6 soundness-gap regression: a dirty peer's changelog tail no
  // longer describes its actual set, so a clean puller must repair toward
  // the peer's set instead of tail-replaying — even when the tail is
  // available.
  const PointSet seed_set = Cloud(64, 5);
  replica::ReplicaNodeOptions options =
      NodeOptions("peer", nullptr, nullptr);
  replica::ReplicaNode peer(seed_set, options);
  replica::ReplicaNode puller(seed_set, options);

  // Two journaled batches, then an off-log install: the peer's set gains
  // a point its changelog never recorded, and the host goes dirty.
  workload::ChurnSpec churn;
  churn.fraction = 0.0;  // min_updates floors it: one replacement per batch
  churn.min_updates = 1;
  Rng rng(3);
  for (int i = 0; i < 2; ++i) {
    const workload::ChurnBatch batch = workload::MakeChurnBatch(
        peer.points(), Ctx().universe, churn, &rng);
    peer.Apply(batch.inserts, batch.erases);
  }
  peer.host().InstallRepair(Cloud(1, 99), PointSet{}, peer.applied_seq(),
                            /*exact=*/false);
  ASSERT_TRUE(peer.dirty());

  // The puller (clean, at seq 0, ring capacity 64) would find the whole
  // tail available; without the "@log-batch" dirty bit it would replay it
  // and silently diverge from the peer's actual set.
  std::vector<std::thread> serve_threads;
  const replica::RoundRecord round =
      puller.SyncWithPeer(PipeTo(&peer, &serve_threads), "peer");
  JoinAll(&serve_threads);

  EXPECT_NE(round.path, replica::RoundRecord::Path::kTail)
      << "unsound tail replay from a dirty peer";
  EXPECT_TRUE(round.ok) << round.error_detail;
  EXPECT_EQ(replica::SetDivergence(puller.points(), peer.points()), 0u);
  // Pulling from a dirty peer is never an exact install: the puller must
  // itself stay off the tail path until an exact repair lands.
  EXPECT_TRUE(round.dirty_after);
}

}  // namespace
}  // namespace rsr
