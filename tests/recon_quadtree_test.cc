#include "recon/quadtree_recon.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "recon/evaluate.h"
#include "workload/generator.h"

namespace rsr {
namespace recon {
namespace {

using workload::CloudSpec;
using workload::MakeReplicaPair;
using workload::NoiseKind;
using workload::PerturbationSpec;
using workload::ReplicaPair;

ProtocolContext Context(int64_t delta, int d, uint64_t seed = 7) {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(delta, d);
  ctx.seed = seed;
  return ctx;
}

QuadtreeParams Params(size_t k) {
  QuadtreeParams p;
  p.k = k;
  return p;
}

ReplicaPair MakeInstance(int64_t delta, int d, size_t n, size_t k,
                         double noise, uint64_t seed = 3) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(delta, d);
  cloud.n = n;
  cloud.shape = workload::CloudShape::kUniform;
  PerturbationSpec spec;
  spec.noise = noise > 0 ? NoiseKind::kGaussian : NoiseKind::kNone;
  spec.noise_scale = noise;
  spec.outliers = k;
  return MakeReplicaPair(cloud, spec, seed);
}

TEST(HistogramEntryTest, KeyAndValueRoundTrip) {
  const Universe u = MakeUniverse(1 << 10, 2);
  const ShiftedGrid grid(u, 5);
  const size_t n = 100;
  for (int level : {0, 3, 7, 10}) {
    const Cell cell = grid.CellOf({123, 456}, level);
    for (int64_t count : {int64_t{1}, int64_t{7}, int64_t{100}}) {
      IbltEntry raw;
      raw.key = HistogramEntryKey(grid, cell, level, count);
      raw.value = HistogramEntryValue(grid, cell, level, count, n);
      raw.sign = 1;
      LevelDiffEntry parsed;
      ASSERT_TRUE(ParseHistogramEntry(grid, level, n, raw, &parsed));
      EXPECT_EQ(parsed.cell, cell);
      EXPECT_EQ(parsed.count, count);
      EXPECT_EQ(parsed.sign, 1);
    }
  }
}

TEST(HistogramEntryTest, CountZeroOrTooLargeRejected) {
  const Universe u = MakeUniverse(1 << 8, 1);
  const ShiftedGrid grid(u, 6);
  const Cell cell = grid.CellOf({10}, 2);
  IbltEntry raw;
  raw.key = HistogramEntryKey(grid, cell, 2, 5);
  raw.value = HistogramEntryValue(grid, cell, 2, 5, /*n=*/4);  // count > n
  LevelDiffEntry parsed;
  EXPECT_FALSE(ParseHistogramEntry(grid, 2, 4, raw, &parsed));
}

TEST(HistogramEntryTest, KeyMismatchRejected) {
  const Universe u = MakeUniverse(1 << 8, 1);
  const ShiftedGrid grid(u, 7);
  const Cell cell = grid.CellOf({10}, 2);
  IbltEntry raw;
  raw.key = 12345;  // inconsistent with the payload
  raw.value = HistogramEntryValue(grid, cell, 2, 3, 100);
  LevelDiffEntry parsed;
  EXPECT_FALSE(ParseHistogramEntry(grid, 2, 100, raw, &parsed));
}

TEST(RepairBobTest, AddsAndRemovesPerDelta) {
  const Universe u = MakeUniverse(1 << 8, 2);
  const ShiftedGrid grid(u, 8);
  const int level = 4;
  // Bob has three points in one cell; Alice (per diff) has one there plus
  // two in a cell Bob does not occupy.
  // Identical points trivially share every cell, making the construction
  // deterministic regardless of the random shift.
  const Point b1 = {100, 100};
  const Point b2 = {100, 100};
  const Point b3 = {100, 100};
  const Cell bob_cell = grid.CellOf(b1, level);
  const Point far = {200, 30};
  const Cell alice_cell = grid.CellOf(far, level);

  std::vector<LevelDiffEntry> diff;
  diff.push_back({bob_cell, 1, +1});   // Alice count 1
  diff.push_back({bob_cell, 3, -1});   // Bob count 3
  diff.push_back({alice_cell, 2, +1}); // Alice-only cell with 2 points

  const PointSet repaired = RepairBob(grid, {b1, b2, b3}, level, diff);
  EXPECT_EQ(repaired.size(), 3u);  // -2 +2
  // Exactly one of Bob's original points survives.
  int original = 0, added = 0;
  for (const Point& p : repaired) {
    if (p == b1 || p == b2 || p == b3) {
      ++original;
    } else {
      EXPECT_EQ(grid.CellOf(p, level), alice_cell);
      ++added;
    }
  }
  EXPECT_EQ(original, 1);
  EXPECT_EQ(added, 2);
}

TEST(QuadtreeReconcilerTest, IdenticalSetsDecodeAtLevelZero) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 200, 0, 0.0);
  const ProtocolContext ctx = Context(1 << 12, 2);
  QuadtreeReconciler protocol(ctx, Params(8));
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.chosen_level, 0);
  EXPECT_EQ(result.decoded_entries, 0u);
  // S'_B is exactly Bob's (== Alice's up to permutation) set.
  EXPECT_EQ(ExactEmd(pair.alice, result.bob_final, Metric::kL2), 0.0);
}

TEST(QuadtreeReconcilerTest, PureOutliersAreRecovered) {
  // No noise, only k outliers: the protocol should decode at level 0 and
  // repair exactly — final EMD 0 (level-0 representatives are the points
  // themselves).
  const size_t k = 6;
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 300, k, 0.0);
  const ProtocolContext ctx = Context(1 << 12, 2);
  QuadtreeReconciler protocol(ctx, Params(k));
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.chosen_level, 0);
  EXPECT_EQ(result.bob_final.size(), 300u);
  EXPECT_EQ(ExactEmd(pair.alice, result.bob_final, Metric::kL2), 0.0);
}

TEST(QuadtreeReconcilerTest, NoiseOnlyImprovesNothingButSucceeds) {
  // Noise below the relevant scale with zero outliers: some level decodes
  // and the repair must not make things worse by more than the cell bound.
  const ReplicaPair pair = MakeInstance(1 << 14, 2, 256, 0, 2.0, 11);
  const ProtocolContext ctx = Context(1 << 14, 2, 12);
  QuadtreeReconciler protocol(ctx, Params(8));
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bob_final.size(), 256u);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  // Repairing at level ℓ* can move points by at most a cell diameter per
  // differing pair; sanity-bound the blow-up.
  EXPECT_LE(after, before + 16.0 * result.decoded_entries *
                                static_cast<double>(
                                    int64_t{1} << result.chosen_level));
}

TEST(QuadtreeReconcilerTest, NoiseAndOutliersReduceEmdSubstantially) {
  const size_t n = 256, k = 8;
  const ReplicaPair pair = MakeInstance(1 << 16, 2, n, k, 2.0, 13);
  const ProtocolContext ctx = Context(1 << 16, 2, 14);
  QuadtreeReconciler protocol(ctx, Params(k));
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bob_final.size(), n);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  // Outliers dominate EMD before; repair should reclaim most of it.
  EXPECT_LT(after, before * 0.5);
}

TEST(QuadtreeReconcilerTest, SizeAlwaysPreserved) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const ReplicaPair pair = MakeInstance(1 << 12, 3, 128, 5, 1.5, seed);
    const ProtocolContext ctx = Context(1 << 12, 3, seed * 17);
    QuadtreeReconciler protocol(ctx, Params(5));
    transport::Channel channel;
    const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
    if (result.success) {
      EXPECT_EQ(result.bob_final.size(), 128u);
      for (const Point& p : result.bob_final) {
        EXPECT_TRUE(ctx.universe.Contains(p));
      }
    }
  }
}

TEST(QuadtreeReconcilerTest, OneRoundOnly) {
  const ReplicaPair pair = MakeInstance(1 << 10, 2, 64, 3, 1.0);
  const ProtocolContext ctx = Context(1 << 10, 2);
  QuadtreeReconciler protocol(ctx, Params(3));
  transport::Channel channel;
  (void)protocol.Run(pair.alice, pair.bob, &channel);
  EXPECT_EQ(channel.stats().rounds, 1u);
  EXPECT_EQ(channel.stats().message_count, 1u);
  EXPECT_EQ(channel.stats().bob_to_alice_bits, 0u);
}

TEST(QuadtreeReconcilerTest, CommunicationIndependentOfN) {
  // One-shot quadtree communication depends on k and Δ, not on n.
  const ProtocolContext ctx = Context(1 << 12, 2);
  size_t bits_small = 0, bits_large = 0;
  {
    const ReplicaPair pair = MakeInstance(1 << 12, 2, 64, 4, 1.0);
    transport::Channel channel;
    QuadtreeReconciler(ctx, Params(4)).Run(pair.alice, pair.bob, &channel);
    bits_small = channel.stats().total_bits;
  }
  {
    const ReplicaPair pair = MakeInstance(1 << 12, 2, 1024, 4, 1.0);
    transport::Channel channel;
    QuadtreeReconciler(ctx, Params(4)).Run(pair.alice, pair.bob, &channel);
    bits_large = channel.stats().total_bits;
  }
  // Value payloads include a count field of width log2(n+1), so allow a
  // modest growth, but nothing close to 16x.
  EXPECT_LT(static_cast<double>(bits_large),
            1.5 * static_cast<double>(bits_small));
}

TEST(QuadtreeReconcilerTest, LevelRestrictionForcesCoarser) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 128, 4, 0.0, 21);
  const ProtocolContext ctx = Context(1 << 12, 2, 22);
  QuadtreeParams p = Params(4);
  p.min_level = 5;
  QuadtreeReconciler protocol(ctx, p);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_GE(result.chosen_level, 5);
}

TEST(AdaptiveQuadtreeTest, MatchesOneShotQualityWithFewerIbltBits) {
  const size_t n = 256, k = 8;
  const ReplicaPair pair = MakeInstance(1 << 16, 2, n, k, 2.0, 23);
  const ProtocolContext ctx = Context(1 << 16, 2, 24);

  transport::Channel oneshot_channel, adaptive_channel;
  const ReconResult oneshot =
      QuadtreeReconciler(ctx, Params(k))
          .Run(pair.alice, pair.bob, &oneshot_channel);
  const ReconResult adaptive =
      AdaptiveQuadtreeReconciler(ctx, Params(k))
          .Run(pair.alice, pair.bob, &adaptive_channel);
  ASSERT_TRUE(oneshot.success);
  ASSERT_TRUE(adaptive.success);
  EXPECT_EQ(adaptive.bob_final.size(), n);

  const double emd_oneshot =
      ExactEmd(pair.alice, oneshot.bob_final, Metric::kL2);
  const double emd_adaptive =
      ExactEmd(pair.alice, adaptive.bob_final, Metric::kL2);
  const double emd_before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  EXPECT_LT(emd_adaptive, emd_before);
  EXPECT_LT(emd_oneshot, emd_before);
}

TEST(AdaptiveQuadtreeTest, UsesMultipleRounds) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 128, 4, 1.0, 25);
  const ProtocolContext ctx = Context(1 << 12, 2, 26);
  transport::Channel channel;
  const ReconResult result = AdaptiveQuadtreeReconciler(ctx, Params(4))
                                 .Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_GE(channel.stats().rounds, 3u);  // strata, request, iblt
  EXPECT_GT(channel.stats().bob_to_alice_bits, 0u);
}

TEST(EvaluateProtocolTest, MeasuresEverything) {
  const size_t n = 128, k = 4;
  const ReplicaPair pair = MakeInstance(1 << 12, 2, n, k, 1.0, 31);
  const ProtocolContext ctx = Context(1 << 12, 2, 32);
  QuadtreeReconciler protocol(ctx, Params(k));
  EvaluateOptions options;
  options.metric = Metric::kL2;
  options.k = k;
  const Evaluation eval =
      EvaluateProtocol(protocol, pair.alice, pair.bob, options);
  EXPECT_EQ(eval.protocol, "quadtree");
  EXPECT_TRUE(eval.success);
  EXPECT_GT(eval.comm_bits, 0u);
  EXPECT_EQ(eval.rounds, 1u);
  EXPECT_GE(eval.emd_before, eval.emd_k);
  EXPECT_GT(eval.ratio_vs_emdk, 0.0);
  EXPECT_GE(eval.wall_seconds, 0.0);
}

// Approximation-quality sweep: across dimensions, the achieved EMD must be
// within a (generous) O(d log n)-flavoured factor of EMD_k.
class QuadtreeQualitySweep : public ::testing::TestWithParam<int> {};

TEST_P(QuadtreeQualitySweep, RatioBounded) {
  const int d = GetParam();
  const size_t n = 128, k = 4;
  const ReplicaPair pair = MakeInstance(1 << 10, d, n, k, 1.0, 40 + d);
  const ProtocolContext ctx = Context(1 << 10, d, 41 + d);
  QuadtreeReconciler protocol(ctx, Params(k));
  EvaluateOptions options;
  options.metric = Metric::kL2;
  options.k = k;
  const Evaluation eval =
      EvaluateProtocol(protocol, pair.alice, pair.bob, options);
  ASSERT_TRUE(eval.success);
  // The theory gives O(d) (up to constants and EMD_k granularity); allow a
  // wide constant so the test is robust to unlucky shifts while still
  // catching broken repairs (which blow up by orders of magnitude).
  const double bound =
      64.0 * static_cast<double>(d) *
      std::max(eval.emd_k, static_cast<double>(d));
  EXPECT_LE(eval.emd_after, std::max(bound, eval.emd_before));
}

INSTANTIATE_TEST_SUITE_P(Dims, QuadtreeQualitySweep,
                         ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace recon
}  // namespace rsr
