#include "geometry/metric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rsr {
namespace {

TEST(MetricTest, KnownDistances) {
  const Point a = {0, 0};
  const Point b = {3, 4};
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kL1), 7.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kL2), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kLinf), 4.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kHamming), 2.0);
}

TEST(MetricTest, HammingCountsDifferingCoords) {
  EXPECT_DOUBLE_EQ(Distance({1, 2, 3}, {1, 5, 3}, Metric::kHamming), 1.0);
  EXPECT_DOUBLE_EQ(Distance({1, 2, 3}, {1, 2, 3}, Metric::kHamming), 0.0);
  EXPECT_DOUBLE_EQ(Distance({0, 0, 0}, {1, 1, 1}, Metric::kHamming), 3.0);
}

TEST(MetricTest, IntegerHelpers) {
  EXPECT_EQ(DistanceL1({1, -2}, {4, 2}), 7);
  EXPECT_EQ(DistanceL2Squared({0, 0}, {3, 4}), 25);
}

class MetricAxiomsTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricAxiomsTest, AxiomsOnRandomPoints) {
  const Metric metric = GetParam();
  Rng rng(42);
  for (int trial = 0; trial < 300; ++trial) {
    const int d = 1 + static_cast<int>(rng.Below(6));
    auto random_point = [&] {
      Point p(static_cast<size_t>(d));
      for (auto& c : p) c = rng.Uniform(-50, 50);
      return p;
    };
    const Point x = random_point(), y = random_point(), z = random_point();

    // Identity of indiscernibles (one direction) and non-negativity.
    EXPECT_DOUBLE_EQ(Distance(x, x, metric), 0.0);
    EXPECT_GE(Distance(x, y, metric), 0.0);
    // Symmetry.
    EXPECT_DOUBLE_EQ(Distance(x, y, metric), Distance(y, x, metric));
    // Triangle inequality (allow tiny float slack for L2).
    EXPECT_LE(Distance(x, z, metric),
              Distance(x, y, metric) + Distance(y, z, metric) + 1e-9);
  }
}

TEST_P(MetricAxiomsTest, PositiveForDistinctPoints) {
  const Metric metric = GetParam();
  EXPECT_GT(Distance({0, 0, 0}, {0, 0, 1}, metric), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(Metric::kL1, Metric::kL2,
                                           Metric::kLinf, Metric::kHamming),
                         [](const auto& suite_info) {
                           return MetricName(suite_info.param);
                         });

TEST(MetricTest, UniverseDiameter) {
  const Universe u = MakeUniverse(101, 2);  // coords in [0, 100]
  EXPECT_DOUBLE_EQ(UniverseDiameter(u, Metric::kL1), 200.0);
  EXPECT_DOUBLE_EQ(UniverseDiameter(u, Metric::kLinf), 100.0);
  EXPECT_NEAR(UniverseDiameter(u, Metric::kL2), 100.0 * std::sqrt(2.0),
              1e-9);
  EXPECT_DOUBLE_EQ(UniverseDiameter(u, Metric::kHamming), 2.0);
}

TEST(MetricTest, CellDiameter) {
  EXPECT_DOUBLE_EQ(CellDiameter(3, 8.0, Metric::kL1), 24.0);
  EXPECT_DOUBLE_EQ(CellDiameter(3, 8.0, Metric::kLinf), 8.0);
  EXPECT_NEAR(CellDiameter(4, 8.0, Metric::kL2), 16.0, 1e-9);
  EXPECT_DOUBLE_EQ(CellDiameter(5, 0.0, Metric::kHamming), 0.0);
  EXPECT_DOUBLE_EQ(CellDiameter(5, 1.0, Metric::kHamming), 5.0);
}

TEST(MetricTest, Names) {
  EXPECT_EQ(MetricName(Metric::kL1), "l1");
  EXPECT_EQ(MetricName(Metric::kL2), "l2");
  EXPECT_EQ(MetricName(Metric::kLinf), "linf");
  EXPECT_EQ(MetricName(Metric::kHamming), "hamming");
}

}  // namespace
}  // namespace rsr
