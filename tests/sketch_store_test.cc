// SketchStore invariants.
//
// 1. Incremental equivalence (the linearity property the whole design
//    rests on): building each serving sketch from scratch over the final
//    set S and mutating a store from S0 through a random insert/erase
//    trace to S must produce bit-identical serializations, for every
//    cached sketch kind — quadtree level IBLTs, adaptive probes, the
//    exact strata estimator and keyed list, MLSH ladder RIBLTs, the
//    one-shot RIBLT.
// 2. Width-boundary rebuild: an unbalanced trace that crosses a histogram
//    count-width boundary (|S| passing a power of two) must also end
//    bit-identical (the store takes the from-scratch path there).
// 3. Snapshot pinning under concurrency (run under TSan in CI): sessions
//    pinned to an old generation finish bit-identical to the driver on
//    that generation's set while ApplyUpdate churns the store.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "lshrecon/mlsh_recon.h"
#include "net/tcp.h"
#include "recon/exact_recon.h"
#include "recon/params.h"
#include "recon/quadtree_recon.h"
#include "recon/registry.h"
#include "riblt/riblt_recon.h"
#include "server/sketch_store.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "util/bitio.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rsr {
namespace server {
namespace {

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 99;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet Cloud(size_t n, uint64_t seed) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(seed);
  return workload::GenerateCloud(spec, &rng);
}

std::vector<uint8_t> Bits(const Iblt& table) {
  BitWriter w;
  table.Serialize(&w);
  return std::move(w).TakeBytes();
}

std::vector<uint8_t> Bits(const StrataEstimator& est) {
  BitWriter w;
  est.Serialize(&w);
  return std::move(w).TakeBytes();
}

std::vector<uint8_t> Bits(const Riblt& table) {
  BitWriter w;
  table.Serialize(&w);
  return std::move(w).TakeBytes();
}

/// Asserts that every sketch the snapshot serves is bit-identical to a
/// from-scratch build over `expected` (which must equal snapshot->points()
/// as a multiset — in fact, by ApplyUpdate's first-equal erase semantics,
/// as an ordered sequence too).
void ExpectSnapshotMatchesScratch(const SketchSnapshot& snapshot,
                                  const PointSet& expected) {
  ASSERT_EQ(snapshot.points(), expected);
  const recon::ProtocolContext ctx = Ctx();
  const recon::ProtocolParams params = Params().Resolved();
  const size_t n = expected.size();
  const ShiftedGrid grid(ctx.universe, ctx.seed);

  // Quadtree level IBLTs + adaptive probes, over the one-shot ladder and
  // the single-grid forced level.
  std::vector<int> levels = recon::ProtocolLevels(grid, params.quadtree);
  if (std::find(levels.begin(), levels.end(), params.single_grid_level) ==
      levels.end()) {
    levels.push_back(params.single_grid_level);
  }
  for (int level : levels) {
    const IbltConfig config =
        recon::LevelIbltConfig(grid, level, n, params.quadtree, ctx.seed);
    const auto cached = snapshot.QuadtreeLevelIblt(config, level);
    ASSERT_TRUE(cached.has_value()) << "level " << level;
    EXPECT_EQ(Bits(*cached),
              Bits(recon::BuildLevelIblt(grid, expected, level, n,
                                         params.quadtree, ctx.seed)))
        << "level " << level;

    const StrataConfig probe_config =
        recon::AdaptiveLevelProbeConfig(level, ctx.seed);
    const auto probe = snapshot.QuadtreeLevelProbe(probe_config, level);
    ASSERT_TRUE(probe.has_value()) << "level " << level;
    EXPECT_EQ(Bits(*probe),
              Bits(recon::BuildLevelProbe(grid, expected, level, ctx.seed)))
        << "level " << level;
  }

  // Exact baseline: strata estimator + keyed list.
  const StrataConfig exact_config = recon::ExactReconStrataConfig(ctx.seed);
  const auto exact = snapshot.ExactStrata(exact_config);
  ASSERT_TRUE(exact.has_value());
  const recon::KeyedPointList keyed =
      recon::ExactKeyedPoints(expected, ctx.seed);
  StrataEstimator scratch_exact(exact_config);
  for (const auto& [key, point] : keyed) {
    (void)point;
    scratch_exact.Insert(key);
  }
  EXPECT_EQ(Bits(*exact), Bits(scratch_exact));
  const auto cached_keyed = snapshot.ExactKeyedPoints(ctx.seed);
  ASSERT_NE(cached_keyed, nullptr);
  EXPECT_EQ(*cached_keyed, keyed);

  // MLSH ladder RIBLTs.
  const auto prefixes =
      lshrecon::MlshPrefixLadder(params.mlsh.NumFunctions());
  const auto family = lshrecon::MakeMlshFamily(
      params.mlsh.family, ctx.universe,
      lshrecon::MlshEffectiveWidth(ctx.universe, params.mlsh),
      params.mlsh.NumFunctions(), ctx.seed);
  for (size_t li = 0; li < prefixes.size(); ++li) {
    const RibltConfig config = lshrecon::MlshLevelConfig(
        ctx.universe, params.mlsh, n, li, ctx.seed);
    const auto cached = snapshot.MlshLevelRiblt(config, li);
    ASSERT_TRUE(cached.has_value()) << "mlsh level " << li;
    Riblt scratch(config);
    for (const Point& p : expected) {
      scratch.Insert(
          lshrecon::MlshKeyChain(*family, p, ctx.seed)[prefixes[li] - 1], p);
    }
    EXPECT_EQ(Bits(*cached), Bits(scratch)) << "mlsh level " << li;
  }

  // One-shot RIBLT.
  const RibltConfig oneshot_config =
      RibltOneShotConfig(ctx.universe, params.riblt, n, ctx.seed);
  const auto oneshot = snapshot.OneShotRiblt(oneshot_config);
  ASSERT_TRUE(oneshot.has_value());
  Riblt scratch_oneshot(oneshot_config);
  for (const Point& p : expected) {
    scratch_oneshot.Insert(PointKey(p, ctx.seed), p);
  }
  EXPECT_EQ(Bits(*oneshot), Bits(scratch_oneshot));
}

TEST(SketchStoreTest, IncrementalTraceMatchesFromScratchBitForBit) {
  PointSet mirror = Cloud(96, 31337);
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), true, {}});
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);

  workload::ChurnSpec spec;
  spec.fraction = 0.08;
  spec.fresh_fraction = 0.3;
  Rng rng(555);
  for (int step = 0; step < 12; ++step) {
    const workload::ChurnBatch batch =
        workload::MakeChurnBatch(mirror, Ctx().universe, spec, &rng);
    workload::ApplyChurnBatch(batch, &mirror);
    const auto snapshot = store.ApplyUpdate(batch.inserts, batch.erases);
    EXPECT_EQ(snapshot->generation(), static_cast<uint64_t>(step + 1));
    ExpectSnapshotMatchesScratch(*snapshot, mirror);
  }
}

TEST(SketchStoreTest, DuplicatePointsKeepOccurrenceKeysConsistent) {
  // Duplicates exercise the occurrence-indexed exact keys: insert the same
  // point several times, erase some copies, and the keyed list / strata
  // must match a from-scratch canonicalisation throughout.
  PointSet mirror = Cloud(16, 42);
  const Point dup = mirror.front();
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), true, {}});
  const PointSet three_copies = {dup, dup, dup};
  store.ApplyUpdate(three_copies, {});
  mirror.insert(mirror.end(), three_copies.begin(), three_copies.end());
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);

  store.ApplyUpdate({}, {dup, dup});
  workload::ChurnBatch erase_two;
  erase_two.erases = {dup, dup};
  workload::ApplyChurnBatch(erase_two, &mirror);
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);
}

TEST(SketchStoreTest, WidthBoundaryCrossingRebuilds) {
  // 120 -> 140 inserts crosses the HistogramCountBits boundary at 127
  // (bits of n + 1), forcing the from-scratch path; then an unbalanced
  // erase-only batch shrinks back across it.
  PointSet mirror = Cloud(120, 77);
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), true, {}});
  const PointSet grow = Cloud(20, 78);
  store.ApplyUpdate(grow, {});
  mirror.insert(mirror.end(), grow.begin(), grow.end());
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);

  workload::ChurnBatch shrink;
  shrink.erases = PointSet(mirror.begin(), mirror.begin() + 20);
  store.ApplyUpdate({}, shrink.erases);
  workload::ApplyChurnBatch(shrink, &mirror);
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);
}

TEST(SketchStoreTest, EraseAndReinsertSameKeyInOneBatchBitIdentical) {
  // The exact shape changelog replay produces (src/replica/changelog.h): a
  // batch that erases a point and re-inserts the very same point, next to
  // an ordinary churn replacement. The incremental path must leave every
  // sketch bit-identical to a fresh rebuild — the -1/+1 pair must cancel
  // exactly in the strata, the histograms and both RIBLT families.
  PointSet mirror = Cloud(64, 4242);
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), true, {}});
  Rng rng(7);
  workload::ChurnBatch batch;
  batch.erases = {mirror[3], mirror[10]};
  batch.inserts = {mirror[3],
                   workload::PerturbPoint(mirror[10], Ctx().universe,
                                          workload::NoiseKind::kGaussian, 4.0,
                                          &rng)};
  workload::ApplyChurnBatch(batch, &mirror);
  const auto snapshot = store.ApplyUpdate(batch.inserts, batch.erases);
  ExpectSnapshotMatchesScratch(*snapshot, mirror);

  // Same-key erase+reinsert alone (a replayed no-op batch) as well. Note
  // the multiset is unchanged but the sequence is not: the erased copy is
  // removed in place and the re-insert lands at the end.
  workload::ChurnBatch noop;
  noop.erases = {mirror[5]};
  noop.inserts = {mirror[5]};
  store.ApplyUpdate(noop.inserts, noop.erases);
  workload::ApplyChurnBatch(noop, &mirror);
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);
}

TEST(SketchStoreTest, RibltWidthBoundaryWithoutHistogramBoundaryRebuilds) {
  // 62 -> 63 keeps HistogramCountBits unchanged (both under 64) but moves
  // the RIBLT max_entries = 2n + 2 from 126 to 128, widening the
  // serialized sum fields. The cached one-shot and MLSH tables must be
  // rebuilt, or their serialization would keep the stale widths.
  PointSet mirror = Cloud(62, 2026);
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), true, {}});
  const PointSet grow = Cloud(1, 2027);
  store.ApplyUpdate(grow, {});
  mirror.insert(mirror.end(), grow.begin(), grow.end());
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);

  // And back down across the same boundary with an erase-only batch.
  workload::ChurnBatch shrink;
  shrink.erases = {mirror.back()};
  store.ApplyUpdate({}, shrink.erases);
  workload::ApplyChurnBatch(shrink, &mirror);
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);
}

TEST(SketchStoreTest, ErasingAbsentPointsIsIgnoredConsistently) {
  PointSet mirror = Cloud(32, 9);
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), true, {}});
  // A corner point, verified absent from the generated cloud.
  Point absent(static_cast<size_t>(Ctx().universe.d),
               Ctx().universe.delta - 1);
  ASSERT_EQ(std::find(mirror.begin(), mirror.end(), absent), mirror.end());
  const PointSet erases = {absent, mirror.front()};
  store.ApplyUpdate({}, erases);
  workload::ChurnBatch batch;
  batch.erases = erases;
  workload::ApplyChurnBatch(batch, &mirror);
  ExpectSnapshotMatchesScratch(*store.Snapshot(), mirror);
}

TEST(SketchStoreTest, UnmaterializedStoreDeclinesButTracksPoints) {
  PointSet mirror = Cloud(48, 12);
  SketchStore store(mirror, SketchStoreOptions{Ctx(), Params(), false, {}});
  const auto snapshot = store.Snapshot();
  EXPECT_EQ(snapshot->points(), mirror);
  const ShiftedGrid grid(Ctx().universe, Ctx().seed);
  const IbltConfig config = recon::LevelIbltConfig(
      grid, 3, mirror.size(), Params().Resolved().quadtree, Ctx().seed);
  EXPECT_FALSE(snapshot->QuadtreeLevelIblt(config, 3).has_value());
  EXPECT_EQ(snapshot->ExactKeyedPoints(Ctx().seed), nullptr);
}

TEST(SketchStoreTest, ConfigMismatchDeclines) {
  const PointSet points = Cloud(32, 5);
  SketchStore store(points, SketchStoreOptions{Ctx(), Params(), true, {}});
  const auto snapshot = store.Snapshot();
  const ShiftedGrid grid(Ctx().universe, Ctx().seed);
  IbltConfig config = recon::LevelIbltConfig(
      grid, 3, points.size(), Params().Resolved().quadtree, Ctx().seed);
  EXPECT_TRUE(snapshot->QuadtreeLevelIblt(config, 3).has_value());
  config.seed ^= 1;  // different public coins -> must decline, not serve
  EXPECT_FALSE(snapshot->QuadtreeLevelIblt(config, 3).has_value());
}

// --- Concurrency: sessions pinned to old snapshots vs ApplyUpdate. ---

TEST(SketchStoreConcurrencyTest, PinnedSessionsFinishCorrectlyUnderChurn) {
  const PointSet canonical = Cloud(128, 2024);
  SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.worker_threads = 4;
  SyncServer server(canonical, options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  // Record every generation's point set so each outcome can be verified
  // against the exact canonical set its session was pinned to.
  std::mutex gens_mu;
  std::map<uint64_t, std::shared_ptr<const SketchSnapshot>> gens;
  {
    std::lock_guard<std::mutex> lock(gens_mu);
    const auto snapshot = server.snapshot();
    gens[snapshot->generation()] = snapshot;
  }

  constexpr size_t kClients = 6;
  constexpr size_t kRounds = 4;
  const char* kProtocols[kClients] = {"quadtree",      "exact-iblt",
                                      "mlsh-riblt",    "riblt-oneshot",
                                      "quadtree-adaptive", "quadtree"};
  std::vector<PointSet> replicas(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    const Universe universe = Ctx().universe;
    Rng rng(600 + i);
    replicas[i].reserve(canonical.size());
    for (const Point& p : canonical) {
      replicas[i].push_back(workload::PerturbPoint(
          p, universe, workload::NoiseKind::kGaussian, 0.5, &rng));
    }
  }

  std::vector<std::vector<SyncOutcome>> outcomes(
      kClients, std::vector<SyncOutcome>(kRounds));
  std::vector<std::thread> threads;
  // One mutator thread churns the canonical set the whole time.
  std::atomic<bool> stop{false};
  threads.emplace_back([&] {
    workload::ChurnSpec spec;
    spec.fraction = 0.05;
    Rng rng(888);
    while (!stop.load()) {
      {
        std::lock_guard<std::mutex> lock(gens_mu);
        const auto latest = gens.rbegin()->second;
        const workload::ChurnBatch batch = workload::MakeChurnBatch(
            latest->points(), Ctx().universe, spec, &rng);
        const auto snapshot =
            server.ApplyUpdate(batch.inserts, batch.erases);
        gens[snapshot->generation()] = snapshot;
      }
      // Yield so the worker threads make progress on small machines.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      SyncClientOptions client_options;
      client_options.context = Ctx();
      client_options.params = Params();
      const SyncClient client(client_options);
      for (size_t round = 0; round < kRounds; ++round) {
        auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
        ASSERT_NE(stream, nullptr);
        outcomes[i][round] =
            client.Sync(stream.get(), kProtocols[i], replicas[i]);
      }
    });
  }
  for (size_t i = 1; i < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads[0].join();
  server.Stop();

  for (size_t i = 0; i < kClients; ++i) {
    for (size_t round = 0; round < kRounds; ++round) {
      const SyncOutcome& outcome = outcomes[i][round];
      ASSERT_TRUE(outcome.handshake_ok) << kProtocols[i];
      const auto it = gens.find(outcome.server_generation);
      ASSERT_NE(it, gens.end()) << kProtocols[i];
      const auto reconciler =
          recon::MakeReconciler(kProtocols[i], Ctx(), Params());
      transport::Channel channel;
      const recon::ReconResult expected =
          reconciler->Run(replicas[i], it->second->points(), &channel);
      EXPECT_EQ(outcome.result.success, expected.success) << kProtocols[i];
      EXPECT_EQ(outcome.result.error, expected.error) << kProtocols[i];
      EXPECT_EQ(outcome.result.chosen_level, expected.chosen_level)
          << kProtocols[i];
      EXPECT_EQ(outcome.result.decoded_entries, expected.decoded_entries)
          << kProtocols[i];
      if (expected.success) {
        EXPECT_EQ(outcome.result.bob_final, expected.bob_final)
            << kProtocols[i];
      }
    }
  }
}

}  // namespace
}  // namespace server
}  // namespace rsr
