#include "geometry/point.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace rsr {
namespace {

TEST(UniverseTest, BitWidths) {
  EXPECT_EQ(MakeUniverse(1024, 2).BitsPerCoord(), 10);
  EXPECT_EQ(MakeUniverse(1024, 2).BitsPerPoint(), 20);
  EXPECT_EQ(MakeUniverse(1000, 3).BitsPerCoord(), 10);  // next power of two
  EXPECT_EQ(MakeUniverse(1, 4).BitsPerCoord(), 0);
  EXPECT_EQ(MakeUniverse(2, 4).BitsPerCoord(), 1);
}

TEST(UniverseTest, Contains) {
  const Universe u = MakeUniverse(100, 2);
  EXPECT_TRUE(u.Contains({0, 0}));
  EXPECT_TRUE(u.Contains({99, 99}));
  EXPECT_FALSE(u.Contains({100, 0}));
  EXPECT_FALSE(u.Contains({0, -1}));
  EXPECT_FALSE(u.Contains({1, 2, 3}));  // wrong arity
  EXPECT_FALSE(u.Contains({1}));
}

TEST(PointPackTest, RoundTripFixedCases) {
  const Universe u = MakeUniverse(1 << 12, 3);
  const PointSet points = {
      {0, 0, 0}, {4095, 4095, 4095}, {1, 2, 3}, {1024, 0, 4095}};
  BitWriter w;
  for (const Point& p : points) PackPoint(u, p, &w);
  EXPECT_EQ(w.bit_count(), points.size() * 36);

  BitReader r(w.bytes());
  for (const Point& expected : points) {
    Point p;
    ASSERT_TRUE(UnpackPoint(u, &r, &p));
    EXPECT_EQ(p, expected);
  }
}

TEST(PointPackTest, RoundTripRandomSweep) {
  Rng rng(77);
  for (int d = 1; d <= 8; d *= 2) {
    for (int64_t delta : {2ll, 17ll, 1024ll, 1ll << 20}) {
      const Universe u = MakeUniverse(delta, d);
      BitWriter w;
      PointSet points;
      for (int i = 0; i < 50; ++i) {
        Point p(static_cast<size_t>(d));
        for (auto& c : p) {
          c = static_cast<int64_t>(rng.Below(static_cast<uint64_t>(delta)));
        }
        PackPoint(u, p, &w);
        points.push_back(std::move(p));
      }
      BitReader r(w.bytes());
      for (const Point& expected : points) {
        Point p;
        ASSERT_TRUE(UnpackPoint(u, &r, &p));
        ASSERT_EQ(p, expected);
      }
    }
  }
}

TEST(PointPackTest, UnderrunFails) {
  const Universe u = MakeUniverse(1 << 16, 4);
  BitWriter w;
  w.WriteBits(7, 16);  // not enough for a whole point
  BitReader r(w.bytes());
  Point p;
  EXPECT_FALSE(UnpackPoint(u, &r, &p));
}

TEST(PointKeyTest, SensitivityAndSeedDependence) {
  const Point a = {1, 2, 3};
  const Point b = {1, 2, 4};
  EXPECT_EQ(PointKey(a, 5), PointKey(a, 5));
  EXPECT_NE(PointKey(a, 5), PointKey(b, 5));
  EXPECT_NE(PointKey(a, 5), PointKey(a, 6));
  // Arity matters too.
  EXPECT_NE(PointKey({1, 2}, 5), PointKey({1, 2, 0}, 5));
}

TEST(PointLessTest, LexicographicOrder) {
  EXPECT_TRUE(PointLess({1, 2}, {1, 3}));
  EXPECT_TRUE(PointLess({1, 2}, {2, 0}));
  EXPECT_FALSE(PointLess({1, 2}, {1, 2}));
  EXPECT_FALSE(PointLess({2, 0}, {1, 9}));
}

TEST(PointToStringTest, Rendering) {
  EXPECT_EQ(PointToString({1, 2, 3}), "(1, 2, 3)");
  EXPECT_EQ(PointToString({-5}), "(-5)");
  EXPECT_EQ(PointToString({}), "()");
}

}  // namespace
}  // namespace rsr
